// Benchmark harness: one testing.B target per table/figure of the
// paper plus micro-benchmarks of the simulator's hot structures.
// Benchmark metrics report simulated IPC (higher is better) alongside
// the usual ns/op, so `go test -bench=.` regenerates the paper's
// comparisons in miniature:
//
//	go test -bench=Figure3 -benchtime=1x
//	go test -bench=. -benchmem
package recyclesim

import (
	"fmt"
	"testing"
)

const benchInsts = 60_000

func runOnce(b *testing.B, machine string, preset string, mix []string) *Result {
	b.Helper()
	res, err := Run(Options{
		Machine:   MachineByName(machine),
		Features:  PresetByName(preset),
		Workloads: mix,
		MaxInsts:  benchInsts,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFigure3 regenerates Figure 3's comparisons: per-benchmark
// IPC under the six architectures (single program, big.2.16).
func BenchmarkFigure3(b *testing.B) {
	for _, bench := range Workloads() {
		for _, preset := range []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"} {
			b.Run(bench+"/"+preset, func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					ipc = runOnce(b, "big.2.16", preset, []string{bench}).IPC()
				}
				b.ReportMetric(ipc, "IPC")
			})
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: average IPC for 1, 2 and 4
// simultaneous programs.
func BenchmarkFigure4(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		for _, preset := range []string{"SMT", "TME", "REC/RS/RU"} {
			b.Run(fmt.Sprintf("%dprog/%s", n, preset), func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					total := 0.0
					var mixes [][]string
					if n == 1 {
						mixes = [][]string{{"compress"}, {"go"}, {"vortex"}}
					} else {
						mixes = Mixes(n)[:3]
					}
					for _, mix := range mixes {
						total += runOnce(b, "big.2.16", preset, mix).IPC()
					}
					ipc = total / float64(len(mixes))
				}
				b.ReportMetric(ipc, "IPC")
			})
		}
	}
}

// BenchmarkTable1 regenerates Table 1's recycling statistics under the
// full REC/RS/RU architecture.
func BenchmarkTable1(b *testing.B) {
	for _, bench := range Workloads() {
		b.Run(bench, func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, "big.2.16", "REC/RS/RU", []string{bench})
			}
			b.ReportMetric(res.PctRecycled(), "%recycled")
			b.ReportMetric(res.PctReused(), "%reused")
			b.ReportMetric(res.BranchMissCoverage(), "%misscov")
			b.ReportMetric(res.PctBackMerges(), "%backmerge")
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: the alternate-path fetch
// policies (stop/fetch/nostop at 8/16/32 instructions).
func BenchmarkFigure5(b *testing.B) {
	for _, pol := range []AltPolicy{AltNoStop, AltStop, AltFetch} {
		for _, lim := range []int{8, 16, 32} {
			b.Run(fmt.Sprintf("%s-%d", pol, lim), func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					feat := PresetByName("REC/RS/RU")
					feat.AltPolicy = pol
					feat.AltLimit = lim
					res, err := Run(Options{
						Machine:   MachineByName("big.2.16"),
						Features:  feat,
						Workloads: []string{"go", "compress"},
						MaxInsts:  benchInsts,
					})
					if err != nil {
						b.Fatal(err)
					}
					ipc = res.IPC()
				}
				b.ReportMetric(ipc, "IPC")
			})
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: the four machine design
// points under SMT, TME, and full recycling.
func BenchmarkFigure6(b *testing.B) {
	for _, machine := range []string{"small.1.8", "small.2.8", "big.1.8", "big.2.16"} {
		for _, preset := range []string{"SMT", "TME", "REC/RS/RU"} {
			b.Run(machine+"/"+preset, func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					total := 0.0
					for _, mix := range Mixes(2)[:2] {
						total += runOnce(b, machine, preset, mix).IPC()
					}
					ipc = total / 2
				}
				b.ReportMetric(ipc, "IPC")
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// instructions per host second) — the engineering metric for the
// simulator itself rather than the paper's architecture results.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, preset := range []string{"SMT", "REC/RS/RU"} {
		b.Run(preset, func(b *testing.B) {
			b.ReportAllocs()
			insts := uint64(0)
			for i := 0; i < b.N; i++ {
				res := runOnce(b, "big.2.16", preset, []string{"gcc"})
				insts += res.Committed
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "simInsts/s")
		})
	}
}

// BenchmarkSampledThroughput measures the effective speed of sampled
// simulation: total simulated (emulated + detailed) instructions per
// host second under the benchmark schedule.  Compare against
// BenchmarkSimulatorThroughput's simInsts/s for the same preset and
// workload — the ratio is the sampling speedup the gate tracks.
func BenchmarkSampledThroughput(b *testing.B) {
	for _, preset := range []string{"SMT", "REC/RS/RU"} {
		b.Run(preset, func(b *testing.B) {
			b.ReportAllocs()
			insts := uint64(0)
			var res *SampledResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = RunSampled(Options{
					Machine:   MachineByName("big.2.16"),
					Features:  PresetByName(preset),
					Workloads: []string{"gcc"},
					MaxInsts:  8_000_000,
					Sampling:  &Sampling{Period: 400_000, IntervalLen: 1_000, WarmupLen: 1_000},
				})
				if err != nil {
					b.Fatal(err)
				}
				insts += res.TotalInsts
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "simInsts/s")
			b.ReportMetric(res.IPC, "IPC")
		})
	}
}

// BenchmarkSampledFigure3 regenerates the Figure 3 sweep in sampled
// mode — the acceptance matrix of workloads and architectures — with
// each cell reporting its estimated IPC.  Effective throughput is
// gated by BenchmarkSampledThroughput's two long cells; single-shot
// per-cell simInsts/s would be too noisy for a 10% gate.
func BenchmarkSampledFigure3(b *testing.B) {
	for _, bench := range Workloads() {
		for _, preset := range []string{"SMT", "TME", "REC", "REC/RS", "REC/RS/RU"} {
			b.Run(bench+"/"+preset, func(b *testing.B) {
				var res *SampledResult
				for i := 0; i < b.N; i++ {
					var err error
					res, err = RunSampled(Options{
						Machine:   MachineByName("big.2.16"),
						Features:  PresetByName(preset),
						Workloads: []string{bench},
						MaxInsts:  1_000_000,
						Sampling:  &Sampling{Period: 50_000, IntervalLen: 1_000, WarmupLen: 1_000},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.IPC, "IPC")
			})
		}
	}
}

// BenchmarkPipetraceOverhead measures what per-instruction tracing
// costs the cycle loop: the same REC/RS/RU run untraced, traced at
// 1-in-64 sampling, and traced in full.  The untraced variant gates the
// nil-guard overhead of the hooks; the traced variants gate the
// recorder itself.
func BenchmarkPipetraceOverhead(b *testing.B) {
	for _, mode := range []struct {
		name   string
		sample uint64
		traced bool
	}{
		{"off", 0, false},
		{"sampled64", 64, true},
		{"full", 1, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			insts := uint64(0)
			for i := 0; i < b.N; i++ {
				var tracer *PipeTracer
				if mode.traced {
					tracer = NewPipeTracer(PipeTraceConfig{SampleEvery: mode.sample})
				}
				res, err := Run(Options{
					Machine:   MachineByName("big.2.16"),
					Features:  PresetByName("REC/RS/RU"),
					Workloads: []string{"gcc"},
					MaxInsts:  benchInsts,
					PipeTrace: tracer,
				})
				if err != nil {
					b.Fatal(err)
				}
				insts += res.Committed
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "simInsts/s")
		})
	}
}

// BenchmarkAblationTrustTrace compares §3.4's two recycling methods:
// the default ("latter") stops the stream at the first branch whose
// current prediction disagrees with the trace; TrustTrace ("former")
// follows the trace's stored predictions unconditionally.
func BenchmarkAblationTrustTrace(b *testing.B) {
	for _, trust := range []bool{false, true} {
		name := "latter-stop-on-disagree"
		if trust {
			name = "former-trust-trace"
		}
		b.Run(name, func(b *testing.B) {
			var ipc, rec float64
			for i := 0; i < b.N; i++ {
				feat := PresetByName("REC/RS/RU")
				feat.TrustTrace = trust
				res, err := Run(Options{
					Machine:   MachineByName("big.2.16"),
					Features:  feat,
					Workloads: []string{"compress"},
					MaxInsts:  benchInsts,
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc, rec = res.IPC(), res.PctRecycled()
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(rec, "%recycled")
		})
	}
}

// BenchmarkAblationForkAggressiveness quantifies a design tradeoff the
// paper sweeps in Figure 5: longer alternate paths give recycling more
// material but hold spare contexts longer.
func BenchmarkAblationForkAggressiveness(b *testing.B) {
	for _, limit := range []int{8, 32} {
		b.Run(fmt.Sprintf("altlimit-%d", limit), func(b *testing.B) {
			var cov, ipc float64
			for i := 0; i < b.N; i++ {
				feat := PresetByName("REC/RS/RU")
				feat.AltLimit = limit
				res, err := Run(Options{
					Machine:   MachineByName("big.2.16"),
					Features:  feat,
					Workloads: []string{"go"},
					MaxInsts:  benchInsts,
				})
				if err != nil {
					b.Fatal(err)
				}
				cov, ipc = res.BranchMissCoverage(), res.IPC()
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(cov, "%misscov")
		})
	}
}
