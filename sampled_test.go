package recyclesim

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunSampledBasic: the facade produces a usable estimate with the
// default schedule and honours the Sampling override.
func TestRunSampledBasic(t *testing.T) {
	res, err := RunSampled(Options{
		Machine:   MachineByName("big.2.16"),
		Features:  PresetByName("REC/RS/RU"),
		Workloads: []string{"gcc"},
		MaxInsts:  100_000,
		Sampling:  &Sampling{Period: 10_000, IntervalLen: 500, WarmupLen: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals == nil || len(res.Intervals) != 10 {
		t.Fatalf("intervals = %d, want 10", len(res.Intervals))
	}
	if res.IPC <= 0 || res.IPCLo <= 0 || res.IPCHi < res.IPCLo {
		t.Errorf("bad estimate: IPC %v CI [%v, %v]", res.IPC, res.IPCLo, res.IPCHi)
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sampled") || !strings.Contains(sb.String(), "CI95%") {
		t.Errorf("report:\n%s", sb.String())
	}
}

// TestRunSampledNilSampling: a nil Sampling selects the defaults.
func TestRunSampledNilSampling(t *testing.T) {
	res, err := RunSampled(Options{
		Machine:   MachineByName("big.2.16"),
		Features:  SMT,
		Workloads: []string{"compress"},
		MaxInsts:  100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Period != 20_000 || res.IntervalLen != 1_000 || res.WarmupLen != 1_000 {
		t.Errorf("defaults not applied: P=%d L=%d W=%d", res.Period, res.IntervalLen, res.WarmupLen)
	}
}

// TestRunSampledRejectsMultiProgram: interval seeding restores one
// architectural state, so sampled mode is single-program only.
func TestRunSampledRejectsMultiProgram(t *testing.T) {
	_, err := RunSampled(Options{
		Machine:   MachineByName("big.2.16"),
		Features:  SMT,
		Workloads: []string{"compress", "gcc"},
	})
	if err == nil || !strings.Contains(err.Error(), "one program") {
		t.Errorf("err = %v", err)
	}
	if _, err := RunSampled(Options{Machine: MachineByName("big.2.16")}); err == nil {
		t.Error("no workloads: expected error")
	}
}

// TestRunSampledContextCancel: a pre-canceled context stops the run
// with the context's error.
func TestRunSampledContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSampledContext(ctx, Options{
		Machine:   MachineByName("big.2.16"),
		Features:  SMT,
		Workloads: []string{"gcc"},
		MaxInsts:  200_000,
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
