package recyclesim

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"recyclesim/internal/core"
	"recyclesim/internal/obs/pipetrace"
)

// Sentinel errors classifying every way a simulation can fail after it
// has been configured.  Match them with errors.Is; the concrete error
// returned is always a *SimError wrapping one of these (plus the
// underlying cause, so errors.Is(err, context.Canceled) and
// errors.As(err, &livelock) also work).
var (
	// ErrCanceled: the run's context was canceled; the returned Result
	// holds the statistics accumulated up to the poll that noticed.
	ErrCanceled = errors.New("recyclesim: run canceled")
	// ErrDeadline: the run's context deadline expired mid-simulation.
	ErrDeadline = errors.New("recyclesim: run deadline exceeded")
	// ErrLivelock: the forward-progress watchdog saw a full window of
	// cycles with no commit while a program was still live.
	ErrLivelock = errors.New("recyclesim: livelock detected")
	// ErrPanic: the simulator (or a user hook, or the invariant
	// checker) panicked; the panic was contained to this run.
	ErrPanic = errors.New("recyclesim: simulator panic")
)

// SimError is the typed failure report of one simulation run.  It
// classifies the failure (Kind), locates it (Cycle, Committed,
// Fingerprint), and carries enough captured state — machine dump,
// flight-recorder tail, pipetrace tail, panic stack — to debug the
// failure from the error alone, without rerunning.
type SimError struct {
	// Kind is one of the package sentinels (ErrCanceled, ErrDeadline,
	// ErrLivelock, ErrPanic).
	Kind error
	// Err is the underlying cause: the context's error, the core's
	// *LivelockError, or nil for a panic (see PanicValue).
	Err error

	// Cycle and Committed locate the failure in simulated time.
	Cycle     uint64
	Committed uint64
	// Fingerprint identifies the configuration:
	// machine/features/workloads/maxinsts.
	Fingerprint string
	// Detail is a one-line elaboration (watchdog window and dominant
	// stall cause, for example).
	Detail string

	// Dump is the per-context machine state at the failure, when the
	// failing layer could still produce one (livelock fires always can;
	// panics carry whatever the panic message included).
	Dump string
	// FlightDump is the flight recorder's retained event tail, when a
	// recorder was attached to the run.
	FlightDump string
	// PipeTail is the tail of the pipetrace record stream, when a
	// tracer was attached.
	PipeTail string

	// PanicValue and Stack are set for ErrPanic.
	PanicValue any
	Stack      string

	// BundlePath is the crash bundle written under Options.CrashDir,
	// when one was requested and the write succeeded.
	BundlePath string
}

// Error implements error.  The full captured state stays in the struct
// fields (and the crash bundle); the string is a one-liner.
func (e *SimError) Error() string {
	var b strings.Builder
	b.WriteString(e.Kind.Error())
	fmt.Fprintf(&b, " at cycle %d (%d committed; %s)", e.Cycle, e.Committed, e.Fingerprint)
	if e.Detail != "" {
		fmt.Fprintf(&b, ": %s", e.Detail)
	}
	if e.PanicValue != nil {
		fmt.Fprintf(&b, ": panic: %v", e.PanicValue)
	}
	if e.BundlePath != "" {
		fmt.Fprintf(&b, " (crash bundle: %s)", e.BundlePath)
	}
	return b.String()
}

// Unwrap exposes both the classifying sentinel and the underlying
// cause, so errors.Is(err, ErrLivelock), errors.Is(err,
// context.Canceled) and errors.As(err, &(*core.LivelockError)) all
// resolve through the one returned error.
func (e *SimError) Unwrap() []error {
	if e.Err != nil {
		return []error{e.Kind, e.Err}
	}
	return []error{e.Kind}
}

// fingerprint renders the configuration identity used in error
// messages, crash bundle names, and sweep checkpoints.  It depends
// only on the option fields that determine the simulation's outcome.
func fingerprint(o Options) string {
	names := strings.Join(o.Workloads, "+")
	if len(o.Programs) > 0 {
		names = fmt.Sprintf("%dprogs", len(o.Programs))
	}
	feat := FeatureName(o.Features)
	if feat == "" {
		feat = "custom"
	}
	fp := fmt.Sprintf("%s/%s/%s/max%d", o.Machine.Name, feat, names, o.MaxInsts)
	if s := o.Sampling; s != nil {
		// Sampled and full runs of the same cell are different
		// simulations; memoization and crash bundles must not conflate
		// them.  The confidence level joins the schedule because it
		// changes the reported bounds, not just the label.
		fp += fmt.Sprintf("/samp%d-%d-%d-c%g", s.Period, s.IntervalLen, s.WarmupLen, s.Confidence)
	}
	return fp
}

// simError builds the typed failure report for a run that stopped with
// runErr or panicked with panicVal, capturing the observability tails
// from the live core.
func simError(c *core.Core, o Options, runErr error, panicVal any, stack []byte) *SimError {
	se := &SimError{
		Cycle:       c.CycleCount(),
		Committed:   c.Stats.Committed,
		Fingerprint: fingerprint(o),
		FlightDump:  flightDump(c),
		PipeTail:    pipeTail(o.PipeTrace, 16),
	}
	switch {
	case panicVal != nil:
		se.Kind = ErrPanic
		se.PanicValue = panicVal
		se.Stack = string(stack)
	case errors.Is(runErr, context.DeadlineExceeded):
		se.Kind, se.Err = ErrDeadline, runErr
	case isLivelock(runErr):
		var ll *core.LivelockError
		errors.As(runErr, &ll)
		se.Kind, se.Err = ErrLivelock, runErr
		se.Dump = ll.Dump
		se.Detail = fmt.Sprintf("no commit for %d cycles, dominant stall cause %s", ll.Window, ll.Dominant)
	default:
		// context.Canceled, or whatever a custom context's Err returns.
		se.Kind, se.Err = ErrCanceled, runErr
	}
	return se
}

func isLivelock(err error) bool {
	var ll *core.LivelockError
	return errors.As(err, &ll)
}

// flightDump renders the flight recorder attached to the core (nil-safe).
func flightDump(c *core.Core) string {
	r := c.FlightRing()
	if r == nil || r.Len() == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder (last %d of %d events):\n", r.Len(), r.Total())
	for _, e := range r.Events() {
		fmt.Fprintf(&b, "  %s\n", e.String())
	}
	return b.String()
}

// pipeTail renders the last n pipetrace records (nil-safe).
func pipeTail(p *pipetrace.Recorder, n int) string {
	if p == nil {
		return ""
	}
	recs := p.Records()
	if len(recs) == 0 {
		return ""
	}
	start := 0
	if len(recs) > n {
		start = len(recs) - n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pipetrace tail (last %d of %d records):\n", len(recs)-start, len(recs))
	for _, r := range recs[start:] {
		fmt.Fprintf(&b, "  %+v\n", r)
	}
	return b.String()
}
