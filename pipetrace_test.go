package recyclesim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// pipetraceRun executes the reference configuration with the given
// tracer and returns the commit stream, the statistics, and the
// Prometheus metrics text — every externally visible output of the run.
func pipetraceRun(t *testing.T, tracer *PipeTracer) (commits string, res *Result, metrics string) {
	t.Helper()
	var sb strings.Builder
	tel := Telemetry{}
	res, err := Run(Options{
		Machine:   MachineByName("big.2.16"),
		Features:  PresetByName("REC/RS/RU"),
		Workloads: []string{"compress", "gcc"},
		MaxInsts:  20_000,
		CommitHook: func(ci CommitInfo) {
			fmt.Fprintf(&sb, "%d %d %#x %#x %t %t\n",
				ci.Program, ci.Ctx, ci.PC, ci.Result, ci.Taken, ci.Reused)
		},
		Telemetry: &tel,
		PipeTrace: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	if err := (&Snapshot{Stats: res, Metrics: &tel}).WriteText(&mb); err != nil {
		t.Fatal(err)
	}
	return sb.String(), res, mb.String()
}

// TestPipetraceNonPerturbation is the witness that tracing is pure
// observation: the commit stream, the statistics, and the metrics text
// of a run are byte-identical whether tracing is off, sampled 1-in-64,
// or recording every instruction.
func TestPipetraceNonPerturbation(t *testing.T) {
	baseCommits, baseRes, baseMetrics := pipetraceRun(t, nil)
	for _, mode := range []struct {
		name string
		cfg  PipeTraceConfig
	}{
		{"sampled64", PipeTraceConfig{SampleEvery: 64}},
		{"full", PipeTraceConfig{}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			commits, res, metrics := pipetraceRun(t, NewPipeTracer(mode.cfg))
			if commits != baseCommits {
				t.Error("commit stream differs from the untraced run")
			}
			if !reflect.DeepEqual(res, baseRes) {
				t.Errorf("statistics differ from the untraced run:\n  traced: %+v\nuntraced: %+v", res, baseRes)
			}
			if metrics != baseMetrics {
				t.Error("metrics text differs from the untraced run")
			}
		})
	}
}

// chromeInst is one instruction reassembled from the Chrome trace: its
// outer-span flags and the set of nested span names.
type chromeInst struct {
	recycled, reused bool
	spans            map[string]bool
}

// parseChrome groups the trace's per-instruction events by async id.
func parseChrome(t *testing.T, raw []byte) map[uint64]*chromeInst {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			ID   *uint64 `json:"id"`
			Args *struct {
				Recycled *bool `json:"recycled"`
				Reused   *bool `json:"reused"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	insts := make(map[uint64]*chromeInst)
	for _, e := range doc.TraceEvents {
		if e.Cat != "inst" || e.ID == nil {
			continue
		}
		ci := insts[*e.ID]
		if ci == nil {
			ci = &chromeInst{spans: make(map[string]bool)}
			insts[*e.ID] = ci
		}
		if e.Args != nil && e.Args.Recycled != nil {
			ci.recycled = *e.Args.Recycled
			ci.reused = *e.Args.Reused
		}
		if e.Ph == "b" {
			ci.spans[e.Name] = true
		}
	}
	return insts
}

// TestPipetraceAcceptance is the PR's acceptance criterion: a full
// pipetrace of a recycling run, exported as Chrome trace JSON, shows at
// least one recycled instruction with no fetch span and at least one
// reused instruction with no execute span — and identical-seed runs
// produce byte-identical trace files in both formats.
func TestPipetraceAcceptance(t *testing.T) {
	runTrace := func() (*PipeTracer, []byte, []byte, *Result) {
		tracer := NewPipeTracer(PipeTraceConfig{})
		res, err := Run(Options{
			Machine:   MachineByName("big.2.16"),
			Features:  PresetByName("REC/RS/RU"),
			Workloads: []string{"compress"},
			MaxInsts:  20_000,
			PipeTrace: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		var chrome, konata bytes.Buffer
		if err := tracer.WriteChrome(&chrome, res.Cycles); err != nil {
			t.Fatal(err)
		}
		if err := tracer.WriteKonata(&konata, res.Cycles); err != nil {
			t.Fatal(err)
		}
		return tracer, chrome.Bytes(), konata.Bytes(), res
	}

	tracer, chrome, konata, _ := runTrace()
	insts := parseChrome(t, chrome)
	if len(insts) == 0 {
		t.Fatal("trace holds no instructions")
	}
	var recycledNoFetch, reusedNoExec int
	for _, ci := range insts {
		if ci.recycled && !ci.spans["fetch"] {
			recycledNoFetch++
		}
		if ci.recycled && ci.spans["fetch"] {
			t.Fatal("recycled instruction with a fetch span")
		}
		if ci.reused && !ci.spans["execute"] {
			reusedNoExec++
		}
		if ci.reused && ci.spans["execute"] {
			t.Fatal("reused instruction with an execute span")
		}
	}
	if recycledNoFetch == 0 || reusedNoExec == 0 {
		t.Fatalf("trace shows %d recycled (no fetch) and %d reused (no execute) instructions; want both > 0",
			recycledNoFetch, reusedNoExec)
	}
	if tracer.TruncatedRecords() != 0 {
		t.Logf("note: %d records truncated at the cap", tracer.TruncatedRecords())
	}

	_, chrome2, konata2, _ := runTrace()
	if !bytes.Equal(chrome, chrome2) {
		t.Error("identical runs produced different Chrome trace files")
	}
	if !bytes.Equal(konata, konata2) {
		t.Error("identical runs produced different Konata trace files")
	}
}

// TestSnapshotHookDelivery pins the live-publication path the
// observability server feeds from: periodic snapshots arrive at the
// configured interval, the final snapshot matches the run's result, and
// the copies never alias each other.
func TestSnapshotHookDelivery(t *testing.T) {
	var snaps []*Snapshot
	res, err := Run(Options{
		Machine:       MachineByName("big.2.16"),
		Features:      PresetByName("REC/RS/RU"),
		Workloads:     []string{"compress"},
		MaxInsts:      20_000,
		SnapshotHook:  func(sn *Snapshot) { snaps = append(snaps, sn) },
		SnapshotEvery: 4_096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("%d snapshots delivered, want periodic plus final", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Stats.Committed != res.Committed || last.Stats.Cycles != res.Cycles {
		t.Errorf("final snapshot (%d insts, %d cycles) disagrees with result (%d, %d)",
			last.Stats.Committed, last.Stats.Cycles, res.Committed, res.Cycles)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Stats == snaps[i-1].Stats || snaps[i].Metrics == snaps[i-1].Metrics {
			t.Fatal("snapshots alias each other; Publish requires private copies")
		}
		if snaps[i].Stats.Committed < snaps[i-1].Stats.Committed {
			t.Error("snapshot commit counts went backwards")
		}
	}
}
