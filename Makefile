# Pre-PR gate for the recyclesim repository.
#
#   make check       everything below, in order (run before every PR)
#   make fmt         fail if any file is not gofmt-clean
#   make vet         go vet over the whole module
#   make build       compile everything, including examples
#   make lint        the simulator-specific static analyzers (cmd/recyclelint)
#   make test        full test suite under the race detector
#   make fuzz        10s coverage-guided smoke of each fuzz target
#                    (assembler and config validation), seeded from the
#                    checked-in corpora under testdata/fuzz
#   make smoke       one short instrumented run through both telemetry
#                    exporters (-metrics / -metrics-text), output discarded
#   make invariant   cosim suite with the runtime invariant checker forced on
#   make bench       benchmark suite; fails on >10% simInsts/s regression
#                    vs the committed BENCH_simulator.json, then refreshes it
#   make bench-smoke throughput benchmarks only (detailed + sampled), gated
#                    against a scratch copy of the baseline with a loose
#                    tolerance — a catastrophic-regression detector cheap
#                    and noise-tolerant enough for shared CI runners; the
#                    committed baseline is left untouched

GO ?= go

.PHONY: check fmt vet build lint test fuzz smoke invariant bench bench-smoke

check: fmt vet build lint test fuzz smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

lint:
	$(GO) run ./cmd/recyclelint ./...

test:
	$(GO) test -race ./...

# One -fuzz pattern per invocation: the Go fuzzer only accepts a single
# matching target when fuzzing (not just running seeds).
fuzz:
	$(GO) test ./internal/asm/ -fuzz FuzzAssemble -fuzztime 10s
	$(GO) test ./internal/config/ -fuzz FuzzMachineValidate -fuzztime 10s
	$(GO) test ./internal/config/ -fuzz FuzzFeaturesValidate -fuzztime 10s
	$(GO) test ./internal/store/ -fuzz FuzzStoreDecode -fuzztime 10s

smoke:
	$(GO) run ./cmd/recyclesim -workloads compress -insts 20000 -flightrec 256 -metrics - >/dev/null
	$(GO) run ./cmd/recyclesim -workloads compress -insts 20000 -flightrec 256 -metrics-text - >/dev/null

invariant:
	$(GO) test -tags siminvariant ./internal/core/

bench:
	$(GO) run ./cmd/benchgate

bench-smoke:
	@tmp="$$(mktemp)"; \
	cp BENCH_simulator.json "$$tmp"; \
	$(GO) run ./cmd/benchgate -bench 'SimulatorThroughput|SampledThroughput' -tolerance 0.6 -out "$$tmp"; \
	status=$$?; rm -f "$$tmp"; exit $$status
