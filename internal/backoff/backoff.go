// Package backoff is the retry-delay policy shared by every per-cell
// retry path in the service stack (recyclesim.RunBatchContext, the
// internal/jobs compute loops, and the internal/fleet dispatcher):
// capped exponential growth with equal jitter, built so tests stay
// reproducible — the jitter source is an explicit injectable function
// (a fixed-seed SplitMix64 by default, never the global math/rand),
// and the sleep itself is injectable and context-aware.
//
// The package deliberately contains no wall-clock reads: delays are
// pure arithmetic over the attempt number, and Sleep waits on a timer
// it is handed the duration for.  It therefore stays inside the
// simulator's per-package determinism scope except for the concurrency
// constructs in Sleep, which the lint allowlist
// (lint.ConcurrencyAllowed) sanctions explicitly.
package backoff

import (
	"context"
	"time"
)

// Delay returns the delay before retry attempt (0-based): base
// doubled per attempt and capped at max, with "equal jitter" — the
// final delay is uniformly drawn from [d/2, d) by rnd, so concurrent
// retriers spread out instead of stampeding in lockstep.
//
// base <= 0 disables backoff (returns 0, the immediate-retry
// behavior the retry paths had before this package existed).
// max <= 0 defaults to 64*base.  rnd, when non-nil, must return
// uniform values in [0, 1); nil rnd skips jitter and returns the full
// deterministic delay.
func Delay(base, max time.Duration, attempt int, rnd func() float64) time.Duration {
	if base <= 0 {
		return 0
	}
	if max <= 0 {
		max = 64 * base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if rnd == nil {
		return d
	}
	half := d / 2
	return half + time.Duration(rnd()*float64(d-half))
}

// Sleep waits for d or until ctx is done, whichever comes first,
// returning ctx.Err() on early wakeup.  d <= 0 returns immediately
// (after a ctx check, so a canceled context is always honored).
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Rand returns a deterministic uniform-[0,1) source seeded by seed: a
// SplitMix64 generator, self-contained so no retry path ever touches
// the global math/rand state.  The returned function is NOT safe for
// concurrent use; give each retrier its own.
func Rand(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		// 53 high bits → uniform in [0, 1).
		return float64(z>>11) / float64(1<<53)
	}
}
