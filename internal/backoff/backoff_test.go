package backoff

import (
	"context"
	"testing"
	"time"
)

func TestDelayGrowthAndCap(t *testing.T) {
	base, max := 100*time.Millisecond, 1*time.Second
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second,
		1 * time.Second, // capped from here on
	}
	for attempt, w := range want {
		if got := Delay(base, max, attempt, nil); got != w {
			t.Errorf("Delay(attempt=%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayZeroBaseDisables(t *testing.T) {
	for attempt := 0; attempt < 4; attempt++ {
		if got := Delay(0, time.Second, attempt, Rand(1)); got != 0 {
			t.Errorf("Delay(base=0, attempt=%d) = %v, want 0", attempt, got)
		}
	}
}

func TestDelayDefaultMax(t *testing.T) {
	// max <= 0 defaults to 64*base: attempt 20 would be base<<20 raw.
	if got, want := Delay(time.Millisecond, 0, 20, nil), 64*time.Millisecond; got != want {
		t.Errorf("Delay(max=0, attempt=20) = %v, want %v", got, want)
	}
}

func TestDelayJitterBounds(t *testing.T) {
	base, max := 100*time.Millisecond, 10*time.Second
	rnd := Rand(42)
	for attempt := 0; attempt < 8; attempt++ {
		full := Delay(base, max, attempt, nil)
		for i := 0; i < 100; i++ {
			d := Delay(base, max, attempt, rnd)
			if d < full/2 || d >= full {
				t.Fatalf("Delay(attempt=%d) = %v outside [%v, %v)", attempt, d, full/2, full)
			}
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := Rand(7), Rand(7)
	for i := 0; i < 1000; i++ {
		av, bv := a(), b()
		if av != bv {
			t.Fatalf("draw %d: %v != %v for equal seeds", i, av, bv)
		}
		if av < 0 || av >= 1 {
			t.Fatalf("draw %d: %v outside [0,1)", i, av)
		}
	}
	if c := Rand(8); c() == Rand(7)() {
		t.Error("different seeds produced the same first draw")
	}
}

func TestSleepHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); err != context.Canceled {
		t.Errorf("Sleep(canceled) = %v, want context.Canceled", err)
	}
	// Zero and negative delays return immediately on a live context.
	if err := Sleep(context.Background(), 0); err != nil {
		t.Errorf("Sleep(0) = %v", err)
	}
	if err := Sleep(context.Background(), -time.Second); err != nil {
		t.Errorf("Sleep(-1s) = %v", err)
	}
}

func TestSleepWakesMidWait(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Sleep(ctx, time.Hour) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Sleep = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not wake on cancellation")
	}
}
