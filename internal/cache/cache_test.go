package cache

import (
	"testing"
	"testing/quick"
)

func small() Params {
	return Params{Name: "t", SizeBytes: 1024, LineBytes: 64, Assoc: 2, Banks: 2, HitLat: 1}
}

func TestGeometry(t *testing.T) {
	c := New(small())
	if c.Sets() != 1024/(64*2) {
		t.Errorf("sets = %d", c.Sets())
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(small())
	if hit, _ := c.Lookup(1, 0x1000); hit {
		t.Error("cold access should miss")
	}
	if hit, _ := c.Lookup(2, 0x1000); !hit {
		t.Error("second access should hit")
	}
	if hit, _ := c.Lookup(3, 0x1038); !hit {
		t.Error("same-line access should hit")
	}
	if c.Stats.Misses != 1 || c.Stats.Accesses != 3 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := New(small()) // 8 sets, 2 ways; same-set stride = 8*64 = 512
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Lookup(1, a)
	c.Lookup(2, b)
	c.Lookup(3, a) // refresh a
	c.Lookup(4, d) // evicts b (LRU)
	if !c.Contains(a) {
		t.Error("a should survive")
	}
	if c.Contains(b) {
		t.Error("b should be evicted")
	}
	if !c.Contains(d) {
		t.Error("d should be resident")
	}
}

func TestBankConflictSameCycle(t *testing.T) {
	c := New(small()) // 2 banks; lines alternate banks
	if _, delay := c.Lookup(5, 0x0); delay != 0 {
		t.Errorf("first access delayed %d", delay)
	}
	if _, delay := c.Lookup(5, 0x80); delay != 1 { // same bank (line 2 % 2 banks = 0)
		t.Errorf("same-cycle same-bank access delayed %d, want 1", delay)
	}
	if _, delay := c.Lookup(5, 0x40); delay != 0 { // other bank
		t.Errorf("other-bank access delayed %d", delay)
	}
	// Next cycle the bank is free again: no cross-cycle queue buildup.
	if _, delay := c.Lookup(6, 0x0); delay != 0 {
		t.Errorf("next-cycle access delayed %d", delay)
	}
}

func TestBankDelayBounded(t *testing.T) {
	c := New(small())
	// Hammer one bank for many cycles from two "threads"; the delay
	// must never exceed the same-cycle access count.
	for cyc := uint64(1); cyc < 1000; cyc++ {
		_, d1 := c.Lookup(cyc, 0x0)
		_, d2 := c.Lookup(cyc, 0x80)
		if d1 != 0 || d2 != 1 {
			t.Fatalf("cycle %d: delays %d, %d — queue built up across cycles", cyc, d1, d2)
		}
	}
}

func TestHierarchyLatencyChain(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(1))
	// Cold access: L1 miss + L2 miss + L3 miss + memory.
	lat := h.AccessD(1, 0x10000)
	want := 1 + 6 + 12 + 62
	if lat != want {
		t.Errorf("cold access latency = %d, want %d", lat, want)
	}
	// Now everything is resident.
	if lat := h.AccessD(2, 0x10000); lat != 1 {
		t.Errorf("warm access latency = %d, want 1", lat)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(1))
	h.AccessD(1, 0x10000) // fill all levels
	// Evict from the direct-mapped L1 by touching the conflicting line.
	conflict := uint64(0x10000) + uint64(h.DL1.Sets()*64)
	h.AccessD(2, conflict)
	// Original line now misses L1 but hits L2.
	lat := h.AccessD(3, 0x10000)
	if lat != 1+6 {
		t.Errorf("L2 hit latency = %d, want 7", lat)
	}
}

func TestInstructionPathSeparate(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(1))
	h.AccessD(1, 0x4000)
	lat, hit := h.AccessI(2, 0x4000)
	if hit {
		t.Error("IL1 should not be warmed by data accesses")
	}
	// The D-side fill left the line in L2, so the I-miss is served by
	// the L2, not memory.
	if lat != 1+6 {
		t.Errorf("I-miss after D-fill latency = %d, want 7", lat)
	}
	if _, hit := h.AccessI(3, 0x4000); !hit {
		t.Error("IL1 should now be warm")
	}
}

func TestCacheScale(t *testing.T) {
	p := DefaultHierarchy(2)
	if p.IL1.SizeBytes != 32*1024 || p.L2.SizeBytes != 128*1024 {
		t.Errorf("scaled sizes: IL1=%d L2=%d", p.IL1.SizeBytes, p.L2.SizeBytes)
	}
	if p.L3.SizeBytes != 4*1024*1024 {
		t.Error("the off-chip L3 is not scaled")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
	s.Accesses, s.Misses = 10, 3
	if s.MissRate() != 0.3 {
		t.Errorf("miss rate = %f", s.MissRate())
	}
}

// Property: a line that was just accessed is always resident
// immediately afterwards (fill-on-miss), regardless of access sequence.
func TestFillOnMissProperty(t *testing.T) {
	c := New(small())
	cycle := uint64(0)
	fn := func(addrs []uint16) bool {
		for _, a := range addrs {
			cycle++
			addr := uint64(a) * 8
			c.Lookup(cycle, addr)
			if !c.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-size cache")
		}
	}()
	New(Params{Name: "bad"})
}
