// Package cache implements the simulated memory hierarchy: banked
// level-one instruction and data caches, a unified on-chip L2, an
// off-chip L3, and main memory.  The caches are timing-only (tag
// arrays): architectural data lives in the functional memory image, so
// the hierarchy's job is to produce access latencies, bank conflicts,
// and miss traffic matching §4.1 of the paper:
//
//	64KB direct-mapped IL1 and DL1, 256KB 4-way L2, 4MB off-chip L3,
//	64-byte lines everywhere, 8-way banked on-chip caches, and
//	conflict-free miss penalties of 6 cycles to L2, another 12 to L3,
//	and another 62 to memory.
package cache

// Params configures one cache level.
type Params struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
	Banks     int // 0 or 1 disables bank conflict modelling
	HitLat    int // cycles for a hit in this level
}

// Stats counts accesses per cache.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	BankStall uint64 // cycles lost to busy banks
}

type line struct {
	valid bool
	tag   uint64
	lru   uint64
}

// Cache is a single set-associative, banked, timing-only cache.
type Cache struct {
	p       Params
	sets    int
	lines   []line   // sets*assoc, way-major within a set
	bankCyc []uint64 // cycle of the bank's last use
	bankCnt []int    // accesses to the bank in that cycle
	clock   uint64
	Stats   Stats
}

// New builds a cache from params; it panics on non-positive geometry
// since configurations are static and a bad one is a programming error.
func New(p Params) *Cache {
	if p.SizeBytes <= 0 || p.LineBytes <= 0 || p.Assoc <= 0 {
		panic("cache: bad geometry for " + p.Name)
	}
	sets := p.SizeBytes / (p.LineBytes * p.Assoc)
	if sets <= 0 {
		sets = 1
	}
	banks := p.Banks
	if banks <= 0 {
		banks = 1
	}
	return &Cache{
		p:       p,
		sets:    sets,
		lines:   make([]line, sets*p.Assoc),
		bankCyc: make([]uint64, banks),
		bankCnt: make([]int, banks),
	}
}

// Clone returns a deep copy of the cache: tag array, bank state, and
// statistics.  Sampled simulation snapshots functionally warmed caches
// so parallel measurement intervals each mutate a private copy.
func (c *Cache) Clone() *Cache {
	q := *c
	q.lines = append([]line(nil), c.lines...)
	q.bankCyc = append([]uint64(nil), c.bankCyc...)
	q.bankCnt = append([]int(nil), c.bankCnt...)
	return &q
}

// Sets returns the number of sets (exported for tests).
func (c *Cache) Sets() int { return c.sets }

func (c *Cache) setAndTag(addr uint64) (int, uint64) {
	lineAddr := addr / uint64(c.p.LineBytes)
	return int(lineAddr % uint64(c.sets)), lineAddr / uint64(c.sets)
}

// Lookup probes the cache at cycle `now`.  It returns whether the line
// hit and the extra delay (beyond the level's hit latency) caused by a
// busy bank.  A miss is filled immediately (the caller adds lower-level
// latency); LRU is updated on both hits and fills.
func (c *Cache) Lookup(now uint64, addr uint64) (hit bool, bankDelay uint64) {
	c.Stats.Accesses++
	c.clock++

	// Bank conflict: each bank serves one access per cycle; the k-th
	// same-cycle access to a bank is delayed k cycles.  Delayed
	// accesses are assumed not to re-contend (the conflict window is a
	// cycle, so queues cannot build up across cycles).
	bank := int(addr / uint64(c.p.LineBytes) % uint64(len(c.bankCyc)))
	if c.bankCyc[bank] != now {
		c.bankCyc[bank] = now
		c.bankCnt[bank] = 0
	}
	bankDelay = uint64(c.bankCnt[bank])
	c.bankCnt[bank]++
	c.Stats.BankStall += bankDelay

	set, tag := c.setAndTag(addr)
	base := set * c.p.Assoc
	for w := 0; w < c.p.Assoc; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			ln.lru = c.clock
			return true, bankDelay
		}
	}
	c.Stats.Misses++
	victim := base
	for w := 0; w < c.p.Assoc; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = base + w
			break
		}
		if ln.lru < c.lines[victim].lru {
			victim = base + w
		}
	}
	c.lines[victim] = line{valid: true, tag: tag, lru: c.clock}
	return false, bankDelay
}

// Contains probes without side effects (for tests).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.setAndTag(addr)
	base := set * c.p.Assoc
	for w := 0; w < c.p.Assoc; w++ {
		ln := c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// HitLatency returns the level's hit latency in cycles.
func (c *Cache) HitLatency() int { return c.p.HitLat }

// MissRate returns misses/accesses (0 when never accessed).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HierarchyParams configures the full memory system.
type HierarchyParams struct {
	IL1, DL1, L2, L3 Params
	// Additional miss penalties along the chain, per the paper:
	// +MissToL2 on an L1 miss, +MissToL3 on an L2 miss, +MissToMem
	// on an L3 miss.
	MissToL2, MissToL3, MissToMem int
}

// DefaultHierarchy returns the paper's baseline memory system.  The
// small machines halve the cache sizes (§5.3); scale applies that
// division to L1 and L2 capacities.
func DefaultHierarchy(scale int) HierarchyParams {
	if scale <= 0 {
		scale = 1
	}
	return HierarchyParams{
		IL1:       Params{Name: "IL1", SizeBytes: 64 * 1024 / scale, LineBytes: 64, Assoc: 1, Banks: 8, HitLat: 1},
		DL1:       Params{Name: "DL1", SizeBytes: 64 * 1024 / scale, LineBytes: 64, Assoc: 1, Banks: 8, HitLat: 1},
		L2:        Params{Name: "L2", SizeBytes: 256 * 1024 / scale, LineBytes: 64, Assoc: 4, Banks: 8, HitLat: 0},
		L3:        Params{Name: "L3", SizeBytes: 4 * 1024 * 1024, LineBytes: 64, Assoc: 2, Banks: 1, HitLat: 0},
		MissToL2:  6,
		MissToL3:  12,
		MissToMem: 62,
	}
}

// Hierarchy glues the levels together.
type Hierarchy struct {
	p   HierarchyParams
	IL1 *Cache
	DL1 *Cache
	L2  *Cache
	L3  *Cache
}

// NewHierarchy builds the full memory system.
func NewHierarchy(p HierarchyParams) *Hierarchy {
	return &Hierarchy{
		p:   p,
		IL1: New(p.IL1),
		DL1: New(p.DL1),
		L2:  New(p.L2),
		L3:  New(p.L3),
	}
}

// Clone returns a deep copy of the whole hierarchy.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		p:   h.p,
		IL1: h.IL1.Clone(),
		DL1: h.DL1.Clone(),
		L2:  h.L2.Clone(),
		L3:  h.L3.Clone(),
	}
}

// fill walks the lower levels after an L1 miss and returns the added
// latency of the miss chain.
func (h *Hierarchy) fill(now uint64, addr uint64) int {
	lat := h.p.MissToL2
	if hit, _ := h.L2.Lookup(now, addr); hit {
		return lat
	}
	lat += h.p.MissToL3
	if hit, _ := h.L3.Lookup(now, addr); hit {
		return lat
	}
	return lat + h.p.MissToMem
}

// AccessI fetches the instruction cache line containing addr at cycle
// `now` and returns the total access latency in cycles plus whether the
// L1 hit (a miss stalls the thread's fetch; a bank-delayed hit only
// delays delivery).
func (h *Hierarchy) AccessI(now uint64, addr uint64) (int, bool) {
	hit, bank := h.IL1.Lookup(now, addr)
	lat := h.IL1.HitLatency() + int(bank)
	if !hit {
		lat += h.fill(now, addr)
	}
	return lat, hit
}

// AccessD performs a data access (load or store) and returns the total
// latency in cycles.  Stores are modelled with the same tag behaviour
// (write-allocate) as loads.
func (h *Hierarchy) AccessD(now uint64, addr uint64) int {
	hit, bank := h.DL1.Lookup(now, addr)
	lat := h.DL1.HitLatency() + int(bank)
	if !hit {
		lat += h.fill(now, addr)
	}
	return lat
}
