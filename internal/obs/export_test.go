package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"recyclesim/internal/stats"
)

func TestSnake(t *testing.T) {
	cases := map[string]string{
		"IPC":             "ipc",
		"BTBMisses":       "btb_misses",
		"Cycles":          "cycles",
		"PctForksUsedTME": "pct_forks_used_tme",
		"RenameStallAL":   "rename_stall_al",
		"IQFullStalls":    "iq_full_stalls",
		"PerProgram":      "per_program",
	}
	for in, want := range cases {
		if got := snake(in); got != want {
			t.Errorf("snake(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCountersCoverEveryStatsField(t *testing.T) {
	s := &stats.Sim{Cycles: 7, Committed: 3, PerProgram: []uint64{1, 2}}
	cs := Counters(s)
	byName := map[string]uint64{}
	perProg := 0
	for _, c := range cs {
		if c.Index >= 0 {
			perProg++
			continue
		}
		byName[c.Name] = c.Value
	}
	if byName["cycles"] != 7 || byName["committed"] != 3 {
		t.Errorf("counters: %v", byName)
	}
	if perProg != 2 {
		t.Errorf("per-program counters: %d, want 2", perProg)
	}
	// One scalar counter per uint64 field: the reflection walk must not
	// silently skip a field.
	if len(byName) < 25 {
		t.Errorf("only %d scalar counters; stats fields missing from export", len(byName))
	}
}

func TestDerivedClampsNonFinite(t *testing.T) {
	for _, d := range Derived(&stats.Sim{}) {
		if d.Value != 0 {
			t.Errorf("%s on zero stats = %v, want 0", d.Name, d.Value)
		}
	}
	names := map[string]bool{}
	for _, d := range Derived(&stats.Sim{Cycles: 4, Committed: 8}) {
		names[d.Name] = true
		if d.Name == "ipc" && d.Value != 2 {
			t.Errorf("ipc = %v, want 2", d.Value)
		}
	}
	if !names["ipc"] || !names["mispredict_rate"] {
		t.Errorf("derived set incomplete: %v", names)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	m := &Metrics{Hists: true}
	m.SlotCycles[CauseBusyFetch] = 12
	m.SlotCycles[CauseIdle] = 4
	m.ALOcc.Observe(3)
	r := NewRing(16)
	r.Record(Event{Cycle: 1, Stage: StageCommit, Ctx: 0, Seq: 9, PC: 0x40, Arg: 5})
	snap := &Snapshot{
		Name:    "unit",
		Stats:   &stats.Sim{Cycles: 4, Committed: 8},
		Metrics: m,
		Ring:    r,
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc["name"] != "unit" {
		t.Errorf("name = %v", doc["name"])
	}
	if doc["slot_cycles_total"] != float64(16) {
		t.Errorf("slot_cycles_total = %v", doc["slot_cycles_total"])
	}
	fr, ok := doc["flight_recorder"].([]any)
	if !ok || len(fr) != 1 {
		t.Fatalf("flight_recorder = %v", doc["flight_recorder"])
	}
	ev := fr[0].(map[string]any)
	if ev["stage"] != "commit" || ev["seq"] != float64(9) {
		t.Errorf("event = %v", ev)
	}
}

func TestWriteTextFormat(t *testing.T) {
	m := &Metrics{Hists: true}
	m.SlotCycles[CauseRecycle] = 6
	m.StreamLen.Observe(4)
	m.StreamLen.Observe(9)
	snap := &Snapshot{Stats: &stats.Sim{Cycles: 3}, Metrics: m}
	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sim_cycles 3",
		`sim_slot_cycles{cause="recycle_inject"} 6`,
		"sim_slot_cycles_total 6",
		"sim_recycle_stream_len_count 2",
		"sim_recycle_stream_len_sum 13",
		`sim_recycle_stream_len_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text export missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the le="7" bucket holds the 4 sample only.
	if !strings.Contains(out, `sim_recycle_stream_len_bucket{le="7"} 1`) {
		t.Errorf("cumulative bucket counts wrong:\n%s", out)
	}
}
