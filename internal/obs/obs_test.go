package obs

import (
	"strings"
	"testing"
)

func TestStageAndCauseStrings(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		if name := s.String(); name == "stage?" || name == "" {
			t.Errorf("Stage %d has no name", s)
		}
	}
	for c := Cause(0); c < NumCauses; c++ {
		if name := c.String(); name == "cause?" || name == "" {
			t.Errorf("Cause %d has no name", c)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 42, Stage: StageStall, Cause: CauseIQFull, Ctx: -1, Seq: 7, PC: 0x1a0, Arg: 3}
	got := e.String()
	for _, want := range []string{"cyc=42", "stall", "ctx=-1", "cause=iq_full", "seq=7", "pc=0x1a0", "arg=3"} {
		if !strings.Contains(got, want) {
			t.Errorf("Event.String() = %q, missing %q", got, want)
		}
	}
	if got := (Event{Stage: StageCommit}).String(); strings.Contains(got, "cause=") {
		t.Errorf("CauseNone must be elided: %q", got)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(20) // rounds up to 32
	if len(r.buf) != 32 {
		t.Fatalf("ring size %d, want 32", len(r.buf))
	}
	for i := 0; i < 50; i++ {
		r.Record(Event{Cycle: uint64(i)})
	}
	if r.Len() != 32 || r.Total() != 50 {
		t.Fatalf("Len=%d Total=%d, want 32/50", r.Len(), r.Total())
	}
	ev := r.Events()
	if len(ev) != 32 {
		t.Fatalf("Events() returned %d", len(ev))
	}
	for i, e := range ev {
		if want := uint64(18 + i); e.Cycle != want {
			t.Fatalf("event %d cycle %d, want %d (oldest-first after wrap)", i, e.Cycle, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(0) // minimum 16
	r.Record(Event{Cycle: 1})
	r.Record(Event{Cycle: 2})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	ev := r.Events()
	if len(ev) != 2 || ev[0].Cycle != 1 || ev[1].Cycle != 2 {
		t.Fatalf("Events = %v", ev)
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	samples := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{16383, 14}, {16384, 15}, {1 << 40, 15},
	}
	for _, s := range samples {
		h.Observe(s.v)
	}
	for _, s := range samples {
		if h.Buckets[s.bucket] == 0 {
			t.Errorf("sample %d landed outside bucket %d: %v", s.v, s.bucket, h.Buckets)
		}
	}
	if h.Count != uint64(len(samples)) {
		t.Errorf("Count = %d", h.Count)
	}
	if h.Max != 1<<40 {
		t.Errorf("Max = %d", h.Max)
	}
	var sum uint64
	for _, b := range h.Buckets {
		sum += b
	}
	if sum != h.Count {
		t.Errorf("bucket sum %d != count %d", sum, h.Count)
	}
}

func TestBucketUpper(t *testing.T) {
	if u, ok := BucketUpper(0); !ok || u != 0 {
		t.Errorf("bucket 0 upper = %d,%v", u, ok)
	}
	if u, ok := BucketUpper(3); !ok || u != 7 {
		t.Errorf("bucket 3 upper = %d,%v", u, ok)
	}
	if _, ok := BucketUpper(histBuckets - 1); ok {
		t.Error("overflow bucket must be unbounded")
	}
}

func TestHistMeanEmpty(t *testing.T) {
	var h Hist
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %v", h.Mean())
	}
}

func TestMetricsAddAndFractions(t *testing.T) {
	a := &Metrics{}
	a.SlotCycles[CauseBusyFetch] = 30
	a.SlotCycles[CauseIdle] = 10
	b := &Metrics{Hists: true}
	b.SlotCycles[CauseBusyFetch] = 10
	b.ALOcc.Observe(5)
	a.Add(b)
	if !a.Hists {
		t.Error("Add must propagate Hists")
	}
	if a.TotalSlotCycles() != 50 {
		t.Errorf("total = %d", a.TotalSlotCycles())
	}
	if f := a.SlotFraction(CauseBusyFetch); f != 0.8 {
		t.Errorf("busy fraction = %v", f)
	}
	if f := (&Metrics{}).SlotFraction(CauseIdle); f != 0 {
		t.Errorf("empty fraction = %v", f)
	}
	if a.ALOcc.Count != 1 {
		t.Errorf("ALOcc not merged: %+v", a.ALOcc)
	}
}

func TestRecordAllocFree(t *testing.T) {
	r := NewRing(64)
	var h Hist
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(Event{Cycle: r.n, Stage: StageCommit})
		h.Observe(r.n)
	})
	if allocs != 0 {
		t.Errorf("Record+Observe allocate %v per op, want 0", allocs)
	}
}
