package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// WriteChrome renders the trace in Chrome trace_event JSON (the
// "traceEvents" envelope, loadable in Perfetto and chrome://tracing),
// following the emission conventions of internal/obs/pipetrace's
// Chrome writer: one bufio pass, fixed field order, events in
// allocation order, so a settled trace renders byte-identically on
// every export.
//
// Every span becomes one complete ("X") event with microsecond
// timestamps.  All events share pid 0 ("recycled"); the track (tid)
// layout groups each top-level subtree: the root span renders on tid 0
// and every child of the root (a "cell" in a job trace) gets its own
// tid, inherited by its descendants — so the exported file reads as
// one span tree per cell.  Spans still open at export time are closed
// against a consistent "now" and tagged args.open = true.  Span and
// parent IDs plus the typed attributes travel in args, so the tree is
// reconstructible from the JSON alone.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	now := t.Elapsed()
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")

	first := true
	emit := func(raw []byte) {
		if first {
			bw.WriteString("\n")
			first = false
		} else {
			bw.WriteString(",\n")
		}
		bw.Write(raw)
	}
	meta := func(name string, tid int64, label string) {
		raw, _ := json.Marshal(chromeMeta{
			Name: name, Ph: "M", Pid: 0, Tid: tid,
			Args: chromeMetaArgs{Name: label},
		})
		emit(raw)
	}

	meta("process_name", 0, fmt.Sprintf("recycled trace %s (drops %d)", t.id, t.Drops()))

	// tracks[id] is the tid a span renders on; parents precede children
	// in allocation order, so one forward pass settles every span.
	tracks := make([]int64, len(spans)+1)
	for i := range spans {
		sp := &spans[i]
		switch {
		case sp.Parent == 0:
			tracks[sp.ID] = 0
		case spans[sp.Parent-1].Parent == 0:
			tracks[sp.ID] = int64(sp.ID)
			meta("thread_name", int64(sp.ID), fmt.Sprintf("%s s%d", sp.Name, sp.ID))
		default:
			tracks[sp.ID] = tracks[sp.Parent]
		}
	}

	for i := range spans {
		sp := &spans[i]
		dur := sp.Dur
		open := dur < 0
		if open {
			dur = now - sp.Start
			if dur < 0 {
				dur = 0
			}
		}
		ev := chromeEvent{
			Name: sp.Name, Cat: "svc", Ph: "X",
			Ts: sp.Start.Microseconds(), Dur: dur.Microseconds(),
			Pid: 0, Tid: tracks[sp.ID],
			Args: spanArgs(sp, open),
		}
		raw, err := json.Marshal(&ev)
		if err != nil {
			bw.Flush()
			return err
		}
		emit(raw)
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromeEvent is one complete-span event; field order is emission
// order (encoding/json preserves struct order).
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   int64           `json:"ts"`
	Dur  int64           `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int64           `json:"tid"`
	Args json.RawMessage `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args chromeMetaArgs `json:"args"`
}

type chromeMetaArgs struct {
	Name string `json:"name"`
}

// spanArgs renders a span's args object by hand so attributes keep
// their insertion order (a ranged map would not).
func spanArgs(sp *Span, open bool) json.RawMessage {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"span":%d,"parent":%d`, sp.ID, sp.Parent)
	for i := 0; i < int(sp.NAttrs); i++ {
		a := &sp.Attrs[i]
		key, _ := json.Marshal(a.Key)
		if a.IsStr {
			val, _ := json.Marshal(a.Str)
			fmt.Fprintf(&b, ",%s:%s", key, val)
		} else {
			fmt.Fprintf(&b, ",%s:%d", key, a.U)
		}
	}
	if open {
		b.WriteString(`,"open":true`)
	}
	b.WriteByte('}')
	return b.Bytes()
}
