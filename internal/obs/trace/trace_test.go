package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDStringParseRoundTrip(t *testing.T) {
	for _, id := range []ID{1, 0xdeadbeef, ^ID(0)} {
		s := id.String()
		if len(s) != 16 {
			t.Errorf("ID(%d).String() = %q, want 16 hex digits", id, s)
		}
		got, ok := ParseID(s)
		if !ok || got != id {
			t.Errorf("ParseID(%q) = %v, %v; want %v, true", s, got, ok, id)
		}
	}
	for _, bad := range []string{"", "zz", "00000000000000000", "0"} {
		if id, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted as %v", bad, id)
		}
	}
}

func TestNewIDNonZero(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 32; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned zero")
		}
		seen[id] = true
	}
	if len(seen) < 2 {
		t.Errorf("32 NewID calls produced %d distinct IDs", len(seen))
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(7, 16)
	root := tr.Root("job").Uint("cells", 2)
	cell := root.Start("cell").Uint("index", 0)
	lookup := cell.Start("lookup").Uint("hit", 1)
	lookup.End()
	cell.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "job" || spans[0].Parent != 0 {
		t.Errorf("root span %+v", spans[0])
	}
	if spans[1].Name != "cell" || spans[1].Parent != spans[0].ID {
		t.Errorf("cell span %+v, want parent %d", spans[1], spans[0].ID)
	}
	if spans[2].Name != "lookup" || spans[2].Parent != spans[1].ID {
		t.Errorf("lookup span %+v, want parent %d", spans[2], spans[1].ID)
	}
	for i, sp := range spans {
		if sp.Dur < 0 {
			t.Errorf("span %d still open after End: %+v", i, sp)
		}
	}
	if a, ok := spans[2].Attr("hit"); !ok || a.U != 1 {
		t.Errorf("lookup hit attr = %+v, %v", a, ok)
	}
	if a, ok := spans[0].Attr("cells"); !ok || a.U != 2 {
		t.Errorf("root cells attr = %+v, %v", a, ok)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New(1, 16)
	var ends int
	tr.SetOnEnd(func(string, time.Duration) { ends++ })
	c := tr.Root("job")
	c.End()
	c.End()
	if ends != 1 {
		t.Errorf("observer ran %d times, want 1", ends)
	}
	if d := tr.Spans()[0].Dur; d < 0 {
		t.Errorf("span open after double End, dur %v", d)
	}
}

func TestErrorAttr(t *testing.T) {
	tr := New(1, 16)
	c := tr.Root("compute")
	c.Error(nil) // no-op
	c.Error(errors.New("boom"))
	c.End()
	sp := tr.Spans()[0]
	a, ok := sp.Attr("error")
	if !ok || !a.IsStr || a.Str != "boom" {
		t.Errorf("error attr = %+v, %v", a, ok)
	}
	if sp.NAttrs != 1 {
		t.Errorf("NAttrs = %d, want 1 (nil error recorded?)", sp.NAttrs)
	}
}

func TestBufferFullDropsSpans(t *testing.T) {
	tr := New(1, 16) // capacity clamps to 16
	root := tr.Root("job")
	for i := 0; i < 20; i++ {
		c := root.Start("cell")
		// Children and attrs of a dropped span must no-op, not panic.
		c.Uint("index", uint64(i)).Start("lookup").End()
		c.End()
	}
	if got := len(tr.Spans()); got != 16 {
		t.Errorf("%d spans recorded, want capacity 16", got)
	}
	if tr.Drops() == 0 {
		t.Error("no drops counted on a full buffer")
	}
}

func TestAttrOverflowCounted(t *testing.T) {
	tr := New(1, 16)
	c := tr.Root("job")
	for i := 0; i < attrCap+2; i++ {
		c.Uint("k", uint64(i))
	}
	sp := tr.Spans()[0]
	if int(sp.NAttrs) != attrCap || sp.AttrDrops != 2 {
		t.Errorf("NAttrs=%d AttrDrops=%d, want %d and 2", sp.NAttrs, sp.AttrDrops, attrCap)
	}
}

// TestDisabledCtxIsFreeAndAllocFree is the tentpole witness: the zero
// Ctx no-ops every operation and allocates nothing, so instrumented
// paths cost zero when tracing is off.
func TestDisabledCtxIsFreeAndAllocFree(t *testing.T) {
	err := errors.New("x")
	allocs := testing.AllocsPerRun(1000, func() {
		var c Ctx
		child := c.Start("lookup").Uint("hit", 1).Str("key", "k").Error(err)
		child.Start("nested").End()
		child.End()
		if child.Enabled() || child.Span() != 0 {
			t.Fatal("disabled ctx claims to be enabled")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled Ctx allocated %.1f per run, want 0", allocs)
	}
}

// TestEnabledRecordingDoesNotGrowBuffer: recording within capacity
// never reallocates the preallocated span buffer.
func TestEnabledRecordingDoesNotGrowBuffer(t *testing.T) {
	tr := New(1, 64)
	root := tr.Root("job")
	allocs := testing.AllocsPerRun(10, func() {
		root.Start("cell").Uint("index", 1).End()
	})
	if allocs != 0 {
		t.Errorf("recording allocated %.1f per span, want 0 (preallocated buffer)", allocs)
	}
}

func TestOnEndObserver(t *testing.T) {
	tr := New(1, 16)
	var mu sync.Mutex
	got := map[string]int{}
	tr.SetOnEnd(func(name string, dur time.Duration) {
		if dur < 0 {
			t.Errorf("observer saw negative duration for %s", name)
		}
		mu.Lock()
		got[name]++
		mu.Unlock()
	})
	root := tr.Root("job")
	root.Start("queue").End()
	root.Start("queue").End()
	root.End()
	if got["queue"] != 2 || got["job"] != 1 {
		t.Errorf("observer counts %v, want queue:2 job:1", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(1, 1024)
	root := tr.Root("job")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				root.Start("cell").Uint("w", uint64(w)).End()
			}
		}(w)
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 801 {
		t.Fatalf("%d spans, want 801", len(spans))
	}
	for i, sp := range spans {
		if sp.ID != SpanID(i+1) {
			t.Fatalf("span %d has ID %d", i, sp.ID)
		}
	}
}

// chromeDoc mirrors the exported envelope for validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
		Ph   string `json:"ph"`
		Ts   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
		Pid  int    `json:"pid"`
		Tid  int64  `json:"tid"`
		Args map[string]any
	} `json:"traceEvents"`
}

func TestWriteChrome(t *testing.T) {
	tr := New(0xabc, 32)
	root := tr.Root("job").Uint("cells", 2)
	for i := 0; i < 2; i++ {
		cell := root.Start("cell").Uint("index", uint64(i))
		q := cell.Start("queue")
		q.End()
		lk := cell.Start("lookup").Uint("hit", 0)
		lk.End()
		cp := cell.Start("compute").Str("key", "abcd")
		cp.End()
		cell.End()
	}
	open := root.Start("stream") // left open on purpose
	_ = open
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}

	var cells, spansX, metas int
	tids := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			spansX++
			if ev.Name == "cell" {
				cells++
				tids[ev.Tid] = true
				if ev.Args["parent"].(float64) != 1 {
					t.Errorf("cell span parent = %v, want 1 (the root)", ev.Args["parent"])
				}
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if cells != 2 || len(tids) != 2 {
		t.Errorf("%d cell spans on %d tracks, want 2 on 2", cells, len(tids))
	}
	if spansX != 10 { // job + 2*(cell+queue+lookup+compute) + stream
		t.Errorf("%d X events, want 10", spansX)
	}
	if metas == 0 {
		t.Error("no metadata events emitted")
	}
	if !strings.Contains(buf.String(), "0000000000000abc") {
		t.Error("trace ID missing from process_name metadata")
	}

	// The open stream span must be closed against "now" and flagged.
	foundOpen := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "stream" {
			foundOpen = ev.Args["open"] == true && ev.Dur >= 0
		}
	}
	if !foundOpen {
		t.Error("open span not exported with args.open = true")
	}
}

// TestWriteChromeDeterministic: a settled trace exports byte-identical
// files on repeated calls.
func TestWriteChromeDeterministic(t *testing.T) {
	tr := New(5, 16)
	root := tr.Root("job")
	root.Start("cell").Uint("index", 0).End()
	root.End()
	var a, b bytes.Buffer
	if err := tr.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two exports differ:\n%s\n%s", a.String(), b.String())
	}
}
