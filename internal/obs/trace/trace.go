// Package trace is the service-side request tracing layer: lightweight
// request-scoped spans (trace ID, span ID, parent links, monotonic
// start/duration, a few typed attributes) recorded into a preallocated
// per-request buffer and exported as Chrome trace_event JSON.
//
// It is the service twin of internal/obs/pipetrace: pipetrace
// attributes simulated cycles to pipeline stages inside one run, this
// package attributes wall-clock to request stages across the job
// service (queue wait, store lookup, single-flight share, compute
// attempts, stream delivery).  It deliberately reads the wall clock and
// uses sync, so it lives outside the simulator's determinism scope
// (lint.NonSimPackages) and must never be imported by simulation
// packages.
//
// The whole API is nil-safe through the Ctx handle: a zero Ctx (no
// trace attached) turns every operation into a no-op that performs no
// allocation, so instrumented hot paths (the store hit path) cost
// nothing when tracing is disabled — witnessed by the alloc tests here
// and in internal/store.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"strconv"
	"sync"
	"time"
)

// ID is a 64-bit trace identifier, rendered as 16 lowercase hex digits.
// The zero ID means "no trace" and is never generated.
type ID uint64

// NewID returns a random non-zero trace ID.
func NewID() ID {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed
		// fallback keeps the service running if it somehow does.
		return ID(1)
	}
	id := binary.BigEndian.Uint64(b[:])
	if id == 0 {
		id = 1
	}
	return ID(id)
}

// String renders the ID as 16 hex digits (zero-padded).
func (id ID) String() string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	v := uint64(id)
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[v&0xF]
		v >>= 4
	}
	return string(b[:])
}

// ParseID parses a hex trace ID (1-16 digits, e.g. an incoming
// propagation header).  The zero ID is rejected like malformed input.
func ParseID(s string) (ID, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return ID(v), true
}

// SpanID identifies one span within its trace (1-based; 0 = none).
// Parent links use SpanIDs, and a parent is always allocated before its
// children, so Parent < ID for every span.
type SpanID int32

// attrCap is the fixed per-span attribute capacity; attributes beyond
// it are dropped (counted in Span.AttrDrops) rather than allocated.
const attrCap = 4

// Attr is one typed span attribute: either a uint64 or a string value.
type Attr struct {
	Key   string
	Str   string
	U     uint64
	IsStr bool
}

// Span is one recorded operation.  Start is the monotonic offset from
// the trace's begin instant; Dur is negative while the span is open.
type Span struct {
	ID        SpanID
	Parent    SpanID
	Name      string
	Start     time.Duration
	Dur       time.Duration
	Attrs     [attrCap]Attr
	NAttrs    uint8
	AttrDrops uint8
}

// Attr returns the value of the named attribute, if set.
func (s *Span) Attr(key string) (Attr, bool) {
	for i := 0; i < int(s.NAttrs); i++ {
		if s.Attrs[i].Key == key {
			return s.Attrs[i], true
		}
	}
	return Attr{}, false
}

// Trace is one request's span collection.  The span buffer is
// preallocated at New with a fixed capacity: recording never grows it,
// and spans past the capacity are dropped (counted, never blocking), so
// a trace's memory footprint is bounded at admission time.
//
// All methods are safe for concurrent use; a job's cells record spans
// from every worker goroutine at once.
type Trace struct {
	id    ID
	begin time.Time

	// onEnd, when non-nil, observes every completed span (the job
	// server feeds its per-stage latency histograms with it).  It runs
	// outside the trace lock on the goroutine that ended the span.
	onEnd func(name string, dur time.Duration)

	mu    sync.Mutex
	spans []Span
	drops uint64
}

// New builds a trace with room for capacity spans (minimum 16).
func New(id ID, capacity int) *Trace {
	if capacity < 16 {
		capacity = 16
	}
	return &Trace{id: id, begin: time.Now(), spans: make([]Span, 0, capacity)}
}

// ID returns the trace identifier.
func (t *Trace) ID() ID { return t.id }

// SetOnEnd installs the completed-span observer.  Install before
// recording begins; the observer must be safe for concurrent use.
func (t *Trace) SetOnEnd(f func(name string, dur time.Duration)) { t.onEnd = f }

// Drops reports how many spans were discarded because the buffer was
// full.
func (t *Trace) Drops() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// Spans returns a snapshot copy of the recorded spans in allocation
// order.  Open spans keep their negative Dur; Elapsed gives the
// exporter a consistent "now" to close them against.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Elapsed is the monotonic time since the trace began.
func (t *Trace) Elapsed() time.Duration { return time.Since(t.begin) }

// Root starts a parentless span and returns its handle.
func (t *Trace) Root(name string) Ctx { return Ctx{t: t}.Start(name) }

// Ctx is the handle threaded through a request path: a trace plus the
// current span.  The zero Ctx is the disabled tracer — every method is
// a no-op costing zero allocations — so instrumented code never
// branches on "is tracing on".
type Ctx struct {
	t    *Trace
	span SpanID
}

// Enabled reports whether a trace is attached.
func (c Ctx) Enabled() bool { return c.t != nil }

// Span returns the current span ID (0 when disabled).
func (c Ctx) Span() SpanID { return c.span }

// Start opens a child span under the current one and returns its
// handle.  When the buffer is full the span is dropped and a disabled
// Ctx comes back, so the dropped span's children and attributes drop
// with it.
func (c Ctx) Start(name string) Ctx {
	if c.t == nil {
		return Ctx{}
	}
	t := c.t
	start := time.Since(t.begin)
	t.mu.Lock()
	if len(t.spans) == cap(t.spans) {
		t.drops++
		t.mu.Unlock()
		return Ctx{}
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: c.span, Name: name, Start: start, Dur: -1})
	t.mu.Unlock()
	return Ctx{t: t, span: id}
}

// End closes the span (idempotent) and feeds the trace's observer.
func (c Ctx) End() {
	if c.t == nil {
		return
	}
	t := c.t
	end := time.Since(t.begin)
	t.mu.Lock()
	sp := &t.spans[c.span-1]
	if sp.Dur >= 0 {
		t.mu.Unlock()
		return
	}
	sp.Dur = end - sp.Start
	name, dur := sp.Name, sp.Dur
	t.mu.Unlock()
	if t.onEnd != nil {
		t.onEnd(name, dur)
	}
}

// attr appends one attribute to the current span (dropped, counted,
// when the fixed attribute array is full).
func (c Ctx) attr(a Attr) Ctx {
	t := c.t
	t.mu.Lock()
	sp := &t.spans[c.span-1]
	if int(sp.NAttrs) == attrCap {
		sp.AttrDrops++
	} else {
		sp.Attrs[sp.NAttrs] = a
		sp.NAttrs++
	}
	t.mu.Unlock()
	return c
}

// Uint attaches an integer attribute; returns c for chaining.
func (c Ctx) Uint(key string, v uint64) Ctx {
	if c.t == nil {
		return c
	}
	return c.attr(Attr{Key: key, U: v})
}

// Str attaches a string attribute; returns c for chaining.
func (c Ctx) Str(key, v string) Ctx {
	if c.t == nil {
		return c
	}
	return c.attr(Attr{Key: key, Str: v, IsStr: true})
}

// Error attaches err's message under the "error" key.  The message is
// only rendered when tracing is enabled, so the disabled path never
// pays for err.Error().
func (c Ctx) Error(err error) Ctx {
	if c.t == nil || err == nil {
		return c
	}
	return c.attr(Attr{Key: "error", Str: err.Error(), IsStr: true})
}
