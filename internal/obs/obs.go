// Package obs is the simulator's observability layer: typed pipeline
// events with a fixed-size flight-recorder ring, per-cause stall
// attribution for every rename slot-cycle, and small fixed-bucket
// histograms of the structures the paper's analysis leans on (active
// list occupancy, recycle stream length, fork lifetime).
//
// Everything here is allocation-free in steady state: events are plain
// value structs written into a preallocated ring, the attribution
// counters are a fixed array indexed by cause, and the histograms are
// fixed arrays of power-of-two buckets.  The exporters (export.go)
// allocate, but they run once per simulation, not per cycle.
//
// The attribution identity the invariant checker enforces: every cycle
// the machine runs, each of its RenameWidth pipeline slots is charged
// to exactly one Cause, so
//
//	Σ over causes of SlotCycles[cause] == Cycles × RenameWidth
//
// holds at all times.  See DESIGN.md "Pipeline telemetry" for the
// taxonomy.
package obs

import "math/bits"

// Stage identifies the pipeline stage (or lifecycle transition) an
// Event describes.
type Stage uint8

// Event stages.  The lifecycle stages (Merge and later) mirror the
// transitions of §2-§3 of the paper: forks, merges, respawns,
// promotions, squashes, and context reclaim.
const (
	StageFetch Stage = iota
	StageRename
	StageIssue
	StageComplete
	StageCommit
	StageStall
	StageMerge
	StageFork
	StageRespawn
	StageReclaim
	StagePromote
	StageReinstate
	StageSquash
	StageKill
	StageHalt

	numStages
)

// String names the stage for dumps and exports.
func (s Stage) String() string {
	switch s {
	case StageFetch:
		return "fetch"
	case StageRename:
		return "rename"
	case StageIssue:
		return "issue"
	case StageComplete:
		return "complete"
	case StageCommit:
		return "commit"
	case StageStall:
		return "stall"
	case StageMerge:
		return "merge"
	case StageFork:
		return "fork"
	case StageRespawn:
		return "respawn"
	case StageReclaim:
		return "reclaim"
	case StagePromote:
		return "promote"
	case StageReinstate:
		return "reinstate"
	case StageSquash:
		return "squash"
	case StageKill:
		return "kill"
	case StageHalt:
		return "halt"
	}
	return "stage?"
}

// Cause classifies what a rename slot-cycle was spent on.  The busy
// causes (CauseBusyFetch, CauseRecycle) are slots that renamed an
// instruction; the rest attribute unused slots to the resource that
// blocked them, or to idleness when nothing was waiting.
type Cause uint8

// Slot-cycle causes.  Every slot of every cycle is charged to exactly
// one of these.
const (
	// CauseNone marks events that carry no attribution (and is never a
	// valid slot charge).
	CauseNone Cause = iota
	// CauseBusyFetch: the slot renamed an instruction from the fetch
	// path.
	CauseBusyFetch
	// CauseRecycle: the slot renamed an instruction injected through
	// the recycle datapath.
	CauseRecycle
	// CauseICacheMiss: slots idled while every fetchable thread was
	// stalled on an instruction-cache fill.
	CauseICacheMiss
	// CauseRenameRegs: rename stalled on an empty physical-register
	// free list.
	CauseRenameRegs
	// CauseRenameAL: rename stalled on a full active list.
	CauseRenameAL
	// CauseIQFull: rename stalled on a full instruction queue.
	CauseIQFull
	// CauseIdle: no instructions were available and nothing specific
	// was blocking (front-end latency, drained programs, empty fetch
	// queues).
	CauseIdle

	// NumCauses sizes the attribution array.
	NumCauses
)

// String names the cause for dumps and exports.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseBusyFetch:
		return "busy_fetch"
	case CauseRecycle:
		return "recycle_inject"
	case CauseICacheMiss:
		return "icache_miss"
	case CauseRenameRegs:
		return "rename_free_list"
	case CauseRenameAL:
		return "active_list_full"
	case CauseIQFull:
		return "iq_full"
	case CauseIdle:
		return "idle"
	}
	return "cause?"
}

// Event is one typed pipeline event.  The meaning of Seq, PC and Arg
// depends on the stage; String renders the generic form and DESIGN.md
// tabulates the per-stage conventions.
type Event struct {
	Cycle uint64
	Seq   uint64
	PC    uint64
	Arg   uint64
	Stage Stage
	Cause Cause
	Ctx   int16
}

// String renders the event as a single debug line.
func (e Event) String() string {
	s := "cyc=" + utoa(e.Cycle) + " " + e.Stage.String() + " ctx=" + itoa(int64(e.Ctx))
	if e.Cause != CauseNone {
		s += " cause=" + e.Cause.String()
	}
	s += " seq=" + utoa(e.Seq) + " pc=0x" + htoa(e.PC) + " arg=" + utoa(e.Arg)
	return s
}

// utoa/itoa/htoa format integers without fmt so Event.String stays off
// the reflection path (dumps render thousands of events).
func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + utoa(uint64(-v))
	}
	return utoa(uint64(v))
}

func htoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	const digits = "0123456789abcdef"
	var b [16]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = digits[v&0xF]
		v >>= 4
	}
	return string(b[i:])
}

// Ring is the flight recorder: a fixed-size ring of the most recent
// events.  Recording never allocates; when the ring is full the oldest
// event is overwritten.  The zero Ring is not usable — construct with
// NewRing.
type Ring struct {
	buf  []Event
	mask uint64
	n    uint64 // total events ever recorded
}

// NewRing builds a flight recorder holding the last size events (size
// is rounded up to a power of two, minimum 16).
func NewRing(size int) *Ring {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Ring{buf: make([]Event, n), mask: uint64(n) - 1}
}

// Record appends one event, overwriting the oldest when full.  It is
// called from inside the cycle loop whenever a ring is attached, so it
// is on the steady-state allocation budget (//recycle:hotpath).
//
//recycle:hotpath
func (r *Ring) Record(e Event) {
	r.buf[r.n&r.mask] = e
	r.n++
}

// Len reports how many events the ring currently retains.
func (r *Ring) Len() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Total reports how many events were ever recorded (including those
// overwritten).
func (r *Ring) Total() uint64 { return r.n }

// Events returns the retained events oldest-first.  It allocates and is
// meant for dumps and exports, not the cycle loop.
func (r *Ring) Events() []Event {
	n := uint64(r.Len())
	out := make([]Event, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}

// histBuckets is the bucket count of every histogram: power-of-two
// buckets 0, 1, 2-3, 4-7, ... 8192-16383, plus a final overflow bucket.
const histBuckets = 16

// Hist is a fixed-bucket histogram of uint64 samples.  Bucket i (i <
// 15) counts samples whose bit length is i, i.e. values in
// [2^(i-1), 2^i - 1]; bucket 15 counts everything from 16384 up.
// Observing never allocates.
type Hist struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Add accumulates other into h.
func (h *Hist) Add(other *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// Mean returns the average sample, 0 when empty.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// BucketUpper returns the inclusive upper bound of bucket i, and false
// for the unbounded overflow bucket.
func BucketUpper(i int) (uint64, bool) {
	if i >= histBuckets-1 {
		return 0, false
	}
	return 1<<uint(i) - 1, true
}

// Metrics is the always-on telemetry of one simulation: the stall
// attribution array plus the histograms.  The attribution counters are
// unconditionally maintained by the core (they cost a few adds per
// cycle); histogram sampling is gated by Hists because the per-cycle
// occupancy walk is measurable at full simulation speed.
type Metrics struct {
	// Hists enables histogram sampling (set before the run starts).
	Hists bool

	// SlotCycles[cause] counts rename slot-cycles charged to cause.
	// The invariant checker enforces Σ == Cycles × RenameWidth.
	SlotCycles [NumCauses]uint64

	// ALOcc samples the total uncommitted active-list occupancy across
	// all contexts, once per cycle.
	ALOcc Hist
	// StreamLen samples the length of every recycle stream at build
	// time (post-truncation, so what actually injects).
	StreamLen Hist
	// ForkLife samples the cycles between an alternate path's spawn
	// and its deletion.
	ForkLife Hist
}

// Add accumulates other into m (multi-run aggregation).
func (m *Metrics) Add(other *Metrics) {
	m.Hists = m.Hists || other.Hists
	for i := range m.SlotCycles {
		m.SlotCycles[i] += other.SlotCycles[i]
	}
	m.ALOcc.Add(&other.ALOcc)
	m.StreamLen.Add(&other.StreamLen)
	m.ForkLife.Add(&other.ForkLife)
}

// TotalSlotCycles sums the attribution array (the left side of the
// identity).
func (m *Metrics) TotalSlotCycles() uint64 {
	var sum uint64
	for _, v := range m.SlotCycles {
		sum += v
	}
	return sum
}

// SlotFraction returns the fraction of all attributed slot-cycles
// charged to cause, 0 when nothing has been attributed.
func (m *Metrics) SlotFraction(c Cause) float64 {
	total := m.TotalSlotCycles()
	if total == 0 {
		return 0
	}
	return float64(m.SlotCycles[c]) / float64(total)
}
