package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"reflect"
	"sort"
	"strconv"

	"recyclesim/internal/stats"
)

// Snapshot bundles one run's exportable state: the raw counters, the
// telemetry, and (optionally) the flight-recorder contents.  Both
// exporters are deterministic — the same run produces byte-identical
// output — because every section is an ordered struct or slice, never a
// ranged map.
type Snapshot struct {
	Name    string
	Stats   *stats.Sim
	Metrics *Metrics
	Ring    *Ring
}

// NamedValue is one derived (float) statistic, named in snake_case.
type NamedValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// NamedCounter is one raw counter, named in snake_case.  Index is >= 0
// for per-program counters ([]uint64 fields) and -1 for scalars.
type NamedCounter struct {
	Name  string
	Index int
	Value uint64
}

// Counters flattens every uint64 (and []uint64) field of s, in
// declaration order, into named counters.  Reflection keeps the export
// in lockstep with the stats struct: a newly added counter shows up in
// both exporters without touching this package.
func Counters(s *stats.Sim) []NamedCounter {
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	out := make([]NamedCounter, 0, t.NumField()+4)
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		name := snake(f.Name)
		switch f.Type.Kind() {
		case reflect.Uint64:
			out = append(out, NamedCounter{Name: name, Index: -1, Value: v.Field(i).Uint()})
		case reflect.Slice:
			if f.Type.Elem().Kind() != reflect.Uint64 {
				continue
			}
			fv := v.Field(i)
			for j := 0; j < fv.Len(); j++ {
				out = append(out, NamedCounter{Name: name, Index: j, Value: fv.Index(j).Uint()})
			}
		}
	}
	return out
}

// Derived evaluates every niladic float64-returning method of s and
// returns the results sorted by snake_case name.  Non-finite values are
// clamped to 0 so the JSON exporter cannot fail on a future unguarded
// ratio (the stats tests additionally reject such methods outright).
func Derived(s *stats.Sim) []NamedValue {
	v := reflect.ValueOf(s)
	t := v.Type()
	out := make([]NamedValue, 0, t.NumMethod())
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		if m.Type.NumIn() != 1 || m.Type.NumOut() != 1 || m.Type.Out(0).Kind() != reflect.Float64 {
			continue
		}
		val := v.Method(i).Call(nil)[0].Float()
		if math.IsNaN(val) || math.IsInf(val, 0) {
			val = 0
		}
		out = append(out, NamedValue{Name: snake(m.Name), Value: val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// snake converts a Go CamelCase identifier (initialisms included:
// "IPC" → "ipc", "BTBMisses" → "btb_misses") to snake_case.
func snake(name string) string {
	rs := []rune(name)
	out := make([]rune, 0, len(rs)+4)
	for i, r := range rs {
		if isUpper(r) {
			prevLower := i > 0 && !isUpper(rs[i-1])
			nextLower := i+1 < len(rs) && !isUpper(rs[i+1])
			if i > 0 && (prevLower || nextLower) {
				out = append(out, '_')
			}
			r += 'a' - 'A'
		}
		out = append(out, r)
	}
	return string(out)
}

func isUpper(r rune) bool { return r >= 'A' && r <= 'Z' }

type jsonBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

type jsonHist struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []jsonBucket `json:"buckets"`
}

func histJSON(h *Hist) jsonHist {
	out := jsonHist{Count: h.Count, Sum: h.Sum, Max: h.Max, Mean: h.Mean()}
	var cum uint64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		le := "+Inf"
		if upper, ok := BucketUpper(i); ok {
			le = strconv.FormatUint(upper, 10)
		}
		out.Buckets = append(out.Buckets, jsonBucket{LE: le, Count: cum})
	}
	return out
}

type jsonCause struct {
	Cause      string  `json:"cause"`
	SlotCycles uint64  `json:"slot_cycles"`
	Fraction   float64 `json:"fraction"`
}

type jsonEvent struct {
	Cycle uint64 `json:"cycle"`
	Stage string `json:"stage"`
	Ctx   int16  `json:"ctx"`
	Cause string `json:"cause,omitempty"`
	Seq   uint64 `json:"seq"`
	PC    uint64 `json:"pc"`
	Arg   uint64 `json:"arg"`
}

type jsonCounter struct {
	Name  string `json:"name"`
	Index *int   `json:"index,omitempty"`
	Value uint64 `json:"value"`
}

type jsonHists struct {
	ALOccupancy      jsonHist `json:"al_occupancy"`
	RecycleStreamLen jsonHist `json:"recycle_stream_len"`
	ForkLifetime     jsonHist `json:"fork_lifetime"`
}

type jsonDoc struct {
	Name            string        `json:"name,omitempty"`
	Counters        []jsonCounter `json:"counters"`
	Derived         []NamedValue  `json:"derived"`
	SlotCycles      []jsonCause   `json:"slot_cycles"`
	SlotCyclesTotal uint64        `json:"slot_cycles_total"`
	Histograms      *jsonHists    `json:"histograms,omitempty"`
	FlightRecorder  []jsonEvent   `json:"flight_recorder,omitempty"`
}

// WriteJSON writes the snapshot as indented JSON.  Output is
// byte-identical across identical runs.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	doc := jsonDoc{Name: s.Name}
	for _, c := range Counters(s.Stats) {
		jc := jsonCounter{Name: c.Name, Value: c.Value}
		if c.Index >= 0 {
			idx := c.Index
			jc.Index = &idx
		}
		doc.Counters = append(doc.Counters, jc)
	}
	doc.Derived = Derived(s.Stats)
	m := s.Metrics
	if m != nil {
		for cause := CauseNone + 1; cause < NumCauses; cause++ {
			doc.SlotCycles = append(doc.SlotCycles, jsonCause{
				Cause:      cause.String(),
				SlotCycles: m.SlotCycles[cause],
				Fraction:   m.SlotFraction(cause),
			})
		}
		doc.SlotCyclesTotal = m.TotalSlotCycles()
		if m.Hists {
			doc.Histograms = &jsonHists{
				ALOccupancy:      histJSON(&m.ALOcc),
				RecycleStreamLen: histJSON(&m.StreamLen),
				ForkLifetime:     histJSON(&m.ForkLife),
			}
		}
	}
	if s.Ring != nil {
		for _, e := range s.Ring.Events() {
			je := jsonEvent{Cycle: e.Cycle, Stage: e.Stage.String(), Ctx: e.Ctx,
				Seq: e.Seq, PC: e.PC, Arg: e.Arg}
			if e.Cause != CauseNone {
				je.Cause = e.Cause.String()
			}
			doc.FlightRecorder = append(doc.FlightRecorder, je)
		}
	}
	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// WriteText writes the snapshot as a Prometheus-style text exposition:
// one `sim_<name>[{labels}] <value>` line per counter, derived metric,
// stall cause, and histogram bucket.  Output is byte-identical across
// identical runs.
func (s *Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if s.Name != "" {
		bw.WriteString("# run " + s.Name + "\n")
	}
	bw.WriteString("# raw simulation counters\n")
	for _, c := range Counters(s.Stats) {
		if c.Index >= 0 {
			bw.WriteString("sim_" + c.Name + "{program=\"" + strconv.Itoa(c.Index) + "\"} ")
		} else {
			bw.WriteString("sim_" + c.Name + " ")
		}
		bw.WriteString(strconv.FormatUint(c.Value, 10) + "\n")
	}
	bw.WriteString("# derived metrics\n")
	for _, d := range Derived(s.Stats) {
		bw.WriteString("sim_" + d.Name + " " + formatFloat(d.Value) + "\n")
	}
	if m := s.Metrics; m != nil {
		bw.WriteString("# rename slot-cycle attribution\n")
		for cause := CauseNone + 1; cause < NumCauses; cause++ {
			bw.WriteString("sim_slot_cycles{cause=\"" + cause.String() + "\"} " +
				strconv.FormatUint(m.SlotCycles[cause], 10) + "\n")
		}
		bw.WriteString("sim_slot_cycles_total " + strconv.FormatUint(m.TotalSlotCycles(), 10) + "\n")
		if m.Hists {
			writeHistText(bw, "sim_al_occupancy", &m.ALOcc)
			writeHistText(bw, "sim_recycle_stream_len", &m.StreamLen)
			writeHistText(bw, "sim_fork_lifetime", &m.ForkLife)
		}
	}
	return bw.Flush()
}

// writeHistText emits one histogram in the Prometheus convention:
// cumulative `_bucket{le="..."}` lines plus `_sum`, `_count` and a
// non-standard `_max` gauge.
func writeHistText(bw *bufio.Writer, name string, h *Hist) {
	HistText(bw, name, "", h)
}

// HistText writes one histogram as Prometheus text exposition lines:
// cumulative `_bucket{le="..."}` lines plus `_sum`, `_count` and a
// non-standard `_max` gauge.  labels, when non-empty, is a preformatted
// `key="value"` list merged into every line's label set; the job
// server reuses this for its per-stage service latency histograms.
func HistText(bw *bufio.Writer, name, labels string, h *Hist) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		le := "+Inf"
		if upper, ok := BucketUpper(i); ok {
			le = strconv.FormatUint(upper, 10)
		}
		bw.WriteString(name + "_bucket{" + labels + sep + "le=\"" + le + "\"} " + strconv.FormatUint(cum, 10) + "\n")
	}
	suffix := " "
	if labels != "" {
		suffix = "{" + labels + "} "
	}
	bw.WriteString(name + "_sum" + suffix + strconv.FormatUint(h.Sum, 10) + "\n")
	bw.WriteString(name + "_count" + suffix + strconv.FormatUint(h.Count, 10) + "\n")
	bw.WriteString(name + "_max" + suffix + strconv.FormatUint(h.Max, 10) + "\n")
}

// formatFloat renders a float deterministically (shortest round-trip
// form, matching strconv's exact conversion).
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
