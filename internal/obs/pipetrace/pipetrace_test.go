package pipetrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"recyclesim/internal/isa"
	"recyclesim/internal/obs"
)

var addInst = isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3}

// renameN observes n renamed instructions with distinct PCs and
// sequence numbers, returning the handles.
func renameN(r *Recorder, n int) []Handle {
	hs := make([]Handle, n)
	for i := 0; i < n; i++ {
		hs[i] = r.OnRename(uint64(10+i), 0, uint64(i), uint64(0x1000+4*i), addInst, uint64(9+i), false)
	}
	return hs
}

func TestSamplingOneInN(t *testing.T) {
	for _, every := range []uint64{0, 1, 4} {
		r := New(Config{SampleEvery: every})
		renameN(r, 16)
		want := 16
		if every > 1 {
			want = 16 / int(every)
		}
		if got := len(r.Records()); got != want {
			t.Errorf("SampleEvery=%d: %d records, want %d", every, got, want)
		}
		if r.Seen() != 16 {
			t.Errorf("SampleEvery=%d: Seen()=%d, want 16", every, r.Seen())
		}
	}
	// The first instruction is always in the sample, so short runs
	// still produce a trace.
	r := New(Config{SampleEvery: 1000})
	renameN(r, 3)
	if len(r.Records()) != 1 {
		t.Errorf("sparse sampling: %d records, want 1 (the first)", len(r.Records()))
	}
}

func TestPCFilter(t *testing.T) {
	r := New(Config{PCMin: 0x1008, PCMax: 0x100c})
	renameN(r, 8) // PCs 0x1000..0x101c
	recs := r.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2 in [0x1008,0x100c]", len(recs))
	}
	for _, rec := range recs {
		if rec.PC < 0x1008 || rec.PC > 0x100c {
			t.Errorf("record PC %#x outside filter range", rec.PC)
		}
	}
}

func TestCycleWindow(t *testing.T) {
	r := New(Config{CycleMin: 12, CycleMax: 14})
	renameN(r, 8) // rename cycles 10..17
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3 renamed in [12,14]", len(recs))
	}
	for _, rec := range recs {
		if rec.Rename < 12 || rec.Rename > 14 {
			t.Errorf("record renamed at %d outside window", rec.Rename)
		}
	}
	// Later stage marks of an in-window instruction land even past
	// CycleMax.
	h := Handle(1)
	r.OnCommit(h, 99)
	if rec := r.Records()[0]; !rec.Committed || rec.Retire != 99 {
		t.Errorf("post-window commit not recorded: %+v", rec)
	}
}

func TestRecordCapAndTruncation(t *testing.T) {
	r := New(Config{MaxRecords: 4})
	hs := renameN(r, 10)
	if len(r.Records()) != 4 {
		t.Fatalf("%d records, want cap 4", len(r.Records()))
	}
	if r.TruncatedRecords() != 6 {
		t.Errorf("TruncatedRecords()=%d, want 6", r.TruncatedRecords())
	}
	for i, h := range hs {
		if i < 4 && h != Handle(i+1) {
			t.Errorf("handle %d = %d, want %d", i, h, i+1)
		}
		if i >= 4 && h != 0 {
			t.Errorf("over-cap handle %d = %d, want 0", i, h)
		}
	}
}

func TestInstantCapAndTruncation(t *testing.T) {
	r := New(Config{MaxInstants: 2})
	for i := 0; i < 5; i++ {
		r.Instant(uint64(i), obs.StageFork, 0, 0x2000, 1)
	}
	if len(r.Instants()) != 2 {
		t.Errorf("%d instants, want cap 2", len(r.Instants()))
	}
	if r.TruncatedInstants() != 3 {
		t.Errorf("TruncatedInstants()=%d, want 3", r.TruncatedInstants())
	}
}

func TestUntracedHandleIsNoOp(t *testing.T) {
	r := New(Config{})
	renameN(r, 1)
	before := r.Records()[0]
	for _, h := range []Handle{0, -1} {
		r.OnQueue(h, 5)
		r.OnReuse(h, 5)
		r.OnIssue(h, 5)
		r.OnWriteback(h, 5)
		r.OnCommit(h, 5)
		r.OnSquash(h, 5)
	}
	if after := r.Records()[0]; after != before {
		t.Errorf("untraced handle mutated record: %+v -> %+v", before, after)
	}
}

// committedRecorder builds a recorder holding one of each record shape
// the exporters must distinguish: fetched+committed, recycled+committed,
// recycled+reused, and fetched+squashed.
func committedRecorder() *Recorder {
	r := New(Config{})
	h := r.OnRename(10, 0, 0, 0x1000, addInst, 8, false)
	r.OnQueue(h, 11)
	r.OnIssue(h, 13)
	r.OnWriteback(h, 14)
	r.OnCommit(h, 15)

	h = r.OnRename(12, 1, 0, 0x1004, addInst, 0, true)
	r.OnQueue(h, 13)
	r.OnIssue(h, 14)
	r.OnWriteback(h, 15)
	r.OnCommit(h, 16)

	h = r.OnRename(14, 1, 1, 0x1008, addInst, 0, true)
	r.OnReuse(h, 14)
	r.OnCommit(h, 17)

	h = r.OnRename(16, 2, 0, 0x100c, addInst, 15, false)
	r.OnQueue(h, 17)
	r.OnSquash(h, 19)

	r.Instant(12, obs.StageFork, 0, 0x1004, 1)
	r.Instant(20, obs.StageMerge, 1, 0x100c, 2)
	return r
}

func TestWriteChromeShapesAndDeterminism(t *testing.T) {
	r := committedRecorder()
	var a, b bytes.Buffer
	if err := r.WriteChrome(&a, 25); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChrome(&b, 25); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two WriteChrome calls on the same recorder differ")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	count := func(name, ph string) int {
		n := 0
		for _, e := range doc.TraceEvents {
			if e.Name == name && e.Ph == ph {
				n++
			}
		}
		return n
	}
	// One fetched+committed and one fetched+squashed record have fetch
	// spans; the two recycled ones must not.
	if got := count("fetch", "b"); got != 2 {
		t.Errorf("%d fetch spans, want 2 (recycled records must have none)", got)
	}
	if got := count("recycle-inject", "n"); got != 2 {
		t.Errorf("%d recycle-inject instants, want 2", got)
	}
	// The reused record has no execute span: three records queued, only
	// two issued.
	if got := count("execute", "b"); got != 2 {
		t.Errorf("%d execute spans, want 2 (reused record must have none)", got)
	}
	if got := count("reuse-bypass", "n"); got != 1 {
		t.Errorf("%d reuse-bypass instants, want 1", got)
	}
	if got := count("commit", "n"); got != 3 {
		t.Errorf("%d commit instants, want 3", got)
	}
	if got := count("squash", "n"); got != 1 {
		t.Errorf("%d squash instants, want 1", got)
	}
	if got := count(obs.StageFork.String(), "i"); got != 1 {
		t.Errorf("%d fork lifecycle instants, want 1", got)
	}
}

func TestWriteKonataShapeAndDeterminism(t *testing.T) {
	r := committedRecorder()
	var a, b bytes.Buffer
	if err := r.WriteKonata(&a, 25); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteKonata(&b, 25); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two WriteKonata calls on the same recorder differ")
	}
	out := a.String()
	if !strings.HasPrefix(out, "Kanata\t0004\n") {
		t.Fatalf("missing Kanata header, got %q", out[:min(len(out), 20)])
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	starts := map[string]int{}
	for _, l := range lines {
		if i := strings.IndexByte(l, '\t'); i > 0 {
			starts[l[:i]]++
		} else {
			starts[l]++
		}
	}
	if starts["I"] != 4 || starts["L"] != 4 {
		t.Errorf("want 4 I and 4 L lines, got I=%d L=%d", starts["I"], starts["L"])
	}
	if starts["R"] != 4 {
		t.Errorf("want 4 R (retire/flush) lines, got %d", starts["R"])
	}
	// The squashed record retires with flush flag 1.
	if !strings.Contains(out, "R\t3\t3\t1\n") {
		t.Errorf("squashed record's flush retirement missing from:\n%s", out)
	}
	// The reused record (id 2) opens a Ru stage and never opens Ex.
	if !strings.Contains(out, "S\t2\t0\tRu\n") {
		t.Errorf("reused record's Ru stage missing from:\n%s", out)
	}
	for _, l := range lines {
		if strings.HasPrefix(l, "S\t2\t") && strings.HasSuffix(l, "\tEx") {
			t.Errorf("reused record must not enter Ex: %q", l)
		}
	}
}
