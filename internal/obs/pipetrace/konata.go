package pipetrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Konata stage mnemonics.  A record's visible pipeline path is the
// subsequence of these stages it actually entered: recycled
// instructions have no F segment, reused ones go Rn→Ru with no
// Qu/Ex/Wb, and everything else walks F→Rn→Qu→Ex→Wb.
const (
	konStageFetch     = "F"
	konStageRename    = "Rn"
	konStageReuse     = "Ru"
	konStageQueue     = "Qu"
	konStageExecute   = "Ex"
	konStageWriteback = "Wb"
)

// konataEvent is one output line scheduled at a cycle.  ord breaks ties
// within a (cycle, record) pair so stage ends precede stage starts and
// retirement comes last.
type konataEvent struct {
	cycle uint64
	id    uint64
	ord   int
	line  string
}

const (
	konOrdInsn   = 0 // I + L lines
	konOrdEnd    = 1 // E (stage end)
	konOrdStart  = 2 // S (stage start)
	konOrdRetire = 3 // R
)

// WriteKonata renders the trace in Konata's text log format (the
// "Kanata" format emitted by Onikiri2 and understood by the Konata
// pipeline viewer).  Each traced instruction opens with I/L lines at
// the cycle its first stage begins, walks its stage segments with S/E
// lines, and closes with an R line (flush flag 1 when squashed).
// finalCycle closes segments of instructions still in flight at the end
// of the run; those get no R line.  Output is deterministic.
func (r *Recorder) WriteKonata(w io.Writer, finalCycle uint64) error {
	evs := make([]konataEvent, 0, len(r.recs)*8)
	for i := range r.recs {
		evs = appendKonataRecord(evs, &r.recs[i], finalCycle)
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.cycle != b.cycle {
			return a.cycle < b.cycle
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return a.ord < b.ord
	})

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Kanata\t0004\n")
	var cur uint64
	started := false
	for _, ev := range evs {
		if !started {
			fmt.Fprintf(bw, "C=\t%d\n", ev.cycle)
			cur, started = ev.cycle, true
		} else if ev.cycle != cur {
			fmt.Fprintf(bw, "C\t%d\n", ev.cycle-cur)
			cur = ev.cycle
		}
		bw.WriteString(ev.line)
	}
	return bw.Flush()
}

// konataSegment is one contiguous stage occupancy [from, to).
type konataSegment struct {
	name string
	from uint64
}

// appendKonataRecord expands one record into its I/L/S/E/R lines.
func appendKonataRecord(evs []konataEvent, rec *Record, finalCycle uint64) []konataEvent {
	end := finalCycle
	closed := false
	flush := 0
	switch {
	case rec.Retire != 0:
		end, closed = rec.Retire, true
	case rec.Squash != 0:
		end, closed, flush = rec.Squash, true, 1
	}

	segs := make([]konataSegment, 0, 6)
	if rec.Fetch != 0 {
		segs = append(segs, konataSegment{konStageFetch, rec.Fetch})
	}
	segs = append(segs, konataSegment{konStageRename, rec.Rename})
	if rec.Reused {
		segs = append(segs, konataSegment{konStageReuse, rec.Rename})
	}
	if rec.Queue != 0 {
		segs = append(segs, konataSegment{konStageQueue, rec.Queue})
	}
	if rec.Issue != 0 {
		segs = append(segs, konataSegment{konStageExecute, rec.Issue})
	}
	if rec.Writeback != 0 {
		segs = append(segs, konataSegment{konStageWriteback, rec.Writeback})
	}

	start := segs[0].from
	if end < start {
		end = start
	}
	id := rec.ID
	evs = append(evs,
		konataEvent{start, id, konOrdInsn, fmt.Sprintf("I\t%d\t%d\t%d\n", id, rec.Seq, rec.Ctx)},
		konataEvent{start, id, konOrdInsn, fmt.Sprintf("L\t%d\t0\t%#x: %s\n", id, rec.PC, rec.Inst.String())})
	for i, seg := range segs {
		to := end
		if i+1 < len(segs) {
			to = segs[i+1].from
		}
		if to < seg.from {
			to = seg.from
		}
		evs = append(evs,
			konataEvent{seg.from, id, konOrdStart, fmt.Sprintf("S\t%d\t0\t%s\n", id, seg.name)},
			konataEvent{to, id, konOrdEnd, fmt.Sprintf("E\t%d\t0\t%s\n", id, seg.name)})
	}
	if closed {
		evs = append(evs, konataEvent{end, id, konOrdRetire,
			fmt.Sprintf("R\t%d\t%d\t%d\n", id, id, flush)})
	}
	return evs
}
