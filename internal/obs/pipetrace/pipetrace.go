// Package pipetrace records per-instruction pipeline lifecycles: for
// every traced dynamic instruction, the cycle it entered each stage it
// actually visited (fetch or recycle-inject, rename, queue, issue or
// reuse-bypass, writeback, commit or squash), plus instants for the
// multipath lifecycle transitions (forks, merges, respawns) with the
// stage enums reused from internal/obs.
//
// The recorder is the aggregate telemetry's (internal/obs) microscope:
// counters can say "12% of renamed instructions were recycled", a
// pipetrace shows *this* instruction entering rename on cycle 4012 with
// no fetch stage at all.  The paper's central claims — recycled
// instructions bypass fetch/decode (§3.4), reused instructions bypass
// issue and execution (§3.5), re-spawn reactivates a context through
// the recycle datapath (§3.1) — become directly inspectable.
//
// The hot-path contract matches the flight recorder's: recording never
// allocates.  All storage is preallocated at construction and capped
// (records and instants beyond the caps are counted, not stored), and
// every core call site is nil-guarded so a detached recorder costs
// nothing (the traceguard analyzer enforces the guards).  Sampling
// controls — 1-in-N dynamic instructions, a PC range, a cycle window —
// keep a trace of a multi-million-instruction run bounded.
//
// The exporters (chrome.go, konata.go) allocate freely; they run once
// after the simulation, and their output is deterministic: identical
// runs produce byte-identical trace files.
package pipetrace

import (
	"recyclesim/internal/isa"
	"recyclesim/internal/obs"
)

// Handle identifies a traced in-flight instruction at the hot-path call
// sites: 0 means untraced (sampled out, filtered out, or over the cap),
// any other value is the record index plus one.  The core stores the
// handle in the active-list entry; the ring's slot reuse resets it to 0
// automatically when the slot is re-renamed.
type Handle = int32

// Config bounds what the recorder keeps.
type Config struct {
	// SampleEvery traces 1 in N renamed dynamic instructions (counted
	// across all contexts in rename order).  0 and 1 both mean "every
	// instruction".
	SampleEvery uint64

	// PCMin/PCMax restrict tracing to instructions whose PC lies in
	// [PCMin, PCMax].  Both zero disables the filter.
	PCMin, PCMax uint64

	// CycleMin/CycleMax restrict tracing to instructions *renamed*
	// within [CycleMin, CycleMax] (later stage marks of a traced
	// instruction are always recorded).  CycleMax zero means unbounded.
	CycleMin, CycleMax uint64

	// MaxRecords caps stored instruction records (default 1<<16);
	// instructions traced past the cap increment TruncatedRecords
	// instead.  Clamped so a record index always fits a Handle.
	MaxRecords int

	// MaxInstants caps stored lifecycle instants (default 1<<12), with
	// TruncatedInstants counting the overflow.
	MaxInstants int
}

// Record is one traced dynamic instruction's stage timeline.  A stage
// field holds the cycle the instruction entered that stage, or 0 when
// it never did (the core's cycle counter starts at 1, so 0 is
// unambiguous).  The legal shapes — reused implies no queue/issue/
// writeback, recycled implies no fetch, squashed implies no retire —
// are enforced by the core's invariant checker.
type Record struct {
	ID   uint64 // dense allocation order, also the trace-viewer span id
	Ctx  int16  // hardware context that renamed it
	Seq  uint64 // active-list sequence number in that context
	PC   uint64
	Inst isa.Inst

	Recycled  bool // entered rename through the recycle datapath (no fetch)
	Reused    bool // bypassed issue/execute via instruction reuse
	Squashed  bool
	Committed bool

	Fetch     uint64 // entered the fetch queue (0 for recycled entries)
	Rename    uint64 // always set
	Queue     uint64 // entered an instruction queue
	Issue     uint64 // issued to a functional unit (execution begins)
	Writeback uint64 // result written back (execution ends)
	Retire    uint64 // committed
	Squash    uint64 // squashed
}

// Instant is one lifecycle transition (fork, merge, respawn) recorded
// outside any single instruction's timeline.  Stage reuses the
// internal/obs enum; Arg carries the stage-specific payload (the
// spawned or source context id).
type Instant struct {
	Cycle uint64
	PC    uint64
	Arg   uint64
	Stage obs.Stage
	Ctx   int16
}

// Recorder collects Records and Instants.  Construct with New; the
// zero Recorder has no storage and drops everything.
type Recorder struct {
	cfg  Config
	recs []Record
	inst []Instant

	seen       uint64 // renamed dynamic instructions observed (sampling base)
	truncRecs  uint64
	truncInsts uint64
}

// New builds a recorder with the given bounds, preallocating all
// record storage so the hot-path hooks never allocate.
func New(cfg Config) *Recorder {
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = 1 << 16
	}
	if cfg.MaxRecords > 1<<31-2 {
		cfg.MaxRecords = 1<<31 - 2 // index+1 must fit a Handle
	}
	if cfg.MaxInstants <= 0 {
		cfg.MaxInstants = 1 << 12
	}
	return &Recorder{
		cfg:  cfg,
		recs: make([]Record, 0, cfg.MaxRecords),
		inst: make([]Instant, 0, cfg.MaxInstants),
	}
}

// OnRename observes one renamed dynamic instruction and decides whether
// to trace it.  fetchCycle is the cycle the instruction entered the
// fetch queue, or 0 for recycle-injected instructions, which never
// fetched.  The returned handle is 0 when the instruction is not
// traced; the caller passes it to every later stage mark.
//
// Every stage-mark method below runs inside the cycle loop when a
// recorder is attached, so each is on the steady-state allocation
// budget (//recycle:hotpath); the append targets keep their
// preallocated capacity, so a full recorder truncates instead of
// growing.
//
//recycle:hotpath
func (r *Recorder) OnRename(cycle uint64, ctx int, seq, pc uint64, in isa.Inst, fetchCycle uint64, recycled bool) Handle {
	r.seen++
	if n := r.cfg.SampleEvery; n > 1 && (r.seen-1)%n != 0 {
		return 0
	}
	if r.cfg.PCMax != 0 && (pc < r.cfg.PCMin || pc > r.cfg.PCMax) {
		return 0
	}
	if cycle < r.cfg.CycleMin || (r.cfg.CycleMax != 0 && cycle > r.cfg.CycleMax) {
		return 0
	}
	if len(r.recs) == cap(r.recs) {
		r.truncRecs++
		return 0
	}
	r.recs = append(r.recs, Record{
		ID:       uint64(len(r.recs)),
		Ctx:      int16(ctx),
		Seq:      seq,
		PC:       pc,
		Inst:     in,
		Recycled: recycled,
		Fetch:    fetchCycle,
		Rename:   cycle,
	})
	return Handle(len(r.recs))
}

// rec resolves a handle; nil for the untraced handle 0.  The records
// slice never reallocates (append is bounded by the preallocated cap),
// so the pointer stays valid.
func (r *Recorder) rec(h Handle) *Record {
	if h <= 0 {
		return nil
	}
	return &r.recs[h-1]
}

// OnQueue marks entry into an instruction queue (dispatch).
//
//recycle:hotpath
func (r *Recorder) OnQueue(h Handle, cycle uint64) {
	if rec := r.rec(h); rec != nil {
		rec.Queue = cycle
	}
}

// OnReuse marks the reuse bypass: the instruction adopted its old
// result at rename and will never queue, issue, or write back.
//
//recycle:hotpath
func (r *Recorder) OnReuse(h Handle, cycle uint64) {
	if rec := r.rec(h); rec != nil {
		rec.Reused = true
		_ = cycle // reuse happens at rename; the Rename cycle is the mark
	}
}

// OnIssue marks issue to a functional unit (execution begins).
//
//recycle:hotpath
func (r *Recorder) OnIssue(h Handle, cycle uint64) {
	if rec := r.rec(h); rec != nil {
		rec.Issue = cycle
	}
}

// OnWriteback marks result writeback (execution ends).
//
//recycle:hotpath
func (r *Recorder) OnWriteback(h Handle, cycle uint64) {
	if rec := r.rec(h); rec != nil {
		rec.Writeback = cycle
	}
}

// OnCommit marks in-order retirement.
//
//recycle:hotpath
func (r *Recorder) OnCommit(h Handle, cycle uint64) {
	if rec := r.rec(h); rec != nil {
		rec.Committed = true
		rec.Retire = cycle
	}
}

// OnSquash marks the instruction squashed (mispredict recovery, context
// kill, or reclaim).
//
//recycle:hotpath
func (r *Recorder) OnSquash(h Handle, cycle uint64) {
	if rec := r.rec(h); rec != nil {
		rec.Squashed = true
		rec.Squash = cycle
	}
}

// Instant records one lifecycle transition (fork, merge, respawn).
//
//recycle:hotpath
func (r *Recorder) Instant(cycle uint64, stage obs.Stage, ctx int, pc, arg uint64) {
	if len(r.inst) == cap(r.inst) {
		r.truncInsts++
		return
	}
	r.inst = append(r.inst, Instant{Cycle: cycle, Stage: stage, Ctx: int16(ctx), PC: pc, Arg: arg})
}

// Records returns the stored records in allocation (rename) order.  The
// slice aliases the recorder's storage; callers must not append.
func (r *Recorder) Records() []Record { return r.recs }

// Instants returns the stored lifecycle instants in recording order.
func (r *Recorder) Instants() []Instant { return r.inst }

// Seen returns the number of renamed dynamic instructions observed
// (before sampling and filtering).
func (r *Recorder) Seen() uint64 { return r.seen }

// TruncatedRecords counts instructions that passed sampling and
// filtering but were dropped because MaxRecords was reached.
func (r *Recorder) TruncatedRecords() uint64 { return r.truncRecs }

// TruncatedInstants counts lifecycle instants dropped at MaxInstants.
func (r *Recorder) TruncatedInstants() uint64 { return r.truncInsts }
