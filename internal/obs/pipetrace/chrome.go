package pipetrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteChrome renders the trace in Chrome trace_event JSON (the
// JSON-array-of-events "traceEvents" form), loadable in Perfetto and
// chrome://tracing.  Each hardware context becomes one "process"
// (pid = context id); each traced instruction becomes one async event
// group (id = record id) holding the overall lifetime span plus nested
// spans for the stages it actually visited ("fetch", "queue",
// "execute") and nestable instants for the point events (rename,
// recycle-inject, reuse-bypass, writeback, commit, squash).  Fork,
// merge, and respawn instants are emitted as process-scoped instant
// events.  Timestamps are simulator cycles (1 ts = 1 cycle).
//
// finalCycle closes spans still open at the end of the run (an
// instruction in flight when the simulation stopped).  Output is
// deterministic: records are written in allocation order with fixed
// field order, so identical runs produce byte-identical files.
func (r *Recorder) WriteChrome(w io.Writer, finalCycle uint64) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{bw: bw}
	bw.WriteString("{\"traceEvents\":[")

	for _, ctx := range r.usedCtxs() {
		cw.emit(chromeEvent{Name: "process_name", Ph: "M", Pid: ctx,
			Args: &chromeArgs{Name: fmt.Sprintf("ctx %d", ctx)}})
	}

	for i := range r.recs {
		cw.record(&r.recs[i], finalCycle)
	}
	for i := range r.inst {
		in := &r.inst[i]
		cw.emit(chromeEvent{Name: in.Stage.String(), Cat: "lifecycle", Ph: "i",
			Ts: in.Cycle, Pid: int(in.Ctx), S: "p",
			Args: &chromeArgs{PC: hex(in.PC), Arg: &in.Arg}})
	}

	bw.WriteString("]}\n")
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// chromeEvent is one trace_event object.  Field order is the emission
// order (encoding/json preserves struct order), keeping output stable.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   uint64      `json:"ts"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	ID   *uint64     `json:"id,omitempty"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name      string  `json:"name,omitempty"`
	PC        string  `json:"pc,omitempty"`
	Seq       *uint64 `json:"seq,omitempty"`
	Arg       *uint64 `json:"arg,omitempty"`
	Recycled  *bool   `json:"recycled,omitempty"`
	Reused    *bool   `json:"reused,omitempty"`
	Committed *bool   `json:"committed,omitempty"`
	Squashed  *bool   `json:"squashed,omitempty"`
}

type chromeWriter struct {
	bw    *bufio.Writer
	first bool
	err   error
}

func (cw *chromeWriter) emit(ev chromeEvent) {
	if cw.err != nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		cw.err = err
		return
	}
	if cw.first {
		cw.bw.WriteString(",\n")
	} else {
		cw.bw.WriteString("\n")
		cw.first = true
	}
	cw.bw.Write(raw)
}

// record emits one traced instruction: the outer async lifetime span
// and the nested stage spans/instants between its rename and its end.
func (cw *chromeWriter) record(rec *Record, finalCycle uint64) {
	pid := int(rec.Ctx)
	id := rec.ID
	start := rec.Rename
	if rec.Fetch != 0 {
		start = rec.Fetch
	}
	end := finalCycle
	switch {
	case rec.Retire != 0:
		end = rec.Retire
	case rec.Squash != 0:
		end = rec.Squash
	}
	if end < start {
		end = start
	}

	label := fmt.Sprintf("%#x %s", rec.PC, rec.Inst.String())
	cw.emit(chromeEvent{Name: label, Cat: "inst", Ph: "b", Ts: start, Pid: pid, ID: &id,
		Args: &chromeArgs{PC: hex(rec.PC), Seq: &rec.Seq,
			Recycled: &rec.Recycled, Reused: &rec.Reused,
			Committed: &rec.Committed, Squashed: &rec.Squashed}})

	span := func(name string, from, to uint64) {
		cw.emit(chromeEvent{Name: name, Cat: "inst", Ph: "b", Ts: from, Pid: pid, ID: &id})
		cw.emit(chromeEvent{Name: name, Cat: "inst", Ph: "e", Ts: to, Pid: pid, ID: &id})
	}
	instant := func(name string, ts uint64) {
		cw.emit(chromeEvent{Name: name, Cat: "inst", Ph: "n", Ts: ts, Pid: pid, ID: &id})
	}

	if rec.Fetch != 0 {
		span("fetch", rec.Fetch, rec.Rename)
	}
	if rec.Recycled {
		instant("recycle-inject", rec.Rename)
	}
	instant("rename", rec.Rename)
	if rec.Reused {
		instant("reuse-bypass", rec.Rename)
	}
	if rec.Queue != 0 {
		to := rec.Issue
		if to == 0 {
			to = end
		}
		span("queue", rec.Queue, to)
	}
	if rec.Issue != 0 {
		to := rec.Writeback
		if to == 0 {
			to = end
		}
		span("execute", rec.Issue, to)
	}
	if rec.Writeback != 0 {
		instant("writeback", rec.Writeback)
	}
	if rec.Retire != 0 {
		instant("commit", rec.Retire)
	}
	if rec.Squash != 0 {
		instant("squash", rec.Squash)
	}
	cw.emit(chromeEvent{Name: label, Cat: "inst", Ph: "e", Ts: end, Pid: pid, ID: &id})
}

// usedCtxs returns the sorted set of context ids appearing in records
// or instants (for the process_name metadata events).
func (r *Recorder) usedCtxs() []int {
	var max int16 = -1
	for i := range r.recs {
		if r.recs[i].Ctx > max {
			max = r.recs[i].Ctx
		}
	}
	for i := range r.inst {
		if r.inst[i].Ctx > max {
			max = r.inst[i].Ctx
		}
	}
	if max < 0 {
		return nil
	}
	used := make([]bool, max+1)
	for i := range r.recs {
		used[r.recs[i].Ctx] = true
	}
	for i := range r.inst {
		used[r.inst[i].Ctx] = true
	}
	out := make([]int, 0, len(used))
	for ctx, ok := range used {
		if ok {
			out = append(out, ctx)
		}
	}
	return out
}

func hex(v uint64) string { return fmt.Sprintf("%#x", v) }
