// Package server is the opt-in HTTP observability server: it lets a
// long-running simulation or sweep be inspected live without touching
// its output.  Endpoints:
//
//	/metrics   the Prometheus text exposition of the most recently
//	           published snapshot (internal/obs.Snapshot.WriteText)
//	/progress  JSON sweep progress: cells done/total, queue depths,
//	           current cell, simulated instructions and their rate
//	/healthz   liveness probe ("ok")
//	/buildinfo JSON build identity from runtime/debug.ReadBuildInfo
//	           (go version, module path/version, VCS revision)
//	/debug/pprof/...  the standard net/http/pprof handlers
//
// Publishers hand the server immutable snapshot copies via Publish
// (atomically swapped, so /metrics never sees a half-updated one) and
// a *sweep.Progress for the counters.  The server writes only to its
// own listener and (optionally) a startup line on stderr, so a run
// with the server enabled produces byte-identical stdout/file output
// to one without.  Close shuts down gracefully.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sync/atomic"
	"time"

	"recyclesim/internal/obs"
	"recyclesim/internal/sweep"
)

// Server serves the observability endpoints for one process.
type Server struct {
	prog  *sweep.Progress // may be nil: /progress reports zeros
	snap  atomic.Pointer[obs.Snapshot]
	start time.Time

	extra   []route
	appends []func(io.Writer)

	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// route is one extra handler registered before Start.
type route struct {
	pattern string
	handler http.Handler
}

// New builds a server that reads sweep progress from prog (which may be
// nil when there is no sweep to report).
func New(prog *sweep.Progress) *Server {
	return &Server{prog: prog}
}

// Publish atomically swaps in a new metrics snapshot.  The snapshot
// must be immutable — callers hand over a private copy, never the
// live simulator state a worker keeps mutating.
func (s *Server) Publish(sn *obs.Snapshot) { s.snap.Store(sn) }

// Handle registers an additional handler on the server's mux, letting
// a service (the recycled job API) mount its endpoints alongside
// /metrics, /progress, /healthz, and pprof on one listener.  Patterns
// follow net/http.ServeMux semantics (methods and wildcards included).
// Handle must be called before Start; registrations after Start are
// silently ignored.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.extra = append(s.extra, route{pattern: pattern, handler: h})
}

// AppendMetrics registers a writer that contributes extra Prometheus
// text exposition after the published snapshot on every /metrics
// scrape (the recycled job server appends its service latency
// histograms and gauges this way).  Like Handle, it must be called
// before Start.
func (s *Server) AppendMetrics(f func(io.Writer)) {
	s.appends = append(s.appends, f)
}

// Start binds addr (e.g. ":0" for an ephemeral port) and serves in a
// background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/buildinfo", s.handleBuildInfo)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range s.extra {
		mux.Handle(r.pattern, r.handler)
	}

	s.ln = ln
	s.start = time.Now()
	s.srv = &http.Server{Handler: mux}
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The run must not die because its observer did; the error
			// surfaces to curl as a refused connection.
			_ = err
		}
	}()
	return nil
}

// Addr returns the bound address (host:port), useful with ":0".
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully shuts the server down so in-flight scrapes finish,
// then waits for the serve goroutine.  Sweeps defer it to exit cleanly.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	<-s.done
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// buildInfoDoc is the /buildinfo JSON schema: enough to identify a
// deployed daemon (what module, which commit, dirty or not).
type buildInfoDoc struct {
	GoVersion   string `json:"go_version"`
	Path        string `json:"path"`
	Module      string `json:"module"`
	Version     string `json:"version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	info, ok := debug.ReadBuildInfo()
	if !ok {
		http.Error(w, `{"error":"no build info"}`, http.StatusInternalServerError)
		return
	}
	doc := buildInfoDoc{
		GoVersion: info.GoVersion,
		Path:      info.Path,
		Module:    info.Main.Path,
		Version:   info.Main.Version,
	}
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			doc.VCSRevision = kv.Value
		case "vcs.time":
			doc.VCSTime = kv.Value
		case "vcs.modified":
			doc.VCSModified = kv.Value == "true"
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	sn := s.snap.Load()
	if sn == nil {
		// Comment-only output is still valid Prometheus exposition.
		fmt.Fprintln(w, "# no snapshot published yet")
	} else if err := sn.WriteText(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, f := range s.appends {
		f(w)
	}
}

// progressDoc is the /progress JSON schema.
type progressDoc struct {
	CellsDone      int64   `json:"cells_done"`
	CellsTotal     int64   `json:"cells_total"`
	CellsQueued    int64   `json:"cells_queued"`
	CellsInFlight  int64   `json:"cells_in_flight"`
	CurrentCell    string  `json:"current_cell"`
	SimInsts       uint64  `json:"sim_insts"`
	SimInstsPerSec float64 `json:"sim_insts_per_sec"`
	ElapsedSec     float64 `json:"elapsed_sec"`
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	var doc progressDoc
	if s.prog != nil {
		doc.CellsDone, doc.CellsTotal, doc.SimInsts, doc.CurrentCell = s.prog.Snapshot()
		doc.CellsQueued, doc.CellsInFlight = s.prog.Depths()
	}
	doc.ElapsedSec = time.Since(s.start).Seconds()
	if doc.ElapsedSec > 0 {
		doc.SimInstsPerSec = float64(doc.SimInsts) / doc.ElapsedSec
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&doc)
}
