package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"recyclesim/internal/obs"
	"recyclesim/internal/stats"
	"recyclesim/internal/sweep"
)

// startServer binds an ephemeral port and registers cleanup.
func startServer(t *testing.T, prog *sweep.Progress) *Server {
	t.Helper()
	s := New(prog)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, s *Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s body: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestHealthz(t *testing.T) {
	s := startServer(t, nil)
	code, body, _ := get(t, s, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("GET /healthz = %d %q, want 200 ok", code, body)
	}
}

func TestMetricsBeforeAndAfterPublish(t *testing.T) {
	s := startServer(t, nil)
	code, body, ctype := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics before publish = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type %q, want Prometheus text exposition", ctype)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			t.Errorf("pre-publish /metrics has non-comment line %q", line)
		}
	}

	st := &stats.Sim{Cycles: 100, Committed: 250}
	s.Publish(&obs.Snapshot{Name: "unit", Stats: st, Metrics: &obs.Metrics{}})
	code, body, _ = get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics after publish = %d", code)
	}
	if !strings.Contains(body, "# run unit") || !strings.Contains(body, "sim_committed 250") {
		t.Errorf("/metrics missing published snapshot content:\n%s", body)
	}
}

func TestProgressJSON(t *testing.T) {
	prog := &sweep.Progress{}
	prog.SetTotal(7)
	prog.StartCell("big.2.16/REC/gcc")
	prog.FinishCell(12345)
	s := startServer(t, prog)
	code, body, ctype := get(t, s, "/progress")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("GET /progress = %d %q", code, ctype)
	}
	var doc struct {
		CellsDone   int64  `json:"cells_done"`
		CellsTotal  int64  `json:"cells_total"`
		CurrentCell string `json:"current_cell"`
		SimInsts    uint64 `json:"sim_insts"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/progress is not JSON: %v\n%s", err, body)
	}
	if doc.CellsDone != 1 || doc.CellsTotal != 7 || doc.SimInsts != 12345 ||
		doc.CurrentCell != "big.2.16/REC/gcc" {
		t.Errorf("/progress = %+v, want done=1 total=7 insts=12345", doc)
	}
}

func TestPprofRoute(t *testing.T) {
	s := startServer(t, nil)
	code, body, _ := get(t, s, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("GET /debug/pprof/ = %d, want the pprof index", code)
	}
}

func TestCloseIsIdempotentAndStopsServing(t *testing.T) {
	s := New(nil)
	if err := s.Close(); err != nil {
		t.Errorf("Close before Start: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
}

// TestHandleMountsExtraRoutes: a service can mount its own endpoints
// next to the built-ins, with net/http method+wildcard patterns, and
// the built-ins keep working.
func TestHandleMountsExtraRoutes(t *testing.T) {
	s := New(nil)
	s.Handle("GET /jobs/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "job "+r.PathValue("id"))
	}))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })

	code, body, _ := get(t, s, "/jobs/j7")
	if code != http.StatusOK || body != "job j7" {
		t.Errorf("GET /jobs/j7 = %d %q", code, body)
	}
	if code, body, _ := get(t, s, "/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("built-in /healthz broken after Handle: %d %q", code, body)
	}
}

// TestBuildInfo: deployed daemons identify themselves (module path is
// always present; VCS fields depend on how the test binary was built).
func TestBuildInfo(t *testing.T) {
	s := startServer(t, nil)
	code, body, ctype := get(t, s, "/buildinfo")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("GET /buildinfo = %d %q", code, ctype)
	}
	var doc struct {
		GoVersion string `json:"go_version"`
		Module    string `json:"module"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/buildinfo is not JSON: %v\n%s", err, body)
	}
	if doc.GoVersion == "" || doc.Module != "recyclesim" {
		t.Errorf("/buildinfo = %+v, want go version and module recyclesim", doc)
	}
}

// TestProgressDepthGauges: /progress carries the queued/in-flight
// gauges derived from the sweep counters.
func TestProgressDepthGauges(t *testing.T) {
	prog := &sweep.Progress{}
	prog.SetTotal(7)
	prog.StartCell("a")
	prog.StartCell("b")
	prog.FinishCell(10)
	s := startServer(t, prog)
	_, body, _ := get(t, s, "/progress")
	var doc struct {
		Queued   int64 `json:"cells_queued"`
		InFlight int64 `json:"cells_in_flight"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Queued != 5 || doc.InFlight != 1 {
		t.Errorf("/progress depths = %+v, want queued=5 in_flight=1", doc)
	}
}

// TestAppendMetrics: registered appenders contribute extra exposition
// lines after the snapshot, and before any snapshot is published.
func TestAppendMetrics(t *testing.T) {
	s := New(nil)
	s.AppendMetrics(func(w io.Writer) {
		io.WriteString(w, "svc_jobs_submitted 3\n")
	})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	_, body, _ := get(t, s, "/metrics")
	if !strings.Contains(body, "svc_jobs_submitted 3") {
		t.Errorf("pre-publish /metrics missing appended lines:\n%s", body)
	}
	s.Publish(&obs.Snapshot{Name: "unit", Stats: &stats.Sim{Cycles: 1}, Metrics: &obs.Metrics{}})
	_, body, _ = get(t, s, "/metrics")
	if !strings.Contains(body, "# run unit") || !strings.Contains(body, "svc_jobs_submitted 3") {
		t.Errorf("post-publish /metrics missing snapshot or appended lines:\n%s", body)
	}
}
