// Package bpred implements the paper's branch prediction hardware: a
// decoupled branch target buffer (BTB) and pattern history table (PHT)
// in the style of Calder & Grunwald, with the PHT indexed by the XOR of
// the branch address and a global history register (gshare, per
// McFarling), plus a per-context return address stack.
//
// Sizes follow §4.1 of the paper: 256-entry 4-way BTB, 2K x 2-bit PHT,
// 12-entry return stack per context.
package bpred

import "recyclesim/internal/isa"

// Config sizes the predictor structures.
type Config struct {
	PHTEntries int // pattern history table entries (power of two)
	BTBEntries int // total BTB entries
	BTBAssoc   int // BTB associativity
	RASEntries int // return address stack depth per context
	HistBits   int // global history register width per context
	Contexts   int // hardware contexts (history and RAS are per context)
}

// Default returns the paper's configuration for n hardware contexts.
func Default(n int) Config {
	return Config{
		PHTEntries: 2048,
		BTBEntries: 256,
		BTBAssoc:   4,
		RASEntries: 12,
		HistBits:   11,
		Contexts:   n,
	}
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// Predictor is the shared branch prediction unit.  PHT and BTB are
// shared between contexts; the global history register and the return
// stack are private to each context, as in SMT designs of the era.
type Predictor struct {
	cfg      Config
	pht      []uint8 // 2-bit saturating counters
	btb      []btbEntry
	btbSets  int
	lruClock uint64

	hist   []uint64   // per-context global history
	ras    [][]uint64 // per-context return stacks
	rasTop []int      // per-context stack pointer (index of next push)
}

// New builds a predictor with weakly-taken counters.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		pht:     make([]uint8, cfg.PHTEntries),
		btb:     make([]btbEntry, cfg.BTBEntries),
		btbSets: cfg.BTBEntries / cfg.BTBAssoc,
		hist:    make([]uint64, cfg.Contexts),
		ras:     make([][]uint64, cfg.Contexts),
		rasTop:  make([]int, cfg.Contexts),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	for c := range p.ras {
		p.ras[c] = make([]uint64, cfg.RASEntries)
	}
	return p
}

// Clone returns a deep copy of the predictor: tables, per-context
// history, and return stacks.  Sampled simulation snapshots the
// functionally warmed predictor at each measurement point so parallel
// intervals can train private copies without perturbing one another.
func (p *Predictor) Clone() *Predictor {
	q := *p
	q.pht = append([]uint8(nil), p.pht...)
	q.btb = append([]btbEntry(nil), p.btb...)
	q.hist = append([]uint64(nil), p.hist...)
	q.rasTop = append([]int(nil), p.rasTop...)
	q.ras = make([][]uint64, len(p.ras))
	for c := range p.ras {
		q.ras[c] = append([]uint64(nil), p.ras[c]...)
	}
	return &q
}

// Pred is a prediction plus the recovery state the pipeline must carry
// with the branch so prediction structures can be repaired on a squash
// and trained on commit.
type Pred struct {
	Taken   bool
	Target  uint64
	GHist   uint64 // history value used for the PHT index
	RASTop  int    // return-stack pointer before this instruction
	BTBMiss bool   // indirect jump found no BTB entry (fell through)
}

func (p *Predictor) phtIndex(pc, hist uint64) int {
	return int((pc/isa.InstBytes ^ hist) % uint64(len(p.pht)))
}

// Lookup predicts the direction and target of a control transfer at pc
// in context ctx.  The decoded instruction supplies direct targets (the
// simulator's instruction store plays the role of a perfect decoder);
// indirect non-return jumps consult the BTB, returns consult the RAS.
// Lookup does not change any predictor state.
func (p *Predictor) Lookup(ctx int, pc uint64, in isa.Inst) Pred {
	pr := Pred{GHist: p.hist[ctx], RASTop: p.rasTop[ctx]}
	switch {
	case in.IsCondBranch():
		ctr := p.pht[p.phtIndex(pc, pr.GHist)]
		pr.Taken = ctr >= 2
		pr.Target = in.Target
	case in.IsReturn():
		pr.Taken = true
		pr.Target = p.rasPeek(ctx)
	case in.IsIndirect():
		pr.Taken = true
		if t, ok := p.btbLookup(pc); ok {
			pr.Target = t
		} else {
			pr.Target = pc + isa.InstBytes // no target known: fall through
			pr.BTBMiss = true
		}
	case in.IsBranch(): // direct jump or call
		pr.Taken = true
		pr.Target = in.Target
	}
	return pr
}

// SpecUpdate applies the speculative effects of fetching a control
// transfer: the predicted direction is shifted into the context's
// global history and calls/returns adjust the return stack.
func (p *Predictor) SpecUpdate(ctx int, in isa.Inst, pc uint64, pr Pred) {
	if in.IsCondBranch() {
		p.pushHist(ctx, pr.Taken)
	}
	if in.IsCall() {
		p.rasPush(ctx, pc+isa.InstBytes)
	} else if in.IsReturn() {
		p.rasPop(ctx)
	}
}

// ForceHist overwrites the context's speculative global history; used
// when recycled branches carry their trace's prediction ("the global
// history register ... is then updated with that prediction").
func (p *Predictor) ForceHist(ctx int, hist uint64) { p.hist[ctx] = hist }

// Hist returns the context's current speculative global history.
func (p *Predictor) Hist(ctx int) uint64 { return p.hist[ctx] }

// PushHist shifts one resolved/predicted direction into the context's
// history (exported for the recycle path, which bypasses Lookup).
func (p *Predictor) PushHist(ctx int, taken bool) { p.pushHist(ctx, taken) }

// Restore rewinds a context's speculative history and return stack to
// the recovery state captured with a mispredicted branch, then shifts
// in the branch's true outcome when it was conditional.
func (p *Predictor) Restore(ctx int, in isa.Inst, pr Pred, actualTaken bool) {
	p.hist[ctx] = pr.GHist
	p.rasTop[ctx] = pr.RASTop
	if in.IsCondBranch() {
		p.pushHist(ctx, actualTaken)
	}
	if in.IsCall() {
		p.rasPush(ctx, 0) // target re-pushed by redirected fetch; keep depth
	} else if in.IsReturn() {
		p.rasPop(ctx)
	}
}

// CopyContext duplicates context src's history and return stack into
// dst; TME uses it when spawning an alternate path so the spawned
// thread predicts as the primary would have.  The alternate takes the
// opposite direction of the forked branch, which the caller records by
// pushing the flipped outcome afterwards.
func (p *Predictor) CopyContext(dst, src int) {
	p.hist[dst] = p.hist[src]
	copy(p.ras[dst], p.ras[src])
	p.rasTop[dst] = p.rasTop[src]
}

// Commit trains the PHT and BTB with a resolved, committed branch.
func (p *Predictor) Commit(pc uint64, in isa.Inst, pr Pred, taken bool, target uint64) {
	if in.IsCondBranch() {
		idx := p.phtIndex(pc, pr.GHist)
		if taken {
			if p.pht[idx] < 3 {
				p.pht[idx]++
			}
		} else if p.pht[idx] > 0 {
			p.pht[idx]--
		}
	}
	if in.IsIndirect() && !in.IsReturn() && taken {
		p.btbInsert(pc, target)
	}
}

func (p *Predictor) pushHist(ctx int, taken bool) {
	h := p.hist[ctx] << 1
	if taken {
		h |= 1
	}
	p.hist[ctx] = h & ((1 << uint(p.cfg.HistBits)) - 1)
}

func (p *Predictor) rasPush(ctx int, addr uint64) {
	top := p.rasTop[ctx]
	p.ras[ctx][top%p.cfg.RASEntries] = addr
	p.rasTop[ctx] = top + 1
}

func (p *Predictor) rasPop(ctx int) {
	if p.rasTop[ctx] > 0 {
		p.rasTop[ctx]--
	}
}

func (p *Predictor) rasPeek(ctx int) uint64 {
	top := p.rasTop[ctx]
	if top == 0 {
		return 0
	}
	return p.ras[ctx][(top-1)%p.cfg.RASEntries]
}

func (p *Predictor) btbLookup(pc uint64) (uint64, bool) {
	set := int(pc / isa.InstBytes % uint64(p.btbSets))
	tag := pc / isa.InstBytes / uint64(p.btbSets)
	base := set * p.cfg.BTBAssoc
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		e := &p.btb[base+w]
		if e.valid && e.tag == tag {
			p.lruClock++
			e.lru = p.lruClock
			return e.target, true
		}
	}
	return 0, false
}

func (p *Predictor) btbInsert(pc, target uint64) {
	set := int(pc / isa.InstBytes % uint64(p.btbSets))
	tag := pc / isa.InstBytes / uint64(p.btbSets)
	base := set * p.cfg.BTBAssoc
	victim := base
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		e := &p.btb[base+w]
		if e.valid && e.tag == tag {
			victim = base + w
			break
		}
		if !e.valid {
			victim = base + w
			break
		}
		if e.lru < p.btb[victim].lru {
			victim = base + w
		}
	}
	p.lruClock++
	p.btb[victim] = btbEntry{valid: true, tag: tag, target: target, lru: p.lruClock}
}
