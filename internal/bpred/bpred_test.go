package bpred

import (
	"testing"

	"recyclesim/internal/isa"
)

func beq(target uint64) isa.Inst { return isa.Inst{Op: isa.OpBeq, Target: target} }

func TestPHTLearnsBias(t *testing.T) {
	p := New(Default(1))
	pc := uint64(0x1000)
	in := beq(0x2000)
	// Train strongly taken.  The history register saturates to all
	// ones after HistBits iterations, after which the same PHT entry
	// trains repeatedly.
	for i := 0; i < 40; i++ {
		pr := p.Lookup(0, pc, in)
		p.SpecUpdate(0, in, pc, pr)
		p.Commit(pc, in, pr, true, 0x2000)
		p.Restore(0, in, pr, true) // keep history consistent with outcome
	}
	pr := p.Lookup(0, pc, in)
	if !pr.Taken {
		t.Error("predictor failed to learn a strongly-taken branch")
	}
	if pr.Target != 0x2000 {
		t.Errorf("direct target = 0x%x", pr.Target)
	}
}

func TestPHTAlternatingWithHistory(t *testing.T) {
	p := New(Default(1))
	pc := uint64(0x1000)
	in := beq(0x2000)
	// Alternating taken/not-taken: gshare should learn it through the
	// history bits after warmup.
	correct := 0
	taken := false
	for i := 0; i < 200; i++ {
		pr := p.Lookup(0, pc, in)
		if pr.Taken == taken && i > 100 {
			correct++
		}
		p.SpecUpdate(0, in, pc, pr)
		p.Restore(0, in, pr, taken)
		p.Commit(pc, in, pr, taken, 0x2000)
		taken = !taken
	}
	if correct < 90 {
		t.Errorf("gshare learned alternating pattern on only %d/99 late predictions", correct)
	}
}

func TestRASPushPop(t *testing.T) {
	p := New(Default(2))
	call := isa.Inst{Op: isa.OpJal, Rd: isa.RegRA, Target: 0x3000}
	ret := isa.Inst{Op: isa.OpJr, Rs1: isa.RegRA}

	pr := p.Lookup(0, 0x1000, call)
	p.SpecUpdate(0, call, 0x1000, pr)
	pr = p.Lookup(0, 0x1100, call)
	p.SpecUpdate(0, call, 0x1100, pr)

	pr = p.Lookup(0, 0x3000, ret)
	if pr.Target != 0x1100+isa.InstBytes {
		t.Errorf("return target = 0x%x, want 0x%x", pr.Target, 0x1100+isa.InstBytes)
	}
	p.SpecUpdate(0, ret, 0x3000, pr)
	pr = p.Lookup(0, 0x3000, ret)
	if pr.Target != 0x1000+isa.InstBytes {
		t.Errorf("second return target = 0x%x", pr.Target)
	}
	// Context 1's stack is independent.
	pr = p.Lookup(1, 0x3000, ret)
	if pr.Target != 0 {
		t.Errorf("context 1 should have an empty return stack, got 0x%x", pr.Target)
	}
}

func TestRASRecovery(t *testing.T) {
	p := New(Default(1))
	call := isa.Inst{Op: isa.OpJal, Rd: isa.RegRA, Target: 0x3000}
	cond := beq(0x2000)

	pr0 := p.Lookup(0, 0x1000, call)
	p.SpecUpdate(0, call, 0x1000, pr0)

	// A conditional branch checkpoints the stack depth.
	prB := p.Lookup(0, 0x3000, cond)
	p.SpecUpdate(0, cond, 0x3000, prB)

	// Wrong path pushes another frame.
	prC := p.Lookup(0, 0x2000, call)
	p.SpecUpdate(0, call, 0x2000, prC)

	// Mispredict recovery must restore the stack depth.
	p.Restore(0, cond, prB, !prB.Taken)
	ret := isa.Inst{Op: isa.OpJr, Rs1: isa.RegRA}
	pr := p.Lookup(0, 0x4000, ret)
	if pr.Target != 0x1000+isa.InstBytes {
		t.Errorf("post-recovery return target = 0x%x", pr.Target)
	}
}

func TestHistoryRecovery(t *testing.T) {
	p := New(Default(1))
	in := beq(0x2000)
	p.ForceHist(0, 0b101)
	pr := p.Lookup(0, 0x1000, in)
	h0 := p.Hist(0)
	p.SpecUpdate(0, in, 0x1000, pr)
	want0 := h0 << 1
	if pr.Taken {
		want0 |= 1
	}
	if p.Hist(0) != want0&0x7FF {
		t.Errorf("speculative history = %b, want %b", p.Hist(0), want0&0x7FF)
	}
	p.Restore(0, in, pr, true)
	want := (pr.GHist << 1) | 1
	if p.Hist(0) != want&0x7FF {
		t.Errorf("restored history = %b, want %b", p.Hist(0), want&0x7FF)
	}
}

func TestBTBIndirect(t *testing.T) {
	p := New(Default(1))
	jr := isa.Inst{Op: isa.OpJr, Rs1: 5} // indirect, not a return
	pr := p.Lookup(0, 0x1000, jr)
	if pr.Target != 0x1000+isa.InstBytes {
		t.Errorf("cold BTB should predict fallthrough, got 0x%x", pr.Target)
	}
	p.Commit(0x1000, jr, pr, true, 0x5000)
	pr = p.Lookup(0, 0x1000, jr)
	if pr.Target != 0x5000 {
		t.Errorf("BTB target after training = 0x%x", pr.Target)
	}
}

func TestBTBReplacement(t *testing.T) {
	cfg := Default(1)
	cfg.BTBEntries = 8
	cfg.BTBAssoc = 4 // 2 sets
	p := New(cfg)
	jr := isa.Inst{Op: isa.OpJr, Rs1: 5}
	// Fill one set beyond capacity; oldest entries must be evicted, and
	// the newest must survive.
	var pcs []uint64
	for i := 0; i < 6; i++ {
		pc := uint64(0x1000 + i*2*int(isa.InstBytes)*2) // same-set stride (2 sets)
		pcs = append(pcs, pc)
		pr := p.Lookup(0, pc, jr)
		p.Commit(pc, jr, pr, true, 0x7000+uint64(i))
	}
	last := pcs[len(pcs)-1]
	pr := p.Lookup(0, last, jr)
	if pr.Target != 0x7000+uint64(len(pcs)-1) {
		t.Errorf("most recent BTB entry evicted: got 0x%x", pr.Target)
	}
}

func TestCopyContext(t *testing.T) {
	p := New(Default(2))
	call := isa.Inst{Op: isa.OpJal, Rd: isa.RegRA, Target: 0x3000}
	pr := p.Lookup(0, 0x1000, call)
	p.SpecUpdate(0, call, 0x1000, pr)
	p.ForceHist(0, 0b1011)

	p.CopyContext(1, 0)
	if p.Hist(1) != 0b1011 {
		t.Errorf("copied history = %b", p.Hist(1))
	}
	ret := isa.Inst{Op: isa.OpJr, Rs1: isa.RegRA}
	prr := p.Lookup(1, 0x3000, ret)
	if prr.Target != 0x1000+isa.InstBytes {
		t.Errorf("copied return stack target = 0x%x", prr.Target)
	}
}
