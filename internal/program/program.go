// Package program holds loaded program images: code, initialized data,
// and the sparse data memory a running context reads and writes.  Each
// program occupies its own address space; when several programs share a
// simulated machine, the memory system tags addresses with an address
// space identifier so the physically-shared caches keep them distinct.
package program

import (
	"fmt"
	"sort"

	"recyclesim/internal/isa"
)

// Default address-space layout.  Code starts at CodeBase; the data
// segment and stack live far above it so effective addresses never
// collide with instruction PCs.
const (
	CodeBase  uint64 = 0x1000
	DataBase  uint64 = 0x10_0000
	StackBase uint64 = 0x80_0000 // stacks grow down from here
)

// Program is an assembled, relocated program image.
type Program struct {
	Name   string
	Code   []isa.Inst        // Code[i] is the instruction at CodeBase + i*InstBytes
	Entry  uint64            // entry PC
	Data   map[uint64]uint64 // initial data memory (8-byte words, 8-byte aligned)
	Labels map[string]uint64 // symbol table (code labels and data symbols)
}

// PCToIndex converts a PC into a code slice index; ok is false when the
// PC is outside the program text.
func (p *Program) PCToIndex(pc uint64) (int, bool) {
	if pc < CodeBase || (pc-CodeBase)%isa.InstBytes != 0 {
		return 0, false
	}
	idx := int((pc - CodeBase) / isa.InstBytes)
	if idx >= len(p.Code) {
		return 0, false
	}
	return idx, true
}

// FetchInst returns the instruction at pc.  Fetching outside the text
// segment returns a halt so wrong-path execution stays well-defined.
func (p *Program) FetchInst(pc uint64) isa.Inst {
	if idx, ok := p.PCToIndex(pc); ok {
		return p.Code[idx]
	}
	return isa.Inst{Op: isa.OpHalt}
}

// EndPC returns the PC one instruction past the last code word.
func (p *Program) EndPC() uint64 {
	return CodeBase + uint64(len(p.Code))*isa.InstBytes
}

// Validate checks structural invariants: branch targets inside the text
// segment and aligned, entry in range.  Workload construction calls it.
func (p *Program) Validate() error {
	if _, ok := p.PCToIndex(p.Entry); !ok {
		return fmt.Errorf("program %s: entry 0x%x outside text", p.Name, p.Entry)
	}
	for idx, in := range p.Code {
		if in.IsBranch() && !in.IsIndirect() {
			if _, ok := p.PCToIndex(in.Target); !ok {
				return fmt.Errorf("program %s: inst %d (%v) targets 0x%x outside text",
					p.Name, idx, in, in.Target)
			}
		}
	}
	return nil
}

// Memory is a sparse 64-bit-word data memory.  Addresses are byte
// addresses; accesses are 8-byte, 8-byte-aligned words (the workloads
// and assembler only generate aligned traffic; unaligned addresses are
// truncated to alignment, which keeps wrong-path garbage harmless).
type Memory struct {
	words map[uint64]uint64
}

// NewMemory creates a memory initialized from the program's data image.
func NewMemory(p *Program) *Memory {
	m := &Memory{words: make(map[uint64]uint64, len(p.Data)+64)}
	//simlint:ignore determinism puresim -- keys land in a map again; align maps distinct keys to distinct slots, so insertion order is immaterial
	for a, v := range p.Data {
		m.words[align(a)] = v
	}
	return m
}

func align(addr uint64) uint64 { return addr &^ 7 }

// Read returns the word at addr (zero if never written).
func (m *Memory) Read(addr uint64) uint64 { return m.words[align(addr)] }

// Write stores the word at addr.
func (m *Memory) Write(addr, val uint64) { m.words[align(addr)] = val }

// Footprint returns the number of distinct words touched.
func (m *Memory) Footprint() int { return len(m.words) }

// Clone returns an independent copy of the memory (used by the golden
// emulator when co-simulating against the core).
func (m *Memory) Clone() *Memory {
	c := &Memory{words: make(map[uint64]uint64, len(m.words))}
	for a, v := range m.words {
		c.words[a] = v
	}
	return c
}

// Word is one addressed memory word; checkpoint deltas are slices of
// Words sorted by address.
type Word struct {
	Addr uint64
	Val  uint64
}

// Delta returns the words of m whose values differ from base, sorted
// by address.  m must derive from base by writes only (memories only
// grow and writes never remove words, so m's key set is a superset of
// the keys it shares with base); the result applied to a clone of base
// with Apply reproduces m exactly.
func (m *Memory) Delta(base *Memory) []Word {
	var out []Word
	//simlint:ignore determinism puresim -- the delta is sorted by address immediately below
	for a, v := range m.words {
		if base.words[a] != v {
			out = append(out, Word{Addr: a, Val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Apply writes the delta words into m.
func (m *Memory) Apply(delta []Word) {
	for _, w := range delta {
		m.words[align(w.Addr)] = w.Val
	}
}
