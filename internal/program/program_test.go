package program

import (
	"testing"
	"testing/quick"

	"recyclesim/internal/isa"
)

func prog2() *Program {
	return &Program{
		Name:  "t",
		Code:  []isa.Inst{{Op: isa.OpNop}, {Op: isa.OpHalt}},
		Entry: CodeBase,
	}
}

func TestPCToIndex(t *testing.T) {
	p := prog2()
	if i, ok := p.PCToIndex(CodeBase); !ok || i != 0 {
		t.Errorf("entry index: %d %v", i, ok)
	}
	if i, ok := p.PCToIndex(CodeBase + isa.InstBytes); !ok || i != 1 {
		t.Errorf("second index: %d %v", i, ok)
	}
	if _, ok := p.PCToIndex(CodeBase + 2*isa.InstBytes); ok {
		t.Error("past-end PC resolved")
	}
	if _, ok := p.PCToIndex(CodeBase + 1); ok {
		t.Error("misaligned PC resolved")
	}
	if _, ok := p.PCToIndex(0); ok {
		t.Error("below-base PC resolved")
	}
}

func TestFetchOutsideTextIsHalt(t *testing.T) {
	p := prog2()
	if !p.FetchInst(0xDEAD00).IsHalt() {
		t.Error("wrong-path fetch outside text must be a halt")
	}
	if p.EndPC() != CodeBase+2*isa.InstBytes {
		t.Errorf("end pc = 0x%x", p.EndPC())
	}
}

func TestValidate(t *testing.T) {
	p := prog2()
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	p.Entry = 0
	if err := p.Validate(); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	p := prog2()
	p.Data = map[uint64]uint64{DataBase: 7}
	m := NewMemory(p)
	if m.Read(DataBase) != 7 {
		t.Error("initial data missing")
	}
	if m.Read(DataBase+8) != 0 {
		t.Error("untouched word should read zero")
	}
	m.Write(DataBase+16, 9)
	if m.Read(DataBase+16) != 9 {
		t.Error("write lost")
	}
	// Unaligned accesses truncate to the containing word.
	m.Write(DataBase+17, 11)
	if m.Read(DataBase+16) != 11 || m.Read(DataBase+23) != 11 {
		t.Error("alignment truncation broken")
	}
	// Two distinct words touched: DataBase (init) and DataBase+16
	// (the +17 write aliases the +16 word).
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d", m.Footprint())
	}
}

func TestMemoryCloneIndependent(t *testing.T) {
	p := prog2()
	m := NewMemory(p)
	m.Write(0x100, 1)
	c := m.Clone()
	c.Write(0x100, 2)
	if m.Read(0x100) != 1 || c.Read(0x100) != 2 {
		t.Error("clone aliases the original")
	}
}

// Property: a write followed by a read of any address within the same
// aligned word returns the written value.
func TestMemoryWordSemantics(t *testing.T) {
	m := NewMemory(prog2())
	fn := func(addr uint64, val uint64, off uint8) bool {
		m.Write(addr, val)
		return m.Read(addr&^7+uint64(off%8)) == val
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Delta against the initial image must be sorted by address, contain
// exactly the changed words, and reproduce the memory via Apply.
func TestMemoryDeltaApplyRoundTrip(t *testing.T) {
	p := prog2()
	p.Data = map[uint64]uint64{DataBase: 7, DataBase + 8: 9}
	base := NewMemory(p)
	m := NewMemory(p)
	m.Write(DataBase, 100)   // changed word
	m.Write(DataBase+8, 9)   // written back to its initial value: not in the delta
	m.Write(StackBase-16, 5) // new word
	m.Write(0x4000, 1)       // new word, lower address
	delta := m.Delta(base)
	want := []Word{{0x4000, 1}, {DataBase, 100}, {StackBase - 16, 5}}
	if len(delta) != len(want) {
		t.Fatalf("delta %v, want %v", delta, want)
	}
	for i := range want {
		if delta[i] != want[i] {
			t.Fatalf("delta[%d] = %+v, want %+v", i, delta[i], want[i])
		}
	}
	r := NewMemory(p)
	r.Apply(delta)
	for _, a := range []uint64{DataBase, DataBase + 8, StackBase - 16, 0x4000, 0x9999} {
		if r.Read(a) != m.Read(a) {
			t.Errorf("addr 0x%x: restored %d != original %d", a, r.Read(a), m.Read(a))
		}
	}
	if r.Footprint() != m.Footprint() {
		t.Errorf("footprint %d != %d", r.Footprint(), m.Footprint())
	}
}

// An unchanged memory has an empty delta.
func TestMemoryDeltaEmpty(t *testing.T) {
	p := prog2()
	p.Data = map[uint64]uint64{DataBase: 3}
	if d := NewMemory(p).Delta(NewMemory(p)); len(d) != 0 {
		t.Errorf("fresh memory delta = %v, want empty", d)
	}
}
