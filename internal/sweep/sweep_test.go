package sweep

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		Run(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	Run(0, 4, func(int) { t.Error("job called for n=0") })
	Run(-3, 4, func(int) { t.Error("job called for n<0") })
}

func TestRunResultsMatchSerial(t *testing.T) {
	const n = 50
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	got := make([]int, n)
	Run(n, 8, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}
