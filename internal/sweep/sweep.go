// Package sweep is the simulator's parallelism boundary: a small
// worker pool that runs many *independent* simulations concurrently
// while every simulation itself stays single-threaded and
// deterministic.
//
// The contract that keeps batch results byte-identical to a serial
// loop: each job owns its index and writes only state reachable from
// that index (its slot in a results slice), jobs never communicate,
// and callers assemble output in input order after Run returns.  Only
// the *scheduling* of jobs onto OS threads is nondeterministic, and no
// simulation result can observe it.
//
// This package is the one simulator package permitted to use
// goroutines and the sync package; the determinism analyzer in
// internal/lint grants it an explicit concurrency allowlist entry (see
// lint.ConcurrencyAllowed) rather than a blanket suppression, so its
// other determinism rules (no wall-clock reads, no global RNG, no
// map-order dependence) still apply here.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes job(0) … job(n-1) across min(workers, n) goroutines and
// returns when all have finished.  workers <= 0 selects GOMAXPROCS.
// Jobs are handed out in index order from a shared counter, but may
// complete in any order; with workers == 1 (or n <= 1) the jobs run
// serially on the calling goroutine, which is also the fallback
// callers can use to bisect any suspected isolation bug.
func Run(n, workers int, job func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
