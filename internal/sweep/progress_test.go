package sweep

import (
	"sync"
	"testing"
)

func TestProgressSnapshot(t *testing.T) {
	var p Progress
	if done, total, insts, cur := p.Snapshot(); done != 0 || total != 0 || insts != 0 || cur != "" {
		t.Errorf("zero Progress snapshot = (%d,%d,%d,%q), want zeros", done, total, insts, cur)
	}
	p.SetTotal(3)
	p.StartCell("a")
	p.FinishCell(100)
	p.StartCell("b")
	p.FinishCell(250)
	done, total, insts, cur := p.Snapshot()
	if done != 2 || total != 3 || insts != 350 || cur != "b" {
		t.Errorf("snapshot = (%d,%d,%d,%q), want (2,3,350,b)", done, total, insts, cur)
	}
	p.SetInsts(42)
	if _, _, insts, _ := p.Snapshot(); insts != 42 {
		t.Errorf("SetInsts not overwriting: insts = %d, want 42", insts)
	}
}

// TestProgressConcurrent exercises the publisher from many goroutines;
// run with -race this pins the "all state is atomic" claim.
func TestProgressConcurrent(t *testing.T) {
	var p Progress
	const workers, cells = 8, 50
	p.SetTotal(workers * cells)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cells; i++ {
				p.StartCell("cell")
				p.FinishCell(10)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			p.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	doneCells, total, insts, _ := p.Snapshot()
	if doneCells != workers*cells || total != workers*cells || insts != workers*cells*10 {
		t.Errorf("final snapshot = (%d,%d,%d), want (%d,%d,%d)",
			doneCells, total, insts, workers*cells, workers*cells, workers*cells*10)
	}
}

// TestProgressDepths: queued/inflight gauges derive from the admitted,
// started, and finished counters.
func TestProgressDepths(t *testing.T) {
	var p Progress
	if q, f := p.Depths(); q != 0 || f != 0 {
		t.Errorf("zero Progress depths = (%d,%d), want zeros", q, f)
	}
	p.SetTotal(5)
	if q, f := p.Depths(); q != 5 || f != 0 {
		t.Errorf("after admit: depths = (%d,%d), want (5,0)", q, f)
	}
	p.StartCell("a")
	p.StartCell("b")
	if q, f := p.Depths(); q != 3 || f != 2 {
		t.Errorf("two started: depths = (%d,%d), want (3,2)", q, f)
	}
	p.FinishCell(10)
	if q, f := p.Depths(); q != 3 || f != 1 {
		t.Errorf("one finished: depths = (%d,%d), want (3,1)", q, f)
	}
	// Single-run publishers call FinishCell without StartCell; the
	// derived gauges clamp instead of going negative.
	var solo Progress
	solo.FinishCell(1)
	if q, f := solo.Depths(); q != 0 || f != 0 {
		t.Errorf("clamped depths = (%d,%d), want zeros", q, f)
	}
}
