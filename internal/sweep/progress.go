package sweep

import "sync/atomic"

// Progress is the shared sweep-progress publisher: workers publish cell
// starts/finishes and simulated-instruction counts, readers (the
// observability server's /progress endpoint, the -progress meter)
// snapshot it concurrently.  All state is atomic — publishing from a
// Run worker costs a few uncontended atomic ops and never blocks.
//
// Rates and ETAs are deliberately out of scope: they need wall-clock
// time, which simulation packages must not read.  Readers compute them
// from their own clocks.
type Progress struct {
	total   atomic.Int64
	done    atomic.Int64
	started atomic.Int64
	insts   atomic.Uint64
	cur     atomic.Pointer[string]
}

// SetTotal publishes the number of cells the sweep will run.
func (p *Progress) SetTotal(n int) { p.total.Store(int64(n)) }

// AddTotal grows the published total by n cells.  A job server whose
// sweeps arrive over time adds each submitted job into one cross-job
// meter instead of overwriting it.
func (p *Progress) AddTotal(n int) { p.total.Add(int64(n)) }

// StartCell publishes the name of a cell a worker just started.  With
// several workers the current cell is simply the most recently started
// one.
func (p *Progress) StartCell(name string) {
	p.started.Add(1)
	p.cur.Store(&name)
}

// FinishCell marks one cell done and adds its simulated instructions.
func (p *Progress) FinishCell(insts uint64) {
	p.insts.Add(insts)
	p.done.Add(1)
}

// SetInsts overwrites the cumulative instruction count; single-run
// publishers (one cell, periodically republished totals) use this
// instead of FinishCell's final add.
func (p *Progress) SetInsts(n uint64) { p.insts.Store(n) }

// Depths derives the service gauges from the published counters:
// queued is cells admitted but not yet started by a worker, inflight is
// cells started but not yet finished.  Momentary negatives (counters
// are read separately) clamp to zero.
func (p *Progress) Depths() (queued, inflight int64) {
	total, started, done := p.total.Load(), p.started.Load(), p.done.Load()
	if queued = total - started; queued < 0 {
		queued = 0
	}
	if inflight = started - done; inflight < 0 {
		inflight = 0
	}
	return queued, inflight
}

// Snapshot returns a consistent-enough view for display: cells done and
// total, cumulative simulated instructions, and the most recently
// started cell name.
func (p *Progress) Snapshot() (done, total int64, insts uint64, current string) {
	if s := p.cur.Load(); s != nil {
		current = *s
	}
	return p.done.Load(), p.total.Load(), p.insts.Load(), current
}
