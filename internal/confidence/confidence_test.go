package confidence

import "testing"

func TestColdIsLowConfidence(t *testing.T) {
	e := New(Default())
	if e.HighConfidence(0x1000, 0) {
		t.Error("cold branches must be low confidence (fork candidates)")
	}
}

func TestWarmsToHighConfidence(t *testing.T) {
	cfg := Default()
	e := New(cfg)
	for i := 0; i < cfg.Threshold; i++ {
		if e.HighConfidence(0x1000, 0) {
			t.Fatalf("high confidence after only %d correct predictions", i)
		}
		e.Update(0x1000, 0, true)
	}
	if !e.HighConfidence(0x1000, 0) {
		t.Error("threshold correct predictions should reach high confidence")
	}
}

func TestMispredictResets(t *testing.T) {
	cfg := Default()
	e := New(cfg)
	for i := 0; i < cfg.Max; i++ {
		e.Update(0x1000, 0, true)
	}
	if e.Counter(0x1000) != cfg.Max {
		t.Errorf("counter saturation: %d", e.Counter(0x1000))
	}
	e.Update(0x1000, 0, false)
	if e.Counter(0x1000) != 0 || e.HighConfidence(0x1000, 0) {
		t.Error("a mispredict must reset the counter to low confidence")
	}
}

func TestPCIndexedNotHistoryIndexed(t *testing.T) {
	e := New(Default())
	for i := 0; i < 10; i++ {
		e.Update(0x1000, uint64(i), true) // varying history
	}
	// All updates must have landed on the same counter.
	if !e.HighConfidence(0x1000, 0xFFFF) {
		t.Error("confidence must be independent of history")
	}
}

func TestSeparateBranches(t *testing.T) {
	e := New(Default())
	for i := 0; i < 10; i++ {
		e.Update(0x1000, 0, true)
	}
	// 0x1004 is the adjacent table entry (0x2000 would alias 0x1000 in
	// a 1024-entry table).
	if e.HighConfidence(0x1004, 0) {
		t.Error("training one branch must not warm another")
	}
}

func TestTableAliasing(t *testing.T) {
	cfg := Config{Entries: 4, Max: 15, Threshold: 4}
	e := New(cfg)
	// PCs 4 instructions apart land in different entries; PCs
	// Entries*4 bytes apart alias.
	for i := 0; i < 10; i++ {
		e.Update(0x1000, 0, true)
	}
	alias := uint64(0x1000 + 4*4)
	if !e.HighConfidence(alias, 0) {
		t.Error("aliasing PCs share a counter in a tiny table")
	}
}
