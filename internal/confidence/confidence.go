// Package confidence implements a branch confidence estimator in the
// style of Jacobsen, Rotenberg and Smith ("Assigning confidence to
// conditional branch predictions", MICRO-29), which the TME
// architecture uses to select which branches to fork: "Candidate
// branches are selected based on branch confidence prediction methods."
//
// The estimator is a table of resetting miss-distance counters indexed
// by branch address.  A correct prediction increments the saturating
// counter; a misprediction resets it to zero.  A branch is *high
// confidence* once its counter reaches the threshold, so the forking
// budget concentrates on branches that miss recently and repeatedly —
// programs with high prediction accuracy fork almost nothing, which is
// what keeps TME from degrading them (§2).
//
// The table is deliberately indexed by PC alone (not PC XOR history):
// history-indexed confidence spreads each static branch across many
// independently-cold entries, which never warm up and make every branch
// look low-confidence forever.
package confidence

import "recyclesim/internal/isa"

// Config sizes the estimator.
type Config struct {
	Entries   int // table entries (power of two)
	Max       int // counter saturation value
	Threshold int // counter >= Threshold means high confidence
}

// Default returns a 1K-entry estimator with a 4-bit resetting counter
// and threshold 4: a branch is fork-worthy for its first few dynamic
// instances after any misprediction.
func Default() Config { return Config{Entries: 1024, Max: 15, Threshold: 4} }

// Estimator is the confidence table, shared across contexts.
type Estimator struct {
	cfg Config
	ctr []uint8
}

// New builds an estimator; all counters start at zero (low confidence),
// so cold branches are fork candidates until they prove predictable.
func New(cfg Config) *Estimator {
	return &Estimator{cfg: cfg, ctr: make([]uint8, cfg.Entries)}
}

// Clone returns a deep copy of the estimator (for sampled simulation's
// per-interval model snapshots).
func (e *Estimator) Clone() *Estimator {
	q := *e
	q.ctr = append([]uint8(nil), e.ctr...)
	return &q
}

func (e *Estimator) index(pc uint64) int {
	return int(pc / isa.InstBytes % uint64(len(e.ctr)))
}

// HighConfidence reports whether the branch at pc is currently
// considered well predicted.  TME forks when this is false and a spare
// context is available.  The hist argument is accepted for API
// compatibility with history-indexed variants but unused (see the
// package comment).
func (e *Estimator) HighConfidence(pc, hist uint64) bool {
	_ = hist
	return int(e.ctr[e.index(pc)]) >= e.cfg.Threshold
}

// Update trains the counter with a resolved branch outcome.
func (e *Estimator) Update(pc, hist uint64, predictedCorrectly bool) {
	_ = hist
	i := e.index(pc)
	if predictedCorrectly {
		if int(e.ctr[i]) < e.cfg.Max {
			e.ctr[i]++
		}
	} else {
		e.ctr[i] = 0
	}
}

// Counter exposes the raw counter value for tests and introspection.
func (e *Estimator) Counter(pc uint64) int { return int(e.ctr[e.index(pc)]) }
