package asm

import (
	"strings"
	"testing"

	"recyclesim/internal/emu"
	"recyclesim/internal/isa"
	"recyclesim/internal/program"
)

func TestBuilderLoop(t *testing.T) {
	b := NewBuilder("loop")
	b.Li(R(1), 5)
	b.Li(R(2), 0)
	b.Label("loop")
	b.Add(R(2), R(2), R(1))
	b.Addi(R(1), R(1), -1)
	b.Bne(R(1), R(0), "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(p)
	e.Run(1000)
	if !e.Halted {
		t.Fatal("did not halt")
	}
	if got := e.Regs[2]; got != 5+4+3+2+1 {
		t.Errorf("sum = %d, want 15", got)
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder("fwd")
	b.Li(R(1), 1)
	b.Beq(R(1), R(1), "skip") // always taken, target not yet defined
	b.Li(R(2), 99)
	b.Label("skip")
	b.Li(R(3), 7)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(p)
	e.Run(100)
	if e.Regs[2] != 0 || e.Regs[3] != 7 {
		t.Errorf("r2=%d r3=%d", e.Regs[2], e.Regs[3])
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.J("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestBuilderDataSymbols(t *testing.T) {
	b := NewBuilder("data")
	addr := b.Word("answer", 42)
	arr := b.Array("vec", 4, 1, 2, 3)
	b.La(R(1), "answer")
	b.Ld(R(2), R(1), 0)
	b.La(R(3), "vec")
	b.Ld(R(4), R(3), 16)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Data[addr] != 42 {
		t.Errorf("word init = %d", p.Data[addr])
	}
	if p.Data[arr+24] != 0 {
		t.Errorf("array zero-fill failed: %d", p.Data[arr+24])
	}
	e := emu.New(p)
	e.Run(100)
	if e.Regs[2] != 42 || e.Regs[4] != 3 {
		t.Errorf("r2=%d r4=%d", e.Regs[2], e.Regs[4])
	}
}

func TestBuilderUnknownDataSymbol(t *testing.T) {
	b := NewBuilder("nosym")
	b.La(R(1), "missing")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for unknown data symbol")
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder("call")
	b.Li(R(1), 10)
	b.Jal("double")
	b.Mov(R(3), R(2))
	b.Halt()
	b.Label("double")
	b.Add(R(2), R(1), R(1))
	b.Ret()
	p := b.MustBuild()
	e := emu.New(p)
	e.Run(100)
	if e.Regs[3] != 20 {
		t.Errorf("r3 = %d, want 20", e.Regs[3])
	}
}

func TestRegisterHelpers(t *testing.T) {
	if R(31) != isa.RegRA {
		t.Error("R(31) should be the link register")
	}
	if !F(0).IsFP() {
		t.Error("F(0) should be a floating-point register")
	}
	defer func() {
		if recover() == nil {
			t.Error("R(32) should panic")
		}
	}()
	R(32)
}

const textProgram = `
; word-count-ish kernel
.word  total 0
.array data 4 10 20 30 40

    la   r1, data
    li   r2, 0      ; index
    li   r3, 0      ; sum
loop:
    slli r4, r2, 3
    add  r5, r1, r4
    ld   r6, 0(r5)
    add  r3, r3, r6
    addi r2, r2, 1
    slti r7, r2, 4
    bne  r7, r0, loop
    la   r8, total
    st   r3, 0(r8)
    halt
`

func TestAssembleText(t *testing.T) {
	p, err := Assemble("wc", textProgram)
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(p)
	e.Run(1000)
	if !e.Halted {
		t.Fatal("did not halt")
	}
	if e.Regs[3] != 100 {
		t.Errorf("sum = %d, want 100", e.Regs[3])
	}
	if addr, ok := p.Labels["total"]; !ok {
		t.Error("missing data symbol in labels")
	} else if e.Mem.Read(addr) != 100 {
		t.Errorf("stored total = %d", e.Mem.Read(addr))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"li r1",
		"ld r1, nope",
		"beq r1, r2",
		"add r1, r2, 7x",
		".word onlyname",
		".array a 0",
		"li r99, 1",
	}
	for _, src := range cases {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestAssembleComments(t *testing.T) {
	src := strings.Join([]string{
		"; semicolon comment",
		"# hash comment",
		"// slash comment",
		"li r1, 3 ; trailing",
		"halt",
	}, "\n")
	p, err := Assemble("c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2 {
		t.Errorf("code length = %d, want 2", len(p.Code))
	}
}

func TestAssembleAllMnemonics(t *testing.T) {
	src := `
.word w 1
    li r1, 2
    li r2, 3
    add r3, r1, r2
    sub r3, r1, r2
    mul r3, r1, r2
    div r3, r1, r2
    rem r3, r1, r2
    and r3, r1, r2
    or r3, r1, r2
    xor r3, r1, r2
    sll r3, r1, r2
    srl r3, r1, r2
    sra r3, r1, r2
    slt r3, r1, r2
    sltu r3, r1, r2
    addi r3, r1, 4
    andi r3, r1, 4
    ori r3, r1, 4
    xori r3, r1, 4
    slli r3, r1, 4
    srli r3, r1, 4
    srai r3, r1, 4
    slti r3, r1, 4
    mov r4, r3
    la r5, w
    ld r6, 0(r5)
    st r6, 8(r5)
    fld f1, 0(r5)
    fst f1, 8(r5)
    fadd f3, f1, f1
    fsub f3, f1, f1
    fmul f3, f1, f1
    fdiv f3, f1, f1
    fmov f4, f3
    fneg f4, f3
    cvtif f5, r1
    cvtfi r7, f5
    flt r8, f1, f3
    feq r8, f1, f3
tgt:
    beq r1, r2, tgt
    bne r1, r2, tgt
    blt r1, r2, tgt
    bge r1, r2, tgt
    jal sub1
    j end
sub1:
    jr ra
end:
    nop
    ret
    halt
`
	p, err := Assemble("all", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramValidateRejectsBadTarget(t *testing.T) {
	p := &program.Program{
		Name:  "bad",
		Code:  []isa.Inst{{Op: isa.OpJ, Target: 0xDEAD0}},
		Entry: program.CodeBase,
	}
	if err := p.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}
