// Package asm provides two ways to construct programs for the
// simulator: a programmatic Builder used by the synthetic workloads and
// the examples, and a small text assembler (see text.go) for .ras
// source files.
package asm

import (
	"fmt"

	"recyclesim/internal/isa"
	"recyclesim/internal/program"
)

// Builder assembles a program instruction by instruction.  Labels may
// be referenced before they are defined; Build resolves all fixups.
//
//	b := asm.NewBuilder("demo")
//	b.Li(asm.R(1), 10)
//	b.Label("loop")
//	b.Addi(asm.R(1), asm.R(1), -1)
//	b.Bne(asm.R(1), asm.R(0), "loop")
//	b.Halt()
//	prog, err := b.Build()
type Builder struct {
	name   string
	code   []isa.Inst
	labels map[string]uint64
	fixups []fixup
	data   map[uint64]uint64
	dsyms  map[string]uint64
	nextDA uint64 // next free data address
	errs   []error
}

type fixup struct {
	index int
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]uint64),
		data:   make(map[uint64]uint64),
		dsyms:  make(map[string]uint64),
		nextDA: program.DataBase,
	}
}

// R returns the integer register with the given number (0..31).
func R(n int) isa.Reg {
	if n < 0 || n >= isa.NumIntRegs {
		panic(fmt.Sprintf("asm: integer register %d out of range", n))
	}
	return isa.Reg(n)
}

// F returns the floating-point register with the given number (0..31).
func F(n int) isa.Reg {
	if n < 0 || n >= isa.NumFPRegs {
		panic(fmt.Sprintf("asm: fp register %d out of range", n))
	}
	return isa.Reg(n + isa.FPBase)
}

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() uint64 {
	return program.CodeBase + uint64(len(b.code))*isa.InstBytes
}

// Label defines a code label at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = b.PC()
}

// Word reserves an 8-byte data word with an initial value and returns
// its address.  If sym is non-empty the address is also recorded in the
// program's symbol table.
func (b *Builder) Word(sym string, val uint64) uint64 {
	addr := b.nextDA
	b.nextDA += 8
	b.data[addr] = val
	if sym != "" {
		b.dsyms[sym] = addr
	}
	return addr
}

// Array reserves n consecutive 8-byte words initialized from vals
// (zero-filled past len(vals)) and returns the base address.
func (b *Builder) Array(sym string, n int, vals ...uint64) uint64 {
	base := b.nextDA
	for i := 0; i < n; i++ {
		v := uint64(0)
		if i < len(vals) {
			v = vals[i]
		}
		b.data[b.nextDA] = v
		b.nextDA += 8
	}
	if sym != "" {
		b.dsyms[sym] = base
	}
	return base
}

func (b *Builder) emit(in isa.Inst) { b.code = append(b.code, in) }

func (b *Builder) emitBranch(in isa.Inst, label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.code), label: label})
	b.emit(in)
}

// --- instruction emitters -------------------------------------------------

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Inst{Op: isa.OpNop}) }

// Halt emits a program-terminating halt.
func (b *Builder) Halt() { b.emit(isa.Inst{Op: isa.OpHalt}) }

// Li materializes a 64-bit immediate into rd.
func (b *Builder) Li(rd isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpLi, Rd: rd, Imm: imm})
}

// La loads the address of a data symbol into rd.
func (b *Builder) La(rd isa.Reg, sym string) {
	addr, ok := b.dsyms[sym]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("unknown data symbol %q", sym))
	}
	b.emit(isa.Inst{Op: isa.OpLi, Rd: rd, Imm: int64(addr)})
}

func (b *Builder) rrr(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) rri(op isa.Op, rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpAdd, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpSub, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpMul, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2 (signed; zero divisor yields zero).
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpDiv, rd, rs1, rs2) }

// Rem emits rd = rs1 % rs2 (signed; zero divisor yields zero).
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpRem, rd, rs1, rs2) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpAnd, rd, rs1, rs2) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpOr, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpXor, rd, rs1, rs2) }

// Sll emits rd = rs1 << rs2.
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpSll, rd, rs1, rs2) }

// Srl emits rd = rs1 >> rs2 (logical).
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpSrl, rd, rs1, rs2) }

// Slt emits rd = (rs1 < rs2) signed.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpSlt, rd, rs1, rs2) }

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpAddi, rd, rs1, imm) }

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpAndi, rd, rs1, imm) }

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpOri, rd, rs1, imm) }

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpXori, rd, rs1, imm) }

// Slli emits rd = rs1 << imm.
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpSlli, rd, rs1, imm) }

// Srli emits rd = rs1 >> imm (logical).
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpSrli, rd, rs1, imm) }

// Srai emits rd = rs1 >> imm (arithmetic).
func (b *Builder) Srai(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpSrai, rd, rs1, imm) }

// Slti emits rd = (rs1 < imm) signed.
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpSlti, rd, rs1, imm) }

// Mov copies rs1 into rd.
func (b *Builder) Mov(rd, rs1 isa.Reg) { b.rri(isa.OpAddi, rd, rs1, 0) }

// Ld emits rd = mem[rs1+imm].
func (b *Builder) Ld(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpLd, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits mem[rs1+imm] = rs2.
func (b *Builder) St(rs2, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpSt, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Fld emits frd = mem[rs1+imm].
func (b *Builder) Fld(frd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpFld, Rd: frd, Rs1: rs1, Imm: imm})
}

// Fst emits mem[rs1+imm] = frs2.
func (b *Builder) Fst(frs2, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpFst, Rs1: rs1, Rs2: frs2, Imm: imm})
}

// Fadd emits frd = frs1 + frs2.
func (b *Builder) Fadd(frd, frs1, frs2 isa.Reg) { b.rrr(isa.OpFadd, frd, frs1, frs2) }

// Fsub emits frd = frs1 - frs2.
func (b *Builder) Fsub(frd, frs1, frs2 isa.Reg) { b.rrr(isa.OpFsub, frd, frs1, frs2) }

// Fmul emits frd = frs1 * frs2.
func (b *Builder) Fmul(frd, frs1, frs2 isa.Reg) { b.rrr(isa.OpFmul, frd, frs1, frs2) }

// Fdiv emits frd = frs1 / frs2.
func (b *Builder) Fdiv(frd, frs1, frs2 isa.Reg) { b.rrr(isa.OpFdiv, frd, frs1, frs2) }

// Fmov copies frs1 into frd.
func (b *Builder) Fmov(frd, frs1 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFmov, Rd: frd, Rs1: frs1})
}

// CvtIF emits frd = float64(rs1).
func (b *Builder) CvtIF(frd, rs1 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpCvtIF, Rd: frd, Rs1: rs1})
}

// CvtFI emits rd = int64(frs1).
func (b *Builder) CvtFI(rd, frs1 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpCvtFI, Rd: rd, Rs1: frs1})
}

// Flt emits rd = (frs1 < frs2).
func (b *Builder) Flt(rd, frs1, frs2 isa.Reg) { b.rrr(isa.OpFlt, rd, frs1, frs2) }

// Beq emits a branch to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBeq, Rs1: rs1, Rs2: rs2}, label)
}

// Bne emits a branch to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBne, Rs1: rs1, Rs2: rs2}, label)
}

// Blt emits a branch to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBlt, Rs1: rs1, Rs2: rs2}, label)
}

// Bge emits a branch to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBge, Rs1: rs1, Rs2: rs2}, label)
}

// J emits an unconditional jump to label.
func (b *Builder) J(label string) {
	b.emitBranch(isa.Inst{Op: isa.OpJ}, label)
}

// Jal emits a call to label, linking through RegRA.
func (b *Builder) Jal(label string) {
	b.emitBranch(isa.Inst{Op: isa.OpJal, Rd: isa.RegRA}, label)
}

// Jr emits an indirect jump through rs1.
func (b *Builder) Jr(rs1 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpJr, Rs1: rs1})
}

// Ret emits a return (jr through the link register).
func (b *Builder) Ret() { b.Jr(isa.RegRA) }

// Build resolves all label fixups and returns the finished program.
func (b *Builder) Build() (*program.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, fx := range b.fixups {
		addr, ok := b.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("asm %s: undefined label %q", b.name, fx.label)
		}
		b.code[fx.index].Target = addr
	}
	labels := make(map[string]uint64, len(b.labels)+len(b.dsyms))
	for k, v := range b.labels {
		labels[k] = v
	}
	for k, v := range b.dsyms {
		labels[k] = v
	}
	p := &program.Program{
		Name:   b.name,
		Code:   b.code,
		Entry:  program.CodeBase,
		Data:   b.data,
		Labels: labels,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for static workload kernels
// whose correctness is established by the test suite.
func (b *Builder) MustBuild() *program.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
