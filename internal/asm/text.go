package asm

import (
	"fmt"
	"strconv"
	"strings"

	"recyclesim/internal/isa"
	"recyclesim/internal/program"
)

// Assemble parses .ras assembler text and produces a program.  Syntax:
//
//	; comment (also # and //)
//	.word   name value          ; reserve one initialized data word
//	.array  name count [v ...]  ; reserve count words
//	label:
//	    li   r1, 42
//	    la   r2, name
//	    add  r3, r1, r2
//	    ld   r4, 8(r2)
//	    st   r4, 16(r2)
//	    beq  r1, r0, label
//	    jal  func
//	    jr   ra
//	    halt
//
// Registers: r0..r31 (aliases zero, ra, sp), f0..f31.
func Assemble(name, src string) (*program.Program, error) {
	b := NewBuilder(name)
	lines := strings.Split(src, "\n")

	// Pass 0: data directives must be processed before any `la`
	// references, so collect them first.
	for ln, raw := range lines {
		line := stripComment(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], ".") {
			continue
		}
		if err := directive(b, fields); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, ln+1, err)
		}
	}
	for ln, raw := range lines {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" || strings.HasPrefix(line, ".") {
			continue
		}
		for strings.Contains(line, ":") {
			i := strings.Index(line, ":")
			b.Label(strings.TrimSpace(line[:i]))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := instruction(b, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, ln+1, err)
		}
	}
	return b.Build()
}

func stripComment(s string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func directive(b *Builder, fields []string) error {
	switch fields[0] {
	case ".word":
		if len(fields) != 3 {
			return fmt.Errorf(".word wants `name value`")
		}
		v, err := parseImm(fields[2])
		if err != nil {
			return err
		}
		b.Word(fields[1], uint64(v))
		return nil
	case ".array":
		if len(fields) < 3 {
			return fmt.Errorf(".array wants `name count [values...]`")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad array count %q", fields[2])
		}
		vals := make([]uint64, 0, len(fields)-3)
		for _, f := range fields[3:] {
			v, err := parseImm(f)
			if err != nil {
				return err
			}
			vals = append(vals, uint64(v))
		}
		b.Array(fields[1], n, vals...)
		return nil
	}
	return fmt.Errorf("unknown directive %s", fields[0])
}

func parseReg(tok string) (isa.Reg, error) {
	switch tok {
	case "zero":
		return isa.RegZero, nil
	case "ra":
		return isa.RegRA, nil
	case "sp":
		return isa.RegSP, nil
	}
	if len(tok) >= 2 && (tok[0] == 'r' || tok[0] == 'f') {
		n, err := strconv.Atoi(tok[1:])
		if err == nil && n >= 0 && n < 32 {
			if tok[0] == 'f' {
				return F(n), nil
			}
			return R(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

func parseImm(tok string) (int64, error) {
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return v, nil
}

// parseMem parses "imm(reg)" operands.
func parseMem(tok string) (int64, isa.Reg, error) {
	open := strings.Index(tok, "(")
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	imm := int64(0)
	if open > 0 {
		v, err := parseImm(tok[:open])
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	reg, err := parseReg(tok[open+1 : len(tok)-1])
	return imm, reg, err
}

func instruction(b *Builder, line string) error {
	mn, rest, _ := strings.Cut(line, " ")
	mn = strings.TrimSpace(mn)
	var ops []string
	for _, o := range strings.Split(rest, ",") {
		if o = strings.TrimSpace(o); o != "" {
			ops = append(ops, o)
		}
	}
	want := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}

	switch mn {
	case "nop":
		b.Nop()
		return nil
	case "halt":
		b.Halt()
		return nil
	case "ret":
		b.Ret()
		return nil
	case "li":
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		b.Li(rd, imm)
		return nil
	case "la":
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.La(rd, ops[1])
		return nil
	case "mov":
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Mov(rd, rs)
		return nil
	case "ld", "fld":
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, base, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		if mn == "ld" {
			b.Ld(rd, base, imm)
		} else {
			b.Fld(rd, base, imm)
		}
		return nil
	case "st", "fst":
		if err := want(2); err != nil {
			return err
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, base, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		if mn == "st" {
			b.St(rs, base, imm)
		} else {
			b.Fst(rs, base, imm)
		}
		return nil
	case "beq", "bne", "blt", "bge":
		if err := want(3); err != nil {
			return err
		}
		r1, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		r2, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		switch mn {
		case "beq":
			b.Beq(r1, r2, ops[2])
		case "bne":
			b.Bne(r1, r2, ops[2])
		case "blt":
			b.Blt(r1, r2, ops[2])
		case "bge":
			b.Bge(r1, r2, ops[2])
		}
		return nil
	case "j":
		if err := want(1); err != nil {
			return err
		}
		b.J(ops[0])
		return nil
	case "jal":
		if err := want(1); err != nil {
			return err
		}
		b.Jal(ops[0])
		return nil
	case "jr":
		if err := want(1); err != nil {
			return err
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.Jr(rs)
		return nil
	}

	op, ok := isa.OpByName(mn)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	switch op.String() {
	// Three-register ALU / FP forms share one shape.
	case "add", "sub", "mul", "div", "rem", "and", "or", "xor",
		"sll", "srl", "sra", "slt", "sltu",
		"fadd", "fsub", "fmul", "fdiv", "flt", "feq":
		if err := want(3); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		r1, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		r2, err := parseReg(ops[2])
		if err != nil {
			return err
		}
		b.rrr(op, rd, r1, r2)
		return nil
	case "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti":
		if err := want(3); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		r1, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return err
		}
		b.rri(op, rd, r1, imm)
		return nil
	case "fmov", "fneg", "cvtif", "cvtfi":
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		r1, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.emit(isa.Inst{Op: op, Rd: rd, Rs1: r1})
		return nil
	}
	return fmt.Errorf("unsupported mnemonic %q", mn)
}
