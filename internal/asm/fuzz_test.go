package asm

import (
	"testing"
)

// FuzzAssemble drives the .ras parser with arbitrary source text.  The
// properties: Assemble never panics, an accepted source yields a
// program whose control flow passes program.Validate (entry and every
// direct branch target land inside the text), and assembly is
// deterministic — the same source assembles to the same image twice.
// Seed corpus: testdata/fuzz/FuzzAssemble plus the inline shapes below
// (plain ALU code, data directives, labels and branches, every comment
// marker, and a few malformed lines the parser must reject cleanly).
func FuzzAssemble(f *testing.F) {
	f.Add("li r1, 42\nadd r2, r1, r1\nhalt\n")
	f.Add(".word x 7\n.array buf 4 1 2 3 4\nla r2, x\nld r3, 0(r2)\nst r3, 8(r2)\nhalt\n")
	f.Add("start:\n li r1, 3\nloop: ; comment\n sub r1, r1, r2\n beq r1, r0, done\n jal loop\ndone: halt\n")
	f.Add("# hash comment\n// slash comment\nli r1, 1\njr ra\n")
	f.Add("beq r1, r2\n")        // malformed: missing target
	f.Add("li r99, 1\nhalt\n")   // malformed: no such register
	f.Add(".word\n")             // malformed directive
	f.Add("bogus r1, r2, r3\n")  // unknown mnemonic
	f.Add("loop: jal loop\n:\n") // empty label
	f.Add("li r1, 0x7fffffff\n") // big immediate, no halt

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			if p != nil {
				t.Error("non-nil program alongside an error")
			}
			return
		}
		if p == nil {
			t.Fatal("nil program with nil error")
		}
		if verr := p.Validate(); verr != nil {
			t.Errorf("accepted program fails validation: %v\nsource:\n%s", verr, src)
		}
		p2, err2 := Assemble("fuzz", src)
		if err2 != nil {
			t.Fatalf("second assembly of accepted source failed: %v", err2)
		}
		if len(p2.Code) != len(p.Code) || p2.Entry != p.Entry {
			t.Errorf("assembly not deterministic: %d/%d insts, entry %x/%x",
				len(p.Code), len(p2.Code), p.Entry, p2.Entry)
		}
		for i := range p.Code {
			if p.Code[i] != p2.Code[i] {
				t.Errorf("assembly not deterministic at inst %d: %v vs %v", i, p.Code[i], p2.Code[i])
				break
			}
		}
	})
}
