// Package invariant provides the reporting machinery for the
// simulator's runtime invariant checker.  The checks themselves live
// next to the state they audit (internal/core); this package defines
// how a sweep's findings are collected, formatted, and escalated.
//
// A sweep builds a Report, records violations with Failf, and finishes
// with MustOK: any violation panics with a cycle-stamped dump of the
// machine so the failure is debuggable from the crash alone.  The
// checker is off by default; config.Features.InvariantEvery (or the
// siminvariant build tag) enables it.
package invariant

import (
	"fmt"
	"strings"
)

// Violation is one failed invariant.
type Violation struct {
	Rule string // short invariant name, e.g. "refcount"
	Msg  string
}

// String renders the violation as "rule: message".
func (v Violation) String() string { return v.Rule + ": " + v.Msg }

// Report collects the violations of one checker sweep.
type Report struct {
	Cycle      uint64
	Violations []Violation
}

// NewReport starts a sweep at the given cycle.
func NewReport(cycle uint64) *Report {
	return &Report{Cycle: cycle}
}

// Failf records a violation.
func (r *Report) Failf(rule, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// OK reports whether the sweep found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Error formats all violations as a cycle-stamped multi-line message.
func (r *Report) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant check failed at cycle %d (%d violation(s)):\n", r.Cycle, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// MustOK panics with the violations and the supplied machine dump when
// the sweep found anything.  dump is called lazily so a clean sweep
// costs nothing.  A failing sweep is already off the steady-state
// budget, hence //recycle:coldpath.
//
//recycle:coldpath
func (r *Report) MustOK(dump func() string) {
	if r.OK() {
		return
	}
	msg := r.Error()
	if dump != nil {
		msg += dump()
	}
	panic(msg)
}
