package invariant

import (
	"strings"
	"testing"
)

func TestReportLifecycle(t *testing.T) {
	r := NewReport(1234)
	if !r.OK() {
		t.Fatal("fresh report must be OK")
	}
	r.MustOK(func() string { t.Fatal("dump must not run when OK"); return "" })

	r.Failf("refcount", "reg p%d leaked %d reference(s)", 7, 2)
	r.Failf("iq", "entry seq=%d dropped", 99)
	if r.OK() {
		t.Fatal("report with violations must not be OK")
	}
	msg := r.Error()
	for _, want := range []string{
		"invariant check failed at cycle 1234",
		"2 violation(s)",
		"refcount: reg p7 leaked 2 reference(s)",
		"iq: entry seq=99 dropped",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() missing %q:\n%s", want, msg)
		}
	}
}

func TestMustOKPanics(t *testing.T) {
	r := NewReport(42)
	r.Failf("alist", "bad pointer")
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("MustOK did not panic on a failed report")
		}
		s, ok := p.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", p)
		}
		for _, want := range []string{"cycle 42", "alist: bad pointer", "machine dump here"} {
			if !strings.Contains(s, want) {
				t.Errorf("panic message missing %q:\n%s", want, s)
			}
		}
	}()
	r.MustOK(func() string { return "machine dump here" })
}
