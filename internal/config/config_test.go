package config

import "testing"

func TestMachinesValid(t *testing.T) {
	ms := Machines()
	if len(ms) != 4 {
		t.Fatalf("%d machines", len(ms))
	}
	for name, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("name mismatch: %q vs %q", m.Name, name)
		}
	}
}

func TestMachineGeometry(t *testing.T) {
	big := Big216()
	if big.FetchThreads != 2 || big.FetchWidth != 16 || big.RenameWidth != 16 {
		t.Errorf("big.2.16 fetch geometry: %+v", big)
	}
	if big.IntUnits != 12 || big.LSUnits != 8 || big.FPUnits != 6 {
		t.Errorf("big.2.16 FUs: %+v", big)
	}
	b18 := Big18()
	if b18.FetchThreads != 1 || b18.FetchWidth != 8 {
		t.Errorf("big.1.8: %+v", b18)
	}
	s18 := Small18()
	if s18.RenameWidth != 8 || s18.CacheScale != 2 || s18.IntUnits != 6 {
		t.Errorf("small.1.8: %+v", s18)
	}
	s28 := Small28()
	if s28.FetchThreads != 2 || s28.FetchWidth != 8 {
		t.Errorf("small.2.8: %+v", s28)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []func(m *Machine){
		func(m *Machine) { m.Contexts = 0 },
		func(m *Machine) { m.Contexts = 99 },
		func(m *Machine) { m.FetchThreads = 0 },
		func(m *Machine) { m.RenameWidth = 0 },
		func(m *Machine) { m.IQInt = 0 },
		func(m *Machine) { m.LSUnits = 99 }, // exceeds IntUnits
		func(m *Machine) { m.ActiveList = 4 },
		func(m *Machine) { m.ExtraRegs = -1 },
	}
	for i, mutate := range bad {
		m := Big216()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"} {
		f, ok := PresetByName(name)
		if !ok {
			t.Fatalf("missing preset %s", name)
		}
		if FeatureName(f) != name {
			t.Errorf("round trip: %s -> %s", name, FeatureName(f))
		}
	}
	if _, ok := PresetByName("NOPE"); ok {
		t.Error("bogus preset resolved")
	}
}

func TestPresetSemantics(t *testing.T) {
	if SMT.TME || SMT.Recycle {
		t.Error("SMT must disable everything")
	}
	if !TME.TME || TME.Recycle {
		t.Error("TME enables multipath only")
	}
	if !RECRSRU.TME || !RECRSRU.Recycle || !RECRSRU.Reuse || !RECRSRU.Respawn {
		t.Error("REC/RS/RU enables everything")
	}
	if TME.AltLimit <= 0 {
		t.Error("TME presets need a positive alternate-path limit")
	}
}

func TestAltPolicyString(t *testing.T) {
	if AltStop.String() != "stop" || AltFetch.String() != "fetch" || AltNoStop.String() != "nostop" {
		t.Error("policy names")
	}
}
