package config

import (
	"strings"
	"testing"
)

func TestMachinesValid(t *testing.T) {
	ms := Machines()
	if len(ms) != 4 {
		t.Fatalf("%d machines", len(ms))
	}
	for name, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("name mismatch: %q vs %q", m.Name, name)
		}
	}
}

func TestMachineGeometry(t *testing.T) {
	big := Big216()
	if big.FetchThreads != 2 || big.FetchWidth != 16 || big.RenameWidth != 16 {
		t.Errorf("big.2.16 fetch geometry: %+v", big)
	}
	if big.IntUnits != 12 || big.LSUnits != 8 || big.FPUnits != 6 {
		t.Errorf("big.2.16 FUs: %+v", big)
	}
	b18 := Big18()
	if b18.FetchThreads != 1 || b18.FetchWidth != 8 {
		t.Errorf("big.1.8: %+v", b18)
	}
	s18 := Small18()
	if s18.RenameWidth != 8 || s18.CacheScale != 2 || s18.IntUnits != 6 {
		t.Errorf("small.1.8: %+v", s18)
	}
	s28 := Small28()
	if s28.FetchThreads != 2 || s28.FetchWidth != 8 {
		t.Errorf("small.2.8: %+v", s28)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *Machine)
		want   string // substring the error must carry
	}{
		{"zero contexts", func(m *Machine) { m.Contexts = 0 }, "contexts"},
		{"too many contexts", func(m *Machine) { m.Contexts = 99 }, "contexts"},
		{"zero fetch threads", func(m *Machine) { m.FetchThreads = 0 }, "fetch geometry"},
		{"zero fetch width", func(m *Machine) { m.FetchWidth = 0 }, "fetch geometry"},
		{"zero fetch block", func(m *Machine) { m.FetchBlock = 0 }, "fetch geometry"},
		{"more fetch threads than contexts", func(m *Machine) { m.FetchThreads = m.Contexts + 1 }, "fetch threads"},
		{"fetch block wider than fetch width", func(m *Machine) { m.FetchBlock = m.FetchWidth + 1 }, "fetch block"},
		{"zero rename width", func(m *Machine) { m.RenameWidth = 0 }, "rename/commit width"},
		{"zero commit width", func(m *Machine) { m.CommitWidth = 0 }, "rename/commit width"},
		{"zero int queue", func(m *Machine) { m.IQInt = 0 }, "queue sizes"},
		{"zero fp queue", func(m *Machine) { m.IQFP = 0 }, "queue sizes"},
		{"zero int units", func(m *Machine) { m.IntUnits = 0 }, "functional unit"},
		{"zero fp units", func(m *Machine) { m.FPUnits = 0 }, "functional unit"},
		{"ls units exceed int units", func(m *Machine) { m.LSUnits = m.IntUnits + 1 }, "functional unit"},
		{"active list too small", func(m *Machine) { m.ActiveList = 4 }, "active list"},
		{"negative extra registers", func(m *Machine) { m.ExtraRegs = -1 }, "extra registers"},
		{"zero cache scale", func(m *Machine) { m.CacheScale = 0 }, "cache scale"},
		{"negative cache scale", func(m *Machine) { m.CacheScale = -2 }, "cache scale"},
		{"non-power-of-two cache scale", func(m *Machine) { m.CacheScale = 3 }, "power of two"},
		{"negative front-end latency", func(m *Machine) { m.FrontEndLat = -1 }, "front-end latency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Big216()
			tc.mutate(&m)
			err := m.Validate()
			if err == nil {
				t.Fatal("bad machine validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFeaturesValidate(t *testing.T) {
	for _, name := range []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"} {
		f, _ := PresetByName(name)
		if err := f.Validate(); err != nil {
			t.Errorf("preset %s rejected: %v", name, err)
		}
	}
	trust := RECRSRU
	trust.TrustTrace = true
	watchdogged := RECRSRU
	watchdogged.WatchdogCycles = 1 << 20
	watchdogOff := RECRSRU
	watchdogOff.WatchdogCycles = WatchdogOff
	for _, f := range []Features{trust, watchdogged, watchdogOff} {
		if err := f.Validate(); err != nil {
			t.Errorf("valid features %+v rejected: %v", f, err)
		}
	}

	cases := []struct {
		name   string
		mutate func(f *Features)
		want   string
	}{
		{"unknown alt policy", func(f *Features) { f.AltPolicy = AltPolicy(7) }, "alternate-path policy"},
		{"negative alt limit", func(f *Features) { f.AltLimit = -8 }, "negative alternate-path limit"},
		{"TME without alt limit", func(f *Features) { f.AltLimit = 0 }, "non-positive AltLimit"},
		{"recycle without TME", func(f *Features) { f.TME = false; f.AltLimit = 0 }, "Recycle requires TME"},
		{"reuse without recycle", func(f *Features) { f.Recycle = false; f.Respawn = false }, "Reuse requires Recycle"},
		{"respawn without recycle", func(f *Features) { f.Recycle = false; f.Reuse = false }, "Respawn requires Recycle"},
		{"trust-trace without recycle", func(f *Features) { *f = TME; f.TrustTrace = true }, "TrustTrace requires Recycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := RECRSRU
			tc.mutate(&f)
			err := f.Validate()
			if err == nil {
				t.Fatal("bad features validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"} {
		f, ok := PresetByName(name)
		if !ok {
			t.Fatalf("missing preset %s", name)
		}
		if FeatureName(f) != name {
			t.Errorf("round trip: %s -> %s", name, FeatureName(f))
		}
	}
	if _, ok := PresetByName("NOPE"); ok {
		t.Error("bogus preset resolved")
	}
}

func TestPresetSemantics(t *testing.T) {
	if SMT.TME || SMT.Recycle {
		t.Error("SMT must disable everything")
	}
	if !TME.TME || TME.Recycle {
		t.Error("TME enables multipath only")
	}
	if !RECRSRU.TME || !RECRSRU.Recycle || !RECRSRU.Reuse || !RECRSRU.Respawn {
		t.Error("REC/RS/RU enables everything")
	}
	if TME.AltLimit <= 0 {
		t.Error("TME presets need a positive alternate-path limit")
	}
}

func TestAltPolicyString(t *testing.T) {
	if AltStop.String() != "stop" || AltFetch.String() != "fetch" || AltNoStop.String() != "nostop" {
		t.Error("policy names")
	}
}
