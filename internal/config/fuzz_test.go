package config

import "testing"

// FuzzMachineValidate drives Machine.Validate with arbitrary field
// values.  The properties: validation never panics, and any machine it
// accepts satisfies the structural invariants the simulator relies on
// (positive widths, fetch geometry that fits the contexts, power-of-two
// cache scaling).  Seed corpus: the four paper design points plus the
// boundary shapes in testdata/fuzz/FuzzMachineValidate.
func FuzzMachineValidate(f *testing.F) {
	for _, m := range []Machine{Big216(), Big18(), Small18(), Small28()} {
		f.Add(m.Contexts, m.FetchThreads, m.FetchWidth, m.FetchBlock,
			m.RenameWidth, m.CommitWidth, m.IQInt, m.IQFP,
			m.IntUnits, m.LSUnits, m.FPUnits, m.ActiveList,
			m.ExtraRegs, m.CacheScale, m.FrontEndLat)
	}
	f.Fuzz(func(t *testing.T, contexts, fthreads, fwidth, fblock,
		rwidth, cwidth, iqInt, iqFP,
		intUnits, lsUnits, fpUnits, activeList,
		extraRegs, cacheScale, frontEndLat int) {
		m := Machine{
			Name:         "fuzz",
			Contexts:     contexts,
			FetchThreads: fthreads, FetchWidth: fwidth, FetchBlock: fblock,
			RenameWidth: rwidth, CommitWidth: cwidth,
			IQInt: iqInt, IQFP: iqFP,
			IntUnits: intUnits, LSUnits: lsUnits, FPUnits: fpUnits,
			ActiveList:  activeList,
			ExtraRegs:   extraRegs,
			CacheScale:  cacheScale,
			FrontEndLat: frontEndLat,
		}
		if err := m.Validate(); err != nil {
			return
		}
		switch {
		case m.Contexts < 1 || m.Contexts > 16:
			t.Errorf("accepted context count %d", m.Contexts)
		case m.FetchThreads < 1 || m.FetchThreads > m.Contexts:
			t.Errorf("accepted fetch threads %d with %d contexts", m.FetchThreads, m.Contexts)
		case m.FetchBlock < 1 || m.FetchBlock > m.FetchWidth:
			t.Errorf("accepted fetch block %d with width %d", m.FetchBlock, m.FetchWidth)
		case m.RenameWidth < 1 || m.CommitWidth < 1 || m.IQInt < 1 || m.IQFP < 1:
			t.Errorf("accepted non-positive width/queue: %+v", m)
		case m.LSUnits < 1 || m.LSUnits > m.IntUnits || m.FPUnits < 1:
			t.Errorf("accepted bad FU mix: %+v", m)
		case m.ActiveList < 8 || m.ExtraRegs < 0 || m.FrontEndLat < 0:
			t.Errorf("accepted bad capacity fields: %+v", m)
		case m.CacheScale < 1 || m.CacheScale&(m.CacheScale-1) != 0:
			t.Errorf("accepted non-power-of-two cache scale %d", m.CacheScale)
		}
	})
}

// FuzzFeaturesValidate drives Features.Validate with arbitrary knob
// combinations.  Accepted combinations must be internally consistent
// (the recycling ladder implies TME, alternate paths have a positive
// cap) and must render to a stable figure-legend name.
func FuzzFeaturesValidate(f *testing.F) {
	for _, name := range []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"} {
		p, _ := PresetByName(name)
		f.Add(p.TME, p.Recycle, p.Reuse, p.Respawn, int(p.AltPolicy), p.AltLimit, p.TrustTrace, p.InvariantEvery, p.WatchdogCycles)
	}
	f.Fuzz(func(t *testing.T, tme, recycle, reuse, respawn bool, altPolicy, altLimit int, trustTrace bool, invariantEvery, watchdogCycles uint64) {
		feat := Features{
			TME: tme, Recycle: recycle, Reuse: reuse, Respawn: respawn,
			AltPolicy: AltPolicy(altPolicy), AltLimit: altLimit,
			TrustTrace:     trustTrace,
			InvariantEvery: invariantEvery,
			WatchdogCycles: watchdogCycles,
		}
		if err := feat.Validate(); err != nil {
			return
		}
		switch {
		case feat.Recycle && !feat.TME,
			feat.Reuse && !feat.Recycle,
			feat.Respawn && !feat.Recycle,
			feat.TrustTrace && !feat.Recycle:
			t.Errorf("accepted inconsistent feature ladder: %+v", feat)
		case feat.TME && feat.AltLimit <= 0:
			t.Errorf("accepted TME without an alternate-path cap: %+v", feat)
		case feat.AltLimit < 0:
			t.Errorf("accepted negative AltLimit: %+v", feat)
		}
		if name := FeatureName(feat); name == "" {
			t.Errorf("accepted features with no figure-legend name: %+v", feat)
		}
	})
}
