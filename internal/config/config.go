// Package config defines machine configurations (§4.1, §5.3) and the
// feature toggles the paper's experiments sweep (SMT, TME, REC, RU, RS
// and the alternate-path fetch policies of §5.2).
package config

import "fmt"

// Machine describes the hardware configuration.
type Machine struct {
	Name string

	Contexts int // hardware contexts

	// Fetch: ICOUNT.X.Y — up to FetchThreads threads supply up to
	// FetchWidth total instructions per cycle, at most FetchBlock
	// contiguous instructions per thread (bounded by cache lines).
	FetchThreads int
	FetchWidth   int
	FetchBlock   int

	RenameWidth int // instructions renamed (fetched + recycled) per cycle
	CommitWidth int

	IQInt, IQFP int // instruction queue capacities

	IntUnits, LSUnits, FPUnits int

	ActiveList int // active-list entries per context

	// Physical registers: logical regs of all contexts plus Extra
	// renaming registers per pool (the paper uses 100).
	ExtraRegs int

	// CacheScale divides L1/L2 capacities (1 = baseline, 2 = "half
	// the cache" small machine).
	CacheScale int

	FrontEndLat int // fetch-to-rename latency (decode stages)
}

// Validate checks configuration invariants.  It returns a descriptive
// error for every malformed field rather than letting a bad value
// surface later as a mysterious simulation crash; recyclesim.Run calls
// it (and Features.Validate) before constructing a core.
func (m Machine) Validate() error {
	switch {
	case m.Contexts < 1 || m.Contexts > 16:
		return fmt.Errorf("config %s: contexts %d out of range [1,16]", m.Name, m.Contexts)
	case m.FetchThreads < 1 || m.FetchWidth < 1 || m.FetchBlock < 1:
		return fmt.Errorf("config %s: bad fetch geometry (threads=%d width=%d block=%d; all must be >= 1)",
			m.Name, m.FetchThreads, m.FetchWidth, m.FetchBlock)
	case m.FetchThreads > m.Contexts:
		return fmt.Errorf("config %s: %d fetch threads exceed %d hardware contexts", m.Name, m.FetchThreads, m.Contexts)
	case m.FetchBlock > m.FetchWidth:
		return fmt.Errorf("config %s: fetch block %d exceeds total fetch width %d", m.Name, m.FetchBlock, m.FetchWidth)
	case m.RenameWidth < 1 || m.CommitWidth < 1:
		return fmt.Errorf("config %s: bad rename/commit width (rename=%d commit=%d; both must be >= 1)",
			m.Name, m.RenameWidth, m.CommitWidth)
	case m.IQInt < 1 || m.IQFP < 1:
		return fmt.Errorf("config %s: bad queue sizes (int=%d fp=%d; both must be >= 1)", m.Name, m.IQInt, m.IQFP)
	case m.IntUnits < 1 || m.FPUnits < 1 || m.LSUnits < 1 || m.LSUnits > m.IntUnits:
		return fmt.Errorf("config %s: bad functional unit counts (int=%d ls=%d fp=%d; all >= 1 and ls <= int)",
			m.Name, m.IntUnits, m.LSUnits, m.FPUnits)
	case m.ActiveList < 8:
		return fmt.Errorf("config %s: active list of %d entries too small (minimum 8)", m.Name, m.ActiveList)
	case m.ExtraRegs < 0:
		return fmt.Errorf("config %s: negative extra registers (%d)", m.Name, m.ExtraRegs)
	case m.CacheScale < 1 || m.CacheScale&(m.CacheScale-1) != 0:
		return fmt.Errorf("config %s: cache scale %d must be a positive power of two (it divides the power-of-two cache capacities)",
			m.Name, m.CacheScale)
	case m.FrontEndLat < 0:
		return fmt.Errorf("config %s: negative front-end latency (%d)", m.Name, m.FrontEndLat)
	}
	return nil
}

// Big216 returns the baseline machine: 16-wide, fetching 8 instructions
// from each of 2 threads per cycle ("big.2.16").
func Big216() Machine {
	return Machine{
		Name:         "big.2.16",
		Contexts:     8,
		FetchThreads: 2, FetchWidth: 16, FetchBlock: 8,
		RenameWidth: 16, CommitWidth: 16,
		IQInt: 64, IQFP: 64,
		IntUnits: 12, LSUnits: 8, FPUnits: 6,
		ActiveList:  64,
		ExtraRegs:   100,
		CacheScale:  1,
		FrontEndLat: 2,
	}
}

// Big18 is the baseline machine restricted to one fetch thread per
// cycle ("big.1.8").
func Big18() Machine {
	m := Big216()
	m.Name = "big.1.8"
	m.FetchThreads, m.FetchWidth = 1, 8
	return m
}

// Small18 halves the execution resources, queues and caches and
// fetches one block per cycle ("small.1.8"), close to the machines in
// the SMT and TME papers.
func Small18() Machine {
	return Machine{
		Name:         "small.1.8",
		Contexts:     8,
		FetchThreads: 1, FetchWidth: 8, FetchBlock: 8,
		RenameWidth: 8, CommitWidth: 8,
		IQInt: 32, IQFP: 32,
		IntUnits: 6, LSUnits: 4, FPUnits: 3,
		ActiveList:  32,
		ExtraRegs:   100,
		CacheScale:  2,
		FrontEndLat: 2,
	}
}

// Small28 is the small machine with the 8-wide fetch filled by two
// threads ("small.2.8").
func Small28() Machine {
	m := Small18()
	m.Name = "small.2.8"
	m.FetchThreads = 2
	return m
}

// Machines returns all four §5.3 design points keyed by name.
func Machines() map[string]Machine {
	out := map[string]Machine{}
	for _, m := range []Machine{Big216(), Big18(), Small18(), Small28()} {
		out[m.Name] = m
	}
	return out
}

// AltPolicy is the §5.2 alternate-path fetch policy.
type AltPolicy int

// Alternate-path policies: what an alternate context may do after its
// forking branch resolves (and the instruction cap that applies to
// alternate paths throughout their life).
const (
	// AltStop stops fetch and issue immediately at resolution.
	AltStop AltPolicy = iota
	// AltFetch keeps fetching (but not issuing) up to the limit.
	AltFetch
	// AltNoStop keeps fetching and issuing up to the limit.
	AltNoStop
)

// String names the policy as the paper does.
func (p AltPolicy) String() string {
	switch p {
	case AltStop:
		return "stop"
	case AltFetch:
		return "fetch"
	case AltNoStop:
		return "nostop"
	}
	return "alt?"
}

// Features selects the architecture variant being simulated.
type Features struct {
	TME     bool // threaded multipath execution
	Recycle bool // REC: inject stored traces at merge points
	Reuse   bool // RU: bypass issue/execute when operands unchanged
	Respawn bool // RS: re-activate inactive traces instead of refetching

	AltPolicy AltPolicy // §5.2 policy for alternate paths
	AltLimit  int       // alternate path instruction cap (8/16/32)

	// TrustTrace selects §3.4's *former* method: recycled branches
	// keep the predictions stored with the trace and the global
	// history is updated with them, instead of stopping the stream at
	// the first disagreement with the current predictor (the default,
	// the paper's chosen "latter method").
	TrustTrace bool

	// InvariantEvery, when non-zero, runs the runtime invariant
	// checker over the whole machine every N cycles; any violation
	// panics with a cycle-stamped dump (see internal/invariant).  Zero
	// disables checking unless the simulator was built with the
	// siminvariant build tag, which supplies a default period.
	InvariantEvery uint64

	// WatchdogCycles is the forward-progress watchdog window: if a run
	// commits no instruction for this many consecutive cycles while
	// programs are still live, core.Run fails fast with a livelock
	// diagnosis instead of burning cycles until MaxCycles.  Zero selects
	// the default window (the watchdog is on by default); WatchdogOff
	// disables it.  The window is counted in simulated cycles, never
	// wall clock, so enabling it cannot perturb determinism.
	WatchdogCycles uint64
}

// WatchdogOff disables the forward-progress watchdog when assigned to
// Features.WatchdogCycles.
const WatchdogOff = ^uint64(0)

// Validate checks feature-knob consistency, rejecting combinations the
// architecture cannot express: the recycling mechanisms (§3) all build
// on TME's per-context traces, and alternate paths need a positive
// instruction cap.  The zero Features (the SMT preset) is valid.
func (f Features) Validate() error {
	switch {
	case f.AltPolicy != AltStop && f.AltPolicy != AltFetch && f.AltPolicy != AltNoStop:
		return fmt.Errorf("features %s: unknown alternate-path policy %d", FeatureName(f), int(f.AltPolicy))
	case f.AltLimit < 0:
		return fmt.Errorf("features %s: negative alternate-path limit %d", FeatureName(f), f.AltLimit)
	case f.TME && f.AltLimit <= 0:
		return fmt.Errorf("features %s: TME enabled with non-positive AltLimit %d (alternate paths need an instruction cap)",
			FeatureName(f), f.AltLimit)
	case f.Recycle && !f.TME:
		return fmt.Errorf("features %s: Recycle requires TME (recycled traces live in alternate-path active lists)", FeatureName(f))
	case f.Reuse && !f.Recycle:
		return fmt.Errorf("features %s: Reuse requires Recycle (results are reused from recycled traces)", FeatureName(f))
	case f.Respawn && !f.Recycle:
		return fmt.Errorf("features %s: Respawn requires Recycle (re-spawning activates traces through the recycle datapath)", FeatureName(f))
	case f.TrustTrace && !f.Recycle:
		return fmt.Errorf("features %s: TrustTrace requires Recycle (it selects how recycled branch predictions are handled)", FeatureName(f))
	}
	return nil
}

// Named feature presets matching the paper's figure legends.
var (
	SMT     = Features{}
	TME     = Features{TME: true, AltPolicy: AltNoStop, AltLimit: 32}
	REC     = Features{TME: true, Recycle: true, AltPolicy: AltNoStop, AltLimit: 32}
	RECRU   = Features{TME: true, Recycle: true, Reuse: true, AltPolicy: AltNoStop, AltLimit: 32}
	RECRS   = Features{TME: true, Recycle: true, Respawn: true, AltPolicy: AltNoStop, AltLimit: 32}
	RECRSRU = Features{TME: true, Recycle: true, Reuse: true, Respawn: true, AltPolicy: AltNoStop, AltLimit: 32}
)

// FeatureName renders the preset the way the paper labels it.
func FeatureName(f Features) string {
	switch {
	case !f.TME:
		return "SMT"
	case !f.Recycle:
		return "TME"
	default:
		n := "REC"
		if f.Respawn {
			n += "/RS"
		}
		if f.Reuse {
			n += "/RU"
		}
		return n
	}
}

// PresetByName resolves a figure-legend name ("SMT", "TME", "REC",
// "REC/RU", "REC/RS", "REC/RS/RU") to its Features.
func PresetByName(name string) (Features, bool) {
	switch name {
	case "SMT":
		return SMT, true
	case "TME":
		return TME, true
	case "REC":
		return REC, true
	case "REC/RU":
		return RECRU, true
	case "REC/RS":
		return RECRS, true
	case "REC/RS/RU":
		return RECRSRU, true
	}
	return Features{}, false
}
