package regfile

import (
	"testing"
	"testing/quick"
)

func TestAllocRelease(t *testing.T) {
	f := New(4, 2)
	var regs []PhysReg
	for i := 0; i < 4; i++ {
		r, ok := f.Alloc(false)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		regs = append(regs, r)
	}
	if _, ok := f.Alloc(false); ok {
		t.Fatal("alloc from empty pool succeeded")
	}
	if f.AllocFailures != 1 {
		t.Errorf("AllocFailures = %d", f.AllocFailures)
	}
	f.Release(regs[0])
	if r, ok := f.Alloc(false); !ok || r != regs[0] {
		t.Fatalf("released register not reallocated: %v %v", r, ok)
	}
}

func TestPoolsSeparate(t *testing.T) {
	f := New(2, 2)
	r1, _ := f.Alloc(false)
	r2, _ := f.Alloc(true)
	if f.IsFP(r1) {
		t.Error("int alloc returned fp register")
	}
	if !f.IsFP(r2) {
		t.Error("fp alloc returned int register")
	}
	f.Alloc(false)
	if _, ok := f.Alloc(false); ok {
		t.Error("int pool should be exhausted")
	}
	if _, ok := f.Alloc(true); !ok {
		t.Error("fp pool should still have a register")
	}
}

func TestRefCounting(t *testing.T) {
	f := New(2, 0)
	r, _ := f.Alloc(false)
	f.AddRef(r)
	if f.Refs(r) != 2 {
		t.Errorf("refs = %d", f.Refs(r))
	}
	f.Release(r)
	if f.FreeCount(false) != 1 {
		t.Error("register freed while still referenced")
	}
	f.Release(r)
	if f.FreeCount(false) != 2 {
		t.Error("register not freed at refcount zero")
	}
	if err := f.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestReleaseFreePanics(t *testing.T) {
	f := New(1, 0)
	r, _ := f.Alloc(false)
	f.Release(r)
	defer func() {
		if recover() == nil {
			t.Error("double release should panic")
		}
	}()
	f.Release(r)
}

func TestAddRefFreePanics(t *testing.T) {
	f := New(1, 0)
	r, _ := f.Alloc(false)
	f.Release(r)
	defer func() {
		if recover() == nil {
			t.Error("AddRef on free register should panic")
		}
	}()
	f.AddRef(r)
}

func TestValuesAndReady(t *testing.T) {
	f := New(1, 0)
	r, _ := f.Alloc(false)
	if f.Ready(r) {
		t.Error("fresh register should not be ready")
	}
	f.SetValue(r, 42)
	if !f.Ready(r) || f.Value(r) != 42 {
		t.Errorf("value = %d ready = %v", f.Value(r), f.Ready(r))
	}
	f.Release(r)
	r2, _ := f.Alloc(false)
	if f.Ready(r2) {
		t.Error("reallocated register should be reset to not-ready")
	}
}

func TestNoRegIsNoop(t *testing.T) {
	f := New(1, 0)
	f.AddRef(NoReg)
	f.Release(NoReg) // must not panic
}

// Property: any sequence of alloc/addref/release operations preserves
// register conservation (every register is exactly free or referenced).
func TestConservationProperty(t *testing.T) {
	fn := func(ops []uint8) bool {
		f := New(8, 4)
		var live []PhysReg
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if r, ok := f.Alloc(op%2 == 0); ok {
					live = append(live, r)
				}
			case 1:
				if len(live) > 0 {
					f.AddRef(live[int(op)%len(live)])
					live = append(live, live[int(op)%len(live)])
				}
			case 2:
				if len(live) > 0 {
					i := int(op) % len(live)
					f.Release(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			}
			if err := f.CheckConservation(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
