// Package regfile implements the shared physical register file of the
// SMT/TME processor: values, ready bits, per-register reference counts,
// and separate integer and floating-point free lists.
//
// Reference counting is what makes the paper's instruction *reuse* safe
// in the simulator: reuse writes an inactive context's old physical
// mapping into the primary thread's map table, so the same physical
// register is then reachable from two places (the inactive active list
// and the primary's map/active-list).  A register returns to the free
// list only when every holder has released it, which prevents the
// double-free / premature-free hazards §3.5 of the paper works around
// with its "last reuse" bookkeeping.
package regfile

import "fmt"

// PhysReg names one physical register.  NoReg marks "no mapping".
type PhysReg int32

// NoReg is the absent-mapping sentinel.
const NoReg PhysReg = -1

// File is the physical register file.  Integer registers occupy ids
// [0, NumInt); floating point ids [NumInt, NumInt+NumFP).
type File struct {
	NumInt, NumFP int

	vals  []uint64
	ready []bool
	refs  []int32

	freeInt []PhysReg
	freeFP  []PhysReg

	// AllocFailures counts Alloc calls that found an empty free list;
	// the core uses this to trigger inactive-context reclamation.
	AllocFailures uint64
}

// New builds a register file with all registers free.
func New(numInt, numFP int) *File {
	f := &File{
		NumInt: numInt,
		NumFP:  numFP,
		vals:   make([]uint64, numInt+numFP),
		ready:  make([]bool, numInt+numFP),
		refs:   make([]int32, numInt+numFP),
	}
	f.freeInt = make([]PhysReg, 0, numInt)
	f.freeFP = make([]PhysReg, 0, numFP)
	for r := numInt + numFP - 1; r >= 0; r-- {
		if r >= numInt {
			f.freeFP = append(f.freeFP, PhysReg(r))
		} else {
			f.freeInt = append(f.freeInt, PhysReg(r))
		}
	}
	return f
}

// IsFP reports which pool the register belongs to.
func (f *File) IsFP(r PhysReg) bool { return int(r) >= f.NumInt }

// FreeCount returns the number of free registers in the given pool.
func (f *File) FreeCount(fp bool) int {
	if fp {
		return len(f.freeFP)
	}
	return len(f.freeInt)
}

// Alloc takes a register from the requested pool with refcount 1 and
// not-ready status.  ok is false when the pool is empty (rename must
// stall or reclaim an inactive context).
func (f *File) Alloc(fp bool) (PhysReg, bool) {
	list := &f.freeInt
	if fp {
		list = &f.freeFP
	}
	if len(*list) == 0 {
		f.AllocFailures++
		return NoReg, false
	}
	r := (*list)[len(*list)-1]
	*list = (*list)[:len(*list)-1]
	f.refs[r] = 1
	f.ready[r] = false
	f.vals[r] = 0
	return r, true
}

// AddRef notes an additional holder of r (e.g. a reused mapping).
func (f *File) AddRef(r PhysReg) {
	if r == NoReg {
		return
	}
	if f.refs[r] <= 0 {
		panic(fmt.Sprintf("regfile: AddRef on free register p%d", r))
	}
	f.refs[r]++
}

// Release drops one reference; at zero the register returns to its
// free list.
func (f *File) Release(r PhysReg) {
	if r == NoReg {
		return
	}
	if f.refs[r] <= 0 {
		panic(fmt.Sprintf("regfile: Release on free register p%d", r))
	}
	f.refs[r]--
	if f.refs[r] == 0 {
		if f.IsFP(r) {
			f.freeFP = append(f.freeFP, r)
		} else {
			f.freeInt = append(f.freeInt, r)
		}
	}
}

// Refs returns the current reference count (tests, invariant checks).
func (f *File) Refs(r PhysReg) int { return int(f.refs[r]) }

// SetValue writes a produced value and marks the register ready.
func (f *File) SetValue(r PhysReg, v uint64) {
	f.vals[r] = v
	f.ready[r] = true
}

// Value reads the register's value (valid once Ready).
func (f *File) Value(r PhysReg) uint64 { return f.vals[r] }

// Ready reports whether the register's value has been produced.
func (f *File) Ready(r PhysReg) bool { return f.ready[r] }

// CheckConservation verifies that every register is either free or
// referenced, and none is both; tests call this after stress runs.
func (f *File) CheckConservation() error {
	onFree := make(map[PhysReg]bool, len(f.freeInt)+len(f.freeFP))
	for _, r := range f.freeInt {
		if onFree[r] {
			return fmt.Errorf("regfile: p%d on free list twice", r)
		}
		onFree[r] = true
	}
	for _, r := range f.freeFP {
		if onFree[r] {
			return fmt.Errorf("regfile: p%d on free list twice", r)
		}
		onFree[r] = true
	}
	for r := 0; r < f.NumInt+f.NumFP; r++ {
		pr := PhysReg(r)
		switch {
		case f.refs[r] < 0:
			return fmt.Errorf("regfile: p%d has negative refcount %d", r, f.refs[r])
		case f.refs[r] == 0 && !onFree[pr]:
			return fmt.Errorf("regfile: p%d has refcount 0 but is not free", r)
		case f.refs[r] > 0 && onFree[pr]:
			return fmt.Errorf("regfile: p%d has refcount %d but is on the free list", r, f.refs[r])
		}
	}
	return nil
}
