package iq

import (
	"testing"

	"recyclesim/internal/alist"
	"recyclesim/internal/isa"
)

func ent(ctx int, seq uint64) *alist.Entry {
	return &alist.Entry{Ctx: ctx, Seq: seq, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1}}
}

func TestPushFull(t *testing.T) {
	q := New(2)
	if !q.Push(ent(0, 0)) || !q.Push(ent(0, 1)) {
		t.Fatal("push into non-full queue failed")
	}
	if q.Push(ent(0, 2)) {
		t.Fatal("push into full queue succeeded")
	}
	if !q.Full() || q.Len() != 2 || q.Capacity() != 2 {
		t.Errorf("len=%d cap=%d", q.Len(), q.Capacity())
	}
}

func TestScanOrderAndRemoval(t *testing.T) {
	q := New(8)
	for i := 0; i < 5; i++ {
		q.Push(ent(0, uint64(i)))
	}
	var seen []uint64
	q.Scan(func(e *alist.Entry) bool {
		seen = append(seen, e.Seq)
		return e.Seq%2 == 0 // remove even seqs
	})
	if len(seen) != 5 || seen[0] != 0 || seen[4] != 4 {
		t.Errorf("scan order = %v", seen)
	}
	if q.Len() != 2 {
		t.Errorf("len after removal = %d", q.Len())
	}
	// Remaining entries keep their relative order.
	var rest []uint64
	q.Scan(func(e *alist.Entry) bool {
		rest = append(rest, e.Seq)
		return false
	})
	if rest[0] != 1 || rest[1] != 3 {
		t.Errorf("rest = %v", rest)
	}
}

func TestRemoveIfAndCountCtx(t *testing.T) {
	q := New(8)
	q.Push(ent(0, 0))
	q.Push(ent(1, 0))
	q.Push(ent(0, 1))
	if q.CountCtx(0) != 2 || q.CountCtx(1) != 1 {
		t.Errorf("counts = %d, %d", q.CountCtx(0), q.CountCtx(1))
	}
	removed := q.RemoveIf(func(e *alist.Entry) bool { return e.Ctx == 0 })
	if removed != 2 || q.Len() != 1 || q.CountCtx(0) != 0 {
		t.Errorf("removed=%d len=%d", removed, q.Len())
	}
}

func TestForClass(t *testing.T) {
	if ForClass(isa.ClassIntALU) || ForClass(isa.ClassLoad) || ForClass(isa.ClassBranch) {
		t.Error("integer classes must go to the integer queue")
	}
	if !ForClass(isa.ClassFPAdd) || !ForClass(isa.ClassFPDiv) || !ForClass(isa.ClassFPCvt) {
		t.Error("fp classes must go to the fp queue")
	}
}
