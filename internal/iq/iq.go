// Package iq implements the instruction queues that hold dispatched
// instructions until their register operands are ready and a functional
// unit is free.  The baseline machine has two 64-entry queues (integer
// and floating point); issue selection is oldest-first in dispatch
// order, matching the paper's baseline.
package iq

import (
	"recyclesim/internal/alist"
	"recyclesim/internal/isa"
)

// Queue is one instruction queue.
type Queue struct {
	cap  int
	ents []*alist.Entry

	// counts caches per-context occupancy so the ICOUNT fetch and
	// rename priority policies read it in O(1) instead of scanning the
	// queue (grown on demand to the highest context id seen).
	counts []int
}

// New returns an empty queue with the given capacity.
func New(capacity int) *Queue {
	return &Queue{cap: capacity, ents: make([]*alist.Entry, 0, capacity)}
}

func (q *Queue) bump(ctx, delta int) {
	for ctx >= len(q.counts) {
		q.counts = append(q.counts, 0)
	}
	q.counts[ctx] += delta
}

// Capacity returns the maximum occupancy.
func (q *Queue) Capacity() int { return q.cap }

// Len returns the current occupancy.
func (q *Queue) Len() int { return len(q.ents) }

// Full reports whether dispatch must stall.
func (q *Queue) Full() bool { return len(q.ents) >= q.cap }

// Push inserts a dispatched entry; it reports false when full.
func (q *Queue) Push(e *alist.Entry) bool {
	if q.Full() {
		return false
	}
	q.ents = append(q.ents, e)
	q.bump(e.Ctx, 1)
	return true
}

// Scan visits entries oldest-first.  The visitor returns true to
// remove the entry (it issued or was cancelled).  Scan preserves the
// relative order of retained entries.
func (q *Queue) Scan(visit func(e *alist.Entry) (remove bool)) {
	out := q.ents[:0]
	for _, e := range q.ents {
		if !visit(e) {
			out = append(out, e)
		} else {
			q.bump(e.Ctx, -1)
		}
	}
	// Clear the tail so removed entries don't pin memory.
	for i := len(out); i < len(q.ents); i++ {
		q.ents[i] = nil
	}
	q.ents = out
}

// RemoveIf deletes all entries matching the predicate (squash support).
func (q *Queue) RemoveIf(match func(e *alist.Entry) bool) int {
	removed := 0
	q.Scan(func(e *alist.Entry) bool {
		if match(e) {
			removed++
			return true
		}
		return false
	})
	return removed
}

// Each visits every queued entry oldest-first without removing any;
// the runtime invariant checker uses it to audit queue membership.
func (q *Queue) Each(visit func(e *alist.Entry)) {
	for _, e := range q.ents {
		visit(e)
	}
}

// CountCtx returns the number of queued entries belonging to ctx; the
// ICOUNT fetch policy and the recycle priority counter use this.
func (q *Queue) CountCtx(ctx int) int {
	if ctx < len(q.counts) {
		return q.counts[ctx]
	}
	return 0
}

// ForClass reports which queue an instruction class dispatches to:
// true for the floating-point queue.
func ForClass(c isa.Class) bool {
	switch c {
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv, isa.ClassFPCvt:
		return true
	}
	return false
}
