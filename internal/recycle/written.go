// Package recycle implements the bookkeeping structures §3 of the paper
// introduces for instruction recycling and reuse: the written bit-array
// that detects changed register operands, the Memory Disambiguation
// Buffer (MDB) that qualifies load-value reuse, and the per-context
// merge points that trigger recycling.
package recycle

import "recyclesim/internal/isa"

// WrittenBits is the paper's "written bit-array of contexts indexed by
// logical registers" (§3.5).  bit[reg][ctx] set means the primary has
// created a new instance of reg since ctx's path started, so recycled
// instructions from ctx that read reg cannot be reused.
type WrittenBits struct {
	contexts int
	bits     []uint16 // one row per logical register; bit c = context c
}

// NewWrittenBits builds the array for the given number of hardware
// contexts (at most 16 with this row representation).
func NewWrittenBits(contexts int) *WrittenBits {
	if contexts > 16 {
		panic("recycle: written bit-array supports at most 16 contexts")
	}
	return &WrittenBits{contexts: contexts, bits: make([]uint16, isa.NumRegs)}
}

// ResetContext clears the column for ctx: "when a new path is started
// on a context, the column of register bits for that context is reset."
func (w *WrittenBits) ResetContext(ctx int) {
	mask := ^(uint16(1) << uint(ctx))
	for r := range w.bits {
		w.bits[r] &= mask
	}
}

// MarkWritten records that a partition's primary created a new register
// instance: "the row of context bits for that register is set."  mask
// selects the columns of the partition's contexts — logical registers
// of unrelated programs sharing the machine never interact.
func (w *WrittenBits) MarkWritten(reg isa.Reg, mask uint16) {
	w.bits[reg] |= mask
}

// ClearFor clears the bit for one (reg, ctx) pair.  Used when a reused
// instruction re-installs exactly the mapping ctx's trace recorded, so
// from that trace's point of view the register is unchanged and chained
// reuse stays possible.
func (w *WrittenBits) ClearFor(reg isa.Reg, ctx int) {
	w.bits[reg] &^= 1 << uint(ctx)
}

// MarkWrittenExcept sets the row for the masked contexts except skip
// (the reuse case: other contexts' traces saw a different mapping
// identity, but the source trace's own mapping is re-installed intact).
func (w *WrittenBits) MarkWrittenExcept(reg isa.Reg, mask uint16, skip int) {
	w.bits[reg] |= mask &^ (1 << uint(skip))
}

// SetAll conservatively marks every register changed for the masked
// contexts.  The core uses it on TME promotion: the new primary's
// earlier (alternate-path) writes predate its primaryhood and were
// never recorded, so every existing trace in the partition must be
// treated as operand-stale.
func (w *WrittenBits) SetAll(mask uint16) {
	for r := range w.bits {
		w.bits[r] |= mask
	}
}

// Changed reports whether reg has been re-instanced by the primary
// since ctx's path started.
func (w *WrittenBits) Changed(reg isa.Reg, ctx int) bool {
	if reg == isa.RegZero {
		return false
	}
	return w.bits[reg]&(1<<uint(ctx)) != 0
}
