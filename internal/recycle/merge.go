package recycle

// MergePoints tracks the two merge points §3.2 allows per context: the
// PC of the first instruction in the context's active list, and the
// target of the last backward branch inserted into it (for loop
// recycling).  The backward point is invalidated when the active list
// overwrites the entry it names.
type MergePoints struct {
	FirstPC    uint64
	FirstSeq   uint64
	FirstValid bool

	BackPC    uint64
	BackSeq   uint64
	BackValid bool
}

// SetFirst records the first-instruction merge point.
func (m *MergePoints) SetFirst(pc uint64, seq uint64) {
	m.FirstPC, m.FirstSeq, m.FirstValid = pc, seq, true
}

// SetBack records a new backward-branch merge point, overwriting any
// previous one ("if another backwards branch is detected, it overwrites
// the previous backward branch merge point").
func (m *MergePoints) SetBack(pc uint64, seq uint64) {
	m.BackPC, m.BackSeq, m.BackValid = pc, seq, true
}

// Invalidate clears both points (context reclaim).
func (m *MergePoints) Invalidate() {
	m.FirstValid, m.BackValid = false, false
}

// DropSeq invalidates points that referenced the evicted active-list
// sequence number ("if an instruction is inserted into the active list
// which overwrites the first instruction of a backwards branch merge
// point, then the merge point is invalidated").
func (m *MergePoints) DropSeq(seq uint64) {
	if m.BackValid && m.BackSeq == seq {
		m.BackValid = false
	}
	if m.FirstValid && m.FirstSeq == seq {
		m.FirstValid = false
	}
}

// DropFrom invalidates points into the squashed range [seq, ∞).
func (m *MergePoints) DropFrom(seq uint64) {
	if m.BackValid && m.BackSeq >= seq {
		m.BackValid = false
	}
	if m.FirstValid && m.FirstSeq >= seq {
		m.FirstValid = false
	}
}

// Match checks pc against the valid merge points and returns the
// active-list sequence to recycle from.  The first-PC point wins when
// both match (it is the longer trace).
func (m *MergePoints) Match(pc uint64) (seq uint64, back bool, ok bool) {
	if m.FirstValid && m.FirstPC == pc {
		return m.FirstSeq, false, true
	}
	if m.BackValid && m.BackPC == pc {
		return m.BackSeq, true, true
	}
	return 0, false, false
}
