package recycle

// MDB is the Memory Disambiguation Buffer of §3.5: it records (load PC,
// effective address) pairs when loads execute.  A store to a matching
// address removes the pairs for that address.  At recycle time a load
// may reuse its old value only if its pair is still present, proving no
// intervening store touched the address.
//
// The buffer has finite capacity with FIFO replacement; evicting an
// entry merely forfeits a reuse opportunity (never correctness).
// Addresses are tagged with the address-space identifier by the caller,
// so programs sharing the machine never alias.
type MDB struct {
	cap   int
	fifo  []mdbEntry
	index map[uint64]int // (pc,addr) key -> position count (presence)
}

type mdbEntry struct {
	pc, addr uint64
	valid    bool
}

func mdbKey(pc, addr uint64) uint64 {
	// pc and addr live in disjoint, low-entropy ranges; a mixed key
	// keeps the map collision-free for realistic traces.
	return pc*0x9E3779B97F4A7C15 ^ addr
}

// NewMDB builds a buffer holding up to capacity load entries.
func NewMDB(capacity int) *MDB {
	return &MDB{
		cap:   capacity,
		fifo:  make([]mdbEntry, 0, capacity),
		index: make(map[uint64]int, capacity),
	}
}

// InsertLoad records an executed load.  Re-inserting the same (pc,
// addr) refreshes the entry.
func (m *MDB) InsertLoad(pc, addr uint64) {
	key := mdbKey(pc, addr)
	if m.index[key] > 0 {
		return
	}
	if len(m.fifo) >= m.cap {
		old := m.fifo[0]
		m.fifo = m.fifo[1:]
		if old.valid {
			k := mdbKey(old.pc, old.addr)
			if m.index[k]--; m.index[k] <= 0 {
				delete(m.index, k)
			}
		}
	}
	m.fifo = append(m.fifo, mdbEntry{pc: pc, addr: addr, valid: true})
	m.index[key]++
}

// StoreTo invalidates every load entry whose address matches: "If the
// store finds its address in the MDB, the load PC and address are
// removed."
func (m *MDB) StoreTo(addr uint64) {
	for i := range m.fifo {
		e := &m.fifo[i]
		if e.valid && e.addr == addr {
			k := mdbKey(e.pc, e.addr)
			if m.index[k]--; m.index[k] <= 0 {
				delete(m.index, k)
			}
			e.valid = false
		}
	}
}

// Reusable reports whether the load at pc with the given address is
// still present, i.e. its old value may be reused.
func (m *MDB) Reusable(pc, addr uint64) bool {
	return m.index[mdbKey(pc, addr)] > 0
}

// Len returns the number of live entries (tests).
func (m *MDB) Len() int {
	n := 0
	for _, e := range m.fifo {
		if e.valid {
			n++
		}
	}
	return n
}
