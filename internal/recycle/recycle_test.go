package recycle

import (
	"testing"
	"testing/quick"

	"recyclesim/internal/isa"
)

func TestWrittenBitsBasics(t *testing.T) {
	w := NewWrittenBits(4)
	mask := uint16(0b1111)
	if w.Changed(5, 2) {
		t.Error("fresh array should report unchanged")
	}
	w.MarkWritten(5, mask)
	for ctx := 0; ctx < 4; ctx++ {
		if !w.Changed(5, ctx) {
			t.Errorf("ctx %d should see reg 5 changed", ctx)
		}
	}
	if w.Changed(6, 0) {
		t.Error("other registers unaffected")
	}
	w.ResetContext(2)
	if w.Changed(5, 2) {
		t.Error("reset column should be clear")
	}
	if !w.Changed(5, 1) {
		t.Error("other columns must survive a reset")
	}
}

func TestWrittenBitsPartitionMask(t *testing.T) {
	w := NewWrittenBits(8)
	// Partition A = contexts 0-3, partition B = 4-7.
	w.MarkWritten(3, 0b00001111)
	if w.Changed(3, 5) {
		t.Error("partition B must not see partition A's writes")
	}
	if !w.Changed(3, 2) {
		t.Error("partition A context should see the write")
	}
}

func TestWrittenBitsReuseCase(t *testing.T) {
	w := NewWrittenBits(4)
	mask := uint16(0b1111)
	// A reused definition re-installs ctx 1's own mapping: its column
	// stays clear, everyone else's is set.
	w.MarkWrittenExcept(7, mask, 1)
	if w.Changed(7, 1) {
		t.Error("reuse source column should stay clear")
	}
	if !w.Changed(7, 0) || !w.Changed(7, 3) {
		t.Error("other columns should be set")
	}
	// ClearFor reopens chained reuse after the row was fully set.
	w.MarkWritten(7, mask)
	w.ClearFor(7, 1)
	if w.Changed(7, 1) {
		t.Error("ClearFor failed")
	}
}

func TestWrittenBitsSetAll(t *testing.T) {
	w := NewWrittenBits(4)
	w.SetAll(0b0011)
	if !w.Changed(1, 0) || !w.Changed(31, 1) {
		t.Error("SetAll should mark every register for masked contexts")
	}
	if w.Changed(1, 2) {
		t.Error("SetAll must respect the mask")
	}
}

func TestWrittenBitsZeroRegister(t *testing.T) {
	w := NewWrittenBits(2)
	w.MarkWritten(isa.RegZero, 0b11)
	if w.Changed(isa.RegZero, 0) {
		t.Error("the zero register never changes")
	}
}

func TestMDBInsertAndInvalidate(t *testing.T) {
	m := NewMDB(4)
	m.InsertLoad(0x100, 0x8000)
	if !m.Reusable(0x100, 0x8000) {
		t.Error("inserted load should be reusable")
	}
	if m.Reusable(0x104, 0x8000) {
		t.Error("different PC should not match")
	}
	m.StoreTo(0x8000)
	if m.Reusable(0x100, 0x8000) {
		t.Error("store must invalidate the load")
	}
	if m.Len() != 0 {
		t.Errorf("len = %d", m.Len())
	}
}

func TestMDBStoreOnlyMatchingAddress(t *testing.T) {
	m := NewMDB(4)
	m.InsertLoad(0x100, 0x8000)
	m.InsertLoad(0x104, 0x8008)
	m.StoreTo(0x8000)
	if m.Reusable(0x100, 0x8000) {
		t.Error("stored-to address should be invalid")
	}
	if !m.Reusable(0x104, 0x8008) {
		t.Error("other address must survive")
	}
}

func TestMDBCapacityFIFO(t *testing.T) {
	m := NewMDB(2)
	m.InsertLoad(0x100, 0x8000)
	m.InsertLoad(0x104, 0x8008)
	m.InsertLoad(0x108, 0x8010) // evicts the first
	if m.Reusable(0x100, 0x8000) {
		t.Error("oldest entry should be evicted")
	}
	if !m.Reusable(0x104, 0x8008) || !m.Reusable(0x108, 0x8010) {
		t.Error("newer entries should survive")
	}
}

func TestMDBReinsertRefreshes(t *testing.T) {
	m := NewMDB(4)
	m.InsertLoad(0x100, 0x8000)
	m.InsertLoad(0x100, 0x8000) // duplicate: no double entry
	if m.Len() != 1 {
		t.Errorf("len = %d, want 1", m.Len())
	}
	m.StoreTo(0x8000)
	if m.Reusable(0x100, 0x8000) {
		t.Error("invalidated after store")
	}
}

// Property: the MDB never reports a load reusable after a store to the
// same address, under any operation interleaving.
func TestMDBSafetyProperty(t *testing.T) {
	type op struct {
		Store bool
		PC    uint8
		Addr  uint8
	}
	fn := func(ops []op) bool {
		m := NewMDB(8)
		lastStore := map[uint64]int{}
		lastLoad := map[[2]uint64]int{}
		for i, o := range ops {
			pc := uint64(o.PC) * 4
			addr := uint64(o.Addr) * 8
			if o.Store {
				m.StoreTo(addr)
				lastStore[addr] = i
			} else {
				m.InsertLoad(pc, addr)
				lastLoad[[2]uint64{pc, addr}] = i
			}
		}
		for key, li := range lastLoad {
			if si, ok := lastStore[key[1]]; ok && si > li {
				if m.Reusable(key[0], key[1]) {
					return false // store-after-load yet still reusable
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergePoints(t *testing.T) {
	var m MergePoints
	if _, _, ok := m.Match(0x1000); ok {
		t.Error("empty merge points should not match")
	}
	m.SetFirst(0x1000, 3)
	m.SetBack(0x2000, 7)
	if seq, back, ok := m.Match(0x1000); !ok || back || seq != 3 {
		t.Errorf("first match: %d %v %v", seq, back, ok)
	}
	if seq, back, ok := m.Match(0x2000); !ok || !back || seq != 7 {
		t.Errorf("back match: %d %v %v", seq, back, ok)
	}
	// First-PC wins when both name the same address.
	m.SetBack(0x1000, 9)
	if seq, back, _ := m.Match(0x1000); back || seq != 3 {
		t.Error("first-PC point should win")
	}
}

func TestMergePointsInvalidation(t *testing.T) {
	var m MergePoints
	m.SetFirst(0x1000, 3)
	m.SetBack(0x2000, 7)
	m.DropSeq(7)
	if _, _, ok := m.Match(0x2000); ok {
		t.Error("dropped backward point should not match")
	}
	m.DropSeq(3)
	if _, _, ok := m.Match(0x1000); ok {
		t.Error("dropped first point should not match")
	}

	m.SetFirst(0x1000, 3)
	m.SetBack(0x2000, 7)
	m.DropFrom(5)
	if _, _, ok := m.Match(0x2000); ok {
		t.Error("squash range should invalidate the backward point")
	}
	if _, _, ok := m.Match(0x1000); !ok {
		t.Error("older first point should survive DropFrom(5)")
	}
	m.Invalidate()
	if _, _, ok := m.Match(0x1000); ok {
		t.Error("Invalidate should clear everything")
	}
}

func TestWrittenBitsTooManyContexts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for >16 contexts")
		}
	}()
	NewWrittenBits(17)
}
