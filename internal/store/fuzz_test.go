package store

import (
	"encoding/json"
	"testing"

	"recyclesim/internal/stats"
)

// FuzzStoreDecode drives the record parser with arbitrary bytes and
// keys.  The properties: decode never panics, whatever the input; an
// accepted record satisfies the serving contract (current codec
// version, echoed key, non-nil payload); decode is deterministic; and
// every defect — corrupt JSON, truncation, version skew, a mis-keyed
// record — is a miss, never a partial record.  Seed corpus: a valid
// marshaled record plus the exact damage shapes the store's
// corruption contract promises to absorb.
func FuzzStoreDecode(f *testing.F) {
	const key = "abc123"
	valid, err := json.Marshal(&Record{
		Version: recordVersion,
		Key:     key,
		Stats:   &stats.Sim{Committed: 42, Cycles: 99},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, key)
	f.Add(valid[:len(valid)/2], key)                         // truncated mid-record
	f.Add([]byte(`{"v":99,"key":"abc123","stats":{}}`), key) // version skew
	f.Add([]byte(`{"v":1,"key":"abc123"}`), key)             // no payload
	f.Add([]byte(`{"v":1,"key":"other","stats":{}}`), key)   // mis-keyed
	f.Add([]byte(`{"v":1,"key":"abc123","stats":{"committed":-1}}`), key)
	f.Add([]byte(``), key)
	f.Add([]byte(`null`), key)
	f.Add([]byte(`[]`), "")
	f.Add([]byte(`{"v":1,"key":"abc123","sampled":{"ipc":"NaN"}}`), key)

	f.Fuzz(func(t *testing.T, data []byte, key string) {
		rec, ok := decode(data, key)
		if !ok {
			if rec != nil {
				t.Fatal("miss returned a non-nil record")
			}
			return
		}
		if rec == nil {
			t.Fatal("hit returned a nil record")
		}
		if !rec.valid(key) {
			t.Errorf("decode accepted a record that fails valid(%q): %+v", key, rec)
		}
		// Deterministic: the same bytes decode to the same record.
		rec2, ok2 := decode(data, key)
		if !ok2 {
			t.Fatal("second decode of accepted bytes missed")
		}
		b1, _ := json.Marshal(rec)
		b2, _ := json.Marshal(rec2)
		if string(b1) != string(b2) {
			t.Errorf("decode not deterministic:\n first %s\nsecond %s", b1, b2)
		}
	})
}
