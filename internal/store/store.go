// Package store is the durable, content-addressed simulation result
// cache behind the recycled job server: one JSON record per simulation
// cell, addressed by the SHA-256 of the cell's full identity (machine
// config + feature knobs + workload content hash + instruction budget
// + sampling schedule and confidence; see CellKey).
//
// Design points:
//
//   - Writes are atomic (temp file + rename in the same directory), so
//     a crash mid-write can never leave a half record where a key
//     resolves.  Rerunning simply recomputes and overwrites.
//   - Records carry a codec version and echo their own key; Get treats
//     any mismatch — unparseable JSON, foreign version, key/filename
//     disagreement, missing payload — as a miss, never an error, so a
//     corrupted or downgraded store degrades to recomputation instead
//     of failing open or serving wrong bytes.
//   - GetOrCompute deduplicates concurrent computations of one key
//     process-wide (single-flight): with many clients submitting
//     overlapping sweeps, each distinct cell is simulated exactly
//     once, and the Counters expose the proof (DiskHits +
//     FlightShares + Computes accounts for every request).
//
// The store holds simulation *results*, not simulation state, and is
// deliberately dumb about them: the byte-identity guarantee (a record
// read back equals the result of a direct run) rests on Go's JSON
// float round-tripping and is enforced end-to-end by the witness tests
// in internal/jobs.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"recyclesim/internal/obs"
	"recyclesim/internal/obs/trace"
	"recyclesim/internal/sample"
	"recyclesim/internal/stats"
)

// recordVersion is the on-disk codec version.  Bump on any change to
// the Record schema that old readers would misinterpret; readers treat
// foreign versions as misses.
const recordVersion = 1

// Record is one cell's persisted result: exactly one of Stats (a
// detailed run, with its telemetry) or Sampled (a sampled estimate) is
// set.
type Record struct {
	Version int    `json:"v"`
	Key     string `json:"key"`

	Stats   *stats.Sim     `json:"stats,omitempty"`
	Metrics *obs.Metrics   `json:"metrics,omitempty"`
	Sampled *sample.Result `json:"sampled,omitempty"`
}

// valid reports whether a decoded record may be served for key.
func (r *Record) valid(key string) bool {
	return r.Version == recordVersion && r.Key == key && (r.Stats != nil || r.Sampled != nil)
}

// Counters is a snapshot of the store's accounting: every successful
// GetOrCompute is exactly one of a disk hit, a single-flight share, or
// a compute.  Corrupt counts records that were found but refused;
// PutErrors counts results that were computed and served but could not
// be persisted.
type Counters struct {
	DiskHits     uint64 `json:"disk_hits"`
	FlightShares uint64 `json:"flight_shares"`
	Computes     uint64 `json:"computes"`
	Corrupt      uint64 `json:"corrupt"`
	PutErrors    uint64 `json:"put_errors"`
}

// Store is a content-addressed record cache over one directory.  All
// methods are safe for concurrent use; separate processes may share a
// directory (atomic renames keep records consistent; only the
// in-process single-flight dedupe does not extend across processes).
type Store struct {
	dir string

	mu     sync.Mutex
	flight map[string]*flightCall

	diskHits     atomic.Uint64
	flightShares atomic.Uint64
	computes     atomic.Uint64
	corrupt      atomic.Uint64
	putErrors    atomic.Uint64
}

// flightCall is one in-progress computation; followers block on done.
type flightCall struct {
	done chan struct{}
	rec  *Record
	err  error
}

// Open creates (if needed) and opens the store rooted at dir.  Opening
// never reads existing records, so a directory full of corruption
// opens fine — damage surfaces as misses, per record, on Get.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, flight: make(map[string]*flightCall)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Counters returns a snapshot of the accounting counters.
func (s *Store) Counters() Counters {
	return Counters{
		DiskHits:     s.diskHits.Load(),
		FlightShares: s.flightShares.Load(),
		Computes:     s.computes.Load(),
		Corrupt:      s.corrupt.Load(),
		PutErrors:    s.putErrors.Load(),
	}
}

// path shards records by the first key byte to keep directories small:
// <dir>/<key[:2]>/<key>.json.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get returns the record stored for key, if a valid one exists.
// Unreadable, unparseable, mis-keyed, or foreign-version records count
// as misses (and bump the Corrupt counter), never errors.
func (s *Store) Get(key string) (*Record, bool) {
	rec, ok, _ := s.get(key)
	return rec, ok
}

// get is Get plus the corrupt verdict, so the traced lookup path can
// attribute a refused record without re-reading the counters.
func (s *Store) get(key string) (rec *Record, ok, corrupt bool) {
	if len(key) < 3 {
		return nil, false, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false, false
	}
	rec, ok = decode(data, key)
	if !ok {
		s.corrupt.Add(1)
		return nil, false, true
	}
	return rec, true, false
}

// decode parses one on-disk record for key.  Any defect — unparseable
// JSON, foreign codec version, key mismatch, missing payload — is a
// miss (nil, false), never a panic or an error: the store's corruption
// contract lives here, and FuzzStoreDecode hammers it.
func decode(data []byte, key string) (*Record, bool) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil || !r.valid(key) {
		return nil, false
	}
	return &r, true
}

// Put persists rec under key atomically: the record is written to a
// temp file in the destination directory and renamed into place, so a
// reader (or a crash) can never observe a partial record.  Put stamps
// the record's Version and Key.
func (s *Store) Put(key string, rec *Record) error {
	if len(key) < 3 {
		return fmt.Errorf("store: malformed key %q", key)
	}
	rec.Version = recordVersion
	rec.Key = key
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", key, err)
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), key+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: rename %s: %w", key, err)
	}
	return nil
}

// GetOrCompute returns the record for key, computing and persisting it
// on a miss.  Concurrent callers for the same key are deduplicated:
// exactly one runs compute, the rest block and share its result.
// cached reports whether the caller avoided a compute (disk hit or
// single-flight share).  A compute whose Put fails is still served —
// only durability is lost, and the PutErrors counter records it; a
// compute that itself fails propagates its error to every waiter and
// leaves no record behind.
func (s *Store) GetOrCompute(key string, compute func() (*Record, error)) (rec *Record, cached bool, err error) {
	return s.GetOrComputeTraced(key, trace.Ctx{}, func(trace.Ctx) (*Record, error) {
		return compute()
	})
}

// GetOrComputeTraced is GetOrCompute with request-scoped span
// attribution: every phase the request actually passes through —
// "lookup" (disk read, with hit/corrupt/recheck attributes),
// "flight-wait" (blocking on another caller's in-progress
// computation), "compute" (the caller's compute body, which receives
// its span handle so it can record per-attempt children), and "put"
// (persisting the fresh record) — lands as a distinct span under tc.
// With the zero Ctx the hit path costs zero extra allocations over
// GetOrCompute (witnessed by TestTracedHitPathAllocParity).
func (s *Store) GetOrComputeTraced(key string, tc trace.Ctx, compute func(trace.Ctx) (*Record, error)) (rec *Record, cached bool, err error) {
	lk := tc.Start("lookup")
	rec, ok, corrupt := s.get(key)
	if corrupt {
		lk.Uint("corrupt", 1)
	}
	if ok {
		lk.Uint("hit", 1).End()
		s.diskHits.Add(1)
		return rec, true, nil
	}
	lk.End()

	s.mu.Lock()
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		fw := tc.Start("flight-wait")
		<-c.done
		if c.err != nil {
			fw.Error(c.err).End()
			return nil, false, c.err
		}
		fw.End()
		s.flightShares.Add(1)
		return c.rec, true, nil
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.flight, key)
		s.mu.Unlock()
		close(c.done)
	}()

	// Re-check the disk under flight ownership: a previous leader (or
	// another process sharing the directory) may have landed the record
	// between our miss and winning the flight slot.
	lk = tc.Start("lookup").Uint("recheck", 1)
	if rec, ok := s.Get(key); ok {
		lk.Uint("hit", 1).End()
		s.diskHits.Add(1)
		c.rec = rec
		return rec, true, nil
	}
	lk.End()

	s.computes.Add(1)
	cs := tc.Start("compute")
	rec, err = compute(cs)
	if err != nil {
		cs.Error(err).End()
		c.err = err
		return nil, false, err
	}
	cs.End()
	ps := tc.Start("put")
	if perr := s.Put(key, rec); perr != nil {
		ps.Error(perr)
		s.putErrors.Add(1)
	}
	ps.End()
	c.rec = rec
	return rec, false, nil
}
