package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"recyclesim/internal/config"
	"recyclesim/internal/program"
)

// keySchema versions the cell-key derivation.  Bump it whenever the
// canonical serialization below changes meaning: every stored record is
// addressed by the hash of this string plus the cell identity, so a
// schema bump re-keys the store cleanly (old records become unreachable
// garbage rather than wrong answers).
const keySchema = "recyclesim-cell-v1"

// Sampling is the sampled-schedule part of a cell's identity.  The
// confidence level is part of the key from day one: it changes the
// IPCLo/IPCHi/CPIHalf bounds a record serves, not just their label
// (the sampled-journal key in cmd/experiments once omitted it — a
// cache must never repeat that bug, because a durable store would
// serve the stale bounds forever).
type Sampling struct {
	Period      uint64  `json:"period"`
	IntervalLen uint64  `json:"interval"`
	WarmupLen   uint64  `json:"warmup"`
	Confidence  float64 `json:"confidence"`
}

// normalized applies the simulator's schedule defaults, so a cell
// submitted with zero (default) fields shares its record with the same
// cell submitted with the defaults spelled out.
func (s Sampling) normalized() Sampling {
	if s.Period == 0 {
		s.Period = 20_000
	}
	if s.IntervalLen == 0 {
		s.IntervalLen = 1_000
	}
	if s.WarmupLen == 0 {
		s.WarmupLen = 1_000
	}
	//simlint:ignore floatcmp -- exact zero means "unset", selects the default
	if s.Confidence == 0 {
		s.Confidence = 0.95
	}
	return s
}

// HashPrograms returns the content hash of a resolved workload: every
// instruction, the initialized data image (sorted by address), and the
// entry point of every program in the mix.  Two workloads with the
// same name but different generated code hash differently, so a store
// shared across simulator versions can never serve a stale workload's
// results.
func HashPrograms(progs []*program.Program) string {
	h := sha256.New()
	for _, p := range progs {
		fmt.Fprintf(h, "program %s entry=%#x code=%d\n", p.Name, p.Entry, len(p.Code))
		for i, in := range p.Code {
			fmt.Fprintf(h, "%d %+v\n", i, in)
		}
		addrs := make([]uint64, 0, len(p.Data))
		//simlint:ignore determinism -- keys are sorted immediately below
		for a := range p.Data {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			fmt.Fprintf(h, "data %#x %#x\n", a, p.Data[a])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CellKey derives the content address of one simulation cell: the
// SHA-256 of a canonical rendering of machine config, feature knobs,
// workload content hash, instruction budget, and (for sampled cells)
// the normalized sampling schedule including the confidence level.
// Detailed and sampled cells of the same configuration always get
// distinct keys (samp == nil vs. non-nil).
func CellKey(m config.Machine, f config.Features, workloadHash string, insts uint64, samp *Sampling) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|machine=%+v|features=%+v|workload=%s|insts=%d",
		keySchema, m, f, workloadHash, insts)
	if samp != nil {
		n := samp.normalized()
		fmt.Fprintf(&b, "|sampled=%d-%d-%d|confidence=%g",
			n.Period, n.IntervalLen, n.WarmupLen, n.Confidence)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
