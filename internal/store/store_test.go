package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"recyclesim/internal/config"
	"recyclesim/internal/obs/trace"
	"recyclesim/internal/stats"
	"recyclesim/internal/workload"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testKey(t *testing.T, mutate func(*config.Machine, *config.Features, *uint64, **Sampling)) string {
	t.Helper()
	m := config.Big216()
	f := config.RECRSRU
	insts := uint64(20_000)
	var samp *Sampling
	if mutate != nil {
		mutate(&m, &f, &insts, &samp)
	}
	progs, err := workload.MixPrograms([]string{"compress"})
	if err != nil {
		t.Fatal(err)
	}
	return CellKey(m, f, HashPrograms(progs), insts, samp)
}

// TestCellKeyDistinctAcrossIdentity: every identity axis — machine,
// features, workload, budget, detailed vs. sampled, schedule, and
// confidence — must produce a distinct key.
func TestCellKeyDistinctAcrossIdentity(t *testing.T) {
	variants := map[string]string{
		"base": testKey(t, nil),
		"other machine": testKey(t, func(m *config.Machine, _ *config.Features, _ *uint64, _ **Sampling) {
			*m = config.Small18()
		}),
		"other features": testKey(t, func(_ *config.Machine, f *config.Features, _ *uint64, _ **Sampling) {
			*f = config.SMT
		}),
		"other budget": testKey(t, func(_ *config.Machine, _ *config.Features, insts *uint64, _ **Sampling) {
			*insts = 40_000
		}),
		"sampled default": testKey(t, func(_ *config.Machine, _ *config.Features, _ *uint64, samp **Sampling) {
			*samp = &Sampling{}
		}),
		"sampled other schedule": testKey(t, func(_ *config.Machine, _ *config.Features, _ *uint64, samp **Sampling) {
			*samp = &Sampling{Period: 40_000}
		}),
		"sampled 99% confidence": testKey(t, func(_ *config.Machine, _ *config.Features, _ *uint64, samp **Sampling) {
			*samp = &Sampling{Confidence: 0.99}
		}),
	}
	seen := map[string]string{}
	for name, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s share key %s", name, prev, key)
		}
		seen[key] = name
	}

	// Workload content reaches the key: a different benchmark differs.
	progs, err := workload.MixPrograms([]string{"li"})
	if err != nil {
		t.Fatal(err)
	}
	other := CellKey(config.Big216(), config.RECRSRU, HashPrograms(progs), 20_000, nil)
	if other == variants["base"] {
		t.Error("different workloads share a key")
	}
}

// TestCellKeyNormalizesSamplingDefaults: a zero (default) schedule and
// the same schedule spelled out explicitly address the same record —
// including the 0.95 default confidence.
func TestCellKeyNormalizesSamplingDefaults(t *testing.T) {
	zero := testKey(t, func(_ *config.Machine, _ *config.Features, _ *uint64, samp **Sampling) {
		*samp = &Sampling{}
	})
	explicit := testKey(t, func(_ *config.Machine, _ *config.Features, _ *uint64, samp **Sampling) {
		*samp = &Sampling{Period: 20_000, IntervalLen: 1_000, WarmupLen: 1_000, Confidence: 0.95}
	})
	if zero != explicit {
		t.Errorf("default-equivalent schedules keyed apart:\n %s\n %s", zero, explicit)
	}
}

// TestHashProgramsDeterministic: the workload hash is stable across
// calls (the data image is a map; the hash must sort it).
func TestHashProgramsDeterministic(t *testing.T) {
	progs, err := workload.MixPrograms([]string{"su2cor", "compress"})
	if err != nil {
		t.Fatal(err)
	}
	h := HashPrograms(progs)
	for i := 0; i < 10; i++ {
		progs2, _ := workload.MixPrograms([]string{"su2cor", "compress"})
		if h2 := HashPrograms(progs2); h2 != h {
			t.Fatalf("hash unstable: %s vs %s", h, h2)
		}
	}
}

// TestPutGetRoundTrip: a record written is read back byte-equal
// (JSON-level) and DeepEqual, from a fresh Store over the same dir.
func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, nil)
	want := &Record{Stats: &stats.Sim{Cycles: 123, Committed: 456, PerProgram: []uint64{456}}}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir) // durability: a fresh handle sees the record
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok {
		t.Fatal("record lost across reopen")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
	a, _ := json.Marshal(got.Stats)
	b, _ := json.Marshal(want.Stats)
	if string(a) != string(b) {
		t.Errorf("stats not byte-identical: %s vs %s", a, b)
	}
	if c := s2.Counters(); c.DiskHits != 0 {
		// Get alone does not count as a GetOrCompute hit.
		t.Errorf("counters %+v after bare Get", c)
	}
}

// TestGetRefusesCorruptRecords: truncated JSON, a record echoing the
// wrong key, a foreign codec version, and an empty payload are all
// misses, and GetOrCompute recomputes over them.
func TestGetRefusesCorruptRecords(t *testing.T) {
	key := testKey(t, nil)
	cases := []struct {
		name string
		data string
	}{
		{"truncated", `{"v":1,"key":"` + key + `","stats":{"Cyc`},
		{"wrong key", `{"v":1,"key":"0000","stats":{"Cycles":1}}`},
		{"foreign version", `{"v":999,"key":"` + key + `","stats":{"Cycles":1}}`},
		{"no payload", `{"v":1,"key":"` + key + `"}`},
		{"empty file", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testStore(t)
			path := s.path(key)
			os.MkdirAll(filepath.Dir(path), 0o755)
			os.WriteFile(path, []byte(tc.data), 0o644)
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt record served")
			}
			if c := s.Counters(); c.Corrupt == 0 {
				t.Error("corruption not counted")
			}

			// Recompute overwrites the damage.
			want := &Record{Stats: &stats.Sim{Cycles: 7}}
			rec, cached, err := s.GetOrCompute(key, func() (*Record, error) { return want, nil })
			if err != nil || cached || rec.Stats.Cycles != 7 {
				t.Fatalf("recompute: rec=%+v cached=%v err=%v", rec, cached, err)
			}
			if got, ok := s.Get(key); !ok || got.Stats.Cycles != 7 {
				t.Error("recomputed record not persisted over the corrupt one")
			}
		})
	}
}

// TestGetOrComputeSingleFlight: N concurrent requests for one missing
// key run compute exactly once; everyone gets the same record, and the
// counters account for every request.
func TestGetOrComputeSingleFlight(t *testing.T) {
	s := testStore(t)
	key := testKey(t, nil)
	const n = 16
	gate := make(chan struct{})
	var computes int
	var start, finish sync.WaitGroup
	recs := make([]*Record, n)
	start.Add(n)
	finish.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer finish.Done()
			start.Done()
			rec, _, err := s.GetOrCompute(key, func() (*Record, error) {
				computes++ // data-race-free only if single-flight holds
				<-gate
				return &Record{Stats: &stats.Sim{Cycles: 42}}, nil
			})
			if err != nil {
				t.Errorf("GetOrCompute: %v", err)
			}
			recs[i] = rec
		}(i)
	}
	start.Wait()
	close(gate)
	finish.Wait()
	if computes != 1 {
		t.Errorf("compute ran %d times, want 1", computes)
	}
	c := s.Counters()
	if c.Computes != 1 {
		t.Errorf("Computes = %d, want 1", c.Computes)
	}
	if c.DiskHits+c.FlightShares != n-1 {
		t.Errorf("hits %d + shares %d != %d", c.DiskHits, c.FlightShares, n-1)
	}
	for i, rec := range recs {
		if rec == nil || rec.Stats.Cycles != 42 {
			t.Errorf("caller %d got %+v", i, rec)
		}
	}
}

// TestGetOrComputeErrorPropagates: a failed compute reaches every
// concurrent waiter and leaves no record on disk, so a later call
// retries.
func TestGetOrComputeErrorPropagates(t *testing.T) {
	s := testStore(t)
	key := testKey(t, nil)
	boom := fmt.Errorf("cell exploded")
	if _, _, err := s.GetOrCompute(key, func() (*Record, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if _, ok := s.Get(key); ok {
		t.Error("failed compute left a record")
	}
	rec, cached, err := s.GetOrCompute(key, func() (*Record, error) {
		return &Record{Stats: &stats.Sim{Cycles: 1}}, nil
	})
	if err != nil || cached || rec.Stats.Cycles != 1 {
		t.Errorf("retry after failure: rec=%+v cached=%v err=%v", rec, cached, err)
	}
}

// TestGetOrComputeDiskHitAfterCompute: the second request for a key
// lands as a disk hit (cached = true) without recomputing.
func TestGetOrComputeDiskHitAfterCompute(t *testing.T) {
	s := testStore(t)
	key := testKey(t, nil)
	compute := func() (*Record, error) { return &Record{Stats: &stats.Sim{Cycles: 9}}, nil }
	if _, cached, err := s.GetOrCompute(key, compute); err != nil || cached {
		t.Fatalf("first call: cached=%v err=%v", cached, err)
	}
	rec, cached, err := s.GetOrCompute(key, func() (*Record, error) {
		t.Error("second call recomputed")
		return nil, nil
	})
	if err != nil || !cached || rec.Stats.Cycles != 9 {
		t.Fatalf("second call: rec=%+v cached=%v err=%v", rec, cached, err)
	}
	if c := s.Counters(); c.DiskHits != 1 || c.Computes != 1 {
		t.Errorf("counters %+v", c)
	}
}

// TestOpenRejectsEmptyDir: the empty string is a configuration error,
// not a store in the current directory.
func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

// spanNames projects a trace onto its span-name sequence (allocation
// order) for the phase-attribution assertions below.
func spanNames(tr *trace.Trace) []string {
	var out []string
	for _, sp := range tr.Spans() {
		out = append(out, sp.Name)
	}
	return out
}

// TestTracedComputePath: a miss records lookup (miss), the compute
// body (handed its own span ctx for per-attempt children), and the
// put, all under the caller's parent span.
func TestTracedComputePath(t *testing.T) {
	s := testStore(t)
	key := testKey(t, nil)
	tr := trace.New(1, 32)
	cell := tr.Root("cell")
	_, cached, err := s.GetOrComputeTraced(key, cell, func(cs trace.Ctx) (*Record, error) {
		cs.Start("attempt").Uint("attempt", 0).End()
		return &Record{Stats: &stats.Sim{Cycles: 3}}, nil
	})
	if err != nil || cached {
		t.Fatalf("cached=%v err=%v", cached, err)
	}
	cell.End()
	// First lookup misses, then the flight leader re-checks the disk
	// before computing: two lookup spans, the second marked recheck.
	want := []string{"cell", "lookup", "lookup", "compute", "attempt", "put"}
	if got := spanNames(tr); !reflect.DeepEqual(got, want) {
		t.Errorf("span sequence %v, want %v", got, want)
	}
	spans := tr.Spans()
	if _, ok := spans[1].Attr("hit"); ok {
		t.Error("miss lookup carries a hit attribute")
	}
	if a, ok := spans[2].Attr("recheck"); !ok || a.U != 1 {
		t.Errorf("second lookup recheck attr = %+v, %v", a, ok)
	}
	if spans[4].Parent != spans[3].ID {
		t.Error("attempt span not parented under compute")
	}

	// The follow-up request is a disk hit with exactly one lookup span.
	tr2 := trace.New(2, 32)
	cell2 := tr2.Root("cell")
	_, cached, err = s.GetOrComputeTraced(key, cell2, func(trace.Ctx) (*Record, error) {
		t.Error("hit path recomputed")
		return nil, nil
	})
	if err != nil || !cached {
		t.Fatalf("cached=%v err=%v", cached, err)
	}
	if got := spanNames(tr2); !reflect.DeepEqual(got, []string{"cell", "lookup"}) {
		t.Errorf("hit span sequence %v", got)
	}
	if a, ok := tr2.Spans()[1].Attr("hit"); !ok || a.U != 1 {
		t.Errorf("hit lookup attr = %+v, %v", a, ok)
	}
}

// TestTracedFlightShare: a caller blocked on another's computation
// records a flight-wait span instead of compute/put.
func TestTracedFlightShare(t *testing.T) {
	s := testStore(t)
	key := testKey(t, nil)
	gate := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.GetOrCompute(key, func() (*Record, error) {
			close(entered)
			<-gate
			return &Record{Stats: &stats.Sim{Cycles: 1}}, nil
		})
	}()
	<-entered
	tr := trace.New(3, 32)
	cell := tr.Root("cell")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, cached, err := s.GetOrComputeTraced(key, cell, nil); err != nil || !cached {
			t.Errorf("share: cached=%v err=%v", cached, err)
		}
	}()
	// Wait for the follower to record its flight-wait span, then let
	// the leader finish.
	for {
		if names := spanNames(tr); len(names) == 3 {
			break
		}
	}
	close(gate)
	<-done
	wg.Wait()
	if got := spanNames(tr); !reflect.DeepEqual(got, []string{"cell", "lookup", "flight-wait"}) {
		t.Errorf("span sequence %v", got)
	}
}

// TestTracedCorruptLookup: a refused record is attributed on the
// lookup span.
func TestTracedCorruptLookup(t *testing.T) {
	s := testStore(t)
	key := testKey(t, nil)
	if err := s.Put(key, &Record{Stats: &stats.Sim{Cycles: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr := trace.New(4, 32)
	_, cached, err := s.GetOrComputeTraced(key, tr.Root("cell"), func(trace.Ctx) (*Record, error) {
		return &Record{Stats: &stats.Sim{Cycles: 2}}, nil
	})
	if err != nil || cached {
		t.Fatalf("cached=%v err=%v", cached, err)
	}
	if a, ok := tr.Spans()[1].Attr("corrupt"); !ok || a.U != 1 {
		t.Errorf("corrupt attr = %+v, %v (spans %v)", a, ok, spanNames(tr))
	}
}

// TestTracedHitPathAllocParity is the tentpole witness: with tracing
// disabled (the zero Ctx), the store hit path allocates exactly what
// the untraced GetOrCompute allocates — instrumentation is free when
// off.
func TestTracedHitPathAllocParity(t *testing.T) {
	s := testStore(t)
	key := testKey(t, nil)
	if _, _, err := s.GetOrCompute(key, func() (*Record, error) {
		return &Record{Stats: &stats.Sim{Cycles: 7}}, nil
	}); err != nil {
		t.Fatal(err)
	}
	nop := func() (*Record, error) { return nil, nil }
	plain := testing.AllocsPerRun(200, func() {
		if _, cached, _ := s.GetOrCompute(key, nop); !cached {
			t.Fatal("miss on warmed key")
		}
	})
	traced := testing.AllocsPerRun(200, func() {
		if _, cached, _ := s.GetOrComputeTraced(key, trace.Ctx{}, nil); !cached {
			t.Fatal("miss on warmed key")
		}
	})
	if traced > plain {
		t.Errorf("disabled tracing costs %.1f allocs/hit vs %.1f untraced", traced, plain)
	}
}
