package core

import (
	"testing"

	"recyclesim/internal/config"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

func mustRun(t *testing.T, mach config.Machine, feat config.Features, names []string, insts uint64) *Core {
	t.Helper()
	progs, err := workload.MixPrograms(names)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(mach, feat, progs)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(insts, 40*insts)
	return c
}

// The feature ladder must behave as documented: SMT never forks, TME
// forks but never recycles, REC recycles but never reuses/respawns, and
// the full architecture does all three.
func TestFeatureLadder(t *testing.T) {
	mach := config.Big216()
	w := []string{"compress"}

	smt := mustRun(t, mach, config.SMT, w, 50_000).Stats
	if smt.Forks != 0 || smt.Recycled != 0 || smt.Reused != 0 {
		t.Errorf("SMT did speculative work: %+v", smt)
	}

	tme := mustRun(t, mach, config.TME, w, 50_000).Stats
	if tme.Forks == 0 {
		t.Error("TME never forked")
	}
	if tme.Recycled != 0 || tme.Merges != 0 {
		t.Error("TME recycled without the feature")
	}
	if tme.CoveredMiss == 0 {
		t.Error("TME covered no mispredicts")
	}

	rec := mustRun(t, mach, config.REC, w, 50_000).Stats
	if rec.Recycled == 0 || rec.Merges == 0 {
		t.Error("REC never recycled")
	}
	if rec.Reused != 0 || rec.Respawns != 0 {
		t.Error("REC reused/respawned without the features")
	}

	ru := mustRun(t, mach, config.RECRU, w, 50_000).Stats
	if ru.Reused == 0 {
		t.Error("REC/RU never reused")
	}

	rs := mustRun(t, mach, config.RECRS, w, 50_000).Stats
	if rs.Respawns == 0 {
		t.Error("REC/RS never respawned")
	}

	full := mustRun(t, mach, config.RECRSRU, w, 100_000).Stats
	if full.Reused == 0 || full.Respawns == 0 || full.BackMerges == 0 {
		t.Errorf("full architecture missing activity: reused=%d respawns=%d back=%d",
			full.Reused, full.Respawns, full.BackMerges)
	}
}

// TME must cover a meaningful fraction of mispredicts on a
// low-prediction-accuracy workload, and covering them must help IPC.
func TestTMECoversAndHelps(t *testing.T) {
	mach := config.Big216()
	smt := mustRun(t, mach, config.SMT, []string{"go"}, 80_000).Stats
	tme := mustRun(t, mach, config.TME, []string{"go"}, 80_000).Stats
	if tme.BranchMissCoverage() < 25 {
		t.Errorf("coverage = %.1f%%", tme.BranchMissCoverage())
	}
	if tme.IPC() <= smt.IPC() {
		t.Errorf("TME (%.3f) should beat SMT (%.3f) on go", tme.IPC(), smt.IPC())
	}
}

// Recycling must not *hurt* a predictable program (the paper's vortex
// and FP results), and the full architecture must beat TME on the
// benchmark average.
func TestRecyclingDoesNoHarmOnPredictable(t *testing.T) {
	mach := config.Big216()
	for _, w := range []string{"vortex", "tomcatv"} {
		smt := mustRun(t, mach, config.SMT, []string{w}, 60_000).Stats
		rec := mustRun(t, mach, config.RECRSRU, []string{w}, 60_000).Stats
		if rec.IPC() < smt.IPC()*0.97 {
			t.Errorf("%s: REC/RS/RU %.3f vs SMT %.3f (>3%% degradation)", w, rec.IPC(), smt.IPC())
		}
	}
}

// The headline single-program result: REC/RS/RU beats TME on average
// across the branchy integer benchmarks.
func TestRecyclingBeatsTMEOnAverage(t *testing.T) {
	mach := config.Big216()
	benches := []string{"compress", "gcc", "go", "li", "perl"}
	var tmeSum, recSum float64
	for _, w := range benches {
		tmeSum += mustRun(t, mach, config.TME, []string{w}, 60_000).Stats.IPC()
		recSum += mustRun(t, mach, config.RECRSRU, []string{w}, 60_000).Stats.IPC()
	}
	if recSum <= tmeSum {
		t.Errorf("REC/RS/RU sum %.3f should beat TME sum %.3f", recSum, tmeSum)
	}
}

// Register conservation: after an arbitrary run, every physical
// register must be exactly free or referenced.
func TestRegisterConservationAfterRun(t *testing.T) {
	for _, preset := range []string{"SMT", "TME", "REC/RS/RU"} {
		feat, _ := config.PresetByName(preset)
		c := mustRun(t, config.Big216(), feat, []string{"go", "li"}, 60_000)
		if err := c.rf.CheckConservation(); err != nil {
			t.Errorf("%s: %v", preset, err)
		}
	}
}

// Multiprogram fairness: with identical-length budgets no program
// should starve (each gets a meaningful share of commits).
func TestMultiprogramFairness(t *testing.T) {
	c := mustRun(t, config.Big216(), config.RECRSRU,
		[]string{"compress", "perl", "vortex", "gcc"}, 200_000)
	for i, n := range c.Stats.PerProgram {
		if n < 200_000/4/4 {
			t.Errorf("program %d committed only %d", i, n)
		}
	}
}

// Backward-branch recycling must dominate in the 4-program case where
// spare contexts are scarce (Table 1's trend: 44% -> 80% back merges).
func TestBackMergeTrend(t *testing.T) {
	one := mustRun(t, config.Big216(), config.RECRSRU, []string{"compress"}, 60_000).Stats
	four := mustRun(t, config.Big216(), config.RECRSRU,
		[]string{"compress", "gcc", "go", "li"}, 120_000).Stats
	if four.PctBackMerges() <= one.PctBackMerges() {
		t.Errorf("back-merge share should rise with program count: %.1f%% -> %.1f%%",
			one.PctBackMerges(), four.PctBackMerges())
	}
}

// Alternate-path policies obey their contracts: stop-8 fetches less
// down alternate paths than nostop-32.
func TestAltPolicyContracts(t *testing.T) {
	base := config.RECRSRU
	base.AltPolicy = config.AltStop
	base.AltLimit = 8
	stop8 := mustRun(t, config.Big216(), base, []string{"go"}, 60_000).Stats

	base.AltPolicy = config.AltNoStop
	base.AltLimit = 32
	nostop32 := mustRun(t, config.Big216(), base, []string{"go"}, 60_000).Stats

	if stop8.Fetched >= nostop32.Fetched {
		t.Errorf("stop-8 fetched %d, nostop-32 fetched %d", stop8.Fetched, nostop32.Fetched)
	}
}

// Construction errors.
func TestNewRejectsBadInputs(t *testing.T) {
	p, _ := workload.ByName("perl")
	if _, err := New(config.Big216(), config.SMT, nil); err == nil {
		t.Error("no programs accepted")
	}
	many := make([]*program.Program, 9)
	for i := range many {
		many[i] = p
	}
	if _, err := New(config.Big216(), config.SMT, many); err == nil {
		t.Error("too many programs accepted")
	}
	bad := config.TME
	bad.AltLimit = 0
	if _, err := New(config.Big216(), bad, []*program.Program{p}); err == nil {
		t.Error("TME without AltLimit accepted")
	}
	m := config.Big216()
	m.Contexts = 0
	if _, err := New(m, config.SMT, []*program.Program{p}); err == nil {
		t.Error("invalid machine accepted")
	}
}

// The §5.3 claim, miniaturized: recycling helps the fetch-starved
// big.1.8 machine more than it helps the fetch-rich big.2.16 at the
// same multiprogram load.
func TestFetchStarvationSensitivity(t *testing.T) {
	mix := []string{"compress", "gcc", "go", "li"}
	gain := func(m config.Machine) float64 {
		tme := mustRun(t, m, config.TME, mix, 150_000).Stats.IPC()
		rec := mustRun(t, m, config.RECRSRU, mix, 150_000).Stats.IPC()
		return rec / tme
	}
	g18 := gain(config.Big18())
	g216 := gain(config.Big216())
	if g18 <= g216 {
		t.Errorf("big.1.8 gain %.3f should exceed big.2.16 gain %.3f", g18, g216)
	}
	if g18 < 1.05 {
		t.Errorf("big.1.8 multiprogram gain too small: %.3f", g18)
	}
}
