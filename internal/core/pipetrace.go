package core

import (
	"recyclesim/internal/invariant"
	"recyclesim/internal/isa"
	"recyclesim/internal/obs"
	"recyclesim/internal/obs/pipetrace"
)

// SetPipeTrace attaches (or, with nil, detaches) a pipetrace recorder.
// The recorder receives one stage mark per pipeline stage each traced
// instruction enters; attach it before the first cycle for a complete
// record.
func (c *Core) SetPipeTrace(r *pipetrace.Recorder) { c.ptrace = r }

// PipeTrace returns the attached pipetrace recorder, or nil.
func (c *Core) PipeTrace() *pipetrace.Recorder { return c.ptrace }

// pipeTrace records a lifecycle instant (fork, merge, respawn) on the
// pipetrace.  Call sites must still guard with `if c.ptrace != nil`
// (traceguard enforces it) so argument materialization costs nothing
// when tracing is off; the inner guard keeps the helper safe on its
// own.
func (c *Core) pipeTrace(stage obs.Stage, ctx int, pc, arg uint64) {
	if c.ptrace != nil {
		c.ptrace.Instant(c.cycle, stage, ctx, pc, arg)
	}
}

// needsExec reports whether an instruction occupies a functional unit
// at all: halts, nops, and unconditional direct jumps resolve entirely
// at dispatch (see dispatch's no-exec early-out) and legitimately
// commit with no issue or writeback stage.
func needsExec(in isa.Inst) bool {
	return !in.IsHalt() && in.Class() != isa.ClassNop && in.Op != isa.OpJ
}

// checkPipeTrace verifies, when a pipetrace recorder is attached, that
// every recorded stage timeline is a legal path through the pipeline
// DAG (rule "pipetrace"):
//
//   - every record renamed, and no stage precedes its predecessor
//     (fetch ≤ rename ≤ queue ≤ issue ≤ writeback, end after rename);
//   - recycled ⇔ no fetch stage (recycle injection bypasses
//     fetch/decode; everything else enters through the fetch queue);
//   - reused ⇒ recycled, and no queue/issue/writeback stage (the reuse
//     bypass adopts the previous result at rename);
//   - committed ⇒ a retire cycle and not squashed; squashed ⇒ a squash
//     cycle and not committed (and vice versa);
//   - committed instructions that execute (not reused, not a no-exec
//     class) have issue and writeback stages.
func (c *Core) checkPipeTrace(r *invariant.Report) {
	if c.ptrace != nil {
		recs := c.ptrace.Records()
		for i := range recs {
			rec := &recs[i]
			bad := func(format string, args ...any) {
				prefixed := append([]any{rec.ID, rec.Ctx, rec.Seq}, args...)
				r.Failf("pipetrace", "record %d (ctx=%d seq=%d): "+format, prefixed...)
			}
			if rec.Rename == 0 {
				bad("no rename stage")
				continue
			}
			if rec.Recycled && rec.Fetch != 0 {
				bad("recycled instruction has a fetch stage at cycle %d", rec.Fetch)
			}
			if !rec.Recycled && rec.Fetch == 0 {
				bad("fetched instruction missing its fetch stage")
			}
			if rec.Fetch > rec.Rename {
				bad("fetch at %d after rename at %d", rec.Fetch, rec.Rename)
			}
			if rec.Reused {
				if !rec.Recycled {
					bad("reused outside the recycle datapath")
				}
				if rec.Queue != 0 || rec.Issue != 0 || rec.Writeback != 0 {
					bad("reused instruction entered queue/issue/writeback (%d/%d/%d)",
						rec.Queue, rec.Issue, rec.Writeback)
				}
			}
			if rec.Queue != 0 && rec.Queue < rec.Rename {
				bad("queued at %d before rename at %d", rec.Queue, rec.Rename)
			}
			if rec.Issue != 0 && (rec.Queue == 0 || rec.Issue < rec.Queue) {
				bad("issued at %d without a preceding queue stage (queue=%d)", rec.Issue, rec.Queue)
			}
			if rec.Writeback != 0 && (rec.Issue == 0 || rec.Writeback < rec.Issue) {
				bad("writeback at %d without a preceding issue stage (issue=%d)", rec.Writeback, rec.Issue)
			}
			if rec.Committed != (rec.Retire != 0) {
				bad("committed=%v but retire cycle %d", rec.Committed, rec.Retire)
			}
			if rec.Squashed != (rec.Squash != 0) {
				bad("squashed=%v but squash cycle %d", rec.Squashed, rec.Squash)
			}
			if rec.Committed && rec.Squashed {
				bad("both committed and squashed")
			}
			if rec.Retire != 0 && rec.Retire < rec.Rename {
				bad("retired at %d before rename at %d", rec.Retire, rec.Rename)
			}
			if rec.Squash != 0 && rec.Squash < rec.Rename {
				bad("squashed at %d before rename at %d", rec.Squash, rec.Rename)
			}
			if rec.Committed && !rec.Reused && needsExec(rec.Inst) && rec.Writeback == 0 {
				bad("committed without executing (op %v needs a functional unit)", rec.Inst.Op)
			}
		}
	}
}
