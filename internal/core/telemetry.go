package core

import "recyclesim/internal/obs"

// attributeSlots closes one cycle's rename slot-cycle accounting:
// every one of the machine's RenameWidth rename slots is charged to
// exactly one obs.Cause, so Σ SlotCycles == Cycles × RenameWidth holds
// at the end of every cycle (checkTelemetry enforces it).
//
// The attribution rules, in priority order:
//
//   - slots that renamed a fetched instruction → CauseBusyFetch;
//   - slots that renamed a recycle-stream instruction → CauseRecycle;
//   - remaining slots, when rename hit a structural hazard this cycle
//     → the first hazard recorded (free list, active list, IQ);
//   - remaining slots, when a fetchable thread is waiting out an
//     instruction-cache fill → CauseICacheMiss;
//   - otherwise → CauseIdle (front-end latency, drained programs,
//     empty fetch queues).
//
// The per-cycle inputs (slotFetched, slotRecycled, slotStall) are
// recorded by rename and reset here.  When Obs.Hists is set, the
// active-list occupancy histogram also samples here, once per cycle.
func (c *Core) attributeSlots() {
	m := c.Obs
	m.SlotCycles[obs.CauseBusyFetch] += uint64(c.slotFetched)
	m.SlotCycles[obs.CauseRecycle] += uint64(c.slotRecycled)
	if unused := c.mach.RenameWidth - c.slotFetched - c.slotRecycled; unused > 0 {
		cause := c.slotStall
		if cause == obs.CauseNone {
			if c.fetchBlockedOnICache() {
				cause = obs.CauseICacheMiss
			} else {
				cause = obs.CauseIdle
			}
		}
		m.SlotCycles[cause] += uint64(unused)
	}
	c.slotFetched, c.slotRecycled, c.slotStall = 0, 0, obs.CauseNone

	if m.Hists {
		var occ uint64
		for _, t := range c.ctxs {
			occ += uint64(t.al.InFlight())
		}
		m.ALOcc.Observe(occ)
	}
}

// noteStall records a rename structural stall: the cycle's slot
// attribution keeps the first cause hit (first-set-wins matches the
// in-order rename stage, where the first blocked instruction blocks
// everything behind it), and the flight recorder gets a stall event.
func (c *Core) noteStall(t *Context, cause obs.Cause, pc uint64) {
	if c.slotStall == obs.CauseNone {
		c.slotStall = cause
	}
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageStall,
			Ctx: int16(t.id), Cause: cause, PC: pc})
	}
}

// fetchBlockedOnICache reports whether any context that would otherwise
// be fetching is waiting out an instruction-cache fill this cycle (the
// I-cache-miss attribution predicate).
func (c *Core) fetchBlockedOnICache() bool {
	for _, t := range c.ctxs {
		if t.fetchStallUntil <= c.cycle {
			continue
		}
		switch t.state {
		case CtxActive, CtxDraining:
		default:
			continue
		}
		if t.part.done || t.fetchHalted || t.altCapped {
			continue
		}
		return true
	}
	return false
}
