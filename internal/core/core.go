// Package core implements the cycle-level simulator of the paper's
// machine: a wide simultaneous multithreading (SMT) processor extended
// with threaded multipath execution (TME) and the instruction
// recycling, reuse, and re-spawning mechanisms of §3.
//
// The simulator is execution-driven: physical registers carry real
// values, wrong paths and alternate paths genuinely execute, and the
// committed instruction stream of every configuration is expected to
// match the golden in-order emulator exactly (the test suite checks
// this).  The model is single-threaded and fully deterministic.
package core

import (
	"fmt"

	"recyclesim/internal/alist"
	"recyclesim/internal/bpred"
	"recyclesim/internal/cache"
	"recyclesim/internal/confidence"
	"recyclesim/internal/config"
	"recyclesim/internal/fu"
	"recyclesim/internal/iq"
	"recyclesim/internal/isa"
	"recyclesim/internal/obs"
	"recyclesim/internal/obs/pipetrace"
	"recyclesim/internal/program"
	"recyclesim/internal/recycle"
	"recyclesim/internal/regfile"
	"recyclesim/internal/stats"
	"recyclesim/internal/wheel"
)

const (
	fetchQueueCap   = 32
	redirectPenalty = 2  // extra front-end repair cycles after a mispredict
	mdbCapacity     = 64 // Memory Disambiguation Buffer entries

	// wheelHorizon bounds the completion wheel's slot ring.  The worst
	// execution latency is a divide (20) plus a full miss chain to
	// memory (~90 with bank skew); 256 leaves headroom, and the wheel's
	// far list keeps anything beyond it correct anyway.
	wheelHorizon = 256
)

// CommitInfo describes one committed instruction; tests use the hook to
// co-simulate against the golden emulator.
type CommitInfo struct {
	Program int
	Ctx     int
	PC      uint64
	Inst    isa.Inst
	Result  uint64
	Addr    uint64
	Taken   bool
	Reused  bool
}

// Core is the simulated processor.
type Core struct {
	mach config.Machine
	feat config.Features

	cycle uint64

	rf      *regfile.File
	pred    *bpred.Predictor
	conf    *confidence.Estimator
	mem     *cache.Hierarchy
	iqInt   *iq.Queue
	iqFP    *iq.Queue
	fus     *fu.Pool
	written *recycle.WrittenBits
	mdb     *recycle.MDB

	ctxs  []*Context
	parts []*Partition
	progs []*loadedProgram

	// In-flight executions awaiting completion, filed on a completion
	// wheel keyed by the cycle their result arrives.  Deletion is lazy:
	// squashes leave stale items behind, and complete() revalidates
	// each drained item against the live active list before acting.
	exec *wheel.Wheel

	// Stores whose addresses have been generated but whose data has
	// not arrived yet (second issue phase).
	pendingSt []*alist.Entry

	rrCommit int // round-robin pointer for commit bandwidth

	// Per-cycle scratch buffers, reused so the steady-state cycle loop
	// does not allocate: due collects the completions drained from the
	// wheel; cands holds the fetch/rename thread orderings.
	due   []*alist.Entry
	cands []ctxCand

	// invariantEvery, when non-zero, runs CheckInvariants every N
	// cycles (resolved from Features.InvariantEvery or the
	// siminvariant build-tag default at construction).
	invariantEvery uint64

	// watchdogCycles, when non-zero, is the forward-progress window:
	// Run fails with a *LivelockError after this many consecutive
	// cycles without a commit (resolved from Features.WatchdogCycles
	// at construction; config.WatchdogOff disables it).
	watchdogCycles uint64

	// poll, when non-nil, is consulted every pollEvery cycles by Run; a
	// non-nil return stops the run with that error and partial
	// statistics.  The cadence is counted in simulated cycles, so an
	// unfired poll cannot perturb determinism.
	poll      func() error
	pollEvery uint64

	Stats *stats.Sim

	// Obs accumulates the run's telemetry: the rename slot-cycle
	// attribution (always on) and, when Obs.Hists is set before the
	// first cycle, the occupancy/stream/fork histograms.
	Obs *obs.Metrics

	// ring, when non-nil, records a typed event per pipeline action
	// (the flight recorder).  Every call site must be guarded with
	// `if c.ring != nil` so composing the Event costs nothing when the
	// recorder is detached — the cycle loop is required to be
	// allocation-free in steady state, and the traceguard analyzer
	// enforces the guard.
	ring *obs.Ring

	// ptrace, when non-nil, records per-instruction stage timelines
	// (the pipetrace recorder).  Same hot-path contract as ring: every
	// call site must be guarded with `if c.ptrace != nil` (traceguard
	// enforces it, for both the Core.pipeTrace helper and direct
	// pipetrace.Recorder method calls), and the recorder itself never
	// allocates while recording.
	ptrace *pipetrace.Recorder

	// Per-cycle rename slot attribution, reset by attributeSlots:
	// rename counts the slots that accepted fetched and recycled
	// instructions and records the first structural-stall cause hit.
	slotFetched  int
	slotRecycled int
	slotStall    obs.Cause

	// CommitHook, when set, observes every committed instruction.
	CommitHook func(CommitInfo)

	haltedPrograms int
}

// New builds a core running the given programs (one partition each).
// The number of programs must divide the context count evenly enough
// that every program gets at least one context.
func New(mach config.Machine, feat config.Features, progs []*program.Program) (*Core, error) {
	return newCore(mach, feat, progs, nil)
}

// newCore is the shared constructor behind New and NewSeeded; seeds is
// nil (every program starts at its entry) or pre-validated to match
// progs element-wise, with nil entries meaning "fresh start".
func newCore(mach config.Machine, feat config.Features, progs []*program.Program, seeds []*ArchState) (*Core, error) {
	if err := mach.Validate(); err != nil {
		return nil, err
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("core: no programs")
	}
	if len(progs) > mach.Contexts {
		return nil, fmt.Errorf("core: %d programs exceed %d contexts", len(progs), mach.Contexts)
	}
	if err := feat.Validate(); err != nil {
		return nil, err
	}

	intRegs := isa.NumIntRegs*mach.Contexts + mach.ExtraRegs
	fpRegs := isa.NumFPRegs*mach.Contexts + mach.ExtraRegs

	c := &Core{
		mach:    mach,
		feat:    feat,
		rf:      regfile.New(intRegs, fpRegs),
		pred:    bpred.New(bpred.Default(mach.Contexts)),
		conf:    confidence.New(confidence.Default()),
		mem:     cache.NewHierarchy(cache.DefaultHierarchy(mach.CacheScale)),
		iqInt:   iq.New(mach.IQInt),
		iqFP:    iq.New(mach.IQFP),
		fus:     fu.New(fu.Config{IntUnits: mach.IntUnits, LSUnits: mach.LSUnits, FPUnits: mach.FPUnits}),
		written: recycle.NewWrittenBits(mach.Contexts),
		mdb:     recycle.NewMDB(mdbCapacity),
		exec:    wheel.New(wheelHorizon),
		Stats:   &stats.Sim{},
		Obs:     &obs.Metrics{},
	}
	c.pendingSt = make([]*alist.Entry, 0, mach.Contexts*4)
	c.due = make([]*alist.Entry, 0, 64)
	c.cands = make([]ctxCand, 0, mach.Contexts)
	c.invariantEvery = feat.InvariantEvery
	if c.invariantEvery == 0 {
		c.invariantEvery = defaultInvariantEvery
	}
	c.watchdogCycles = feat.WatchdogCycles
	if c.watchdogCycles == 0 {
		c.watchdogCycles = defaultWatchdogCycles
	} else if c.watchdogCycles == config.WatchdogOff {
		c.watchdogCycles = 0
	}

	for i := 0; i < mach.Contexts; i++ {
		c.ctxs = append(c.ctxs, newContext(i, mach.ActiveList))
	}

	// Partition contexts evenly among programs; leftovers go to the
	// first partitions.
	per := mach.Contexts / len(progs)
	extra := mach.Contexts % len(progs)
	next := 0
	for pi, p := range progs {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		var seed *ArchState
		if pi < len(seeds) {
			seed = seeds[pi]
		}
		lp := &loadedProgram{idx: pi, prog: p, mem: program.NewMemory(p)}
		if seed != nil && seed.Mem != nil {
			lp.mem = seed.Mem
		}
		c.progs = append(c.progs, lp)
		n := per
		if pi < extra {
			n++
		}
		part := &Partition{id: pi, prog: lp, primary: next}
		for k := 0; k < n; k++ {
			part.ctxIDs = append(part.ctxIDs, next)
			part.mask |= 1 << uint(next)
			c.ctxs[next].part = part
			next++
		}
		c.parts = append(c.parts, part)
		if seed != nil {
			c.startPrimary(c.ctxs[part.primary], seed.PC, &seed.Regs)
		} else {
			c.startPrimary(c.ctxs[part.primary], p.Entry, nil)
		}
	}
	c.Stats.PerProgram = make([]uint64, len(progs))
	return c, nil
}

// startPrimary initializes a context as a program's primary thread
// with an architectural register map: the given register values when
// regs is non-nil (a seeded mid-program start), else the fresh-start
// state of all zeros with the stack pointer at its base.
func (c *Core) startPrimary(t *Context, pc uint64, regs *[isa.NumRegs]uint64) {
	t.state = CtxActive
	t.isPrimary = true
	t.fetchPC = pc
	t.hasMap = true
	for l := 1; l < isa.NumRegs; l++ {
		r, ok := c.rf.Alloc(isa.Reg(l).IsFP())
		if !ok {
			panic("core: register file too small for architectural state")
		}
		v := uint64(0)
		switch {
		case regs != nil:
			v = regs[l]
		case l == int(isa.RegSP):
			v = program.StackBase
		}
		c.rf.SetValue(r, v)
		t.mapTab[l] = r
	}
}

// Cycle advances the machine one clock.  Stage order is reverse
// pipeline order so same-cycle effects flow naturally: results written
// back this cycle can wake instructions issuing this cycle, and
// redirects apply to the following fetch.
//
// The doc directive below marks this as the root of the steady-state
// allocation budget: the hotalloc analyzer verifies that Cycle and
// everything it transitively calls (outside nil-guarded telemetry and
// //recycle:coldpath failure handling) never allocates.
//
//recycle:hotpath
func (c *Core) Cycle() {
	c.cycle++
	c.fus.BeginCycle(c.cycle)
	c.commit()
	c.complete()
	c.issue()
	c.rename()
	c.fetch()
	c.attributeSlots()
	//simlint:ignore deadstat -- monotonic snapshot of the cycle counter, not an increment
	c.Stats.Cycles = c.cycle
	if c.invariantEvery != 0 && c.cycle%c.invariantEvery == 0 {
		c.CheckInvariants().MustOK(c.dumpState)
	}
}

// Run simulates until maxCommits instructions have committed in total,
// every program has halted, or maxCycles elapses.  It returns the
// accumulated statistics; the statistics are valid (partial) even when
// the error is non-nil.
//
// Two fault paths can cut the run short.  The forward-progress
// watchdog (Features.WatchdogCycles) returns a *LivelockError when no
// instruction commits for a full window while programs are still live,
// so a model bug that livelocks a context fails fast with a diagnosis
// instead of silently burning cycles until maxCycles.  The poll hook
// (SetPoll) stops the run with the hook's error, the mechanism behind
// cooperative cancellation.  Both checks are counted in simulated
// cycles — no wall clock — and touch nothing on the per-instruction
// hot path, so a run they do not stop is byte-identical to one without
// them.
func (c *Core) Run(maxCommits, maxCycles uint64) (*stats.Sim, error) {
	lastCommitted := c.Stats.Committed
	lastProgress := c.cycle
	for c.Stats.Committed < maxCommits && c.cycle < maxCycles &&
		c.haltedPrograms < len(c.progs) {
		c.Cycle()
		if c.watchdogCycles != 0 {
			if c.Stats.Committed != lastCommitted {
				lastCommitted = c.Stats.Committed
				lastProgress = c.cycle
			} else if c.cycle-lastProgress >= c.watchdogCycles {
				return c.Stats, c.livelockError(c.cycle - lastProgress)
			}
		}
		if c.poll != nil && c.cycle%c.pollEvery == 0 {
			if err := c.poll(); err != nil {
				return c.Stats, err
			}
		}
	}
	return c.Stats, nil
}

// SetPoll installs a cancellation hook consulted every `every` cycles
// during Run (every <= 0 selects the default cadence).  Install before
// the run; passing nil detaches the hook.
func (c *Core) SetPoll(every uint64, poll func() error) {
	if every == 0 {
		every = defaultPollEvery
	}
	c.poll = poll
	c.pollEvery = every
}

// CycleCount returns the cycles simulated so far.
func (c *Core) CycleCount() uint64 { return c.cycle }

// Done reports whether all programs have halted.
func (c *Core) Done() bool { return c.haltedPrograms >= len(c.progs) }

// tagAddr disambiguates program address spaces in the shared caches and
// MDB; see TagAddr (in seed.go) for the scheme.
func (c *Core) tagAddr(progIdx int, addr uint64) uint64 {
	return TagAddr(progIdx, addr)
}

// entrySources returns the physical source registers for inst renamed
// in context t.
func (t *Context) entrySources(inst isa.Inst) (s1, s2 regfile.PhysReg) {
	s1, s2 = regfile.NoReg, regfile.NoReg
	switch inst.Op {
	case isa.OpNop, isa.OpHalt, isa.OpLi, isa.OpJ, isa.OpJal:
		return
	}
	s1 = t.mapOf(inst.Rs1)
	if inst.ReadsRs2() {
		s2 = t.mapOf(inst.Rs2)
	}
	return
}

// undoEntry rolls back one squashed active-list entry: the current map
// ref on the new mapping is released and the displaced mapping returns
// to the map table.
func (c *Core) undoEntry(t *Context, e *alist.Entry) {
	if e.Inst.WritesReg() && e.NewMap != regfile.NoReg {
		t.mapTab[e.Inst.Rd] = e.OldMap
		c.rf.Release(e.NewMap)
		// The squash stales this context's column for the register: if
		// the primary reuse-installed this entry's mapping (which
		// cleared the bit), the trace's view and the primary's mapping
		// no longer agree, so future reuse of this register from this
		// trace must be blocked.
		c.written.MarkWritten(e.Inst.Rd, 1<<uint(t.id))
	}
	if e.Reused && e.ReuseSrc >= 0 && e.ReuseSrc < len(c.ctxs) {
		if c.ctxs[e.ReuseSrc].outstandingReuse > 0 {
			c.ctxs[e.ReuseSrc].outstandingReuse--
		}
	}
	if c.ptrace != nil {
		c.ptrace.OnSquash(e.Trace, c.cycle)
	}
	c.Stats.Squashed++
}

// removeFromBack removes a squashed range from the instruction queues,
// the pending-store list and the store queue.  The completion wheel is
// left alone: its items are revalidated against the live active list
// when their slot drains, so squashed entries simply fall out then.
func (c *Core) removeFromBack(ctx int, fromSeq uint64) {
	match := func(e *alist.Entry) bool { return e.Ctx == ctx && e.Seq >= fromSeq }
	c.iqInt.RemoveIf(match)
	c.iqFP.RemoveIf(match)
	ps := c.pendingSt[:0]
	for _, e := range c.pendingSt {
		if !match(e) {
			ps = append(ps, e)
		}
	}
	for i := len(ps); i < len(c.pendingSt); i++ {
		c.pendingSt[i] = nil
	}
	c.pendingSt = ps

	c.ctxs[ctx].sq.dropFrom(fromSeq)
}

// SetRing attaches (or, with nil, detaches) a flight recorder.  The
// ring receives one typed event per pipeline action; attach it before
// the first cycle for a complete record.
func (c *Core) SetRing(r *obs.Ring) { c.ring = r }

// FlightRing returns the attached flight recorder, or nil.
func (c *Core) FlightRing() *obs.Ring { return c.ring }

// squashFrom removes every instruction in ctx with Seq >= seq, plus any
// child contexts forked from the squashed range (recursively).
func (c *Core) squashFrom(ctx int, seq uint64) {
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageSquash,
			Ctx: int16(ctx), Seq: seq, Arg: c.ctxs[ctx].al.TailSeq()})
	}
	t := c.ctxs[ctx]
	// Children forked off squashed branches die entirely.
	for _, cc := range c.ctxs {
		if cc.state != CtxIdle && cc != t && cc.parentCtx == ctx && cc.parentSeq >= seq {
			c.killContext(cc)
		}
	}
	t.al.SquashFrom(seq, func(e *alist.Entry) { c.undoEntry(t, e) })
	t.mp.DropFrom(seq)
	c.removeFromBack(ctx, seq)
	// Any in-progress recycle stream and queued fetches are stale.
	t.stream = nil
	t.fqClear()
	t.fetchHalted = false
}

// releaseMapRefs drops all register references held by the context's
// current map table.
func (c *Core) releaseMapRefs(t *Context) {
	if !t.hasMap {
		return
	}
	for l := 1; l < isa.NumRegs; l++ {
		if t.mapTab[l] != regfile.NoReg {
			c.rf.Release(t.mapTab[l])
			t.mapTab[l] = regfile.NoReg
		}
	}
	t.hasMap = false
}

// finishPath closes out a fork-path statistics record.
func (c *Core) finishPath(t *Context) {
	if !t.path.live {
		return
	}
	c.Stats.ForksDeleted++
	if c.Obs.Hists {
		c.Obs.ForkLife.Observe(c.cycle - t.path.spawnCycle)
	}
	if t.path.usedTME {
		c.Stats.ForksUsedTME++
	}
	if t.path.recycled {
		c.Stats.ForksRecycled++
		c.Stats.AltMergeTotal += uint64(t.path.merges)
	}
	if t.path.respawned {
		c.Stats.ForksRespawned++
	}
	t.path = forkPath{}
}

// killContext fully reclaims a context: every uncommitted entry is
// squashed, retained history dropped, and all register references
// (active list and map table) released.  The context returns to idle.
func (c *Core) killContext(t *Context) {
	if t.state == CtxIdle {
		return
	}
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageKill,
			Ctx: int16(t.id), Seq: t.parentSeq, PC: t.fetchPC, Arg: uint64(t.state)})
	}
	// Recursively kill this context's own children first.
	for _, cc := range c.ctxs {
		if cc != t && cc.state != CtxIdle && cc.parentCtx == t.id {
			c.killContext(cc)
		}
	}
	t.al.SquashAll(func(e *alist.Entry) { c.undoEntry(t, e) })
	c.removeFromBack(t.id, 0)
	c.releaseMapRefs(t)
	c.finishPath(t)
	t.al.Reset()
	t.mp.Invalidate()
	t.fqClear()
	t.sq.clear()
	t.stream = nil
	t.state = CtxIdle
	t.isPrimary = false
	t.parentCtx = -1
	t.fetchHalted = false
	t.altCapped = false
	t.resolved = false
	t.pathLen = 0
	t.outstandingReuse = 0
}
