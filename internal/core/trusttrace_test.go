package core

import (
	"testing"

	"recyclesim/internal/config"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

// The §3.4 "former method" (TrustTrace: recycled branches keep the
// trace's stored predictions) must remain architecturally correct —
// wrong trace directions are just mispredictions that recover through
// the normal squash path — and it must recycle at least as many
// instructions as the default stream-stopping method.
func TestTrustTraceCosim(t *testing.T) {
	feat := config.RECRSRU
	feat.TrustTrace = true
	for _, bench := range []string{"compress", "go", "perl"} {
		p, err := workload.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		cosim(t, config.Big216(), feat, []*program.Program{p}, 25_000)
	}
}

func TestTrustTraceRecyclesMore(t *testing.T) {
	p, _ := workload.ByName("compress")
	run := func(trust bool) *Core {
		feat := config.RECRSRU
		feat.TrustTrace = trust
		c, err := New(config.Big216(), feat, []*program.Program{p})
		if err != nil {
			t.Fatal(err)
		}
		c.Run(60_000, 3_000_000)
		return c
	}
	latter := run(false).Stats
	former := run(true).Stats
	if former.Recycled < latter.Recycled {
		t.Errorf("former method recycled %d < latter method %d",
			former.Recycled, latter.Recycled)
	}
}
