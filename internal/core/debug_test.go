package core

import (
	"testing"

	"recyclesim/internal/config"
	"recyclesim/internal/emu"
	"recyclesim/internal/obs"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

func newRefEmu(p *program.Program) *emu.Emulator { return emu.New(p) }

// TestDebugDivergence reruns a failing configuration and prints the
// committed history around the first divergence from the emulator.
func TestDebugDivergence(t *testing.T) {
	feat := config.REC
	p, _ := workload.ByName("su2cor")
	em := newRefEmu(p)
	c, err := New(config.Big216(), feat, []*program.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		ci  CommitInfo
		epc uint64
	}
	var hist []rec
	c.SetRing(obs.NewRing(400))
	diverged := false
	c.CommitHook = func(ci CommitInfo) {
		if diverged {
			return
		}
		st := em.Step()
		hist = append(hist, rec{ci, st.PC})
		if st.PC != ci.PC {
			diverged = true
			n := len(hist) - 12
			if n < 0 {
				n = 0
			}
			for _, r := range hist[n:] {
				t.Logf("ctx=%d pc=0x%x (emu 0x%x) %v taken=%v reused=%v result=%d",
					r.ci.Ctx, r.ci.PC, r.epc, r.ci.Inst, r.ci.Taken, r.ci.Reused, r.ci.Result)
			}
			events := c.FlightRing().Events()
			n = len(events) - 150
			if n < 0 {
				n = 0
			}
			for _, e := range events[n:] {
				t.Log(e.String())
			}
			t.Fail()
		}
	}
	c.Run(30_000, 2_000_000)
}

// TestDebugDeadlock reproduces a hang and dumps machine state once
// commits stop making progress.
func TestDebugDeadlock(t *testing.T) {
	p := workload.GenerateTerminating(7, 400)
	c, err := New(config.Big216(), config.RECRSRU, []*program.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	c.SetRing(obs.NewRing(600))
	last, lastCycle := uint64(0), uint64(0)
	for i := 0; i < 4_000_000; i++ {
		c.Cycle()
		if c.Done() {
			t.Logf("halted cleanly, committed=%d", c.Stats.Committed)
			return
		}
		if c.Stats.Committed != last {
			last, lastCycle = c.Stats.Committed, c.cycle
		}
		if c.cycle-lastCycle > 20_000 {
			break
		}
	}
	t.Errorf("deadlock at cycle=%d committed=%d intFree=%d fpFree=%d iqInt=%d iqFP=%d exec=%d",
		c.cycle, c.Stats.Committed, c.rf.FreeCount(false), c.rf.FreeCount(true),
		c.iqInt.Len(), c.iqFP.Len(), c.exec.Len())
	for _, ct := range c.ctxs {
		e, ok := ct.al.Head()
		hdr := "empty"
		if ok {
			hdr = e.Inst.String()
			t.Logf("ctx %d state=%v prim=%v parent=%d/%d inflight=%d fq=%d stream=%v head={seq=%d pc=0x%x %s exec=%v iss=%v disp=%v noiss=%v reused=%v readyAt=%d}",
				ct.id, ct.state, ct.isPrimary, ct.parentCtx, ct.parentSeq, ct.al.InFlight(), ct.fqLen(), ct.stream != nil,
				e.Seq, e.PC, hdr, e.Executed, e.Issued, e.Dispatched, e.NoIssue, e.Reused, e.ReadyAt)
			if !e.Executed && e.Dispatched {
				t.Logf("   src1=%d ready=%v src2=%d ready=%v", e.Src1, e.Src1 < 0 || c.rf.Ready(e.Src1), e.Src2, e.Src2 < 0 || c.rf.Ready(e.Src2))
			}
		} else {
			t.Logf("ctx %d state=%v prim=%v parent=%d/%d inflight=0 fq=%d stream=%v fetchPC=0x%x stall=%d halted=%v capped=%v outReuse=%d",
				ct.id, ct.state, ct.isPrimary, ct.parentCtx, ct.parentSeq, ct.fqLen(), ct.stream != nil, ct.fetchPC, ct.fetchStallUntil, ct.fetchHalted, ct.altCapped, ct.outstandingReuse)
		}
		if ct.stream != nil {
			st := ct.stream
			t.Logf("   stream: items=%d pos=%d preDrain=%d src=%d back=%v respawn=%v next=0x%x itemPC=0x%x",
				len(st.items), st.pos, st.preDrain, st.srcCtx, st.back, st.respawn, st.nextPC,
				func() uint64 {
					if st.pos < len(st.items) {
						return st.items[st.pos].pc
					}
					return 0
				}())
		}
	}
	t.Logf("stalls: regs=%d al=%d iq=%d reclaims=%d", c.Stats.RenameStallRegs, c.Stats.RenameStallAL, c.Stats.IQFullStalls, c.Stats.Reclaims)
	for _, e := range c.FlightRing().Events() {
		t.Log(e.String())
	}
}

// TestDebugMultiprogram is a scaffolding test used while developing;
// it dumps pipeline state when a multiprogram run makes no progress.
func TestDebugMultiprogram(t *testing.T) {
	progs, err := workload.MixPrograms(workload.Mix(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(config.Big216(), config.SMT, progs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c.Cycle()
	}
	t.Logf("cycle=%d committed=%d renamed=%d fetched=%d", c.cycle, c.Stats.Committed, c.Stats.Renamed, c.Stats.Fetched)
	for _, ct := range c.ctxs {
		if ct.state == CtxIdle {
			continue
		}
		var headInfo string
		if e, ok := ct.al.Head(); ok {
			headInfo = e.Inst.String()
			t.Logf("ctx %d state=%v prim=%v fq=%d inflight=%d head={pc=0x%x %s exec=%v issued=%v disp=%v noiss=%v src1=%d src2=%d}",
				ct.id, ct.state, ct.isPrimary, ct.fqLen(), ct.al.InFlight(),
				e.PC, headInfo, e.Executed, e.Issued, e.Dispatched, e.NoIssue, e.Src1, e.Src2)
			if e.Src1 >= 0 {
				t.Logf("  src1 ready=%v", c.rf.Ready(e.Src1))
			}
			if e.Src2 >= 0 {
				t.Logf("  src2 ready=%v", c.rf.Ready(e.Src2))
			}
		} else {
			t.Logf("ctx %d state=%v prim=%v fq=%d inflight=0 fetchPC=0x%x stall=%d halted=%v",
				ct.id, ct.state, ct.isPrimary, ct.fqLen(), ct.fetchPC, ct.fetchStallUntil, ct.fetchHalted)
		}
	}
	t.Logf("iqInt=%d iqFP=%d exec=%d", c.iqInt.Len(), c.iqFP.Len(), c.exec.Len())
	_ = program.CodeBase
}
