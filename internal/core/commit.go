package core

import (
	"recyclesim/internal/obs"
	"recyclesim/internal/regfile"
)

// commit retires executed instructions in order from each context's
// active list, up to the machine's commit width.  Only primary threads
// and retiring ex-primaries commit; a context promoted from an
// alternate is gated until its parent has committed the forking branch,
// which preserves total program order (and store order) across the
// hand-off.
func (c *Core) commit() {
	if len(c.ctxs) == 0 {
		return
	}
	budget := c.mach.CommitWidth
	n := len(c.ctxs)
	stuck := 0
	for budget > 0 && stuck < n {
		t := c.ctxs[c.rrCommit%n]
		if c.commitOne(t) {
			budget--
			stuck = 0
		} else {
			c.rrCommit++
			stuck++
		}
	}
}

// commitOne tries to retire the oldest instruction of context t.
func (c *Core) commitOne(t *Context) bool {
	if t.state != CtxActive && t.state != CtxRetiring {
		return false
	}
	if !t.isPrimary && t.state != CtxRetiring {
		return false // speculative alternates never commit
	}
	if t.parentCtx >= 0 {
		p := c.ctxs[t.parentCtx]
		if p.state == CtxIdle {
			t.parentCtx = -1 // parent fully drained earlier
		} else if p.al.CommitSeq() <= t.parentSeq {
			return false // wait for the fork branch to retire
		} else {
			t.parentCtx = -1
		}
	}
	e, ok := t.al.Head()
	if !ok || !e.Executed || e.ReadyAt > c.cycle {
		return false
	}

	in := e.Inst
	lp := t.part.prog

	switch {
	case in.IsStore():
		lp.mem.Write(e.Addr&^7, e.Result)
		// Retire the store-queue entry.  Stores commit in program order,
		// so the match is the ring's front and retirement is O(1); the
		// scan fallback covers a front dropped early by cancelIssue.
		if t.sq.len() > 0 && t.sq.at(0).seq == e.Seq {
			t.sq.popFront()
		} else {
			t.sq.compact(func(s *sqEntry) bool { return s.seq != e.Seq })
		}
	case in.IsBranch():
		// The PHT/BTB are shared and untagged: cross-program aliasing
		// is part of the modelled hardware (the confidence table is
		// tagged because forking the wrong program's branch would
		// corrupt the fork statistics rather than just a prediction).
		c.pred.Commit(e.PC, in, e.Pred, e.Taken, e.NextPC)
		if in.IsCondBranch() {
			c.conf.Update(c.tagAddr(lp.idx, e.PC), e.Pred.GHist, e.Taken == e.PredTaken)
		}
	}

	if e.OldMap != regfile.NoReg {
		c.rf.Release(e.OldMap)
		e.OldMap = regfile.NoReg
	}
	if e.Reused && e.ReuseSrc >= 0 && e.ReuseSrc < len(c.ctxs) {
		if c.ctxs[e.ReuseSrc].outstandingReuse > 0 {
			c.ctxs[e.ReuseSrc].outstandingReuse--
		}
	}

	t.al.CommitHead()
	c.Stats.Committed++
	lp.committed++
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageCommit,
			Ctx: int16(t.id), Seq: e.Seq, PC: e.PC, Arg: e.Result})
	}
	if c.ptrace != nil {
		c.ptrace.OnCommit(e.Trace, c.cycle)
	}
	if lp.idx < len(c.Stats.PerProgram) {
		c.Stats.PerProgram[lp.idx]++
	}

	if c.CommitHook != nil {
		c.CommitHook(CommitInfo{
			Program: lp.idx,
			Ctx:     t.id,
			PC:      e.PC,
			Inst:    in,
			Result:  e.Result,
			Addr:    e.Addr,
			Taken:   e.Taken,
			Reused:  e.Reused,
		})
	}

	// Release children gated on this entry.
	for _, cc := range c.ctxs {
		if cc != t && cc.state != CtxIdle && cc.parentCtx == t.id && cc.parentSeq < t.al.CommitSeq() {
			cc.parentCtx = -1
		}
	}

	if in.IsHalt() && !lp.halted {
		c.haltProgram(t.part)
	}

	// A retiring ex-primary that has drained becomes a spare.
	if t.state == CtxRetiring && t.al.InFlight() == 0 {
		c.killContext(t)
	}
	return true
}

// haltProgram stops a partition whose program committed its halt.
func (c *Core) haltProgram(p *Partition) {
	p.prog.halted = true
	p.done = true
	c.haltedPrograms++
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageHalt,
			Ctx: int16(p.primary), Arg: uint64(p.id)})
	}
	for _, id := range p.ctxIDs {
		t := c.ctxs[id]
		if t.state == CtxIdle {
			continue
		}
		if t.isPrimary {
			// Keep the primary parked (its map holds the final
			// architectural state) but stop all activity.
			t.fetchHalted = true
			t.fqClear()
			t.stream = nil
			continue
		}
		c.killContext(t)
	}
}
