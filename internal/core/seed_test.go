package core

import (
	"testing"

	"recyclesim/internal/bpred"
	"recyclesim/internal/cache"
	"recyclesim/internal/confidence"
	"recyclesim/internal/config"
	"recyclesim/internal/emu"
	"recyclesim/internal/isa"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

// seededCosim fast-forwards a program ffInsts instructions on the
// golden emulator, seeds a detailed core from the resulting
// architectural state, and checks that the seeded core's commit stream
// exactly continues the emulator's execution.
func seededCosim(t *testing.T, mach config.Machine, feat config.Features, p *program.Program, ffInsts, maxInsts uint64) {
	t.Helper()
	e := emu.New(p)
	e.Run(ffInsts)
	if e.Halted {
		t.Fatalf("%s halted during fast-forward", p.Name)
	}
	// The reference emulator clones the memory because the core adopts
	// the fast-forwarded image.
	ref := &emu.Emulator{Prog: p, Mem: e.Mem.Clone(), PC: e.PC, Regs: e.Regs, Retired: e.Retired}
	seed := &ArchState{PC: e.PC, Regs: e.Regs, Mem: e.Mem}
	c, err := NewSeeded(mach, feat, []*program.Program{p}, []*ArchState{seed})
	if err != nil {
		t.Fatalf("NewSeeded: %v", err)
	}
	mismatches := 0
	c.CommitHook = func(ci CommitInfo) {
		got := ref.Step()
		if mismatches > 3 {
			return
		}
		fail := func(field string, want, have interface{}) {
			mismatches++
			t.Errorf("%s/%s seeded@%d commit #%d pc=0x%x inst=%v: %s mismatch: emulator %v, core %v",
				p.Name, config.FeatureName(feat), ffInsts, ref.Retired,
				ci.PC, ci.Inst, field, want, have)
		}
		switch {
		case got.PC != ci.PC:
			fail("pc", got.PC, ci.PC)
		case got.Inst != ci.Inst:
			fail("inst", got.Inst, ci.Inst)
		case ci.Inst.WritesReg() && got.Result != ci.Result:
			fail("result", got.Result, ci.Result)
		case ci.Inst.IsMem() && got.Addr != ci.Addr:
			fail("addr", got.Addr, ci.Addr)
		case ci.Inst.IsBranch() && got.Taken != ci.Taken:
			fail("taken", got.Taken, ci.Taken)
		}
	}
	if _, err := c.Run(maxInsts, 40*maxInsts+10_000); err != nil {
		t.Fatalf("%s/%s seeded@%d: %v", p.Name, config.FeatureName(feat), ffInsts, err)
	}
	if c.Stats.Committed == 0 {
		t.Fatalf("%s/%s seeded@%d: nothing committed", p.Name, config.FeatureName(feat), ffInsts)
	}
}

// The master seeded-correctness invariant: a core seeded from any
// mid-program point commits exactly what the emulator executes from
// that point, for every workload, with the full feature set and plain
// SMT.
func TestSeededCosim(t *testing.T) {
	for _, bench := range workload.Names {
		for _, preset := range []string{"SMT", "REC/RS/RU"} {
			bench, preset := bench, preset
			t.Run(bench+"/"+preset, func(t *testing.T) {
				feat, _ := config.PresetByName(preset)
				p, err := workload.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				seededCosim(t, config.Big216(), feat, p, 25_000, 8_000)
			})
		}
	}
}

// A nil-seed NewSeeded must behave exactly like New.
func TestNewSeededNilSeedsMatchesNew(t *testing.T) {
	p, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	run := func(build func() (*Core, error)) *Core {
		c, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(5_000, 40*5_000); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := run(func() (*Core, error) { return New(config.Big216(), config.RECRSRU, []*program.Program{p}) })
	b := run(func() (*Core, error) {
		return NewSeeded(config.Big216(), config.RECRSRU, []*program.Program{p}, nil)
	})
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Committed != b.Stats.Committed ||
		a.Stats.Recycled != b.Stats.Recycled || a.Stats.Mispredicts != b.Stats.Mispredicts {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestNewSeededValidation(t *testing.T) {
	p, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	progs := []*program.Program{p}
	if _, err := NewSeeded(config.Big216(), config.SMT, progs, []*ArchState{nil, nil}); err == nil {
		t.Error("seed/program count mismatch accepted")
	}
	if _, err := NewSeeded(config.Big216(), config.SMT, progs, []*ArchState{{PC: 0x3}}); err == nil {
		t.Error("out-of-text seed PC accepted")
	}
	bad := &ArchState{PC: p.Entry}
	bad.Regs[isa.RegZero] = 1
	if _, err := NewSeeded(config.Big216(), config.SMT, progs, []*ArchState{bad}); err == nil {
		t.Error("nonzero zero-register seed accepted")
	}
}

// Seeding fresh default microarchitectural models must not change the
// run at all, and seeding after the first cycle must panic.
func TestSeedMicroarch(t *testing.T) {
	p, err := workload.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	mach := config.Big216()
	run := func(inject bool) *Core {
		c, err := New(mach, config.RECRSRU, []*program.Program{p})
		if err != nil {
			t.Fatal(err)
		}
		if inject {
			c.SeedMicroarch(bpred.New(bpred.Default(mach.Contexts)),
				confidence.New(confidence.Default()),
				cache.NewHierarchy(cache.DefaultHierarchy(mach.CacheScale)))
		}
		if _, err := c.Run(5_000, 40*5_000); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(false), run(true)
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Committed != b.Stats.Committed ||
		a.Stats.Mispredicts != b.Stats.Mispredicts {
		t.Errorf("fresh-model injection perturbed the run: %+v vs %+v", a.Stats, b.Stats)
	}

	c, err := New(mach, config.SMT, []*program.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	c.Cycle()
	defer func() {
		if recover() == nil {
			t.Error("SeedMicroarch after the first cycle did not panic")
		}
	}()
	c.SeedMicroarch(nil, nil, nil)
}
