package core

import (
	"sort"

	"recyclesim/internal/alist"
	"recyclesim/internal/iq"
	"recyclesim/internal/isa"
	"recyclesim/internal/regfile"
)

// issue selects ready instructions from the queues oldest-first and
// sends them to the functional units.  Execution is functional-at-issue
// (the operand values are read and the result computed immediately);
// the result is published to dependents at ReadyAt, modelling a full
// bypass network, and branches take effect when they complete.
func (c *Core) issue() {
	c.issueQueue(c.iqInt)
	c.issueQueue(c.iqFP)
}

func (c *Core) issueQueue(q *iq.Queue) {
	q.Scan(func(e *alist.Entry) bool {
		if e.NoIssue {
			return true // cancelled by an alternate-path policy
		}
		in := e.Inst
		// Stores issue on address readiness alone (two-phase issue);
		// everything else needs all operands.
		if !c.srcReady(e.Src1) {
			return false
		}
		if !in.IsStore() && !c.srcReady(e.Src2) {
			return false
		}
		t := c.ctxs[e.Ctx]
		if in.IsLoad() && !c.loadMayIssue(t, e) {
			return false
		}
		if !c.fus.TryIssue(in.Class(), in.Latency()) {
			return false
		}
		c.execute(t, e)
		return true
	})
}

func (c *Core) srcReady(r regfile.PhysReg) bool {
	return r == regfile.NoReg || c.rf.Ready(r)
}

func (c *Core) srcValue(r regfile.PhysReg) uint64 {
	if r == regfile.NoReg {
		return 0
	}
	return c.rf.Value(r)
}

// loadMayIssue applies memory disambiguation: a load waits until every
// older store in its own context — and, for alternate paths, the
// parent chain's stores older than the fork point — has a generated
// address, and until any address-matching older store has its data.
func (c *Core) loadMayIssue(t *Context, e *alist.Entry) bool {
	// The address is computable now (Src1 is ready); use it to decide
	// whether a matching older store's data gates this load.
	addr := isa.EffAddr(e.Inst, c.srcValue(e.Src1)) &^ 7
	check := func(sq []sqEntry, beforeSeq uint64) bool {
		for i := range sq {
			s := &sq[i]
			if s.seq >= beforeSeq {
				continue
			}
			if !s.addrOK {
				return false // unknown older address: wait
			}
			if s.addr == addr && !s.valOK {
				return false // will forward from it: wait for data
			}
		}
		return true
	}
	if !check(t.sq, e.Seq) {
		return false
	}
	ctx, limit := t.parentCtx, t.parentSeq
	for hops := 0; ctx >= 0 && hops < len(c.ctxs); hops++ {
		p := c.ctxs[ctx]
		if !check(p.sq, limit+1) {
			return false
		}
		ctx, limit = p.parentCtx, p.parentSeq
	}
	return true
}

// loadValue resolves a load's value: newest matching store in the
// context's own store queue, then the parent chain's pre-fork stores,
// then architectural memory.
func (c *Core) loadValue(t *Context, seq uint64, addr uint64) (uint64, bool) {
	addr &^= 7
	best := func(sq []sqEntry, beforeSeq uint64) (uint64, bool) {
		var v uint64
		found := false
		var bestSeq uint64
		for i := range sq {
			s := &sq[i]
			if s.valOK && s.seq < beforeSeq && s.addr == addr &&
				(!found || s.seq >= bestSeq) {
				v, found, bestSeq = s.val, true, s.seq
			}
		}
		return v, found
	}
	if v, ok := best(t.sq, seq); ok {
		return v, true
	}
	ctx, limit := t.parentCtx, t.parentSeq
	for hops := 0; ctx >= 0 && hops < len(c.ctxs); hops++ {
		p := c.ctxs[ctx]
		if v, ok := best(p.sq, limit+1); ok {
			return v, true
		}
		ctx, limit = p.parentCtx, p.parentSeq
	}
	return t.part.prog.mem.Read(addr), false
}

// execute computes an issued instruction functionally and schedules its
// completion.
func (c *Core) execute(t *Context, e *alist.Entry) {
	in := e.Inst
	s1 := c.srcValue(e.Src1)
	s2 := c.srcValue(e.Src2)
	lat := in.Latency()
	e.Issued = true

	switch {
	case in.IsLoad():
		e.Addr = isa.EffAddr(in, s1)
		v, forwarded := c.loadValue(t, e.Seq, e.Addr)
		e.Result = v
		if !forwarded {
			lat += c.mem.AccessD(c.cycle, c.tagAddr(t.part.prog.idx, e.Addr))
		}
	case in.IsStore():
		// Phase one: address generation.  The MDB is invalidated here
		// (as soon as the address is known) so no reuse can slip in
		// between address generation and data arrival.
		e.Addr = isa.EffAddr(in, s1)
		for i := range t.sq {
			if t.sq[i].seq == e.Seq {
				t.sq[i].addr = e.Addr &^ 7
				t.sq[i].addrOK = true
				break
			}
		}
		c.mdb.StoreTo(c.tagAddr(t.part.prog.idx, e.Addr&^7))
		// Stores probe the data cache for timing (write allocate).
		lat += c.mem.AccessD(c.cycle, c.tagAddr(t.part.prog.idx, e.Addr))
		if !c.srcReady(e.Src2) {
			// Data pending: park in phase two; complete() re-arms the
			// store when the data register arrives.
			c.pendingSt = append(c.pendingSt, e)
			return
		}
		e.Result = s2
		c.storeCaptureData(t, e)
	case in.IsBranch():
		e.Taken = isa.BranchTaken(in, s1, s2)
		if e.Taken {
			e.NextPC = isa.BranchTarget(in, s1)
		} else {
			e.NextPC = e.PC + isa.InstBytes
		}
		if in.WritesReg() {
			e.Result = isa.Eval(in, e.PC, s1, s2)
		}
		lat += redirectPenalty // register-read depth before resolution
	default:
		e.Result = isa.Eval(in, e.PC, s1, s2)
	}

	e.ReadyAt = c.cycle + uint64(lat)
	c.exec = append(c.exec, e)
}

// storeCaptureData records a store's data in the store queue (phase
// two of store issue), enabling forwarding to younger loads.
func (c *Core) storeCaptureData(t *Context, e *alist.Entry) {
	for i := range t.sq {
		if t.sq[i].seq == e.Seq {
			t.sq[i].val = e.Result
			t.sq[i].valOK = true
			return
		}
	}
}

// complete retires finished executions: results are written back,
// loads enter the MDB, stores invalidate it, and branches resolve.
// Completions are processed in deterministic (ctx, seq) order; a
// resolution may squash younger completions scheduled for the same
// cycle, so each is revalidated before processing.
func (c *Core) complete() {
	// Phase-two stores: capture data once the source register arrives.
	if len(c.pendingSt) > 0 {
		rest := c.pendingSt[:0]
		for _, e := range c.pendingSt {
			if c.srcReady(e.Src2) {
				t := c.ctxs[e.Ctx]
				if live, ok := t.al.At(e.Seq); ok && live == e {
					e.Result = c.srcValue(e.Src2)
					c.storeCaptureData(t, e)
					e.ReadyAt = c.cycle
					c.exec = append(c.exec, e)
				}
			} else {
				rest = append(rest, e)
			}
		}
		for i := len(rest); i < len(c.pendingSt); i++ {
			c.pendingSt[i] = nil
		}
		c.pendingSt = rest
	}

	var due []*alist.Entry
	rest := c.exec[:0]
	for _, e := range c.exec {
		if e.ReadyAt <= c.cycle {
			due = append(due, e)
		} else {
			rest = append(rest, e)
		}
	}
	for i := len(rest); i < len(c.exec); i++ {
		c.exec[i] = nil
	}
	c.exec = rest
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].Ctx != due[j].Ctx {
			return due[i].Ctx < due[j].Ctx
		}
		return due[i].Seq < due[j].Seq
	})
	for _, e := range due {
		// Revalidate: a squash earlier in this cycle may have removed
		// or recycled this active-list slot.
		t := c.ctxs[e.Ctx]
		live, ok := t.al.At(e.Seq)
		if !ok || live != e || e.Executed || !e.Issued {
			continue
		}
		c.completeEntry(t, e)
	}
}

func (c *Core) completeEntry(t *Context, e *alist.Entry) {
	e.Executed = true
	in := e.Inst
	if in.WritesReg() && e.NewMap != regfile.NoReg {
		c.rf.SetValue(e.NewMap, e.Result)
	}
	asid := t.part.prog.idx
	switch {
	case in.IsLoad():
		c.mdb.InsertLoad(c.tagAddr(asid, e.PC), c.tagAddr(asid, e.Addr&^7))
	case in.IsStore():
		// MDB invalidation already happened at address generation.
	case in.IsBranch():
		c.resolveBranch(t, e)
	}
}
