package core

import (
	"recyclesim/internal/alist"
	"recyclesim/internal/iq"
	"recyclesim/internal/isa"
	"recyclesim/internal/obs"
	"recyclesim/internal/regfile"
	"recyclesim/internal/wheel"
)

// issue selects ready instructions from the queues oldest-first and
// sends them to the functional units.  Execution is functional-at-issue
// (the operand values are read and the result computed immediately);
// the result is published to dependents at ReadyAt, modelling a full
// bypass network, and branches take effect when they complete.
func (c *Core) issue() {
	c.issueQueue(c.iqInt)
	c.issueQueue(c.iqFP)
}

func (c *Core) issueQueue(q *iq.Queue) {
	q.Scan(func(e *alist.Entry) bool {
		if e.NoIssue {
			return true // cancelled by an alternate-path policy
		}
		in := e.Inst
		// Stores issue on address readiness alone (two-phase issue);
		// everything else needs all operands.
		if !c.srcReady(e.Src1) {
			return false
		}
		if !in.IsStore() && !c.srcReady(e.Src2) {
			return false
		}
		t := c.ctxs[e.Ctx]
		if in.IsLoad() && !c.loadMayIssue(t, e) {
			return false
		}
		if !c.fus.TryIssue(in.Class(), in.Latency()) {
			return false
		}
		c.execute(t, e)
		return true
	})
}

func (c *Core) srcReady(r regfile.PhysReg) bool {
	return r == regfile.NoReg || c.rf.Ready(r)
}

func (c *Core) srcValue(r regfile.PhysReg) uint64 {
	if r == regfile.NoReg {
		return 0
	}
	return c.rf.Value(r)
}

// loadMayIssue applies memory disambiguation: a load waits until every
// older store in its own context — and, for alternate paths, the
// parent chain's stores older than the fork point — has a generated
// address, and until any address-matching older store has its data.
func (c *Core) loadMayIssue(t *Context, e *alist.Entry) bool {
	// The address is computable now (Src1 is ready); use it to decide
	// whether a matching older store's data gates this load.
	addr := isa.EffAddr(e.Inst, c.srcValue(e.Src1)) &^ 7
	check := func(sq *storeQueue, beforeSeq uint64) bool {
		for i := 0; i < sq.len(); i++ {
			s := sq.at(i)
			if s.seq >= beforeSeq {
				continue
			}
			if !s.addrOK {
				return false // unknown older address: wait
			}
			if s.addr == addr && !s.valOK {
				return false // will forward from it: wait for data
			}
		}
		return true
	}
	if !check(&t.sq, e.Seq) {
		return false
	}
	ctx, limit := t.parentCtx, t.parentSeq
	for hops := 0; ctx >= 0 && hops < len(c.ctxs); hops++ {
		p := c.ctxs[ctx]
		if !check(&p.sq, limit+1) {
			return false
		}
		ctx, limit = p.parentCtx, p.parentSeq
	}
	return true
}

// loadValue resolves a load's value: newest matching store in the
// context's own store queue, then the parent chain's pre-fork stores,
// then architectural memory.
func (c *Core) loadValue(t *Context, seq uint64, addr uint64) (uint64, bool) {
	addr &^= 7
	best := func(sq *storeQueue, beforeSeq uint64) (uint64, bool) {
		var v uint64
		found := false
		var bestSeq uint64
		for i := 0; i < sq.len(); i++ {
			s := sq.at(i)
			if s.valOK && s.seq < beforeSeq && s.addr == addr &&
				(!found || s.seq >= bestSeq) {
				v, found, bestSeq = s.val, true, s.seq
			}
		}
		return v, found
	}
	if v, ok := best(&t.sq, seq); ok {
		return v, true
	}
	ctx, limit := t.parentCtx, t.parentSeq
	for hops := 0; ctx >= 0 && hops < len(c.ctxs); hops++ {
		p := c.ctxs[ctx]
		if v, ok := best(&p.sq, limit+1); ok {
			return v, true
		}
		ctx, limit = p.parentCtx, p.parentSeq
	}
	return t.part.prog.mem.Read(addr), false
}

// execute computes an issued instruction functionally and schedules its
// completion.
func (c *Core) execute(t *Context, e *alist.Entry) {
	in := e.Inst
	s1 := c.srcValue(e.Src1)
	s2 := c.srcValue(e.Src2)
	lat := in.Latency()
	e.Issued = true
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageIssue,
			Ctx: int16(e.Ctx), Seq: e.Seq, PC: e.PC, Arg: uint64(in.Op)})
	}
	if c.ptrace != nil {
		c.ptrace.OnIssue(e.Trace, c.cycle)
	}

	switch {
	case in.IsLoad():
		e.Addr = isa.EffAddr(in, s1)
		v, forwarded := c.loadValue(t, e.Seq, e.Addr)
		e.Result = v
		if !forwarded {
			lat += c.mem.AccessD(c.cycle, c.tagAddr(t.part.prog.idx, e.Addr))
		}
	case in.IsStore():
		// Phase one: address generation.  The MDB is invalidated here
		// (as soon as the address is known) so no reuse can slip in
		// between address generation and data arrival.
		e.Addr = isa.EffAddr(in, s1)
		if s := t.sq.find(e.Seq); s != nil {
			s.addr = e.Addr &^ 7
			s.addrOK = true
		}
		c.mdb.StoreTo(c.tagAddr(t.part.prog.idx, e.Addr&^7))
		// Stores probe the data cache for timing (write allocate).
		lat += c.mem.AccessD(c.cycle, c.tagAddr(t.part.prog.idx, e.Addr))
		if !c.srcReady(e.Src2) {
			// Data pending: park in phase two; complete() re-arms the
			// store when the data register arrives.  ReadyAt is pushed to
			// the far future so a stale wheel item left behind by this
			// slot's previous occupant (lazy deletion) cannot pass the
			// revalidation filter and complete the parked store early.
			e.ReadyAt = ^uint64(0)
			c.pendingSt = append(c.pendingSt, e)
			return
		}
		e.Result = s2
		c.storeCaptureData(t, e)
	case in.IsBranch():
		e.Taken = isa.BranchTaken(in, s1, s2)
		if e.Taken {
			e.NextPC = isa.BranchTarget(in, s1)
		} else {
			e.NextPC = e.PC + isa.InstBytes
		}
		if in.WritesReg() {
			e.Result = isa.Eval(in, e.PC, s1, s2)
		}
		lat += redirectPenalty // register-read depth before resolution
	default:
		e.Result = isa.Eval(in, e.PC, s1, s2)
	}

	e.ReadyAt = c.cycle + uint64(lat)
	c.exec.Schedule(e, e.ReadyAt, c.cycle)
}

// storeCaptureData records a store's data in the store queue (phase
// two of store issue), enabling forwarding to younger loads.
func (c *Core) storeCaptureData(t *Context, e *alist.Entry) {
	if s := t.sq.find(e.Seq); s != nil {
		s.val = e.Result
		s.valOK = true
	}
}

// complete retires finished executions: results are written back,
// loads enter the MDB, stores invalidate it, and branches resolve.
// The completion wheel yields exactly the executions due this cycle
// (cost proportional to completions, not to the in-flight count); the
// batch is processed in deterministic (ctx, seq) order.  A resolution
// may squash younger completions drained for the same cycle, and the
// wheel's lazy deletion can surface stale or duplicate items, so each
// entry is revalidated before processing.
func (c *Core) complete() {
	due := c.due[:0]

	// Phase-two stores: capture data once the source register arrives.
	// Re-armed stores complete this same cycle, so they join the due
	// batch directly instead of going through the wheel.
	if len(c.pendingSt) > 0 {
		rest := c.pendingSt[:0]
		for _, e := range c.pendingSt {
			if c.srcReady(e.Src2) {
				t := c.ctxs[e.Ctx]
				if live, ok := t.al.At(e.Seq); ok && live == e {
					e.Result = c.srcValue(e.Src2)
					c.storeCaptureData(t, e)
					e.ReadyAt = c.cycle
					due = append(due, e)
				}
			} else {
				rest = append(rest, e)
			}
		}
		for i := len(rest); i < len(c.pendingSt); i++ {
			c.pendingSt[i] = nil
		}
		c.pendingSt = rest
	}

	c.exec.PopDue(c.cycle, func(it wheel.Item) {
		e := it.E
		// Lazy-deletion filter: skip items whose entry was squashed
		// since scheduling (the slot no longer resolves to e, or the
		// slot was re-renamed and the new instruction is not yet due).
		t := c.ctxs[e.Ctx]
		live, ok := t.al.At(e.Seq)
		if !ok || live != e || e.Executed || !e.Issued || e.ReadyAt > c.cycle {
			return
		}
		due = append(due, e)
	})
	c.due = due[:0] // retain the grown scratch capacity
	if len(due) == 0 {
		return
	}
	sortDueByCtxSeq(due)
	for _, e := range due {
		// Revalidate: a squash earlier in this cycle may have removed
		// or recycled this active-list slot, and a stale wheel item can
		// duplicate an entry drained through its own item this cycle.
		t := c.ctxs[e.Ctx]
		live, ok := t.al.At(e.Seq)
		if !ok || live != e || e.Executed || !e.Issued {
			continue
		}
		c.completeEntry(t, e)
	}
}

// sortDueByCtxSeq insertion-sorts a completion batch by (ctx, seq).
// Batches are bounded by per-cycle completion counts (a handful), and
// unlike sort.Slice this allocates nothing.
func sortDueByCtxSeq(due []*alist.Entry) {
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && dueLess(due[j], due[j-1]); j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
}

func dueLess(a, b *alist.Entry) bool {
	if a.Ctx != b.Ctx {
		return a.Ctx < b.Ctx
	}
	return a.Seq < b.Seq
}

func (c *Core) completeEntry(t *Context, e *alist.Entry) {
	e.Executed = true
	in := e.Inst
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageComplete,
			Ctx: int16(e.Ctx), Seq: e.Seq, PC: e.PC, Arg: e.Result})
	}
	if c.ptrace != nil {
		c.ptrace.OnWriteback(e.Trace, c.cycle)
	}
	if in.WritesReg() && e.NewMap != regfile.NoReg {
		c.rf.SetValue(e.NewMap, e.Result)
	}
	asid := t.part.prog.idx
	switch {
	case in.IsLoad():
		c.mdb.InsertLoad(c.tagAddr(asid, e.PC), c.tagAddr(asid, e.Addr&^7))
	case in.IsStore():
		// MDB invalidation already happened at address generation.
	case in.IsBranch():
		c.resolveBranch(t, e)
	}
}
