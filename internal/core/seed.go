// Core seeding: starting a detailed core from a mid-program
// architectural state instead of the program entry.  Sampled
// simulation (internal/sample) fast-forwards a program on the golden
// emulator, then builds a seeded core for each detailed measurement
// interval; the seeded core's committed instruction stream must match
// the emulator continuing from the same state (seed_test.go holds the
// cosimulation invariant over every workload).
package core

import (
	"fmt"

	"recyclesim/internal/bpred"
	"recyclesim/internal/cache"
	"recyclesim/internal/confidence"
	"recyclesim/internal/config"
	"recyclesim/internal/isa"
	"recyclesim/internal/program"
)

// ArchState is a program's architectural state at a seeding point:
// the next PC to execute, the architectural register values, and the
// data memory image.
type ArchState struct {
	PC   uint64
	Regs [isa.NumRegs]uint64

	// Mem, when non-nil, is adopted as the program's data memory (not
	// copied — the caller hands over ownership).  Nil keeps the fresh
	// initial image.
	Mem *program.Memory
}

// NewSeeded is New with per-program architectural seeds: seeds[i], when
// non-nil, starts progs[i]'s primary context at the given mid-program
// PC with the given register values and memory image instead of the
// program entry.  A nil seeds slice or nil entry means a fresh start.
// Microarchitectural state (predictor, caches, recycle tables) still
// starts cold; use SeedMicroarch to inject pre-warmed models.
func NewSeeded(mach config.Machine, feat config.Features, progs []*program.Program, seeds []*ArchState) (*Core, error) {
	if len(seeds) != 0 && len(seeds) != len(progs) {
		return nil, fmt.Errorf("core: %d seeds for %d programs", len(seeds), len(progs))
	}
	for i, s := range seeds {
		if s == nil {
			continue
		}
		if _, ok := progs[i].PCToIndex(s.PC); !ok {
			return nil, fmt.Errorf("core: seed %d: pc 0x%x outside %s text", i, s.PC, progs[i].Name)
		}
		if s.Regs[isa.RegZero] != 0 {
			return nil, fmt.Errorf("core: seed %d: nonzero zero register", i)
		}
	}
	return newCore(mach, feat, progs, seeds)
}

// SeedMicroarch replaces the core's branch predictor, confidence
// estimator, and/or cache hierarchy with externally warmed instances
// (nil arguments keep the fresh defaults).  The replacements must be
// built with the same configurations New uses — bpred.Default for the
// machine's context count, confidence.Default, and the machine's
// DefaultHierarchy — or the model diverges from the configured
// machine.  Seeding is only legal before the first cycle.
func (c *Core) SeedMicroarch(pred *bpred.Predictor, conf *confidence.Estimator, mem *cache.Hierarchy) {
	if c.cycle != 0 {
		panic("core: SeedMicroarch called after the first cycle")
	}
	if pred != nil {
		c.pred = pred
	}
	if conf != nil {
		c.conf = conf
	}
	if mem != nil {
		c.mem = mem
	}
}

// TagAddr disambiguates program address spaces in the shared caches
// and MDB.  The high bits make addresses unique per program; the low
// skew (a 64-byte-aligned odd multiple of the line size) spreads the
// programs' identical virtual layouts across cache sets and banks, as
// distinct physical page mappings would on the real machine.  Exported
// so the functional-warmup driver (internal/sample) trains the shared
// predictor, confidence estimator, and caches with exactly the
// addresses the core will present.
func TagAddr(progIdx int, addr uint64) uint64 {
	return addr + uint64(progIdx+1)<<44 + uint64(progIdx)*64*1245
}
