package core

import (
	"testing"

	"recyclesim/internal/config"
	"recyclesim/internal/workload"
)

// TestSteadyStateAllocBudget pins the cycle loop's steady-state
// allocation rate at (near) zero on the baseline machine with the full
// feature set.  The hot path reuses scratch buffers, ring queues, and
// the completion wheel's slot storage, so after a warm-up period the
// only allowed allocations are rare capacity growth events; a
// regression that reintroduces per-cycle slice churn or vararg boxing
// fails this test immediately rather than showing up later as a
// throughput loss.
func TestSteadyStateAllocBudget(t *testing.T) {
	if defaultInvariantEvery != 0 {
		t.Skip("siminvariant build: the periodic checker allocates by design")
	}
	progs, err := workload.MixPrograms([]string{"compress", "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(config.Big216(), config.RECRSRU, progs)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: grow every scratch buffer, wheel slot, and cache
	// structure to its steady-state footprint.
	for i := 0; i < 10_000; i++ {
		c.Cycle()
	}
	if c.Done() {
		t.Fatal("workload halted during warm-up; budget needs a longer program")
	}

	const cyclesPerRun = 2_000
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < cyclesPerRun; i++ {
			c.Cycle()
		}
	})
	if c.Done() {
		t.Fatal("workload halted during measurement; budget needs a longer program")
	}
	perCycle := avg / cyclesPerRun
	t.Logf("steady state: %.1f allocs per %d cycles (%.4f/cycle)", avg, cyclesPerRun, perCycle)
	// Budget: one allocation per 100 cycles.  The pre-optimization loop
	// allocated tens of objects per cycle, so the margin between "reuses
	// its buffers" and "regressed" is three orders of magnitude.
	if perCycle > 0.01 {
		t.Errorf("steady-state allocation rate %.4f/cycle exceeds budget 0.01/cycle", perCycle)
	}
}
