package core

import (
	"testing"

	"recyclesim/internal/config"
	"recyclesim/internal/obs/pipetrace"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

// tracedCore builds a running machine with a full (unsampled)
// pipetrace recorder attached.
func tracedCore(t *testing.T, feat config.Features, bench string, cycles uint64) *Core {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(config.Big216(), feat, []*program.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	c.SetPipeTrace(pipetrace.New(pipetrace.Config{}))
	c.Run(cycles, 100_000)
	return c
}

// TestPipetraceLegalSequences runs every workload under five feature
// presets with a full tracer attached and sweeps the "pipetrace"
// invariant rule over the result: recycled records must have no fetch
// stage, reused records no queue/issue/writeback, squashed records no
// retirement, and all recorded stage cycles must be monotone.
func TestPipetraceLegalSequences(t *testing.T) {
	presets := []struct {
		name string
		feat config.Features
	}{
		{"TME", config.TME},
		{"REC", config.REC},
		{"REC/RU", config.RECRU},
		{"REC/RS", config.RECRS},
		{"REC/RS/RU", config.RECRSRU},
	}
	for _, bench := range workload.Names {
		for _, pr := range presets {
			t.Run(bench+"/"+pr.name, func(t *testing.T) {
				c := tracedCore(t, pr.feat, bench, 4_000)
				if rep := c.CheckInvariants(); !rep.OK() {
					t.Fatalf("invariants: %s", rep.Error())
				}
				recs := c.PipeTrace().Records()
				if len(recs) == 0 {
					t.Fatal("tracer recorded nothing")
				}
			})
		}
	}
}

// TestPipetraceRecyclingShapes pins the paper-visible record shapes
// under full recycling: the trace of a REC/RS/RU run must contain at
// least one recycled instruction (no fetch stage) and at least one
// reused instruction (no issue or writeback).
func TestPipetraceRecyclingShapes(t *testing.T) {
	c := tracedCore(t, config.RECRSRU, "compress", 20_000)
	var recycled, reused int
	for _, rec := range c.PipeTrace().Records() {
		if rec.Recycled {
			recycled++
			if rec.Fetch != 0 {
				t.Fatalf("recycled record has a fetch stage: %+v", rec)
			}
		}
		if rec.Reused {
			reused++
			if rec.Issue != 0 || rec.Writeback != 0 {
				t.Fatalf("reused record entered execution: %+v", rec)
			}
		}
	}
	if recycled == 0 || reused == 0 {
		t.Fatalf("trace shows %d recycled and %d reused records; want both > 0", recycled, reused)
	}
}

// corruptTracedCore builds a healthy traced machine for corruption
// tests.
func corruptTracedCore(t *testing.T) *Core {
	t.Helper()
	c := tracedCore(t, config.RECRSRU, "compress", 2_000)
	if rep := c.CheckInvariants(); !rep.OK() {
		t.Fatalf("machine unhealthy before corruption: %s", rep.Error())
	}
	if len(c.PipeTrace().Records()) == 0 {
		t.Fatal("no records to corrupt")
	}
	return c
}

// TestPipetraceDetectsMissingRename: a record with no rename cycle is
// structurally impossible and must trip the checker.
func TestPipetraceDetectsMissingRename(t *testing.T) {
	c := corruptTracedCore(t)
	c.PipeTrace().Records()[0].Rename = 0
	expectViolation(t, c, "pipetrace")
}

// TestPipetraceDetectsRecycledFetch: a recycled record claiming a fetch
// cycle contradicts §3.4 (recycling bypasses fetch and decode).
func TestPipetraceDetectsRecycledFetch(t *testing.T) {
	c := corruptTracedCore(t)
	recs := c.PipeTrace().Records()
	for i := range recs {
		if recs[i].Recycled {
			recs[i].Fetch = recs[i].Rename
			expectViolation(t, c, "pipetrace")
			return
		}
	}
	t.Skip("no recycled record in warm-up window")
}

// TestPipetraceDetectsReusedIssue: a reused record claiming an issue
// cycle contradicts §3.5 (reuse bypasses issue and execution).
func TestPipetraceDetectsReusedIssue(t *testing.T) {
	c := corruptTracedCore(t)
	recs := c.PipeTrace().Records()
	for i := range recs {
		if recs[i].Reused {
			recs[i].Issue = recs[i].Rename + 1
			expectViolation(t, c, "pipetrace")
			return
		}
	}
	t.Skip("no reused record in warm-up window")
}

// TestPipetraceDetectsSquashedCommit: committed and squashed are
// mutually exclusive ends.
func TestPipetraceDetectsSquashedCommit(t *testing.T) {
	c := corruptTracedCore(t)
	recs := c.PipeTrace().Records()
	for i := range recs {
		if recs[i].Committed {
			recs[i].Squashed = true
			recs[i].Squash = recs[i].Retire
			expectViolation(t, c, "pipetrace")
			return
		}
	}
	t.Skip("no committed record in warm-up window")
}

// TestTracedAllocBudget re-runs the steady-state allocation budget with
// a full tracer attached: recording must stay allocation-free because
// all record storage is preallocated at construction.
func TestTracedAllocBudget(t *testing.T) {
	if defaultInvariantEvery != 0 {
		t.Skip("siminvariant build: the periodic checker allocates by design")
	}
	progs, err := workload.MixPrograms([]string{"compress", "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(config.Big216(), config.RECRSRU, progs)
	if err != nil {
		t.Fatal(err)
	}
	c.SetPipeTrace(pipetrace.New(pipetrace.Config{MaxRecords: 1 << 18}))
	for i := 0; i < 10_000; i++ {
		c.Cycle()
	}
	if c.Done() {
		t.Fatal("workload halted during warm-up; budget needs a longer program")
	}
	const cyclesPerRun = 2_000
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < cyclesPerRun; i++ {
			c.Cycle()
		}
	})
	if c.Done() {
		t.Fatal("workload halted during measurement; budget needs a longer program")
	}
	perCycle := avg / cyclesPerRun
	t.Logf("traced steady state: %.1f allocs per %d cycles (%.4f/cycle)", avg, cyclesPerRun, perCycle)
	if perCycle > 0.01 {
		t.Errorf("traced steady-state allocation rate %.4f/cycle exceeds budget 0.01/cycle", perCycle)
	}
}
