package core

import (
	"fmt"
	"strings"
	"testing"

	"recyclesim/internal/config"
	"recyclesim/internal/emu"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

// cosim runs the core and checks that every committed instruction of
// every program exactly matches the golden in-order emulator: same PC,
// same instruction, same register result, same effective address, same
// branch direction.  This is the master architectural-correctness
// invariant — it must hold for every feature combination, including
// recycling and reuse, because those mechanisms claim value equality.
func cosim(t *testing.T, mach config.Machine, feat config.Features, progs []*program.Program, maxInsts uint64) *Core {
	t.Helper()
	emus := make([]*emu.Emulator, len(progs))
	for i, p := range progs {
		emus[i] = emu.New(p)
	}
	c, err := New(mach, feat, progs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mismatches := 0
	c.CommitHook = func(ci CommitInfo) {
		ref := emus[ci.Program].Step()
		if mismatches > 3 {
			return
		}
		fail := func(field string, want, got interface{}) {
			mismatches++
			t.Errorf("%s/%s commit #%d pc=0x%x inst=%v (ctx %d, reused=%v): %s mismatch: emulator %v, core %v",
				mach.Name, config.FeatureName(feat), emus[ci.Program].Retired,
				ci.PC, ci.Inst, ci.Ctx, ci.Reused, field, want, got)
		}
		switch {
		case ref.PC != ci.PC:
			fail("pc", ref.PC, ci.PC)
		case ref.Inst != ci.Inst:
			fail("inst", ref.Inst, ci.Inst)
		case ci.Inst.WritesReg() && ref.Result != ci.Result:
			fail("result", ref.Result, ci.Result)
		case ci.Inst.IsMem() && ref.Addr != ci.Addr:
			fail("addr", ref.Addr, ci.Addr)
		case ci.Inst.IsBranch() && ref.Taken != ci.Taken:
			fail("taken", ref.Taken, ci.Taken)
		}
	}
	if _, err := c.Run(maxInsts, 40*maxInsts+10_000); err != nil {
		t.Fatalf("%s/%s: %v", mach.Name, config.FeatureName(feat), err)
	}
	if c.Stats.Committed == 0 {
		t.Fatalf("%s/%s: nothing committed in %d cycles",
			mach.Name, config.FeatureName(feat), c.CycleCount())
	}
	return c
}

var allPresets = []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"}

func TestCosimSingleBenchmarks(t *testing.T) {
	for _, bench := range workload.Names {
		for _, preset := range allPresets {
			bench, preset := bench, preset
			t.Run(bench+"/"+preset, func(t *testing.T) {
				feat, _ := config.PresetByName(preset)
				p, err := workload.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				cosim(t, config.Big216(), feat, []*program.Program{p}, 30_000)
			})
		}
	}
}

func TestCosimMultiprogram(t *testing.T) {
	for _, n := range []int{2, 4} {
		for _, preset := range []string{"SMT", "TME", "REC/RS/RU"} {
			n, preset := n, preset
			t.Run(preset, func(t *testing.T) {
				feat, _ := config.PresetByName(preset)
				progs, err := workload.MixPrograms(workload.Mix(1, n))
				if err != nil {
					t.Fatal(err)
				}
				cosim(t, config.Big216(), feat, progs, 40_000)
			})
		}
	}
}

func TestCosimAllMachines(t *testing.T) {
	for name := range config.Machines() {
		name := name
		t.Run(name, func(t *testing.T) {
			mach := config.Machines()[name]
			p, err := workload.ByName("compress")
			if err != nil {
				t.Fatal(err)
			}
			cosim(t, mach, config.RECRSRU, []*program.Program{p}, 20_000)
		})
	}
}

func TestCosimAltPolicies(t *testing.T) {
	for _, pol := range []config.AltPolicy{config.AltStop, config.AltFetch, config.AltNoStop} {
		for _, lim := range []int{8, 16, 32} {
			pol, lim := pol, lim
			t.Run(pol.String(), func(t *testing.T) {
				feat := config.RECRSRU
				feat.AltPolicy = pol
				feat.AltLimit = lim
				p, err := workload.ByName("go")
				if err != nil {
					t.Fatal(err)
				}
				cosim(t, config.Big216(), feat, []*program.Program{p}, 20_000)
			})
		}
	}
}

func TestCosimRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run("seed", func(t *testing.T) {
			p := workload.Generate(workload.DefaultGenParams(seed))
			cosim(t, config.Big216(), config.RECRSRU, []*program.Program{p}, 15_000)
		})
	}
}

// TestCosimTerminating checks halt handling: the core must stop at the
// halt, commit exactly what the emulator retires, and report the
// program done.
func TestCosimTerminating(t *testing.T) {
	p := workload.GenerateTerminating(7, 400)
	c := cosim(t, config.Big216(), config.RECRSRU, []*program.Program{p}, 1_000_000)
	if !c.Done() {
		t.Fatalf("program did not halt (committed %d)", c.Stats.Committed)
	}
	ref := emu.New(p)
	ref.Run(10_000_000)
	if !ref.Halted {
		t.Fatal("emulator did not halt")
	}
	// +1: the core commits the halt instruction itself.
	if c.Stats.Committed != ref.Retired+1 {
		t.Fatalf("committed %d, emulator retired %d", c.Stats.Committed, ref.Retired)
	}
}

// TestDeterminism: identical configurations must produce identical
// cycle counts and statistics.
// TestDeterminism is the reproducibility witness: the same machine,
// features, and workload run twice in one process must produce a
// byte-identical commit stream (every field of every CommitInfo) and a
// byte-identical statistics structure, not just matching headline
// numbers.  Any divergence — scheduling, map iteration, a stray global
// — shows up as the first differing line.
func TestDeterminism(t *testing.T) {
	witness := func(feat config.Features, names []string, maxInsts uint64) (string, string) {
		progs, err := workload.MixPrograms(names)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(config.Big216(), feat, progs)
		if err != nil {
			t.Fatal(err)
		}
		var commits strings.Builder
		c.CommitHook = func(ci CommitInfo) {
			fmt.Fprintf(&commits, "p%d c%d pc=%x %v res=%x addr=%x taken=%t reused=%t\n",
				ci.Program, ci.Ctx, ci.PC, ci.Inst, ci.Result, ci.Addr, ci.Taken, ci.Reused)
		}
		s, err := c.Run(maxInsts, 40*maxInsts+10_000)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", *s), commits.String()
	}
	cases := []struct {
		name  string
		feat  config.Features
		names []string
	}{
		{"TME single", config.TME, []string{"compress"}},
		{"RECRSRU single", config.RECRSRU, []string{"compress"}},
		{"RECRSRU multiprogram", config.RECRSRU, []string{"go", "li"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s1, c1 := witness(tc.feat, tc.names, 20_000)
			s2, c2 := witness(tc.feat, tc.names, 20_000)
			if c1 == "" {
				t.Fatal("no instructions committed")
			}
			if s1 != s2 {
				t.Errorf("stats differ between identical runs:\n run 1: %s\n run 2: %s", s1, s2)
			}
			if c1 != c2 {
				t.Errorf("commit streams differ between identical runs: %s", firstDiff(c1, c2))
			}
		})
	}
}

// firstDiff locates the first differing line of two commit streams.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths %d vs %d lines", len(al), len(bl))
}
