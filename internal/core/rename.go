package core

import (
	"recyclesim/internal/alist"
	"recyclesim/internal/config"
	"recyclesim/internal/iq"
	"recyclesim/internal/isa"
	"recyclesim/internal/obs"
	"recyclesim/internal/regfile"
)

// rename merges the two instruction sources into the shared rename
// stage: fetched instructions have priority for slots, recycled
// instructions fill what remains ("We give highest priority to
// instructions from the fetched paths, filling in empty slots with
// recycled instructions"), and program order is preserved per thread
// across both sources.
func (c *Core) rename() {
	slots := c.mach.RenameWidth

	// Round 1: fetched instructions, threads ordered by front-end
	// occupancy (lower first).
	order := c.renameOrder(false)
	for _, cand := range order {
		t := cand.t
		for slots > 0 {
			fe, ok := t.nextFetched()
			if !ok || fe.readyAt > c.cycle {
				break
			}
			if !c.renameFetched(t, fe) {
				break // structural stall; retry next cycle
			}
			t.popFetched()
			slots--
			c.slotFetched++
		}
	}

	// Round 2: recycled instructions.  "When multiple threads want to
	// recycle, a separate instruction counter is used to determine the
	// priority of those threads for insertion into the rename stage."
	order = c.renameOrder(true)
	for _, cand := range order {
		t := cand.t
		for slots > 0 && t.stream != nil && t.stream.preDrain == 0 {
			st := t.stream
			if st.done() {
				c.endStream(t, false)
				break
			}
			proceed, stall := c.renameRecycled(t, &st.items[st.pos])
			if stall {
				break
			}
			slots--
			c.slotRecycled++
			if !proceed {
				// Prediction disagreed with the trace: recycling
				// stops and fetch continues on the new path.
				break
			}
			st.pos++
			if st.done() {
				c.endStream(t, false)
			}
		}
	}
}

// renameOrder returns the threads eligible to rename this round,
// primary threads ahead of alternates (matching the TME-modified
// ICOUNT fetch priority — alternates must not steal rename bandwidth
// from the paths that retire work) and by queue occupancy within each
// class.  For the recycle round (second pass) only threads with an
// active stream qualify.  The result lives in the core's reusable
// candidate scratch (valid until the next ordering is built).
func (c *Core) renameOrder(recycleRound bool) []ctxCand {
	out := c.cands[:0]
	eligible := func(t *Context) bool {
		if t.state == CtxIdle || t.state == CtxRetiring || t.state == CtxInactive {
			return false
		}
		if recycleRound {
			return t.stream != nil
		}
		return t.fqLen() > 0
	}
	// Primaries first, then alternates: the original single stable sort
	// keyed on (isPrimary, icount) is equivalent to collecting the two
	// classes separately and stable-sorting each by icount.
	nPrim := 0
	for _, t := range c.ctxs {
		if t.isPrimary && eligible(t) {
			out = append(out, ctxCand{t: t})
			nPrim++
		}
	}
	for _, t := range c.ctxs {
		if !t.isPrimary && eligible(t) {
			out = append(out, ctxCand{t: t})
		}
	}
	for i := range out {
		t := out[i].t
		out[i].key = c.iqInt.CountCtx(t.id) + c.iqFP.CountCtx(t.id)
	}
	sortCandsStable(out, 0, nPrim)
	sortCandsStable(out, nPrim, len(out))
	c.cands = out
	return out
}

// nextFetched returns the thread's next renameable fetched entry,
// honouring stream ordering: pre-merge entries drain first; post-merge
// entries wait until the stream completes.
func (t *Context) nextFetched() (*fqEntry, bool) {
	if t.fqLen() == 0 {
		return nil, false
	}
	fe := t.fqAt(0)
	if t.stream != nil {
		if t.stream.preDrain == 0 {
			return nil, false // stream's turn
		}
	}
	if fe.postMerge {
		return nil, false
	}
	return fe, true
}

func (t *Context) popFetched() {
	t.fqPop()
	if t.stream != nil && t.stream.preDrain > 0 {
		t.stream.preDrain--
	}
}

// allocEntry performs the structural work shared by fetched and
// recycled rename: active-list slot, physical register, sources, and
// merge-point bookkeeping.  It returns nil when the thread must stall.
func (c *Core) allocEntry(t *Context, pc uint64, in isa.Inst) *alist.Entry {
	// Reserve queue space before allocating anything.
	needsIQ := in.Class() != isa.ClassNop && !in.IsHalt() && in.Op != isa.OpJ
	if needsIQ {
		q := c.iqInt
		if iq.ForClass(in.Class()) {
			q = c.iqFP
		}
		if q.Full() {
			c.Stats.IQFullStalls++
			c.noteStall(t, obs.CauseIQFull, pc)
			return nil
		}
	}
	var newMap regfile.PhysReg = regfile.NoReg
	if in.WritesReg() {
		r, ok := c.rf.Alloc(in.Rd.IsFP())
		if !ok {
			c.Stats.RenameStallRegs++
			c.noteStall(t, obs.CauseRenameRegs, pc)
			c.reclaimForRegs()
			return nil
		}
		newMap = r
	}
	e, evicted, ok := t.al.Push()
	if !ok {
		if newMap != regfile.NoReg {
			c.rf.Release(newMap)
		}
		c.Stats.RenameStallAL++
		c.noteStall(t, obs.CauseRenameAL, pc)
		return nil
	}
	if evicted != ^uint64(0) {
		t.mp.DropSeq(evicted)
		// Re-anchor the first-PC merge point at the new oldest entry.
		if fpc, ok := t.al.FirstPC(); ok {
			t.mp.SetFirst(fpc, t.al.FirstSeq())
		}
	}

	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageRename,
			Ctx: int16(t.id), Seq: e.Seq, PC: pc, Arg: uint64(in.Op)})
	}
	e.Ctx = t.id
	e.PC = pc
	e.Inst = in
	e.ReuseSrc = -1
	e.AltCtx = -1
	e.Src1, e.Src2 = t.entrySources(in)
	e.OldMap = regfile.NoReg
	e.NewMap = newMap
	if in.WritesReg() {
		e.OldMap = t.mapTab[in.Rd]
		t.mapTab[in.Rd] = newMap
	}

	// Merge-point bookkeeping (§3.2).
	if e.Seq == t.al.FirstSeq() {
		t.mp.SetFirst(pc, e.Seq)
	}
	// Backward control transfers (loop-closing branches and jumps)
	// establish the context's backward merge point when the loop head
	// is still retained: "only loops smaller than the current active
	// lists are able to benefit from the backward branch recycling."
	if (in.IsCondBranch() || in.Op == isa.OpJ) && in.Target < pc {
		if seq, found := t.al.FindPC(in.Target); found {
			t.mp.SetBack(in.Target, seq)
		}
	}

	c.Stats.Renamed++
	return e
}

// dispatch sends a renamed entry to its instruction queue (or marks it
// immediately executed when it needs no execution).
func (c *Core) dispatch(t *Context, e *alist.Entry) {
	in := e.Inst
	switch {
	case in.IsHalt(), in.Class() == isa.ClassNop, in.Op == isa.OpJ:
		// No execution required; direct jumps were fully resolved at
		// fetch.
		e.Executed = true
		e.ReadyAt = c.cycle
		if in.Op == isa.OpJ {
			e.Taken = true
			e.NextPC = in.Target
		}
		return
	}
	if e.NoIssue {
		return
	}
	q := c.iqInt
	if iq.ForClass(in.Class()) {
		q = c.iqFP
	}
	if !q.Push(e) {
		// Capacity was checked in allocEntry within the same cycle.
		panic("core: instruction queue overflow after reservation")
	}
	e.Dispatched = true
	if c.ptrace != nil {
		c.ptrace.OnQueue(e.Trace, c.cycle)
	}
	if in.IsStore() {
		t.sq.push(e.Seq)
	}
}

// renameFetched renames one fetched instruction; false means stall.
func (c *Core) renameFetched(t *Context, fe *fqEntry) bool {
	e := c.allocEntry(t, fe.pc, fe.inst)
	if e == nil {
		return false
	}
	e.Pred = fe.pred
	e.PredTaken = fe.predTaken
	e.PredTarget = fe.predTgt
	if c.ptrace != nil {
		e.Trace = c.ptrace.OnRename(c.cycle, t.id, e.Seq, e.PC, e.Inst, fe.fetchCycle, false)
	}
	if t.state == CtxDraining && c.feat.AltPolicy == config.AltFetch {
		// fetch-N policy: instructions fetched after resolution never
		// issue.
		e.NoIssue = true
	}
	c.markWritten(t, e, -1)
	c.dispatch(t, e)

	// TME fork decision (§2): primary threads fork low-confidence
	// conditional branches onto a spare context.
	if c.feat.TME && t.isPrimary && fe.inst.IsCondBranch() && !t.part.done {
		if !c.conf.HighConfidence(c.tagAddr(t.part.prog.idx, fe.pc), fe.pred.GHist) {
			c.tryFork(t, e)
		}
	}
	return true
}

// markWritten records a new register instance by the primary in the
// written bit-array.  reuseSrc >= 0 marks the reuse case, where the
// source context's own column stays clear (§3.5 discussion).
func (c *Core) markWritten(t *Context, e *alist.Entry, reuseSrc int) {
	if !e.Inst.WritesReg() || !t.isPrimary {
		return
	}
	if reuseSrc >= 0 {
		c.written.MarkWrittenExcept(e.Inst.Rd, t.part.mask, reuseSrc)
		c.written.ClearFor(e.Inst.Rd, reuseSrc)
	} else {
		c.written.MarkWritten(e.Inst.Rd, t.part.mask)
	}
}

// renameRecycled renames one stream item into t.  Branch predictions
// were resolved when the stream was built, so this is pure injection:
// allocate, attempt reuse, dispatch, and consider a TME fork.  Returns
// proceed=false when the stream ends after this item, stall=true when
// the thread hit a structural hazard and should retry next cycle.
func (c *Core) renameRecycled(t *Context, it *streamItem) (proceed, stall bool) {
	st := t.stream

	e := c.allocEntry(t, it.pc, it.inst)
	if e == nil {
		return true, true
	}
	e.Recycled = true
	e.Pred = it.pred
	e.PredTaken = it.pred.Taken
	e.PredTarget = it.pred.Target
	if c.ptrace != nil {
		e.Trace = c.ptrace.OnRename(c.cycle, t.id, e.Seq, e.PC, e.Inst, 0, true)
	}
	c.Stats.Recycled++
	if t.state == CtxDraining && c.feat.AltPolicy == config.AltFetch {
		e.NoIssue = true
	}

	// Instruction reuse (§3.5): alternate→primary only, never on
	// backward-branch recycling, and only for instructions that
	// actually executed with unchanged operands.
	reused := false
	if c.feat.Reuse && st.srcCtx >= 0 && !st.back && t.isPrimary {
		reused = c.tryReuse(t, e, st.srcCtx, it)
	}
	if reused {
		if c.ptrace != nil {
			c.ptrace.OnReuse(e.Trace, c.cycle)
		}
		c.markWritten(t, e, st.srcCtx)
	} else {
		c.markWritten(t, e, -1)
		c.dispatch(t, e)
	}

	if c.feat.TME && t.isPrimary && it.inst.IsCondBranch() && !t.part.done {
		if !c.conf.HighConfidence(c.tagAddr(t.part.prog.idx, it.pc), it.pred.GHist) {
			c.tryFork(t, e)
		}
	}
	return true, false
}

// tryReuse attempts to reuse the old result of a recycled instruction:
// "If none of the operands of a recycled instruction have been changed,
// and the instruction was actually executed, the old computed value can
// be reused.  We accomplish this by re-using the old register mapping."
func (c *Core) tryReuse(t *Context, e *alist.Entry, srcCtx int, it *streamItem) bool {
	src := c.ctxs[srcCtx]
	se, ok := src.al.At(it.srcSeq)
	if !ok || se.PC != it.pc || !se.Executed || se.NoIssue {
		return false
	}
	in := e.Inst
	if in.IsStore() {
		return false // stores must re-enter the store queue
	}
	// A reused instruction bypasses execution entirely, including
	// branch resolution; a branch may only be reused when its stored
	// outcome agrees with the prediction the stream assigned it (the
	// stream's final, truncated branch disagrees by construction and
	// must execute to trigger recovery).
	if in.IsBranch() && (se.Taken != e.PredTaken || (se.Taken && se.NextPC != e.PredTarget)) {
		return false
	}
	srcs, n := in.SrcRegs()
	for k := 0; k < n; k++ {
		if c.written.Changed(srcs[k], srcCtx) {
			return false
		}
	}
	// Exact safety check behind the bit-array filter: reuse is valid
	// precisely when the primary's current mappings are the same
	// physical registers the trace entry originally read (physical
	// registers are write-once while allocated, so mapping identity
	// implies value identity).
	if in.Rs1 != isa.RegZero && in.Rs1 != 0 {
		switch in.Op {
		case isa.OpNop, isa.OpHalt, isa.OpLi, isa.OpJ, isa.OpJal:
		default:
			if t.mapOf(in.Rs1) != se.Src1 {
				return false
			}
		}
	}
	if in.ReadsRs2() && in.Rs2 != isa.RegZero && t.mapOf(in.Rs2) != se.Src2 {
		return false
	}
	if in.IsLoad() {
		// Loads additionally require the MDB to prove no intervening
		// store touched the address.
		tagged := c.tagAddr(t.part.prog.idx, se.Addr)
		if !c.mdb.Reusable(c.tagAddr(t.part.prog.idx, se.PC), tagged) {
			return false
		}
		e.Addr = se.Addr
	}

	// Re-install the old mapping instead of the freshly allocated one.
	if in.WritesReg() {
		t.mapTab[in.Rd] = se.NewMap
		c.rf.AddRef(se.NewMap)
		c.rf.Release(e.NewMap) // drop the speculative fresh allocation
		e.NewMap = se.NewMap
	}
	e.Reused = true
	e.ReuseSrc = srcCtx
	e.Executed = true
	e.Result = se.Result
	e.ReadyAt = c.cycle
	if in.IsBranch() {
		e.Taken = se.Taken
		e.NextPC = se.NextPC
	}
	src.outstandingReuse++
	c.Stats.Reused++
	return true
}

// endStream finishes or aborts a thread's recycle stream.  abort drops
// the speculatively fetched post-stream instructions; completion
// releases them into the normal rename flow.
func (c *Core) endStream(t *Context, abort bool) {
	if t.stream == nil {
		return
	}
	if abort {
		t.fqClear()
		t.fetchHalted = false
	} else {
		for i := 0; i < t.fqLen(); i++ {
			t.fqAt(i).postMerge = false
		}
	}
	t.stream = nil
}
