package core

import (
	"strings"
	"testing"

	"recyclesim/internal/alist"
	"recyclesim/internal/config"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

// TestCosimInvariants runs the baseline machine with the full feature
// set and the runtime invariant checker enabled at a tight period, on
// two workloads, co-simulating against the emulator throughout.  A
// violation panics inside Cycle, so completing the run is the
// assertion.
func TestCosimInvariants(t *testing.T) {
	for _, bench := range []string{"go", "li"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			feat := config.RECRSRU
			feat.InvariantEvery = 4
			p, err := workload.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			c := cosim(t, config.Big216(), feat, []*program.Program{p}, 15_000)
			if rep := c.CheckInvariants(); !rep.OK() {
				t.Fatalf("final sweep: %s", rep.Error())
			}
		})
	}
}

// TestCosimInvariantsMultiprogram exercises the checker with multiple
// partitions sharing the register file and queues.
func TestCosimInvariantsMultiprogram(t *testing.T) {
	feat := config.RECRSRU
	feat.InvariantEvery = 8
	progs, err := workload.MixPrograms(workload.Mix(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	cosim(t, config.Big216(), feat, progs, 20_000)
}

// invariantCore builds a small running machine for corruption tests.
func invariantCore(t *testing.T) *Core {
	t.Helper()
	p, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(config.Big216(), config.RECRSRU, []*program.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2_000, 100_000)
	if rep := c.CheckInvariants(); !rep.OK() {
		t.Fatalf("machine unhealthy before corruption: %s", rep.Error())
	}
	return c
}

// expectViolation asserts that the sweep reports at least one violation
// of the given rule.
func expectViolation(t *testing.T, c *Core, rule string) {
	t.Helper()
	rep := c.CheckInvariants()
	for _, v := range rep.Violations {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("corruption not detected: want a %q violation, got %v", rule, rep.Violations)
}

// TestInvariantDetectsRefLeak: an extra reference on a mapped register
// (a lost Release) must show up as a refcount accounting mismatch.
func TestInvariantDetectsRefLeak(t *testing.T) {
	c := invariantCore(t)
	prim := c.ctxs[c.parts[0].primary]
	for l := 1; l < len(prim.mapTab); l++ {
		if prim.mapTab[l] >= 0 {
			c.rf.AddRef(prim.mapTab[l])
			break
		}
	}
	expectViolation(t, c, "refcount")
}

// TestInvariantDetectsReusePinDrift: a stray outstanding-reuse pin
// (the §3.5 reclaim guard counting wrong) must be caught.
func TestInvariantDetectsReusePinDrift(t *testing.T) {
	c := invariantCore(t)
	c.ctxs[1].outstandingReuse += 3
	expectViolation(t, c, "reuse")
}

// TestInvariantDetectsIdleResidue: an idle context still holding a
// register map is a reclaim bug.
func TestInvariantDetectsIdleResidue(t *testing.T) {
	c := invariantCore(t)
	var idle *Context
	for _, ctx := range c.ctxs {
		if ctx.state == CtxIdle {
			idle = ctx
			break
		}
	}
	if idle == nil {
		t.Skip("no idle context after warm-up")
	}
	idle.hasMap = true
	expectViolation(t, c, "idle")
}

// TestInvariantDetectsCommitDrift: an entry marked committed ahead of
// the commit pointer corrupts the active-list structure.
func TestInvariantDetectsCommitDrift(t *testing.T) {
	c := invariantCore(t)
	prim := c.ctxs[c.parts[0].primary]
	al := prim.al
	if al.CommitSeq() == al.TailSeq() {
		t.Skip("no uncommitted entries after warm-up")
	}
	e, _ := al.At(al.CommitSeq())
	e.Committed = true
	expectViolation(t, c, "alist")
}

// TestInvariantDetectsQueueDrop: a dispatched, issuable entry missing
// from both instruction queues would hang forever; the membership
// check must flag it.
func TestInvariantDetectsQueueDrop(t *testing.T) {
	c := invariantCore(t)
	dropped := false
	c.iqInt.RemoveIf(func(e *alist.Entry) bool {
		if !dropped {
			dropped = true
			return true
		}
		return false
	})
	if !dropped {
		t.Skip("integer queue empty after warm-up")
	}
	expectViolation(t, c, "iq")
}

// TestInvariantPanicsWithDump: the periodic in-Cycle check must panic
// with a cycle-stamped message and machine dump on violation.
func TestInvariantPanicsWithDump(t *testing.T) {
	c := invariantCore(t)
	c.invariantEvery = 1
	c.ctxs[0].outstandingReuse++
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Cycle did not panic on a corrupted machine")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, "invariant check failed at cycle") ||
			!strings.Contains(msg, "machine state at cycle") {
			t.Fatalf("panic message missing cycle stamp or dump:\n%s", msg)
		}
	}()
	c.Cycle()
}
