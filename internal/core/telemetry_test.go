package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"recyclesim/internal/config"
	"recyclesim/internal/obs"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

// TestStallAttributionIdentity checks the conservation law behind the
// stall breakdown on every workload and feature preset: each cycle
// charges exactly RenameWidth slot-cycles to some cause, so the causes
// must sum to Cycles x RenameWidth with nothing left on CauseNone.
func TestStallAttributionIdentity(t *testing.T) {
	feats := []struct {
		name string
		f    config.Features
	}{
		{"SMT", config.SMT},
		{"TME", config.TME},
		{"REC", config.REC},
		{"RECRS", config.RECRS},
		{"RECRU", config.RECRU},
	}
	for _, bench := range workload.Names {
		for _, ft := range feats {
			bench, ft := bench, ft
			t.Run(bench+"/"+ft.name, func(t *testing.T) {
				p, err := workload.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				c, err := New(config.Big216(), ft.f, []*program.Program{p})
				if err != nil {
					t.Fatal(err)
				}
				c.Obs.Hists = true
				c.Run(5_000, 300_000)
				want := c.Stats.Cycles * uint64(c.mach.RenameWidth)
				if got := c.Obs.TotalSlotCycles(); got != want {
					t.Errorf("slot-cycles %d, want Cycles(%d) x RenameWidth(%d) = %d",
						got, c.Stats.Cycles, c.mach.RenameWidth, want)
				}
				if n := c.Obs.SlotCycles[obs.CauseNone]; n != 0 {
					t.Errorf("%d slot-cycles charged to CauseNone", n)
				}
				if rep := c.CheckInvariants(); !rep.OK() {
					t.Errorf("invariants: %s", rep.Error())
				}
			})
		}
	}
}

// TestTelemetryDoesNotPerturbSimulation runs the same configuration
// with telemetry fully on (ring + histograms) and fully off and
// requires a byte-identical commit stream and identical cycle count:
// observation must never change the machine being observed.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	run := func(instrument bool) (*Core, []byte) {
		p, err := workload.ByName("li")
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(config.Big216(), config.RECRSRU, []*program.Program{p})
		if err != nil {
			t.Fatal(err)
		}
		if instrument {
			c.Obs.Hists = true
			c.SetRing(obs.NewRing(1024))
		}
		var buf bytes.Buffer
		c.CommitHook = func(ci CommitInfo) {
			fmt.Fprintf(&buf, "%d %x %x %v %v\n", ci.Ctx, ci.PC, ci.Result, ci.Taken, ci.Reused)
		}
		c.Run(10_000, 500_000)
		return c, buf.Bytes()
	}
	on, streamOn := run(true)
	off, streamOff := run(false)
	if !bytes.Equal(streamOn, streamOff) {
		t.Fatal("commit streams differ between telemetry on and off")
	}
	if on.Stats.Cycles != off.Stats.Cycles || on.Stats.Committed != off.Stats.Committed {
		t.Fatalf("timing drift: on=(%d cycles, %d committed) off=(%d cycles, %d committed)",
			on.Stats.Cycles, on.Stats.Committed, off.Stats.Cycles, off.Stats.Committed)
	}
}

// TestInvariantDumpIncludesFlightRecorder injects a fault into a
// machine carrying a flight recorder and requires the panic dump to
// include the recorded event tail — the recorder's whole purpose.
func TestInvariantDumpIncludesFlightRecorder(t *testing.T) {
	c := invariantCore(t)
	c.SetRing(obs.NewRing(256))
	c.invariantEvery = 1
	c.Run(200, 10_000) // populate the ring through live cycles
	c.ctxs[0].outstandingReuse++
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Cycle did not panic on a corrupted machine")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, "flight recorder") {
			t.Fatalf("panic dump missing flight-recorder section:\n%s", msg)
		}
		if !strings.Contains(msg, "commit") && !strings.Contains(msg, "rename") {
			t.Fatalf("flight-recorder section carries no events:\n%s", msg)
		}
	}()
	c.Cycle()
}
