package core

import (
	"recyclesim/internal/alist"
	"recyclesim/internal/bpred"
	"recyclesim/internal/isa"
	"recyclesim/internal/program"
	"recyclesim/internal/recycle"
	"recyclesim/internal/regfile"
)

// CtxState is a hardware context's lifecycle state.
type CtxState uint8

// Context states.  The recycle architecture's key addition over TME is
// CtxInactive: "An inactive context has finished executing, but the
// active list and registers have not been freed, making it available
// for recycling."
const (
	// CtxIdle: no thread; registers and active list free.
	CtxIdle CtxState = iota
	// CtxActive: executing the primary or an alternate path.
	CtxActive
	// CtxDraining: alternate whose forking branch resolved (correctly
	// predicted) but which continues fetching per the §5.2 fetch/nostop
	// policies until it hits the alternate-path instruction limit.
	CtxDraining
	// CtxInactive: finished executing; trace retained for recycling.
	CtxInactive
	// CtxRetiring: ex-primary draining its pre-fork instructions after
	// a mispredict promoted its alternate; no fetch, commits only.
	CtxRetiring
)

// String names the state for diagnostics.
func (s CtxState) String() string {
	switch s {
	case CtxIdle:
		return "idle"
	case CtxActive:
		return "active"
	case CtxDraining:
		return "draining"
	case CtxInactive:
		return "inactive"
	case CtxRetiring:
		return "retiring"
	}
	return "ctx?"
}

// fqEntry is one fetched, decoded instruction waiting for rename.
type fqEntry struct {
	pc        uint64
	inst      isa.Inst
	pred      bpred.Pred
	predTaken bool
	predTgt   uint64
	readyAt   uint64 // cycle it clears decode and may rename
	postMerge bool   // fetched beyond an in-progress recycle stream
}

// sqEntry is one in-flight store in a context's store queue.  Stores
// issue in two phases like real hardware: address generation as soon as
// the base register is ready (addrOK), data capture when the data
// register arrives (valOK).  Loads disambiguate against addrOK stores
// and forward only from valOK ones.
type sqEntry struct {
	seq    uint64
	addr   uint64
	val    uint64
	addrOK bool
	valOK  bool
}

// streamItem is one instruction of a recycle stream: a snapshot of an
// active-list entry taken when the merge was detected.  srcSeq points
// back at the live source entry so reuse can consult its current state.
//
// Branch items also carry the prediction assigned when the stream was
// built: the paper's merge mechanism runs the trace through the branch
// predictor up front ("the global history register used for branch
// prediction is then updated with that prediction"), stopping the
// stream at the first disagreement, so post-stream fetch sees a
// complete speculative history.
type streamItem struct {
	pc         uint64
	inst       isa.Inst
	srcSeq     uint64
	traceTaken bool   // direction the trace followed (branches)
	traceTgt   uint64 // target the trace followed (branches)
	pred       bpred.Pred
}

// recycleStream feeds snapshot instructions into a consumer thread's
// rename stage.
type recycleStream struct {
	items  []streamItem
	pos    int
	srcCtx int  // source context for reuse lookups; -1 disables reuse
	back   bool // backward-branch merge (reuse disallowed, §3.5)
	nextPC uint64
	// preDrain counts fetched instructions already queued ahead of the
	// stream; they must clear rename before stream items inject
	// ("subsequent instructions will come from the alternate active
	// list once the prior fetched instructions ... have cleared the
	// rename stage").
	preDrain int
	respawn  bool
}

func (s *recycleStream) done() bool { return s.pos >= len(s.items) }

// forkPath records per-alternate-path statistics accumulated between
// spawn and deletion (Table 1 columns 4-7).
type forkPath struct {
	live      bool
	usedTME   bool
	recycled  bool
	respawned bool
	merges    int
}

// Context is one hardware context of the SMT/TME machine.
type Context struct {
	id    int
	part  *Partition
	state CtxState

	isPrimary bool

	// Fetch state.
	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool
	altCapped       bool // alternate hit the path-length limit
	fq              []fqEntry

	// Rename state.
	hasMap bool
	mapTab [isa.NumRegs]regfile.PhysReg
	al     *alist.List
	mp     recycle.MergePoints

	// Store queue (program order, uncommitted stores).
	sq []sqEntry

	// Speculative ancestry: this context's first instruction follows
	// parent's entry parentSeq (the forking branch).  Commit is gated
	// until the parent commits that entry.
	parentCtx int
	parentSeq uint64

	// Alternate-path bookkeeping.
	pathLen  int    // instructions fetched down this alternate path
	spawnPC  uint64 // first PC of the path
	path     forkPath
	resolved bool // forking branch has resolved

	// Recycle consumption.
	stream *recycleStream

	// Reuse gating: uncommitted primary entries currently reusing this
	// context's register mappings (§3.5 reclaim constraint).
	outstandingReuse int

	lruTick uint64
}

func newContext(id int, alSize int) *Context {
	c := &Context{id: id, al: alist.New(alSize), parentCtx: -1}
	for i := range c.mapTab {
		c.mapTab[i] = regfile.NoReg
	}
	return c
}

// mapOf returns the physical mapping of a logical register (NoReg for
// the hardwired zero register).
func (t *Context) mapOf(r isa.Reg) regfile.PhysReg {
	if r == isa.RegZero {
		return regfile.NoReg
	}
	return t.mapTab[r]
}

// icount approximates the number of this context's instructions in the
// front half of the pipeline; the fetch and recycle priority policies
// order threads by it (§3.3).
func (t *Context) icount(inIQ int) int { return len(t.fq) + inIQ }

// fqRoom reports how many more fetched instructions fit.
func (t *Context) fqRoom(cap int) int { return cap - len(t.fq) }

// Partition is a group of contexts serving one program: one primary
// thread plus spare contexts for alternate paths (the MSB partitioning
// of §2).
type Partition struct {
	id      int
	prog    *loadedProgram
	primary int   // context id of the primary thread
	ctxIDs  []int // all contexts in this partition
	mask    uint16
	done    bool
}

// loadedProgram is one program plus its architectural memory and
// accounting.
type loadedProgram struct {
	idx       int
	prog      *program.Program
	mem       *program.Memory
	committed uint64
	halted    bool
}
