package core

import (
	"recyclesim/internal/alist"
	"recyclesim/internal/bpred"
	"recyclesim/internal/isa"
	"recyclesim/internal/program"
	"recyclesim/internal/recycle"
	"recyclesim/internal/regfile"
)

// CtxState is a hardware context's lifecycle state.
type CtxState uint8

// Context states.  The recycle architecture's key addition over TME is
// CtxInactive: "An inactive context has finished executing, but the
// active list and registers have not been freed, making it available
// for recycling."
const (
	// CtxIdle: no thread; registers and active list free.
	CtxIdle CtxState = iota
	// CtxActive: executing the primary or an alternate path.
	CtxActive
	// CtxDraining: alternate whose forking branch resolved (correctly
	// predicted) but which continues fetching per the §5.2 fetch/nostop
	// policies until it hits the alternate-path instruction limit.
	CtxDraining
	// CtxInactive: finished executing; trace retained for recycling.
	CtxInactive
	// CtxRetiring: ex-primary draining its pre-fork instructions after
	// a mispredict promoted its alternate; no fetch, commits only.
	CtxRetiring
)

// String names the state for diagnostics.
func (s CtxState) String() string {
	switch s {
	case CtxIdle:
		return "idle"
	case CtxActive:
		return "active"
	case CtxDraining:
		return "draining"
	case CtxInactive:
		return "inactive"
	case CtxRetiring:
		return "retiring"
	}
	return "ctx?"
}

// fqEntry is one fetched, decoded instruction waiting for rename.
type fqEntry struct {
	pc         uint64
	inst       isa.Inst
	pred       bpred.Pred
	predTaken  bool
	predTgt    uint64
	fetchCycle uint64 // cycle it entered the fetch queue (for pipetrace)
	readyAt    uint64 // cycle it clears decode and may rename
	postMerge  bool   // fetched beyond an in-progress recycle stream
}

// sqEntry is one in-flight store in a context's store queue.  Stores
// issue in two phases like real hardware: address generation as soon as
// the base register is ready (addrOK), data capture when the data
// register arrives (valOK).  Loads disambiguate against addrOK stores
// and forward only from valOK ones.
type sqEntry struct {
	seq    uint64
	addr   uint64
	val    uint64
	addrOK bool
	valOK  bool
}

// storeQueue holds a context's uncommitted stores in program (sequence)
// order as a ring: stores enter at the back at rename, retire from the
// front at commit, and squash from the back.  The ring never grows —
// uncommitted stores are bounded by the active-list capacity — so
// steady-state operation is allocation-free and commit is O(1) instead
// of the tail memmove a slice delete costs.
type storeQueue struct {
	ents []sqEntry
	head int
	n    int
}

func newStoreQueue(capacity int) storeQueue {
	return storeQueue{ents: make([]sqEntry, capacity)}
}

func (q *storeQueue) len() int { return q.n }

// at returns the i-th store in program order (0 = oldest).
func (q *storeQueue) at(i int) *sqEntry {
	return &q.ents[(q.head+i)%len(q.ents)]
}

// push appends a renamed store.  Rename allocates an active-list slot
// first, so the ring (sized to the active list) cannot be full here.
func (q *storeQueue) push(seq uint64) {
	if q.n == len(q.ents) {
		panic("core: store queue overflow")
	}
	*q.at(q.n) = sqEntry{seq: seq}
	q.n++
}

// popFront retires the oldest store.
func (q *storeQueue) popFront() {
	if q.n == 0 {
		panic("core: popFront on empty store queue")
	}
	q.head = (q.head + 1) % len(q.ents)
	q.n--
}

// find returns the store with the given sequence number, or nil.
func (q *storeQueue) find(seq uint64) *sqEntry {
	for i := 0; i < q.n; i++ {
		if s := q.at(i); s.seq == seq {
			return s
		}
	}
	return nil
}

// dropFrom removes every store with seq >= from (squash support; the
// ring is seq-ordered, so this pops from the back).
func (q *storeQueue) dropFrom(from uint64) {
	for q.n > 0 && q.at(q.n-1).seq >= from {
		q.n--
	}
}

// compact keeps only stores accepted by keep, preserving order
// (cancelIssue drops never-issuing stores from the middle).
func (q *storeQueue) compact(keep func(*sqEntry) bool) {
	w := 0
	for i := 0; i < q.n; i++ {
		s := q.at(i)
		if keep(s) {
			*q.at(w) = *s
			w++
		}
	}
	q.n = w
}

// clear empties the queue (context reclaim).
func (q *storeQueue) clear() { q.head, q.n = 0, 0 }

// streamItem is one instruction of a recycle stream: a snapshot of an
// active-list entry taken when the merge was detected.  srcSeq points
// back at the live source entry so reuse can consult its current state.
//
// Branch items also carry the prediction assigned when the stream was
// built: the paper's merge mechanism runs the trace through the branch
// predictor up front ("the global history register used for branch
// prediction is then updated with that prediction"), stopping the
// stream at the first disagreement, so post-stream fetch sees a
// complete speculative history.
type streamItem struct {
	pc         uint64
	inst       isa.Inst
	srcSeq     uint64
	traceTaken bool   // direction the trace followed (branches)
	traceTgt   uint64 // target the trace followed (branches)
	pred       bpred.Pred
}

// recycleStream feeds snapshot instructions into a consumer thread's
// rename stage.
type recycleStream struct {
	items  []streamItem
	pos    int
	srcCtx int  // source context for reuse lookups; -1 disables reuse
	back   bool // backward-branch merge (reuse disallowed, §3.5)
	nextPC uint64
	// preDrain counts fetched instructions already queued ahead of the
	// stream; they must clear rename before stream items inject
	// ("subsequent instructions will come from the alternate active
	// list once the prior fetched instructions ... have cleared the
	// rename stage").
	preDrain int
	respawn  bool
}

func (s *recycleStream) done() bool { return s.pos >= len(s.items) }

// forkPath records per-alternate-path statistics accumulated between
// spawn and deletion (Table 1 columns 4-7).
type forkPath struct {
	live       bool
	usedTME    bool
	recycled   bool
	respawned  bool
	merges     int
	spawnCycle uint64 // cycle the path was spawned (fork-lifetime telemetry)
}

// Context is one hardware context of the SMT/TME machine.
type Context struct {
	id    int
	part  *Partition
	state CtxState

	isPrimary bool

	// Fetch state.  The fetch queue is a fixed ring: pushes at fetch,
	// pops at rename, wholesale clears on squash — none of it
	// allocates.
	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool
	altCapped       bool // alternate hit the path-length limit
	fq              [fetchQueueCap]fqEntry
	fqHead          int
	fqN             int

	// Rename state.
	hasMap bool
	mapTab [isa.NumRegs]regfile.PhysReg
	al     *alist.List
	mp     recycle.MergePoints

	// Store queue (program order, uncommitted stores).
	sq storeQueue

	// Speculative ancestry: this context's first instruction follows
	// parent's entry parentSeq (the forking branch).  Commit is gated
	// until the parent commits that entry.
	parentCtx int
	parentSeq uint64

	// Alternate-path bookkeeping.
	pathLen  int    // instructions fetched down this alternate path
	spawnPC  uint64 // first PC of the path
	path     forkPath
	resolved bool // forking branch has resolved

	// Recycle consumption.  stream points at streamStore when live;
	// streamBuf is the context-owned scratch the stream's items live in
	// (one stream per consumer at a time, so both are safely reusable).
	stream      *recycleStream
	streamStore recycleStream
	streamBuf   []streamItem

	// Reuse gating: uncommitted primary entries currently reusing this
	// context's register mappings (§3.5 reclaim constraint).
	outstandingReuse int

	lruTick uint64
}

func newContext(id int, alSize int) *Context {
	c := &Context{
		id:        id,
		al:        alist.New(alSize),
		parentCtx: -1,
		sq:        newStoreQueue(alSize),
		streamBuf: make([]streamItem, 0, alSize),
	}
	for i := range c.mapTab {
		c.mapTab[i] = regfile.NoReg
	}
	return c
}

// mapOf returns the physical mapping of a logical register (NoReg for
// the hardwired zero register).
func (t *Context) mapOf(r isa.Reg) regfile.PhysReg {
	if r == isa.RegZero {
		return regfile.NoReg
	}
	return t.mapTab[r]
}

// icount approximates the number of this context's instructions in the
// front half of the pipeline; the fetch and recycle priority policies
// order threads by it (§3.3).
func (t *Context) icount(inIQ int) int { return t.fqN + inIQ }

// fqRoom reports how many more fetched instructions fit.
func (t *Context) fqRoom() int { return fetchQueueCap - t.fqN }

// fqLen returns the number of queued fetched instructions.
func (t *Context) fqLen() int { return t.fqN }

// fqAt returns the i-th queued instruction (0 = oldest).
func (t *Context) fqAt(i int) *fqEntry { return &t.fq[(t.fqHead+i)%fetchQueueCap] }

// fqPush appends a slot for one fetched instruction and returns it.
func (t *Context) fqPush() *fqEntry {
	if t.fqN == fetchQueueCap {
		panic("core: fetch queue overflow")
	}
	e := t.fqAt(t.fqN)
	t.fqN++
	return e
}

// fqPop drops the oldest queued instruction (it renamed).
func (t *Context) fqPop() {
	if t.fqN == 0 {
		panic("core: fqPop on empty fetch queue")
	}
	t.fqHead = (t.fqHead + 1) % fetchQueueCap
	t.fqN--
}

// fqClear empties the fetch queue (squash or context reclaim).
func (t *Context) fqClear() { t.fqHead, t.fqN = 0, 0 }

// Partition is a group of contexts serving one program: one primary
// thread plus spare contexts for alternate paths (the MSB partitioning
// of §2).
type Partition struct {
	id      int
	prog    *loadedProgram
	primary int   // context id of the primary thread
	ctxIDs  []int // all contexts in this partition
	mask    uint16
	done    bool
}

// loadedProgram is one program plus its architectural memory and
// accounting.
type loadedProgram struct {
	idx       int
	prog      *program.Program
	mem       *program.Memory
	committed uint64
	halted    bool
}
