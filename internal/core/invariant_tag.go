//go:build siminvariant

package core

// Building with -tags siminvariant turns the runtime invariant checker
// on by default (every 256 cycles) for every Core, without touching
// configuration code.  Features.InvariantEvery still takes precedence
// when set.
func init() {
	defaultInvariantEvery = 256
}
