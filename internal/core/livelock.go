package core

import (
	"fmt"

	"recyclesim/internal/obs"
)

const (
	// defaultWatchdogCycles is the forward-progress window used when
	// Features.WatchdogCycles is zero.  The longest legitimate commit
	// gap in the modelled machine is a few hundred cycles (a divide
	// behind a full miss chain to memory with bank skew); 50k cycles is
	// two orders of magnitude above that, so the watchdog cannot
	// misfire on a healthy run yet still cuts a livelocked one short
	// long before the MaxCycles backstop.
	defaultWatchdogCycles = 50_000

	// defaultPollEvery is the cancellation-poll cadence used when
	// SetPoll is given a non-positive period.  Coarse on purpose: one
	// closure call per 4096 cycles is invisible next to the cycle
	// loop's work, and cancellation latency of a few thousand simulated
	// cycles is milliseconds of wall time.
	defaultPollEvery = 4096
)

// LivelockError reports a forward-progress watchdog fire: the machine
// cycled for a full window without committing a single instruction
// while at least one program was still live.  It carries a structured
// diagnosis — the dominant rename-slot stall cause over the run so far
// and a cycle-stamped machine dump (including the flight-recorder tail
// when a ring is attached) — so the hang is debuggable from the error
// alone.
type LivelockError struct {
	// Cycle is the cycle the watchdog fired.
	Cycle uint64
	// Window is how many consecutive cycles passed without a commit.
	Window uint64
	// Committed is the total committed before progress stopped.
	Committed uint64
	// Dominant is the stall cause charged the most rename slot-cycles
	// over the run so far (the attribution of internal/obs).
	Dominant obs.Cause
	// Dump is the per-context machine state at the fire, in the same
	// format as the invariant checker's panic dump, with the flight
	// recorder's retained events appended when one is attached.
	Dump string
}

// Error implements error.
func (e *LivelockError) Error() string {
	return fmt.Sprintf("core: livelock: no instruction committed for %d cycles (at cycle %d, %d committed, dominant stall cause %s)\n%s",
		e.Window, e.Cycle, e.Committed, e.Dominant, e.Dump)
}

// livelockError builds the watchdog's diagnosis from the live machine.
func (c *Core) livelockError(window uint64) *LivelockError {
	return &LivelockError{
		Cycle:     c.cycle,
		Window:    window,
		Committed: c.Stats.Committed,
		Dominant:  c.dominantStall(),
		Dump:      c.dumpState(),
	}
}

// dominantStall returns the non-busy cause with the most rename
// slot-cycles charged over the run so far (ties resolve to the lowest
// cause index, deterministically).
func (c *Core) dominantStall() obs.Cause {
	best := obs.CauseNone
	var bestN uint64
	for cause := obs.CauseICacheMiss; cause < obs.NumCauses; cause++ {
		if n := c.Obs.SlotCycles[cause]; n > bestN {
			best, bestN = cause, n
		}
	}
	return best
}
