package core

import (
	"recyclesim/internal/config"
	"recyclesim/internal/isa"
	"recyclesim/internal/obs"
)

// ctxCand pairs a context with its precomputed priority key for the
// per-cycle fetch and rename thread orderings.
type ctxCand struct {
	t   *Context
	key int
}

// sortCandsStable insertion-sorts cands[lo:hi] by ascending key,
// preserving the relative order of equal keys.  Candidate counts are
// bounded by the context count, and unlike sort.SliceStable this
// allocates nothing.
func sortCandsStable(cands []ctxCand, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && cands[j].key < cands[j-1].key; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// fetch implements the ICOUNT.X.Y fetch stage with TME's primary-first
// priority and the recycling merge-point checks of §3.4: "Each cycle,
// when the primary thread prepares to fetch, it will compare its fetch
// PC ... with the merge points of itself and its alternate contexts.
// ... If the match is on the initial PC, then there is no need to fetch
// from the instruction cache for this thread, and another thread is
// sought for fetching."
func (c *Core) fetch() {
	cands := c.fetchCandidates()
	threads := 0
	width := c.mach.FetchWidth
	lineBytes := uint64(64)

	for _, cand := range cands {
		t := cand.t
		if threads >= c.mach.FetchThreads || width <= 0 {
			break
		}
		// Merge detection consumes no fetch slot.
		if c.feat.Recycle && t.stream == nil && c.tryMerge(t, t.fetchPC) {
			continue
		}

		threads++
		asid := t.part.prog.idx
		lat, hit := c.mem.AccessI(c.cycle, c.tagAddr(asid, t.fetchPC))
		if !hit {
			// I-cache miss: the thread's fetch stalls until the fill
			// completes; the slot is consumed.
			t.fetchStallUntil = c.cycle + uint64(lat)
			if c.ring != nil {
				c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageStall,
					Ctx: int16(t.id), Cause: obs.CauseICacheMiss, PC: t.fetchPC, Arg: uint64(lat)})
			}
			continue
		}
		readyAt := c.cycle + uint64(lat) + uint64(c.mach.FrontEndLat)

		pc := t.fetchPC
		line := pc / lineBytes
		n := 0
		merged := false
		for n < c.mach.FetchBlock && width > 0 && t.fqRoom() > 0 {
			if pc/lineBytes != line {
				break // cache-line boundary ends the block
			}
			// Mid-block merge: "instructions are fetched up to the
			// matching instruction, and recycling begins after it."
			if c.feat.Recycle && t.stream == nil && n > 0 && c.tryMerge(t, pc) {
				merged = true
				break
			}
			in := t.part.prog.prog.FetchInst(pc)
			if in.IsHalt() {
				t.pushFetch(c.cycle, pc, in, readyAt)
				t.fetchHalted = true
				n++
				width--
				if t.state == CtxDraining {
					// A draining alternate that runs into the end of
					// the program has nothing left to extend.
					c.makeInactive(t)
				}
				break
			}
			if c.altLimited(t, n) {
				break
			}
			if in.IsBranch() {
				pr := c.pred.Lookup(t.id, pc, in)
				if pr.BTBMiss {
					c.Stats.BTBMisses++
				}
				c.pred.SpecUpdate(t.id, in, pc, pr)
				fe := t.pushFetch(c.cycle, pc, in, readyAt)
				fe.pred = pr
				fe.predTaken = pr.Taken
				fe.predTgt = pr.Target
				n++
				width--
				if pr.Taken {
					pc = pr.Target
					break // a taken branch ends the fetch block
				}
				pc += isa.InstBytes
				continue
			}
			t.pushFetch(c.cycle, pc, in, readyAt)
			n++
			width--
			pc += isa.InstBytes
		}
		if c.ring != nil && n > 0 {
			c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageFetch,
				Ctx: int16(t.id), PC: t.fetchPC, Arg: uint64(n)})
		}
		if !merged {
			// (On a mid-block merge, startStream already pointed the
			// fetch PC past the recycled trace.)
			t.fetchPC = pc
		}
		if t.state == CtxActive && !t.isPrimary || t.state == CtxDraining {
			t.pathLen += n
			if t.pathLen >= c.feat.AltLimit {
				c.altPathCap(t)
			}
		}
		c.Stats.Fetched += uint64(n)
	}
}

// pushFetch appends one decoded instruction to the context's fetch
// queue; cycle stamps when it entered (the pipetrace fetch stage).
func (t *Context) pushFetch(cycle, pc uint64, in isa.Inst, readyAt uint64) *fqEntry {
	fe := t.fqPush()
	*fe = fqEntry{
		pc:         pc,
		inst:       in,
		fetchCycle: cycle,
		readyAt:    readyAt,
		postMerge:  t.stream != nil,
	}
	return fe
}

// altLimited reports whether an alternate path must stop fetching
// because it reached the §5.2 instruction limit.
func (c *Core) altLimited(t *Context, fetchedThisCycle int) bool {
	if t.isPrimary || t.state == CtxRetiring {
		return false
	}
	if !c.feat.TME {
		return false
	}
	return t.pathLen+fetchedThisCycle >= c.feat.AltLimit
}

// altPathCap transitions an alternate that hit its fetch limit: active
// alternates simply stop fetching; draining ones become inactive.
func (c *Core) altPathCap(t *Context) {
	switch t.state {
	case CtxActive:
		t.altCapped = true
	case CtxDraining:
		c.makeInactive(t)
	}
}

// fetchCandidates orders fetchable contexts: primary threads first by
// ICOUNT, then alternates by ICOUNT — the TME-modified ICOUNT policy
// of [18] referenced in §3.3.  The result lives in the core's reusable
// candidate scratch (valid until the next ordering is built).
func (c *Core) fetchCandidates() []ctxCand {
	cands := c.cands[:0]
	// Primaries first, then alternates, each segment in context order;
	// the stable per-segment sort below preserves those ties.
	nPrim := 0
	for _, t := range c.ctxs {
		if t.isPrimary && c.canFetch(t) {
			cands = append(cands, ctxCand{t: t})
			nPrim++
		}
	}
	for _, t := range c.ctxs {
		if !t.isPrimary && c.canFetch(t) {
			cands = append(cands, ctxCand{t: t})
		}
	}
	for i := range cands {
		t := cands[i].t
		cands[i].key = t.icount(c.iqInt.CountCtx(t.id) + c.iqFP.CountCtx(t.id))
	}
	sortCandsStable(cands, 0, nPrim)
	sortCandsStable(cands, nPrim, len(cands))
	c.cands = cands
	return cands
}

func (c *Core) canFetch(t *Context) bool {
	switch t.state {
	case CtxActive:
	case CtxDraining:
		// Only the fetch/nostop policies keep fetching after the
		// forking branch resolves.
		if c.feat.AltPolicy == config.AltStop {
			return false
		}
	default:
		return false
	}
	if t.part.done || t.fetchHalted || t.altCapped {
		return false
	}
	if t.fetchStallUntil > c.cycle {
		return false
	}
	return t.fqRoom() > 0
}

// tryMerge checks pc against the merge points visible to thread t and,
// on a hit, snapshots the matched trace into a recycle stream.  Primary
// threads see their spare contexts' first-PC points plus their own
// first-PC and backward points; other fetching threads see only their
// own backward point.
func (c *Core) tryMerge(t *Context, pc uint64) bool {
	if t.part.done {
		return false
	}
	// Spare contexts' traces (alternate or inactive), primaries only.
	if t.isPrimary {
		for _, id := range t.part.ctxIDs {
			src := c.ctxs[id]
			if src == t {
				continue
			}
			if src.state != CtxActive && src.state != CtxDraining && src.state != CtxInactive {
				continue
			}
			if seq, back, ok := src.mp.Match(pc); ok && !back {
				return c.startStream(t, src, seq, false)
			}
		}
		// The primary's own merge point: the backward-branch (loop)
		// point.  (The paper also stores a first-instruction PC per
		// context, but for a primary thread whose ring retains committed
		// history that point would trigger pathological whole-window
		// replays; the useful primary-to-primary case the paper reports
		// is the backward-branch one, so that is what we match.)
		if seq, back, ok := t.mp.Match(pc); ok && back {
			return c.startStream(t, t, seq, true)
		}
		return false
	}
	// Non-primary fetching threads check their own backward point only.
	if seq, back, ok := t.mp.Match(pc); ok && back {
		return c.startStream(t, t, seq, true)
	}
	return false
}

// startStream snapshots src's active list from seq to its tail into a
// recycle stream consumed by t.  It returns false when the trace is
// empty (nothing to recycle).
//
// The whole trace is run through t's branch predictor here: each branch
// item records its prediction and the speculative history/return-stack
// state advances as if the trace had been fetched.  At the first
// disagreement between the current prediction and the direction the
// trace followed, the stream is truncated after the disagreeing branch
// and fetch resumes on the newly predicted path (§3.4's chosen method).
func (c *Core) startStream(t, src *Context, seq uint64, back bool) bool {
	items := c.snapshotTrace(t, src, seq)
	if len(items) == 0 {
		return false
	}
	// Bound the injected trace to half the consumer's window so a
	// merge cannot wedge a small active list behind a wall of
	// deep-speculative recycled instructions (rename backpressure
	// handles the rest: stream items stall when the list is full).
	if max := t.al.Capacity() / 2; len(items) > max {
		items = items[:max]
	}
	srcCtx := src.id
	if src == t || back {
		srcCtx = -1 // reuse is alternate→primary only (§3.5)
	}
	stream := c.buildStream(t, items, srcCtx, back)
	stream.preDrain = t.fqLen()
	t.stream = stream
	if c.ring != nil {
		// Arg packs the post-truncation stream length (high bits) with
		// the source context (low 16); a backward merge is recognizable
		// by source == consumer.
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageMerge,
			Ctx: int16(t.id), Seq: seq, PC: items[0].pc,
			Arg: uint64(len(t.stream.items))<<16 | uint64(uint16(src.id))})
	}
	if c.ptrace != nil {
		c.pipeTrace(obs.StageMerge, t.id, items[0].pc, uint64(src.id))
	}
	// "Fetching immediately continues from where recycling will
	// complete."
	t.fetchPC = t.stream.nextPC
	t.fetchHalted = false

	c.Stats.Merges++
	if back {
		c.Stats.BackMerges++
	}
	if src != t {
		src.path.recycled = true
		src.path.merges++
		src.lruTick = c.cycle
	}
	return true
}

// buildStream runs a snapshotted trace through consumer t's branch
// predictor: every branch item records its prediction, the speculative
// history and return stack advance as if the trace had been fetched,
// and the stream truncates after the first branch whose current
// prediction disagrees with the trace, with fetch redirected to the
// newly predicted path.  The returned stream is the consumer's reused
// streamStore (a context consumes at most one stream at a time).
func (c *Core) buildStream(t *Context, items []streamItem, srcCtx int, back bool) *recycleStream {
	nextPC := traceNext(items[len(items)-1])
	for i := range items {
		it := &items[i]
		if !it.inst.IsBranch() {
			continue
		}
		pr := c.pred.Lookup(t.id, it.pc, it.inst)
		if c.feat.TrustTrace {
			// §3.4's former method: "the branch prediction previously
			// used for the recycled instructions can be used" — follow
			// the trace unconditionally and push its directions into
			// the history.
			pr.Taken = it.traceTaken
			if it.traceTaken {
				pr.Target = it.traceTgt
			}
			it.pred = pr
			c.pred.SpecUpdate(t.id, it.inst, it.pc, pr)
			continue
		}
		it.pred = pr
		mismatch := false
		if it.inst.IsCondBranch() {
			mismatch = pr.Taken != it.traceTaken
		} else if pr.Target != it.traceTgt {
			mismatch = true
		}
		c.pred.SpecUpdate(t.id, it.inst, it.pc, pr)
		if mismatch {
			items = items[:i+1]
			if pr.Taken {
				nextPC = pr.Target
			} else {
				nextPC = it.pc + isa.InstBytes
			}
			break
		}
	}
	t.streamStore = recycleStream{
		items:  items,
		srcCtx: srcCtx,
		back:   back,
		nextPC: nextPC,
	}
	if c.Obs.Hists {
		c.Obs.StreamLen.Observe(uint64(len(items)))
	}
	return &t.streamStore
}

// snapshotTrace copies src's retained active-list entries from seq to
// the tail into stream items, held in the consumer dst's reusable
// stream scratch (dst owns the resulting stream).
func (c *Core) snapshotTrace(dst, src *Context, seq uint64) []streamItem {
	items := dst.streamBuf[:0]
	for s := seq; s < src.al.TailSeq(); s++ {
		e, ok := src.al.At(s)
		if !ok {
			continue
		}
		it := streamItem{pc: e.PC, inst: e.Inst, srcSeq: e.Seq}
		if e.Inst.IsBranch() {
			it.traceTaken = e.TraceTaken()
			if e.Executed {
				it.traceTgt = e.NextPC
			} else if e.PredTaken {
				it.traceTgt = e.PredTarget
			} else {
				it.traceTgt = e.PC + isa.InstBytes
			}
			if !it.traceTaken {
				it.traceTgt = e.PC + isa.InstBytes
			}
		}
		items = append(items, it)
	}
	dst.streamBuf = items[:0] // retain the buffer if append ever grew it
	return items
}

// traceNext computes the PC following the last instruction of a trace.
func traceNext(last streamItem) uint64 {
	if last.inst.IsBranch() && last.traceTaken {
		return last.traceTgt
	}
	return last.pc + isa.InstBytes
}
