package core

import (
	"fmt"
	"strings"

	"recyclesim/internal/alist"
	"recyclesim/internal/invariant"
	"recyclesim/internal/iq"
	"recyclesim/internal/isa"
	"recyclesim/internal/obs"
	"recyclesim/internal/regfile"
	"recyclesim/internal/wheel"
)

// defaultInvariantEvery is the checker period used when
// Features.InvariantEvery is zero.  It stays zero (checker off) in
// normal builds; the siminvariant build tag overrides it (see
// invariant_tag.go).
var defaultInvariantEvery uint64 = 0

// CheckInvariants sweeps the machine's cross-structure invariants and
// returns the findings.  It is called periodically from Cycle when
// enabled, and directly (every cycle) by the stress tests.  The sweep
// is read-only.
//
// Checked invariants:
//
//   - register refcount conservation: the free lists and refcounts are
//     mutually consistent (no double-free, no referenced-but-free);
//   - refcount accounting: every register's refcount equals the number
//     of reachable holders — occurrences in live map tables plus
//     uncommitted active-list OldMaps — so nothing leaks or is freed
//     early;
//   - active-list structure: sequence pointers ordered, ring slots
//     self-consistent, committed flags matching the commit pointer;
//   - idle contexts hold no resources;
//   - instruction queue membership, both directions: everything queued
//     is a live un-issued entry, and every dispatched un-issued entry
//     is queued exactly once;
//   - completion coverage: every live issued-but-incomplete entry is
//     reachable through the completion wheel or the pending-store list
//     (the wheel's lazy deletion permits stale items, but never a lost
//     completion), and every wheel item is scheduled in the future;
//   - store-queue consistency with the active list;
//   - outstanding-reuse conservation: each context's pin count equals
//     the number of uncommitted reused entries naming it as source;
//   - written-bit coherence: a clear bit promises an unchanged mapping
//     (checked where the trace itself did not write the register);
//   - telemetry conservation: the rename slot-cycle attribution sums to
//     cycles × rename width with nothing charged to the null cause;
//   - pipetrace stage-sequence legality (when a pipetrace recorder is
//     attached): every recorded timeline is a legal path through the
//     pipeline DAG — recycled ⇒ no fetch stage, reused ⇒ no
//     queue/issue/writeback, squashed ⇔ not committed, stages in
//     program order (see checkPipeTrace).
//
// The sweep allocates (reports, scratch maps); it runs from the cycle
// loop only at the configured cadence, so it is declared off the
// steady-state budget with //recycle:coldpath.
//
//recycle:coldpath
func (c *Core) CheckInvariants() *invariant.Report {
	r := invariant.NewReport(c.cycle)
	c.checkRegfile(r)
	c.checkContexts(r)
	c.checkQueues(r)
	c.checkReuse(r)
	c.checkWrittenBits(r)
	c.checkTelemetry(r)
	c.checkPipeTrace(r)
	return r
}

// checkRegfile verifies free-list/refcount consistency and then full
// refcount accounting against the reachable holders.
func (c *Core) checkRegfile(r *invariant.Report) {
	if err := c.rf.CheckConservation(); err != nil {
		r.Failf("regfile", "%v", err)
	}
	n := c.rf.NumInt + c.rf.NumFP
	expected := make([]int32, n)
	for _, t := range c.ctxs {
		if t.hasMap {
			for l := 1; l < isa.NumRegs; l++ {
				if pr := t.mapTab[l]; pr != regfile.NoReg {
					expected[pr]++
				}
			}
		}
		for s := t.al.CommitSeq(); s < t.al.TailSeq(); s++ {
			e, ok := t.al.At(s)
			if !ok {
				continue
			}
			if e.OldMap != regfile.NoReg {
				expected[e.OldMap]++
			}
		}
	}
	for pr := 0; pr < n; pr++ {
		got := c.rf.Refs(regfile.PhysReg(pr))
		if got != int(expected[pr]) {
			r.Failf("refcount", "p%d has refcount %d but %d reachable holder(s) (map tables + uncommitted OldMaps): %s",
				pr, got, expected[pr], leakKind(got, int(expected[pr])))
		}
	}
}

func leakKind(got, want int) string {
	if got > want {
		return "leaked references"
	}
	return "premature release pending"
}

// checkContexts verifies active-list structure, idle-context hygiene,
// store-queue consistency, and partition primary sanity.
func (c *Core) checkContexts(r *invariant.Report) {
	for _, t := range c.ctxs {
		al := t.al
		if !(al.FirstSeq() <= al.CommitSeq() && al.CommitSeq() <= al.TailSeq()) {
			r.Failf("alist", "ctx=%d sequence pointers disordered: first=%d commit=%d tail=%d",
				t.id, al.FirstSeq(), al.CommitSeq(), al.TailSeq())
			continue
		}
		for s := al.FirstSeq(); s < al.TailSeq(); s++ {
			e, ok := al.At(s)
			if !ok {
				r.Failf("alist", "ctx=%d retained seq=%d not addressable", t.id, s)
				continue
			}
			if e.Seq != s {
				r.Failf("alist", "ctx=%d ring slot for seq=%d holds seq=%d", t.id, s, e.Seq)
			}
			if e.Ctx != t.id {
				r.Failf("alist", "ctx=%d seq=%d entry claims ctx=%d", t.id, s, e.Ctx)
			}
			if want := s < al.CommitSeq(); e.Committed != want {
				r.Failf("alist", "ctx=%d seq=%d Committed=%v but commit pointer is %d", t.id, s, e.Committed, al.CommitSeq())
			}
		}

		if t.state == CtxIdle {
			switch {
			case al.Len() != 0:
				r.Failf("idle", "ctx=%d idle with %d retained active-list entries", t.id, al.Len())
			case t.hasMap:
				r.Failf("idle", "ctx=%d idle but still holds a register map", t.id)
			case t.outstandingReuse != 0:
				r.Failf("idle", "ctx=%d idle with outstandingReuse=%d", t.id, t.outstandingReuse)
			case t.fqLen() != 0 || t.sq.len() != 0 || t.stream != nil:
				r.Failf("idle", "ctx=%d idle with fetch/store/stream state", t.id)
			case t.isPrimary:
				r.Failf("idle", "ctx=%d idle but marked primary", t.id)
			}
			continue
		}

		// Store queue: ordered, and every slot names a live uncommitted
		// store.  Conversely every dispatched, issuable, uncommitted
		// store must have a slot (cancelIssue drops slots only for
		// NoIssue stores without a generated address).
		for i := 0; i < t.sq.len(); i++ {
			s := t.sq.at(i)
			if i > 0 && t.sq.at(i-1).seq >= s.seq {
				r.Failf("storeq", "ctx=%d store queue out of order at slot %d (seq %d after %d)",
					t.id, i, s.seq, t.sq.at(i-1).seq)
			}
			e, ok := al.At(s.seq)
			if !ok || !e.Inst.IsStore() || e.Committed {
				r.Failf("storeq", "ctx=%d store-queue slot seq=%d has no live uncommitted store entry", t.id, s.seq)
			}
		}
		for s := al.CommitSeq(); s < al.TailSeq(); s++ {
			e, _ := al.At(s)
			if e == nil || !e.Inst.IsStore() || !e.Dispatched || e.NoIssue {
				continue
			}
			if t.sq.find(s) == nil {
				r.Failf("storeq", "ctx=%d dispatched store seq=%d missing from store queue", t.id, s)
			}
		}
	}

	for _, p := range c.parts {
		if p.done {
			continue
		}
		t := c.ctxs[p.primary]
		switch {
		case !t.isPrimary:
			r.Failf("primary", "partition %d primary ctx=%d not marked primary (state=%v)", p.id, t.id, t.state)
		case t.state != CtxActive:
			r.Failf("primary", "partition %d primary ctx=%d in state %v", p.id, t.id, t.state)
		case !t.hasMap:
			r.Failf("primary", "partition %d primary ctx=%d has no register map", p.id, t.id)
		}
	}
}

// checkQueues verifies instruction-queue membership in both directions
// and the liveness of the exec and pending-store lists.
func (c *Core) checkQueues(r *invariant.Report) {
	inQueue := map[*alist.Entry]string{}
	audit := func(name string, q *iq.Queue) {
		q.Each(func(e *alist.Entry) {
			if prev, dup := inQueue[e]; dup {
				r.Failf("iq", "ctx=%d seq=%d queued twice (%s and %s)", e.Ctx, e.Seq, prev, name)
			}
			inQueue[e] = name
			t := c.ctxs[e.Ctx]
			live, ok := t.al.At(e.Seq)
			switch {
			case !ok || live != e:
				r.Failf("iq", "%s holds stale entry ctx=%d seq=%d (squashed or recycled slot)", name, e.Ctx, e.Seq)
			case e.Committed:
				r.Failf("iq", "%s holds committed entry ctx=%d seq=%d", name, e.Ctx, e.Seq)
			case !e.Dispatched || e.Issued || e.Executed:
				r.Failf("iq", "%s entry ctx=%d seq=%d has inconsistent flags (disp=%v issued=%v exec=%v)",
					name, e.Ctx, e.Seq, e.Dispatched, e.Issued, e.Executed)
			}
		})
	}
	audit("iqInt", c.iqInt)
	audit("iqFP", c.iqFP)

	for _, t := range c.ctxs {
		for s := t.al.CommitSeq(); s < t.al.TailSeq(); s++ {
			e, _ := t.al.At(s)
			if e == nil || !e.Dispatched || e.Issued || e.Executed || e.NoIssue {
				continue
			}
			if _, ok := inQueue[e]; !ok {
				r.Failf("iq", "ctx=%d seq=%d dispatched and issuable but in no instruction queue", t.id, s)
			}
		}
	}

	// Completion coverage.  The wheel deletes lazily — squashed entries
	// leave stale items behind by design, so staleness is NOT a failure
	// here.  What must hold instead: (a) every wheel item is filed for a
	// future cycle (a past-due item would never be drained again and its
	// completion would be lost); (b) every live issued-but-incomplete
	// entry is covered — reachable via a wheel item for itself or parked
	// in pendingSt — else it never completes.
	covered := map[*alist.Entry]bool{}
	c.exec.Each(func(it wheel.Item) {
		e := it.E
		if it.Due <= c.cycle {
			r.Failf("exec", "wheel item ctx=%d seq=%d due cycle %d not after current cycle %d",
				e.Ctx, e.Seq, it.Due, c.cycle)
		}
		t := c.ctxs[e.Ctx]
		if live, ok := t.al.At(e.Seq); ok && live == e {
			covered[e] = true
		}
	})
	for _, e := range c.pendingSt {
		t := c.ctxs[e.Ctx]
		live, ok := t.al.At(e.Seq)
		switch {
		case !ok || live != e:
			r.Failf("exec", "pendingSt holds stale entry ctx=%d seq=%d", e.Ctx, e.Seq)
		case !e.Issued || e.Executed:
			r.Failf("exec", "pendingSt entry ctx=%d seq=%d has inconsistent flags (issued=%v exec=%v)",
				e.Ctx, e.Seq, e.Issued, e.Executed)
		case !e.Inst.IsStore():
			r.Failf("exec", "pendingSt holds non-store ctx=%d seq=%d", e.Ctx, e.Seq)
		}
		covered[e] = true
	}
	for _, t := range c.ctxs {
		for s := t.al.CommitSeq(); s < t.al.TailSeq(); s++ {
			e, _ := t.al.At(s)
			if e == nil || !e.Issued || e.Executed {
				continue
			}
			if !covered[e] {
				r.Failf("exec", "ctx=%d seq=%d issued but covered by neither the completion wheel nor pendingSt", t.id, s)
			}
		}
	}
}

// checkReuse verifies outstanding-reuse conservation: each context's
// pin count equals the number of uncommitted reused entries anywhere
// that name it as their source (§3.5's reclaim constraint depends on
// this counter being exact).
func (c *Core) checkReuse(r *invariant.Report) {
	counts := make([]int, len(c.ctxs))
	for _, t := range c.ctxs {
		for s := t.al.CommitSeq(); s < t.al.TailSeq(); s++ {
			e, _ := t.al.At(s)
			if e == nil || !e.Reused {
				continue
			}
			if e.ReuseSrc < 0 || e.ReuseSrc >= len(c.ctxs) {
				r.Failf("reuse", "ctx=%d seq=%d reused with invalid source %d", t.id, s, e.ReuseSrc)
				continue
			}
			counts[e.ReuseSrc]++
		}
	}
	for _, t := range c.ctxs {
		if t.outstandingReuse != counts[t.id] {
			r.Failf("reuse", "ctx=%d outstandingReuse=%d but %d uncommitted reused entries name it as source",
				t.id, t.outstandingReuse, counts[t.id])
		}
	}
}

// checkWrittenBits verifies written-bit coherence after reuse: for a
// non-primary context a, a clear bit (reg, a) promises the primary has
// not re-instanced reg since a's path started.  Where a's own trace
// also never wrote reg, both map tables must therefore still agree
// (they were identical at fork).  Cases the bit-array handles
// conservatively (promotion's SetAll, reuse's ClearFor on a register
// the trace wrote) are excluded by the preconditions.
func (c *Core) checkWrittenBits(r *invariant.Report) {
	for _, p := range c.parts {
		prim := c.ctxs[p.primary]
		if !prim.isPrimary || !prim.hasMap {
			continue // reported by checkContexts when unexpected
		}
		for _, id := range p.ctxIDs {
			a := c.ctxs[id]
			if a == prim || a.state == CtxIdle || a.state == CtxRetiring || !a.hasMap {
				continue
			}
			wrote := ctxWroteRegs(a)
			for l := 1; l < isa.NumRegs; l++ {
				if wrote[l] || c.written.Changed(isa.Reg(l), a.id) {
					continue
				}
				if prim.mapTab[l] != a.mapTab[l] {
					r.Failf("written", "reg r%d: bit clear for ctx=%d yet primary ctx=%d maps p%d while ctx maps p%d",
						l, a.id, prim.id, prim.mapTab[l], a.mapTab[l])
				}
			}
		}
	}
}

// ctxWroteRegs returns, per logical register, whether any retained
// entry of t writes it (one active-list scan per sweep).
func ctxWroteRegs(t *Context) [isa.NumRegs]bool {
	var wrote [isa.NumRegs]bool
	for s := t.al.FirstSeq(); s < t.al.TailSeq(); s++ {
		if e, ok := t.al.At(s); ok && e.Inst.WritesReg() {
			wrote[e.Inst.Rd] = true
		}
	}
	return wrote
}

// checkTelemetry verifies the stall-attribution identity: every rename
// slot of every elapsed cycle was charged to exactly one real cause, so
// the attribution array sums to cycles × rename width and the null
// cause holds nothing.  (attributeSlots establishes this at the end of
// each Cycle; a violation means a rename path updated slot counts
// without flowing through it.)
func (c *Core) checkTelemetry(r *invariant.Report) {
	total := c.Obs.TotalSlotCycles()
	want := c.cycle * uint64(c.mach.RenameWidth)
	if total != want {
		r.Failf("telemetry", "slot-cycle attribution sums to %d but cycles(%d) x rename width(%d) = %d",
			total, c.cycle, c.mach.RenameWidth, want)
	}
	if n := c.Obs.SlotCycles[obs.CauseNone]; n != 0 {
		r.Failf("telemetry", "%d slot-cycles charged to the null cause", n)
	}
}

// dumpState renders a cycle-stamped snapshot of the machine for the
// invariant panic message.  Only a failing run reaches it
// (//recycle:coldpath).
//
//recycle:coldpath
func (c *Core) dumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine state at cycle %d:\n", c.cycle)
	fmt.Fprintf(&b, "  regfile: int free %d/%d, fp free %d/%d\n",
		c.rf.FreeCount(false), c.rf.NumInt, c.rf.FreeCount(true), c.rf.NumFP)
	fmt.Fprintf(&b, "  iq: int %d/%d, fp %d/%d; wheel=%d pendingSt=%d\n",
		c.iqInt.Len(), c.iqInt.Capacity(), c.iqFP.Len(), c.iqFP.Capacity(),
		c.exec.Len(), len(c.pendingSt))
	for _, t := range c.ctxs {
		if t.state == CtxIdle {
			fmt.Fprintf(&b, "  ctx=%d idle\n", t.id)
			continue
		}
		fmt.Fprintf(&b, "  ctx=%d state=%v prim=%v parent=%d/%d al=[%d,%d,%d) fq=%d sq=%d reusePins=%d stream=%v pc=0x%x\n",
			t.id, t.state, t.isPrimary, t.parentCtx, t.parentSeq,
			t.al.FirstSeq(), t.al.CommitSeq(), t.al.TailSeq(),
			t.fqLen(), t.sq.len(), t.outstandingReuse, t.stream != nil, t.fetchPC)
	}
	for _, p := range c.parts {
		fmt.Fprintf(&b, "  part=%d primary=%d done=%v mask=%04x\n", p.id, p.primary, p.done, p.mask)
	}
	if c.ring != nil && c.ring.Len() > 0 {
		fmt.Fprintf(&b, "flight recorder (last %d of %d events):\n", c.ring.Len(), c.ring.Total())
		for _, e := range c.ring.Events() {
			fmt.Fprintf(&b, "  %s\n", e.String())
		}
	}
	return b.String()
}
