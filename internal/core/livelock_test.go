package core

import (
	"errors"
	"strings"
	"testing"

	"recyclesim/internal/config"
	"recyclesim/internal/obs"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

func watchdogCore(t *testing.T, feat config.Features) *Core {
	t.Helper()
	p, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(config.Big216(), feat, []*program.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWatchdogFiresOnNoProgress sets a one-cycle forward-progress
// window so the front-end fill latency alone trips the watchdog, and
// checks the structured diagnosis: a typed *LivelockError carrying the
// fire cycle, the silent window, and a machine dump that includes the
// flight-recorder tail when a ring is attached.
func TestWatchdogFiresOnNoProgress(t *testing.T) {
	feat := config.RECRSRU
	feat.WatchdogCycles = 1
	c := watchdogCore(t, feat)
	c.SetRing(obs.NewRing(64))
	s, err := c.Run(10_000, 1_000_000)
	if err == nil {
		t.Fatal("watchdog with a 1-cycle window did not fire")
	}
	var ll *LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("error is %T, want *LivelockError: %v", err, err)
	}
	if ll.Window < 1 {
		t.Errorf("window %d, want >= 1", ll.Window)
	}
	if ll.Cycle == 0 || ll.Cycle != c.CycleCount() {
		t.Errorf("fire cycle %d does not match core cycle %d", ll.Cycle, c.CycleCount())
	}
	if ll.Committed != c.Stats.Committed {
		t.Errorf("error committed %d, stats %d", ll.Committed, c.Stats.Committed)
	}
	if ll.Dump == "" || !strings.Contains(ll.Dump, "machine state at cycle") {
		t.Errorf("missing machine dump: %q", ll.Dump)
	}
	if !strings.Contains(err.Error(), "livelock") {
		t.Errorf("error text %q does not say livelock", err.Error())
	}
	if s == nil {
		t.Error("watchdog fire must still return the partial stats")
	}
}

// TestWatchdogCountsCommitGapsNotCycles: the window restarts on every
// commit, so a window far smaller than the run length must not fire on
// a healthy workload that commits steadily.
func TestWatchdogCountsCommitGapsNotCycles(t *testing.T) {
	feat := config.RECRSRU
	feat.WatchdogCycles = 2_000 // far below run length, far above any real commit gap
	c := watchdogCore(t, feat)
	s, err := c.Run(20_000, 900_000)
	if err != nil {
		t.Fatalf("watchdog misfired on a healthy run: %v", err)
	}
	if s.Committed < 20_000 {
		t.Fatalf("committed %d, want 20000", s.Committed)
	}
}

// TestWatchdogOffSentinel: config.WatchdogOff disables the check even
// where a small window would have fired (the startup fill gap).
func TestWatchdogOffSentinel(t *testing.T) {
	feat := config.RECRSRU
	feat.WatchdogCycles = config.WatchdogOff
	c := watchdogCore(t, feat)
	if _, err := c.Run(5_000, 300_000); err != nil {
		t.Fatalf("run with watchdog disabled returned %v", err)
	}
}

// TestPollStopsRun: an installed poll is called on the configured
// cycle cadence, its first non-nil error stops the run at exactly that
// cycle, and the partial statistics survive.
func TestPollStopsRun(t *testing.T) {
	errStop := errors.New("stop requested")
	c := watchdogCore(t, config.RECRSRU)
	calls := 0
	c.SetPoll(256, func() error {
		calls++
		if calls == 3 {
			return errStop
		}
		return nil
	})
	s, err := c.Run(1_000_000, 10_000_000)
	if !errors.Is(err, errStop) {
		t.Fatalf("err = %v, want %v", err, errStop)
	}
	if calls != 3 {
		t.Errorf("poll called %d times, want 3", calls)
	}
	if c.CycleCount() != 3*256 {
		t.Errorf("stopped at cycle %d, want %d (poll cadence is simulated cycles)", c.CycleCount(), 3*256)
	}
	if s == nil || s.Committed == 0 {
		t.Error("partial stats missing after poll stop")
	}
}

// TestPollDefaultCadence: SetPoll(0, ...) falls back to the package
// default rather than polling every cycle or never.
func TestPollDefaultCadence(t *testing.T) {
	c := watchdogCore(t, config.RECRSRU)
	calls := 0
	c.SetPoll(0, func() error { calls++; return nil })
	if _, err := c.Run(5_000, 300_000); err != nil {
		t.Fatal(err)
	}
	want := int(c.CycleCount() / defaultPollEvery)
	if calls != want {
		t.Errorf("poll called %d times over %d cycles, want %d (every %d)",
			calls, c.CycleCount(), want, defaultPollEvery)
	}
}

// TestDominantStallDeterministic: the watchdog diagnosis names a stall
// cause from the attribution table, never a busy cause, and repeated
// fires on the same configuration agree.
func TestDominantStallDeterministic(t *testing.T) {
	run := func() obs.Cause {
		feat := config.RECRSRU
		feat.WatchdogCycles = 1
		c := watchdogCore(t, feat)
		_, err := c.Run(10_000, 1_000_000)
		var ll *LivelockError
		if !errors.As(err, &ll) {
			t.Fatalf("no livelock: %v", err)
		}
		return ll.Dominant
	}
	first := run()
	if first == obs.CauseBusyFetch || first == obs.CauseRecycle {
		t.Errorf("dominant stall %v is a busy cause", first)
	}
	if again := run(); again != first {
		t.Errorf("dominant stall not deterministic: %v vs %v", first, again)
	}
}
