package core

import (
	"recyclesim/internal/alist"
	"recyclesim/internal/config"
	"recyclesim/internal/isa"
	"recyclesim/internal/obs"
	"recyclesim/internal/regfile"
)

// tryFork spawns an alternate path for a low-confidence conditional
// branch renamed by primary thread t.  The alternate takes the
// direction the prediction did not: "A TME processor uses idle hardware
// contexts ... to execute down both paths at conditional branch
// points."
func (c *Core) tryFork(t *Context, e *alist.Entry) {
	altPC := e.Inst.Target
	if e.PredTaken {
		altPC = e.PC + isa.InstBytes
	}

	// Re-spawning (§3.1): if an inactive context already holds a trace
	// starting at the alternate PC, re-activate it through the recycle
	// datapath instead of consuming a fresh context and fetch
	// bandwidth.
	if c.feat.Respawn && c.feat.Recycle {
		if a := c.findInactiveAt(t, altPC); a != nil {
			c.respawn(t, e, a, altPC)
			return
		}
	}

	a := c.allocSpare(t)
	if a == nil {
		c.Stats.ForkFailNoCtx++
		return
	}
	c.activateAlternate(t, e, a, altPC, nil)
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageFork,
			Ctx: int16(t.id), Seq: e.Seq, PC: e.PC, Arg: uint64(a.id)})
	}
	if c.ptrace != nil {
		c.pipeTrace(obs.StageFork, t.id, e.PC, uint64(a.id))
	}
	c.Stats.Forks++
}

// findInactiveAt locates an inactive context in t's partition whose
// stored trace starts at pc.
func (c *Core) findInactiveAt(t *Context, pc uint64) *Context {
	for _, id := range t.part.ctxIDs {
		a := c.ctxs[id]
		if a.state != CtxInactive || !a.mp.FirstValid || a.mp.FirstPC != pc {
			continue
		}
		// §3.5's reclaim constraint applies to re-spawning too: the
		// respawn squashes and rebuilds the trace, which would strand
		// the primary's uncommitted reuses of its registers (their
		// commit-time unpinning would hit the replacement path's pin
		// count).  Fall back to a normal spawn on another context.
		if a.outstandingReuse > 0 {
			continue
		}
		return a
	}
	return nil
}

// allocSpare finds a context for a new alternate path: an idle context
// if one exists, otherwise the least-recently-used inactive context is
// reclaimed ("the architecture identifies the least-recently-used
// inactive context and reclaims it, squashing the instructions in the
// active list and freeing the registers").
func (c *Core) allocSpare(t *Context) *Context {
	for _, id := range t.part.ctxIDs {
		a := c.ctxs[id]
		if a.state == CtxIdle {
			return a
		}
	}
	var lru *Context
	for _, id := range t.part.ctxIDs {
		a := c.ctxs[id]
		// Inactive traces are the normal victims; a draining context
		// (resolved wrong path still extending its trace) is also fair
		// game — a new fork is worth more than the tail of a trace.
		if a.state != CtxInactive && a.state != CtxDraining {
			continue
		}
		// §3.5: do not reclaim while the primary still has uncommitted
		// reuses of this trace's registers.
		if a.outstandingReuse > 0 {
			c.Stats.ForkFailReuse++
			continue
		}
		if lru == nil || a.lruTick < lru.lruTick {
			lru = a
		}
	}
	if lru != nil {
		c.Stats.Reclaims++
		if c.ring != nil {
			c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageReclaim,
				Ctx: int16(lru.id), PC: lru.spawnPC})
		}
		c.killContext(lru)
		return lru
	}
	return nil
}

// activateAlternate sets up context a as the alternate path of branch e
// in primary t.  stream, when non-nil, re-spawns the context through
// the recycle datapath instead of fetching.
func (c *Core) activateAlternate(t *Context, e *alist.Entry, a *Context, altPC uint64, stream *recycleStream) {
	a.state = CtxActive
	a.isPrimary = false
	a.parentCtx = t.id
	a.parentSeq = e.Seq
	a.fetchPC = altPC
	a.spawnPC = altPC
	a.pathLen = 0
	a.altCapped = false
	a.resolved = false
	a.fetchHalted = false
	a.fetchStallUntil = 0
	a.stream = stream
	a.path = forkPath{live: true, spawnCycle: c.cycle}

	// Duplicate the register map (the MSB makes this free in hardware:
	// "we can duplicate register state simply by duplicating the first
	// context's register map").
	for l := 1; l < isa.NumRegs; l++ {
		a.mapTab[l] = t.mapTab[l]
		if a.mapTab[l] != regfile.NoReg {
			c.rf.AddRef(a.mapTab[l])
		}
	}
	a.hasMap = true

	// Branch prediction state follows the primary, with the forked
	// branch's opposite direction shifted into the history.
	c.pred.CopyContext(a.id, t.id)
	hist := e.Pred.GHist<<1 | 1
	if e.PredTaken {
		hist = e.Pred.GHist << 1
	}
	c.pred.ForceHist(a.id, hist&0x7FF)

	// A fresh path resets the written-bit column (§3.5).
	c.written.ResetContext(a.id)

	e.Forked = true
	e.AltCtx = a.id
}

// respawn re-activates an inactive context whose trace starts at the
// requested alternate PC: "it is re-spawned via recycling, without
// consuming fetch bandwidth."
func (c *Core) respawn(t *Context, e *alist.Entry, a *Context, altPC uint64) {
	items := c.snapshotTrace(a, a, a.al.FirstSeq())
	if len(items) == 0 {
		// Degenerate trace; fall back to a normal spawn on it.
		c.killContext(a)
		c.activateAlternate(t, e, a, altPC, nil)
		c.Stats.Forks++
		return
	}
	c.killContext(a)
	// Activate first (seeding a's predictor state from the primary),
	// then run the trace through a's predictor to assign per-branch
	// predictions, exactly as a fetch-side merge would.
	c.activateAlternate(t, e, a, altPC, nil)
	stream := c.buildStream(a, items, -1 /* re-executing its own trace: no reuse */, false)
	stream.respawn = true
	a.stream = stream
	a.fetchPC = stream.nextPC
	a.path.respawned = true
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageRespawn,
			Ctx: int16(t.id), Seq: e.Seq, PC: e.PC, Arg: uint64(a.id)})
	}
	if c.ptrace != nil {
		c.pipeTrace(obs.StageRespawn, t.id, e.PC, uint64(a.id))
	}
	c.Stats.Forks++
	c.Stats.Respawns++
	c.Stats.Merges++
}

// reclaimForRegs frees physical registers under rename pressure by
// reclaiming the globally least-recently-used inactive context.
// Recycling "puts additional pressure on the renaming registers" (§4.1)
// and this is the pressure valve.
func (c *Core) reclaimForRegs() {
	var lru *Context
	for _, a := range c.ctxs {
		if a.state != CtxInactive || a.outstandingReuse > 0 {
			continue
		}
		if lru == nil || a.lruTick < lru.lruTick {
			lru = a
		}
	}
	if lru != nil {
		c.Stats.Reclaims++
		if c.ring != nil {
			c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageReclaim,
				Ctx: int16(lru.id), PC: lru.spawnPC, Cause: obs.CauseRenameRegs})
		}
		c.killContext(lru)
	}
}

// resolveBranch handles a completed control transfer: misprediction
// recovery, TME promotion, and the transition of alternates to
// inactive.
func (c *Core) resolveBranch(t *Context, e *alist.Entry) {
	in := e.Inst
	correct := e.Taken == e.PredTaken && (!e.Taken || e.NextPC == e.PredTarget)
	if in.IsCondBranch() {
		correct = e.Taken == e.PredTaken
		if t.isPrimary {
			c.Stats.CondBranches++
			if !correct {
				c.Stats.Mispredicts++
				if e.Forked {
					c.Stats.CoveredMiss++
				}
			}
		}
	} else if in.IsReturn() && t.isPrimary {
		if correct {
			c.Stats.ReturnPredOK++
		} else {
			c.Stats.ReturnPredBad++
		}
	}

	if e.Forked {
		a := c.ctxs[e.AltCtx]
		// The alternate may already have been killed by an older
		// squash; verify linkage.
		if a.state == CtxIdle || a.parentCtx != t.id || a.parentSeq != e.Seq {
			e.Forked = false
		} else if correct {
			// Predicted path confirmed: the alternate stops.  With
			// recycling it is kept for future merges; plain TME
			// squashes it immediately.
			if c.feat.Recycle {
				c.resolveAlternate(a)
			} else {
				c.killContext(a)
			}
		} else {
			c.promote(t, e, a)
			return
		}
	}

	if !correct {
		// Conventional misprediction recovery within this context.
		c.squashFrom(t.id, e.Seq+1)
		c.pred.Restore(t.id, in, e.Pred, e.Taken)
		t.fetchPC = e.NextPC
		t.fetchStallUntil = c.cycle + redirectPenalty
		t.fetchHalted = false
		t.altCapped = false
		switch t.state {
		case CtxDraining, CtxInactive:
			// An alternate past its resolution mispredicting inside
			// its own path simply stops extending the trace.
			c.makeInactive(t)
		case CtxRetiring:
			// An ex-primary hit an unforked mispredict OLDER than the
			// branch that dethroned it: the promotion consumed a
			// wrong-path fork (just squashed, killing the promoted
			// thread), so this context is the correct path again and
			// resumes as the primary.
			t.state = CtxActive
			t.isPrimary = true
			t.part.primary = t.id
			c.written.SetAll(t.part.mask)
			if c.ring != nil {
				c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StageReinstate,
					Ctx: int16(t.id), Seq: e.Seq, PC: e.PC})
			}
		}
	}
}

// resolveAlternate transitions a confirmed-wrong alternate path
// according to the §5.2 policy.
func (c *Core) resolveAlternate(a *Context) {
	a.resolved = true
	a.lruTick = c.cycle
	switch c.feat.AltPolicy {
	case config.AltStop:
		c.cancelIssue(a)
		c.makeInactive(a)
	case config.AltFetch:
		// Fetch may continue to the limit, but nothing more issues.
		c.cancelIssue(a)
		if a.pathLen >= c.feat.AltLimit || a.altCapped || a.fetchHalted {
			c.makeInactive(a)
		} else {
			a.state = CtxDraining
		}
	case config.AltNoStop:
		if a.pathLen >= c.feat.AltLimit || a.altCapped || a.fetchHalted {
			c.makeInactive(a)
		} else {
			a.state = CtxDraining
		}
	}
}

// cancelIssue removes a context's un-issued instructions from the
// queues; they remain in the active list as recyclable (never-executed)
// trace entries.
func (c *Core) cancelIssue(a *Context) {
	match := func(e *alist.Entry) bool {
		if e.Ctx != a.id || e.Issued {
			return false
		}
		e.NoIssue = true
		return true
	}
	c.iqInt.RemoveIf(match)
	c.iqFP.RemoveIf(match)
	// Never-issuing stores must not block loads; drop their queue slots.
	a.sq.compact(func(s *sqEntry) bool {
		if s.addrOK {
			return true
		}
		if ent, ok := a.al.At(s.seq); ok && ent.NoIssue {
			return false
		}
		return true
	})
}

// makeInactive parks a finished alternate as recyclable trace storage.
func (c *Core) makeInactive(a *Context) {
	if a.state == CtxInactive {
		return
	}
	a.state = CtxInactive
	a.lruTick = c.cycle
	a.fqClear()
	a.stream = nil
	a.fetchHalted = false
	// Issue cancellation is policy-specific and happens in
	// resolveAlternate; under nostop, already-queued instructions of
	// an inactive trace still execute ("send all of those instructions
	// to the instruction queue to be scheduled for execution").
}

// promote makes alternate a the primary thread after its forking branch
// mispredicted: "the alternate path thread becomes the primary thread."
// The old primary squashes everything younger than the branch and
// drains its remaining (correct, pre-branch) instructions.
func (c *Core) promote(t *Context, e *alist.Entry, a *Context) {
	// Squashing t beyond the branch also kills alternates forked from
	// the squashed wrong-path region.
	c.squashFrom(t.id, e.Seq+1)

	t.isPrimary = false
	t.state = CtxRetiring
	t.fetchHalted = true
	c.finishPath(t) // no-op unless t itself was once an alternate

	a.isPrimary = true
	a.altCapped = false
	a.resolved = true
	if a.state == CtxDraining || a.state == CtxInactive {
		a.state = CtxActive
	}
	a.path.usedTME = true
	c.finishPath(a)
	t.part.primary = a.id
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle, Stage: obs.StagePromote,
			Ctx: int16(t.id), Seq: e.Seq, PC: e.PC, Arg: uint64(a.id)})
	}

	// The promoted thread's alternate-path writes were never recorded
	// in the written bit-array (only primaries set bits), so every
	// retained trace in the partition must be treated as stale.
	c.written.SetAll(t.part.mask)

	// Correct-path history for the promoted thread was already seeded
	// at fork time.  The branch predictor trains at commit.

	// Reset the written-bit columns of the partition's other alternate
	// paths?  No: their paths are unchanged; only a's column becomes
	// meaningless now that a IS the primary.  Future forks reset
	// columns at spawn.
}
