// Package alist implements the per-context active lists of the SMT/TME
// processor.  An active list is the context's in-order record of
// renamed instructions (a reorder buffer in other terminology), and in
// the recycling architecture it does double duty as trace storage: per
// §2 of the paper each entry holds the decoded instruction and both the
// old register mapping (freed when the entry commits) and the new
// mapping (freed when the entry is squashed), plus the execution state
// recycling and reuse need.
//
// Entries are retained after commit until the ring needs the slot, so
// the primary thread's own recent history is available for
// backward-branch (loop) recycling — "only loops smaller than the
// current active lists are able to benefit from the backward branch
// recycling."
package alist

import (
	"recyclesim/internal/bpred"
	"recyclesim/internal/isa"
	"recyclesim/internal/regfile"
)

// Entry is one renamed instruction.  It is identified by (context,
// Seq); Seq increases by one per rename in the owning context and
// doubles as the ring index.
type Entry struct {
	Ctx  int
	Seq  uint64
	PC   uint64
	Inst isa.Inst

	// Renaming state.
	NewMap regfile.PhysReg // destination mapping (NoReg when no dest)
	OldMap regfile.PhysReg // displaced mapping, freed at commit
	Src1   regfile.PhysReg // physical source for Rs1 (NoReg => constant zero)
	Src2   regfile.PhysReg // physical source for Rs2

	// Status flags.
	Committed  bool
	Dispatched bool // entered the instruction queue
	Issued     bool
	Executed   bool
	Reused     bool // bypassed issue/execute via instruction reuse
	Recycled   bool // entered rename through the recycle datapath
	NoIssue    bool // alternate-path policy cancelled execution

	// Execution results.
	Result uint64
	Addr   uint64 // effective address for memory operations
	Taken  bool   // resolved branch direction
	NextPC uint64 // resolved next PC

	// Branch prediction state carried for recovery and training.
	Pred       bpred.Pred
	PredTaken  bool
	PredTarget uint64

	// TME forking.
	Forked bool
	AltCtx int

	// ReuseSrc is the context whose trace supplied a reused result
	// (-1 when the entry is not reused).
	ReuseSrc int

	// Trace is the pipetrace handle assigned at rename (0 when the
	// entry is untraced; see internal/obs/pipetrace).  Push's slot
	// reset clears it, so recycled ring slots never inherit a stale
	// handle.
	Trace int32

	// Timing.
	ReadyAt uint64 // cycle the result becomes available (once Executed)
}

// TraceTaken returns the direction this entry's branch follows in the
// stored trace: the resolved direction when it executed, otherwise the
// prediction it was fetched under.  Recycling compares the current
// prediction against this to decide whether to keep following the
// trace (§3.4's "latter method").
func (e *Entry) TraceTaken() bool {
	if e.Executed {
		return e.Taken
	}
	return e.PredTaken
}

// List is one context's active list: a ring of Capacity entries
// addressed by absolute sequence number.
//
//	start  — oldest retained entry (committed entries linger here)
//	commit — oldest uncommitted entry
//	tail   — next sequence number to be allocated
type List struct {
	cap   int
	ents  []Entry
	start uint64
	cmt   uint64
	tail  uint64
}

// New returns an empty active list with the given capacity.
func New(capacity int) *List {
	return &List{cap: capacity, ents: make([]Entry, capacity)}
}

// Capacity returns the ring size.
func (l *List) Capacity() int { return l.cap }

// Reset empties the list completely (context reclaim).
func (l *List) Reset() {
	l.start, l.cmt, l.tail = 0, 0, 0
}

func (l *List) slot(seq uint64) *Entry { return &l.ents[seq%uint64(l.cap)] }

// Push allocates the next entry, evicting the oldest retained-committed
// entry if the ring is full of history.  It fails (nil, false) when the
// ring is full of uncommitted entries.  evictedSeq reports the sequence
// number of a dropped retained entry (^uint64(0) when none), which the
// owner uses to invalidate merge points into that entry.
func (l *List) Push() (e *Entry, evictedSeq uint64, ok bool) {
	evictedSeq = ^uint64(0)
	if l.tail-l.start == uint64(l.cap) {
		if l.cmt == l.start {
			return nil, evictedSeq, false // full of live entries
		}
		evictedSeq = l.start
		l.start++
	}
	e = l.slot(l.tail)
	*e = Entry{Seq: l.tail}
	l.tail++
	return e, evictedSeq, true
}

// At returns the entry with the given sequence number if it is still
// retained (committed history included).
func (l *List) At(seq uint64) (*Entry, bool) {
	if seq < l.start || seq >= l.tail {
		return nil, false
	}
	return l.slot(seq), true
}

// Head returns the oldest uncommitted entry.
func (l *List) Head() (*Entry, bool) {
	if l.cmt == l.tail {
		return nil, false
	}
	return l.slot(l.cmt), true
}

// CommitHead marks the oldest uncommitted entry committed and advances
// the commit pointer past it (the entry is retained as history).
func (l *List) CommitHead() {
	if l.cmt == l.tail {
		panic("alist: CommitHead on empty window")
	}
	l.slot(l.cmt).Committed = true
	l.cmt++
}

// SquashFrom removes every uncommitted entry with Seq >= seq, youngest
// first, invoking undo for each so the caller can restore mappings and
// release registers.  Entries older than the commit pointer are never
// touched.
func (l *List) SquashFrom(seq uint64, undo func(*Entry)) {
	if seq < l.cmt {
		seq = l.cmt
	}
	for s := l.tail; s > seq; s-- {
		undo(l.slot(s - 1))
	}
	l.tail = seq
	if l.start > l.tail {
		l.start = l.tail
	}
}

// SquashAll removes every uncommitted entry (youngest first) and then
// clears retained history; used when a context is reclaimed.
func (l *List) SquashAll(undo func(*Entry)) {
	l.SquashFrom(l.cmt, undo)
	l.start = l.tail
	l.cmt = l.tail
}

// FirstSeq returns the sequence number of the oldest retained entry.
func (l *List) FirstSeq() uint64 { return l.start }

// CommitSeq returns the sequence number of the oldest uncommitted entry.
func (l *List) CommitSeq() uint64 { return l.cmt }

// TailSeq returns the next sequence number to be allocated.
func (l *List) TailSeq() uint64 { return l.tail }

// InFlight returns the number of uncommitted entries.
func (l *List) InFlight() int { return int(l.tail - l.cmt) }

// Len returns the number of retained entries (committed history plus
// the uncommitted window).
func (l *List) Len() int { return int(l.tail - l.start) }

// FirstPC returns the PC of the first retained instruction, the merge
// point §3.2 stores with each hardware context.  ok is false for an
// empty list.
func (l *List) FirstPC() (uint64, bool) {
	if l.tail == l.start {
		return 0, false
	}
	return l.slot(l.start).PC, true
}

// FindPC searches retained entries oldest-first for the given PC and
// returns its sequence number; used to establish backward-branch merge
// points when a loop branch enters the list.
func (l *List) FindPC(pc uint64) (uint64, bool) {
	for s := l.start; s < l.tail; s++ {
		if l.slot(s).PC == pc {
			return s, true
		}
	}
	return 0, false
}
