package alist

import (
	"testing"
	"testing/quick"

	"recyclesim/internal/isa"
)

func push(t *testing.T, l *List, pc uint64) *Entry {
	t.Helper()
	e, _, ok := l.Push()
	if !ok {
		t.Fatal("push failed")
	}
	e.PC = pc
	return e
}

func TestPushCommitRetain(t *testing.T) {
	l := New(4)
	for i := 0; i < 4; i++ {
		push(t, l, uint64(0x1000+4*i))
	}
	if _, _, ok := l.Push(); ok {
		t.Fatal("push into a full window should fail")
	}
	l.CommitHead()
	// Now a push evicts the retained committed entry.
	e, evicted, ok := l.Push()
	if !ok || evicted != 0 {
		t.Fatalf("push after commit: ok=%v evicted=%d", ok, evicted)
	}
	if e.Seq != 4 {
		t.Errorf("seq = %d", e.Seq)
	}
	if l.FirstSeq() != 1 {
		t.Errorf("first seq = %d", l.FirstSeq())
	}
}

func TestAtBounds(t *testing.T) {
	l := New(4)
	push(t, l, 0x1000)
	if _, ok := l.At(0); !ok {
		t.Error("entry 0 should be retained")
	}
	if _, ok := l.At(1); ok {
		t.Error("entry 1 does not exist")
	}
}

func TestSquashFrom(t *testing.T) {
	l := New(8)
	for i := 0; i < 6; i++ {
		push(t, l, uint64(i))
	}
	l.CommitHead()
	l.CommitHead()
	var undone []uint64
	l.SquashFrom(3, func(e *Entry) { undone = append(undone, e.Seq) })
	if len(undone) != 3 || undone[0] != 5 || undone[2] != 3 {
		t.Errorf("undone = %v (want youngest-first 5,4,3)", undone)
	}
	if l.TailSeq() != 3 || l.InFlight() != 1 {
		t.Errorf("tail=%d inflight=%d", l.TailSeq(), l.InFlight())
	}
	// Squashing below the commit point must not touch committed entries.
	undone = nil
	l.SquashFrom(0, func(e *Entry) { undone = append(undone, e.Seq) })
	if len(undone) != 1 || undone[0] != 2 {
		t.Errorf("undone = %v (committed entries must survive)", undone)
	}
}

func TestSquashAll(t *testing.T) {
	l := New(8)
	for i := 0; i < 5; i++ {
		push(t, l, uint64(i))
	}
	l.CommitHead()
	n := 0
	l.SquashAll(func(*Entry) { n++ })
	if n != 4 {
		t.Errorf("squashed %d, want 4 (uncommitted only)", n)
	}
	if l.Len() != 0 || l.InFlight() != 0 {
		t.Errorf("list not empty after SquashAll: len=%d", l.Len())
	}
	// Sequence numbering resumes from the squash point (the committed
	// prefix was dropped from retention, so the tail rewinds to the
	// oldest squashed sequence).
	e, _, _ := l.Push()
	if e.Seq != l.TailSeq()-1 || e.Seq != 1 {
		t.Errorf("seq after squash-all = %d", e.Seq)
	}
}

func TestFirstPCAndFindPC(t *testing.T) {
	l := New(4)
	if _, ok := l.FirstPC(); ok {
		t.Error("empty list has no first PC")
	}
	push(t, l, 0x1000)
	push(t, l, 0x1004)
	push(t, l, 0x1000) // loop back
	if pc, _ := l.FirstPC(); pc != 0x1000 {
		t.Errorf("first pc = 0x%x", pc)
	}
	if seq, ok := l.FindPC(0x1000); !ok || seq != 0 {
		t.Errorf("FindPC oldest = %d, %v", seq, ok)
	}
	if _, ok := l.FindPC(0x2000); ok {
		t.Error("found nonexistent pc")
	}
}

func TestTraceTaken(t *testing.T) {
	e := Entry{Inst: isa.Inst{Op: isa.OpBeq}, PredTaken: true}
	if !e.TraceTaken() {
		t.Error("unexecuted branch should report its prediction")
	}
	e.Executed = true
	e.Taken = false
	if e.TraceTaken() {
		t.Error("executed branch should report its outcome")
	}
}

func TestHeadAndCommitSeq(t *testing.T) {
	l := New(4)
	if _, ok := l.Head(); ok {
		t.Error("empty list has no head")
	}
	push(t, l, 1)
	push(t, l, 2)
	h, _ := l.Head()
	if h.Seq != 0 {
		t.Errorf("head seq = %d", h.Seq)
	}
	l.CommitHead()
	h, _ = l.Head()
	if h.Seq != 1 || l.CommitSeq() != 1 {
		t.Errorf("head seq = %d commitSeq = %d", h.Seq, l.CommitSeq())
	}
	if !mustAt(l, 0).Committed {
		t.Error("committed entry should be flagged")
	}
}

func mustAt(l *List, seq uint64) *Entry {
	e, ok := l.At(seq)
	if !ok {
		panic("missing entry")
	}
	return e
}

// Property: after any interleaving of pushes, commits and squashes, the
// invariants first <= commit <= tail and Len == tail-first hold, and
// every retained seq is addressable.
func TestRingInvariants(t *testing.T) {
	fn := func(ops []uint8) bool {
		l := New(8)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				l.Push()
			case 2:
				if l.InFlight() > 0 {
					l.CommitHead()
				}
			case 3:
				if l.InFlight() > 0 {
					l.SquashFrom(l.CommitSeq()+uint64(op)%uint64(l.InFlight()), func(*Entry) {})
				}
			}
			if l.FirstSeq() > l.CommitSeq() || l.CommitSeq() > l.TailSeq() {
				return false
			}
			if l.Len() != int(l.TailSeq()-l.FirstSeq()) || l.Len() > l.Capacity() {
				return false
			}
			for s := l.FirstSeq(); s < l.TailSeq(); s++ {
				if e, ok := l.At(s); !ok || e.Seq != s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
