package workload

import (
	"testing"

	"recyclesim/internal/emu"
)

func TestAllBenchmarksValidate(t *testing.T) {
	for name, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("program name %q under key %q", p.Name, name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestMixesEvenCoverage(t *testing.T) {
	for _, n := range []int{2, 4} {
		counts := CoverageCheck(n)
		want := 8 * n / len(Names)
		for _, b := range Names {
			if counts[b] != want {
				t.Errorf("n=%d: %s appears %d times, want %d", n, b, counts[b], want)
			}
		}
	}
}

func TestMixShape(t *testing.T) {
	for k := 0; k < 8; k++ {
		m := Mix(k, 4)
		if len(m) != 4 {
			t.Fatalf("mix size %d", len(m))
		}
		seen := map[string]bool{}
		for _, b := range m {
			if seen[b] {
				t.Errorf("mix %d repeats %s", k, b)
			}
			seen[b] = true
		}
	}
}

func TestMixProgramsResolve(t *testing.T) {
	progs, err := MixPrograms(Mix(0, 4))
	if err != nil || len(progs) != 4 {
		t.Fatalf("%v %d", err, len(progs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultGenParams(7))
	b := Generate(DefaultGenParams(7))
	if len(a.Code) != len(b.Code) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	c := Generate(DefaultGenParams(8))
	if len(a.Code) == len(c.Code) {
		same := true
		for i := range a.Code {
			if a.Code[i] != c.Code[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical programs")
		}
	}
}

func TestGenerateRuns(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		p := Generate(DefaultGenParams(seed))
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := emu.New(p)
		e.Run(20_000)
		if e.Halted {
			t.Errorf("seed %d halted unexpectedly", seed)
		}
	}
}

func TestGenerateTerminatingHalts(t *testing.T) {
	p := GenerateTerminating(3, 100)
	e := emu.New(p)
	e.Run(1_000_000)
	if !e.Halted {
		t.Fatal("terminating program did not halt")
	}
	if e.Retired < 100 {
		t.Errorf("retired only %d", e.Retired)
	}
}

func TestBenchmarkMispredictCharacter(t *testing.T) {
	// The relative branch-predictability ordering is what drives the
	// paper's per-benchmark results; pin it with a simple static
	// predictor proxy: last-direction-per-PC hit rate.
	rate := func(name string) float64 {
		p, _ := ByName(name)
		e := emu.New(p)
		last := map[uint64]bool{}
		miss, total := 0, 0
		for i := 0; i < 60_000; i++ {
			info := e.Step()
			if !info.Inst.IsCondBranch() {
				continue
			}
			total++
			if prev, ok := last[info.PC]; ok && prev != info.Taken {
				miss++
			}
			last[info.PC] = info.Taken
		}
		return float64(miss) / float64(total)
	}
	hostile := (rate("go") + rate("gcc")) / 2
	benign := (rate("vortex") + rate("su2cor") + rate("perl")) / 3
	if hostile < 2*benign {
		t.Errorf("branchy benchmarks (%.3f) should mispredict far more than predictable ones (%.3f)",
			hostile, benign)
	}
	if benign > 0.10 {
		t.Errorf("predictable benchmarks mispredict too much: %.3f", benign)
	}
}
