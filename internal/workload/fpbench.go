package workload

import (
	"math"

	"recyclesim/internal/asm"
	"recyclesim/internal/program"
)

// Su2cor models the quantum-physics FP code: tight inner loops of
// fadd/fmul chains over vectors with near-perfect branch prediction.
// TME gains nothing; backward-branch (primary-to-primary) recycling is
// where its benefit comes from, as the paper notes for the FP codes.
func Su2cor() *program.Program {
	b := asm.NewBuilder("su2cor")
	g := newLCG(0x52)

	const vecN = 1024
	va := make([]uint64, vecN)
	vb := make([]uint64, vecN)
	for i := range va {
		va[i] = math.Float64bits(float64(g.below(1000)) / 997.0)
		vb[i] = math.Float64bits(float64(g.below(1000)) / 991.0)
	}
	b.Array("va", vecN, va...)
	b.Array("vb", vecN, vb...)
	b.Array("vc", vecN)

	b.La(asm.R(20), "va")
	b.La(asm.R(21), "vb")
	b.La(asm.R(22), "vc")
	b.Li(asm.R(1), 8*vecN)
	// Materialize the FP mixing constant through memory once.
	b.Word("half", math.Float64bits(0.5))
	b.La(asm.R(3), "half")
	b.Fld(asm.F(9), asm.R(3), 0)

	b.Label("pass")
	b.Li(asm.R(10), 0)
	b.Label("inner")
	b.Add(asm.R(4), asm.R(20), asm.R(10))
	b.Fld(asm.F(1), asm.R(4), 0)
	b.Add(asm.R(5), asm.R(21), asm.R(10))
	b.Fld(asm.F(2), asm.R(5), 0)
	// c[i] = 0.5*(a[i]*b[i]) + a[i]
	b.Fmul(asm.F(3), asm.F(1), asm.F(2))
	b.Fmul(asm.F(4), asm.F(3), asm.F(9))
	b.Fadd(asm.F(5), asm.F(4), asm.F(1))
	b.Add(asm.R(6), asm.R(22), asm.R(10))
	b.Fst(asm.F(5), asm.R(6), 0)
	// a[i] relaxes toward c[i]
	b.Fadd(asm.F(6), asm.F(1), asm.F(5))
	b.Fmul(asm.F(7), asm.F(6), asm.F(9))
	b.Fst(asm.F(7), asm.R(4), 0)
	b.Addi(asm.R(10), asm.R(10), 8)
	b.Blt(asm.R(10), asm.R(1), "inner") // predictable backward branch
	b.J("pass")
	return b.MustBuild()
}

// Tomcatv models the vectorized mesh generator: nested predictable
// loops over a 2-D grid with longer FP dependence chains.  Its branch
// prediction accuracy is so high that TME's coverage in the paper is
// 3.5% — it forks almost nothing — making it the control case.
func Tomcatv() *program.Program {
	b := asm.NewBuilder("tomcatv")
	g := newLCG(0x70)

	const dim = 32 // dim*dim grid
	grid := make([]uint64, dim*dim)
	for i := range grid {
		grid[i] = math.Float64bits(float64(g.below(512))/256.0 - 1.0)
	}
	b.Array("x", dim*dim, grid...)
	b.Array("y", dim*dim)
	b.Word("quarter", math.Float64bits(0.25))

	b.La(asm.R(20), "x")
	b.La(asm.R(21), "y")
	b.La(asm.R(1), "quarter")
	b.Fld(asm.F(9), asm.R(1), 0)
	b.Li(asm.R(2), dim-2)

	b.Label("iterate")
	b.Li(asm.R(10), 1) // row
	b.Label("row")
	b.Li(asm.R(11), 1) // col
	b.Label("col")
	// idx = row*dim + col
	b.Slli(asm.R(3), asm.R(10), 5)
	b.Add(asm.R(3), asm.R(3), asm.R(11))
	b.Slli(asm.R(3), asm.R(3), 3)
	b.Add(asm.R(4), asm.R(20), asm.R(3))
	// 4-point stencil
	b.Fld(asm.F(1), asm.R(4), -8)
	b.Fld(asm.F(2), asm.R(4), 8)
	b.Fld(asm.F(3), asm.R(4), -(8 * dim))
	b.Fld(asm.F(4), asm.R(4), 8*dim)
	b.Fadd(asm.F(5), asm.F(1), asm.F(2))
	b.Fadd(asm.F(6), asm.F(3), asm.F(4))
	b.Fadd(asm.F(7), asm.F(5), asm.F(6))
	b.Fmul(asm.F(8), asm.F(7), asm.F(9))
	b.Add(asm.R(5), asm.R(21), asm.R(3))
	b.Fst(asm.F(8), asm.R(5), 0)
	b.Addi(asm.R(11), asm.R(11), 1)
	b.Blt(asm.R(11), asm.R(2), "col")
	b.Addi(asm.R(10), asm.R(10), 1)
	b.Blt(asm.R(10), asm.R(2), "row")
	// Swap roles of x and y for the next relaxation pass.
	b.Mov(asm.R(6), asm.R(20))
	b.Mov(asm.R(20), asm.R(21))
	b.Mov(asm.R(21), asm.R(6))
	b.J("iterate")
	return b.MustBuild()
}
