package workload

import (
	"fmt"

	"recyclesim/internal/asm"
	"recyclesim/internal/program"
)

// GenParams controls the random program generator used by stress and
// property tests (and available to library users for custom workloads).
type GenParams struct {
	Seed        uint64
	Blocks      int // basic blocks (>= 2)
	BlockLen    int // average instructions per block
	BranchEvery int // 1-in-N block terminators are conditional
	MemFrac     int // percent of instructions that access memory
	FPFrac      int // percent of ALU work that is floating point
	ArrayWords  int // data array size
}

// DefaultGenParams returns a balanced stress workload.
func DefaultGenParams(seed uint64) GenParams {
	return GenParams{
		Seed:        seed,
		Blocks:      24,
		BlockLen:    6,
		BranchEvery: 2,
		MemFrac:     25,
		FPFrac:      20,
		ArrayWords:  256,
	}
}

// Generate builds a random but well-formed, non-terminating program:
// every register is initialized before the loop, all branch targets are
// block labels, memory accesses stay inside a private array, and an
// in-program LCG provides genuinely unpredictable branch conditions.
func Generate(p GenParams) *program.Program {
	if p.Blocks < 2 {
		p.Blocks = 2
	}
	if p.BlockLen < 1 {
		p.BlockLen = 1
	}
	if p.ArrayWords < 8 {
		p.ArrayWords = 8
	}
	g := newLCG(p.Seed)
	b := asm.NewBuilder(fmt.Sprintf("gen-%d", p.Seed))

	init := make([]uint64, p.ArrayWords)
	for i := range init {
		init[i] = g.next()
	}
	b.Array("data", p.ArrayWords, init...)

	// r20 data pointer; r14/r15 LCG state; r1..r9 scratch; f1..f6 fp.
	b.La(asm.R(20), "data")
	for r := 1; r <= 9; r++ {
		b.Li(asm.R(r), int64(g.below(1000)))
	}
	b.Li(asm.R(14), int64(g.below(1<<30)|1))
	b.Li(asm.R(15), 12345)
	for f := 1; f <= 6; f++ {
		b.Ld(asm.R(10), asm.R(20), int64(8*g.below(uint64(p.ArrayWords))))
		b.CvtIF(asm.F(f), asm.R(10))
	}

	mask := int64(p.ArrayWords - 1)
	// Round the mask down to a power-of-two mask.
	for m := int64(1); ; m <<= 1 {
		if m > int64(p.ArrayWords) {
			mask = m>>1 - 1
			break
		}
	}

	blockLabel := func(i int) string { return fmt.Sprintf("b%d", i%p.Blocks) }

	for blk := 0; blk < p.Blocks; blk++ {
		b.Label(blockLabel(blk))
		n := p.BlockLen/2 + int(g.below(uint64(p.BlockLen)))
		for k := 0; k < n; k++ {
			r := int(g.below(100))
			switch {
			case r < p.MemFrac/2: // load
				b.Andi(asm.R(10), asm.R(int(1+g.below(9))), mask)
				b.Slli(asm.R(10), asm.R(10), 3)
				b.Add(asm.R(10), asm.R(20), asm.R(10))
				b.Ld(asm.R(int(1+g.below(9))), asm.R(10), 0)
			case r < p.MemFrac: // store
				b.Andi(asm.R(10), asm.R(int(1+g.below(9))), mask)
				b.Slli(asm.R(10), asm.R(10), 3)
				b.Add(asm.R(10), asm.R(20), asm.R(10))
				b.St(asm.R(int(1+g.below(9))), asm.R(10), 0)
			case r < p.MemFrac+p.FPFrac: // fp op
				d, s1, s2 := asm.F(int(1+g.below(6))), asm.F(int(1+g.below(6))), asm.F(int(1+g.below(6)))
				switch g.below(3) {
				case 0:
					b.Fadd(d, s1, s2)
				case 1:
					b.Fmul(d, s1, s2)
				default:
					b.Fsub(d, s1, s2)
				}
			default: // int ALU
				d, s1, s2 := asm.R(int(1+g.below(9))), asm.R(int(1+g.below(9))), asm.R(int(1+g.below(9)))
				switch g.below(6) {
				case 0:
					b.Add(d, s1, s2)
				case 1:
					b.Sub(d, s1, s2)
				case 2:
					b.Xor(d, s1, s2)
				case 3:
					b.And(d, s1, s2)
				case 4:
					b.Addi(d, s1, int64(g.below(64)))
				default:
					b.Srli(d, s1, int64(g.below(8)))
				}
			}
		}
		// Advance the in-program LCG (drives unpredictable branches).
		b.Li(asm.R(11), 6364136223846793005)
		b.Mul(asm.R(14), asm.R(14), asm.R(11))
		b.Addi(asm.R(14), asm.R(14), 1442695040888963407)

		// Terminator.
		tgt := blockLabel(int(g.below(uint64(p.Blocks))))
		fall := blockLabel(blk + 1)
		if int(g.below(uint64(p.BranchEvery))) == 0 {
			b.Srli(asm.R(12), asm.R(14), 33)
			b.Andi(asm.R(12), asm.R(12), 1)
			b.Bne(asm.R(12), asm.R(0), tgt)
			b.J(fall)
		} else if g.below(3) == 0 {
			b.J(tgt)
		} else {
			b.J(fall)
		}
	}
	return b.MustBuild()
}

// GenerateTerminating builds a random program that halts after a
// bounded amount of work (a counted outer loop around a generated
// body); used by tests that must observe program completion.
func GenerateTerminating(seed uint64, iters int64) *program.Program {
	g := newLCG(seed)
	b := asm.NewBuilder(fmt.Sprintf("gent-%d", seed))
	const words = 64
	init := make([]uint64, words)
	for i := range init {
		init[i] = g.next()
	}
	b.Array("data", words, init...)
	b.La(asm.R(20), "data")
	b.Li(asm.R(13), iters)
	b.Li(asm.R(14), int64(g.below(1<<30)|1))
	for r := 1; r <= 6; r++ {
		b.Li(asm.R(r), int64(g.below(100)))
	}
	b.Label("loop")
	for k := 0; k < 8; k++ {
		d, s1, s2 := asm.R(int(1+g.below(6))), asm.R(int(1+g.below(6))), asm.R(int(1+g.below(6)))
		if g.below(2) == 0 {
			b.Add(d, s1, s2)
		} else {
			b.Xor(d, s1, s2)
		}
	}
	b.Andi(asm.R(10), asm.R(1), words-1)
	b.Slli(asm.R(10), asm.R(10), 3)
	b.Add(asm.R(10), asm.R(20), asm.R(10))
	b.Ld(asm.R(2), asm.R(10), 0)
	b.St(asm.R(3), asm.R(10), 0)
	// Unpredictable detour.
	b.Li(asm.R(11), 6364136223846793005)
	b.Mul(asm.R(14), asm.R(14), asm.R(11))
	b.Addi(asm.R(14), asm.R(14), 1442695040888963407)
	b.Srli(asm.R(12), asm.R(14), 33)
	b.Andi(asm.R(12), asm.R(12), 1)
	b.Beq(asm.R(12), asm.R(0), "skip")
	b.Addi(asm.R(4), asm.R(4), 7)
	b.Label("skip")
	b.Addi(asm.R(13), asm.R(13), -1)
	b.Bne(asm.R(13), asm.R(0), "loop")
	b.Halt()
	return b.MustBuild()
}
