package workload

import (
	"recyclesim/internal/asm"
	"recyclesim/internal/program"
)

// Register conventions shared by the kernels: r1..r9 scratch, r10..r15
// induction/counters, r16..r19 accumulators, r20..r27 data pointers.

// Compress models compress95: a dictionary-based byte-stream coder.
// Its defining trait in the paper is a data-dependent hit/miss branch
// with poor predictability (compress gains the most from reuse,
// Figure 3) plus a modest loop the active list can capture.
func Compress() *program.Program {
	b := asm.NewBuilder("compress")
	g := newLCG(0xC0)

	// A skewed symbol stream over a small alphabet: dictionary hits
	// dominate after warmup (the hit/miss branch runs ~75% taken,
	// matching compress95's ~90% overall prediction accuracy) while
	// staying data-dependent enough that the branch resists the PHT.
	const inputN, tabN = 2048, 512
	input := make([]uint64, inputN)
	for i := range input {
		var sym uint64
		if g.below(100) < 60 {
			sym = g.below(4)
		} else {
			sym = g.below(16)
		}
		odd := uint64(0)
		if g.below(100) < 12 {
			odd = 1
		}
		input[i] = sym<<1 | odd
	}
	b.Array("input", inputN, input...)
	b.Array("hashtab", tabN)
	b.Word("hits", 0)
	b.Word("misses", 0)

	b.La(asm.R(20), "input")
	b.La(asm.R(21), "hashtab")
	b.Li(asm.R(10), 0) // i
	b.Li(asm.R(3), 0)  // prev byte
	b.Li(asm.R(16), 0) // hit count
	b.Li(asm.R(17), 0) // miss count

	b.Label("outer")
	// c = input[i & (inputN-1)]
	b.Andi(asm.R(11), asm.R(10), inputN-1)
	b.Slli(asm.R(12), asm.R(11), 3)
	b.Add(asm.R(12), asm.R(20), asm.R(12))
	b.Ld(asm.R(1), asm.R(12), 0)
	// h = ((prev<<4) ^ c) & (tabN-1)
	b.Slli(asm.R(2), asm.R(3), 4)
	b.Xor(asm.R(2), asm.R(2), asm.R(1))
	b.Andi(asm.R(2), asm.R(2), tabN-1)
	b.Slli(asm.R(4), asm.R(2), 3)
	b.Add(asm.R(4), asm.R(21), asm.R(4))
	b.Ld(asm.R(5), asm.R(4), 0)
	// Hard-to-predict: dictionary hit?
	b.Beq(asm.R(5), asm.R(1), "hit")
	// miss path: install code, widen output estimate
	b.St(asm.R(1), asm.R(4), 0)
	b.Addi(asm.R(17), asm.R(17), 1)
	b.Slli(asm.R(6), asm.R(1), 1)
	b.Xor(asm.R(18), asm.R(18), asm.R(6))
	b.J("join")
	b.Label("hit")
	// hit path: extend run, emit shorter code
	b.Addi(asm.R(16), asm.R(16), 1)
	b.Add(asm.R(18), asm.R(18), asm.R(1))
	b.Srli(asm.R(7), asm.R(18), 3)
	b.Label("join")
	// Second data-dependent branch: low bit of the byte.
	b.Andi(asm.R(8), asm.R(1), 1)
	b.Bne(asm.R(8), asm.R(0), "odd")
	b.Addi(asm.R(19), asm.R(19), 2)
	b.J("cont")
	b.Label("odd")
	b.Addi(asm.R(19), asm.R(19), 3)
	b.Label("cont")
	b.Mov(asm.R(3), asm.R(1))
	b.Addi(asm.R(10), asm.R(10), 1)
	b.J("outer")
	return b.MustBuild()
}

// GCC models the compiler: a token-dispatch state machine with many
// two-way decisions of mixed predictability and irregular, branchy
// control flow that fragments fetch blocks.
func GCC() *program.Program {
	b := asm.NewBuilder("gcc")
	g := newLCG(0x6CC)

	// Skewed, bursty token stream: real source code arrives in runs
	// (identifier identifier op literal ...), which history-based
	// prediction partially learns — gcc's real accuracy was ~88%.
	const tokN = 4096
	toks := make([]uint64, tokN)
	prev := uint64(0)
	for i := range toks {
		if g.below(100) < 62 {
			toks[i] = prev // continue the current run
			continue
		}
		r := g.below(100)
		switch {
		case r < 35:
			toks[i] = 0
		case r < 60:
			toks[i] = 1
		case r < 75:
			toks[i] = 2
		case r < 87:
			toks[i] = 3
		case r < 95:
			toks[i] = 4
		default:
			toks[i] = 5
		}
		prev = toks[i]
	}
	b.Array("tokens", tokN, toks...)
	b.Array("symtab", 256)

	b.La(asm.R(20), "tokens")
	b.La(asm.R(21), "symtab")
	b.Li(asm.R(10), 0) // token index
	b.Li(asm.R(16), 0) // state

	b.Label("loop")
	b.Andi(asm.R(11), asm.R(10), tokN-1)
	b.Slli(asm.R(12), asm.R(11), 3)
	b.Add(asm.R(12), asm.R(20), asm.R(12))
	b.Ld(asm.R(1), asm.R(12), 0) // tok

	// Dispatch chain (a compiled switch).
	b.Li(asm.R(2), 0)
	b.Beq(asm.R(1), asm.R(2), "case_ident")
	b.Li(asm.R(2), 1)
	b.Beq(asm.R(1), asm.R(2), "case_op")
	b.Li(asm.R(2), 2)
	b.Beq(asm.R(1), asm.R(2), "case_lit")
	b.Li(asm.R(2), 3)
	b.Beq(asm.R(1), asm.R(2), "case_paren")
	b.Li(asm.R(2), 4)
	b.Beq(asm.R(1), asm.R(2), "case_kw")
	// default: error recovery
	b.Addi(asm.R(16), asm.R(0), 0)
	b.Addi(asm.R(19), asm.R(19), 1)
	b.J("next")

	b.Label("case_ident")
	// Symbol table hash insert/lookup.
	b.Add(asm.R(3), asm.R(10), asm.R(16))
	b.Andi(asm.R(3), asm.R(3), 255)
	b.Slli(asm.R(4), asm.R(3), 3)
	b.Add(asm.R(4), asm.R(21), asm.R(4))
	b.Ld(asm.R(5), asm.R(4), 0)
	b.Bne(asm.R(5), asm.R(0), "ident_hit")
	b.St(asm.R(10), asm.R(4), 0)
	b.Label("ident_hit")
	b.Addi(asm.R(16), asm.R(16), 1)
	b.J("next")

	b.Label("case_op")
	// Precedence comparison: depends on running state parity.
	b.Andi(asm.R(6), asm.R(16), 3)
	b.Slti(asm.R(7), asm.R(6), 2)
	b.Bne(asm.R(7), asm.R(0), "op_reduce")
	b.Addi(asm.R(17), asm.R(17), 1)
	b.J("next")
	b.Label("op_reduce")
	b.Addi(asm.R(16), asm.R(16), 2)
	b.Addi(asm.R(18), asm.R(18), 1)
	b.J("next")

	b.Label("case_lit")
	b.Slli(asm.R(8), asm.R(1), 2)
	b.Add(asm.R(18), asm.R(18), asm.R(8))
	b.J("next")

	b.Label("case_paren")
	b.Addi(asm.R(16), asm.R(16), 4)
	b.J("next")

	b.Label("case_kw")
	b.Srli(asm.R(9), asm.R(16), 1)
	b.Xor(asm.R(16), asm.R(16), asm.R(9))
	b.Andi(asm.R(16), asm.R(16), 1023)

	b.Label("next")
	b.Addi(asm.R(10), asm.R(10), 1)
	b.J("loop")
	return b.MustBuild()
}

// Go models the go-playing program: evaluation sweeps over a board with
// highly data-dependent decisions (the paper's lowest branch prediction
// accuracy benchmark and TME's biggest winner).
func Go() *program.Program {
	b := asm.NewBuilder("go")
	g := newLCG(0x60)

	// Board with realistic stone density: the empty/stone and
	// black/white tests stay data-dependent (go95 had the worst branch
	// prediction accuracy of SPECint, ~75-80%).
	const boardN = 1024
	board := make([]uint64, boardN)
	prev := uint64(0)
	for i := range board {
		// Stones cluster into groups; empties cluster into territory.
		if g.below(100) < 55 {
			board[i] = prev
			continue
		}
		switch {
		case g.below(100) < 55:
			board[i] = 0 // empty
		case g.below(100) < 55:
			board[i] = 1 // black
		default:
			board[i] = 2 // white
		}
		prev = board[i]
	}
	b.Array("board", boardN, board...)
	b.Array("influence", boardN)

	b.La(asm.R(20), "board")
	b.La(asm.R(21), "influence")
	b.Li(asm.R(10), 0)
	b.Li(asm.R(16), 0) // score

	b.Label("sweep")
	b.Andi(asm.R(11), asm.R(10), boardN-1)
	b.Slli(asm.R(12), asm.R(11), 3)
	b.Add(asm.R(1), asm.R(20), asm.R(12))
	b.Ld(asm.R(2), asm.R(1), 0) // stone

	// Essentially random three-way decision.
	b.Beq(asm.R(2), asm.R(0), "empty")
	b.Li(asm.R(3), 1)
	b.Beq(asm.R(2), asm.R(3), "black")
	// white stone: subtract influence
	b.Add(asm.R(4), asm.R(21), asm.R(12))
	b.Ld(asm.R(5), asm.R(4), 0)
	b.Addi(asm.R(5), asm.R(5), -1)
	b.St(asm.R(5), asm.R(4), 0)
	b.Addi(asm.R(16), asm.R(16), -2)
	b.J("captures")
	b.Label("black")
	b.Add(asm.R(4), asm.R(21), asm.R(12))
	b.Ld(asm.R(5), asm.R(4), 0)
	b.Addi(asm.R(5), asm.R(5), 1)
	b.St(asm.R(5), asm.R(4), 0)
	b.Addi(asm.R(16), asm.R(16), 2)
	b.J("captures")
	b.Label("empty")
	// Liberty heuristic from neighbours.
	b.Addi(asm.R(6), asm.R(11), 1)
	b.Andi(asm.R(6), asm.R(6), boardN-1)
	b.Slli(asm.R(6), asm.R(6), 3)
	b.Add(asm.R(6), asm.R(20), asm.R(6))
	b.Ld(asm.R(7), asm.R(6), 0)
	b.Add(asm.R(16), asm.R(16), asm.R(7))

	b.Label("captures")
	// Second data-dependent decision: influence threshold (biased
	// taken, but the miss cases cluster unpredictably).
	b.Andi(asm.R(8), asm.R(16), 7)
	b.Slti(asm.R(9), asm.R(8), 6)
	b.Beq(asm.R(9), asm.R(0), "skip")
	b.Addi(asm.R(17), asm.R(17), 1)
	b.Label("skip")
	b.Addi(asm.R(10), asm.R(10), 1)
	b.J("sweep")
	return b.MustBuild()
}

// Li models the lisp interpreter: recursive traversal of cons cells
// through call/return pairs, with data-dependent atom-vs-pair branches.
// Heavy return-stack traffic and call-fragmented fetch blocks.
func Li() *program.Program {
	b := asm.NewBuilder("li")
	g := newLCG(0x11)

	// A binary "cons tree" in two parallel arrays: car[i], cdr[i].
	// Index 0 is nil.  Leaves hold small atoms (negative marker).
	const cells = 512
	car := make([]uint64, cells)
	cdr := make([]uint64, cells)
	for i := 1; i < cells; i++ {
		if g.below(100) < 45 && i*2+1 < cells {
			car[i] = uint64(i * 2)
			cdr[i] = uint64(i*2 + 1)
		} else {
			car[i] = ^g.below(64) + 1 // atom: negative value
			cdr[i] = 0
		}
	}
	b.Array("car", cells, car...)
	b.Array("cdr", cells, cdr...)

	b.La(asm.R(20), "car")
	b.La(asm.R(21), "cdr")
	b.Li(asm.R(10), 1) // root index rotates each outer pass
	b.Li(asm.R(16), 0)

	b.Label("outer")
	b.Mov(asm.R(1), asm.R(10)) // arg
	b.Jal("eval")
	b.Add(asm.R(16), asm.R(16), asm.R(2))
	b.Addi(asm.R(10), asm.R(10), 1)
	b.Andi(asm.R(10), asm.R(10), 255)
	b.Bne(asm.R(10), asm.R(0), "outer")
	b.Li(asm.R(10), 1)
	b.J("outer")

	// eval(r1=index) -> r2=value; uses r3-r5, preserves nothing.
	// Recursion depth is bounded by the tree shape (<= 9 levels).
	b.Label("eval")
	b.Beq(asm.R(1), asm.R(0), "eval_nil")
	b.Slli(asm.R(3), asm.R(1), 3)
	b.Add(asm.R(4), asm.R(20), asm.R(3))
	b.Ld(asm.R(5), asm.R(4), 0) // car
	// Atom test: negative car means leaf (data-dependent).
	b.Slti(asm.R(6), asm.R(5), 0)
	b.Bne(asm.R(6), asm.R(0), "eval_atom")
	// Pair: eval(car) + eval(cdr), saving state on the stack.
	b.Addi(asm.R(30), asm.R(30), -24)
	b.St(asm.R(31), asm.R(30), 0)
	b.St(asm.R(1), asm.R(30), 8)
	b.Mov(asm.R(1), asm.R(5))
	b.Jal("eval")
	b.St(asm.R(2), asm.R(30), 16) // left value
	b.Ld(asm.R(1), asm.R(30), 8)
	b.Slli(asm.R(3), asm.R(1), 3)
	b.Add(asm.R(4), asm.R(21), asm.R(3))
	b.Ld(asm.R(1), asm.R(4), 0) // cdr index
	b.Jal("eval")
	b.Ld(asm.R(3), asm.R(30), 16)
	b.Add(asm.R(2), asm.R(2), asm.R(3))
	b.Ld(asm.R(31), asm.R(30), 0)
	b.Addi(asm.R(30), asm.R(30), 24)
	b.Ret()
	b.Label("eval_atom")
	b.Sub(asm.R(2), asm.R(0), asm.R(5)) // value = -car
	b.Ret()
	b.Label("eval_nil")
	b.Li(asm.R(2), 0)
	b.Ret()
	return b.MustBuild()
}

// Perl models the script interpreter: hash probes and string-ish scans
// whose branches are mostly predictable (the paper shows perl with the
// lowest recycle percentage of the integer codes).
func Perl() *program.Program {
	b := asm.NewBuilder("perl")
	g := newLCG(0x9E1)

	const strN = 4096
	str := make([]uint64, strN)
	for i := range str {
		// Long predictable runs with rare delimiters.
		if g.below(100) < 7 {
			str[i] = 0 // delimiter
		} else {
			str[i] = 1 + g.below(25)
		}
	}
	b.Array("str", strN, str...)
	b.Array("hash", 512)
	b.Word("fields", 0)

	b.La(asm.R(20), "str")
	b.La(asm.R(21), "hash")
	b.Li(asm.R(10), 0)
	b.Li(asm.R(16), 0) // field count
	b.Li(asm.R(17), 0) // rolling hash

	b.Label("scan")
	b.Andi(asm.R(11), asm.R(10), strN-1)
	b.Slli(asm.R(12), asm.R(11), 3)
	b.Add(asm.R(1), asm.R(20), asm.R(12))
	b.Ld(asm.R(2), asm.R(1), 0)
	// Predictable: characters vastly outnumber delimiters.
	b.Beq(asm.R(2), asm.R(0), "delim")
	b.Slli(asm.R(3), asm.R(17), 1)
	b.Add(asm.R(17), asm.R(3), asm.R(2))
	b.Andi(asm.R(17), asm.R(17), 8191)
	b.J("adv")
	b.Label("delim")
	// Field complete: insert into hash.
	b.Andi(asm.R(4), asm.R(17), 511)
	b.Slli(asm.R(4), asm.R(4), 3)
	b.Add(asm.R(4), asm.R(21), asm.R(4))
	b.Ld(asm.R(5), asm.R(4), 0)
	b.Addi(asm.R(5), asm.R(5), 1)
	b.St(asm.R(5), asm.R(4), 0)
	b.Addi(asm.R(16), asm.R(16), 1)
	b.Li(asm.R(17), 0)
	b.Label("adv")
	b.Addi(asm.R(10), asm.R(10), 1)
	b.J("scan")
	return b.MustBuild()
}

// Vortex models the object database: pointer chasing through linked
// records with predictable validity checks; memory-bound, high branch
// accuracy, so SMT-era machines see little TME benefit but some
// first-PC recycling.
func Vortex() *program.Program {
	b := asm.NewBuilder("vortex")
	g := newLCG(0x0B)

	// Linked records: next[i] and payload[i]; a few chains woven
	// through the table.
	const recN = 1024
	next := make([]uint64, recN)
	pay := make([]uint64, recN)
	perm := make([]int, recN)
	for i := range perm {
		perm[i] = i
	}
	for i := recN - 1; i > 0; i-- {
		j := int(g.below(uint64(i + 1)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < recN; i++ {
		next[perm[i]] = uint64(perm[(i+1)%recN])
		pay[i] = g.below(1000)
	}
	b.Array("next", recN, next...)
	b.Array("payload", recN, pay...)

	b.La(asm.R(20), "next")
	b.La(asm.R(21), "payload")
	b.Li(asm.R(10), 0) // current record
	b.Li(asm.R(16), 0)

	b.Label("chase")
	b.Slli(asm.R(1), asm.R(10), 3)
	b.Add(asm.R(2), asm.R(21), asm.R(1))
	b.Ld(asm.R(3), asm.R(2), 0) // payload
	// Predictable validity check (payload < 1000 always true).
	b.Slti(asm.R(4), asm.R(3), 1000)
	b.Beq(asm.R(4), asm.R(0), "invalid")
	b.Add(asm.R(16), asm.R(16), asm.R(3))
	// Rare branch: payload divisible by 128 pattern.
	b.Andi(asm.R(5), asm.R(3), 127)
	b.Bne(asm.R(5), asm.R(0), "nolog")
	b.Addi(asm.R(17), asm.R(17), 1)
	b.Label("nolog")
	b.Add(asm.R(6), asm.R(20), asm.R(1))
	b.Ld(asm.R(10), asm.R(6), 0) // follow chain
	b.J("chase")
	b.Label("invalid")
	b.Li(asm.R(10), 0)
	b.J("chase")
	return b.MustBuild()
}
