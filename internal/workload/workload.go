// Package workload provides the simulator's benchmark programs: eight
// synthetic kernels standing in for the paper's SPEC95 subset
// (compress, gcc, go, li, perl, su2cor, tomcatv, vortex), a seeded
// random-program generator for stress testing, and the multiprogram
// permutation mixes used by the multi-thread experiments.
//
// The kernels are not the SPEC programs (no Alpha binaries exist in
// this environment); each reproduces the *character* that matters to
// the paper's mechanisms: branch predictability (what TME forks on),
// loop shape (what backward-branch recycling captures), control-flow
// fragmentation (what limits fetch), working-set size, and the
// integer/floating-point split.  All data is generated from fixed seeds
// so every run is deterministic.
package workload

import (
	"fmt"

	"recyclesim/internal/program"
)

// Names lists the benchmark names in the paper's order (Figure 3 and
// Table 1).
var Names = []string{
	"compress", "gcc", "go", "li", "perl", "su2cor", "tomcatv", "vortex",
}

// ByName builds the named benchmark.  It returns an error for unknown
// names.
func ByName(name string) (*program.Program, error) {
	switch name {
	case "compress":
		return Compress(), nil
	case "gcc":
		return GCC(), nil
	case "go":
		return Go(), nil
	case "li":
		return Li(), nil
	case "perl":
		return Perl(), nil
	case "su2cor":
		return Su2cor(), nil
	case "tomcatv":
		return Tomcatv(), nil
	case "vortex":
		return Vortex(), nil
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// All builds every benchmark, keyed by name.
func All() map[string]*program.Program {
	out := make(map[string]*program.Program, len(Names))
	for _, n := range Names {
		p, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[n] = p
	}
	return out
}

// lcg is the deterministic generator used to synthesize benchmark data.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (g *lcg) next() uint64 {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	return g.s >> 17
}

func (g *lcg) below(n uint64) uint64 { return g.next() % n }

// Mix returns the k-th multiprogram permutation of size n drawn from
// the benchmark list; the paper averages "eight permutations of the
// benchmarks that weight each of the benchmarks evenly".  Rotating the
// benchmark list by k and taking the first n entries gives each
// benchmark equal representation across the eight mixes.
func Mix(k, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Names[(k+i*len(Names)/n)%len(Names)])
	}
	return out
}

// Mixes returns the eight permutations of size n.
func Mixes(n int) [][]string {
	out := make([][]string, 0, 8)
	for k := 0; k < 8; k++ {
		out = append(out, Mix(k, n))
	}
	return out
}

// MixPrograms instantiates the programs of one mix.
func MixPrograms(names []string) ([]*program.Program, error) {
	out := make([]*program.Program, 0, len(names))
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// CoverageCheck verifies that the mixes weight each benchmark evenly;
// the workload tests assert this invariant.
func CoverageCheck(n int) map[string]int {
	counts := map[string]int{}
	for _, mix := range Mixes(n) {
		for _, b := range mix {
			counts[b]++
		}
	}
	return counts
}
