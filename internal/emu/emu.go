// Package emu implements the golden in-order functional emulator.  It
// defines architecturally-correct execution of a single program and is
// the oracle against which the out-of-order core is co-simulated: the
// core's committed instruction stream must match the emulator's exactly
// for every configuration (SMT, TME, recycling, reuse, respawning).
package emu

import (
	"fmt"

	"recyclesim/internal/isa"
	"recyclesim/internal/program"
)

// Emulator executes one program's architectural state in order.
type Emulator struct {
	Prog *program.Program
	Mem  *program.Memory

	PC     uint64
	Regs   [isa.NumRegs]uint64
	Halted bool

	// Retired counts instructions executed so far.
	Retired uint64
}

// New returns an emulator at the program's entry with a fresh memory
// image and the stack pointer initialized.
func New(p *program.Program) *Emulator {
	e := &Emulator{Prog: p, Mem: program.NewMemory(p), PC: p.Entry}
	e.Regs[isa.RegSP] = program.StackBase
	return e
}

// StepInfo describes one architecturally executed instruction; the
// co-simulation compares these records against the core's commits.
type StepInfo struct {
	PC     uint64
	Inst   isa.Inst
	Result uint64 // register result, if Inst.WritesReg()
	Addr   uint64 // effective address, if Inst.IsMem()
	Taken  bool   // direction, if Inst.IsBranch()
	Next   uint64 // next PC
}

// Step executes one instruction and returns what happened.  Stepping a
// halted emulator is a no-op that reports the halt again.
func (e *Emulator) Step() StepInfo {
	var info StepInfo
	e.StepInto(&info)
	return info
}

// StepInto is Step writing into a caller-owned record, so the
// fast-forward loop of sampled simulation (internal/sample) executes
// tens of millions of instructions without allocating.  Every StepInfo
// field is overwritten.
//
// The doc directive below roots the hotalloc analyzer here: StepInto
// and everything it transitively calls must stay allocation-free (the
// sparse-memory map assignment on the store path amortizes growth and
// is not an allocating construct).
//
//recycle:hotpath
func (e *Emulator) StepInto(info *StepInfo) {
	in := e.Prog.FetchInst(e.PC)
	*info = StepInfo{PC: e.PC, Inst: in}
	if e.Halted || in.IsHalt() {
		e.Halted = true
		info.Inst = isa.Inst{Op: isa.OpHalt}
		info.Next = e.PC
		return
	}

	// The zero register is never written (WritesReg and the load path
	// both exclude it), so Regs[RegZero] reads as the architectural 0.
	s1, s2 := e.Regs[in.Rs1], e.Regs[in.Rs2]
	next := e.PC + isa.InstBytes

	switch {
	case in.IsLoad():
		info.Addr = isa.EffAddr(in, s1)
		info.Result = e.Mem.Read(info.Addr)
		if in.Rd != isa.RegZero {
			e.Regs[in.Rd] = info.Result
		}
	case in.IsStore():
		info.Addr = isa.EffAddr(in, s1)
		e.Mem.Write(info.Addr, s2)
	case in.IsBranch():
		info.Taken = isa.BranchTaken(in, s1, s2)
		if in.WritesReg() {
			info.Result = isa.Eval(in, e.PC, s1, s2)
			e.Regs[in.Rd] = info.Result
		}
		if info.Taken {
			next = isa.BranchTarget(in, s1)
		}
	default:
		if in.WritesReg() {
			info.Result = isa.Eval(in, e.PC, s1, s2)
			e.Regs[in.Rd] = info.Result
		}
	}

	e.PC = next
	info.Next = next
	e.Retired++
}

// Run executes up to max instructions or until halt, returning the
// number retired.
func (e *Emulator) Run(max uint64) uint64 {
	var n uint64
	for n < max && !e.Halted {
		e.Step()
		n++
	}
	return n
}

// Trace executes up to max instructions collecting StepInfo records.
func (e *Emulator) Trace(max uint64) []StepInfo {
	return e.TraceInto(make([]StepInfo, 0, max), max)
}

// TraceInto is Trace appending into a caller-owned buffer (reset to
// length zero first), so repeated tracing reuses one allocation.
func (e *Emulator) TraceInto(buf []StepInfo, max uint64) []StepInfo {
	buf = buf[:0]
	for uint64(len(buf)) < max && !e.Halted {
		var info StepInfo
		e.StepInto(&info)
		buf = append(buf, info)
	}
	return buf
}

// String summarizes the emulator state for debugging.
func (e *Emulator) String() string {
	return fmt.Sprintf("emu{%s pc=0x%x retired=%d halted=%v}",
		e.Prog.Name, e.PC, e.Retired, e.Halted)
}
