package emu

import (
	"testing"
	"testing/quick"

	"recyclesim/internal/asm"
	"recyclesim/internal/isa"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

func TestStepBasics(t *testing.T) {
	b := asm.NewBuilder("t")
	b.Li(asm.R(1), 6)
	b.Li(asm.R(2), 7)
	b.Mul(asm.R(3), asm.R(1), asm.R(2))
	b.Halt()
	e := New(b.MustBuild())

	info := e.Step()
	if info.PC != program.CodeBase || info.Result != 6 {
		t.Errorf("step1: %+v", info)
	}
	e.Step()
	info = e.Step()
	if info.Result != 42 || e.Regs[3] != 42 {
		t.Errorf("mul: %+v", info)
	}
	info = e.Step()
	if !e.Halted || !info.Inst.IsHalt() {
		t.Error("should halt")
	}
	// Stepping a halted emulator stays halted and does not advance.
	r := e.Retired
	e.Step()
	if e.Retired != r {
		t.Error("halted emulator retired an instruction")
	}
}

func TestMemoryOps(t *testing.T) {
	b := asm.NewBuilder("mem")
	b.Word("x", 11)
	b.La(asm.R(1), "x")
	b.Ld(asm.R(2), asm.R(1), 0)
	b.Addi(asm.R(2), asm.R(2), 1)
	b.St(asm.R(2), asm.R(1), 0)
	b.Ld(asm.R(3), asm.R(1), 0)
	b.Halt()
	e := New(b.MustBuild())
	e.Run(100)
	if e.Regs[3] != 12 {
		t.Errorf("r3 = %d", e.Regs[3])
	}
}

func TestBranchingAndSPInit(t *testing.T) {
	b := asm.NewBuilder("br")
	b.Blt(asm.R(0), asm.R(30), "ok") // 0 < sp (StackBase)
	b.Li(asm.R(9), 111)              // skipped
	b.Label("ok")
	b.Halt()
	e := New(b.MustBuild())
	if e.Regs[isa.RegSP] != program.StackBase {
		t.Fatal("sp not initialized")
	}
	info := e.Step()
	if !info.Taken {
		t.Error("branch should be taken")
	}
	e.Step()
	if e.Regs[9] != 0 {
		t.Error("skipped instruction executed")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	b := asm.NewBuilder("zero")
	b.Li(asm.R(0), 99)
	b.Add(asm.R(1), asm.R(0), asm.R(0))
	b.Halt()
	e := New(b.MustBuild())
	e.Run(10)
	if e.Regs[0] != 0 || e.Regs[1] != 0 {
		t.Errorf("r0=%d r1=%d", e.Regs[0], e.Regs[1])
	}
}

func TestTraceMatchesRun(t *testing.T) {
	p := workload.Generate(workload.DefaultGenParams(3))
	e1 := New(p)
	tr := e1.Trace(500)
	if len(tr) != 500 {
		t.Fatalf("trace length %d", len(tr))
	}
	e2 := New(p)
	for i, want := range tr {
		got := e2.Step()
		if got != want {
			t.Fatalf("step %d: %+v != %+v", i, got, want)
		}
	}
}

// Property: executing any benchmark for N steps and then M steps equals
// executing it for N+M steps (state composition / determinism).
func TestStepComposition(t *testing.T) {
	fn := func(seed uint64, nRaw, mRaw uint16) bool {
		n, m := uint64(nRaw%500), uint64(mRaw%500)
		p := workload.Generate(workload.DefaultGenParams(seed%8 + 1))
		a := New(p)
		a.Run(n)
		a.Run(m)
		b := New(p)
		b.Run(n + m)
		if a.PC != b.PC || a.Retired != b.Retired {
			return false
		}
		for i := range a.Regs {
			if a.Regs[i] != b.Regs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Every built-in benchmark must run essentially forever (they are
// sized to outlast any simulation budget).
func TestBenchmarksDontHalt(t *testing.T) {
	for _, name := range workload.Names {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		e := New(p)
		e.Run(200_000)
		if e.Halted {
			t.Errorf("%s halted after %d instructions", name, e.Retired)
		}
	}
}

// StepInto must be Step: same records, same architectural state.
func TestStepIntoMatchesStep(t *testing.T) {
	p := workload.Generate(workload.DefaultGenParams(5))
	a, b := New(p), New(p)
	var got StepInfo
	for i := 0; i < 2000; i++ {
		want := a.Step()
		b.StepInto(&got)
		if got != want {
			t.Fatalf("step %d: %+v != %+v", i, got, want)
		}
	}
	if a.PC != b.PC || a.Retired != b.Retired || a.Regs != b.Regs {
		t.Fatal("diverged architectural state")
	}
}

// TraceInto must reuse the caller's buffer and match Trace.
func TestTraceIntoReusesBuffer(t *testing.T) {
	p := workload.Generate(workload.DefaultGenParams(4))
	want := New(p).Trace(300)
	e := New(p)
	buf := make([]StepInfo, 0, 300)
	got := e.TraceInto(buf, 300)
	if &got[0] != &buf[:1][0] {
		t.Error("TraceInto did not reuse the caller's buffer")
	}
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// A second trace into the same buffer starts from length zero again.
	got2 := e.TraceInto(got, 300)
	if len(got2) != 300 {
		t.Fatalf("second trace length %d", len(got2))
	}
}

// TestStepIntoAllocBudget pins the fast-forward loop at zero
// steady-state allocations: sampled simulation executes tens of
// millions of emulator instructions, so even one allocation per step
// would dominate its profile.  The only allowed events are rare sparse-
// memory map growths, which the budget absorbs.
func TestStepIntoAllocBudget(t *testing.T) {
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	e := New(p)
	// Warm up: grow the sparse memory to its steady-state footprint.
	e.Run(100_000)
	var info StepInfo
	const stepsPerRun = 10_000
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < stepsPerRun; i++ {
			e.StepInto(&info)
		}
	})
	perStep := avg / stepsPerRun
	t.Logf("%.1f allocs per %d steps (%.6f/step)", avg, stepsPerRun, perStep)
	if perStep > 0.001 {
		t.Errorf("fast-forward allocation rate %.6f/step exceeds budget 0.001/step", perStep)
	}
}

// Benchmarks must keep making branch decisions (no degenerate straight-
// line or stuck-loop behaviour) and touch memory.
func TestBenchmarkCharacter(t *testing.T) {
	for _, name := range workload.Names {
		p, _ := workload.ByName(name)
		e := New(p)
		branches, taken, loads, stores := 0, 0, 0, 0
		for i := 0; i < 50_000; i++ {
			info := e.Step()
			if info.Inst.IsCondBranch() {
				branches++
				if info.Taken {
					taken++
				}
			}
			if info.Inst.IsLoad() {
				loads++
			}
			if info.Inst.IsStore() {
				stores++
			}
		}
		if branches < 1000 {
			t.Errorf("%s: only %d conditional branches in 50k instructions", name, branches)
		}
		if taken == 0 || taken == branches {
			t.Errorf("%s: degenerate branch behaviour (%d/%d taken)", name, taken, branches)
		}
		if loads == 0 {
			t.Errorf("%s: no loads", name)
		}
		_ = stores // some kernels are load-only by design
	}
}
