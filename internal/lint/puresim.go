package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"recyclesim/internal/lint/callgraph"
)

// PureSim is the transitive determinism analyzer: everything reachable
// from the simulation entry points (core.Run/RunContext/Cycle and the
// facade Run functions) must stay pure — no wall-clock reads, no
// global math/rand source, no environment reads, no goroutine spawns
// outside the explicit parallelism boundary, and no order-dependent
// map ranges.
//
// It complements the per-package determinism analyzer: that one scopes
// by package list and sees one file at a time, so impurity reachable
// *through* an out-of-scope package (cmd/ helpers, the module root
// facade, an opted-out telemetry package) escapes it.  PureSim reasons
// from entry points over the whole-program call graph instead, and its
// diagnostics carry the call chain that makes the impurity reachable.
//
// Soundness boundary (see internal/lint/callgraph): calls through
// struct fields of function type and callbacks injected from outside
// the module are not resolved, so code reachable only that way escapes
// the analysis — the runtime determinism witnesses remain the backstop.
type PureSim struct {
	// Roots are callgraph FuncIDs of the simulation entry points.
	// Missing roots are skipped (the fixture module has no facade), but
	// if none resolves the analyzer reports that rather than silently
	// passing.
	Roots []string
	// ConcurrencyOK exempts a package from the goroutine rule (the
	// internal/sweep allowlist); all other purity rules still apply.
	ConcurrencyOK func(pkgPath string) bool
}

// NewPureSim builds the analyzer.
func NewPureSim(roots []string, concurrencyOK func(string) bool) *PureSim {
	return &PureSim{Roots: roots, ConcurrencyOK: concurrencyOK}
}

// Name implements Analyzer.
func (*PureSim) Name() string { return "puresim" }

// Doc implements Analyzer.
func (*PureSim) Doc() string {
	return "flags wall-clock, global RNG, environment reads, stray goroutines, and map-order dependence transitively reachable from simulation entry points"
}

// envFuncs are the os-package functions that read ambient process
// state a simulation result must never depend on.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Hostname": true,
	"Getpid": true, "UserHomeDir": true, "UserCacheDir": true, "UserConfigDir": true,
}

// Check implements Analyzer.
func (ps *PureSim) Check(prog *Program) []Diagnostic {
	g := prog.Callgraph()
	var roots []*callgraph.Node
	for _, id := range ps.Roots {
		if n := g.Lookup(id); n != nil {
			roots = append(roots, n)
		}
	}
	var out []Diagnostic
	if len(roots) == 0 {
		out = append(out, Diagnostic{
			Pos: prog.Position(token.NoPos), Rule: ps.Name(),
			Msg: sprintf("no simulation entry point resolved from %v; the analyzer would silently pass", ps.Roots),
		})
		return out
	}
	// Purity must hold on guarded (optional-telemetry) paths too, so
	// every edge is followed.
	reach := g.Reach(roots, nil)
	for _, n := range g.Nodes {
		st := reach[n]
		if st == nil {
			continue
		}
		chain := st.Chain(prog.ModPath)
		diag := func(pos token.Pos, format string, args ...interface{}) {
			out = append(out, Diagnostic{
				Pos: prog.Position(pos), Rule: ps.Name(),
				Msg: sprintf(format, args...) + " (reachable via " + chain + ")",
			})
		}
		ps.checkNode(n, diag)
	}
	return out
}

// checkNode inspects one reachable function: its external uses for
// clock/RNG/env reads, and its own body (literals excluded — they are
// their own nodes) for goroutine spawns and map ranges.
func (ps *PureSim) checkNode(n *callgraph.Node, diag func(token.Pos, string, ...interface{})) {
	for _, ext := range n.Ext {
		switch ext.PkgPath {
		case "time":
			if !ext.Method && timeFuncs[ext.Name] {
				diag(ext.Pos, "time.%s reads the wall clock; simulated time is the cycle counter", ext.Name)
			}
		case "math/rand", "math/rand/v2":
			if !ext.Method && !randConstructors[ext.Name] {
				diag(ext.Pos, "rand.%s uses the global random source; use a seeded rand.New(rand.NewSource(...))", ext.Name)
			}
		case "os":
			if !ext.Method && envFuncs[ext.Name] {
				diag(ext.Pos, "os.%s reads ambient process state", ext.Name)
			}
		}
	}
	body := n.Body()
	if body == nil {
		return
	}
	concOK := ps.ConcurrencyOK != nil && ps.ConcurrencyOK(n.Pkg.Path)
	inspectOwn(body, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.GoStmt:
			if !concOK {
				diag(x.Pos(), "go statement outside the parallelism allowlist: scheduling order is nondeterministic")
			}
		case *ast.RangeStmt:
			tv, ok := n.Pkg.Info.Types[x.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			if mapRangeOrderIndependent(n.Pkg.Info, x) {
				return
			}
			diag(x.Pos(), "range over map %s: iteration order is randomized", types.TypeString(tv.Type, nil))
		}
	})
}

// inspectOwn walks a function body without descending into nested
// function literals, which are separate call-graph nodes and inspect
// themselves.
func inspectOwn(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x != nil {
			visit(x)
		}
		return true
	})
}
