package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

func sprintf(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

// FloatCmp flags == and != between floating-point operands in the
// scoped packages.  Exact float equality is almost always a rounding
// bug waiting to diverge the core from the golden emulator; the few
// legitimate sites (ISA comparison semantics shared verbatim by both
// executors) carry an explicit annotation.
type FloatCmp struct {
	Scope func(pkgPath string) bool
}

// NewFloatCmp builds the analyzer with the given package scope.
func NewFloatCmp(scope func(string) bool) *FloatCmp { return &FloatCmp{Scope: scope} }

// Name implements Analyzer.
func (*FloatCmp) Name() string { return "floatcmp" }

// Doc implements Analyzer.
func (*FloatCmp) Doc() string {
	return "flags == and != on floating-point operands in simulator packages"
}

// Check implements Analyzer.
func (fc *FloatCmp) Check(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		if fc.Scope != nil && !fc.Scope(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(pkg, be.X) || isFloat(pkg, be.Y) {
					out = append(out, Diagnostic{
						Pos:  prog.Position(be.OpPos),
						Rule: fc.Name(),
						Msg:  sprintf("%s on floating-point operands; compare with an epsilon or annotate exact-semantics sites", be.Op),
					})
				}
				return true
			})
		}
	}
	return out
}

func isFloat(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
