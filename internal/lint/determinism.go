package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism flags constructs that can make a simulation run
// non-reproducible inside the scoped (simulator) packages:
//
//   - `for range` over a map: Go randomizes map iteration order, so any
//     such loop whose effect depends on visit order silently breaks the
//     "same config, byte-identical results" property.  A loop is
//     accepted without annotation only when it is provably
//     order-independent: every statement in its body stores through a
//     map index keyed by the unmodified range key, so each iteration
//     touches a distinct slot.
//   - wall-clock reads (time.Now and friends),
//   - the global math/rand source (unseeded, process-random),
//   - goroutines, channel receives, and the sync package: the model is
//     single-threaded by design; concurrency would introduce
//     scheduling-dependent results.
//
// Packages accepted by ConcurrencyOK (the explicit parallelism
// boundary, normally lint.ConcurrencyAllowed) are exempt from the
// concurrency rules only; the map-order, wall-clock, and global-RNG
// rules still apply to them.
type Determinism struct {
	Scope         func(pkgPath string) bool
	ConcurrencyOK func(pkgPath string) bool
}

// NewDeterminism builds the analyzer with the given package scope.
func NewDeterminism(scope func(string) bool) *Determinism { return &Determinism{Scope: scope} }

// Name implements Analyzer.
func (*Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (*Determinism) Doc() string {
	return "flags map-order-dependent loops, wall-clock reads, global RNG, and concurrency in simulator packages"
}

// timeFuncs are the time-package functions that read the wall clock or
// schedule against it.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true, "After": true, "AfterFunc": true,
}

// randConstructors are the math/rand functions that do NOT touch the
// package-global source; deterministic seeded generators built from
// them are fine.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// Check implements Analyzer.
func (d *Determinism) Check(prog *Program) []Diagnostic {
	var out []Diagnostic
	diag := func(pos token.Pos, format string, args ...interface{}) {
		out = append(out, Diagnostic{Pos: prog.Position(pos), Rule: d.Name(), Msg: sprintf(format, args...)})
	}
	for _, pkg := range prog.Pkgs {
		if d.Scope != nil && !d.Scope(pkg.Path) {
			continue
		}
		concOK := d.ConcurrencyOK != nil && d.ConcurrencyOK(pkg.Path)
		for _, f := range pkg.Files {
			if !concOK {
				for _, imp := range f.Imports {
					switch impPath(imp) {
					case "sync", "sync/atomic":
						diag(imp.Pos(), "import of %s: the simulator is single-threaded and must stay deterministic", impPath(imp))
					}
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					d.checkRange(pkg, n, diag)
				case *ast.GoStmt:
					if !concOK {
						diag(n.Pos(), "go statement: scheduling order is nondeterministic")
					}
				case *ast.SelectStmt:
					if !concOK {
						diag(n.Pos(), "select statement: case choice is nondeterministic")
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW && !concOK {
						diag(n.Pos(), "channel receive: delivery order is nondeterministic")
					}
				case *ast.SelectorExpr:
					d.checkSelector(pkg, n, diag)
				}
				return true
			})
		}
	}
	return out
}

// checkSelector flags uses of time.Now-style clock reads and of the
// math/rand package-global source.
func (d *Determinism) checkSelector(pkg *Package, sel *ast.SelectorExpr, diag func(token.Pos, string, ...interface{})) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if timeFuncs[sel.Sel.Name] {
			diag(sel.Pos(), "time.%s reads the wall clock; simulated time is the cycle counter", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if obj := pkg.Info.Uses[sel.Sel]; obj != nil {
			if _, isFunc := obj.(*types.Func); isFunc && !randConstructors[sel.Sel.Name] {
				diag(sel.Pos(), "rand.%s uses the global random source; use a seeded rand.New(rand.NewSource(...))", sel.Sel.Name)
			}
		}
	}
}

// checkRange flags `for range` over map-typed expressions unless the
// body is provably order-independent.
func (d *Determinism) checkRange(pkg *Package, rng *ast.RangeStmt, diag func(token.Pos, string, ...interface{})) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if mapRangeOrderIndependent(pkg.Info, rng) {
		return
	}
	diag(rng.Pos(), "range over map %s: iteration order is randomized; sort the keys, or annotate if provably order-independent", types.TypeString(tv.Type, nil))
}

// mapRangeOrderIndependent recognizes the one map-range shape the
// analyzers can prove safe without annotation: a pure map-to-map copy,
// where every statement of the body is `dst[k] = v`-style — a single
// assignment storing through a map index whose key expression is
// exactly the range-key variable.  Distinct source keys then write
// distinct destination slots, so the result cannot depend on visit
// order.  Shared between the file-local determinism analyzer and the
// transitive puresim analyzer.
func mapRangeOrderIndependent(info *types.Info, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	keyObj := info.Defs[key]
	if keyObj == nil || len(rng.Body.List) == 0 {
		return false
	}
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		idx, ok := as.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return false
		}
		if tv, ok := info.Types[idx.X]; !ok {
			return false
		} else if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return false
		}
		keyIdent, ok := idx.Index.(*ast.Ident)
		if !ok || info.Uses[keyIdent] != keyObj {
			return false
		}
	}
	return true
}

func impPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	return p[1 : len(p)-1]
}
