// Package lint is a stdlib-only static-analysis engine (go/parser +
// go/types + go/ast, no module dependencies) with simulator-specific
// analyzers.  The simulator's verification story rests on properties no
// generic linter enforces: the model must be fully deterministic (same
// inputs, byte-identical statistics and commit streams) and every
// statistics counter and configuration knob must be live.  The
// analyzers here make violations of those properties un-mergeable; see
// cmd/recyclelint for the CLI driver and the "Verification & static
// analysis" sections of README.md and DESIGN.md for the rule catalog.
//
// Findings can be suppressed per line with a comment of the form
//
//	//simlint:ignore <rule> [<rule>...] [-- reason]
//
// placed on the offending line or the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, anchored to a source position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the conventional file:line: form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one lint rule.  Check inspects the whole loaded module at
// once so rules can reason across packages (e.g. "this stats field is
// never written outside its package").
type Analyzer interface {
	Name() string
	Doc() string
	Check(prog *Program) []Diagnostic
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Program is the whole loaded module, packages sorted by import path so
// every run visits them in the same order.
type Program struct {
	Fset    *token.FileSet
	ModPath string
	Pkgs    []*Package

	// suppress maps filename -> line -> rule names ignored on that
	// line (populated from //simlint:ignore comments).
	suppress map[string]map[int]map[string]bool
}

// Lookup returns the loaded package with the given import path.
func (p *Program) Lookup(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// Position resolves a token.Pos against the program's file set.
func (p *Program) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// ignoreDirective parses a "simlint:ignore a b -- reason" comment text
// (comment markers already stripped) into rule names.
func ignoreDirective(text string) []string {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "simlint:ignore") {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "simlint:ignore"))
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	return strings.Fields(rest)
}

// buildSuppressions scans every comment of every file for
// simlint:ignore directives.  A directive covers its own line and the
// line below it, so both trailing and leading comment styles work.
func (p *Program) buildSuppressions() {
	p.suppress = make(map[string]map[int]map[string]bool)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
					rules := ignoreDirective(text)
					if len(rules) == 0 {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					byLine := p.suppress[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						p.suppress[pos.Filename] = byLine
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = make(map[string]bool)
							byLine[line] = set
						}
						for _, r := range rules {
							set[r] = true
						}
					}
				}
			}
		}
	}
}

// Suppressed reports whether the diagnostic is covered by an ignore
// directive.
func (p *Program) Suppressed(d Diagnostic) bool {
	if p.suppress == nil {
		p.buildSuppressions()
	}
	byLine := p.suppress[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[d.Pos.Line][d.Rule]
}

// Run executes the analyzers over the program, filters suppressed
// findings, and returns the rest sorted by position then rule.
func Run(prog *Program, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Check(prog) {
			if !prog.Suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// SimPackages lists the module-relative package paths whose code runs
// during (or feeds) a simulation and therefore must be deterministic.
// The host-side tooling (cmd/*, examples/*) is exempt.
var SimPackages = []string{
	"internal/alist",
	"internal/asm",
	"internal/bpred",
	"internal/cache",
	"internal/confidence",
	"internal/core",
	"internal/emu",
	"internal/fu",
	"internal/iq",
	"internal/isa",
	"internal/obs",
	"internal/obs/pipetrace",
	"internal/program",
	"internal/recycle",
	"internal/regfile",
	"internal/stats",
	"internal/sweep",
	"internal/wheel",
	"internal/workload",
}

// ConcurrencyAllowed lists the module-relative simulator packages
// permitted to use goroutines, channels, select, and the sync package.
// This is the explicit parallelism boundary: internal/sweep runs whole
// *independent* simulations concurrently and never shares state
// between them, so concurrency there cannot perturb any single run's
// determinism.  Every other SimPackages entry stays single-threaded,
// and the non-concurrency determinism rules (map ranges, wall clock,
// global RNG) still apply to allowlisted packages.
var ConcurrencyAllowed = []string{
	"internal/sweep",
}

// ConcurrencyScope reports whether a package import path may use
// concurrency constructs under the determinism analyzer.
func ConcurrencyScope(modPath string) func(pkgPath string) bool {
	return func(pkgPath string) bool {
		for _, s := range ConcurrencyAllowed {
			if pkgPath == modPath+"/"+s {
				return true
			}
		}
		return false
	}
}

// DefaultScope reports whether a package import path is one of the
// module's simulator packages.
func DefaultScope(modPath string) func(pkgPath string) bool {
	return func(pkgPath string) bool {
		for _, s := range SimPackages {
			if pkgPath == modPath+"/"+s {
				return true
			}
		}
		return false
	}
}

// AllScope includes every loaded package; the analyzer tests use it on
// fixture modules.
func AllScope(string) bool { return true }

// Default returns the full analyzer suite with the canonical scopes for
// the given module path.
func Default(modPath string) []Analyzer {
	scope := DefaultScope(modPath)
	det := NewDeterminism(scope)
	det.ConcurrencyOK = ConcurrencyScope(modPath)
	return []Analyzer{
		det,
		NewFloatCmp(scope),
		NewDeadStat(modPath+"/internal/stats", "Sim", modPath),
		NewDeadKnob(modPath+"/internal/config", []string{"Machine", "Features"},
			[]string{modPath + "/internal/core", modPath + "/internal/config"}),
		NewTraceGuard(scope, []GuardRule{
			{RecvType: modPath + "/internal/core.Core", Method: "trace", GuardField: "debugTrace"},
			{RecvType: modPath + "/internal/obs.Ring", Method: "Record"},
			{RecvType: modPath + "/internal/core.Core", Method: "pipeTrace", GuardField: "ptrace"},
			{RecvType: modPath + "/internal/obs/pipetrace.Recorder", Method: "*"},
		}),
	}
}
