// Package lint is a stdlib-only static-analysis engine (go/parser +
// go/types + go/ast, no module dependencies) with simulator-specific
// analyzers.  The simulator's verification story rests on properties no
// generic linter enforces: the model must be fully deterministic (same
// inputs, byte-identical statistics and commit streams) and every
// statistics counter and configuration knob must be live.  The
// analyzers here make violations of those properties un-mergeable; see
// cmd/recyclelint for the CLI driver and the "Verification & static
// analysis" sections of README.md and DESIGN.md for the rule catalog.
//
// Findings can be suppressed per line with a comment of the form
//
//	//simlint:ignore <rule> [<rule>...] [-- reason]
//
// placed on the offending line or the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"recyclesim/internal/lint/callgraph"
)

// Diagnostic is one analyzer finding, anchored to a source position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the conventional file:line: form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one lint rule.  Check inspects the whole loaded module at
// once so rules can reason across packages (e.g. "this stats field is
// never written outside its package").
type Analyzer interface {
	Name() string
	Doc() string
	Check(prog *Program) []Diagnostic
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Program is the whole loaded module, packages sorted by import path so
// every run visits them in the same order.
type Program struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string
	Pkgs    []*Package

	// suppress maps filename -> line -> rule names ignored on that
	// line (populated from //simlint:ignore comments).
	suppress map[string]map[int]map[string]bool

	// cg memoizes the whole-program call graph shared by the
	// transitive analyzers (puresim, hotalloc).
	cg *callgraph.Graph
}

// Callgraph builds (once) and returns the approximate whole-program
// call graph over the loaded packages.
func (p *Program) Callgraph() *callgraph.Graph {
	if p.cg == nil {
		pkgs := make([]*callgraph.Pkg, 0, len(p.Pkgs))
		for _, pkg := range p.Pkgs {
			pkgs = append(pkgs, &callgraph.Pkg{
				Path: pkg.Path, Types: pkg.Pkg, Info: pkg.Info, Files: pkg.Files,
			})
		}
		p.cg = callgraph.Build(pkgs)
	}
	return p.cg
}

// Lookup returns the loaded package with the given import path.
func (p *Program) Lookup(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// Position resolves a token.Pos against the program's file set.
func (p *Program) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// ignoreDirective parses a "simlint:ignore a b -- reason" comment text
// (comment markers already stripped) into rule names.
func ignoreDirective(text string) []string {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "simlint:ignore") {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "simlint:ignore"))
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	return strings.Fields(rest)
}

// buildSuppressions scans every comment of every file for
// simlint:ignore directives.  A directive covers its own line and the
// line below it, so both trailing and leading comment styles work.
func (p *Program) buildSuppressions() {
	p.suppress = make(map[string]map[int]map[string]bool)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
					rules := ignoreDirective(text)
					if len(rules) == 0 {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					byLine := p.suppress[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						p.suppress[pos.Filename] = byLine
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = make(map[string]bool)
							byLine[line] = set
						}
						for _, r := range rules {
							set[r] = true
						}
					}
				}
			}
		}
	}
}

// Suppressed reports whether the diagnostic is covered by an ignore
// directive.
func (p *Program) Suppressed(d Diagnostic) bool {
	if p.suppress == nil {
		p.buildSuppressions()
	}
	byLine := p.suppress[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[d.Pos.Line][d.Rule]
}

// Run executes the analyzers over the program, filters suppressed
// findings, and returns the rest sorted by position then rule.
func Run(prog *Program, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Check(prog) {
			if !prog.Suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// NonSimPackages is the explicit opt-out list: module-relative package
// paths under internal/ that are host-side tooling rather than
// simulation code, and therefore exempt from the per-package simulator
// scope (determinism, floatcmp, traceguard).  Everything else under
// internal/ is in scope *by discovery* (see SimPackages), so a newly
// added package is linted by default instead of silently skipped.
// The whole-program analyzers (puresim, hotalloc, atomicplain) ignore
// this list: they reason from entry points and annotations over every
// loaded package, including cmd/* and the module root.
var NonSimPackages = []string{
	"internal/fleet",          // distributed execution: HTTP + leases + wall clock by design
	"internal/fleet/chaos",    // fault-injection harness for the fleet tests
	"internal/jobs",           // job service: HTTP server + goroutines by design
	"internal/lint",           // the analysis engine itself (walks dirs, maps)
	"internal/lint/callgraph", // ditto
	"internal/obs/server",     // live observability: wall clock + goroutines by design
	"internal/obs/trace",      // request tracing: wall clock + rand IDs by design
	"internal/store",          // host-side persistence: filesystem + hashing
}

// SimPackages discovers the module-relative package paths whose code
// runs during (or feeds) a simulation and therefore must be
// deterministic: every directory under internal/ holding non-test Go
// files, minus the NonSimPackages opt-outs.  The host-side tooling
// (cmd/*, examples/*, the module root) is exempt from the per-package
// scope but still covered by the whole-program analyzers.
func SimPackages(modRoot string) []string {
	var out []string
	root := filepath.Join(modRoot, "internal")
	_ = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(modRoot, filepath.Dir(path))
		if err != nil {
			return nil
		}
		pkg := filepath.ToSlash(rel)
		for _, skip := range NonSimPackages {
			if pkg == skip {
				return nil
			}
		}
		if len(out) == 0 || out[len(out)-1] != pkg {
			out = append(out, pkg)
		}
		return nil
	})
	sort.Strings(out)
	return out
}

// ConcurrencyAllowed lists the module-relative simulator packages
// permitted to use goroutines, channels, select, and the sync package.
// This is the explicit parallelism boundary: internal/sweep runs whole
// *independent* simulations concurrently and never shares state
// between them, so concurrency there cannot perturb any single run's
// determinism.  Every other SimPackages entry stays single-threaded,
// and the non-concurrency determinism rules (map ranges, wall clock,
// global RNG) still apply to allowlisted packages.
var ConcurrencyAllowed = []string{
	// backoff.Sleep waits on a timer/ctx select; its delay arithmetic
	// and jitter stay under the full determinism rules (no wall-clock
	// reads, no global RNG — the jitter source is an injected
	// SplitMix64).
	"internal/backoff",
	"internal/sweep",
}

// ConcurrencyScope reports whether a package import path may use
// concurrency constructs under the determinism analyzer.
func ConcurrencyScope(modPath string) func(pkgPath string) bool {
	return func(pkgPath string) bool {
		for _, s := range ConcurrencyAllowed {
			if pkgPath == modPath+"/"+s {
				return true
			}
		}
		return false
	}
}

// ScopeFor builds a scope predicate from an explicit package list.
func ScopeFor(modPath string, pkgs []string) func(pkgPath string) bool {
	set := make(map[string]bool, len(pkgs))
	for _, s := range pkgs {
		set[modPath+"/"+s] = true
	}
	return func(pkgPath string) bool { return set[pkgPath] }
}

// DefaultScope reports whether a package import path is one of the
// module's simulator packages, discovered by walking internal/ under
// the module root.
func DefaultScope(modPath, modRoot string) func(pkgPath string) bool {
	return ScopeFor(modPath, SimPackages(modRoot))
}

// AllScope includes every loaded package; the analyzer tests use it on
// fixture modules.
func AllScope(string) bool { return true }

// PureSimRoots names the simulation entry points, as callgraph FuncIDs
// relative to the module path: everything transitively reachable from
// these must stay deterministic.
var PureSimRoots = []string{
	"internal/core.(Core).Run",
	"internal/core.(Core).RunContext",
	"internal/core.(Core).Cycle",
	".Run",
	".RunContext",
	".RunBatch",
	".RunBatchContext",
	".RunSampled",
	".RunSampledContext",
	"internal/sample.Run",
}

// Default returns the full analyzer suite with the canonical scopes for
// the loaded program.
func Default(prog *Program) []Analyzer {
	modPath := prog.ModPath
	scope := DefaultScope(modPath, prog.ModRoot)
	det := NewDeterminism(scope)
	det.ConcurrencyOK = ConcurrencyScope(modPath)
	roots := make([]string, len(PureSimRoots))
	for i, r := range PureSimRoots {
		roots[i] = modPath + r
		if !strings.HasPrefix(r, ".") {
			roots[i] = modPath + "/" + r
		}
	}
	return []Analyzer{
		det,
		NewFloatCmp(scope),
		NewDeadStat(modPath+"/internal/stats", "Sim", modPath),
		NewDeadKnob(modPath+"/internal/config", []string{"Machine", "Features"},
			[]string{modPath + "/internal/core", modPath + "/internal/config"}),
		NewTraceGuard(scope, []GuardRule{
			{RecvType: modPath + "/internal/core.Core", Method: "trace", GuardField: "debugTrace"},
			{RecvType: modPath + "/internal/obs.Ring", Method: "Record"},
			{RecvType: modPath + "/internal/core.Core", Method: "pipeTrace", GuardField: "ptrace"},
			{RecvType: modPath + "/internal/obs/pipetrace.Recorder", Method: "*"},
		}),
		NewPureSim(roots, ConcurrencyScope(modPath)),
		NewHotAlloc(),
		NewAtomicPlain(),
	}
}
