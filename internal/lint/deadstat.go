package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeadStat audits the statistics structure (stats.Sim in this module):
//
//   - every scalar counter field must be written somewhere outside the
//     stats package, otherwise it is a dead counter silently reporting
//     zero in every table;
//   - counters may only grow: ++, += and (annotated) snapshot
//     assignments are allowed, --, -= and friends are findings.  The
//     stats package's own Sub method is exempt: it is the deliberate
//     snapshot-delta helper (interval attribution in sampled runs),
//     not a counter mutation on a live simulation;
//   - every scalar field must appear in the accumulator method (Add),
//     otherwise multi-run aggregation silently drops it.
//
// Non-scalar fields (slices such as per-program commit counts) are
// exempt from the Add rule — aggregation across permutations is
// intentionally scalar-only — but still must be written externally.
type DeadStat struct {
	StatsPkg   string // import path of the stats package
	StructName string // statistics struct name, e.g. "Sim"
	ModPath    string // module path (findings are reported at the struct when external)
}

// NewDeadStat builds the analyzer for the given stats struct.
func NewDeadStat(statsPkg, structName, modPath string) *DeadStat {
	return &DeadStat{StatsPkg: statsPkg, StructName: structName, ModPath: modPath}
}

// Name implements Analyzer.
func (*DeadStat) Name() string { return "deadstat" }

// Doc implements Analyzer.
func (*DeadStat) Doc() string {
	return "flags statistics counters that are never written, are decremented, or are missing from the accumulator"
}

// Check implements Analyzer.
func (ds *DeadStat) Check(prog *Program) []Diagnostic {
	statsPkg := prog.Lookup(ds.StatsPkg)
	if statsPkg == nil {
		return nil
	}
	obj := statsPkg.Pkg.Scope().Lookup(ds.StructName)
	if obj == nil {
		return []Diagnostic{{
			Pos:  prog.Position(statsPkg.Files[0].Pos()),
			Rule: ds.Name(),
			Msg:  sprintf("stats package %s has no struct %s", ds.StatsPkg, ds.StructName),
		}}
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}

	fields := map[types.Object]*types.Var{}
	order := make([]*types.Var, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fields[f] = f
		order = append(order, f)
	}

	written := map[types.Object]bool{} // written outside the stats package
	inAdd := map[types.Object]bool{}   // referenced inside the accumulator method
	var decremented []Diagnostic       // shrinking writes, any package
	var plainAssigned []Diagnostic     // non-increment writes to scalar fields outside stats

	for _, pkg := range prog.Pkgs {
		internal := pkg.Path == ds.StatsPkg
		// The stats package's Sub method is the sanctioned snapshot-delta
		// helper; decrements inside it are its whole point.
		var subRanges [][2]token.Pos
		if internal {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Sub" && fd.Recv != nil {
						subRanges = append(subRanges, [2]token.Pos{fd.Pos(), fd.End()})
					}
				}
			}
		}
		inSub := func(pos token.Pos) bool {
			for _, r := range subRanges {
				if pos >= r[0] && pos < r[1] {
					return true
				}
			}
			return false
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if internal {
					if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "Add" && fd.Recv != nil {
						ast.Inspect(fd, func(m ast.Node) bool {
							if sel, ok := m.(*ast.SelectorExpr); ok {
								if fobj := pkg.Info.Uses[sel.Sel]; fobj != nil && fields[fobj] != nil {
									inAdd[fobj] = true
								}
							}
							return true
						})
					}
				}
				switch n := n.(type) {
				case *ast.IncDecStmt:
					fobj := ds.fieldOf(pkg, n.X, fields)
					if fobj == nil {
						return true
					}
					if !internal {
						written[fobj] = true
					}
					if n.Tok == token.DEC && !inSub(n.Pos()) {
						decremented = append(decremented, Diagnostic{
							Pos:  prog.Position(n.Pos()),
							Rule: ds.Name(),
							Msg:  sprintf("statistics counter %s.%s is decremented; counters must be monotonic", ds.StructName, fobj.Name()),
						})
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						fobj := ds.fieldOf(pkg, lhs, fields)
						if fobj == nil {
							continue
						}
						if !internal {
							written[fobj] = true
						}
						switch n.Tok {
						case token.ADD_ASSIGN:
						case token.ASSIGN, token.DEFINE:
							if !internal && isScalar(fields[fobj]) && !isIndexed(lhs) {
								plainAssigned = append(plainAssigned, Diagnostic{
									Pos:  prog.Position(n.Pos()),
									Rule: ds.Name(),
									Msg:  sprintf("statistics counter %s.%s overwritten with =; counters must only grow (annotate intentional snapshots)", ds.StructName, fobj.Name()),
								})
							}
						default:
							if inSub(n.Pos()) {
								continue
							}
							decremented = append(decremented, Diagnostic{
								Pos:  prog.Position(n.Pos()),
								Rule: ds.Name(),
								Msg:  sprintf("statistics counter %s.%s modified with %s; counters must be monotonic", ds.StructName, fobj.Name(), n.Tok),
							})
						}
					}
				}
				return true
			})
		}
	}

	var out []Diagnostic
	for _, f := range order {
		if !written[f] {
			out = append(out, Diagnostic{
				Pos:  prog.Position(f.Pos()),
				Rule: ds.Name(),
				Msg:  sprintf("statistics field %s.%s is never written by the simulator: dead counter", ds.StructName, f.Name()),
			})
		}
		if isScalar(f) && !inAdd[f] {
			out = append(out, Diagnostic{
				Pos:  prog.Position(f.Pos()),
				Rule: ds.Name(),
				Msg:  sprintf("statistics field %s.%s is missing from (*%s).Add: aggregation drops it", ds.StructName, f.Name(), ds.StructName),
			})
		}
	}
	out = append(out, decremented...)
	out = append(out, plainAssigned...)
	return out
}

// fieldOf resolves an assignment target down to a tracked stats field,
// looking through parens and index expressions (PerProgram[i]++ is a
// write to PerProgram).
func (ds *DeadStat) fieldOf(pkg *Package, e ast.Expr, fields map[types.Object]*types.Var) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if fobj := pkg.Info.Uses[x.Sel]; fobj != nil && fields[fobj] != nil {
				return fobj
			}
			return nil
		default:
			return nil
		}
	}
}

func isScalar(f *types.Var) bool {
	b, ok := f.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func isIndexed(e ast.Expr) bool {
	_, ok := e.(*ast.IndexExpr)
	return ok
}
