// Package callgraph builds an approximate whole-program call graph
// over the already-typed ASTs produced by internal/lint's loader, using
// nothing but the standard library.  It is the substrate for the
// transitive analyzers (puresim, hotalloc): they pick root functions,
// walk Reach, and inspect each reachable function body.
//
// The approximation, precisely:
//
//   - Static calls to package-level functions and methods with concrete
//     receivers are resolved exactly through types.Info (this is the
//     overwhelming majority of edges in the simulator).
//   - Calls through an interface add a dynamic edge to every method of
//     a module-declared type that implements the interface and carries
//     the called name (class-hierarchy style devirtualization).
//   - Function literals become their own nodes.  A literal that is
//     invoked on the spot gets a static edge; any other literal gets a
//     dynamic edge from its enclosing function, because passing or
//     storing it means it may run wherever it ends up.
//   - Function values are tracked intra-procedurally: `f := helper;
//     f()` links the caller to helper.  A named function or method
//     referenced as a value (address taken, passed as callback) gets a
//     dynamic edge from the function that takes the reference.
//   - Calls through struct fields of function type, map/slice elements,
//     or values that cross a function boundary are NOT resolved — the
//     graph under-approximates there, and analyzers built on it must
//     document that callbacks injected from outside the module escape
//     them (the runtime witnesses remain the backstop).
//
// Calls into packages outside the module (the standard library) have no
// bodies to traverse; they are recorded per node as ExtUse entries so
// analyzers can match them against allow/deny lists.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Pkg is one loaded, type-checked package handed to Build.
type Pkg struct {
	Path  string
	Types *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Node is one function: a declared function or method (Decl non-nil)
// or a function literal (Lit non-nil).
type Node struct {
	// ID is the stable human-readable identity: "pkgpath.Func" for
	// functions, "pkgpath.(Recv).Method" for methods (pointer receivers
	// are spelled without the star), and "<parent>$<n>" for the n-th
	// function literal inside parent (source order, 1-based).
	ID   string
	Pkg  *Pkg
	Fn   *types.Func   // nil for function literals
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	Pos  token.Pos

	// Out lists the call edges in source order.
	Out []Edge
	// Ext records calls to (and value references of) functions declared
	// outside the module, in source order.
	Ext []ExtUse
}

// Body returns the function body (nil for bodyless declarations, e.g.
// assembly stubs).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Directive reports whether the node's declaration carries the given
// comment directive ("//name" with no space, on the doc comment).
// Function literals carry no directives.
func (n *Node) Directive(name string) bool {
	if n.Decl == nil || n.Decl.Doc == nil {
		return false
	}
	for _, c := range n.Decl.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == name {
			return true
		}
	}
	return false
}

// Edge is one call site.
type Edge struct {
	Callee *Node
	Pos    token.Pos
	// Dynamic marks edges that are approximations rather than direct
	// calls: interface dispatch, tracked function values, references to
	// functions as values, and non-invoked literals.
	Dynamic bool
	// Guarded marks call sites inside the then-block of an enclosing
	// `if x != nil` check — the simulator's "optional telemetry"
	// idiom, which hot-path analysis treats as off the steady-state
	// path (the traceguard analyzer separately verifies the guards).
	Guarded bool
}

// ExtUse is one use of a function from outside the module.
type ExtUse struct {
	PkgPath string
	Name    string
	// Method marks uses resolved through a selection on an external
	// receiver type (e.g. (*rand.Rand).Intn) rather than a package-
	// level function.
	Method bool
	// Ref marks value references (the function was not called here,
	// only taken).
	Ref     bool
	Pos     token.Pos
	Guarded bool
}

// Graph is the whole-program call graph.
type Graph struct {
	// Nodes holds every function in a deterministic order: packages in
	// the order given to Build, files in order, declarations in source
	// order, literals in source order within their parent.
	Nodes []*Node

	byFn map[*types.Func]*Node
	byID map[string]*Node
}

// Lookup resolves a node by ID, nil when absent.
func (g *Graph) Lookup(id string) *Node { return g.byID[id] }

// NodeOf resolves a node by its types object, nil for literals and
// external functions.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[fn] }

// FuncID renders the ID Build assigns to a declared function.
func FuncID(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := types.TypeString(t, func(p *types.Package) string { return "" })
		if fn.Pkg() != nil {
			return fn.Pkg().Path() + ".(" + name + ")." + fn.Name()
		}
		return "(" + name + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// Build constructs the graph.  The pkgs slice must cover every module
// package whose functions should become nodes; imports that resolve
// outside the slice are treated as external.
func Build(pkgs []*Pkg) *Graph {
	g := &Graph{byFn: map[*types.Func]*Node{}, byID: map[string]*Node{}}
	b := &builder{g: g}

	// Pass 1: a node per function declaration, so forward references
	// resolve regardless of build order.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{ID: FuncID(fn), Pkg: p, Fn: fn, Decl: fd, Pos: fd.Pos()}
				g.Nodes = append(g.Nodes, n)
				g.byFn[fn] = n
				g.byID[n.ID] = n
			}
		}
	}

	// Pass 2: walk every body, creating literal nodes and edges.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				b.walkBody(g.byFn[fn], p, fd.Body)
			}
		}
	}

	b.resolveInterfaceCalls(pkgs)
	return g
}

type builder struct {
	g *Graph
	// ifaceCalls collects interface-dispatch sites for the post-pass.
	ifaceCalls []ifaceCall
}

type ifaceCall struct {
	from    *Node
	iface   *types.Interface
	name    string
	pos     token.Pos
	guarded bool
}

// walkBody scans one function body, assigning literal nodes and edges
// to owner.  Nested literal bodies are walked with the literal as the
// owner, not the enclosing function.
func (b *builder) walkBody(owner *Node, p *Pkg, body *ast.BlockStmt) {
	w := &bodyWalker{b: b, p: p, owner: owner}
	w.bindings = collectBindings(p, body)
	w.walk(body)
}

// bodyWalker carries the per-body state: the ancestor stack for guard
// detection, the function-value bindings of the body, and the set of
// expressions already consumed as call operands (so a function used as
// a callee is not double-counted as a value reference).
type bodyWalker struct {
	b        *builder
	p        *Pkg
	owner    *Node
	stack    []ast.Node
	bindings map[types.Object][]ast.Expr
	callees  map[ast.Node]bool
	nlit     int
}

// collectBindings maps local variables to the function expressions
// assigned to them anywhere in the body (`f := helper`, `f = func(){}`),
// the intra-procedural function-value tracking.
func collectBindings(p *Pkg, body *ast.BlockStmt) map[types.Object][]ast.Expr {
	out := map[types.Object][]ast.Expr{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if isFuncExpr(p, as.Rhs[i]) {
				out[obj] = append(out[obj], as.Rhs[i])
			}
		}
		return true
	})
	return out
}

// isFuncExpr reports whether the expression is a function literal or
// resolves to a declared function.
func isFuncExpr(p *Pkg, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return true
	case *ast.Ident:
		_, ok := p.Info.Uses[x].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			_, ok := sel.Obj().(*types.Func)
			return ok
		}
		_, ok := p.Info.Uses[x.Sel].(*types.Func)
		return ok
	}
	return false
}

// walk is a manual traversal so the ancestor stack is available at
// every visit (guard detection) and literal bodies switch owners.
func (w *bodyWalker) walk(n ast.Node) {
	if lit, ok := n.(*ast.FuncLit); ok {
		// New node owned by the literal; edge added by the parent at
		// the visit site (handleLit), which runs before descending.
		w.handleLit(lit)
		return
	}
	w.stack = append(w.stack, n)
	switch x := n.(type) {
	case *ast.CallExpr:
		w.handleCall(x)
	case *ast.Ident:
		w.handleRef(x, nil)
	case *ast.SelectorExpr:
		w.handleRef(x.Sel, x)
		// Descend only into X: the .Sel ident was just resolved as part
		// of the selector and must not be revisited on its own.
		w.walk(x.X)
		w.stack = w.stack[:len(w.stack)-1]
		return
	}
	children(n, func(c ast.Node) { w.walk(c) })
	w.stack = w.stack[:len(w.stack)-1]
}

// handleLit creates the literal node, links it from the owner, and
// walks its body with the literal as owner.
func (w *bodyWalker) handleLit(lit *ast.FuncLit) {
	w.nlit++
	n := &Node{
		ID:  w.owner.ID + "$" + strconv.Itoa(w.nlit),
		Pkg: w.p, Lit: lit, Pos: lit.Pos(),
	}
	w.b.g.Nodes = append(w.b.g.Nodes, n)
	w.b.g.byID[n.ID] = n

	// Invoked on the spot -> static edge; otherwise the literal is
	// passed or stored somewhere and may run: dynamic edge.
	dynamic := !w.callees[lit]
	w.owner.Out = append(w.owner.Out, Edge{
		Callee: n, Pos: lit.Pos(), Dynamic: dynamic, Guarded: w.guarded(),
	})

	inner := &bodyWalker{b: w.b, p: w.p, owner: n, bindings: w.bindings}
	inner.walk(lit.Body)
}

// markCallee records that an expression is consumed as a call operand.
func (w *bodyWalker) markCallee(e ast.Node) {
	if w.callees == nil {
		w.callees = map[ast.Node]bool{}
	}
	w.callees[e] = true
}

// handleCall resolves a call expression to edges / ext uses.
func (w *bodyWalker) handleCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Type conversions are not calls.
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	w.markCallee(fun)
	switch x := fun.(type) {
	case *ast.Ident:
		switch obj := w.p.Info.Uses[x].(type) {
		case *types.Func:
			w.addFuncEdge(obj, call.Lparen, false)
		case *types.Var:
			// Tracked function value: edge to every function bound to
			// the variable in this body.
			for _, bound := range w.bindings[obj] {
				w.addBoundEdge(bound, call.Lparen)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := w.p.Info.Selections[x]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func:
				recv := sel.Recv()
				if types.IsInterface(recv) {
					if iface, ok := recv.Underlying().(*types.Interface); ok {
						w.b.ifaceCalls = append(w.b.ifaceCalls, ifaceCall{
							from: w.owner, iface: iface, name: obj.Name(),
							pos: call.Lparen, guarded: w.guarded(),
						})
					}
					return
				}
				w.addFuncEdge(obj, call.Lparen, false)
			}
			return
		}
		// Qualified identifier (pkg.Func) or method expression.
		if fn, ok := w.p.Info.Uses[x.Sel].(*types.Func); ok {
			w.addFuncEdge(fn, call.Lparen, false)
		}
	}
}

// handleRef adds dynamic edges for functions referenced as values:
// idents and selector .Sel idents that resolve to a *types.Func but are
// not the callee of the enclosing call.
func (w *bodyWalker) handleRef(id *ast.Ident, sel *ast.SelectorExpr) {
	fn, ok := w.p.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	var expr ast.Expr = id
	if sel != nil {
		expr = sel
		if s, ok := w.p.Info.Selections[sel]; ok {
			if sfn, ok := s.Obj().(*types.Func); ok {
				fn = sfn
			}
		}
	}
	if w.callees[expr] {
		return // handled as a call
	}
	w.addRefEdge(fn, expr.Pos())
}

// addFuncEdge links a resolved call: module functions get a static
// edge, external functions an ExtUse.
func (w *bodyWalker) addFuncEdge(fn *types.Func, pos token.Pos, dynamic bool) {
	if n := w.b.g.byFn[fn]; n != nil {
		w.owner.Out = append(w.owner.Out, Edge{Callee: n, Pos: pos, Dynamic: dynamic, Guarded: w.guarded()})
		return
	}
	w.addExt(fn, pos, false)
}

// addRefEdge links a function referenced as a value (dynamic).
func (w *bodyWalker) addRefEdge(fn *types.Func, pos token.Pos) {
	if n := w.b.g.byFn[fn]; n != nil {
		w.owner.Out = append(w.owner.Out, Edge{Callee: n, Pos: pos, Dynamic: true, Guarded: w.guarded()})
		return
	}
	w.addExt(fn, pos, true)
}

// addExt records a use of an external function.
func (w *bodyWalker) addExt(fn *types.Func, pos token.Pos, ref bool) {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	method := sig != nil && sig.Recv() != nil
	w.owner.Ext = append(w.owner.Ext, ExtUse{
		PkgPath: pkgPath, Name: fn.Name(), Method: method, Ref: ref,
		Pos: pos, Guarded: w.guarded(),
	})
}

// addBoundEdge resolves one bound function expression at a tracked
// call-through-variable site.
func (w *bodyWalker) addBoundEdge(bound ast.Expr, pos token.Pos) {
	switch x := ast.Unparen(bound).(type) {
	case *ast.FuncLit:
		// The literal's node was (or will be) created at its visit
		// site with a dynamic edge from this same body; nothing more
		// to add here.
	case *ast.Ident:
		if fn, ok := w.p.Info.Uses[x].(*types.Func); ok {
			w.addFuncEdge(fn, pos, true)
		}
	case *ast.SelectorExpr:
		if s, ok := w.p.Info.Selections[x]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				w.addFuncEdge(fn, pos, true)
			}
			return
		}
		if fn, ok := w.p.Info.Uses[x.Sel].(*types.Func); ok {
			w.addFuncEdge(fn, pos, true)
		}
	}
}

// guarded reports whether the current visit sits inside the then-block
// of an ancestor `if` whose condition checks some expression != nil
// (directly or as an && conjunct).
func (w *bodyWalker) guarded() bool {
	for i := len(w.stack) - 2; i >= 0; i-- {
		ifs, ok := w.stack[i].(*ast.IfStmt)
		if !ok || i+1 >= len(w.stack) || w.stack[i+1] != ifs.Body {
			continue
		}
		if CondHasNilCheck(ifs.Cond) {
			return true
		}
	}
	return false
}

// CondHasNilCheck reports whether the condition contains an `x != nil`
// comparison directly or under && / parens — the shape that marks a
// guarded (optional-telemetry) block.  Exported so analyzers can apply
// the same convention to constructs inside their own bodies.
func CondHasNilCheck(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return CondHasNilCheck(x.X)
	case *ast.BinaryExpr:
		if x.Op == token.LAND {
			return CondHasNilCheck(x.X) || CondHasNilCheck(x.Y)
		}
		if x.Op == token.NEQ {
			return isNil(x.X) || isNil(x.Y)
		}
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// resolveInterfaceCalls turns the collected interface-dispatch sites
// into dynamic edges to every module method that could satisfy them.
func (b *builder) resolveInterfaceCalls(pkgs []*Pkg) {
	if len(b.ifaceCalls) == 0 {
		return
	}
	// All named types declared in the module, in deterministic order.
	var named []types.Type
	for _, p := range pkgs {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, nm := range names {
			if tn, ok := scope.Lookup(nm).(*types.TypeName); ok && !tn.IsAlias() {
				named = append(named, tn.Type())
			}
		}
	}
	for _, ic := range b.ifaceCalls {
		for _, t := range named {
			pt := types.NewPointer(t)
			var impl types.Type
			switch {
			case types.Implements(t, ic.iface):
				impl = t
			case types.Implements(pt, ic.iface):
				impl = pt
			default:
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, nil, ic.name)
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if n := b.g.byFn[fn]; n != nil {
				ic.from.Out = append(ic.from.Out, Edge{
					Callee: n, Pos: ic.pos, Dynamic: true, Guarded: ic.guarded,
				})
			}
		}
	}
}

// children visits the direct AST children of n in source order.
func children(n ast.Node, visit func(ast.Node)) {
	var kids []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if c == n {
			return true
		}
		kids = append(kids, c)
		return false
	})
	for _, k := range kids {
		visit(k)
	}
}

// Step is one entry of a reachability result: the node plus the edge
// chain that first reached it (for diagnostics like "a -> b -> c").
type Step struct {
	Node    *Node
	From    *Step     // nil at a root
	CallPos token.Pos // position of the edge that reached Node
}

// Chain renders the root-to-node call chain as "root -> ... -> node",
// with IDs shortened by trimming the given module path prefix.
func (s *Step) Chain(modPath string) string {
	var ids []string
	for st := s; st != nil; st = st.From {
		ids = append(ids, shortID(st.Node.ID, modPath))
	}
	// Reverse into root-first order.
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	return strings.Join(ids, " -> ")
}

func shortID(id, modPath string) string {
	if rest, ok := strings.CutPrefix(id, modPath+"/"); ok {
		return rest
	}
	if rest, ok := strings.CutPrefix(id, modPath+"."); ok {
		return rest
	}
	return id
}

// Reach walks the graph breadth-first from roots.  follow, when
// non-nil, filters edges (return false to prune); a nil follow takes
// every edge.  The result maps each reached node to the Step that first
// reached it; iterate g.Nodes to visit the result deterministically.
func (g *Graph) Reach(roots []*Node, follow func(Edge) bool) map[*Node]*Step {
	seen := map[*Node]*Step{}
	var queue []*Step
	for _, r := range roots {
		if r == nil || seen[r] != nil {
			continue
		}
		st := &Step{Node: r}
		seen[r] = st
		queue = append(queue, st)
	}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		for _, e := range st.Node.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if seen[e.Callee] != nil {
				continue
			}
			next := &Step{Node: e.Callee, From: st, CallPos: e.Pos}
			seen[e.Callee] = next
			queue = append(queue, next)
		}
	}
	return seen
}
