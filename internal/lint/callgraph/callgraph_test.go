package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// load type-checks one synthetic package and returns its Pkg.  src must
// not import anything beyond the standard library (imports go through
// the source importer, which is slow — the fixture tests in
// internal/lint cover external calls).
func load(t *testing.T, src string) *Pkg {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Pkg{Path: "p", Types: pkg, Info: info, Files: []*ast.File{f}}
}

// edges renders a node's outgoing edges as "callee" / "callee(dyn)" /
// "callee(guard)" strings.
func edges(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		s := e.Callee.ID
		if e.Dynamic {
			s += "(dyn)"
		}
		if e.Guarded {
			s += "(guard)"
		}
		out = append(out, s)
	}
	return out
}

func hasEdge(t *testing.T, n *Node, want string) {
	t.Helper()
	for _, s := range edges(n) {
		if s == want {
			return
		}
	}
	t.Errorf("node %s: missing edge %q; have %v", n.ID, want, edges(n))
}

func noEdgeTo(t *testing.T, n *Node, callee string) {
	t.Helper()
	for _, s := range edges(n) {
		if strings.HasPrefix(s, callee) {
			t.Errorf("node %s: unexpected edge %s", n.ID, s)
		}
	}
}

const src = `package p

type Ring struct{ buf []int }

func (r *Ring) Record(v int) { r.buf[0] = v }

type Doer interface{ Do() }

type A struct{}
func (A) Do() { leafA() }

type B struct{}
func (*B) Do() { leafB() }

func leafA() {}
func leafB() {}
func helper() { leafA() }

type Core struct{ ring *Ring }

func (c *Core) Cycle(d Doer) {
	helper()            // static call
	d.Do()              // interface dispatch
	f := helper
	f()                 // tracked function value
	g := func() { leafB() }
	g()                 // tracked literal
	each([]int{1}, func(int) { leafA() }) // literal passed as callback
	if c.ring != nil {
		c.ring.Record(1) // guarded method call
	}
	use(helper)         // function referenced as a value
	func() { leafB() }() // immediately invoked literal
}

func each(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}

func use(f func()) { _ = f }

//recycle:hotpath
func Hot() { helper() }
`

func TestBuildEdges(t *testing.T) {
	g := Build([]*Pkg{load(t, src)})

	cycle := g.Lookup("p.(Core).Cycle")
	if cycle == nil {
		t.Fatalf("no node for (Core).Cycle; nodes: %v", ids(g))
	}
	hasEdge(t, cycle, "p.helper")               // static
	hasEdge(t, cycle, "p.(A).Do(dyn)")          // interface dispatch to value receiver
	hasEdge(t, cycle, "p.(B).Do(dyn)")          // interface dispatch to pointer receiver
	hasEdge(t, cycle, "p.(Ring).Record(guard)") // nil-guarded call
	hasEdge(t, cycle, "p.(Core).Cycle$1(dyn)")  // g := func(){...}
	hasEdge(t, cycle, "p.(Core).Cycle$2(dyn)")  // callback literal
	hasEdge(t, cycle, "p.(Core).Cycle$3")       // immediately-invoked literal: static

	// The literal nodes carry their own edges.
	hasEdge(t, g.Lookup("p.(Core).Cycle$1"), "p.leafB")
	hasEdge(t, g.Lookup("p.(Core).Cycle$2"), "p.leafA")

	// use(helper) takes helper's value: a dynamic edge, not a call.
	found := false
	for _, e := range cycle.Out {
		if e.Callee.ID == "p.helper" && e.Dynamic {
			found = true
		}
	}
	if !found {
		t.Errorf("missing dynamic reference edge to p.helper; have %v", edges(cycle))
	}

	// Methods never dispatched through the interface still exist as
	// nodes but gain no spurious callers.
	noEdgeTo(t, g.Lookup("p.helper"), "p.(Core).Cycle")
}

func TestReachAndChain(t *testing.T) {
	g := Build([]*Pkg{load(t, src)})
	cycle := g.Lookup("p.(Core).Cycle")

	reach := g.Reach([]*Node{cycle}, nil)
	for _, id := range []string{"p.helper", "p.leafA", "p.leafB", "p.(A).Do", "p.(Ring).Record"} {
		if reach[g.Lookup(id)] == nil {
			t.Errorf("%s not reached from Cycle", id)
		}
	}
	if reach[g.Lookup("p.Hot")] != nil {
		t.Errorf("p.Hot should not be reachable from Cycle")
	}

	// Pruning guarded edges removes the Record subtree.
	unguarded := g.Reach([]*Node{cycle}, func(e Edge) bool { return !e.Guarded })
	if unguarded[g.Lookup("p.(Ring).Record")] != nil {
		t.Errorf("guarded Record edge was not pruned")
	}

	// Chain reconstruction: leafA is reached via some intermediate.
	st := reach[g.Lookup("p.leafA")]
	chain := st.Chain("p")
	if !strings.HasPrefix(chain, "(Core).Cycle") || !strings.HasSuffix(chain, "leafA") {
		t.Errorf("unexpected chain %q", chain)
	}
}

func TestDirective(t *testing.T) {
	g := Build([]*Pkg{load(t, src)})
	if !g.Lookup("p.Hot").Directive("recycle:hotpath") {
		t.Errorf("Hot should carry recycle:hotpath")
	}
	if g.Lookup("p.helper").Directive("recycle:hotpath") {
		t.Errorf("helper should not carry recycle:hotpath")
	}
}

func ids(g *Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		out = append(out, n.ID)
	}
	return out
}
