package lint

import (
	"go/ast"
	"go/types"
)

// DeadKnob audits the configuration structs (config.Machine and
// config.Features in this module): every field must be read by the
// simulator core or by the config package itself (validation, preset
// naming).  A knob nothing reads is worse than dead weight — an
// experiment sweep can "vary" it and silently measure nothing.
type DeadKnob struct {
	ConfigPkg  string   // import path of the config package
	Structs    []string // struct names to audit
	ReaderPkgs []string // packages whose reads make a knob live
}

// NewDeadKnob builds the analyzer for the given config structs.
func NewDeadKnob(configPkg string, structs, readerPkgs []string) *DeadKnob {
	return &DeadKnob{ConfigPkg: configPkg, Structs: structs, ReaderPkgs: readerPkgs}
}

// Name implements Analyzer.
func (*DeadKnob) Name() string { return "deadknob" }

// Doc implements Analyzer.
func (*DeadKnob) Doc() string {
	return "flags configuration fields that the simulator never reads"
}

// Check implements Analyzer.
func (dk *DeadKnob) Check(prog *Program) []Diagnostic {
	cfgPkg := prog.Lookup(dk.ConfigPkg)
	if cfgPkg == nil {
		return nil
	}
	type field struct {
		owner string
		v     *types.Var
	}
	fields := map[types.Object]field{}
	var order []field
	for _, name := range dk.Structs {
		obj := cfgPkg.Pkg.Scope().Lookup(name)
		if obj == nil {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := field{owner: name, v: st.Field(i)}
			fields[st.Field(i)] = f
			order = append(order, f)
		}
	}
	if len(order) == 0 {
		return nil
	}

	readers := map[string]bool{}
	for _, p := range dk.ReaderPkgs {
		readers[p] = true
	}

	read := map[types.Object]bool{}
	for _, pkg := range prog.Pkgs {
		if !readers[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			// Selector uses that are pure assignment targets are not
			// reads; collect them first so the second pass can skip
			// them.
			writes := map[*ast.SelectorExpr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						writes[sel] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || writes[sel] {
					return true
				}
				if fobj := pkg.Info.Uses[sel.Sel]; fobj != nil {
					if _, tracked := fields[fobj]; tracked {
						read[fobj] = true
					}
				}
				return true
			})
		}
	}

	var out []Diagnostic
	for _, f := range order {
		if !read[f.v] {
			out = append(out, Diagnostic{
				Pos:  prog.Position(f.v.Pos()),
				Rule: dk.Name(),
				Msg:  sprintf("config knob %s.%s is never read by %v: dead configuration", f.owner, f.v.Name(), dk.ReaderPkgs),
			})
		}
	}
	return out
}
