package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTree materialises a file tree under a fresh temp dir:
// relative path -> contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadErrors exercises the loader's failure paths; each must
// surface as a descriptive error, never a panic or a silent partial
// load.
func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name    string
		files   map[string]string
		wantErr string
	}{
		{
			name:    "missing go.mod",
			files:   map[string]string{"a/a.go": "package a\n"},
			wantErr: "no go.mod",
		},
		{
			name: "go.mod without module line",
			files: map[string]string{
				"go.mod": "go 1.21\n",
				"a/a.go": "package a\n",
			},
			wantErr: "no module line",
		},
		{
			name: "parse error",
			files: map[string]string{
				"go.mod": "module m\n",
				"a/a.go": "package a\nfunc broken( {\n",
			},
			wantErr: "expected",
		},
		{
			name: "import cycle",
			files: map[string]string{
				"go.mod": "module m\n",
				"a/a.go": "package a\nimport _ \"m/b\"\n",
				"b/b.go": "package b\nimport _ \"m/a\"\n",
			},
			wantErr: "import cycle",
		},
		{
			name: "type error",
			files: map[string]string{
				"go.mod": "module m\n",
				"a/a.go": "package a\nvar x int = \"not an int\"\n",
			},
			wantErr: "cannot use",
		},
		{
			name: "empty package dir is skipped, not an error",
			files: map[string]string{
				"go.mod":        "module m\n",
				"a/a.go":        "package a\n",
				"b/notgo.txt":   "no go files here\n",
				"c/c_test.go":   "package c\n", // test-only dirs are out of scope
				"d/.hidden.go~": "not a go file\n",
			},
			wantErr: "", // loads fine with just package a
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := writeTree(t, tc.files)
			prog, err := Load(root)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Load: %v", err)
				}
				if len(prog.Pkgs) != 1 || prog.Pkgs[0].Path != "m/a" {
					t.Fatalf("unexpected packages: %+v", prog.Pkgs)
				}
				if prog.ModRoot != root {
					t.Fatalf("ModRoot = %q, want %q", prog.ModRoot, root)
				}
				return
			}
			if err == nil {
				t.Fatalf("Load succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestSimPackagesDiscovery checks the scope-discovery walk: every
// package directory under internal/ is in scope except testdata,
// hidden/underscore dirs, and the explicit NonSimPackages opt-outs —
// so a newly added package is linted by default.
func TestSimPackagesDiscovery(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                        "module m\n",
		"main.go":                       "package m\n", // module root: out of per-package scope
		"cmd/tool/main.go":              "package main\n",
		"internal/alpha/a.go":           "package alpha\n",
		"internal/beta/deep/d.go":       "package deep\n",
		"internal/beta/testdata/f.go":   "package f\n",
		"internal/gamma/only_test.go":   "package gamma\n",
		"internal/_wip/w.go":            "package wip\n",
		"internal/lint/l.go":            "package lint\n", // NonSimPackages opt-out
		"internal/obs/server/s.go":      "package server\n",
		"internal/obs/o.go":             "package obs\n",
		"internal/lint/callgraph/c.go":  "package callgraph\n",
		"internal/delta/.hidden/h.go":   "package h\n",
		"internal/delta/real/real.go":   "package real\n",
		"internal/delta/real/extra.go":  "package real\n", // second file, same package once
		"internal/epsilon/e_linux.go":   "package epsilon\n",
		"internal/epsilon/testdata/x/x": "not go\n",
	})
	got := SimPackages(root)
	want := []string{
		"internal/alpha",
		"internal/beta/deep",
		"internal/delta/real",
		"internal/epsilon",
		"internal/obs",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SimPackages = %v, want %v", got, want)
	}
}

// TestIgnoreDirective pins the directive grammar, including the
// multi-rule form one line can use to silence several analyzers.
func TestIgnoreDirective(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"simlint:ignore determinism", []string{"determinism"}},
		{"simlint:ignore determinism hotalloc -- reason here", []string{"determinism", "hotalloc"}},
		{"  simlint:ignore a b c", []string{"a", "b", "c"}},
		{"simlint:ignore -- only a reason", nil},
		{"lint:ignore determinism", nil}, // wrong prefix
		{"just a comment", nil},
	}
	for _, tc := range cases {
		got := ignoreDirective(tc.text)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ignoreDirective(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}
