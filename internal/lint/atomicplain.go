package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicPlain flags mixed atomic/plain access: once any struct field
// (or package-level variable) is passed by address to a sync/atomic
// function anywhere in the program, every access to it must be
// atomic.  A single plain `p.done++` next to `atomic.AddInt64(&p.done,
// 1)` is a data race the race detector only sees on the schedules that
// actually collide; this makes it a review-time finding.
//
// Fields of the typed atomic wrappers (atomic.Int64, atomic.Pointer)
// are safe by construction — they cannot be read or written without
// going through their methods — so the analyzer only concerns the
// legacy pattern of raw atomic calls on plain-typed fields.
type AtomicPlain struct{}

// NewAtomicPlain builds the analyzer.
func NewAtomicPlain() *AtomicPlain { return &AtomicPlain{} }

// Name implements Analyzer.
func (*AtomicPlain) Name() string { return "atomicplain" }

// Doc implements Analyzer.
func (*AtomicPlain) Doc() string {
	return "flags plain reads/writes of fields that are accessed through sync/atomic elsewhere"
}

// Check implements Analyzer.
func (ap *AtomicPlain) Check(prog *Program) []Diagnostic {
	// Pass 1: every `&x` argument of a sync/atomic call records the
	// variable object it names as atomically-accessed, and the exact
	// AST node as a sanctioned access site.
	atomicVars := map[*types.Var]token.Pos{} // object -> first atomic site (for the message)
	sanctioned := map[ast.Node]bool{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					target := ast.Unparen(un.X)
					if v := varOf(pkg.Info, target); v != nil {
						if _, seen := atomicVars[v]; !seen {
							atomicVars[v] = un.Pos()
						}
						sanctioned[target] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: any other appearance of those variables is a plain
	// access.  (Taking the address without an atomic call around it is
	// also flagged: the pointer can then be dereferenced plainly.)
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				expr, ok := n.(ast.Expr)
				if !ok || sanctioned[n] {
					return true
				}
				// Only the outermost expression naming the variable
				// counts: for `s.done` the SelectorExpr is the access,
				// and its .Sel must not re-report.
				switch e := expr.(type) {
				case *ast.SelectorExpr:
					v := varOf(pkg.Info, e)
					if v == nil {
						return true
					}
					if pos, hot := atomicVars[v]; hot {
						out = append(out, ap.found(prog, e.Pos(), v, pos))
						return false // do not descend into .Sel
					}
				case *ast.Ident:
					v := varOf(pkg.Info, e)
					if v == nil || v.IsField() {
						// A bare field ident is a declaration or a
						// composite-literal key, not an access.
						return true
					}
					if pos, hot := atomicVars[v]; hot {
						out = append(out, ap.found(prog, e.Pos(), v, pos))
					}
				}
				return true
			})
		}
	}
	return out
}

func (ap *AtomicPlain) found(prog *Program, at token.Pos, v *types.Var, atomicAt token.Pos) Diagnostic {
	where := prog.Position(atomicAt)
	return Diagnostic{
		Pos: prog.Position(at), Rule: ap.Name(),
		Msg: sprintf("plain access to %s, which is accessed via sync/atomic at %s:%d; all accesses must be atomic (or migrate to a typed atomic)",
			v.Name(), where.Filename, where.Line),
	}
}

// varOf resolves an expression to the struct-field or package-level
// variable it names, nil otherwise.  Locals are excluded: a local
// passed to sync/atomic is unusual but cannot be shared across
// goroutines unless it escapes through one of the tracked shapes.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		// Qualified package-level variable (pkg.Var).
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			if v.IsField() {
				return v
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
		}
	}
	return nil
}
