package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardRule names one telemetry entry point that must be nil-guarded at
// every call site.  RecvType is the fully qualified receiver type
// ("pkgpath.Type"), Method the method name — or "*" to cover every
// method of the type (used for the pipetrace recorder, whose whole
// surface is hot-path hooks).  GuardField names the field on the
// receiver whose nil check enables the call ("debugTrace" for c.trace);
// the empty string means the receiver expression itself is the guard
// (c.ring for c.ring.Record).
//
// Wildcard rules exempt call sites inside the receiver type's own
// package: the recorder's methods calling each other are its
// implementation, not hot-path hook sites.
type GuardRule struct {
	RecvType   string
	Method     string
	GuardField string
}

// TraceGuard flags telemetry calls not dominated by the corresponding
// enabled/nil check.  The flight-recorder ring and the legacy trace
// hook are optional: when disabled they are nil, and the hot loop's
// zero-alloc budget additionally requires that event arguments are
// never materialised on the disabled path.  A call site is accepted
// only when an enclosing if statement's condition contains
// "<guard> != nil" (possibly as a conjunct) and the call sits in that
// if's body.
type TraceGuard struct {
	Scope func(pkgPath string) bool
	Rules []GuardRule
}

// NewTraceGuard builds the analyzer with the given scope and rules.
func NewTraceGuard(scope func(string) bool, rules []GuardRule) *TraceGuard {
	return &TraceGuard{Scope: scope, Rules: rules}
}

// Name implements Analyzer.
func (*TraceGuard) Name() string { return "traceguard" }

// Doc implements Analyzer.
func (*TraceGuard) Doc() string {
	return "flags telemetry calls (flight-recorder Record, trace hooks) not dominated by their enabled-nil check"
}

// Check implements Analyzer.
func (tg *TraceGuard) Check(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		if tg.Scope != nil && !tg.Scope(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if d := tg.checkCall(prog, pkg, call, stack); d != nil {
					out = append(out, *d)
				}
				return true
			})
		}
	}
	return out
}

// checkCall matches one call expression against the rules and verifies
// guard dominance using the current ancestor stack (root .. call).
func (tg *TraceGuard) checkCall(prog *Program, pkg *Package, call *ast.CallExpr, stack []ast.Node) *Diagnostic {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn := methodOf(pkg, sel)
	if fn == nil {
		return nil
	}
	recv := recvTypeName(fn)
	for _, r := range tg.Rules {
		if recv != r.RecvType {
			continue
		}
		if r.Method == "*" {
			// Wildcard rules guard the type's whole surface but exempt
			// its defining package (implementation, not hook sites).
			if i := strings.LastIndex(r.RecvType, "."); i >= 0 && pkg.Path == r.RecvType[:i] {
				continue
			}
		} else if fn.Name() != r.Method {
			continue
		}
		guard := exprPath(sel.X)
		if r.GuardField != "" {
			guard += "." + r.GuardField
		}
		if guardDominates(stack, guard) {
			return nil
		}
		return &Diagnostic{
			Pos:  prog.Position(call.Lparen),
			Rule: tg.Name(),
			Msg: sprintf("call to %s.%s not dominated by an enclosing \"if %s != nil\" guard",
				r.RecvType, fn.Name(), guard),
		}
	}
	return nil
}

// methodOf resolves a selector to the method it calls, or nil when the
// selector is not a method (package function, field of function type
// not covered by types.Selections, conversion, ...).
func methodOf(pkg *Package, sel *ast.SelectorExpr) *types.Func {
	if s, ok := pkg.Info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return fn
		}
	}
	return nil
}

// recvTypeName renders a method's receiver as "pkgpath.Type".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// guardDominates reports whether some ancestor if statement both
// contains the call in its body and tests "<guard> != nil" in its
// condition.  stack holds the ancestor path root..call; requiring
// stack[i+1] == ifStmt.Body rejects calls sitting in the condition,
// init statement, or else branch.
func guardDominates(stack []ast.Node, guard string) bool {
	if guard == "" {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok || i+1 >= len(stack) || stack[i+1] != ifs.Body {
			continue
		}
		if condChecksNil(ifs.Cond, guard) {
			return true
		}
	}
	return false
}

// condChecksNil reports whether the condition contains "<guard> != nil"
// directly or as a conjunct of &&.  Disjunctions do not count: either
// side of || can be false while the branch runs.
func condChecksNil(e ast.Expr, guard string) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return condChecksNil(x.X, guard)
	case *ast.BinaryExpr:
		if x.Op == token.LAND {
			return condChecksNil(x.X, guard) || condChecksNil(x.Y, guard)
		}
		if x.Op == token.NEQ {
			if exprPath(x.X) == guard && isNilIdent(x.Y) {
				return true
			}
			if exprPath(x.Y) == guard && isNilIdent(x.X) {
				return true
			}
		}
	}
	return false
}

// exprPath renders an ident or selector chain ("c", "c.ring"); any
// other expression shape yields "" and never matches a guard.
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprPath(x.X)
	}
	return ""
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
