package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"recyclesim/internal/lint/callgraph"
)

// HotAlloc turns PR 2's runtime steady-state allocation budgets into
// review-time diagnostics: functions annotated `//recycle:hotpath`
// (the cycle loop, the flight-recorder Record, the pipetrace recorder
// methods) and everything they transitively call must be free of
// allocating constructs.
//
// Traversal contract:
//
//   - Roots are declarations carrying a `//recycle:hotpath` doc
//     directive; if the module declares none the analyzer says so
//     instead of silently passing.
//   - Edges into `//recycle:coldpath` declarations are not followed:
//     that annotation marks deliberate off-steady-state work (invariant
//     dumps, crash reporting) reached from hot code only when the
//     simulation is already failing.
//   - Guarded edges (call sites dominated by an `if x != nil` check)
//     are not followed either — that is the optional-telemetry idiom,
//     where the nil check keeps disabled runs off the subtree; the
//     traceguard analyzer separately enforces the guards exist.
//
// The construct checks are heuristics tuned to this codebase, not an
// escape analysis: composite literals whose address is taken, map
// literals, closures that escape (stored in fields or structs,
// returned, sent), `append` that grows a slice other than the pooled
// `x = append(x, ...)` self-append shape, arguments boxed into
// interface parameters, string concatenation, fmt calls, and defer
// inside loops.  Arguments to panic are exempt everywhere: a panicking
// simulation is off the budget by definition.
type HotAlloc struct{}

// NewHotAlloc builds the analyzer.
func NewHotAlloc() *HotAlloc { return &HotAlloc{} }

// Name implements Analyzer.
func (*HotAlloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (*HotAlloc) Doc() string {
	return "flags allocating constructs in //recycle:hotpath functions and their transitive callees"
}

// HotPathDirective and ColdPathDirective are the annotation spellings.
const (
	HotPathDirective  = "recycle:hotpath"
	ColdPathDirective = "recycle:coldpath"
)

// Check implements Analyzer.
func (h *HotAlloc) Check(prog *Program) []Diagnostic {
	g := prog.Callgraph()
	var roots []*callgraph.Node
	for _, n := range g.Nodes {
		if n.Directive(HotPathDirective) {
			roots = append(roots, n)
		}
	}
	var out []Diagnostic
	if len(roots) == 0 {
		out = append(out, Diagnostic{
			Pos: prog.Position(token.NoPos), Rule: h.Name(),
			Msg: "no //recycle:hotpath annotations found; the analyzer would silently pass",
		})
		return out
	}
	reach := g.Reach(roots, func(e callgraph.Edge) bool {
		return !e.Guarded && !e.Callee.Directive(ColdPathDirective)
	})
	for _, n := range g.Nodes {
		st := reach[n]
		if st == nil {
			continue
		}
		chain := st.Chain(prog.ModPath)
		diag := func(pos token.Pos, format string, args ...interface{}) {
			out = append(out, Diagnostic{
				Pos: prog.Position(pos), Rule: h.Name(),
				Msg: sprintf(format, args...) + " (hot via " + chain + ")",
			})
		}
		h.checkNode(n, diag)
	}
	return out
}

// checkNode scans one hot function's own body (nested literals are
// their own nodes) with an ancestor stack for loop/panic context.
func (h *HotAlloc) checkNode(n *callgraph.Node, diag func(token.Pos, string, ...interface{})) {
	body := n.Body()
	if body == nil {
		return
	}
	w := &hotWalker{pkg: n.Pkg, emit: diag}
	w.walkStmts(body.List)
}

// hotWalker carries the traversal state: the ancestor stack (for
// loop-nesting, guard, and escape-context questions) and whether the
// current subtree is a panic argument.
type hotWalker struct {
	pkg     *callgraph.Pkg
	emit    func(token.Pos, string, ...interface{})
	stack   []ast.Node
	inPanic bool
}

// diag reports a finding unless the site sits inside a nil-guarded
// then-block: that is the optional-telemetry idiom, and the call graph
// already prunes guarded edges, so constructs materialising arguments
// for guarded calls are likewise off the steady-state path.
func (w *hotWalker) diag(pos token.Pos, format string, args ...interface{}) {
	for i := len(w.stack) - 2; i >= 0; i-- {
		ifs, ok := w.stack[i].(*ast.IfStmt)
		if !ok || i+1 >= len(w.stack) || w.stack[i+1] != ifs.Body {
			continue
		}
		if callgraph.CondHasNilCheck(ifs.Cond) {
			return
		}
	}
	w.emit(pos, format, args...)
}

func (w *hotWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walk(s)
	}
}

func (w *hotWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	if lit, ok := n.(*ast.FuncLit); ok {
		// The literal body is its own call-graph node; only the
		// literal's escape shape concerns this function.
		w.checkClosure(lit)
		return
	}
	w.stack = append(w.stack, n)
	defer func() { w.stack = w.stack[:len(w.stack)-1] }()

	switch x := n.(type) {
	case *ast.DeferStmt:
		if w.inLoop() {
			w.diag(x.Pos(), "defer inside a loop allocates a defer record per iteration")
		}
	case *ast.BinaryExpr:
		w.checkConcat(x)
	case *ast.UnaryExpr:
		if x.Op == token.AND && !w.inPanic {
			if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				w.diag(x.Pos(), "&%s composite literal escapes to the heap", litType(w.pkg, cl))
			}
		}
	case *ast.CompositeLit:
		if tv, ok := w.pkg.Info.Types[x]; ok && !w.inPanic {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				w.diag(x.Pos(), "map literal allocates")
			}
		}
	case *ast.CallExpr:
		if w.checkCall(x) {
			return // panic args walked with the exemption set
		}
	}
	children(n, func(c ast.Node) { w.walk(c) })
}

// checkCall handles the call-site rules (fmt, append discipline,
// interface boxing) and the panic exemption.  It returns true when it
// walked the children itself.
func (w *hotWalker) checkCall(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// Type conversions are not calls; a conversion to an interface
	// type boxes, which the boxing check below sees at real calls.
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	if id, ok := fun.(*ast.Ident); ok {
		if obj, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch obj.Name() {
			case "panic":
				// Everything under panic is off the steady-state path.
				saved := w.inPanic
				w.inPanic = true
				for _, a := range call.Args {
					w.walk(a)
				}
				w.inPanic = saved
				return true
			case "append":
				w.checkAppend(call)
			}
			return false
		}
	}
	if w.inPanic {
		return false
	}
	// fmt calls allocate for formatting state and boxed operands; one
	// diagnostic covers the call, so the per-argument boxing check is
	// skipped for them.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := w.pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				w.diag(call.Pos(), "fmt.%s allocates; hot paths must format nothing", sel.Sel.Name)
				return false
			}
		}
	}
	w.checkBoxing(call)
	return false
}

// checkAppend accepts only the pooled-buffer shapes: `x = append(x,
// ...)` growing the same expression it assigns (amortized by the
// retained capacity), or appending to an explicit reslice `buf[:0]`.
// Anything else is append-without-capacity-evidence.
func (w *hotWalker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 || w.inPanic {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if sl, ok := dst.(*ast.SliceExpr); ok {
		// buf[:0] / buf[:0:n]: reuse of an existing allocation.
		if sl.High != nil && isZeroLit(sl.High) {
			return
		}
	}
	// Self-append: the enclosing statement is `<expr> = append(<expr>, ...)`.
	if len(w.stack) >= 2 {
		if as, ok := w.stack[len(w.stack)-2].(*ast.AssignStmt); ok &&
			len(as.Lhs) == 1 && as.Tok == token.ASSIGN &&
			exprEqual(as.Lhs[0], dst) {
			return
		}
	}
	w.diag(call.Pos(), "append without capacity evidence; grow a pooled buffer (x = append(x, ...)) or reslice x[:0]")
}

// checkBoxing flags arguments whose concrete type is implicitly
// converted to an interface parameter — the conversion allocates for
// any value wider than a pointer word.
func (w *hotWalker) checkBoxing(call *ast.CallExpr) {
	tv, ok := w.pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := w.pkg.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) || isNilType(at.Type) {
			continue
		}
		if _, isPtr := at.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without a new allocation
		}
		w.diag(arg.Pos(), "argument of type %s is boxed into interface parameter %s", at.Type.String(), pt.String())
	}
}

// checkConcat flags non-constant string concatenation.
func (w *hotWalker) checkConcat(x *ast.BinaryExpr) {
	if x.Op != token.ADD || w.inPanic {
		return
	}
	tv, ok := w.pkg.Info.Types[x]
	if !ok || tv.Value != nil { // constant-folded concat is free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		w.diag(x.Pos(), "string concatenation allocates; hot paths must not build strings")
	}
}

// checkClosure flags function literals in escaping positions: stored
// into a field or element, returned, placed in a composite literal, or
// sent on a channel.  A literal passed directly as a call argument (the
// zero-alloc scan-callback idiom) or bound to a local variable is not
// flagged — the compiler keeps those on the stack when they do not
// escape, and the literal's own body is checked as its own node.
func (w *hotWalker) checkClosure(lit *ast.FuncLit) {
	if w.inPanic || len(w.stack) == 0 {
		return
	}
	parent := w.stack[len(w.stack)-1]
	escapes := false
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != ast.Expr(lit) {
				continue
			}
			if i < len(p.Lhs) {
				switch ast.Unparen(p.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					escapes = true
				}
			}
		}
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
		escapes = true
	}
	if escapes {
		w.diag(lit.Pos(), "closure escapes (stored or returned); its context allocates per execution")
	}
}

// inLoop reports whether an ancestor of the current node (within this
// function body) is a for or range statement.
func (w *hotWalker) inLoop() bool {
	for i := len(w.stack) - 2; i >= 0; i-- {
		switch w.stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// children visits direct AST children in source order (mirror of the
// callgraph package's helper; kept local to avoid exporting it).
func children(n ast.Node, visit func(ast.Node)) {
	var kids []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if c == n {
			return true
		}
		kids = append(kids, c)
		return false
	})
	for _, k := range kids {
		visit(k)
	}
}

func litType(p *callgraph.Pkg, cl *ast.CompositeLit) string {
	if tv, ok := p.Info.Types[cl]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, func(*types.Package) string { return "" })
	}
	return "composite"
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}

func isNilType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// exprEqual compares two simple lvalue expressions structurally:
// identifiers, selector chains, literals, and index expressions whose
// indices are built from those (covering the pooled ring-slot idiom
// `w.slots[due&w.mask] = append(w.slots[due&w.mask], ...)`).
func exprEqual(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && exprEqual(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(x.X, y.X) && exprEqual(x.Index, y.Index)
	case *ast.BinaryExpr:
		y, ok := b.(*ast.BinaryExpr)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X) && exprEqual(x.Y, y.Y)
	case *ast.BasicLit:
		y, ok := b.(*ast.BasicLit)
		return ok && x.Kind == y.Kind && x.Value == y.Value
	}
	return false
}
