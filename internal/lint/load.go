package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks every package of the module containing
// dir (non-test files only) using nothing but the standard library:
// module-internal imports are resolved from source by walking the
// module tree, and standard-library imports go through the go/importer
// "source" importer, so no compiled export data is required.
func Load(dir string) (*Program, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modPath: modPath,
		modRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
		pkgs:    map[string]*Package{},
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: fset, ModPath: modPath, ModRoot: root}
	for _, d := range dirs {
		path := modPath
		if rel, _ := filepath.Rel(root, d); rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := ld.load(path); err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", path, err)
		}
		prog.Pkgs = append(prog.Pkgs, ld.pkgs[path])
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// packageDirs returns every directory under root holding at least one
// non-test .go file, skipping testdata, hidden directories, and .git.
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(out) == 0 || out[len(out)-1] != dir {
				out = append(out, dir)
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// loader type-checks packages on demand, resolving module-internal
// imports recursively and delegating the rest to the source importer.
type loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	cache   map[string]*types.Package
	pkgs    map[string]*Package
	loading []string // import stack for cycle reporting
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.load(path)
}

func (l *loader) load(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle: %s", strings.Join(append(l.loading, path), " -> "))
		}
		return p, nil
	}
	if path != l.modPath && !strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.std.Import(path)
		if err == nil {
			l.cache[path] = p
		}
		return p, err
	}

	dir := l.modRoot
	if path != l.modPath {
		dir = filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	}
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	l.cache[path] = nil // cycle marker
	l.loading = append(l.loading, path)
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	l.loading = l.loading[:len(l.loading)-1]
	if err != nil {
		delete(l.cache, path)
		return nil, err
	}
	l.cache[path] = pkg
	l.pkgs[path] = &Package{Path: path, Pkg: pkg, Info: info, Files: files}
	return pkg, nil
}

// parseDir parses the non-test .go files of one directory in sorted
// filename order (ParseDir returns a map, which would make positions
// and diagnostics order-unstable).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}
