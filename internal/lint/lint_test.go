package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureProg memoizes the type-checked fixture module; loading it
// compiles part of the standard library from source, which is too slow
// to repeat per test.
var fixtureProg *Program

func loadFixture(t *testing.T) *Program {
	t.Helper()
	if fixtureProg == nil {
		prog, err := Load(filepath.Join("testdata", "fixture"))
		if err != nil {
			t.Fatalf("loading fixture module: %v", err)
		}
		fixtureProg = prog
	}
	return fixtureProg
}

// markers scans the fixture sources for "// <tag>:<rule>" trailing
// comments and returns the expected "file:line:rule" keys, where file
// is the base filename (fixture file names are unique).
func markers(t *testing.T, tag string) []string {
	t.Helper()
	var out []string
	root := filepath.Join("testdata", "fixture")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			rest := line
			for {
				idx := strings.Index(rest, "// "+tag+":")
				if idx < 0 {
					break
				}
				rest = rest[idx+len("// "+tag+":"):]
				rule := rest
				if sp := strings.IndexAny(rule, " \t"); sp >= 0 {
					rule = rule[:sp]
				}
				out = append(out, key(filepath.Base(path), i+1, rule))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixture markers: %v", err)
	}
	if len(out) == 0 {
		t.Fatalf("no %q markers found under %s", tag, root)
	}
	sort.Strings(out)
	return out
}

func key(file string, line int, rule string) string {
	return file + ":" + itoa(line) + ":" + rule
}

func itoa(n int) string { return sprintf("%d", n) }

func diagKeys(diags []Diagnostic) []string {
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		out = append(out, key(filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule))
	}
	sort.Strings(out)
	return out
}

// TestAnalyzersOnFixture is the golden test: the full default suite
// over the fixture module must report exactly the marked findings —
// every want: marker (positives) and nothing else (negatives,
// including the suppressed site).
func TestAnalyzersOnFixture(t *testing.T) {
	prog := loadFixture(t)
	got := diagKeys(Run(prog, Default(prog)))
	want := markers(t, "want")
	if !equal(got, want) {
		t.Errorf("diagnostic mismatch\n got: %s\nwant: %s", strings.Join(got, "\n      "), strings.Join(want, "\n      "))
	}
}

// TestAnalyzersIndividually re-runs each analyzer alone and checks it
// reports exactly the markers carrying its rule name, so a rule cannot
// lean on another analyzer's findings to pass the combined test.
func TestAnalyzersIndividually(t *testing.T) {
	prog := loadFixture(t)
	for _, a := range Default(prog) {
		t.Run(a.Name(), func(t *testing.T) {
			var want []string
			for _, k := range markers(t, "want") {
				if strings.HasSuffix(k, ":"+a.Name()) {
					want = append(want, k)
				}
			}
			got := diagKeys(Run(prog, []Analyzer{a}))
			if !equal(got, want) {
				t.Errorf("diagnostic mismatch\n got: %s\nwant: %s", strings.Join(got, "\n      "), strings.Join(want, "\n      "))
			}
		})
	}
}

// TestSuppression checks the ignore-directive machinery itself: every
// checked: marker site must be reported by the raw analyzer that owns
// its rule and filtered by Run.  The hotpath fixture carries one
// directive naming two rules (determinism and hotalloc), so this also
// covers multi-rule `//simlint:ignore a b` directives.
func TestSuppression(t *testing.T) {
	prog := loadFixture(t)
	suppressed := markers(t, "checked")
	var raw []Diagnostic
	for _, a := range Default(prog) {
		raw = append(raw, a.Check(prog)...)
	}
	rawKeys := diagKeys(raw)
	for _, want := range suppressed {
		if !contains(rawKeys, want) {
			t.Errorf("raw Check missed suppressed site %s; got %v", want, rawKeys)
		}
	}
	filtered := diagKeys(Run(prog, Default(prog)))
	for _, want := range suppressed {
		if contains(filtered, want) {
			t.Errorf("Run failed to suppress %s despite simlint:ignore directive", want)
		}
	}
}

// TestRepoIsClean encodes the acceptance criterion that the shipped
// tree lints clean: the default suite over this module itself must
// report nothing.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	prog, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if diags := Run(prog, Default(prog)); len(diags) > 0 {
		msgs := make([]string, len(diags))
		for i, d := range diags {
			msgs[i] = d.String()
		}
		t.Errorf("repository has %d lint finding(s):\n%s", len(diags), strings.Join(msgs, "\n"))
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
