package core

import (
	"fixture/internal/obs/server"
	"fixture/internal/sweep"
)

// Run is the fixture's simulation entry point (see lint.PureSimRoots):
// puresim walks everything reachable from here.  The sweep fan-out
// sits on the concurrency allowlist and must not be flagged; the
// server call reaches the opted-out package whose impurity must be —
// every finding it causes is marked in server.go, not here.
func (c *Core) Run(n int) int {
	c.cycle++
	out := make([]int, n)
	sweep.Fan(n, func(i int) { out[i] = i })
	total := 0
	for _, v := range out {
		total += v
	}
	return total + server.Stamp(map[string]int{"a": 1})
}
