package core

import "fixture/internal/obs"

// Core carries the optional telemetry hooks the traceguard analyzer
// watches: a legacy string-trace closure and a flight-recorder ring.
// Both are nil when telemetry is off, so every call must sit inside the
// matching nil check.
type Core struct {
	debugTrace func(string)
	ring       *obs.Ring
	cycle      uint64
}

func (c *Core) trace(s string) { c.debugTrace(s) }

// GuardedSites holds the negative space: calls correctly dominated by
// their nil checks, including a guard conjoined with another condition
// and a guard spelled nil-first.
func (c *Core) GuardedSites(n int) {
	if c.debugTrace != nil {
		c.trace("renamed")
	}
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle})
	}
	if c.ring != nil && n > 0 {
		c.ring.Record(obs.Event{Cycle: c.cycle, Arg: uint64(n)})
	}
	if nil != c.ring {
		c.ring.Record(obs.Event{Cycle: c.cycle})
	}
	r := obs.NewRing(16)
	if r != nil {
		r.Record(obs.Event{Cycle: c.cycle})
	}
}

// UnguardedSites holds the findings: bare calls, a call guarded by the
// wrong hook, a guard that is only one side of ||, and a call in an
// else branch of the right check.
func (c *Core) UnguardedSites(n int) {
	c.trace("fetch")                         // want:traceguard
	c.ring.Record(obs.Event{Cycle: c.cycle}) // want:traceguard
	if c.debugTrace != nil {                 // wrong guard for the ring
		c.ring.Record(obs.Event{Cycle: c.cycle}) // want:traceguard
	}
	if c.ring != nil || n > 0 {
		c.ring.Record(obs.Event{Cycle: c.cycle}) // want:traceguard
	}
	if c.ring != nil {
		_ = n
	} else {
		c.ring.Record(obs.Event{Cycle: c.cycle}) // want:traceguard
	}
}
