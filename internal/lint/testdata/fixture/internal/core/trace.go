package core

import (
	"fixture/internal/obs"
	"fixture/internal/obs/pipetrace"
)

// Core carries the optional telemetry hooks the traceguard analyzer
// watches: a legacy string-trace closure, a flight-recorder ring, and a
// per-instruction pipeline tracer.  All are nil when telemetry is off,
// so every call must sit inside the matching nil check.
type Core struct {
	debugTrace func(string)
	ring       *obs.Ring
	ptrace     *pipetrace.Recorder
	cycle      uint64
}

func (c *Core) trace(s string) { c.debugTrace(s) }

// pipeTrace is itself guarded internally, but the analyzer still
// requires the guard at each call site so disabled-path argument
// materialisation stays visible in review.
func (c *Core) pipeTrace(pc uint64) {
	if c.ptrace != nil {
		_ = c.ptrace.OnRename(c.cycle + pc)
	}
}

// GuardedSites holds the negative space: calls correctly dominated by
// their nil checks, including a guard conjoined with another condition
// and a guard spelled nil-first.
func (c *Core) GuardedSites(n int) {
	if c.debugTrace != nil {
		c.trace("renamed")
	}
	if c.ring != nil {
		c.ring.Record(obs.Event{Cycle: c.cycle})
	}
	if c.ring != nil && n > 0 {
		c.ring.Record(obs.Event{Cycle: c.cycle, Arg: uint64(n)})
	}
	if nil != c.ring {
		c.ring.Record(obs.Event{Cycle: c.cycle})
	}
	r := obs.NewRing(16)
	if r != nil {
		r.Record(obs.Event{Cycle: c.cycle})
	}
	if c.ptrace != nil {
		c.pipeTrace(uint64(n))
	}
	if c.ptrace != nil {
		c.ptrace.OnCommit(1, c.cycle)
	}
	if c.ptrace != nil && n > 0 {
		_ = c.ptrace.OnRename(c.cycle)
	}
}

// UnguardedSites holds the findings: bare calls, a call guarded by the
// wrong hook, a guard that is only one side of ||, and a call in an
// else branch of the right check.
func (c *Core) UnguardedSites(n int) {
	c.trace("fetch")                         // want:traceguard
	c.ring.Record(obs.Event{Cycle: c.cycle}) // want:traceguard
	if c.debugTrace != nil {                 // wrong guard for the ring
		c.ring.Record(obs.Event{Cycle: c.cycle}) // want:traceguard
	}
	if c.ring != nil || n > 0 {
		c.ring.Record(obs.Event{Cycle: c.cycle}) // want:traceguard
	}
	if c.ring != nil {
		_ = n
	} else {
		c.ring.Record(obs.Event{Cycle: c.cycle}) // want:traceguard
	}
	c.pipeTrace(uint64(n))         // want:traceguard
	_ = c.ptrace.OnRename(c.cycle) // want:traceguard
	if c.debugTrace != nil {       // wrong guard for the pipe tracer
		c.ptrace.OnCommit(1, c.cycle) // want:traceguard
	}
}
