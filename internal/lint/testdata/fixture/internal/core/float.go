package core

// ApproxGate packs the floating-point comparisons: exact equality
// tests are findings, ordered comparisons and integer equality are not.
func ApproxGate(a, b float64, x float32, i, j int) bool {
	if a == b { // want:floatcmp
		return true
	}
	if x != 0 { // want:floatcmp
		return false
	}
	if a < b {
		return true
	}
	return i == j
}
