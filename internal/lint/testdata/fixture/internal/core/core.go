// Package core is the determinism fixture plus the external
// writer/reader the deadstat and deadknob analyzers look for: it keeps
// the clean counters and knobs live so only the deliberately broken
// ones are flagged.
package core

import (
	"math/rand"
	_ "sync" // want:determinism
	"time"

	"fixture/internal/config"
	"fixture/internal/stats"
)

// Tick is the live path: it writes every clean counter and reads every
// clean knob.  WriteOnly is only ever assigned, which must not count as
// a read.
func Tick(st *stats.Sim, m *config.Machine, f *config.Features) {
	st.Cycles++
	st.Skipped += 1
	st.PerRun = append(st.PerRun, st.Cycles)
	if m.Width > 0 && f.TME {
		st.Cycles++
	}
	m.WriteOnly = 1
}

// Rollback holds the shrinking and snapshot writes deadstat must flag
// at the write site.
func Rollback(st *stats.Sim) {
	st.Shrunk-- // want:deadstat
	st.Snap = 5 // want:deadstat
}

// Hazards packs the nondeterministic constructs, one per line, plus a
// suppressed map range that only the raw analyzer may report.
func Hazards(m map[int]int) int {
	total := 0
	//simlint:ignore determinism -- commutative sum: visit order immaterial
	for _, v := range m { // checked:determinism
		total += v
	}
	for k, v := range m { // want:determinism
		if k > 0 {
			total *= v
		}
	}
	ch := make(chan int, 1)
	go func() { ch <- 1 }() // want:determinism
	total += <-ch           // want:determinism
	_ = time.Now()          // want:determinism
	total += rand.Intn(4)   // want:determinism
	return total
}

// Block holds the select finding.
func Block() {
	select {} // want:determinism
}

// Clean is the negative space: an order-independent map copy and a
// seeded private generator, neither of which may be flagged.
func Clean(src map[int]int) map[int]int {
	dst := make(map[int]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	rng := rand.New(rand.NewSource(42))
	dst[-1] = rng.Intn(4)
	return dst
}
