// Package hotpath is the hotalloc fixture: Step carries the
// //recycle:hotpath annotation, so Step and everything it transitively
// calls must be free of allocating constructs.  dump carries
// //recycle:coldpath and is exempt despite being reachable, and the
// nil-guarded block plays the optional-telemetry idiom, which the
// analyzer treats as off the steady-state path.
package hotpath

import (
	"fmt"
	"time"
)

// sink models a consumer with an interface parameter (boxing target).
func sink(v interface{}) { _ = v }

type point struct{ x, y int }

type buf struct {
	recs  []int
	slots [][]int
	mask  int
	emit  func(int)
	p     *point
}

// release is clean; only its defer-in-loop call site is a finding.
func release(int) {}

// helper is never annotated itself but inherits hotness from Step.
func helper(a, b string) string {
	return a + b // want:hotalloc
}

// each is the zero-alloc scan-callback idiom: the literal its callers
// pass stays on the stack, so neither side is a finding.
func each(xs []string, f func(string)) {
	for _, x := range xs {
		f(x)
	}
}

//recycle:coldpath
func dump(xs []int) {
	fmt.Println(xs) // reachable from Step but coldpath-stopped: clean
}

//recycle:hotpath
func (b *buf) Step(names []string, dbg func(string)) int {
	if len(names) == 0 {
		dump(b.recs)                                           // coldpath callee: clean
		panic(fmt.Sprintf("empty step, %d recs", len(b.recs))) // panic args are off-budget: clean
	}
	b.recs = append(b.recs, 1) // pooled self-append: clean
	b.recs = append(b.recs[:0], 2)
	// Regression for the event wheel's ring-slot pooling: a self-append
	// through an index built from a binary expression is still a
	// self-append.
	due := len(names)
	b.slots[due&b.mask] = append(b.slots[due&b.mask], 3)
	other := append(names, "x")    // want:hotalloc
	b.p = &point{x: 1}             // want:hotalloc
	m := map[int]int{}             // want:hotalloc
	sink(len(m))                   // want:hotalloc
	sink(b.p)                      // pointer argument boxes for free: clean
	fmt.Println(len(other))        // want:hotalloc
	b.emit = func(v int) { _ = v } // want:hotalloc
	each(names, func(s string) { _ = s })
	if dbg != nil {
		dbg("step " + names[0]) // guarded telemetry: clean
	}
	for i := 0; i < len(names); i++ {
		defer release(i) // want:hotalloc
	}
	//simlint:ignore determinism hotalloc -- multi-rule suppression fixture: one directive, two analyzers
	legend := fmt.Sprint(time.Now()) // checked:determinism // checked:hotalloc
	_ = legend
	return len(helper(names[0], "suffix")) + len(b.recs)
}
