package sweep

import "sync/atomic"

// Progress mirrors the raw-atomic counter pattern atomicplain guards:
// once a field is touched through sync/atomic anywhere in the program,
// every access to it must be atomic.  The sync/atomic import itself is
// fine here — this package sits on the concurrency allowlist.
type Progress struct {
	done  int64
	total int64 // plain-only field: never atomic, never flagged
}

// Inc and Done are the sanctioned atomic accesses.
func (p *Progress) Inc() { atomic.AddInt64(&p.done, 1) }

// Done reports the completed count.
func (p *Progress) Done() int64 { return atomic.LoadInt64(&p.done) }

// Racy mixes plain accesses with the atomic ones above.
func (p *Progress) Racy() int64 {
	p.done = 0    // want:atomicplain
	return p.done // want:atomicplain
}

// Remaining uses the plain-only field, which stays unflagged.
func (p *Progress) Remaining() int64 { return p.total - p.Done() }
