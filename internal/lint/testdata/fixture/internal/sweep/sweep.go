// Package sweep mirrors the real module's parallelism boundary: it is
// inside the determinism scope but on the concurrency allowlist
// (lint.ConcurrencyAllowed), so the sync import, goroutines, and
// channel operations below must NOT be reported — while the
// non-concurrency determinism rules still apply (the map range at the
// bottom must be).
package sweep

import "sync"

// Fan runs job(0..n-1) on n goroutines; every concurrency construct
// here is allowlisted.
func Fan(n int, job func(int)) {
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job(<-ch)
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	wg.Wait()
}

// Sum still violates the map-order rule: the allowlist covers
// concurrency constructs only.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want:determinism
		total += v
	}
	return total
}
