// Package obs is a minimal stand-in for the real telemetry package so
// the traceguard fixture can exercise the Ring.Record rule.
package obs

// Event is one telemetry record.
type Event struct {
	Cycle uint64
	Arg   uint64
}

// Ring is a bounded event recorder; a nil Ring means recording is off.
type Ring struct {
	buf []Event
	n   uint64
}

// NewRing builds a recorder holding the last n events.
func NewRing(n int) *Ring { return &Ring{buf: make([]Event, n)} }

// Record appends one event, overwriting the oldest.
func (r *Ring) Record(e Event) {
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
}
