// Package server mirrors the real module's live-observability server:
// it sits under internal/ but on the lint.NonSimPackages opt-out list,
// so the per-package determinism rules skip it by design.  The puresim
// analyzer must still flag every impurity below, because core.Run
// reaches this package — exactly the hole the transitive analysis
// exists to close (which is why these lines carry only puresim
// markers, never determinism ones).
package server

import (
	"math/rand"
	"os"
	"time"
)

// Stamp leaks ambient process state into whatever calls it.
func Stamp(m map[string]int) int {
	t := int(time.Now().Unix())  // want:puresim
	if os.Getenv("SEED") != "" { // want:puresim
		t += rand.Int() // want:puresim
	}
	go func() { _ = t }() // want:puresim
	total := 0
	for _, v := range m { // want:puresim
		total += v
	}
	return total + t
}
