// Package pipetrace is a minimal stand-in for the real per-instruction
// tracer so the traceguard fixture can exercise the wildcard
// Recorder.* rule.  A nil *Recorder means tracing is off, so every
// Recorder method call outside this package must sit inside the
// matching nil check; calls between the recorder's own methods are
// implementation, not hook sites, and are exempt.
package pipetrace

// Recorder collects per-instruction stage timestamps.
type Recorder struct {
	renames uint64
	commits uint64
}

// New builds an empty recorder.
func New() *Recorder { return &Recorder{} }

// OnRename marks one rename.  The sibling call below is the negative
// case for the wildcard rule's same-package exemption.
func (r *Recorder) OnRename(cycle uint64) int32 {
	r.bump()
	return int32(r.renames + cycle - cycle)
}

// OnCommit marks one commit.
func (r *Recorder) OnCommit(h int32, cycle uint64) {
	if h > 0 && cycle > 0 {
		r.commits++
	}
}

func (r *Recorder) bump() { r.renames++ }
