// Package stats is the deadstat fixture: one clean counter, one dead
// counter, one missing from Add, one decremented, one snapshot-assigned,
// and one non-scalar (exempt from the Add rule).
package stats

// Sim mirrors the shape the deadstat analyzer audits.
type Sim struct {
	Cycles  uint64   // written externally and accumulated: clean
	Dead    uint64   // want:deadstat
	Skipped uint64   // want:deadstat
	Shrunk  uint64   // decrement reported at the write site, not here
	Snap    uint64   // plain-assign reported at the write site, not here
	PerRun  []uint64 // non-scalar: exempt from the Add rule
}

// Add accumulates other into s; Skipped is deliberately missing.
func (s *Sim) Add(other *Sim) {
	s.Cycles += other.Cycles
	s.Dead += other.Dead
	s.Shrunk += other.Shrunk
	s.Snap += other.Snap
}

// Sub is the sanctioned snapshot-delta helper: decrements inside it
// must not be reported.
func (s *Sim) Sub(other *Sim) {
	s.Cycles -= other.Cycles
	s.Shrunk--
}
