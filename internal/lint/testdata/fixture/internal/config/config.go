// Package config is the deadknob fixture: read, unread, and
// write-only knobs on both audited structs.
package config

// Machine is one audited struct.
type Machine struct {
	Width     int // read by core: clean
	Ghost     int // want:deadknob
	WriteOnly int // want:deadknob
}

// Features is the other audited struct.
type Features struct {
	TME    bool // read by core: clean
	Unused bool // want:deadknob
}
