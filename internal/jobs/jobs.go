// Package jobs is the HTTP/JSON job layer that turns the simulator
// into a service: clients submit sweeps of simulation cells, poll
// their status, and stream per-cell results, while the server dedupes
// identical cells across concurrent clients through the durable
// content-addressed store (internal/store) and executes misses on the
// fault-isolated batch runner (recyclesim.RunBatchContext).
//
// Endpoints (mounted onto internal/obs/server via Register, so one
// listener also serves /metrics, /progress, /healthz, and pprof):
//
//	POST /jobs               submit a JobRequest; returns {"id": "j1",
//	                         "trace": "<16 hex digits>"}
//	GET  /jobs               list all job statuses
//	GET  /jobs/{id}          one job's JobStatus
//	GET  /jobs/{id}/results  NDJSON stream of CellResults, written as
//	                         cells land and ending when the job is done
//	GET  /jobs/{id}/trace    the job's request trace as Chrome
//	                         trace_event JSON (internal/obs/trace)
//	GET  /storestats         the store's Counters (hits/computes/...)
//
// Every job carries a request-scoped trace (internal/obs/trace): a
// span buffer preallocated at admission records the whole service
// path — per-cell queue wait, store lookup (hit/corrupt/recheck),
// single-flight waits, compute attempts with retries, and NDJSON
// stream delivery — and clients propagate their own trace IDs with
// the Recycle-Trace-Id header.  Completed spans feed the per-stage
// latency histograms WriteServiceMetrics appends to /metrics.
//
// Results served from the store are byte-identical to a direct
// RunBatch/RunSampled call with the same configuration — enforced by
// the witness tests in this package — and each distinct cell is
// simulated exactly once no matter how many concurrent jobs request
// it (store single-flight dedupes in-process, the durable record
// dedupes across time).
package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recyclesim"
	"recyclesim/internal/backoff"
	"recyclesim/internal/config"
	"recyclesim/internal/fleet"
	"recyclesim/internal/obs"
	"recyclesim/internal/obs/trace"
	"recyclesim/internal/sample"
	"recyclesim/internal/stats"
	"recyclesim/internal/store"
	"recyclesim/internal/sweep"
	"recyclesim/internal/workload"
)

// TraceHeader is the HTTP header a client sets on POST /jobs to
// propagate its own trace ID (16 hex digits); without it the server
// mints one.  The assigned ID comes back in the submit response and
// the job status.
const TraceHeader = "Recycle-Trace-Id"

// SamplingSpec is the sampled-mode schedule of a cell.  Zero fields
// select the simulator defaults (period 20000, interval 1000, warmup
// 1000, confidence 0.95); the store key normalizes them, so default
// and spelled-out schedules share a record.
type SamplingSpec struct {
	Period      uint64  `json:"period,omitempty"`
	IntervalLen uint64  `json:"interval,omitempty"`
	WarmupLen   uint64  `json:"warmup,omitempty"`
	Confidence  float64 `json:"confidence,omitempty"`
}

// CellSpec identifies one simulation cell.  The machine and feature
// structs travel in full (not by name), so custom knob combinations
// sweep through the service exactly like presets, and the store key is
// content-addressed on the actual configuration.
type CellSpec struct {
	Machine   config.Machine  `json:"machine"`
	Features  config.Features `json:"features"`
	Workloads []string        `json:"workloads"`
	// Insts is the committed-instruction budget (0 = 200_000).  The
	// cycle budget is fixed at the harness's 40x policy so service
	// results are byte-identical to cmd/experiments runs.
	Insts uint64 `json:"insts,omitempty"`
	// Sampling, when non-nil, makes this a sampled cell.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
}

// JobRequest is the POST /jobs body.
type JobRequest struct {
	Cells []CellSpec `json:"cells"`
}

// CellResult is one cell's outcome, streamed in completion order;
// Index maps it back to the submitted JobRequest.Cells slot.
type CellResult struct {
	Index  int    `json:"index"`
	Key    string `json:"key,omitempty"`
	Cached bool   `json:"cached"` // served from the store or shared in flight
	Error  string `json:"error,omitempty"`

	Stats   *stats.Sim     `json:"stats,omitempty"`
	Metrics *obs.Metrics   `json:"metrics,omitempty"`
	Sampled *sample.Result `json:"sampled,omitempty"`
}

// JobStatus is the GET /jobs/{id} document.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // "running" or "done"
	Cells int    `json:"cells"`
	Done  int    `json:"done"`
	// Hits counts cells served without simulating here: store records
	// (from this run or any earlier one) and single-flight shares of a
	// computation another job had in progress.
	Hits     int      `json:"hits"`
	Computes int      `json:"computes"`
	Failed   int      `json:"failed"`
	Errors   []string `json:"errors,omitempty"`
	// Trace is the job's trace ID; GET /jobs/{id}/trace exports it.
	Trace string `json:"trace,omitempty"`
}

// Config tunes a Server.
type Config struct {
	// Workers bounds per-job cell parallelism (<= 0 selects GOMAXPROCS).
	Workers int
	// Retries is the number of extra attempts a failed cell gets before
	// its error is recorded (cancellation is never retried).
	Retries int
	// RetryDelay and RetryDelayMax shape the capped exponential
	// backoff (with equal jitter) between a cell's retry attempts;
	// zero RetryDelay keeps retries immediate, zero RetryDelayMax
	// defaults to 64x the base.
	RetryDelay    time.Duration
	RetryDelayMax time.Duration
	// Fleet, when non-nil, routes cell computes through the
	// distributed dispatcher: workers compute leased cells, and the
	// dispatcher falls back to in-process execution when none are
	// attached.  Store-level dedupe is unchanged — the dispatcher sits
	// inside the single-flight compute callback.
	Fleet *fleet.Dispatcher
	// Auth, when non-nil, guards the job API with bearer-token
	// authentication, per-client in-flight-cell quotas, and request
	// rate limits (typed 401/429 replies).
	Auth *AuthConfig
	// Progress, when non-nil, receives per-cell progress across all
	// jobs (feeding the obs server's /progress endpoint).
	Progress *sweep.Progress
	// Publish, when non-nil, receives an immutable aggregate snapshot
	// after every completed detailed cell (feeding /metrics).
	Publish func(*obs.Snapshot)
	// Log receives the server's structured records (job lifecycle, cell
	// failures, stream disconnects).  nil discards them.
	Log *slog.Logger

	// retrySleep and retryRand inject the backoff timing and jitter
	// source for deterministic tests; nil selects backoff.Sleep and a
	// fixed-seed backoff.Rand per compute.
	retrySleep func(context.Context, time.Duration) error
	retryRand  func() float64
}

// Server owns the job table and executes submitted sweeps.
type Server struct {
	ctx   context.Context
	store *store.Store
	cfg   Config
	log   *slog.Logger
	gate  *gate // nil when cfg.Auth is nil (open service)

	mu   sync.Mutex
	seq  int
	jobs map[string]*job

	agg aggregate
	lat latencies

	jobsSubmitted atomic.Uint64
	jobsDone      atomic.Uint64
}

// job is one submitted sweep.  results appends in completion order
// under mu; cond wakes streaming readers on every append and on
// completion.
type job struct {
	id     string
	cells  []CellSpec
	client string // admission-gate identity; quota released per cell

	// The request trace: root is the whole-job span; cellCtx[i] and
	// queueCtx[i] are cell i's "cell" span (parent of its store/stream
	// spans) and its "queue" span (admission → worker pickup), all
	// opened at admission so queue wait is measured even for cells no
	// worker has touched yet.
	trace    *trace.Trace
	root     trace.Ctx
	cellCtx  []trace.Ctx
	queueCtx []trace.Ctx

	mu       sync.Mutex
	cond     *sync.Cond
	results  []CellResult
	state    string
	hits     int
	computes int
	failed   int
	errs     []string
}

// latencies accumulates per-stage service latency histograms (µs, log2
// buckets) from completed spans; WriteServiceMetrics renders them.
type latencies struct {
	mu    sync.Mutex
	hists map[string]*obs.Hist
}

func (l *latencies) observe(name string, dur time.Duration) {
	us := uint64(dur.Microseconds())
	l.mu.Lock()
	if l.hists == nil {
		l.hists = make(map[string]*obs.Hist)
	}
	h := l.hists[name]
	if h == nil {
		h = &obs.Hist{}
		l.hists[name] = h
	}
	h.Observe(us)
	l.mu.Unlock()
}

// snapshot returns the stage names (sorted) and private histogram
// copies, so rendering never holds the observation lock.
func (l *latencies) snapshot() ([]string, map[string]obs.Hist) {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.hists))
	out := make(map[string]obs.Hist, len(l.hists))
	//simlint:ignore determinism -- names are sorted before use
	for name, h := range l.hists {
		names = append(names, name)
		out[name] = *h
	}
	sort.Strings(names)
	return names, out
}

// aggregate accumulates every detailed cell the server computes or
// serves, building the immutable snapshots /metrics exposes.
type aggregate struct {
	mu    sync.Mutex
	stats stats.Sim
	tel   obs.Metrics
	cells int
}

func (a *aggregate) add(s *stats.Sim, m *obs.Metrics) *obs.Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Add(s)
	a.tel.Add(m)
	a.cells++
	st := a.stats
	st.PerProgram = append([]uint64(nil), a.stats.PerProgram...)
	tel := a.tel
	return &obs.Snapshot{
		Name:    fmt.Sprintf("recycled running aggregate (%d cells)", a.cells),
		Stats:   &st,
		Metrics: &tel,
	}
}

// NewServer builds a job server over st.  ctx bounds every simulation
// the server runs: canceling it (shutdown) stops in-flight cells at
// their next poll and fails their jobs' remaining cells as canceled.
func NewServer(ctx context.Context, st *store.Store, cfg Config) *Server {
	if ctx == nil {
		ctx = context.Background()
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	s := &Server{ctx: ctx, store: st, cfg: cfg, log: log, jobs: make(map[string]*job)}
	if cfg.Auth != nil {
		s.gate = newGate(*cfg.Auth)
	}
	return s
}

// Registrar is the mux surface Register needs; *http.ServeMux and
// *internal/obs/server.Server both satisfy it.
type Registrar interface {
	Handle(pattern string, h http.Handler)
}

// Register mounts the job API onto mux, guarded by the admission gate
// when Config.Auth is set.
func (s *Server) Register(mux Registrar) {
	wrap := func(h http.HandlerFunc) http.Handler {
		if s.gate == nil {
			return h
		}
		return s.gate.wrap(h)
	}
	mux.Handle("POST /jobs", wrap(s.handleSubmit))
	mux.Handle("GET /jobs", wrap(s.handleList))
	mux.Handle("GET /jobs/{id}", wrap(s.handleStatus))
	mux.Handle("GET /jobs/{id}/results", wrap(s.handleResults))
	mux.Handle("GET /jobs/{id}/trace", wrap(s.handleTrace))
	mux.Handle("GET /storestats", wrap(s.handleStoreStats))
}

// StoreCounters exposes the underlying store accounting (tests and the
// CLI use it; HTTP clients use /storestats).
func (s *Server) StoreCounters() store.Counters { return s.store.Counters() }

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Cells) == 0 {
		http.Error(w, "bad request: no cells", http.StatusBadRequest)
		return
	}
	client := clientFrom(r.Context())
	if s.gate != nil {
		if ok, inflight := s.gate.admitCells(client, len(req.Cells)); !ok {
			writeAPIError(w, http.StatusTooManyRequests, CodeOverQuota,
				fmt.Sprintf("in-flight cell quota exceeded: %d in flight + %d requested > limit %d",
					inflight, len(req.Cells), s.gate.cfg.MaxInFlightCells), 0)
			return
		}
	}
	tid, ok := trace.ParseID(r.Header.Get(TraceHeader))
	if !ok {
		tid = trace.NewID()
	}
	j := s.newJob(req.Cells, tid)
	j.client = client
	if s.cfg.Progress != nil {
		s.cfg.Progress.AddTotal(len(req.Cells))
	}
	s.jobsSubmitted.Add(1)
	s.log.Info("job submitted", "job", j.id, "trace", tid.String(),
		"cells", len(req.Cells), "propagated", ok)
	go s.runJob(j)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": j.id, "trace": tid.String()})
}

// newJob registers a job and opens its trace: the span buffer is sized
// once at admission (root + per-cell worst case of cell, queue, two
// lookups, flight wait, compute with per-attempt children, put, and
// stream delivery), so tracing never allocates while the job runs.
func (s *Server) newJob(cells []CellSpec, tid trace.ID) *job {
	j := &job{cells: cells, state: "running"}
	j.cond = sync.NewCond(&j.mu)
	// Worst case per cell adds a backoff span per retry, and the fleet
	// path adds lease/requeue spans per requeue round.
	j.trace = trace.New(tid, 2+len(cells)*(12+2*s.cfg.Retries))
	j.trace.SetOnEnd(s.lat.observe)
	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("j%d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()
	j.root = j.trace.Root("job").Uint("cells", uint64(len(cells)))
	j.cellCtx = make([]trace.Ctx, len(cells))
	j.queueCtx = make([]trace.Ctx, len(cells))
	for i := range cells {
		j.cellCtx[i] = j.root.Start("cell").Uint("index", uint64(i))
		j.queueCtx[i] = j.cellCtx[i].Start("queue")
	}
	return j
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	//simlint:ignore determinism -- ids are sorted by numeric suffix below
	for id := range s.jobs {
		ids = append(ids, id)
	}
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	// Jobs are "j<seq>"; sort by submission order for a stable listing.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && jobLess(out[k].ID, out[k-1].ID); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func jobLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (s *Server) handleStoreStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.store.Counters())
}

// handleTrace exports a job's request trace as Chrome trace_event
// JSON, loadable in Perfetto.  Traces of running jobs export too —
// open spans are closed against "now" and flagged.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := j.trace.WriteChrome(w); err != nil {
		s.log.Warn("trace export failed", "job", j.id, "error", err.Error())
	}
}

// WriteServiceMetrics appends the job layer's Prometheus text
// exposition — job/cell gauges plus the per-stage service latency
// histograms fed by completed trace spans — and is meant to be
// registered with internal/obs/server.AppendMetrics so one /metrics
// scrape covers the simulator aggregate and the service.
func (s *Server) WriteServiceMetrics(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.WriteString("# service (job layer) metrics\n")
	fmt.Fprintf(bw, "svc_jobs_submitted %d\n", s.jobsSubmitted.Load())
	fmt.Fprintf(bw, "svc_jobs_done %d\n", s.jobsDone.Load())
	if p := s.cfg.Progress; p != nil {
		queued, inflight := p.Depths()
		fmt.Fprintf(bw, "svc_cells_queued %d\n", queued)
		fmt.Fprintf(bw, "svc_cells_inflight %d\n", inflight)
	}
	names, hists := s.lat.snapshot()
	for _, name := range names {
		h := hists[name]
		if name == "job" {
			obs.HistText(bw, "svc_job_latency_us", "", &h)
			continue
		}
		obs.HistText(bw, "svc_stage_latency_us", `stage="`+name+`"`, &h)
	}
	bw.Flush()
}

// handleResults streams a job's CellResults as NDJSON, flushing as
// cells land, until every cell has been written and the job is done.
// A disconnecting client cancels the request context; the AfterFunc
// broadcast (under the job lock, so a waiter between its ctx check and
// Wait cannot miss it) unblocks the cond wait and the handler returns
// instead of leaking a goroutine parked on a job nobody is reading.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	// Flush the headers before the first (possibly long) wait so the
	// client's request call returns as soon as the stream is open.
	w.WriteHeader(http.StatusOK)
	if fl != nil {
		fl.Flush()
	}
	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.results) && j.state != "done" && ctx.Err() == nil {
			j.cond.Wait()
		}
		batch := j.results[next:]
		next = len(j.results)
		done := j.state == "done"
		j.mu.Unlock()
		if ctx.Err() != nil {
			s.log.Debug("results stream disconnected", "job", j.id,
				"trace", j.trace.ID().String(), "streamed", next-len(batch))
			return
		}
		for i := range batch {
			st := j.cellCtx[batch[i].Index].Start("stream")
			err := enc.Encode(&batch[i])
			st.End()
			if err != nil {
				return // client went away
			}
		}
		if fl != nil {
			fl.Flush()
		}
		if done {
			return
		}
	}
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.id,
		State:    j.state,
		Cells:    len(j.cells),
		Done:     len(j.results),
		Hits:     j.hits,
		Computes: j.computes,
		Failed:   j.failed,
		Errors:   append([]string(nil), j.errs...),
		Trace:    j.trace.ID().String(),
	}
}

// runJob fans the job's cells out on the worker pool.  Each cell goes
// through the store's single-flight GetOrCompute, so cells shared with
// other running jobs (or already on disk) are never simulated twice.
func (s *Server) runJob(j *job) {
	sweep.Run(len(j.cells), s.cfg.Workers, func(i int) {
		j.queueCtx[i].End() // worker picked the cell up: queue wait over
		if s.cfg.Progress != nil {
			s.cfg.Progress.StartCell(cellName(j.cells[i]))
		}
		res := s.runCell(j.cells[i], i, j.cellCtx[i])
		if s.cfg.Progress != nil {
			var insts uint64
			if res.Stats != nil {
				insts = res.Stats.Committed
			} else if res.Sampled != nil {
				insts = res.Sampled.MeasuredInsts
			}
			s.cfg.Progress.FinishCell(insts)
		}
		if s.cfg.Publish != nil && res.Error == "" && res.Stats != nil {
			s.cfg.Publish(s.agg.add(res.Stats, res.Metrics))
		}
		cc := j.cellCtx[i]
		if res.Cached {
			cc.Uint("cached", 1)
		}
		if res.Error != "" {
			cc.Str("error", res.Error)
			s.log.Warn("cell failed", "job", j.id, "trace", j.trace.ID().String(),
				"cell", res.Index, "name", cellName(j.cells[i]), "error", res.Error)
		}
		j.mu.Lock()
		j.results = append(j.results, res)
		switch {
		case res.Error != "":
			j.failed++
			j.errs = append(j.errs, fmt.Sprintf("cell %d (%s): %s", res.Index, cellName(j.cells[i]), res.Error))
		case res.Cached:
			j.hits++
		default:
			j.computes++
		}
		j.cond.Broadcast()
		j.mu.Unlock()
		if s.gate != nil {
			s.gate.releaseCells(j.client, 1)
		}
		cc.End()
	})
	j.mu.Lock()
	j.state = "done"
	hits, computes, failed := j.hits, j.computes, j.failed
	j.cond.Broadcast()
	j.mu.Unlock()
	j.root.End()
	s.jobsDone.Add(1)
	s.log.Info("job done", "job", j.id, "trace", j.trace.ID().String(),
		"cells", len(j.cells), "hits", hits, "computes", computes, "failed", failed,
		"elapsed", j.trace.Elapsed().String())
}

// fleetSpec converts the wire cell spec into the dispatcher's unit of
// work (the shapes are intentionally identical; insts defaulting and
// the 40x cycle policy live in fleet.Execute so local and remote
// computes share one canonical executor).
func fleetSpec(c CellSpec) fleet.Spec {
	s := fleet.Spec{
		Machine:   c.Machine,
		Features:  c.Features,
		Workloads: c.Workloads,
		Insts:     c.Insts,
	}
	if c.Sampling != nil {
		s.Sampling = &fleet.Sampling{
			Period:      c.Sampling.Period,
			IntervalLen: c.Sampling.IntervalLen,
			WarmupLen:   c.Sampling.WarmupLen,
			Confidence:  c.Sampling.Confidence,
		}
	}
	return s
}

// backoffWait sleeps the capped exponential backoff before retry
// attempt (0-based), under a "backoff" span.  Zero RetryDelay is a
// no-op, preserving the historical immediate-retry behavior.
func (s *Server) backoffWait(attempt int, rnd func() float64, cs trace.Ctx) {
	if s.cfg.RetryDelay <= 0 {
		return
	}
	sleep := s.cfg.retrySleep
	if sleep == nil {
		sleep = backoff.Sleep
	}
	bs := cs.Start("backoff").Uint("attempt", uint64(attempt))
	_ = sleep(s.ctx, backoff.Delay(s.cfg.RetryDelay, s.cfg.RetryDelayMax, attempt, rnd))
	bs.End()
}

// retryJitter returns the jitter source for one cell's retry backoff.
func (s *Server) retryJitter() func() float64 {
	if s.cfg.retryRand != nil {
		return s.cfg.retryRand
	}
	if s.cfg.RetryDelay <= 0 {
		return nil
	}
	return backoff.Rand(0x9e3779b97f4a7c15)
}

// cellName renders a cell for progress display and error reports.
func cellName(c CellSpec) string {
	name := c.Machine.Name + "/" + config.FeatureName(c.Features) + "/" + strings.Join(c.Workloads, "+")
	if c.Sampling != nil {
		name = "sampled/" + name
	}
	return name
}

// runCell resolves, keys, and executes (or serves) one cell; tc is the
// cell's span, under which the store phases and compute attempts land.
func (s *Server) runCell(c CellSpec, idx int, tc trace.Ctx) CellResult {
	progs, err := workload.MixPrograms(c.Workloads)
	if err != nil {
		return CellResult{Index: idx, Error: err.Error()}
	}
	insts := c.Insts
	if insts == 0 {
		insts = 200_000
	}
	var sampKey *store.Sampling
	if c.Sampling != nil {
		sampKey = &store.Sampling{
			Period:      c.Sampling.Period,
			IntervalLen: c.Sampling.IntervalLen,
			WarmupLen:   c.Sampling.WarmupLen,
			Confidence:  c.Sampling.Confidence,
		}
	}
	key := store.CellKey(c.Machine, c.Features, store.HashPrograms(progs), insts, sampKey)
	rec, cached, err := s.store.GetOrComputeTraced(key, tc, func(cs trace.Ctx) (*store.Record, error) {
		if s.cfg.Fleet != nil {
			return s.cfg.Fleet.Compute(s.ctx, fleetSpec(c), key, cs)
		}
		if c.Sampling != nil {
			return s.computeSampled(c, insts, cs)
		}
		return s.computeDetailed(c, insts, cs)
	})
	if err != nil {
		return CellResult{Index: idx, Key: key, Error: err.Error()}
	}
	return CellResult{
		Index:   idx,
		Key:     key,
		Cached:  cached,
		Stats:   rec.Stats,
		Metrics: rec.Metrics,
		Sampled: rec.Sampled,
	}
}

// computeDetailed runs one detailed cell on the fault-isolated batch
// runner: panics and livelocks come back as errors, never take the
// server down, and transient hook failures get cfg.Retries fresh
// attempts (with fresh telemetry each time, so a partially accumulated
// failed attempt never leaks into the stored record).
func (s *Server) computeDetailed(c CellSpec, insts uint64, cs trace.Ctx) (*store.Record, error) {
	rnd := s.retryJitter()
	for attempt := 0; ; attempt++ {
		at := cs.Start("attempt").Uint("attempt", uint64(attempt))
		tel := &obs.Metrics{Hists: true}
		res, err := recyclesim.RunBatchContext(s.ctx, []recyclesim.Options{{
			Machine:   c.Machine,
			Features:  c.Features,
			Workloads: c.Workloads,
			MaxInsts:  insts,
			MaxCycles: 40 * insts,
			Telemetry: tel,
		}}, recyclesim.BatchConfig{Workers: 1})
		if err == nil {
			at.End()
			return &store.Record{Stats: res[0], Metrics: tel}, nil
		}
		at.Error(err).End()
		if attempt >= s.cfg.Retries || errors.Is(err, recyclesim.ErrCanceled) || errors.Is(err, recyclesim.ErrDeadline) {
			return nil, err
		}
		s.backoffWait(attempt, rnd, cs)
	}
}

// computeSampled runs one sampled cell.  Workers is pinned to 1: the
// job's cells already fan out across the pool, and cell-level
// parallelism keeps results worker-count invariant (matching the
// cmd/experiments policy).
func (s *Server) computeSampled(c CellSpec, insts uint64, cs trace.Ctx) (*store.Record, error) {
	samp := recyclesim.Sampling{Workers: 1}
	if c.Sampling != nil {
		samp.Period = c.Sampling.Period
		samp.IntervalLen = c.Sampling.IntervalLen
		samp.WarmupLen = c.Sampling.WarmupLen
		samp.Confidence = c.Sampling.Confidence
	}
	rnd := s.retryJitter()
	for attempt := 0; ; attempt++ {
		at := cs.Start("attempt").Uint("attempt", uint64(attempt))
		res, err := recyclesim.RunSampledContext(s.ctx, recyclesim.Options{
			Machine:   c.Machine,
			Features:  c.Features,
			Workloads: c.Workloads,
			MaxInsts:  insts,
			Sampling:  &samp,
		})
		if err == nil {
			at.End()
			return &store.Record{Sampled: res}, nil
		}
		at.Error(err).End()
		if attempt >= s.cfg.Retries || errors.Is(err, recyclesim.ErrCanceled) || errors.Is(err, recyclesim.ErrDeadline) {
			return nil, err
		}
		s.backoffWait(attempt, rnd, cs)
	}
}
