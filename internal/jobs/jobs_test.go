package jobs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"recyclesim"
	"recyclesim/internal/config"
	"recyclesim/internal/store"
	"recyclesim/internal/sweep"
)

// newTestService builds a job server over a store at dir and mounts it
// on an httptest listener, returning the server and a client.
func newTestService(t *testing.T, dir string, cfg Config) (*Server, *Client) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(context.Background(), st, cfg)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL)
}

func detailedCell(feat config.Features, names []string, insts uint64) CellSpec {
	return CellSpec{Machine: config.Big216(), Features: feat, Workloads: names, Insts: insts}
}

// collect runs the full client workflow and returns results indexed by
// the submitted cell slot.
func collect(t *testing.T, c *Client, jr JobRequest) ([]CellResult, *JobStatus) {
	t.Helper()
	out := make([]CellResult, len(jr.Cells))
	seen := make([]bool, len(jr.Cells))
	st, err := c.Run(context.Background(), jr, func(res CellResult) error {
		if res.Index < 0 || res.Index >= len(out) || seen[res.Index] {
			t.Errorf("bad or duplicate result index %d", res.Index)
			return nil
		}
		out[res.Index], seen[res.Index] = res, true
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("cell %d never streamed", i)
		}
	}
	return out, st
}

// TestConcurrentClientsShareCells is the acceptance witness: two
// concurrent clients submit overlapping sweeps; every per-cell result
// must be byte-identical to a direct RunBatch of the same options, and
// each shared cell must have been simulated exactly once (the store's
// compute counter is the proof).
func TestConcurrentClientsShareCells(t *testing.T) {
	const insts = 2_000
	cells := []CellSpec{
		detailedCell(config.SMT, []string{"compress"}, insts),
		detailedCell(config.TME, []string{"li"}, insts),
		detailedCell(config.RECRSRU, []string{"compress"}, insts),
	}
	srv, client := newTestService(t, t.TempDir(), Config{Workers: 2})

	// Client A sweeps all three cells; client B concurrently sweeps a
	// subset overlapping in cells 1 and 2.
	var wg sync.WaitGroup
	var resA, resB []CellResult
	var stA, stB *JobStatus
	wg.Add(2)
	go func() { defer wg.Done(); resA, stA = collect(t, client, JobRequest{Cells: cells}) }()
	go func() { defer wg.Done(); resB, stB = collect(t, client, JobRequest{Cells: cells[1:]}) }()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every distinct cell simulated exactly once, across both jobs.
	c := srv.StoreCounters()
	if c.Computes != 3 {
		t.Errorf("store computes = %d, want 3 (each distinct cell exactly once)", c.Computes)
	}
	if c.DiskHits+c.FlightShares != 2 {
		t.Errorf("hits %d + flight shares %d = %d, want 2 (client B's overlap)",
			c.DiskHits, c.FlightShares, c.DiskHits+c.FlightShares)
	}
	if got := stA.Computes + stB.Computes; got != 3 {
		t.Errorf("job computes sum to %d, want 3 (statuses %+v / %+v)", got, stA, stB)
	}
	if got := stA.Hits + stB.Hits; got != 2 {
		t.Errorf("job hits sum to %d, want 2 (statuses %+v / %+v)", got, stA, stB)
	}

	// Byte-identity against a direct RunBatch with the same options.
	opts := make([]recyclesim.Options, len(cells))
	for i, cell := range cells {
		opts[i] = recyclesim.Options{
			Machine:   cell.Machine,
			Features:  cell.Features,
			Workloads: cell.Workloads,
			MaxInsts:  cell.Insts,
			MaxCycles: 40 * cell.Insts,
		}
	}
	direct, err := recyclesim.RunBatch(opts, 2)
	if err != nil {
		t.Fatalf("direct RunBatch: %v", err)
	}
	for i := range cells {
		want, _ := json.Marshal(direct[i])
		got, _ := json.Marshal(resA[i].Stats)
		if string(got) != string(want) {
			t.Errorf("cell %d served stats differ from direct run:\n got %s\nwant %s", i, got, want)
		}
	}
	// Client B's overlapping cells must be the same bytes as client A's.
	for i := 1; i < len(cells); i++ {
		a, _ := json.Marshal(resA[i])
		b, _ := json.Marshal(resB[i-1])
		// Index differs by construction; compare payloads.
		var am, bm map[string]json.RawMessage
		json.Unmarshal(a, &am)
		json.Unmarshal(b, &bm)
		for _, field := range []string{"stats", "metrics", "sampled", "key"} {
			if string(am[field]) != string(bm[field]) {
				t.Errorf("cell %d: clients disagree on %s:\n %s\n %s", i, field, am[field], bm[field])
			}
		}
	}
}

// TestSampledCellWitness: a sampled cell served by the service equals
// a direct RunSampledContext run — including the confidence-dependent
// interval bounds — and the second request is a store hit serving the
// identical bytes.
func TestSampledCellWitness(t *testing.T) {
	spec := CellSpec{
		Machine:   config.Big216(),
		Features:  config.RECRSRU,
		Workloads: []string{"compress"},
		Insts:     20_000,
		Sampling:  &SamplingSpec{Period: 4_000, IntervalLen: 400, WarmupLen: 400, Confidence: 0.99},
	}
	srv, client := newTestService(t, t.TempDir(), Config{Workers: 1})

	res1, st1 := collect(t, client, JobRequest{Cells: []CellSpec{spec}})
	if st1.Computes != 1 || st1.Hits != 0 {
		t.Errorf("first run status %+v, want 1 compute", st1)
	}
	if res1[0].Error != "" || res1[0].Sampled == nil {
		t.Fatalf("sampled cell failed: %+v", res1[0])
	}

	direct, err := recyclesim.RunSampledContext(context.Background(), recyclesim.Options{
		Machine:   spec.Machine,
		Features:  spec.Features,
		Workloads: spec.Workloads,
		MaxInsts:  spec.Insts,
		Sampling: &recyclesim.Sampling{
			Period:      spec.Sampling.Period,
			IntervalLen: spec.Sampling.IntervalLen,
			WarmupLen:   spec.Sampling.WarmupLen,
			Confidence:  spec.Sampling.Confidence,
			Workers:     1,
		},
	})
	if err != nil {
		t.Fatalf("direct RunSampled: %v", err)
	}
	if !reflect.DeepEqual(res1[0].Sampled, direct) {
		t.Errorf("served estimate differs from direct run:\n got %+v\nwant %+v", res1[0].Sampled, direct)
	}

	res2, st2 := collect(t, client, JobRequest{Cells: []CellSpec{spec}})
	if st2.Hits != 1 || st2.Computes != 0 {
		t.Errorf("second run status %+v, want pure hit", st2)
	}
	a, _ := json.Marshal(res1[0].Sampled)
	b, _ := json.Marshal(res2[0].Sampled)
	if string(a) != string(b) {
		t.Errorf("store round trip not byte-identical:\n %s\n %s", a, b)
	}
	_ = srv
}

// TestStoreSurvivesRestart: a fresh server over the same directory
// serves everything from disk — zero computes.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cells := []CellSpec{
		detailedCell(config.SMT, []string{"compress"}, 2_000),
		detailedCell(config.SMT, []string{"li"}, 2_000),
	}
	_, client1 := newTestService(t, dir, Config{})
	first, _ := collect(t, client1, JobRequest{Cells: cells})

	srv2, client2 := newTestService(t, dir, Config{})
	second, st := collect(t, client2, JobRequest{Cells: cells})
	if st.Hits != 2 || st.Computes != 0 {
		t.Errorf("restarted server status %+v, want 2 hits 0 computes", st)
	}
	if c := srv2.StoreCounters(); c.Computes != 0 {
		t.Errorf("restarted store computed %d cells", c.Computes)
	}
	for i := range cells {
		a, _ := json.Marshal(first[i].Stats)
		b, _ := json.Marshal(second[i].Stats)
		if string(a) != string(b) {
			t.Errorf("cell %d differs across restart:\n %s\n %s", i, a, b)
		}
	}
}

// TestBadCellsFailSoft: an unknown workload and an invalid machine
// fail their own cells with error records; healthy cells in the same
// job still complete.
func TestBadCellsFailSoft(t *testing.T) {
	badMachine := config.Big216()
	badMachine.Contexts = 0
	cells := []CellSpec{
		detailedCell(config.SMT, []string{"nonesuch"}, 2_000),
		{Machine: badMachine, Features: config.SMT, Workloads: []string{"compress"}, Insts: 2_000},
		detailedCell(config.SMT, []string{"compress"}, 2_000),
	}
	_, client := newTestService(t, t.TempDir(), Config{})
	res, st := collect(t, client, JobRequest{Cells: cells})
	if st.Failed != 2 || len(st.Errors) != 2 {
		t.Errorf("status %+v, want 2 failed cells", st)
	}
	if res[0].Error == "" || !strings.Contains(res[0].Error, "nonesuch") {
		t.Errorf("unknown workload error %q", res[0].Error)
	}
	if res[1].Error == "" {
		t.Error("invalid machine produced no error")
	}
	if res[2].Error != "" || res[2].Stats == nil || res[2].Stats.Committed == 0 {
		t.Errorf("healthy cell damaged by failing neighbours: %+v", res[2])
	}
}

// TestHTTPContract: submit validation, 404s, the status document, and
// the storestats endpoint.
func TestHTTPContract(t *testing.T) {
	srv, client := newTestService(t, t.TempDir(), Config{})
	_ = srv

	if _, err := client.Submit(context.Background(), JobRequest{}); err == nil ||
		!strings.Contains(err.Error(), "no cells") {
		t.Errorf("empty submit err = %v, want 'no cells'", err)
	}
	if _, err := client.Status(context.Background(), "j999"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("missing job err = %v, want 404", err)
	}
	if err := client.StreamResults(context.Background(), "j999", nil); err == nil {
		t.Error("streaming a missing job succeeded")
	}

	_, st := collect(t, client, JobRequest{Cells: []CellSpec{
		detailedCell(config.SMT, []string{"compress"}, 1_000),
	}})
	if st.State != "done" || st.Cells != 1 || st.Done != 1 {
		t.Errorf("status %+v", st)
	}
	counters, err := client.StoreCounters(context.Background())
	if err != nil {
		t.Fatalf("StoreCounters: %v", err)
	}
	if counters["computes"] != 1 {
		t.Errorf("storestats %+v, want computes 1", counters)
	}
}

// TestProgressFeedsAcrossJobs: the shared Progress accumulates totals
// and completions over consecutive jobs.
func TestProgressFeedsAcrossJobs(t *testing.T) {
	prog := &sweep.Progress{}
	_, client := newTestService(t, t.TempDir(), Config{Progress: prog})
	collect(t, client, JobRequest{Cells: []CellSpec{
		detailedCell(config.SMT, []string{"compress"}, 1_000),
	}})
	collect(t, client, JobRequest{Cells: []CellSpec{
		detailedCell(config.SMT, []string{"li"}, 1_000),
	}})
	done, total, insts, _ := prog.Snapshot()
	if done != 2 || total != 2 || insts == 0 {
		t.Errorf("progress done=%d total=%d insts=%d, want 2/2 with instructions", done, total, insts)
	}
}
