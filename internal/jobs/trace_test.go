package jobs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"recyclesim/internal/config"
	"recyclesim/internal/obs/trace"
)

// chromeTraceDoc mirrors the /jobs/{id}/trace export for validation.
type chromeTraceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestJobTraceEndpoint is the tentpole acceptance witness at the
// service level: a swept job exports a Chrome trace with one span tree
// per cell — queue wait, store lookup, compute (with its attempt) or
// hit, and stream delivery — under the trace ID the client propagated.
func TestJobTraceEndpoint(t *testing.T) {
	const insts = 2_000
	_, client := newTestService(t, t.TempDir(), Config{Workers: 2})
	client.TraceID = "abc123"
	cells := []CellSpec{
		detailedCell(config.SMT, []string{"compress"}, insts),
		detailedCell(config.TME, []string{"li"}, insts),
	}
	_, st := collect(t, client, JobRequest{Cells: cells})

	wantID := "0000000000abc123"
	if st.Trace != wantID {
		t.Errorf("status trace = %q, want propagated %q", st.Trace, wantID)
	}

	raw, err := client.FetchTrace(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("FetchTrace: %v", err)
	}
	var doc chromeTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if !strings.Contains(string(raw), wantID) {
		t.Error("exported trace missing the propagated trace ID")
	}
	if !strings.Contains(string(raw), "(drops 0)") {
		t.Error("span buffer overflowed (drops > 0) on a 2-cell job")
	}

	// Index the per-track span names: each cell subtree renders on its
	// own tid, so "one span tree per cell" means two cell tracks, each
	// holding the full queue → lookup → compute → stream path.
	var jobs int
	byTrack := map[int64]map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "job" {
			jobs++
			continue
		}
		m := byTrack[ev.Tid]
		if m == nil {
			m = map[string]int{}
			byTrack[ev.Tid] = m
		}
		m[ev.Name]++
	}
	if jobs != 1 {
		t.Errorf("%d job root spans, want 1", jobs)
	}
	if len(byTrack) != len(cells) {
		t.Fatalf("%d cell tracks, want %d", len(byTrack), len(cells))
	}
	for tid, m := range byTrack {
		if m["cell"] != 1 || m["queue"] != 1 || m["stream"] != 1 {
			t.Errorf("track %d: cell/queue/stream = %d/%d/%d, want 1/1/1",
				tid, m["cell"], m["queue"], m["stream"])
		}
		if m["lookup"] < 1 {
			t.Errorf("track %d has no lookup span", tid)
		}
		// Fresh store: every cell computes, with at least one attempt.
		if m["compute"] != 1 || m["attempt"] < 1 || m["put"] != 1 {
			t.Errorf("track %d: compute/attempt/put = %d/%d/%d, want 1/>=1/1",
				tid, m["compute"], m["attempt"], m["put"])
		}
	}

	// A second identical sweep is all hits: its trace has lookups but
	// no compute spans.
	client.TraceID = ""
	_, st2 := collect(t, client, JobRequest{Cells: cells})
	if st2.Trace == wantID || st2.Trace == "" {
		t.Errorf("second job trace ID %q not freshly minted", st2.Trace)
	}
	raw2, err := client.FetchTrace(context.Background(), st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	s2 := string(raw2)
	if strings.Contains(s2, `"compute"`) {
		t.Error("all-hit job trace contains compute spans")
	}
	if !strings.Contains(s2, `"hit":1`) {
		t.Error("all-hit job trace has no hit-attributed lookup")
	}
}

// TestTraceOfUnknownJob: the endpoint 404s like its siblings.
func TestTraceOfUnknownJob(t *testing.T) {
	_, client := newTestService(t, t.TempDir(), Config{})
	if _, err := client.FetchTrace(context.Background(), "j999"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("FetchTrace(j999) = %v, want 404", err)
	}
}

// TestBadTraceHeaderIgnored: a malformed propagated ID gets replaced
// with a minted one instead of failing the submit.
func TestBadTraceHeaderIgnored(t *testing.T) {
	_, client := newTestService(t, t.TempDir(), Config{})
	client.TraceID = "not-hex!"
	id, err := client.Submit(context.Background(), JobRequest{Cells: []CellSpec{
		detailedCell(config.SMT, []string{"compress"}, 1_000),
	}})
	if err != nil {
		t.Fatalf("Submit with bad trace header: %v", err)
	}
	st, err := client.Status(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := trace.ParseID(st.Trace); !ok {
		t.Errorf("minted trace ID %q does not parse", st.Trace)
	}
}

// TestWriteServiceMetrics: completed spans land in the per-stage
// latency histograms and the job counters render as exposition text.
func TestWriteServiceMetrics(t *testing.T) {
	srv, client := newTestService(t, t.TempDir(), Config{})
	collect(t, client, JobRequest{Cells: []CellSpec{
		detailedCell(config.SMT, []string{"compress"}, 1_000),
	}})

	var sb strings.Builder
	srv.WriteServiceMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"svc_jobs_submitted 1\n",
		"svc_jobs_done 1\n",
		"svc_job_latency_us_count 1\n",
		`svc_stage_latency_us_count{stage="queue"} 1` + "\n",
		`svc_stage_latency_us_count{stage="compute"} 1` + "\n",
		`svc_stage_latency_us_bucket{stage="lookup",le="1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("service metrics missing %q:\n%s", want, out)
		}
	}
}

// TestResultsStreamClientDisconnect is the satellite witness: a client
// abandoning the NDJSON stream mid-job must unblock the handler's
// cond wait and leak no goroutines.
func TestResultsStreamClientDisconnect(t *testing.T) {
	srv, client := newTestService(t, t.TempDir(), Config{})
	// A job that never finishes: registered by hand, never run, so the
	// stream handler parks in cond.Wait with no broadcast ever coming
	// from the job side.
	j := srv.newJob([]CellSpec{detailedCell(config.SMT, []string{"compress"}, 1_000)}, trace.NewID())

	before := runtime.NumGoroutine()
	const streams = 4
	cancels := make([]context.CancelFunc, 0, streams)
	for i := 0; i < streams; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, client.BaseURL+"/jobs/"+j.id+"/results", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("open stream %d: %v", i, err)
		}
		// Headers arrived, so the handler is running; the body read
		// would block forever if we waited for data.
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/x-ndjson" {
			t.Fatalf("stream %d: %d %q", i, resp.StatusCode, resp.Header.Get("Content-Type"))
		}
	}

	for _, cancel := range cancels {
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after disconnects\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitResponseCarriesTrace: the POST /jobs reply surfaces the
// assigned trace ID next to the job ID.
func TestSubmitResponseCarriesTrace(t *testing.T) {
	_, client := newTestService(t, t.TempDir(), Config{})
	body := strings.NewReader(`{"cells":[{"machine":` + mustJSON(t, config.Big216()) +
		`,"features":{},"workloads":["compress"],"insts":1000}]}`)
	req, err := http.NewRequest(http.MethodPost, client.BaseURL+"/jobs", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out struct {
		ID    string `json:"id"`
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("submit reply: %v\n%s", err, raw)
	}
	if out.ID == "" || out.Trace != "00000000deadbeef" {
		t.Errorf("submit reply = %+v, want id and trace 00000000deadbeef", out)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
