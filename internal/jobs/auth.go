package jobs

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// clientKey carries the authenticated client identity from the gate
// middleware to handleSubmit's quota check.
type clientKey struct{}

func withClient(ctx context.Context, client string) context.Context {
	return context.WithValue(ctx, clientKey{}, client)
}

func clientFrom(ctx context.Context) string {
	client, _ := ctx.Value(clientKey{}).(string)
	return client
}

// AuthConfig is the admission-control boundary for untrusted clients:
// bearer-token authentication, a per-client in-flight-cell quota, and
// a per-client request rate limit.  Zero fields disable the
// corresponding control, so the default (nil Auth in Config) keeps
// the historical open behavior for trusted localhost deployments.
type AuthConfig struct {
	// Tokens, when non-empty, requires "Authorization: Bearer <token>"
	// on every job-API request, with <token> in this list.  The token
	// is also the client's identity for quotas and rate limits; with
	// no tokens configured, identity falls back to the remote host.
	Tokens []string
	// MaxInFlightCells caps how many not-yet-finished cells one client
	// may have across all its jobs; a submit that would exceed it gets
	// 429 over_quota without perturbing the jobs already running.
	MaxInFlightCells int
	// RatePerSec refills each client's request token bucket; Burst is
	// its capacity (default: ceil(RatePerSec), min 1).  Zero RatePerSec
	// disables rate limiting.
	RatePerSec float64
	Burst      int

	// now is the rate limiter's clock, injectable by tests.
	now func() time.Time
}

// API error codes carried in the typed JSON error body.
const (
	CodeUnauthorized = "unauthorized"
	CodeOverQuota    = "over_quota"
	CodeRateLimited  = "rate_limited"
)

// apiErrorBody is the JSON error document the guarded endpoints write
// for 401/429 (and that the Client decodes back into an *APIError).
type apiErrorBody struct {
	Error      string `json:"error"`
	Code       string `json:"code"`
	RetryAfter int64  `json:"retry_after_ms,omitempty"`
}

// writeAPIError emits one typed error reply; 429s carry a Retry-After
// header (seconds, rounded up) alongside the millisecond body field.
func writeAPIError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiErrorBody{
		Error: msg, Code: code, RetryAfter: retryAfter.Milliseconds(),
	})
}

// gate enforces AuthConfig on the job API: it authenticates each
// request, applies the per-client rate limit, and tracks per-client
// in-flight cells for the submit quota.
type gate struct {
	cfg AuthConfig
	now func() time.Time

	mu      sync.Mutex
	clients map[string]*clientState
}

// clientState is one client's admission accounting.
type clientState struct {
	inflight int       // cells submitted but not yet finished
	tokens   float64   // rate-limit bucket level
	last     time.Time // last bucket refill
}

func newGate(cfg AuthConfig) *gate {
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(cfg.RatePerSec)
		if float64(cfg.Burst) < cfg.RatePerSec {
			cfg.Burst++
		}
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &gate{cfg: cfg, now: now, clients: make(map[string]*clientState)}
}

// identify authenticates the request and returns the client identity:
// the presented token when token auth is on, the remote host
// otherwise.  ok=false means the 401 has been written.
func (g *gate) identify(w http.ResponseWriter, r *http.Request) (string, bool) {
	if len(g.cfg.Tokens) == 0 {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		return host, true
	}
	auth := r.Header.Get("Authorization")
	tok, isBearer := strings.CutPrefix(auth, "Bearer ")
	if isBearer {
		for _, want := range g.cfg.Tokens {
			if subtle.ConstantTimeCompare([]byte(tok), []byte(want)) == 1 {
				return tok, true
			}
		}
	}
	writeAPIError(w, http.StatusUnauthorized, CodeUnauthorized,
		"missing or invalid bearer token", 0)
	return "", false
}

// state returns (creating if needed) the client's accounting record.
// Caller holds g.mu.
func (g *gate) stateLocked(client string) *clientState {
	st := g.clients[client]
	if st == nil {
		st = &clientState{tokens: float64(g.cfg.Burst), last: g.now()}
		g.clients[client] = st
	}
	return st
}

// allowRate takes one request token from the client's bucket,
// reporting how long until a token is available when it is empty.
func (g *gate) allowRate(client string) (bool, time.Duration) {
	if g.cfg.RatePerSec <= 0 {
		return true, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stateLocked(client)
	now := g.now()
	st.tokens += now.Sub(st.last).Seconds() * g.cfg.RatePerSec
	if max := float64(g.cfg.Burst); st.tokens > max {
		st.tokens = max
	}
	st.last = now
	if st.tokens >= 1 {
		st.tokens--
		return true, 0
	}
	wait := time.Duration((1 - st.tokens) / g.cfg.RatePerSec * float64(time.Second))
	return false, wait
}

// admitCells reserves n in-flight cells for the client, refusing when
// the quota would be exceeded (returning the current in-flight count).
func (g *gate) admitCells(client string, n int) (bool, int) {
	if g.cfg.MaxInFlightCells <= 0 {
		return true, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stateLocked(client)
	if st.inflight+n > g.cfg.MaxInFlightCells {
		return false, st.inflight
	}
	st.inflight += n
	return true, st.inflight
}

// releaseCells returns quota as the client's cells finish.
func (g *gate) releaseCells(client string, n int) {
	if g.cfg.MaxInFlightCells <= 0 || n <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stateLocked(client)
	st.inflight -= n
	if st.inflight < 0 {
		st.inflight = 0
	}
}

// wrap guards one handler with authentication and the rate limit.
// The submit quota is applied inside handleSubmit (it needs the parsed
// cell count), via the identity wrap stashes in the request context.
func (g *gate) wrap(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		client, ok := g.identify(w, r)
		if !ok {
			return
		}
		if ok, wait := g.allowRate(client); !ok {
			writeAPIError(w, http.StatusTooManyRequests, CodeRateLimited,
				"request rate limit exceeded", wait)
			return
		}
		h(w, r.WithContext(withClient(r.Context(), client)))
	})
}
