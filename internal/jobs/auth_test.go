package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"recyclesim/internal/config"
	"recyclesim/internal/fleet"
	"recyclesim/internal/stats"
	"recyclesim/internal/store"
)

// TestAuthBearerToken is the table-driven 401 witness: with token auth
// on, every credential shape gets the right status and typed code, and
// the Go client surfaces ErrUnauthorized.
func TestAuthBearerToken(t *testing.T) {
	_, client := newTestService(t, t.TempDir(), Config{
		Workers: 1,
		Auth:    &AuthConfig{Tokens: []string{"s3cret", "other-tenant"}},
	})
	cells := []CellSpec{detailedCell(config.SMT, []string{"compress"}, 1000)}

	cases := []struct {
		name     string
		token    string
		header   string // overrides the Authorization header when set
		wantErr  error
		wantCode string
	}{
		{name: "no token", wantErr: ErrUnauthorized, wantCode: CodeUnauthorized},
		{name: "wrong token", token: "wrong", wantErr: ErrUnauthorized, wantCode: CodeUnauthorized},
		{name: "not bearer", header: "Basic s3cret", wantErr: ErrUnauthorized, wantCode: CodeUnauthorized},
		{name: "valid token", token: "s3cret"},
		{name: "second tenant token", token: "other-tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.header != "" {
				// Raw request: the client always sends Bearer form.
				req, _ := http.NewRequest(http.MethodGet, client.BaseURL+"/jobs", nil)
				req.Header.Set("Authorization", tc.header)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusUnauthorized {
					t.Fatalf("status = %d, want 401", resp.StatusCode)
				}
				var body apiErrorBody
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Code != tc.wantCode {
					t.Fatalf("error body = %+v, %v; want code %q", body, err, tc.wantCode)
				}
				return
			}
			c := *client
			c.Token = tc.token
			_, err := c.Submit(context.Background(), JobRequest{Cells: cells})
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Submit with valid token: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Submit err = %v, want %v", err, tc.wantErr)
			}
			var ae *APIError
			if !errors.As(err, &ae) || ae.Status != http.StatusUnauthorized || ae.Code != tc.wantCode {
				t.Fatalf("APIError = %+v, want status 401 code %q", ae, tc.wantCode)
			}
		})
	}
}

// blockingFleet builds a dispatcher whose (zero-worker) local compute
// parks until release is closed — deterministic in-flight control for
// the quota tests.
func blockingFleet(release <-chan struct{}) *fleet.Dispatcher {
	return fleet.NewDispatcher(fleet.Config{
		Local: func(ctx context.Context, spec fleet.Spec) (*store.Record, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &store.Record{Stats: &stats.Sim{}}, nil
		},
	})
}

// TestQuotaOverLimit covers the 429 over_quota path: a submit that
// would exceed the per-client in-flight cell cap is refused with the
// typed error, in-flight jobs are untouched, and finished cells return
// quota.
func TestQuotaOverLimit(t *testing.T) {
	release := make(chan struct{})
	_, client := newTestService(t, t.TempDir(), Config{
		Workers: 2,
		Fleet:   blockingFleet(release),
		Auth:    &AuthConfig{Tokens: []string{"tenant-a"}, MaxInFlightCells: 2},
	})
	client.Token = "tenant-a"
	ctx := context.Background()

	// One request over the whole quota: refused outright, typed.
	_, err := client.Submit(ctx, JobRequest{Cells: []CellSpec{
		detailedCell(config.SMT, []string{"compress"}, 1000),
		detailedCell(config.TME, []string{"compress"}, 1000),
		detailedCell(config.RECRSRU, []string{"compress"}, 1000),
	}})
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("3-cell submit err = %v, want ErrOverQuota", err)
	}

	// Fill the quota with a job whose cells are deterministically
	// parked in flight.
	id, err := client.Submit(ctx, JobRequest{Cells: []CellSpec{
		detailedCell(config.SMT, []string{"compress"}, 1000),
		detailedCell(config.TME, []string{"compress"}, 1000),
	}})
	if err != nil {
		t.Fatalf("quota-filling submit: %v", err)
	}

	// The next cell is over quota; the running job must not notice.
	_, err = client.Submit(ctx, JobRequest{Cells: []CellSpec{
		detailedCell(config.RECRSRU, []string{"compress"}, 1000),
	}})
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-quota submit err = %v, want ErrOverQuota", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || ae.Code != CodeOverQuota {
		t.Fatalf("APIError = %+v, want status 429 code over_quota", ae)
	}
	if st, err := client.Status(ctx, id); err != nil || st.State != "running" || st.Failed != 0 {
		t.Fatalf("in-flight job perturbed by refused submit: %+v, %v", st, err)
	}

	// Let the parked cells finish; their quota comes back.
	close(release)
	var done sync.WaitGroup
	done.Add(1)
	go func() { defer done.Done(); _ = client.StreamResults(ctx, id, func(CellResult) error { return nil }) }()
	done.Wait()
	st, err := client.Status(ctx, id)
	if err != nil || st.State != "done" || st.Failed != 0 {
		t.Fatalf("blocked job never finished cleanly: %+v, %v", st, err)
	}
	if _, err := client.Submit(ctx, JobRequest{Cells: []CellSpec{
		detailedCell(config.RECRSRU, []string{"compress"}, 1000),
	}}); err != nil {
		t.Fatalf("submit after quota release: %v", err)
	}
}

// TestRateLimit covers the 429 rate_limited path with a fake clock:
// the bucket admits Burst requests, refuses the next with a
// Retry-After hint, and refills with time.
func TestRateLimit(t *testing.T) {
	clock := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	_, client := newTestService(t, t.TempDir(), Config{
		Workers: 1,
		Auth:    &AuthConfig{RatePerSec: 1, Burst: 2, now: now},
	})
	ctx := context.Background()

	list := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, client.BaseURL+"/jobs", nil)
		if err != nil {
			return err
		}
		return client.do(req, nil)
	}
	for i := 0; i < 2; i++ {
		if err := list(); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	err := list()
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst-exhausted err = %v, want ErrRateLimited", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests ||
		ae.Code != CodeRateLimited || ae.RetryAfter <= 0 {
		t.Fatalf("APIError = %+v, want 429 rate_limited with RetryAfter", ae)
	}
	advance(time.Second)
	if err := list(); err != nil {
		t.Fatalf("request after refill: %v", err)
	}
}

// TestOpenServiceUnaffected: with no Auth config the historical open
// behavior survives — no Authorization header needed anywhere.
func TestOpenServiceUnaffected(t *testing.T) {
	_, client := newTestService(t, t.TempDir(), Config{Workers: 1})
	resp, err := http.Get(client.BaseURL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open GET /jobs status = %d, want 200", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("unexpected content type %q", resp.Header.Get("Content-Type"))
	}
}
