package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Sentinel errors the typed API errors unwrap to, so callers can
// branch with errors.Is regardless of message wording.
var (
	// ErrUnauthorized: the server requires a bearer token and the
	// client's was missing or wrong (HTTP 401).
	ErrUnauthorized = errors.New("jobs: unauthorized")
	// ErrOverQuota: the client's in-flight cell quota is exhausted
	// (HTTP 429, code over_quota); retry after cells finish.
	ErrOverQuota = errors.New("jobs: in-flight cell quota exceeded")
	// ErrRateLimited: the client's request rate limit tripped (HTTP
	// 429, code rate_limited); retry after APIError.RetryAfter.
	ErrRateLimited = errors.New("jobs: rate limited")
)

// APIError is a typed non-2xx reply from the job API.  401/429
// replies carry a machine-readable code (and, for rate limits, the
// suggested wait); errors.Is matches the sentinels above through it.
type APIError struct {
	Status     int           // HTTP status code
	Code       string        // CodeUnauthorized, CodeOverQuota, CodeRateLimited, or ""
	Message    string        // server-provided detail
	RetryAfter time.Duration // suggested wait before retrying (429 only)
}

func (e *APIError) Error() string {
	msg := fmt.Sprintf("jobs: server status %d", e.Status)
	if e.Code != "" {
		msg += " (" + e.Code + ")"
	}
	if e.Message != "" {
		msg += ": " + e.Message
	}
	return msg
}

// Unwrap maps the error code onto the package sentinels.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case CodeUnauthorized:
		return ErrUnauthorized
	case CodeOverQuota:
		return ErrOverQuota
	case CodeRateLimited:
		return ErrRateLimited
	}
	return nil
}

// Client talks to a recycled job server.  The zero HTTP client is
// http.DefaultClient; results stream over one long-lived GET, so no
// client-side timeout is set by default.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// TraceID, when non-empty, propagates client→server on every
	// Submit via the Recycle-Trace-Id header, so the server-side job
	// trace carries an ID the client chose (and can correlate with its
	// own records).  Malformed values are ignored by the server.
	TraceID string
	// Token, when non-empty, is sent as "Authorization: Bearer" on
	// every request — required when the server runs with -token.
	Token string
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8347", with or without a trailing slash).
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// authorize attaches the bearer token when one is configured.
func (c *Client) authorize(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

// apiError converts a non-2xx reply into an *APIError, preferring the
// typed JSON body the admission gate writes and falling back to the
// raw message for plain http.Error replies.
func apiError(req *http.Request, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var body apiErrorBody
	if json.Unmarshal(msg, &body) == nil && body.Code != "" {
		return &APIError{
			Status:     resp.StatusCode,
			Code:       body.Code,
			Message:    body.Error,
			RetryAfter: time.Duration(body.RetryAfter) * time.Millisecond,
		}
	}
	return &APIError{
		Status:  resp.StatusCode,
		Message: fmt.Sprintf("%s %s: %s", req.Method, req.URL.Path, strings.TrimSpace(string(msg))),
	}
}

// do issues one request and decodes the JSON reply into out, mapping
// non-2xx statuses onto typed *APIError values.
func (c *Client) do(req *http.Request, out any) error {
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(req, resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a sweep and returns its job ID.
func (c *Client) Submit(ctx context.Context, jr JobRequest) (string, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.TraceID != "" {
		req.Header.Set(TraceHeader, c.TraceID)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(req, &out); err != nil {
		return "", err
	}
	if out.ID == "" {
		return "", fmt.Errorf("submit: server returned no job id")
	}
	return out.ID, nil
}

// FetchTrace downloads a job's Chrome trace_event JSON (the document
// GET /jobs/{id}/trace serves), ready to save and load in Perfetto.
func (c *Client) FetchTrace(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(req, resp)
	}
	return io.ReadAll(resp.Body)
}

// Status fetches one job's status document.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := c.do(req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// StoreCounters fetches the server's store accounting.
func (c *Client) StoreCounters(ctx context.Context) (map[string]uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/storestats", nil)
	if err != nil {
		return nil, err
	}
	var out map[string]uint64
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// StreamResults consumes a job's NDJSON result stream, invoking fn for
// every cell as it arrives; it returns when the server has sent every
// cell (the job is done), fn returns an error, or ctx is canceled.
func (c *Client) StreamResults(ctx context.Context, id string, fn func(CellResult) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id+"/results", nil)
	if err != nil {
		return err
	}
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(req, resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var res CellResult
		if err := dec.Decode(&res); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("results stream: %w", err)
		}
		if err := fn(res); err != nil {
			return err
		}
	}
}

// Run is the whole client workflow: submit the sweep, stream every
// result into fn, and return the job's final status.  Polling is not
// needed — the result stream itself blocks until the job is done —
// but the final status double-checks cell accounting.
func (c *Client) Run(ctx context.Context, jr JobRequest, fn func(CellResult) error) (*JobStatus, error) {
	id, err := c.Submit(ctx, jr)
	if err != nil {
		return nil, err
	}
	if err := c.StreamResults(ctx, id, fn); err != nil {
		return nil, err
	}
	st, err := c.Status(ctx, id)
	if err != nil {
		return nil, err
	}
	if st.Done < st.Cells {
		return st, fmt.Errorf("job %s: stream ended with %d of %d cells", id, st.Done, st.Cells)
	}
	return st, nil
}

// WaitHealthy polls baseURL/healthz until it answers or the deadline
// passes — the handshake CLI clients use against a freshly started
// server.
func WaitHealthy(ctx context.Context, baseURL string, timeout time.Duration) error {
	base := strings.TrimRight(baseURL, "/")
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no healthy server at %s after %v", base, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
