// Package fu models the functional units: a pool of integer units (a
// subset of which execute loads and stores) and a pool of
// floating-point units.  The paper's baseline has 12 integer units, 8
// of them load/store capable, and 6 floating-point units.  All units
// are pipelined except dividers, which occupy their unit for the full
// operation latency.
package fu

import "recyclesim/internal/isa"

// Config sizes the pools.
type Config struct {
	IntUnits int // integer units (ALU, multiply, divide, branch)
	LSUnits  int // how many of the integer units can do loads/stores
	FPUnits  int // floating-point units
}

// Pool tracks per-cycle issue bandwidth and divider occupancy.
type Pool struct {
	cfg Config

	// Per-cycle issue counters, reset by BeginCycle.
	cycle   uint64
	intUsed int
	lsUsed  int
	fpUsed  int

	// Non-pipelined dividers hold a unit busy until the given cycle.
	intDivBusy []uint64
	fpDivBusy  []uint64
}

// New builds a pool.
func New(cfg Config) *Pool {
	return &Pool{
		cfg:        cfg,
		intDivBusy: make([]uint64, cfg.IntUnits),
		fpDivBusy:  make([]uint64, cfg.FPUnits),
	}
}

// Config returns the pool's configuration.
func (p *Pool) Config() Config { return p.cfg }

// BeginCycle resets the per-cycle issue accounting.
func (p *Pool) BeginCycle(cycle uint64) {
	p.cycle = cycle
	p.intUsed, p.lsUsed, p.fpUsed = 0, 0, 0
}

func (p *Pool) reserveDiv(busy []uint64, until uint64) bool {
	for i := range busy {
		if busy[i] <= p.cycle {
			busy[i] = until
			return true
		}
	}
	return false
}

// TryIssue attempts to claim a unit for an instruction of the given
// class this cycle; latency is the instruction's execution latency
// (used to hold a divider).  It reports whether issue succeeded.
func (p *Pool) TryIssue(class isa.Class, latency int) bool {
	switch class {
	case isa.ClassNop:
		return true
	case isa.ClassLoad, isa.ClassStore:
		if p.intUsed >= p.cfg.IntUnits || p.lsUsed >= p.cfg.LSUnits {
			return false
		}
		p.intUsed++
		p.lsUsed++
		return true
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassBranch:
		if p.intUsed >= p.cfg.IntUnits {
			return false
		}
		p.intUsed++
		return true
	case isa.ClassIntDiv:
		if p.intUsed >= p.cfg.IntUnits {
			return false
		}
		if !p.reserveDiv(p.intDivBusy, p.cycle+uint64(latency)) {
			return false
		}
		p.intUsed++
		return true
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPCvt:
		if p.fpUsed >= p.cfg.FPUnits {
			return false
		}
		p.fpUsed++
		return true
	case isa.ClassFPDiv:
		if p.fpUsed >= p.cfg.FPUnits {
			return false
		}
		if !p.reserveDiv(p.fpDivBusy, p.cycle+uint64(latency)) {
			return false
		}
		p.fpUsed++
		return true
	}
	return false
}
