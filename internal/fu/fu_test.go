package fu

import (
	"testing"

	"recyclesim/internal/isa"
)

func TestIssueLimits(t *testing.T) {
	p := New(Config{IntUnits: 2, LSUnits: 1, FPUnits: 1})
	p.BeginCycle(1)
	if !p.TryIssue(isa.ClassIntALU, 1) || !p.TryIssue(isa.ClassIntALU, 1) {
		t.Fatal("two int issues should fit")
	}
	if p.TryIssue(isa.ClassIntALU, 1) {
		t.Fatal("third int issue should fail")
	}
	if p.TryIssue(isa.ClassLoad, 1) {
		t.Fatal("loads share the int units")
	}
	p.BeginCycle(2)
	if !p.TryIssue(isa.ClassLoad, 1) {
		t.Fatal("load should issue on a fresh cycle")
	}
	if p.TryIssue(isa.ClassStore, 1) {
		t.Fatal("second memory op exceeds the load/store units")
	}
	if !p.TryIssue(isa.ClassIntMul, 7) {
		t.Fatal("remaining int unit should take the multiply")
	}
}

func TestFPSeparate(t *testing.T) {
	p := New(Config{IntUnits: 1, LSUnits: 1, FPUnits: 2})
	p.BeginCycle(1)
	if !p.TryIssue(isa.ClassFPAdd, 4) || !p.TryIssue(isa.ClassFPMul, 4) {
		t.Fatal("fp issues should fit")
	}
	if p.TryIssue(isa.ClassFPAdd, 4) {
		t.Fatal("third fp issue should fail")
	}
	if !p.TryIssue(isa.ClassIntALU, 1) {
		t.Fatal("int pool is independent of fp usage")
	}
}

func TestDividerOccupancy(t *testing.T) {
	p := New(Config{IntUnits: 1, LSUnits: 1, FPUnits: 1})
	p.BeginCycle(1)
	if !p.TryIssue(isa.ClassIntDiv, 20) {
		t.Fatal("divide should issue")
	}
	// The divider is busy for the full latency even across cycles.
	p.BeginCycle(5)
	if p.TryIssue(isa.ClassIntDiv, 20) {
		t.Fatal("second divide should be blocked by the busy divider")
	}
	if !p.TryIssue(isa.ClassIntALU, 1) {
		t.Fatal("pipelined ALU op should still issue")
	}
	p.BeginCycle(22)
	if !p.TryIssue(isa.ClassIntDiv, 20) {
		t.Fatal("divide should issue after the divider frees")
	}
}

func TestFPDividerOccupancy(t *testing.T) {
	p := New(Config{IntUnits: 1, LSUnits: 1, FPUnits: 1})
	p.BeginCycle(1)
	if !p.TryIssue(isa.ClassFPDiv, 16) {
		t.Fatal("fp divide should issue")
	}
	p.BeginCycle(2)
	if p.TryIssue(isa.ClassFPDiv, 16) {
		t.Fatal("fp divider busy")
	}
}

func TestNopAlwaysIssues(t *testing.T) {
	p := New(Config{IntUnits: 1, LSUnits: 1, FPUnits: 1})
	p.BeginCycle(1)
	p.TryIssue(isa.ClassIntALU, 1)
	if !p.TryIssue(isa.ClassNop, 1) {
		t.Fatal("nop consumes no unit")
	}
}
