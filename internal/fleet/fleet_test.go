package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"recyclesim/internal/config"
	"recyclesim/internal/obs/trace"
	"recyclesim/internal/store"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testSpec(name string) Spec {
	m := config.Big216()
	m.Name = name
	return Spec{Machine: m, Features: config.Features{}, Workloads: []string{"mix"}, Insts: 1000}
}

func testRecord() *store.Record { return &store.Record{Version: 1, Key: "k"} }

// instant makes Sleep a no-op so retry loops run without wall time.
func instant(context.Context, time.Duration) error { return nil }

func newTestDispatcher(clk *fakeClock, local func(ctx context.Context, spec Spec) (*store.Record, error)) *Dispatcher {
	cfg := Config{
		Local:       local,
		LeaseTTL:    10 * time.Second,
		MaxRequeues: 2,
		Sleep:       instant,
	}
	if clk != nil {
		cfg.Now = clk.Now
	}
	return NewDispatcher(cfg)
}

func TestComputeLocalWhenNoWorkers(t *testing.T) {
	calls := 0
	d := newTestDispatcher(nil, func(ctx context.Context, spec Spec) (*store.Record, error) {
		calls++
		return testRecord(), nil
	})
	rec, err := d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
	if err != nil || rec == nil {
		t.Fatalf("Compute = %v, %v", rec, err)
	}
	if calls != 1 {
		t.Fatalf("local calls = %d, want 1", calls)
	}
	c := d.Counters()
	if c.LocalComputes != 1 || c.RemoteComputes != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestComputeRemoteRoundTrip(t *testing.T) {
	d := newTestDispatcher(nil, func(ctx context.Context, spec Spec) (*store.Record, error) {
		t.Error("local compute must not run when a worker serves the cell")
		return nil, errors.New("unexpected")
	})
	info := d.RegisterWorker("w", 1)

	done := make(chan error, 1)
	go func() {
		rec, err := d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
		if err == nil && rec == nil {
			err = errors.New("nil record")
		}
		done <- err
	}()

	g := waitLease(t, d, info.Worker)
	if g.Key != "key" {
		t.Fatalf("lease key = %q", g.Key)
	}
	if stale := d.Complete(info.Worker, g.Lease, testRecord(), "", false); stale {
		t.Fatal("fresh completion flagged stale")
	}
	if err := <-done; err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if c := d.Counters(); c.RemoteComputes != 1 {
		t.Fatalf("remote computes = %d, want 1", c.RemoteComputes)
	}
}

// waitLease polls a zero-wait Lease until the queued cell shows up.
func waitLease(t *testing.T, d *Dispatcher, workerID string) *Grant {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g, err := d.Lease(context.Background(), workerID, 0)
		if err != nil {
			t.Fatalf("Lease: %v", err)
		}
		if g != nil {
			return g
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no lease granted within deadline")
	return nil
}

func TestLeaseExpiryRequeuesAndDropsStaleResult(t *testing.T) {
	clk := newFakeClock()
	d := newTestDispatcher(clk, nil)
	info := d.RegisterWorker("w", 2)

	done := make(chan *store.Record, 1)
	go func() {
		rec, _ := d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
		done <- rec
	}()

	first := waitLease(t, d, info.Worker)
	// Keep the worker alive but let the lease lapse (no renewal).
	clk.Advance(11 * time.Second)
	_ = d.Heartbeat(info.Worker, nil) // liveness only; not renewing the lease
	if n := d.Reap(); n != 1 {
		t.Fatalf("Reap requeued %d leases, want 1", n)
	}

	second := waitLease(t, d, info.Worker)
	if second.Lease == first.Lease {
		t.Fatal("requeued cell reused the expired lease ID")
	}
	// The original holder answers late: dropped as stale.
	if stale := d.Complete(info.Worker, first.Lease, testRecord(), "", false); !stale {
		t.Fatal("expired lease completion not flagged stale")
	}
	want := testRecord()
	want.Key = "fresh"
	if stale := d.Complete(info.Worker, second.Lease, want, "", false); stale {
		t.Fatal("current lease completion flagged stale")
	}
	if rec := <-done; rec == nil || rec.Key != "fresh" {
		t.Fatalf("Compute returned %+v, want the current lease's record", rec)
	}
	c := d.Counters()
	if c.LeasesExpired != 1 || c.StaleResults != 1 || c.Requeues != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestWorkerLostRequeuesToSurvivor(t *testing.T) {
	clk := newFakeClock()
	d := newTestDispatcher(clk, nil)
	a := d.RegisterWorker("a", 1)
	b := d.RegisterWorker("b", 1)

	done := make(chan *store.Record, 1)
	go func() {
		rec, _ := d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
		done <- rec
	}()

	g := waitLease(t, d, a.Worker)
	// a goes silent past ExpireAfter; b stays warm.
	clk.Advance(21 * time.Second)
	_ = d.Heartbeat(b.Worker, nil)
	d.Reap()
	if _, err := d.Lease(context.Background(), a.Worker, 0); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("lost worker Lease err = %v, want ErrUnknownWorker", err)
	}
	if stale := d.Complete(a.Worker, g.Lease, testRecord(), "", false); !stale {
		t.Fatal("dead worker's completion not flagged stale")
	}

	g2 := waitLease(t, d, b.Worker)
	if stale := d.Complete(b.Worker, g2.Lease, testRecord(), "", false); stale {
		t.Fatal("survivor completion flagged stale")
	}
	if rec := <-done; rec == nil {
		t.Fatal("Compute returned nil record")
	}
	if c := d.Counters(); c.WorkersLost != 1 {
		t.Fatalf("workers lost = %d, want 1", c.WorkersLost)
	}
}

func TestLastWorkerLossFallsBackLocal(t *testing.T) {
	localCh := make(chan struct{}, 1)
	d := newTestDispatcher(nil, func(ctx context.Context, spec Spec) (*store.Record, error) {
		localCh <- struct{}{}
		return testRecord(), nil
	})
	info := d.RegisterWorker("w", 1)

	done := make(chan error, 1)
	go func() {
		_, err := d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
		done <- err
	}()
	waitLease(t, d, info.Worker)
	if err := d.Deregister(info.Worker); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	select {
	case <-localCh:
	case <-time.After(5 * time.Second):
		t.Fatal("local fallback compute never ran")
	}
	if err := <-done; err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if c := d.Counters(); c.LocalFallbacks != 1 || c.LocalComputes != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMaxRequeuesDegradesToLocal(t *testing.T) {
	clk := newFakeClock()
	localCh := make(chan struct{}, 1)
	d := NewDispatcher(Config{
		Local: func(ctx context.Context, spec Spec) (*store.Record, error) {
			localCh <- struct{}{}
			return testRecord(), nil
		},
		LeaseTTL:    10 * time.Second,
		MaxRequeues: 2,
		Now:         clk.Now,
		Sleep:       instant,
	})
	info := d.RegisterWorker("w", 1)
	go func() {
		_, _ = d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
	}()
	// Expire the lease MaxRequeues+1 times: the cell stops trusting
	// the fleet and computes locally.
	for i := 0; i < 3; i++ {
		waitLease(t, d, info.Worker)
		clk.Advance(11 * time.Second)
		_ = d.Heartbeat(info.Worker, nil)
		d.Reap()
	}
	select {
	case <-localCh:
	case <-time.After(5 * time.Second):
		t.Fatal("cell never degraded to local compute")
	}
	if c := d.Counters(); c.LocalFallbacks != 1 || c.Requeues != 3 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestHeartbeatRenewalCappedByMaxLifetime(t *testing.T) {
	clk := newFakeClock()
	d := NewDispatcher(Config{
		LeaseTTL:         10 * time.Second,
		MaxLeaseLifetime: 25 * time.Second,
		ExpireAfter:      time.Hour, // isolate lease expiry from worker death
		Local: func(ctx context.Context, spec Spec) (*store.Record, error) {
			return testRecord(), nil
		},
		Now:   clk.Now,
		Sleep: instant,
	})
	info := d.RegisterWorker("w", 1)
	go func() {
		_, _ = d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
	}()
	g := waitLease(t, d, info.Worker)
	// Renew forever: past granted+MaxLeaseLifetime the renewals stop
	// extending the deadline and the reaper takes the lease anyway.
	for i := 0; i < 4; i++ {
		clk.Advance(8 * time.Second)
		if err := d.Heartbeat(info.Worker, []uint64{g.Lease}); err != nil {
			t.Fatalf("Heartbeat: %v", err)
		}
		d.Reap()
	}
	if c := d.Counters(); c.LeasesExpired != 1 {
		t.Fatalf("hung compute's lease never expired despite heartbeats: %+v", c)
	}
}

func TestRemoteErrorRetriesThenSucceeds(t *testing.T) {
	var slept []time.Duration
	d := NewDispatcher(Config{
		LeaseTTL:   10 * time.Second,
		Retries:    2,
		RetryDelay: 100 * time.Millisecond,
		Rand:       func() float64 { return 0 },
		Sleep: func(_ context.Context, dur time.Duration) error {
			slept = append(slept, dur)
			return nil
		},
		Local: func(ctx context.Context, spec Spec) (*store.Record, error) {
			t.Error("unexpected local compute")
			return nil, errors.New("unexpected")
		},
	})
	info := d.RegisterWorker("w", 1)
	done := make(chan error, 1)
	go func() {
		_, err := d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
		done <- err
	}()
	g := waitLease(t, d, info.Worker)
	d.Complete(info.Worker, g.Lease, nil, "transient blowup", false)
	g2 := waitLease(t, d, info.Worker)
	d.Complete(info.Worker, g2.Lease, testRecord(), "", false)
	if err := <-done; err != nil {
		t.Fatalf("Compute after retry: %v", err)
	}
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want [50ms]", slept)
	}
	c := d.Counters()
	if c.RemoteErrors != 1 || c.RemoteComputes != 1 || c.Retries != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRemoteErrorExhaustsRetries(t *testing.T) {
	d := newTestDispatcher(nil, nil) // Retries = 0
	info := d.RegisterWorker("w", 1)
	done := make(chan error, 1)
	go func() {
		_, err := d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
		done <- err
	}()
	g := waitLease(t, d, info.Worker)
	d.Complete(info.Worker, g.Lease, nil, "sim diverged", false)
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "sim diverged") {
		t.Fatalf("Compute err = %v, want the worker-reported error", err)
	}
}

func TestComputeCancelAbandonsTask(t *testing.T) {
	d := newTestDispatcher(nil, nil)
	info := d.RegisterWorker("w", 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := d.Compute(ctx, testSpec("m"), "key", trace.Ctx{})
		done <- err
	}()
	g := waitLease(t, d, info.Worker)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Compute err = %v, want context.Canceled", err)
	}
	// The worker's eventual result lands stale, not delivered.
	if stale := d.Complete(info.Worker, g.Lease, testRecord(), "", false); !stale {
		t.Fatal("abandoned task's completion not flagged stale")
	}
}

func TestLongPollHandsOffDirectly(t *testing.T) {
	d := newTestDispatcher(nil, nil)
	info := d.RegisterWorker("w", 1)
	leased := make(chan *Grant, 1)
	go func() {
		g, err := d.Lease(context.Background(), info.Worker, 5*time.Second)
		if err != nil {
			t.Errorf("Lease: %v", err)
		}
		leased <- g
	}()
	time.Sleep(20 * time.Millisecond) // let the poller park
	go func() {
		_, _ = d.Compute(context.Background(), testSpec("m"), "key", trace.Ctx{})
	}()
	select {
	case g := <-leased:
		if g == nil {
			t.Fatal("parked poller got nil grant")
		}
		d.Complete(info.Worker, g.Lease, testRecord(), "", false)
	case <-time.After(5 * time.Second):
		t.Fatal("parked poller never woke")
	}
}

func TestLongPollTimeout(t *testing.T) {
	d := newTestDispatcher(nil, nil)
	info := d.RegisterWorker("w", 1)
	g, err := d.Lease(context.Background(), info.Worker, 10*time.Millisecond)
	if err != nil || g != nil {
		t.Fatalf("Lease = %v, %v, want nil, nil on timeout", g, err)
	}
}

func TestWorkerHTTPRoundTrip(t *testing.T) {
	d := newTestDispatcher(nil, nil)
	mux := http.NewServeMux()
	d.Register(mux, "fleet-secret")
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Wrong token: every endpoint refuses.
	resp, err := http.Post(srv.URL+"/fleet/register", "application/json", strings.NewReader(`{"name":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless register status = %d, want 401", resp.StatusCode)
	}

	computed := make(chan string, 1)
	w := NewWorker(WorkerConfig{
		BaseURL:  srv.URL,
		Name:     "httptest",
		Token:    "fleet-secret",
		PollWait: 50 * time.Millisecond,
		Compute: func(ctx context.Context, spec Spec) (*store.Record, error) {
			computed <- spec.Machine.Name
			return testRecord(), nil
		},
	})
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan struct{})
	go func() { _ = w.Run(wctx); close(workerDone) }()

	// Wait for the worker's registration to land, else Compute
	// (correctly) degrades to local execution.
	for deadline := time.Now().Add(5 * time.Second); d.Counters().Workers == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(time.Millisecond)
	}

	rec, err := d.Compute(context.Background(), testSpec("remote-cell"), "key", trace.Ctx{})
	if err != nil || rec == nil {
		t.Fatalf("Compute over HTTP = %v, %v", rec, err)
	}
	if name := <-computed; name != "remote-cell" {
		t.Fatalf("worker computed %q, want remote-cell", name)
	}
	if w.Computes() != 1 {
		t.Fatalf("worker computes = %d, want 1", w.Computes())
	}
	wcancel()
	select {
	case <-workerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not shut down")
	}
	if c := d.Counters(); c.Departs != 1 {
		t.Fatalf("graceful worker exit not recorded as depart: %+v", c)
	}
}

func TestUnknownWorkerGets410(t *testing.T) {
	d := newTestDispatcher(nil, nil)
	mux := http.NewServeMux()
	d.Register(mux, "")
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/fleet/heartbeat", "application/json",
		strings.NewReader(`{"worker":"w99"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("unknown worker heartbeat status = %d, want 410", resp.StatusCode)
	}
}
