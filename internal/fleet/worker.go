package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"recyclesim/internal/backoff"
	"recyclesim/internal/store"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// BaseURL of the recycled daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Name labels the worker in the daemon's listings and logs.
	Name string
	// Token, when non-empty, is sent as "Authorization: Bearer" on
	// every request (must match the daemon's -worker-token).
	Token string
	// Parallel is how many cells to compute concurrently (default 1).
	Parallel int
	// Compute executes one cell; defaults to Execute.  The chaos
	// harness swaps in stallable/killable computes here.
	Compute func(ctx context.Context, spec Spec) (*store.Record, error)
	// HTTP is the client used for all requests (default
	// http.DefaultClient); the chaos harness injects a partitioning
	// RoundTripper.
	HTTP *http.Client
	// PollWait is the long-poll window per lease request (default 5s).
	PollWait time.Duration
	// Log receives worker lifecycle records; nil discards them.
	Log *slog.Logger
}

// Worker is the worker-side half of the fleet protocol: it registers
// with the daemon, long-polls for leases on Parallel pullers, keeps
// its leases renewed from one heartbeat goroutine, and reports each
// cell's record (or compute error) back.  On shutdown it releases the
// leases it still holds and deregisters, so its cells requeue
// immediately instead of waiting out the lease TTL.
type Worker struct {
	cfg  WorkerConfig
	log  *slog.Logger
	http *http.Client

	mu       sync.Mutex
	id       string
	ttl      time.Duration
	beat     time.Duration
	holding  map[uint64]bool
	computes uint64
}

// NewWorker builds a worker; it does not contact the daemon until Run.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	if cfg.Compute == nil {
		cfg.Compute = Execute
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 5 * time.Second
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Worker{cfg: cfg, log: log, http: hc, holding: make(map[uint64]bool)}
}

// Computes returns how many cells this worker has computed (for tests
// and the worker's own shutdown log line).
func (w *Worker) Computes() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.computes
}

// post sends one JSON request; ctx bounds it.  A nil out discards the
// response body.  Non-2xx statuses come back as *StatusError.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.Token)
	}
	resp, err := w.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(msg))}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// StatusError is a non-2xx protocol reply.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string { return fmt.Sprintf("fleet: status %d: %s", e.Code, e.Body) }

// gone reports whether err is the daemon disowning this worker (410).
func gone(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusGone
}

// register joins (or re-joins) the fleet, retrying with backoff until
// ctx is done.
func (w *Worker) register(ctx context.Context) error {
	rnd := backoff.Rand(1)
	for attempt := 0; ; attempt++ {
		var resp registerResponse
		err := w.post(ctx, "/fleet/register", registerRequest{Name: w.cfg.Name, Parallel: w.cfg.Parallel}, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.Worker
			w.ttl = time.Duration(resp.LeaseTTLMS) * time.Millisecond
			w.beat = time.Duration(resp.HeartbeatMS) * time.Millisecond
			if w.beat <= 0 {
				w.beat = time.Second
			}
			w.holding = make(map[uint64]bool)
			w.mu.Unlock()
			w.log.Info("registered", "worker", resp.Worker, "lease_ttl", w.ttl.String())
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.log.Warn("register failed; retrying", "err", err.Error())
		if serr := backoff.Sleep(ctx, backoff.Delay(200*time.Millisecond, 5*time.Second, attempt, rnd)); serr != nil {
			return serr
		}
	}
}

// workerID returns the current registration ID.
func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// heartbeatLoop renews held leases every beat until ctx is done.  A
// 410 means the daemon reaped us: re-registration is signalled on
// reregister (buffered 1) and picked up by the pullers' next lease
// failure — here we just keep trying with the current ID until Run
// swaps it.
func (w *Worker) heartbeatLoop(ctx context.Context, goneCh chan<- struct{}) {
	for {
		w.mu.Lock()
		beat := w.beat
		w.mu.Unlock()
		if err := backoff.Sleep(ctx, beat); err != nil {
			return
		}
		w.mu.Lock()
		id := w.id
		leases := make([]uint64, 0, len(w.holding))
		//simlint:ignore determinism -- heartbeat listing order is irrelevant
		for l := range w.holding {
			leases = append(leases, l)
		}
		w.mu.Unlock()
		err := w.post(ctx, "/fleet/heartbeat", heartbeatRequest{Worker: id, Leases: leases}, nil)
		if gone(err) {
			select {
			case goneCh <- struct{}{}:
			default:
			}
		}
	}
}

// Run is the worker main loop: register, then pull-compute-complete on
// Parallel pullers until ctx is done, re-registering whenever the
// daemon disowns us.  It returns when ctx is done, after releasing
// held leases and deregistering (on a short detached timeout, so
// shutdown still completes when the daemon is unreachable).
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	goneCh := make(chan struct{}, 1)
	go w.heartbeatLoop(ctx, goneCh)

	var regMu sync.Mutex // serializes re-registration across pullers
	reregister := func(oldID string) {
		regMu.Lock()
		defer regMu.Unlock()
		if w.workerID() != oldID {
			return // another puller already re-registered
		}
		w.log.Warn("disowned by daemon; re-registering", "old_worker", oldID)
		_ = w.register(ctx)
	}

	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.pullLoop(ctx, goneCh, reregister)
		}()
	}
	wg.Wait()

	// Graceful exit: give back what we hold so the dispatcher requeues
	// immediately, then deregister.  ctx is already done, so use a
	// short detached timeout.
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w.mu.Lock()
	id := w.id
	held := make([]uint64, 0, len(w.holding))
	//simlint:ignore determinism -- release order is irrelevant
	for l := range w.holding {
		held = append(held, l)
	}
	w.mu.Unlock()
	for _, l := range held {
		_ = w.post(dctx, "/fleet/complete", completeRequest{Worker: id, Lease: l, Release: true}, nil)
	}
	_ = w.post(dctx, "/fleet/deregister", deregisterRequest{Worker: id}, nil)
	w.log.Info("worker stopped", "computes", w.Computes())
	return ctx.Err()
}

// pullLoop is one puller: long-poll a lease, compute, complete.
func (w *Worker) pullLoop(ctx context.Context, goneCh <-chan struct{}, reregister func(oldID string)) {
	rnd := backoff.Rand(2)
	errStreak := 0
	for {
		if ctx.Err() != nil {
			return
		}
		select {
		case <-goneCh:
			reregister(w.workerID())
		default:
		}
		id := w.workerID()
		var lr leaseResponse
		err := w.post(ctx, "/fleet/lease", leaseRequest{Worker: id, WaitMS: w.cfg.PollWait.Milliseconds()}, &lr)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if gone(err) {
				reregister(id)
				errStreak = 0
				continue
			}
			errStreak++
			w.log.Warn("lease poll failed", "err", err.Error())
			if serr := backoff.Sleep(ctx, backoff.Delay(100*time.Millisecond, 3*time.Second, errStreak-1, rnd)); serr != nil {
				return
			}
			continue
		}
		errStreak = 0
		if lr.Lease == 0 {
			continue // long-poll timeout (204): poll again
		}
		w.serve(ctx, id, lr)
	}
}

// serve computes one leased cell and reports the outcome.
func (w *Worker) serve(ctx context.Context, id string, lr leaseResponse) {
	w.mu.Lock()
	w.holding[lr.Lease] = true
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.holding, lr.Lease)
		w.mu.Unlock()
	}()
	w.log.Debug("leased cell", "lease", lr.Lease, "cell", lr.Spec.Name())
	rec, err := w.cfg.Compute(ctx, lr.Spec)
	req := completeRequest{Worker: id, Lease: lr.Lease}
	if err != nil {
		if ctx.Err() != nil {
			// Shutting down mid-compute: give the cell back rather
			// than reporting our cancellation as a compute failure.
			req.Release = true
		} else {
			req.Error = err.Error()
		}
	} else {
		req.Record = rec
		w.mu.Lock()
		w.computes++
		w.mu.Unlock()
	}
	cctx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
	}
	var cr completeResponse
	if cerr := w.post(cctx, "/fleet/complete", req, &cr); cerr != nil {
		w.log.Warn("complete failed", "lease", lr.Lease, "err", cerr.Error())
		return
	}
	if cr.Stale {
		w.log.Info("completion was stale (lease expired or requeued)", "lease", lr.Lease)
	}
}
