package fleet

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"recyclesim/internal/store"
)

// Registrar is the handler-mounting surface (net/http's ServeMux
// satisfies it), mirroring the jobs package.
type Registrar interface {
	Handle(pattern string, handler http.Handler)
}

// Wire types of the worker protocol.  Durations travel as
// milliseconds so the protocol has no dependency on Go duration
// encoding.
type registerRequest struct {
	Name     string `json:"name"`
	Parallel int    `json:"parallel"`
}

type registerResponse struct {
	Worker      string `json:"worker"`
	LeaseTTLMS  int64  `json:"lease_ttl_ms"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
	WaitMS int64  `json:"wait_ms"`
}

type leaseResponse struct {
	Lease uint64 `json:"lease"`
	Key   string `json:"key"`
	Spec  Spec   `json:"spec"`
	TTLMS int64  `json:"ttl_ms"`
}

type heartbeatRequest struct {
	Worker string   `json:"worker"`
	Leases []uint64 `json:"leases"`
}

type completeRequest struct {
	Worker  string        `json:"worker"`
	Lease   uint64        `json:"lease"`
	Record  *store.Record `json:"record,omitempty"`
	Error   string        `json:"error,omitempty"`
	Release bool          `json:"release,omitempty"`
}

type completeResponse struct {
	Stale bool `json:"stale"`
}

type deregisterRequest struct {
	Worker string `json:"worker"`
}

// maxLeaseWait caps server-side long-poll parking so a worker that
// vanishes mid-poll cannot pin a handler goroutine for long.
const maxLeaseWait = 30 * time.Second

// Register mounts the worker protocol on mux under /fleet/.  When
// token is non-empty every endpoint requires "Authorization: Bearer
// <token>" — the fleet side of the service's trust boundary (client
// auth lives in the jobs package).
func (d *Dispatcher) Register(mux Registrar, token string) {
	guard := func(h http.HandlerFunc) http.Handler {
		if token == "" {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			got := r.Header.Get("Authorization")
			want := "Bearer " + token
			if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
				http.Error(w, `{"error":"unauthorized","code":"unauthorized"}`, http.StatusUnauthorized)
				return
			}
			h(w, r)
		})
	}
	mux.Handle("POST /fleet/register", guard(d.handleRegister))
	mux.Handle("POST /fleet/lease", guard(d.handleLease))
	mux.Handle("POST /fleet/heartbeat", guard(d.handleHeartbeat))
	mux.Handle("POST /fleet/complete", guard(d.handleComplete))
	mux.Handle("POST /fleet/deregister", guard(d.handleDeregister))
	mux.Handle("GET /fleet/workers", guard(d.handleWorkers))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// workerStatusCode maps dispatcher errors to HTTP: an unknown worker
// gets 410 Gone, telling the client to re-register (its state was
// reaped, or it never existed).
func workerStatusCode(err error) int {
	if errors.Is(err, ErrUnknownWorker) {
		return http.StatusGone
	}
	return http.StatusInternalServerError
}

func (d *Dispatcher) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad register body: "+err.Error(), http.StatusBadRequest)
		return
	}
	info := d.RegisterWorker(req.Name, req.Parallel)
	writeJSON(w, http.StatusOK, registerResponse{
		Worker:      info.Worker,
		LeaseTTLMS:  info.LeaseTTL.Milliseconds(),
		HeartbeatMS: info.HeartbeatEvery.Milliseconds(),
	})
}

func (d *Dispatcher) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease body: "+err.Error(), http.StatusBadRequest)
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	g, err := d.Lease(r.Context(), req.Worker, wait)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing useful to write
		}
		http.Error(w, err.Error(), workerStatusCode(err))
		return
	}
	if g == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse{
		Lease: g.Lease, Key: g.Key, Spec: g.Spec, TTLMS: g.TTL.Milliseconds(),
	})
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := d.Heartbeat(req.Worker, req.Leases); err != nil {
		http.Error(w, err.Error(), workerStatusCode(err))
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (d *Dispatcher) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad complete body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Record == nil && req.Error == "" && !req.Release {
		http.Error(w, "complete needs a record, an error, or release", http.StatusBadRequest)
		return
	}
	stale := d.Complete(req.Worker, req.Lease, req.Record, req.Error, req.Release)
	writeJSON(w, http.StatusOK, completeResponse{Stale: stale})
}

func (d *Dispatcher) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req deregisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad deregister body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := d.Deregister(req.Worker); err != nil {
		http.Error(w, err.Error(), workerStatusCode(err))
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (d *Dispatcher) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Workers())
}
