package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"recyclesim"
	"recyclesim/internal/backoff"
	"recyclesim/internal/obs/trace"
	"recyclesim/internal/store"
)

// ErrUnknownWorker is returned by Lease/Heartbeat/Complete for a
// worker ID the dispatcher does not know (never registered, or reaped
// after going silent).  The HTTP layer maps it to 410 Gone and the
// worker client re-registers.
var ErrUnknownWorker = errors.New("fleet: unknown worker")

// Config tunes a Dispatcher.  The zero value works: defaults are
// filled in by NewDispatcher.
type Config struct {
	// Local computes a cell in-process: the fallback when no workers
	// are attached (or a cell has exhausted its requeue budget).
	// Defaults to Execute.
	Local func(ctx context.Context, spec Spec) (*store.Record, error)

	// LeaseTTL bounds the time between heartbeat renewals of one
	// remote compute (default 30s).  A lease not renewed within it is
	// expired and its cell requeued.
	LeaseTTL time.Duration
	// MaxLeaseLifetime caps the total life of one lease across
	// renewals (default 20*LeaseTTL), so a hung compute on a
	// healthily-heartbeating worker still gets requeued eventually.
	MaxLeaseLifetime time.Duration
	// ExpireAfter declares a worker dead when it has not been heard
	// from (lease, heartbeat, complete) for this long (default
	// 2*LeaseTTL); its leases are requeued and its later results
	// dropped as stale.
	ExpireAfter time.Duration
	// MaxRequeues bounds how many times one cell survives
	// infrastructure failures (lease expiry, worker death or
	// departure) before the dispatcher stops trusting the fleet with
	// it and computes it locally (default 3).
	MaxRequeues int

	// Retries is the number of extra attempts a cell whose *compute*
	// failed gets (locally or on a worker) before the error is
	// returned; cancellation and deadline errors are never retried.
	Retries int
	// RetryDelay/RetryDelayMax shape the capped exponential backoff
	// (with equal jitter) between compute retries; zero RetryDelay
	// retries immediately.
	RetryDelay    time.Duration
	RetryDelayMax time.Duration

	// Now, Rand, and Sleep are the deterministic injection points for
	// tests (fleet/chaos drives lease expiry with a fake clock and
	// pins jitter).  Defaults: time.Now, a fixed-seed backoff.Rand
	// per compute, backoff.Sleep.  Injected functions must be safe
	// for concurrent use.
	Now   func() time.Time
	Rand  func() float64
	Sleep func(context.Context, time.Duration) error

	// Log receives dispatcher lifecycle records; nil discards them.
	Log *slog.Logger
}

// Counters is a snapshot of the dispatcher's accounting.
type Counters struct {
	Workers        int64  `json:"workers"`
	QueueDepth     int64  `json:"queue_depth"`
	Registers      uint64 `json:"registers"`
	Departs        uint64 `json:"departs"`
	WorkersLost    uint64 `json:"workers_lost"`
	LeasesGranted  uint64 `json:"leases_granted"`
	LeasesExpired  uint64 `json:"leases_expired"`
	Requeues       uint64 `json:"requeues"`
	StaleResults   uint64 `json:"stale_results"`
	RemoteComputes uint64 `json:"remote_computes"`
	RemoteErrors   uint64 `json:"remote_errors"`
	LocalComputes  uint64 `json:"local_computes"`
	LocalFallbacks uint64 `json:"local_fallbacks"`
	Retries        uint64 `json:"retries"`
}

// roundKind classifies the outcome of one remote round of a cell.
type roundKind int

const (
	roundOK       roundKind = iota // worker returned a record
	roundErr                       // worker reported a compute error
	roundFallback                  // fleet gave up on this cell: compute locally
)

type roundResult struct {
	kind   roundKind
	rec    *store.Record
	errMsg string
}

// task is one cell currently owned by the fleet: queued, leased, or
// being delivered.  All fields are guarded by the dispatcher mutex
// except ch, which is buffered and written exactly once per round.
type task struct {
	seq      uint64
	spec     Spec
	key      string
	tc       trace.Ctx
	requeues int

	queued    bool
	lease     *lease
	abandoned bool
	ch        chan roundResult
}

// lease is one grant of a task to a worker.
type lease struct {
	id       uint64
	t        *task
	w        *worker
	granted  time.Time
	deadline time.Time
	span     trace.Ctx
}

// worker is one registered remote worker process.
type worker struct {
	id       string
	name     string
	parallel int
	joined   time.Time
	lastSeen time.Time
	leases   map[uint64]*lease
}

// waiter is one long-polling Lease call parked until work arrives.
type waiter struct {
	workerID string
	ch       chan *Grant // buffered 1
}

// Grant is the reply to a successful Lease: one cell under one lease.
type Grant struct {
	Lease uint64        `json:"lease"`
	Key   string        `json:"key"`
	Spec  Spec          `json:"spec"`
	TTL   time.Duration `json:"-"`
}

// WorkerStatus is one row of the /fleet/workers listing.
type WorkerStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Parallel int    `json:"parallel"`
	Leases   int    `json:"leases"`
	AgeSec   int64  `json:"age_sec"`
	IdleSec  int64  `json:"idle_sec"`
}

// RegisterInfo is the reply to a worker registration.
type RegisterInfo struct {
	Worker         string        `json:"worker"`
	LeaseTTL       time.Duration `json:"-"`
	HeartbeatEvery time.Duration `json:"-"`
}

// Dispatcher owns the fleet: registered workers, the queue of
// unleased cells, and every outstanding lease.  All methods are safe
// for concurrent use.
type Dispatcher struct {
	cfg Config
	log *slog.Logger

	mu        sync.Mutex
	workers   map[string]*worker
	leases    map[uint64]*lease
	queue     []*task
	waiters   []*waiter
	workerSeq uint64
	taskSeq   uint64
	leaseSeq  uint64

	registers      atomic.Uint64
	departs        atomic.Uint64
	workersLost    atomic.Uint64
	leasesGranted  atomic.Uint64
	leasesExpired  atomic.Uint64
	requeues       atomic.Uint64
	staleResults   atomic.Uint64
	remoteComputes atomic.Uint64
	remoteErrors   atomic.Uint64
	localComputes  atomic.Uint64
	localFallbacks atomic.Uint64
	retries        atomic.Uint64
}

// NewDispatcher builds a dispatcher; zero cfg fields get defaults.
func NewDispatcher(cfg Config) *Dispatcher {
	if cfg.Local == nil {
		cfg.Local = Execute
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxLeaseLifetime <= 0 {
		cfg.MaxLeaseLifetime = 20 * cfg.LeaseTTL
	}
	if cfg.ExpireAfter <= 0 {
		cfg.ExpireAfter = 2 * cfg.LeaseTTL
	}
	if cfg.MaxRequeues <= 0 {
		cfg.MaxRequeues = 3
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = backoff.Sleep
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	return &Dispatcher{
		cfg:     cfg,
		log:     log,
		workers: make(map[string]*worker),
		leases:  make(map[uint64]*lease),
	}
}

// Counters returns a snapshot of the accounting.
func (d *Dispatcher) Counters() Counters {
	d.mu.Lock()
	nw, nq := int64(len(d.workers)), int64(len(d.queue))
	d.mu.Unlock()
	return Counters{
		Workers:        nw,
		QueueDepth:     nq,
		Registers:      d.registers.Load(),
		Departs:        d.departs.Load(),
		WorkersLost:    d.workersLost.Load(),
		LeasesGranted:  d.leasesGranted.Load(),
		LeasesExpired:  d.leasesExpired.Load(),
		Requeues:       d.requeues.Load(),
		StaleResults:   d.staleResults.Load(),
		RemoteComputes: d.remoteComputes.Load(),
		RemoteErrors:   d.remoteErrors.Load(),
		LocalComputes:  d.localComputes.Load(),
		LocalFallbacks: d.localFallbacks.Load(),
		Retries:        d.retries.Load(),
	}
}

// Workers lists the registered workers for diagnostics.
func (d *Dispatcher) Workers() []WorkerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Now()
	out := make([]WorkerStatus, 0, len(d.workers))
	//simlint:ignore determinism -- diagnostic listing, sorted by the caller if needed
	for _, w := range d.workers {
		out = append(out, WorkerStatus{
			ID:       w.id,
			Name:     w.name,
			Parallel: w.parallel,
			Leases:   len(w.leases),
			AgeSec:   int64(now.Sub(w.joined).Seconds()),
			IdleSec:  int64(now.Sub(w.lastSeen).Seconds()),
		})
	}
	return out
}

// RegisterWorker admits a worker and returns its assigned ID plus the
// lease/heartbeat timing contract.
func (d *Dispatcher) RegisterWorker(name string, parallel int) RegisterInfo {
	if parallel <= 0 {
		parallel = 1
	}
	d.mu.Lock()
	d.workerSeq++
	w := &worker{
		id:       fmt.Sprintf("w%d", d.workerSeq),
		name:     name,
		parallel: parallel,
		joined:   d.cfg.Now(),
		lastSeen: d.cfg.Now(),
		leases:   make(map[uint64]*lease),
	}
	d.workers[w.id] = w
	d.mu.Unlock()
	d.registers.Add(1)
	d.log.Info("worker registered", "worker", w.id, "name", name, "parallel", parallel)
	return RegisterInfo{Worker: w.id, LeaseTTL: d.cfg.LeaseTTL, HeartbeatEvery: d.cfg.LeaseTTL / 3}
}

// Deregister removes a worker gracefully: its outstanding leases are
// requeued immediately (no expiry wait) and later results dropped.
func (d *Dispatcher) Deregister(workerID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	d.removeWorkerLocked(w, "worker-departed")
	d.departs.Add(1)
	d.log.Info("worker departed", "worker", workerID)
	return nil
}

// Heartbeat refreshes a worker's liveness and renews the listed
// leases.  Renewal extends a lease by LeaseTTL but never past its
// MaxLeaseLifetime, so a hung compute cannot hold a cell forever.
func (d *Dispatcher) Heartbeat(workerID string, leaseIDs []uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	now := d.cfg.Now()
	w.lastSeen = now
	for _, id := range leaseIDs {
		l := w.leases[id]
		if l == nil {
			continue // expired and requeued; the worker learns via stale Complete
		}
		deadline := now.Add(d.cfg.LeaseTTL)
		if cap := l.granted.Add(d.cfg.MaxLeaseLifetime); deadline.After(cap) {
			deadline = cap
		}
		l.deadline = deadline
	}
	return nil
}

// Lease hands the worker one queued cell under a fresh lease,
// long-polling up to wait when the queue is empty (nil Grant on
// timeout).  The worker must Complete the lease or keep it renewed by
// heartbeat; otherwise the cell is requeued at the deadline.
func (d *Dispatcher) Lease(ctx context.Context, workerID string, wait time.Duration) (*Grant, error) {
	d.mu.Lock()
	w := d.workers[workerID]
	if w == nil {
		d.mu.Unlock()
		return nil, ErrUnknownWorker
	}
	w.lastSeen = d.cfg.Now()
	if len(d.queue) > 0 {
		t := d.queue[0]
		d.queue = d.queue[1:]
		t.queued = false
		g := d.grantLocked(w, t)
		d.mu.Unlock()
		return g, nil
	}
	if wait <= 0 {
		d.mu.Unlock()
		return nil, nil
	}
	wt := &waiter{workerID: workerID, ch: make(chan *Grant, 1)}
	d.waiters = append(d.waiters, wt)
	d.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	var timedOut bool
	select {
	case g := <-wt.ch:
		return g, nil
	case <-ctx.Done():
	case <-timer.C:
		timedOut = true
	}
	d.mu.Lock()
	for i, o := range d.waiters {
		if o == wt {
			d.waiters = append(d.waiters[:i], d.waiters[i+1:]...)
			break
		}
	}
	// A grant may have raced the timeout; on a plain timeout the
	// handler is still alive and can use it, but a dead request
	// context means nobody will compute it — requeue.
	select {
	case g := <-wt.ch:
		if timedOut {
			d.mu.Unlock()
			return g, nil
		}
		if l := d.leases[g.Lease]; l != nil {
			d.expireLeaseLocked(l, "lease-request-died")
		}
		d.mu.Unlock()
		return nil, ctx.Err()
	default:
	}
	d.mu.Unlock()
	if !timedOut && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return nil, nil
}

// grantLocked creates a lease of t to w.  Caller holds d.mu.
func (d *Dispatcher) grantLocked(w *worker, t *task) *Grant {
	now := d.cfg.Now()
	d.leaseSeq++
	l := &lease{
		id:       d.leaseSeq,
		t:        t,
		w:        w,
		granted:  now,
		deadline: now.Add(d.cfg.LeaseTTL),
	}
	l.span = t.tc.Start("lease").Str("worker", w.id).Uint("lease", l.id)
	t.lease = l
	w.leases[l.id] = l
	d.leases[l.id] = l
	d.leasesGranted.Add(1)
	d.log.Debug("lease granted", "worker", w.id, "lease", l.id, "cell", t.spec.Name())
	return &Grant{Lease: l.id, Key: t.key, Spec: t.spec, TTL: d.cfg.LeaseTTL}
}

// Complete reports one lease's outcome: a record, a compute error, or
// a release (the worker is giving the cell back, e.g. on shutdown).
// A completion for a lease the dispatcher no longer tracks — expired,
// worker declared dead, cell already requeued — is dropped as stale;
// the caller learns via the return value, and exactly-once storage is
// preserved because only the current leaseholder's result is
// delivered.
func (d *Dispatcher) Complete(workerID string, leaseID uint64, rec *store.Record, errMsg string, release bool) (stale bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w := d.workers[workerID]; w != nil {
		w.lastSeen = d.cfg.Now()
	}
	l := d.leases[leaseID]
	if l == nil || l.w.id != workerID {
		d.staleResults.Add(1)
		d.log.Debug("stale completion dropped", "worker", workerID, "lease", leaseID)
		return true
	}
	d.detachLeaseLocked(l)
	t := l.t
	switch {
	case release:
		l.span.Str("end", "released").End()
		d.requeueLocked(t, "worker-released")
	case errMsg != "":
		l.span.Str("error", errMsg).End()
		d.remoteErrors.Add(1)
		d.deliverLocked(t, roundResult{kind: roundErr, errMsg: errMsg})
	default:
		l.span.End()
		d.remoteComputes.Add(1)
		d.deliverLocked(t, roundResult{kind: roundOK, rec: rec})
	}
	return false
}

// detachLeaseLocked unlinks a lease from its worker, task, and the
// global table.  Caller holds d.mu.
func (d *Dispatcher) detachLeaseLocked(l *lease) {
	delete(d.leases, l.id)
	delete(l.w.leases, l.id)
	if l.t.lease == l {
		l.t.lease = nil
	}
}

// deliverLocked hands the round result to the waiting Compute, unless
// it abandoned the task (context cancellation).  Caller holds d.mu.
func (d *Dispatcher) deliverLocked(t *task, r roundResult) {
	if t.abandoned {
		return
	}
	t.ch <- r
}

// requeueLocked returns a task to service after an infrastructure
// failure: back onto the queue head (or straight to a parked waiter)
// while its requeue budget lasts, otherwise — or when no workers
// remain — delivered as a local-compute fallback.  Caller holds d.mu.
func (d *Dispatcher) requeueLocked(t *task, reason string) {
	if t.abandoned {
		return
	}
	t.requeues++
	d.requeues.Add(1)
	t.tc.Start("requeue").Str("reason", reason).Uint("requeues", uint64(t.requeues)).End()
	d.log.Info("cell requeued", "cell", t.spec.Name(), "reason", reason, "requeues", t.requeues)
	if t.requeues > d.cfg.MaxRequeues || len(d.workers) == 0 {
		d.localFallbacks.Add(1)
		d.deliverLocked(t, roundResult{kind: roundFallback, errMsg: reason})
		return
	}
	if d.handToWaiterLocked(t) {
		return
	}
	d.queue = append([]*task{t}, d.queue...)
	t.queued = true
}

// handToWaiterLocked grants t to the first parked Lease call whose
// worker is still alive.  Caller holds d.mu.
func (d *Dispatcher) handToWaiterLocked(t *task) bool {
	for len(d.waiters) > 0 {
		wt := d.waiters[0]
		d.waiters = d.waiters[1:]
		w := d.workers[wt.workerID]
		if w == nil {
			continue
		}
		wt.ch <- d.grantLocked(w, t)
		return true
	}
	return false
}

// removeWorkerLocked drops a worker and requeues everything it held.
// When the last worker leaves, the queue is flushed to local compute.
// Caller holds d.mu.
func (d *Dispatcher) removeWorkerLocked(w *worker, reason string) {
	delete(d.workers, w.id)
	for _, l := range w.leases {
		delete(d.leases, l.id)
		if l.t.lease == l {
			l.t.lease = nil
		}
		l.span.Str("end", reason).End()
		d.leasesExpired.Add(1)
		d.requeueLocked(l.t, reason)
	}
	w.leases = make(map[uint64]*lease)
	if len(d.workers) == 0 {
		for _, t := range d.queue {
			t.queued = false
			d.localFallbacks.Add(1)
			d.deliverLocked(t, roundResult{kind: roundFallback, errMsg: "no workers attached"})
		}
		d.queue = nil
	}
}

// expireLeaseLocked requeues one lease's task without touching the
// worker's liveness.  Caller holds d.mu.
func (d *Dispatcher) expireLeaseLocked(l *lease, reason string) {
	d.detachLeaseLocked(l)
	l.span.Str("end", reason).End()
	d.leasesExpired.Add(1)
	d.requeueLocked(l.t, reason)
}

// Reap expires overdue leases and declares silent workers dead,
// requeueing their cells.  It is called periodically by the goroutine
// StartReaper launches, and directly by tests (with an injected clock)
// for deterministic fault schedules.  It returns how many leases were
// requeued.
func (d *Dispatcher) Reap() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Now()
	n := 0
	var lost []*worker
	//simlint:ignore determinism -- requeue order does not affect results (the store dedupes)
	for _, w := range d.workers {
		if now.Sub(w.lastSeen) > d.cfg.ExpireAfter {
			lost = append(lost, w)
		}
	}
	for _, w := range lost {
		n += len(w.leases)
		d.workersLost.Add(1)
		d.log.Warn("worker lost", "worker", w.id, "name", w.name, "leases", len(w.leases),
			"silent", now.Sub(w.lastSeen).String())
		d.removeWorkerLocked(w, "worker-lost")
	}
	var overdue []*lease
	//simlint:ignore determinism -- requeue order does not affect results (the store dedupes)
	for _, l := range d.leases {
		if now.After(l.deadline) {
			overdue = append(overdue, l)
		}
	}
	for _, l := range overdue {
		n++
		d.log.Warn("lease expired", "worker", l.w.id, "lease", l.id, "cell", l.t.spec.Name())
		d.expireLeaseLocked(l, "lease-expired")
	}
	return n
}

// StartReaper runs Reap every interval (default LeaseTTL/4) until ctx
// is done.
func (d *Dispatcher) StartReaper(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = d.cfg.LeaseTTL / 4
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				d.Reap()
			}
		}
	}()
}

// enqueue admits a cell to the fleet, granting it straight to a parked
// Lease call when one is waiting.  ok is false when no workers are
// attached (the caller computes locally).
func (d *Dispatcher) enqueue(spec Spec, key string, tc trace.Ctx) (*task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.workers) == 0 {
		return nil, false
	}
	d.taskSeq++
	t := &task{seq: d.taskSeq, spec: spec, key: key, tc: tc, ch: make(chan roundResult, 1)}
	if !d.handToWaiterLocked(t) {
		d.queue = append(d.queue, t)
		t.queued = true
	}
	return t, true
}

// abandon detaches a task whose Compute gave up (context cancellation):
// it leaves the queue, and any in-flight lease is expired so the
// worker's eventual completion is dropped as stale.
func (d *Dispatcher) abandon(t *task) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t.abandoned = true
	if t.queued {
		for i, q := range d.queue {
			if q == t {
				d.queue = append(d.queue[:i], d.queue[i+1:]...)
				break
			}
		}
		t.queued = false
	}
	if l := t.lease; l != nil {
		d.detachLeaseLocked(l)
		l.span.Str("end", "abandoned").End()
	}
}

// Compute executes one cell through the fleet: dispatched to a worker
// under a lease when any are attached, computed in-process otherwise.
// Infrastructure failures (lease expiry, worker death/departure)
// requeue the cell transparently up to MaxRequeues, then degrade to
// local compute; compute failures retry with capped exponential
// backoff + jitter up to Retries, skipping cancellation and deadline
// errors.  tc is the cell's compute span; lease, requeue, backoff, and
// attempt children land under it.
func (d *Dispatcher) Compute(ctx context.Context, spec Spec, key string, tc trace.Ctx) (*store.Record, error) {
	rnd := d.cfg.Rand
	var attempt int
	localOnly := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !localOnly {
			if t, ok := d.enqueue(spec, key, tc); ok {
				var r roundResult
				select {
				case r = <-t.ch:
				case <-ctx.Done():
					d.abandon(t)
					return nil, ctx.Err()
				}
				switch r.kind {
				case roundOK:
					return r.rec, nil
				case roundFallback:
					localOnly = true
					d.log.Info("cell degraded to local compute", "cell", spec.Name(), "reason", r.errMsg)
					continue
				case roundErr:
					if attempt >= d.cfg.Retries {
						return nil, errors.New(r.errMsg)
					}
					attempt++
					if err := d.backoffWait(ctx, tc, attempt, &rnd); err != nil {
						return nil, err
					}
					continue
				}
			}
			// enqueue refused: zero workers attached right now.
		}
		rec, err := d.localAttempt(ctx, spec, tc, attempt)
		if err == nil {
			return rec, nil
		}
		if errors.Is(err, recyclesim.ErrCanceled) || errors.Is(err, recyclesim.ErrDeadline) || attempt >= d.cfg.Retries {
			return nil, err
		}
		attempt++
		if werr := d.backoffWait(ctx, tc, attempt, &rnd); werr != nil {
			return nil, err
		}
	}
}

// localAttempt runs one in-process compute attempt under an "attempt"
// span (the same schema the pre-fleet job server recorded).
func (d *Dispatcher) localAttempt(ctx context.Context, spec Spec, tc trace.Ctx, attempt int) (*store.Record, error) {
	d.localComputes.Add(1)
	at := tc.Start("attempt").Uint("attempt", uint64(attempt))
	rec, err := d.cfg.Local(ctx, spec)
	if err != nil {
		at.Error(err).End()
		return nil, err
	}
	at.End()
	return rec, nil
}

// backoffWait sleeps the capped exponential backoff before retry
// attempt (1-based), initializing the per-compute jitter stream on
// first use.
func (d *Dispatcher) backoffWait(ctx context.Context, tc trace.Ctx, attempt int, rnd *func() float64) error {
	d.retries.Add(1)
	if d.cfg.RetryDelay <= 0 {
		return ctx.Err()
	}
	if *rnd == nil {
		*rnd = backoff.Rand(uint64(attempt) * 0x9e37)
	}
	delay := backoff.Delay(d.cfg.RetryDelay, d.cfg.RetryDelayMax, attempt-1, *rnd)
	bs := tc.Start("backoff").Uint("attempt", uint64(attempt))
	err := d.cfg.Sleep(ctx, delay)
	bs.End()
	return err
}

// WriteMetrics appends the dispatcher's Prometheus text exposition
// (svc_fleet_* series), meant for obs/server.AppendMetrics alongside
// the job layer's metrics.
func (d *Dispatcher) WriteMetrics(w io.Writer) {
	c := d.Counters()
	fmt.Fprintf(w, "# fleet (distributed execution) metrics\n")
	fmt.Fprintf(w, "svc_fleet_workers %d\n", c.Workers)
	fmt.Fprintf(w, "svc_fleet_queue_depth %d\n", c.QueueDepth)
	fmt.Fprintf(w, "svc_fleet_registers_total %d\n", c.Registers)
	fmt.Fprintf(w, "svc_fleet_departs_total %d\n", c.Departs)
	fmt.Fprintf(w, "svc_fleet_workers_lost_total %d\n", c.WorkersLost)
	fmt.Fprintf(w, "svc_fleet_leases_granted_total %d\n", c.LeasesGranted)
	fmt.Fprintf(w, "svc_fleet_leases_expired_total %d\n", c.LeasesExpired)
	fmt.Fprintf(w, "svc_fleet_requeues_total %d\n", c.Requeues)
	fmt.Fprintf(w, "svc_fleet_stale_results_total %d\n", c.StaleResults)
	fmt.Fprintf(w, "svc_fleet_remote_computes_total %d\n", c.RemoteComputes)
	fmt.Fprintf(w, "svc_fleet_remote_errors_total %d\n", c.RemoteErrors)
	fmt.Fprintf(w, "svc_fleet_local_computes_total %d\n", c.LocalComputes)
	fmt.Fprintf(w, "svc_fleet_local_fallbacks_total %d\n", c.LocalFallbacks)
	fmt.Fprintf(w, "svc_fleet_retries_total %d\n", c.Retries)
}
