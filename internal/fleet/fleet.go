// Package fleet is the distributed execution layer behind the
// recycled job service: worker processes (cmd/recycleworker) register
// with the daemon, heartbeat, and pull simulation cells under
// time-bounded leases; the Dispatcher requeues cells whose lease
// expires or whose worker dies mid-compute, retries failed computes
// with capped exponential backoff + jitter, and degrades gracefully to
// local in-process compute when no workers are attached.
//
// The determinism contract is the same one every layer above keeps: a
// cell's result record is a pure function of its Spec, computed by
// Execute with the exact budgets and policies the local paths use
// (cmd/experiments' 40x cycle budget, sampled cells at Workers 1), so
// a sweep's output is byte-identical whether it ran on 0, 1, or N
// worker hosts — witnessed by the chaos tests in fleet/chaos.  The
// durable store above the dispatcher still guarantees each distinct
// cell is computed exactly once per store, no matter how many workers
// race, die, or resurrect: a requeued cell's late result from the
// original (stale) lease is dropped, never double-stored.
//
// This package is host-side service code (goroutines, wall clock,
// HTTP) and lives outside the simulator's determinism scope
// (lint.NonSimPackages); it must never be imported by simulation
// packages.
package fleet

import (
	"context"
	"strings"

	"recyclesim"
	"recyclesim/internal/config"
	"recyclesim/internal/obs"
	"recyclesim/internal/store"
)

// Sampling is the sampled-mode schedule of a cell, travelling raw
// (zero fields select the simulator defaults) exactly like the job
// API's SamplingSpec.
type Sampling struct {
	Period      uint64  `json:"period,omitempty"`
	IntervalLen uint64  `json:"interval,omitempty"`
	WarmupLen   uint64  `json:"warmup,omitempty"`
	Confidence  float64 `json:"confidence,omitempty"`
}

// Spec identifies one simulation cell: the full machine and feature
// configuration (by content, not by name), the workload mix, the
// committed-instruction budget, and the sampling schedule for sampled
// cells.  It is the unit of work the dispatcher hands to workers.
type Spec struct {
	Machine   config.Machine  `json:"machine"`
	Features  config.Features `json:"features"`
	Workloads []string        `json:"workloads"`
	// Insts is the committed-instruction budget (0 = 200_000); the
	// cycle budget is fixed at the harness's 40x policy.
	Insts uint64 `json:"insts,omitempty"`
	// Sampling, when non-nil, makes this a sampled cell.
	Sampling *Sampling `json:"sampling,omitempty"`
}

// Name renders the spec for logs and progress displays.
func (s Spec) Name() string {
	name := s.Machine.Name + "/" + config.FeatureName(s.Features) + "/" + strings.Join(s.Workloads, "+")
	if s.Sampling != nil {
		name = "sampled/" + name
	}
	return name
}

// Execute computes one cell in-process: the canonical Spec→Record
// executor shared by the dispatcher's zero-worker fallback, the
// in-process path of the job server, and cmd/recycleworker.  One call
// is one attempt — retries, backoff, and fault attribution live in the
// callers — but faults are already contained: a panic or livelock
// comes back as an error, never takes the process down.
func Execute(ctx context.Context, spec Spec) (*store.Record, error) {
	insts := spec.Insts
	if insts == 0 {
		insts = 200_000
	}
	if spec.Sampling != nil {
		// Cell-level Workers is pinned to 1 so sampled estimates are
		// worker-count invariant (the cmd/experiments policy); the
		// sweep above already fans cells out.
		res, err := recyclesim.RunSampledContext(ctx, recyclesim.Options{
			Machine:   spec.Machine,
			Features:  spec.Features,
			Workloads: spec.Workloads,
			MaxInsts:  insts,
			Sampling: &recyclesim.Sampling{
				Workers:     1,
				Period:      spec.Sampling.Period,
				IntervalLen: spec.Sampling.IntervalLen,
				WarmupLen:   spec.Sampling.WarmupLen,
				Confidence:  spec.Sampling.Confidence,
			},
		})
		if err != nil {
			return nil, err
		}
		return &store.Record{Sampled: res}, nil
	}
	// Fresh telemetry per attempt, so a partially accumulated failed
	// attempt never leaks into the stored record.
	tel := &obs.Metrics{Hists: true}
	res, err := recyclesim.RunBatchContext(ctx, []recyclesim.Options{{
		Machine:   spec.Machine,
		Features:  spec.Features,
		Workloads: spec.Workloads,
		MaxInsts:  insts,
		MaxCycles: 40 * insts,
		Telemetry: tel,
	}}, recyclesim.BatchConfig{Workers: 1})
	if err != nil {
		return nil, err
	}
	return &store.Record{Stats: res[0], Metrics: tel}, nil
}
