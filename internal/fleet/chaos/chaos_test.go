package chaos

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"recyclesim"
	"recyclesim/internal/config"
	"recyclesim/internal/jobs"
)

const cellInsts = 2_000

func sweepCells() []jobs.CellSpec {
	feats := []config.Features{config.SMT, config.TME, config.REC, config.RECRSRU}
	cells := make([]jobs.CellSpec, len(feats))
	for i, f := range feats {
		cells[i] = jobs.CellSpec{
			Machine:   config.Big216(),
			Features:  f,
			Workloads: []string{"compress"},
			Insts:     cellInsts,
		}
	}
	return cells
}

// directStats runs the reference computation the service must match
// byte for byte.
func directStats(t *testing.T, cells []jobs.CellSpec) []string {
	t.Helper()
	opts := make([]recyclesim.Options, len(cells))
	for i, c := range cells {
		opts[i] = recyclesim.Options{
			Machine:   c.Machine,
			Features:  c.Features,
			Workloads: c.Workloads,
			MaxInsts:  c.Insts,
			MaxCycles: 40 * c.Insts,
		}
	}
	res, err := recyclesim.RunBatch(opts, 2)
	if err != nil {
		t.Fatalf("direct RunBatch: %v", err)
	}
	out := make([]string, len(res))
	for i := range res {
		b, _ := json.Marshal(res[i])
		out[i] = string(b)
	}
	return out
}

// runSweep submits the cells and blocks until every result streamed.
func runSweep(t *testing.T, h *Harness, cells []jobs.CellSpec) []jobs.CellResult {
	t.Helper()
	out := make([]jobs.CellResult, len(cells))
	st, err := h.Client.Run(context.Background(), jobs.JobRequest{Cells: cells}, func(r jobs.CellResult) error {
		out[r.Index] = r
		return nil
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if st.Failed != 0 {
		t.Fatalf("sweep finished with %d failed cells: %v", st.Failed, st.Errors)
	}
	return out
}

func assertStats(t *testing.T, res []jobs.CellResult, want []string, label string) {
	t.Helper()
	for i := range res {
		got, _ := json.Marshal(res[i].Stats)
		if string(got) != want[i] {
			t.Errorf("%s: cell %d stats differ from direct run:\n got %s\nwant %s", label, i, got, want[i])
		}
	}
}

func newHarness(t *testing.T, opts Options) *Harness {
	t.Helper()
	h, err := New(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

// TestWorkerKilledMidSweep is the headline chaos witness: one of two
// workers is hard-killed (network dropped, no graceful release) while
// it is computing a leased cell.  The sweep must still complete with
// zero failures, every distinct cell computed into the store exactly
// once, and every result byte-identical to a direct library run.
func TestWorkerKilledMidSweep(t *testing.T) {
	cells := sweepCells()
	want := directStats(t, cells)
	h := newHarness(t, Options{MaxRequeues: 100})
	a := h.StartWorker(1)
	h.StartWorker(1)
	if !h.WaitWorkers(2, 5*time.Second) {
		t.Fatal("workers never registered")
	}
	// Park a's compute at its gate so the kill deterministically lands
	// mid-compute (the cells themselves finish in microseconds).
	a.Stall()

	type sweepOut struct {
		res []jobs.CellResult
		st  *jobs.JobStatus
		err error
	}
	done := make(chan sweepOut, 1)
	go func() {
		out := make([]jobs.CellResult, len(cells))
		st, err := h.Client.Run(context.Background(), jobs.JobRequest{Cells: cells}, func(r jobs.CellResult) error {
			out[r.Index] = r
			return nil
		})
		done <- sweepOut{out, st, err}
	}()

	// Kill worker a the moment it starts computing a leased cell.
	select {
	case <-a.Started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker a never started a compute")
	}
	a.Kill()

	// The dead worker's lease only comes back via the reaper; drive it
	// with the fake clock until the sweep lands.
	var out sweepOut
	deadline := time.After(30 * time.Second)
	for {
		select {
		case out = <-done:
		case <-deadline:
			t.Fatal("sweep never completed after worker kill")
		case <-time.After(50 * time.Millisecond):
			h.Reap(11 * time.Second)
			continue
		}
		break
	}
	if out.err != nil {
		t.Fatalf("sweep: %v", out.err)
	}
	if out.st.Failed != 0 {
		t.Fatalf("sweep finished with failures: %v", out.st.Errors)
	}
	assertStats(t, out.res, want, "post-kill sweep")

	// Exactly-once at the store: one compute per distinct cell, no
	// matter how many leases the kill churned through.
	if c := h.Store.Counters(); c.Computes != uint64(len(cells)) {
		t.Errorf("store computes = %d, want %d (exactly once per distinct cell)", c.Computes, len(cells))
	}
	fc := h.Dispatcher.Counters()
	if fc.Requeues == 0 {
		t.Error("kill produced no requeues — fault was not exercised")
	}
	if fc.WorkersLost == 0 && fc.LeasesExpired == 0 {
		t.Errorf("dead worker never detected: %+v", fc)
	}
}

// TestStalledComputeRequeuedAndStaleDropped: a worker's compute hangs
// mid-cell.  Its lease expires, the cell requeues to the healthy
// worker, and when the stalled compute finally finishes, its
// completion is dropped as stale — never double-stored.
func TestStalledComputeRequeuedAndStaleDropped(t *testing.T) {
	cells := sweepCells()[:1]
	want := directStats(t, cells)
	h := newHarness(t, Options{MaxRequeues: 100})
	a := h.StartWorker(1)
	a.Stall()
	if !h.WaitWorkers(1, 5*time.Second) {
		t.Fatal("worker a never registered")
	}

	done := make(chan []jobs.CellResult, 1)
	go func() {
		out := make([]jobs.CellResult, len(cells))
		_, err := h.Client.Run(context.Background(), jobs.JobRequest{Cells: cells}, func(r jobs.CellResult) error {
			out[r.Index] = r
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- out
	}()
	select {
	case <-a.Started:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled worker never picked the cell up")
	}

	// A healthy worker joins; the stalled lease is reaped over to it.
	b := h.StartWorker(1)
	if !h.WaitWorkers(2, 5*time.Second) {
		t.Fatal("worker b never registered")
	}
	var res []jobs.CellResult
	deadline := time.After(30 * time.Second)
	for res == nil {
		select {
		case res = <-done:
		case <-deadline:
			t.Fatal("sweep never completed around the stalled worker")
		case <-time.After(50 * time.Millisecond):
			h.Reap(11 * time.Second)
		}
	}
	assertStats(t, res, want, "stall-requeued sweep")
	if b.Computes() != 1 {
		t.Errorf("healthy worker computes = %d, want 1", b.Computes())
	}

	// Release the zombie compute: its late completion must be dropped.
	a.Resume()
	stale := false
	for end := time.Now().Add(10 * time.Second); time.Now().Before(end); {
		if h.Dispatcher.Counters().StaleResults >= 1 {
			stale = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !stale {
		t.Error("stalled worker's late completion never dropped as stale")
	}
	if c := h.Store.Counters(); c.Computes != 1 {
		t.Errorf("store computes = %d, want 1 (stale result must not double-store)", c.Computes)
	}
}

// TestPartitionedWorkerRejoins: a partitioned worker is declared lost
// (sweeps degrade to local compute), and on healing it discovers it
// was disowned (410) and re-registers, serving cells again.
func TestPartitionedWorkerRejoins(t *testing.T) {
	cells := sweepCells()
	h := newHarness(t, Options{})
	a := h.StartWorker(2)
	if !h.WaitWorkers(1, 5*time.Second) {
		t.Fatal("worker never registered")
	}

	// Healthy: the worker serves the first cell.
	runSweep(t, h, cells[:1])
	if a.Computes() != 1 {
		t.Fatalf("worker computes = %d, want 1", a.Computes())
	}

	// Partition and reap: the daemon declares the worker lost.
	a.Partition(true)
	h.Reap(21 * time.Second)
	if got := h.Dispatcher.Counters(); got.Workers != 0 || got.WorkersLost != 1 {
		t.Fatalf("partitioned worker not declared lost: %+v", got)
	}

	// Degraded: with zero workers attached the sweep computes locally.
	runSweep(t, h, cells[1:2])
	if c := h.Dispatcher.Counters(); c.LocalFallbacks == 0 && c.LocalComputes == 0 {
		t.Fatalf("zero-worker sweep did not fall back locally: %+v", c)
	}
	if a.Computes() != 1 {
		t.Fatalf("partitioned worker computed a cell it cannot reach: %d", a.Computes())
	}

	// Heal: the worker hits 410 on its next poll and re-registers.
	a.Partition(false)
	if !h.WaitWorkers(1, 10*time.Second) {
		t.Fatal("healed worker never re-registered")
	}
	runSweep(t, h, cells[2:3])
	if a.Computes() != 2 {
		t.Errorf("healed worker computes = %d, want 2", a.Computes())
	}
	if c := h.Dispatcher.Counters(); c.Registers != 2 {
		t.Errorf("registers = %d, want 2 (initial + rejoin)", c.Registers)
	}
	if c := h.Store.Counters(); c.Computes != 3 {
		t.Errorf("store computes = %d, want 3", c.Computes)
	}
}

// TestByteIdenticalAcrossFleetSizes is the determinism witness the
// whole fleet design hangs on: the same sweep on 0, 1, and 2 workers
// produces results byte-identical to each other and to a direct
// library run.
func TestByteIdenticalAcrossFleetSizes(t *testing.T) {
	cells := sweepCells()
	want := directStats(t, cells)
	for _, workers := range []int{0, 1, 2} {
		h := newHarness(t, Options{})
		for i := 0; i < workers; i++ {
			h.StartWorker(1)
		}
		if !h.WaitWorkers(workers, 5*time.Second) {
			t.Fatalf("%d workers never registered", workers)
		}
		res := runSweep(t, h, cells)
		assertStats(t, res, want, "fleet size "+string(rune('0'+workers)))
		if c := h.Store.Counters(); c.Computes != uint64(len(cells)) {
			t.Errorf("fleet size %d: store computes = %d, want %d", workers, c.Computes, len(cells))
		}
		// Full payload identity (stats, metrics, key) across sizes is
		// implied by key identity + stats identity; double-check the
		// metrics too.
		for i := range res {
			if res[i].Metrics == nil {
				t.Errorf("fleet size %d: cell %d has no metrics", workers, i)
			}
		}
		h.Close()
	}
}

// TestNoGoroutineLeakUnderWorkerChurn mirrors the cancelled-streams
// leak witness: repeated worker connect / hard-kill / graceful-stop
// churn must leave the daemon's goroutine count where it started.
func TestNoGoroutineLeakUnderWorkerChurn(t *testing.T) {
	h := newHarness(t, Options{})
	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		a := h.StartWorker(2)
		b := h.StartWorker(1)
		if !h.WaitWorkers(2, 5*time.Second) {
			t.Fatal("churn workers never registered")
		}
		a.Kill() // silent death: daemon finds out via the reaper
		b.Stop() // graceful: releases and deregisters
		h.Reap(21 * time.Second)
		if !h.WaitWorkers(0, 5*time.Second) {
			t.Fatal("churned workers never drained")
		}
	}
	// Parked long-polls and keep-alive conns wind down asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d under worker churn", base, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
