// Package chaos is the deterministic fault-injection harness for the
// fleet's robustness witnesses: it boots a complete in-process service
// (job server + dispatcher + durable store on one httptest listener)
// and any number of in-process workers, each with its own kill switch,
// network partition valve, and compute stall gate — so tests can kill,
// stall, or partition workers mid-sweep on an exact schedule, advance
// a fake clock, and reap leases manually instead of waiting out
// wall-clock TTLs.
//
// The invariants the witnesses assert on top of this harness:
// sweeps complete no matter which workers die; each distinct cell is
// computed into the store exactly once (stale results from dead leases
// are dropped, never double-stored); results are byte-identical on 0,
// 1, or N workers; and worker churn leaks no goroutines.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"recyclesim/internal/fleet"
	"recyclesim/internal/jobs"
	"recyclesim/internal/store"
)

// Clock is a manually advanced time source shared by the dispatcher
// (lease deadlines, worker liveness) and the test schedule.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts at a fixed instant, so fault schedules are
// reproducible run to run.
func NewClock() *Clock { return &Clock{now: time.Unix(1_700_000_000, 0)} }

func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// ErrPartitioned is what a partitioned worker's requests fail with.
var ErrPartitioned = errors.New("chaos: network partitioned")

// network is a RoundTripper valve: while dropped, every request fails
// without reaching the daemon (a symmetric partition).
type network struct {
	base    http.RoundTripper
	dropped atomic.Bool
}

func (n *network) RoundTrip(req *http.Request) (*http.Response, error) {
	if n.dropped.Load() {
		return nil, ErrPartitioned
	}
	return n.base.RoundTrip(req)
}

// Options tunes the harness service.  Zero values pick defaults sized
// for fast tests (short TTLs; the fake clock makes them symbolic).
type Options struct {
	LeaseTTL         time.Duration // default 10s (fake-clock seconds)
	MaxLeaseLifetime time.Duration // default 40s
	ExpireAfter      time.Duration // default 20s
	MaxRequeues      int           // default 3
	Retries          int           // extra compute attempts per cell
	JobWorkers       int           // per-job cell parallelism (default 2)
	WorkerToken      string        // fleet API bearer token ("" = open)
	Auth             *jobs.AuthConfig
}

// Harness is one in-process service instance under test control.
type Harness struct {
	Clock      *Clock
	Dispatcher *fleet.Dispatcher
	Jobs       *jobs.Server
	Store      *store.Store
	Client     *jobs.Client
	URL        string

	opts Options
	ts   *httptest.Server

	mu      sync.Mutex
	workers []*WorkerHandle
	nworker int
}

// New boots the service over a store rooted at dir.
func New(dir string, opts Options) (*Harness, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.MaxLeaseLifetime <= 0 {
		opts.MaxLeaseLifetime = 4 * opts.LeaseTTL
	}
	if opts.ExpireAfter <= 0 {
		opts.ExpireAfter = 2 * opts.LeaseTTL
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 2
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	clk := NewClock()
	disp := fleet.NewDispatcher(fleet.Config{
		LeaseTTL:         opts.LeaseTTL,
		MaxLeaseLifetime: opts.MaxLeaseLifetime,
		ExpireAfter:      opts.ExpireAfter,
		MaxRequeues:      opts.MaxRequeues,
		Retries:          opts.Retries,
		Now:              clk.Now,
	})
	js := jobs.NewServer(context.Background(), st, jobs.Config{
		Workers: opts.JobWorkers,
		Retries: opts.Retries,
		Fleet:   disp,
		Auth:    opts.Auth,
	})
	mux := http.NewServeMux()
	js.Register(mux)
	disp.Register(mux, opts.WorkerToken)
	ts := httptest.NewServer(mux)
	return &Harness{
		Clock:      clk,
		Dispatcher: disp,
		Jobs:       js,
		Store:      st,
		Client:     jobs.NewClient(ts.URL),
		URL:        ts.URL,
		opts:       opts,
		ts:         ts,
	}, nil
}

// Close stops every worker gracefully and shuts the service down.
func (h *Harness) Close() {
	h.mu.Lock()
	workers := append([]*WorkerHandle(nil), h.workers...)
	h.mu.Unlock()
	for _, w := range workers {
		w.Stop()
	}
	h.ts.Close()
}

// Reap advances the fake clock and runs one reaper pass — the
// deterministic stand-in for waiting out lease TTLs.
func (h *Harness) Reap(advance time.Duration) int {
	h.Clock.Advance(advance)
	return h.Dispatcher.Reap()
}

// WaitWorkers blocks until exactly n workers are registered (or the
// timeout passes, returning false) — registration is asynchronous, so
// tests gate their submits on it.
func (h *Harness) WaitWorkers(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if int(h.Dispatcher.Counters().Workers) == n {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// WorkerHandle is one in-process worker under test control.
type WorkerHandle struct {
	Name string

	// Started receives each cell name as the worker's compute begins
	// (buffered, never blocking the compute), so tests can schedule a
	// fault exactly mid-compute.
	Started <-chan string

	h       *Harness
	net     *network
	tr      *http.Transport
	stalled atomic.Bool
	gateMu  sync.Mutex
	resume  chan struct{}
	cancel  context.CancelFunc
	done    chan struct{}
	worker  *fleet.Worker
}

// resumeGate snapshots the current stall-release channel.
func (w *WorkerHandle) resumeGate() <-chan struct{} {
	w.gateMu.Lock()
	defer w.gateMu.Unlock()
	return w.resume
}

// StartWorker boots one worker attached to the harness daemon.
func (h *Harness) StartWorker(parallel int) *WorkerHandle {
	h.mu.Lock()
	h.nworker++
	name := fmt.Sprintf("chaos-w%d", h.nworker)
	h.mu.Unlock()

	started := make(chan string, 64)
	// A private transport per worker, so tearing the worker down can
	// also drain its keep-alive connections (the leak witness counts
	// goroutines).
	tr := http.DefaultTransport.(*http.Transport).Clone()
	wh := &WorkerHandle{
		Name:    name,
		Started: started,
		h:       h,
		net:     &network{base: tr},
		tr:      tr,
		resume:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	wh.worker = fleet.NewWorker(fleet.WorkerConfig{
		BaseURL:  h.URL,
		Name:     name,
		Token:    h.opts.WorkerToken,
		Parallel: parallel,
		PollWait: 50 * time.Millisecond,
		HTTP:     &http.Client{Transport: wh.net},
		Compute: func(ctx context.Context, spec fleet.Spec) (*store.Record, error) {
			select {
			case started <- spec.Name():
			default:
			}
			if wh.stalled.Load() {
				// A stalled compute hangs until the worker dies or the
				// test resumes it — the hung-compute scenario the
				// MaxLeaseLifetime cap exists for.
				select {
				case <-wh.resumeGate():
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return fleet.Execute(ctx, spec)
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	wh.cancel = cancel
	go func() {
		_ = wh.worker.Run(ctx)
		close(wh.done)
	}()
	h.mu.Lock()
	h.workers = append(h.workers, wh)
	h.mu.Unlock()
	return wh
}

// Computes reports how many cells this worker finished.
func (w *WorkerHandle) Computes() uint64 { return w.worker.Computes() }

// Stall makes every subsequent compute hang until Resume (in-flight
// computes past the gate finish normally).
func (w *WorkerHandle) Stall() { w.stalled.Store(true) }

// Resume releases every stalled compute and clears the stall.
func (w *WorkerHandle) Resume() {
	w.stalled.Store(false)
	w.gateMu.Lock()
	close(w.resume)
	w.resume = make(chan struct{})
	w.gateMu.Unlock()
}

// Partition cuts (or heals) the worker's network: while cut, leases,
// heartbeats, and completions all fail to reach the daemon.
func (w *WorkerHandle) Partition(cut bool) { w.net.dropped.Store(cut) }

// Kill hard-kills the worker mid-whatever: the network drops first so
// the shutdown path cannot release leases or deregister — exactly what
// a SIGKILL or machine loss looks like to the daemon (silence).
func (w *WorkerHandle) Kill() {
	w.net.dropped.Store(true)
	w.cancel()
	<-w.done
	w.tr.CloseIdleConnections()
}

// Stop shuts the worker down gracefully: it releases held leases and
// deregisters, so its cells requeue without waiting for lease expiry.
func (w *WorkerHandle) Stop() {
	select {
	case <-w.done:
		return // already dead
	default:
	}
	w.cancel()
	<-w.done
	w.tr.CloseIdleConnections()
}
