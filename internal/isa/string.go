package isa

import "fmt"

var opNames = [NumOps]string{
	OpNop: "nop", OpHalt: "halt",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai", OpSlti: "slti", OpLi: "li",
	OpLd: "ld", OpSt: "st", OpFld: "fld", OpFst: "fst",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJ: "j", OpJal: "jal", OpJr: "jr",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv",
	OpFmov: "fmov", OpFneg: "fneg", OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpFlt: "flt", OpFeq: "feq",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName maps assembler mnemonics back to opcodes; used by the text
// assembler.  Unknown names return (0, false).
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return 0, false
}

// RegName returns the conventional assembler name of a logical register
// (r0..r31 for integer, f0..f31 for floating point, with ra/sp aliases
// spelled numerically).
func RegName(r Reg) string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", r-FPBase)
	}
	return fmt.Sprintf("r%d", r)
}

// String renders the instruction in assembler-like syntax.
func (i Inst) String() string {
	switch {
	case i.Op == OpNop || i.Op == OpHalt:
		return i.Op.String()
	case i.Op == OpLi:
		return fmt.Sprintf("%s %s, %d", i.Op, RegName(i.Rd), i.Imm)
	case i.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(i.Rd), i.Imm, RegName(i.Rs1))
	case i.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(i.Rs2), i.Imm, RegName(i.Rs1))
	case i.IsCondBranch():
		return fmt.Sprintf("%s %s, %s, 0x%x", i.Op, RegName(i.Rs1), RegName(i.Rs2), i.Target)
	case i.Op == OpJ:
		return fmt.Sprintf("j 0x%x", i.Target)
	case i.Op == OpJal:
		return fmt.Sprintf("jal %s, 0x%x", RegName(i.Rd), i.Target)
	case i.Op == OpJr:
		return fmt.Sprintf("jr %s", RegName(i.Rs1))
	case i.ReadsRs2():
		return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(i.Rd), RegName(i.Rs1), RegName(i.Rs2))
	case i.Op == OpFmov || i.Op == OpFneg || i.Op == OpCvtIF || i.Op == OpCvtFI:
		return fmt.Sprintf("%s %s, %s", i.Op, RegName(i.Rd), RegName(i.Rs1))
	default:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rd), RegName(i.Rs1), i.Imm)
	}
}
