package isa

import "math"

// Eval computes the result of a register-writing, non-memory
// instruction given its source operand values.  It is the single source
// of execution semantics shared by the golden emulator and the
// out-of-order core, which guarantees the two agree bit-for-bit.
//
// pc is the instruction's own PC (needed by OpJal).  Floating-point
// values travel as math.Float64bits images.  Division by zero yields
// zero (the hardware's trap path is out of scope and the workloads
// never divide by zero, but the simulator must not panic on wrong-path
// garbage operands).
func Eval(inst Inst, pc uint64, s1, s2 uint64) uint64 {
	switch inst.Op {
	case OpAdd:
		return s1 + s2
	case OpSub:
		return s1 - s2
	case OpMul:
		return uint64(int64(s1) * int64(s2))
	case OpDiv:
		if s2 == 0 {
			return 0
		}
		return uint64(int64(s1) / int64(s2))
	case OpRem:
		if s2 == 0 {
			return 0
		}
		return uint64(int64(s1) % int64(s2))
	case OpAnd:
		return s1 & s2
	case OpOr:
		return s1 | s2
	case OpXor:
		return s1 ^ s2
	case OpSll:
		return s1 << (s2 & 63)
	case OpSrl:
		return s1 >> (s2 & 63)
	case OpSra:
		return uint64(int64(s1) >> (s2 & 63))
	case OpSlt:
		if int64(s1) < int64(s2) {
			return 1
		}
		return 0
	case OpSltu:
		if s1 < s2 {
			return 1
		}
		return 0
	case OpAddi:
		return s1 + uint64(inst.Imm)
	case OpAndi:
		return s1 & uint64(inst.Imm)
	case OpOri:
		return s1 | uint64(inst.Imm)
	case OpXori:
		return s1 ^ uint64(inst.Imm)
	case OpSlli:
		return s1 << (uint64(inst.Imm) & 63)
	case OpSrli:
		return s1 >> (uint64(inst.Imm) & 63)
	case OpSrai:
		return uint64(int64(s1) >> (uint64(inst.Imm) & 63))
	case OpSlti:
		if int64(s1) < inst.Imm {
			return 1
		}
		return 0
	case OpLi:
		return uint64(inst.Imm)
	case OpJal:
		return pc + InstBytes
	case OpFadd:
		return f64(f(s1) + f(s2))
	case OpFsub:
		return f64(f(s1) - f(s2))
	case OpFmul:
		return f64(f(s1) * f(s2))
	case OpFdiv:
		//simlint:ignore floatcmp -- exact zero test is the ISA's defined divide-by-zero semantics
		if f(s2) == 0 {
			return 0
		}
		return f64(f(s1) / f(s2))
	case OpFmov:
		return s1
	case OpFneg:
		return f64(-f(s1))
	case OpCvtIF:
		return f64(float64(int64(s1)))
	case OpCvtFI:
		v := f(s1)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return uint64(int64(v))
	case OpFlt:
		if f(s1) < f(s2) {
			return 1
		}
		return 0
	case OpFeq:
		//simlint:ignore floatcmp -- OpFeq is defined as exact IEEE equality; emulator and core share it
		if f(s1) == f(s2) {
			return 1
		}
		return 0
	}
	return 0
}

func f(bits uint64) float64 { return math.Float64frombits(bits) }
func f64(v float64) uint64  { return math.Float64bits(v) }

// BranchTaken evaluates a conditional branch's direction from its
// source operand values.  Unconditional transfers are always taken.
func BranchTaken(inst Inst, s1, s2 uint64) bool {
	switch inst.Op {
	case OpBeq:
		return s1 == s2
	case OpBne:
		return s1 != s2
	case OpBlt:
		return int64(s1) < int64(s2)
	case OpBge:
		return int64(s1) >= int64(s2)
	case OpBltu:
		return s1 < s2
	case OpBgeu:
		return s1 >= s2
	case OpJ, OpJal, OpJr:
		return true
	}
	return false
}

// BranchTarget computes the taken-path target PC of a control transfer
// given the first source operand's value (used only by OpJr).
func BranchTarget(inst Inst, s1 uint64) uint64 {
	if inst.Op == OpJr {
		return s1
	}
	return inst.Target
}

// EffAddr computes the effective address of a memory instruction.
func EffAddr(inst Inst, s1 uint64) uint64 { return s1 + uint64(inst.Imm) }
