package isa

// Execution latencies in cycles, modelled on the DEC Alpha 21264 as the
// paper specifies ("Instruction latencies are based on the DEC Alpha
// 21264").  Load latency here is the execute-stage portion only; cache
// access time is added by the memory system.
var classLatency = [NumClasses]int{
	ClassNop:    1,
	ClassIntALU: 1,
	ClassIntMul: 7,
	ClassIntDiv: 20,
	ClassLoad:   1,
	ClassStore:  1,
	ClassBranch: 1,
	ClassFPAdd:  4,
	ClassFPMul:  4,
	ClassFPDiv:  16,
	ClassFPCvt:  4,
}

// Latency returns the execution latency of the instruction in cycles,
// excluding any memory-hierarchy time for loads.
func (i Inst) Latency() int { return classLatency[i.Class()] }

// Pipelined reports whether the instruction's functional unit accepts a
// new operation every cycle.  Divides iterate and occupy their unit.
func (i Inst) Pipelined() bool {
	c := i.Class()
	return c != ClassIntDiv && c != ClassFPDiv
}
