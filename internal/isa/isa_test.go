package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpClassCoverage(t *testing.T) {
	for op := 0; op < NumOps; op++ {
		in := Inst{Op: Op(op)}
		if Op(op) != OpNop && Op(op) != OpHalt && in.Class() == ClassNop {
			t.Errorf("op %v has no functional-unit class", Op(op))
		}
		if in.Latency() <= 0 {
			t.Errorf("op %v has non-positive latency", Op(op))
		}
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		in                            Inst
		branch, cond, load, store, wr bool
	}{
		{Inst{Op: OpAdd, Rd: 1}, false, false, false, false, true},
		{Inst{Op: OpBeq}, true, true, false, false, false},
		{Inst{Op: OpJ}, true, false, false, false, false},
		{Inst{Op: OpJal, Rd: RegRA}, true, false, false, false, true},
		{Inst{Op: OpJr, Rs1: RegRA}, true, false, false, false, false},
		{Inst{Op: OpLd, Rd: 2}, false, false, true, false, true},
		{Inst{Op: OpSt}, false, false, false, true, false},
		{Inst{Op: OpFld, Rd: FPBase + 1}, false, false, true, false, true},
		{Inst{Op: OpFst}, false, false, false, true, false},
		{Inst{Op: OpHalt}, false, false, false, false, false},
		{Inst{Op: OpAdd, Rd: RegZero}, false, false, false, false, false},
	}
	for _, c := range cases {
		if c.in.IsBranch() != c.branch {
			t.Errorf("%v IsBranch=%v want %v", c.in, c.in.IsBranch(), c.branch)
		}
		if c.in.IsCondBranch() != c.cond {
			t.Errorf("%v IsCondBranch=%v want %v", c.in, c.in.IsCondBranch(), c.cond)
		}
		if c.in.IsLoad() != c.load {
			t.Errorf("%v IsLoad=%v want %v", c.in, c.in.IsLoad(), c.load)
		}
		if c.in.IsStore() != c.store {
			t.Errorf("%v IsStore=%v want %v", c.in, c.in.IsStore(), c.store)
		}
		if c.in.WritesReg() != c.wr {
			t.Errorf("%v WritesReg=%v want %v", c.in, c.in.WritesReg(), c.wr)
		}
	}
}

func TestReturnDetection(t *testing.T) {
	if !(Inst{Op: OpJr, Rs1: RegRA}).IsReturn() {
		t.Error("jr ra should be a return")
	}
	if (Inst{Op: OpJr, Rs1: 5}).IsReturn() {
		t.Error("jr r5 should not be a return")
	}
	if !(Inst{Op: OpJal}).IsCall() {
		t.Error("jal should be a call")
	}
}

func TestEvalALU(t *testing.T) {
	cases := []struct {
		in     Inst
		s1, s2 uint64
		want   uint64
	}{
		{Inst{Op: OpAdd}, 3, 4, 7},
		{Inst{Op: OpSub}, 3, 4, ^uint64(0)},
		{Inst{Op: OpMul}, 6, 7, 42},
		{Inst{Op: OpDiv}, 42, 6, 7},
		{Inst{Op: OpDiv}, 42, 0, 0},
		{Inst{Op: OpRem}, 43, 6, 1},
		{Inst{Op: OpRem}, 43, 0, 0},
		{Inst{Op: OpAnd}, 0b1100, 0b1010, 0b1000},
		{Inst{Op: OpOr}, 0b1100, 0b1010, 0b1110},
		{Inst{Op: OpXor}, 0b1100, 0b1010, 0b0110},
		{Inst{Op: OpSll}, 1, 4, 16},
		{Inst{Op: OpSrl}, 16, 4, 1},
		{Inst{Op: OpSra}, uint64(0xFFFFFFFFFFFFFFF0), 4, 0xFFFFFFFFFFFFFFFF},
		{Inst{Op: OpSlt}, uint64(0xFFFFFFFFFFFFFFFF), 0, 1}, // -1 < 0 signed
		{Inst{Op: OpSltu}, uint64(0xFFFFFFFFFFFFFFFF), 0, 0},
		{Inst{Op: OpAddi, Imm: -1}, 5, 0, 4},
		{Inst{Op: OpSlti, Imm: 10}, 5, 0, 1},
		{Inst{Op: OpLi, Imm: -7}, 0, 0, uint64(0xFFFFFFFFFFFFFFF9)},
	}
	for _, c := range cases {
		if got := Eval(c.in, 0x1000, c.s1, c.s2); got != c.want {
			t.Errorf("Eval(%v, s1=%d, s2=%d) = %d, want %d", c.in, c.s1, c.s2, got, c.want)
		}
	}
}

func TestEvalJalLink(t *testing.T) {
	if got := Eval(Inst{Op: OpJal, Rd: RegRA}, 0x1234, 0, 0); got != 0x1234+InstBytes {
		t.Errorf("jal link = 0x%x", got)
	}
}

func TestEvalFP(t *testing.T) {
	f := math.Float64bits
	if got := Eval(Inst{Op: OpFadd}, 0, f(1.5), f(2.25)); got != f(3.75) {
		t.Errorf("fadd: %v", math.Float64frombits(got))
	}
	if got := Eval(Inst{Op: OpFmul}, 0, f(3), f(4)); got != f(12) {
		t.Errorf("fmul: %v", math.Float64frombits(got))
	}
	if got := Eval(Inst{Op: OpFdiv}, 0, f(1), f(0)); got != 0 {
		t.Errorf("fdiv by zero should be 0, got %v", got)
	}
	if got := Eval(Inst{Op: OpCvtIF}, 0, uint64(7), 0); got != f(7) {
		t.Errorf("cvtif: %v", math.Float64frombits(got))
	}
	if got := Eval(Inst{Op: OpCvtFI}, 0, f(7.9), 0); got != 7 {
		t.Errorf("cvtfi: %v", got)
	}
	if got := Eval(Inst{Op: OpCvtFI}, 0, f(math.Inf(1)), 0); got != 0 {
		t.Errorf("cvtfi(+inf) should be 0, got %v", got)
	}
	if got := Eval(Inst{Op: OpFlt}, 0, f(1), f(2)); got != 1 {
		t.Errorf("flt(1,2) = %v", got)
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op     Op
		s1, s2 uint64
		want   bool
	}{
		{OpBeq, 5, 5, true},
		{OpBeq, 5, 6, false},
		{OpBne, 5, 6, true},
		{OpBlt, uint64(0xFFFFFFFFFFFFFFFF), 0, true}, // -1 < 0
		{OpBge, 0, uint64(0xFFFFFFFFFFFFFFFF), true}, // 0 >= -1
		{OpBltu, 0, 1, true},
		{OpBgeu, 0, 1, false},
		{OpJ, 0, 0, true},
		{OpJr, 0, 0, true},
	}
	for _, c := range cases {
		if got := BranchTaken(Inst{Op: c.op}, c.s1, c.s2); got != c.want {
			t.Errorf("BranchTaken(%v, %d, %d) = %v, want %v", c.op, c.s1, c.s2, got, c.want)
		}
	}
}

func TestBranchTarget(t *testing.T) {
	if got := BranchTarget(Inst{Op: OpJr}, 0x4242); got != 0x4242 {
		t.Errorf("jr target %x", got)
	}
	if got := BranchTarget(Inst{Op: OpBeq, Target: 0x2000}, 0x4242); got != 0x2000 {
		t.Errorf("beq target %x", got)
	}
}

// Property: Eval never panics and is a pure function of its inputs.
func TestEvalPure(t *testing.T) {
	fn := func(op uint8, s1, s2, pc uint64, imm int64) bool {
		in := Inst{Op: Op(op % uint8(NumOps)), Imm: imm}
		a := Eval(in, pc, s1, s2)
		b := Eval(in, pc, s1, s2)
		return a == b
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: algebraic identities of the integer ALU.
func TestEvalIdentities(t *testing.T) {
	add := func(a, b uint64) bool {
		return Eval(Inst{Op: OpAdd}, 0, a, b) == Eval(Inst{Op: OpAdd}, 0, b, a)
	}
	if err := quick.Check(add, nil); err != nil {
		t.Error("add not commutative:", err)
	}
	xorSelf := func(a uint64) bool { return Eval(Inst{Op: OpXor}, 0, a, a) == 0 }
	if err := quick.Check(xorSelf, nil); err != nil {
		t.Error("xor self not zero:", err)
	}
	subAdd := func(a, b uint64) bool {
		d := Eval(Inst{Op: OpSub}, 0, a, b)
		return Eval(Inst{Op: OpAdd}, 0, d, b) == a
	}
	if err := quick.Check(subAdd, nil); err != nil {
		t.Error("sub/add not inverse:", err)
	}
	sltAntisym := func(a, b uint64) bool {
		if a == b {
			return true
		}
		lt := Eval(Inst{Op: OpSlt}, 0, a, b)
		gt := Eval(Inst{Op: OpSlt}, 0, b, a)
		return lt != gt
	}
	if err := quick.Check(sltAntisym, nil); err != nil {
		t.Error("slt not antisymmetric:", err)
	}
}

func TestSrcRegs(t *testing.T) {
	srcs, n := (Inst{Op: OpAdd, Rs1: 1, Rs2: 2}).SrcRegs()
	if n != 2 || srcs[0] != 1 || srcs[1] != 2 {
		t.Errorf("add srcs = %v[%d]", srcs, n)
	}
	_, n = (Inst{Op: OpAdd, Rs1: 3, Rs2: 3}).SrcRegs()
	if n != 1 {
		t.Errorf("duplicate source should dedup, n=%d", n)
	}
	_, n = (Inst{Op: OpAdd, Rs1: RegZero, Rs2: RegZero}).SrcRegs()
	if n != 0 {
		t.Errorf("zero-register sources should be omitted, n=%d", n)
	}
	_, n = (Inst{Op: OpLi, Rs1: 7}).SrcRegs()
	if n != 0 {
		t.Errorf("li has no sources, n=%d", n)
	}
	_, n = (Inst{Op: OpLd, Rs1: 4}).SrcRegs()
	if n != 1 {
		t.Errorf("ld has one source, n=%d", n)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for op := 0; op < NumOps; op++ {
		name := Op(op).String()
		got, ok := OpByName(name)
		if !ok || got != Op(op) {
			t.Errorf("OpByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("bogus mnemonic resolved")
	}
}

func TestRegName(t *testing.T) {
	if RegName(3) != "r3" {
		t.Errorf("RegName(3) = %s", RegName(3))
	}
	if RegName(FPBase+2) != "f2" {
		t.Errorf("RegName(f2) = %s", RegName(FPBase+2))
	}
}
