// Package isa defines the simulated 64-bit RISC instruction set used by
// the recycling simulator: opcodes, register conventions, operand
// encodings, execution semantics, and functional-unit latencies.
//
// The ISA is deliberately small but complete enough to express the
// SPEC95-like synthetic workloads: integer ALU ops, multiply/divide,
// loads and stores, conditional branches, jumps and calls, and a
// floating-point subset.  Instructions occupy 4 bytes of address space
// so that a 64-byte cache line holds 16 instructions, matching the
// fetch-block geometry of the paper's machine.
package isa

// InstBytes is the architectural size of one instruction in bytes.
// PCs advance by InstBytes; cache lines are 64 bytes = 16 instructions.
const InstBytes = 4

// Register-file geometry.  Logical registers 0..31 are integer
// registers (register 0 is hardwired to zero); 32..63 are floating
// point.  A single 64-entry logical space keeps the rename map simple
// while the physical register file still maintains separate integer
// and floating-point pools, as in the paper.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// RegZero always reads as zero and ignores writes.
	RegZero = 0
	// RegRA is the conventional link (return address) register.
	RegRA = 31
	// RegSP is the conventional stack pointer.
	RegSP = 30
	// FPBase is the first floating-point logical register number.
	FPBase = NumIntRegs
)

// Reg identifies a logical register (0..NumRegs-1).
type Reg uint8

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= FPBase }

// Op enumerates the operations of the ISA.
type Op uint8

// Opcodes.  Three-register ALU forms read Rs1 and Rs2 and write Rd.
// Immediate forms read Rs1 and Imm.  Branches compare Rs1 against Rs2
// and transfer to Target.  Loads/stores compute Rs1+Imm.
const (
	OpNop Op = iota
	OpHalt

	// Integer ALU, register forms.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt  // set if less than (signed)
	OpSltu // set if less than (unsigned)

	// Integer ALU, immediate forms.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLi // rd = imm (64-bit immediate materialization)

	// Memory.
	OpLd  // rd = mem[rs1+imm]
	OpSt  // mem[rs1+imm] = rs2
	OpFld // frd = mem[rs1+imm]
	OpFst // mem[rs1+imm] = frs2

	// Control.
	OpBeq
	OpBne
	OpBlt // signed
	OpBge // signed
	OpBltu
	OpBgeu
	OpJ   // unconditional jump to Target
	OpJal // rd = pc+4; jump to Target
	OpJr  // jump to rs1 (indirect; returns when rs1 == RegRA)

	// Floating point.  FP registers are addressed with Reg >= FPBase.
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFmov
	OpFneg
	OpCvtIF // frd = float64(int64(rs1))
	OpCvtFI // rd = int64(float64(frs1))
	OpFlt   // rd(int) = frs1 < frs2
	OpFeq   // rd(int) = frs1 == frs2

	numOps
)

// NumOps is the count of defined opcodes (useful for table sizing).
const NumOps = int(numOps)

// Inst is a decoded instruction.  The simulator stores instructions in
// decoded form everywhere (fetch buffers, active lists, recycle paths),
// mirroring the paper's observation that the active list keeps "the
// decoded opcode and physical and logical register operands".
type Inst struct {
	Op     Op
	Rd     Reg    // destination (ignored if !WritesReg)
	Rs1    Reg    // first source
	Rs2    Reg    // second source (also store data register)
	Imm    int64  // immediate / displacement
	Target uint64 // absolute branch/jump target PC
}

// Class groups opcodes by the functional unit that executes them.
type Class uint8

// Functional-unit classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassFPCvt
	NumClasses
)

var opClass = [NumOps]Class{
	OpNop: ClassNop, OpHalt: ClassNop,
	OpAdd: ClassIntALU, OpSub: ClassIntALU, OpMul: ClassIntMul,
	OpDiv: ClassIntDiv, OpRem: ClassIntDiv,
	OpAnd: ClassIntALU, OpOr: ClassIntALU, OpXor: ClassIntALU,
	OpSll: ClassIntALU, OpSrl: ClassIntALU, OpSra: ClassIntALU,
	OpSlt: ClassIntALU, OpSltu: ClassIntALU,
	OpAddi: ClassIntALU, OpAndi: ClassIntALU, OpOri: ClassIntALU,
	OpXori: ClassIntALU, OpSlli: ClassIntALU, OpSrli: ClassIntALU,
	OpSrai: ClassIntALU, OpSlti: ClassIntALU, OpLi: ClassIntALU,
	OpLd: ClassLoad, OpSt: ClassStore, OpFld: ClassLoad, OpFst: ClassStore,
	OpBeq: ClassBranch, OpBne: ClassBranch, OpBlt: ClassBranch,
	OpBge: ClassBranch, OpBltu: ClassBranch, OpBgeu: ClassBranch,
	OpJ: ClassBranch, OpJal: ClassBranch, OpJr: ClassBranch,
	OpFadd: ClassFPAdd, OpFsub: ClassFPAdd, OpFmul: ClassFPMul,
	OpFdiv: ClassFPDiv, OpFmov: ClassFPAdd, OpFneg: ClassFPAdd,
	OpCvtIF: ClassFPCvt, OpCvtFI: ClassFPCvt,
	OpFlt: ClassFPAdd, OpFeq: ClassFPAdd,
}

// Class returns the functional-unit class of the instruction.
func (i Inst) Class() Class { return opClass[i.Op] }

// IsBranch reports whether the instruction is any control transfer.
func (i Inst) IsBranch() bool { return i.Class() == ClassBranch }

// IsCondBranch reports whether the instruction is a conditional branch
// (the only kind TME forks on).
func (i Inst) IsCondBranch() bool {
	switch i.Op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}

// IsIndirect reports whether the control transfer target comes from a
// register rather than the instruction encoding.
func (i Inst) IsIndirect() bool { return i.Op == OpJr }

// IsCall reports whether the instruction is a call (pushes the return
// address predictor stack).
func (i Inst) IsCall() bool { return i.Op == OpJal }

// IsReturn reports whether the instruction is a conventional return.
func (i Inst) IsReturn() bool { return i.Op == OpJr && i.Rs1 == RegRA }

// IsLoad reports whether the instruction reads memory.
func (i Inst) IsLoad() bool { return i.Op == OpLd || i.Op == OpFld }

// IsStore reports whether the instruction writes memory.
func (i Inst) IsStore() bool { return i.Op == OpSt || i.Op == OpFst }

// IsMem reports whether the instruction accesses memory.
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// IsHalt reports whether the instruction terminates the program.
func (i Inst) IsHalt() bool { return i.Op == OpHalt }

// WritesReg reports whether the instruction produces a register result.
// Writes to the hardwired zero register are discarded but still rename
// (they allocate and immediately deadlock nothing; the assembler never
// emits them, and the core treats Rd==RegZero as no destination).
func (i Inst) WritesReg() bool {
	switch i.Op {
	case OpNop, OpHalt, OpSt, OpFst, OpBeq, OpBne, OpBlt, OpBge,
		OpBltu, OpBgeu, OpJ, OpJr:
		return false
	case OpJal:
		return i.Rd != RegZero
	}
	return i.Rd != RegZero
}

// SrcRegs returns the logical source registers read by the instruction.
// A register appears at most once even if read twice; RegZero is
// omitted (it is constant).  The two-element return keeps this
// allocation free; n is the number of valid entries.
func (i Inst) SrcRegs() (srcs [2]Reg, n int) {
	add := func(r Reg) {
		if r == RegZero {
			return
		}
		for k := 0; k < n; k++ {
			if srcs[k] == r {
				return
			}
		}
		srcs[n] = r
		n++
	}
	switch i.Op {
	case OpNop, OpHalt, OpLi, OpJ, OpJal:
		return
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai,
		OpSlti, OpLd, OpFld, OpJr, OpFmov, OpFneg, OpCvtIF, OpCvtFI:
		add(i.Rs1)
		return
	default:
		add(i.Rs1)
		add(i.Rs2)
		return
	}
}

// ReadsRs2 reports whether Rs2 is a live source operand.
func (i Inst) ReadsRs2() bool {
	switch i.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpSt, OpFst,
		OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu,
		OpFadd, OpFsub, OpFmul, OpFdiv, OpFlt, OpFeq:
		return true
	}
	return false
}
