// Package wheel implements the core's completion event wheel: a
// cycle-indexed calendar of in-flight executions keyed by the cycle
// their result becomes available.  Popping a cycle's completions costs
// time proportional to the number of completions due that cycle, not to
// the number of instructions in flight (the previous design scanned the
// whole in-flight list every cycle).
//
// Deletion is lazy: a squash does not search the wheel.  Stale items
// (entries squashed, re-renamed, or already completed since they were
// scheduled) are filtered by the owner's revalidation callback when
// their slot drains.  See the "exec/pending-store liveness" discussion
// in internal/core/invariant.go for why this is sound.
package wheel

import "recyclesim/internal/alist"

// Item is one scheduled completion: the entry and the cycle its slot
// drains.  Due is the scheduling cycle, not necessarily the entry's
// ReadyAt (scheduling clamps to at least the cycle after insertion).
type Item struct {
	E   *alist.Entry
	Due uint64
}

// Wheel is the calendar.  Slots cover the next `horizon` cycles;
// anything scheduled further out (which cannot happen with the
// simulator's bounded latencies, but is handled for robustness) goes to
// the far list and is re-examined as its cycle arrives.
type Wheel struct {
	slots [][]Item
	mask  uint64
	far   []Item
	count int // scheduled, not yet drained (stale items included)
}

// New returns a wheel whose slot ring covers at least `horizon` future
// cycles (rounded up to a power of two).
func New(horizon int) *Wheel {
	n := 1
	for n < horizon {
		n <<= 1
	}
	return &Wheel{slots: make([][]Item, n), mask: uint64(n - 1)}
}

// Horizon returns the slot-ring span in cycles.
func (w *Wheel) Horizon() int { return len(w.slots) }

// Len returns the number of scheduled, undrained items (stale entries
// awaiting lazy deletion included).
func (w *Wheel) Len() int { return w.count }

// Schedule files entry e to pop at cycle max(due, now+1).  Completion
// stages run before issue in a cycle, so nothing scheduled at cycle
// `now` could drain before `now+1` anyway; the clamp makes that
// explicit and keeps every filed item in the future.
func (w *Wheel) Schedule(e *alist.Entry, due, now uint64) {
	if due <= now {
		due = now + 1
	}
	w.count++
	if due-now >= uint64(len(w.slots)) {
		w.far = append(w.far, Item{E: e, Due: due})
		return
	}
	w.slots[due&w.mask] = append(w.slots[due&w.mask], Item{E: e, Due: due})
}

// PopDue drains every item due at cycle `now` into visit.  Items in the
// slot belonging to a later lap of the ring are retained; far items
// whose cycle has come are drained too.  Visit order within a cycle is
// insertion order and is NOT a determinism boundary: the core sorts the
// drained batch by (ctx, seq) before acting on it.
func (w *Wheel) PopDue(now uint64, visit func(Item)) {
	slot := w.slots[now&w.mask]
	keep := slot[:0]
	for _, it := range slot {
		if it.Due == now {
			w.count--
			visit(it)
		} else {
			keep = append(keep, it)
		}
	}
	for i := len(keep); i < len(slot); i++ {
		slot[i] = Item{}
	}
	w.slots[now&w.mask] = keep

	if len(w.far) == 0 {
		return
	}
	far := w.far[:0]
	for _, it := range w.far {
		switch {
		case it.Due == now:
			w.count--
			visit(it)
		case it.Due-now < uint64(len(w.slots)):
			// Close enough to file on the ring now.
			w.slots[it.Due&w.mask] = append(w.slots[it.Due&w.mask], it)
		default:
			far = append(far, it)
		}
	}
	for i := len(far); i < len(w.far); i++ {
		w.far[i] = Item{}
	}
	w.far = far
}

// Each visits every scheduled item (stale ones included); the runtime
// invariant checker uses it to audit wheel membership.
func (w *Wheel) Each(visit func(Item)) {
	for _, slot := range w.slots {
		for _, it := range slot {
			visit(it)
		}
	}
	for _, it := range w.far {
		visit(it)
	}
}

// Reset empties the wheel.
func (w *Wheel) Reset() {
	for i := range w.slots {
		for j := range w.slots[i] {
			w.slots[i][j] = Item{}
		}
		w.slots[i] = w.slots[i][:0]
	}
	w.far = w.far[:0]
	w.count = 0
}
