package wheel

import (
	"testing"

	"recyclesim/internal/alist"
)

func drain(w *Wheel, now uint64) []*alist.Entry {
	var out []*alist.Entry
	w.PopDue(now, func(it Item) { out = append(out, it.E) })
	return out
}

func TestScheduleAndPop(t *testing.T) {
	w := New(8)
	if w.Horizon() != 8 {
		t.Fatalf("horizon = %d, want 8", w.Horizon())
	}
	a, b, c := &alist.Entry{Seq: 1}, &alist.Entry{Seq: 2}, &alist.Entry{Seq: 3}
	w.Schedule(a, 5, 0)
	w.Schedule(b, 5, 0)
	w.Schedule(c, 6, 0)
	if w.Len() != 3 {
		t.Fatalf("len = %d, want 3", w.Len())
	}
	if got := drain(w, 4); len(got) != 0 {
		t.Fatalf("cycle 4 drained %d items", len(got))
	}
	got := drain(w, 5)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("cycle 5 drained %v", got)
	}
	if got := drain(w, 6); len(got) != 1 || got[0] != c {
		t.Fatalf("cycle 6 drained %v", got)
	}
	if w.Len() != 0 {
		t.Fatalf("len = %d after draining", w.Len())
	}
}

func TestPastDueClampsToNextCycle(t *testing.T) {
	w := New(8)
	e := &alist.Entry{}
	w.Schedule(e, 10, 20) // due in the past: completes next cycle
	if got := drain(w, 21); len(got) != 1 || got[0] != e {
		t.Fatalf("clamped item not drained at now+1: %v", got)
	}
}

func TestLapCollision(t *testing.T) {
	// Two items in the same slot, one ring-lap apart: only the due one
	// drains, the other is retained for its own cycle.
	w := New(8)
	near, farr := &alist.Entry{Seq: 1}, &alist.Entry{Seq: 2}
	w.Schedule(near, 9, 8)
	w.Schedule(farr, 17, 16) // 17 & 7 == 9 & 7
	if got := drain(w, 9); len(got) != 1 || got[0] != near {
		t.Fatalf("cycle 9 drained %v", got)
	}
	if got := drain(w, 17); len(got) != 1 || got[0] != farr {
		t.Fatalf("cycle 17 drained %v", got)
	}
}

func TestFarSchedule(t *testing.T) {
	w := New(8)
	e := &alist.Entry{}
	w.Schedule(e, 100, 0) // beyond the horizon
	for now := uint64(1); now < 100; now++ {
		if got := drain(w, now); len(got) != 0 {
			t.Fatalf("cycle %d drained %d items early", now, len(got))
		}
	}
	if got := drain(w, 100); len(got) != 1 || got[0] != e {
		t.Fatalf("far item not drained at 100: %v", got)
	}
}

func TestEachAndReset(t *testing.T) {
	w := New(8)
	w.Schedule(&alist.Entry{}, 3, 0)
	w.Schedule(&alist.Entry{}, 100, 0)
	n := 0
	w.Each(func(Item) { n++ })
	if n != 2 {
		t.Fatalf("Each visited %d, want 2", n)
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("len = %d after reset", w.Len())
	}
	n = 0
	w.Each(func(Item) { n++ })
	if n != 0 {
		t.Fatalf("Each visited %d after reset", n)
	}
}

func TestSteadyStateNoAlloc(t *testing.T) {
	w := New(64)
	ents := make([]*alist.Entry, 16)
	for i := range ents {
		ents[i] = &alist.Entry{Seq: uint64(i)}
	}
	// Warm the slot capacity.
	now := uint64(0)
	cycleOnce := func() {
		for i, e := range ents {
			w.Schedule(e, now+uint64(1+i%7), now)
		}
		for d := uint64(1); d <= 8; d++ {
			w.PopDue(now+d, func(Item) {})
		}
		now += 8
	}
	cycleOnce()
	avg := testing.AllocsPerRun(100, cycleOnce)
	if avg > 0 {
		t.Errorf("steady-state allocs per wheel cycle = %v, want 0", avg)
	}
}
