package sample

import (
	"errors"
	"fmt"
	"io"

	"recyclesim/internal/config"
	"recyclesim/internal/core"
	"recyclesim/internal/emu"
	"recyclesim/internal/program"
	"recyclesim/internal/stats"
	"recyclesim/internal/sweep"
)

// Config tunes the sampling schedule.  The schedule is systematic and
// seedless, hence deterministic: with period P, interval length L, and
// detailed warmup W, interval k covers instructions [k*P, (k+1)*P) —
// functional fast-forward with warmup over the first P-W-L, W detailed
// detached-warmup instructions, and the final L instructions measured.
// Measuring the tail of each period maximizes the functional +
// detailed warmup behind every measurement.
type Config struct {
	Period      uint64 // P: sampling period in instructions (default 20_000)
	IntervalLen uint64 // L: measured instructions per interval (default 1_000)
	WarmupLen   uint64 // W: detailed detached-warmup instructions (default 1_000)

	// Confidence selects the Student-t level for the IPC interval:
	// 0.90, 0.95 (default, also chosen for 0), or 0.99.
	Confidence float64

	// Workers bounds interval-simulation parallelism (<= 0 selects
	// GOMAXPROCS).  Intervals are fully independent — each owns its
	// checkpoint and a private clone of the warmed models — so results
	// are byte-identical for every worker count.
	Workers int

	// Poll, when non-nil, is the cooperative-cancellation hook: it is
	// consulted between periods of the checkpoint pass and threaded
	// into each interval's detailed core (core.SetPoll).  A non-nil
	// return abandons the run with that error.
	Poll func() error
}

// seedChunk bounds how many interval seeds (architectural checkpoint +
// warmed-model clone) exist at once; see the chunked loop in Run.
const seedChunk = 64

func (cfg Config) withDefaults() Config {
	if cfg.Period == 0 {
		cfg.Period = 20_000
	}
	if cfg.IntervalLen == 0 {
		cfg.IntervalLen = 1_000
	}
	if cfg.WarmupLen == 0 {
		cfg.WarmupLen = 1_000
	}
	//simlint:ignore floatcmp -- exact zero means "unset", selects the default
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.95
	}
	return cfg
}

// Interval is one detailed measurement interval's result.
type Interval struct {
	Index     int
	StartInst uint64    // retired count where measurement began
	Insts     uint64    // instructions committed in the measured region
	Cycles    uint64    // cycles spent in the measured region
	CPI       float64   // Cycles / Insts
	Stats     stats.Sim // measured-region counter deltas (per-interval attribution)
}

// Result is a sampled run's estimate.
type Result struct {
	Program     string
	Machine     string
	Features    string
	Period      uint64
	IntervalLen uint64
	WarmupLen   uint64
	Confidence  float64

	Intervals []Interval

	// Measured sums the per-interval counter deltas, so the recycling
	// and branch statistics of the measured regions remain available
	// (feeding, e.g., Table 1 style decompositions of sampled runs).
	Measured stats.Sim

	MeanCPI float64 // mean of per-interval CPI samples
	CPIHalf float64 // Student-t half-width around MeanCPI

	IPC   float64 // 1 / MeanCPI
	IPCLo float64 // 1 / (MeanCPI + CPIHalf)
	IPCHi float64 // 1 / (MeanCPI - CPIHalf); 0 when the interval reaches 0 CPI

	TotalInsts    uint64 // instructions covered by the schedule (intervals * period)
	DetailedInsts uint64 // instructions simulated in detail (incl. detached warmup)
	MeasuredInsts uint64 // instructions inside measured regions
}

// RelErrPct returns the half-width of the IPC confidence interval as a
// percentage of the estimate (0 for a degenerate estimate).
func (r *Result) RelErrPct() float64 {
	if !(r.MeanCPI > 0) {
		return 0
	}
	return 100 * r.CPIHalf / r.MeanCPI
}

// WriteText renders the sampled estimate deterministically; the
// determinism witness tests compare these bytes across runs and worker
// counts.
func (r *Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "sampled    %s %s %s: period=%d interval=%d warmup=%d intervals=%d\n",
		r.Program, r.Machine, r.Features, r.Period, r.IntervalLen, r.WarmupLen, len(r.Intervals)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "IPC        %.4f  CI%.0f%% [%.4f, %.4f]  (CPI %.4f ± %.4f, ±%.2f%%)\n",
		r.IPC, 100*r.Confidence, r.IPCLo, r.IPCHi, r.MeanCPI, r.CPIHalf, r.RelErrPct()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "coverage   measured %d of %d insts (detailed %d); %d cycles in measured regions\n",
		r.MeasuredInsts, r.TotalInsts, r.DetailedInsts, r.Measured.Cycles)
	return err
}

// Run estimates the IPC of one program on the given machine and
// feature set over the first maxInsts instructions, using sampled
// simulation.  The run is deterministic: the same inputs produce
// byte-identical Results for every worker count.
func Run(mach config.Machine, feat config.Features, prog *program.Program, maxInsts uint64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.IntervalLen+cfg.WarmupLen > cfg.Period {
		return nil, fmt.Errorf("sample: interval %d + warmup %d exceed period %d",
			cfg.IntervalLen, cfg.WarmupLen, cfg.Period)
	}
	if maxInsts < cfg.Period {
		return nil, fmt.Errorf("sample: budget %d smaller than one period %d; use a full detailed run",
			maxInsts, cfg.Period)
	}
	if err := mach.Validate(); err != nil {
		return nil, err
	}
	if err := feat.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}

	// Checkpoint pass: one functional sweep over the run with
	// *continuous* warming — a single master Warmup observes every
	// instruction, so at each measurement point the models carry the
	// state they would have accumulated since program start (SMARTS
	// functional warming).  At each measurement start the pass captures
	// an architectural checkpoint plus a deep clone of the warm models;
	// the detailed intervals consume those snapshots in parallel without
	// re-executing any fast-forward work.
	//
	// Seeds are produced and consumed in chunks of seedChunk so at most
	// that many model clones are alive at once (a clone is a couple of
	// MB of tag arrays, and a long run can have thousands of intervals).
	// Chunking does not affect the estimate: the pass is sequential,
	// chunk boundaries depend only on the schedule, and every interval
	// writes its own slot.
	type seedpoint struct {
		cp *Checkpoint
		w  *Warmup
	}
	nMax := int(maxInsts / cfg.Period)
	base := program.NewMemory(prog)
	e := emu.New(prog)
	master := NewWarmup(mach)
	ff := cfg.Period - cfg.IntervalLen - cfg.WarmupLen
	ivals := make([]Interval, 0, nMax)
	errs := make([]error, 0, nMax)
	var si emu.StepInfo
	for done := 0; done < nMax && !e.Halted; {
		seeds := make([]seedpoint, 0, seedChunk)
		for k := done; k < nMax && len(seeds) < seedChunk && !e.Halted; k++ {
			if cfg.Poll != nil {
				if err := cfg.Poll(); err != nil {
					return nil, err
				}
			}
			for i := uint64(0); i < ff && !e.Halted; i++ {
				e.StepInto(&si)
				master.Observe(&si)
			}
			if e.Halted {
				break
			}
			seeds = append(seeds, seedpoint{cp: Capture(e, base), w: master.Clone()})
			for i := uint64(0); i < cfg.WarmupLen+cfg.IntervalLen && !e.Halted; i++ {
				e.StepInto(&si)
				master.Observe(&si)
			}
			if e.Halted {
				// The program ended inside the measured tail of period
				// k: that interval is truncated, so drop it.
				seeds = seeds[:len(seeds)-1]
			}
		}
		m := len(seeds)
		if m == 0 {
			break
		}
		ivals = ivals[:done+m]
		errs = errs[:done+m]
		sweep.Run(m, cfg.Workers, func(j int) {
			k := done + j
			if cfg.Poll != nil {
				if err := cfg.Poll(); err != nil {
					errs[k] = err
					return
				}
			}
			ivals[k], errs[k] = runInterval(mach, feat, prog, seeds[j].cp, seeds[j].w, cfg)
			ivals[k].Index = k
		})
		done += m
	}
	n := len(ivals)
	if n == 0 {
		return nil, fmt.Errorf("sample: %s halts before one full period (%d insts); use a full detailed run",
			prog.Name, cfg.Period)
	}
	var fails []error
	for k, err := range errs {
		if err != nil {
			fails = append(fails, fmt.Errorf("interval %d: %w", k, err))
		}
	}
	if len(fails) > 0 {
		return nil, errors.Join(fails...)
	}

	res := &Result{
		Program:     prog.Name,
		Machine:     mach.Name,
		Features:    config.FeatureName(feat),
		Period:      cfg.Period,
		IntervalLen: cfg.IntervalLen,
		WarmupLen:   cfg.WarmupLen,
		Confidence:  cfg.Confidence,
		Intervals:   ivals,
		TotalInsts:  uint64(n) * cfg.Period,
	}
	samples := make([]float64, n)
	for k := range ivals {
		samples[k] = ivals[k].CPI
		res.Measured.Add(&ivals[k].Stats)
		res.MeasuredInsts += ivals[k].Insts
		res.DetailedInsts += cfg.WarmupLen + ivals[k].Insts
	}
	res.MeanCPI, res.CPIHalf = stats.MeanCI(samples, cfg.Confidence)
	if res.MeanCPI > 0 {
		res.IPC = 1 / res.MeanCPI
		res.IPCLo = 1 / (res.MeanCPI + res.CPIHalf)
		if lo := res.MeanCPI - res.CPIHalf; lo > 0 {
			res.IPCHi = 1 / lo
		}
	}
	return res, nil
}

// runInterval restores one measurement-start checkpoint, seeds a
// detailed core with the interval's private clone of the continuously
// warmed models, runs the detached warmup, and measures the interval.
// A panic inside the core is contained into the interval's error so one
// bad interval cannot take down a parallel sampled sweep.
func runInterval(mach config.Machine, feat config.Features, prog *program.Program, cp *Checkpoint, w *Warmup, cfg Config) (iv Interval, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic in detailed interval: %v", r)
		}
	}()

	e, err := cp.Restore(prog)
	if err != nil {
		return iv, err
	}
	seed := &core.ArchState{PC: e.PC, Regs: e.Regs, Mem: e.Mem}
	c, err := core.NewSeeded(mach, feat, []*program.Program{prog}, []*core.ArchState{seed})
	if err != nil {
		return iv, err
	}
	c.SeedMicroarch(w.Pred, w.Conf, w.Mem)
	if cfg.Poll != nil {
		c.SetPoll(0, cfg.Poll)
	}

	// The cycle budget covers warmup plus interval at the worst
	// plausible CPI, mirroring the facade's detailed-run budget.
	budget := 40*(cfg.WarmupLen+cfg.IntervalLen) + 10_000
	if _, err := c.Run(cfg.WarmupLen, budget); err != nil {
		return iv, fmt.Errorf("detached warmup: %w", err)
	}
	snap := *c.Stats
	snap.PerProgram = append([]uint64(nil), c.Stats.PerProgram...)
	if _, err := c.Run(cfg.WarmupLen+cfg.IntervalLen, budget); err != nil {
		return iv, fmt.Errorf("measured region: %w", err)
	}

	delta := *c.Stats
	delta.PerProgram = append([]uint64(nil), c.Stats.PerProgram...)
	delta.Sub(&snap)
	if delta.Committed == 0 {
		return iv, fmt.Errorf("nothing committed in measured region (cycles %d..%d)", snap.Cycles, c.Stats.Cycles)
	}
	iv.StartInst = cp.Retired + snap.Committed
	iv.Insts = delta.Committed
	iv.Cycles = delta.Cycles
	iv.CPI = float64(delta.Cycles) / float64(delta.Committed)
	iv.Stats = delta
	return iv, nil
}
