package sample

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"recyclesim/internal/asm"
	"recyclesim/internal/config"
	"recyclesim/internal/core"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

// fullIPC runs the program fully detailed and returns committed/cycles.
func fullIPC(t *testing.T, mach config.Machine, feat config.Features, p *program.Program, maxInsts uint64) float64 {
	t.Helper()
	c, err := core.New(mach, feat, []*program.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(maxInsts, 40*maxInsts+10_000); err != nil {
		t.Fatal(err)
	}
	return float64(c.Stats.Committed) / float64(c.Stats.Cycles)
}

// The headline acceptance criterion: sampled IPC lands within 3%
// relative error of the full detailed run.  The schedule (P=2000,
// L=500, W=500 over 400k insts = 200 intervals) trades speed for
// coverage because 400k-inst runs still carry strong phase structure;
// production budgets use longer periods (see DESIGN.md).
//
// Under the race detector each cell is ~15x slower, so the matrix is
// trimmed to one representative cell per preset; the full 8x5 matrix
// runs in normal builds.
func TestSampledAccuracy(t *testing.T) {
	const (
		maxInsts = 400_000
		bound    = 3.0 // percent
	)
	cfg := Config{Period: 2_000, IntervalLen: 500, WarmupLen: 500}
	mach := config.Big216()

	benches := workload.Names
	presets := []string{"SMT", "TME", "REC", "REC/RS", "REC/RS/RU"}
	var cells [][2]string
	if raceEnabled || testing.Short() {
		cells = [][2]string{
			{"go", "SMT"}, {"perl", "TME"}, {"gcc", "REC"},
			{"tomcatv", "REC/RS"}, {"vortex", "REC/RS/RU"},
		}
	} else {
		for _, b := range benches {
			for _, pr := range presets {
				cells = append(cells, [2]string{b, pr})
			}
		}
	}

	for _, cell := range cells {
		bench, preset := cell[0], cell[1]
		t.Run(bench+"/"+preset, func(t *testing.T) {
			p, err := workload.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			feat, ok := config.PresetByName(preset)
			if !ok {
				t.Fatalf("unknown preset %q", preset)
			}
			full := fullIPC(t, mach, feat, p, maxInsts)
			r, err := Run(mach, feat, p, maxInsts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			relErr := 100 * math.Abs(r.IPC-full) / full
			if relErr > bound {
				t.Errorf("sampled IPC %.4f vs full %.4f: %.2f%% relative error exceeds %.1f%%",
					r.IPC, full, relErr, bound)
			}
			if r.Measured.Committed != r.MeasuredInsts {
				t.Errorf("attribution mismatch: Measured.Committed %d != MeasuredInsts %d",
					r.Measured.Committed, r.MeasuredInsts)
			}
		})
	}
}

// The determinism witness: identical inputs produce byte-identical
// reports and deeply equal results, for every worker count and across
// repeated runs.
func TestSampledDeterminism(t *testing.T) {
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	mach := config.Big216()
	feat, _ := config.PresetByName("REC/RS/RU")
	const maxInsts = 100_000

	run := func(workers int) (*Result, string) {
		cfg := Config{Period: 5_000, IntervalLen: 500, WarmupLen: 500, Workers: workers}
		r, err := Run(mach, feat, p, maxInsts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return r, buf.String()
	}

	ref, refText := run(1)
	if len(ref.Intervals) != int(maxInsts/5_000) {
		t.Fatalf("expected %d intervals, got %d", maxInsts/5_000, len(ref.Intervals))
	}
	for k, iv := range ref.Intervals {
		if iv.Index != k {
			t.Fatalf("interval %d has index %d", k, iv.Index)
		}
		if k > 0 && iv.StartInst <= ref.Intervals[k-1].StartInst {
			t.Fatalf("interval starts not increasing: %d then %d",
				ref.Intervals[k-1].StartInst, iv.StartInst)
		}
		if iv.CPI <= 0 {
			t.Fatalf("interval %d has CPI %v", k, iv.CPI)
		}
	}
	if ref.IPC <= 0 || ref.IPCLo <= 0 || ref.IPCHi < ref.IPC || ref.IPCLo > ref.IPC {
		t.Fatalf("inconsistent CI: IPC %.4f in [%.4f, %.4f]", ref.IPC, ref.IPCLo, ref.IPCHi)
	}

	for _, workers := range []int{4, 16, 0} {
		got, gotText := run(workers)
		if gotText != refText {
			t.Errorf("workers=%d report differs:\n%s\nvs workers=1:\n%s", workers, gotText, refText)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d result differs from workers=1", workers)
		}
	}
	if _, again := run(1); again != refText {
		t.Error("repeated identical run produced different report bytes")
	}
}

func TestSampledConfigValidation(t *testing.T) {
	p, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	mach := config.Big216()
	feat, _ := config.PresetByName("SMT")

	if _, err := Run(mach, feat, p, 100_000, Config{Period: 1_000, IntervalLen: 800, WarmupLen: 800}); err == nil ||
		!strings.Contains(err.Error(), "exceed period") {
		t.Errorf("oversized interval+warmup accepted: %v", err)
	}
	if _, err := Run(mach, feat, p, 5_000, Config{Period: 20_000}); err == nil ||
		!strings.Contains(err.Error(), "smaller than one period") {
		t.Errorf("sub-period budget accepted: %v", err)
	}
	bad := mach
	bad.Contexts = -1
	if _, err := Run(bad, feat, p, 100_000, Config{}); err == nil {
		t.Error("invalid machine accepted")
	}
}

// haltingLoop builds a program that retires ~6*n+4 instructions and
// then halts, so sampled runs can hit the end of a program mid-pass.
func haltingLoop(t *testing.T, n int64) *program.Program {
	t.Helper()
	b := asm.NewBuilder("haltingloop")
	b.Li(asm.R(1), n)
	b.Li(asm.R(2), 0)
	b.Label("loop")
	b.Addi(asm.R(2), asm.R(2), 3)
	b.Xori(asm.R(3), asm.R(2), 0x55)
	b.Addi(asm.R(1), asm.R(1), -1)
	b.Bne(asm.R(1), asm.R(0), "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSampledHaltingProgram(t *testing.T) {
	mach := config.Big216()
	feat, _ := config.PresetByName("SMT")

	// Halts before one full period: refused.
	tiny := haltingLoop(t, 100)
	if _, err := Run(mach, feat, tiny, 100_000, Config{Period: 10_000}); err == nil ||
		!strings.Contains(err.Error(), "halts before one full period") {
		t.Errorf("sub-period program accepted: %v", err)
	}

	// Halts mid-run: the schedule truncates to fully covered periods
	// and still produces an estimate.
	longer := haltingLoop(t, 4_000) // ~24k insts
	r, err := Run(mach, feat, longer, 100_000, Config{Period: 5_000, IntervalLen: 500, WarmupLen: 500})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.Intervals); n < 2 || n > 4 {
		t.Errorf("expected 2-4 full intervals before halt, got %d", n)
	}
	if r.IPC <= 0 {
		t.Errorf("halting program produced IPC %v", r.IPC)
	}
}

func TestSampledPollCancellation(t *testing.T) {
	p, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	mach := config.Big216()
	feat, _ := config.PresetByName("SMT")
	calls := 0
	cancel := func() error {
		calls++
		if calls > 3 {
			return errCancelled
		}
		return nil
	}
	_, err = Run(mach, feat, p, 200_000, Config{Period: 5_000, Poll: cancel})
	if err == nil || !strings.Contains(err.Error(), "cancelled by test") {
		t.Errorf("poll cancellation not propagated: %v", err)
	}
}

var errCancelled = &cancelErr{}

type cancelErr struct{}

func (*cancelErr) Error() string { return "cancelled by test" }
