package sample

import (
	"bytes"
	"strings"
	"testing"

	"recyclesim/internal/emu"
	"recyclesim/internal/isa"
	"recyclesim/internal/program"
	"recyclesim/internal/workload"
)

// roundTrip pushes a checkpoint through one encode/decode cycle.
func roundTrip(t *testing.T, cp *Checkpoint, encode func(*Checkpoint, *bytes.Buffer) error, decode func(*bytes.Buffer) (*Checkpoint, error)) *Checkpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := encode(cp, &buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Determinism: encoding the same checkpoint twice is byte-identical.
	var buf2 bytes.Buffer
	if err := encode(cp, &buf2); err != nil {
		t.Fatalf("encode (2nd): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
	got, err := decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// The master checkpoint invariant, for every workload and both
// encodings: Checkpoint -> encode -> decode -> Restore -> continue
// must produce a commit stream byte-identical to the uninterrupted
// emulator.
func TestCheckpointRoundTripEveryWorkload(t *testing.T) {
	codecs := []struct {
		name   string
		encode func(*Checkpoint, *bytes.Buffer) error
		decode func(*bytes.Buffer) (*Checkpoint, error)
	}{
		{"binary", func(cp *Checkpoint, b *bytes.Buffer) error { return cp.EncodeBinary(b) },
			func(b *bytes.Buffer) (*Checkpoint, error) { return DecodeBinary(b) }},
		{"json", func(cp *Checkpoint, b *bytes.Buffer) error { return cp.EncodeJSON(b) },
			func(b *bytes.Buffer) (*Checkpoint, error) { return DecodeJSON(b) }},
	}
	for _, bench := range workload.Names {
		for _, codec := range codecs {
			bench, codec := bench, codec
			t.Run(bench+"/"+codec.name, func(t *testing.T) {
				p, err := workload.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				base := program.NewMemory(p)
				ref := emu.New(p)
				ref.Run(30_000)

				cp := roundTrip(t, Capture(ref, base), codec.encode, codec.decode)
				e, err := cp.Restore(p)
				if err != nil {
					t.Fatal(err)
				}
				if e.PC != ref.PC || e.Retired != ref.Retired || e.Regs != ref.Regs {
					t.Fatal("restored architectural state differs")
				}
				var got, want emu.StepInfo
				for i := 0; i < 10_000; i++ {
					ref.StepInto(&want)
					e.StepInto(&got)
					if got != want {
						t.Fatalf("step %d after restore: %+v != %+v", i, got, want)
					}
				}
			})
		}
	}
}

// A checkpoint of a halted emulator restores halted.
func TestCheckpointHalted(t *testing.T) {
	// A two-instruction program that halts immediately keeps the test
	// fast; the built-in benchmarks never halt within any test budget.
	p := &program.Program{
		Name:  "halts",
		Code:  []isa.Inst{{Op: isa.OpNop}, {Op: isa.OpHalt}},
		Entry: program.CodeBase,
	}
	base := program.NewMemory(p)
	e := emu.New(p)
	e.Run(10)
	if !e.Halted {
		t.Fatal("program did not halt")
	}
	cp := Capture(e, base)
	var buf bytes.Buffer
	if err := cp.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := got.Restore(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Halted || r.Retired != e.Retired {
		t.Errorf("restored halted=%v retired=%d, want halted=true retired=%d", r.Halted, r.Retired, e.Retired)
	}
}

func TestCheckpointRestoreValidation(t *testing.T) {
	p, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	q, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	base := program.NewMemory(p)
	cp := Capture(emu.New(p), base)
	if _, err := cp.Restore(q); err == nil || !strings.Contains(err.Error(), "restored against") {
		t.Errorf("wrong-program restore: %v", err)
	}
	bad := *cp
	bad.PC = 0x2
	if _, err := bad.Restore(p); err == nil {
		t.Error("out-of-text PC restore accepted")
	}
	bad = *cp
	bad.Regs[0] = 7
	if _, err := bad.Restore(p); err == nil {
		t.Error("nonzero zero-register restore accepted")
	}
}

func TestDecodeBinaryRejectsCorrupt(t *testing.T) {
	p, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(p)
	e.Run(1_000)
	var buf bytes.Buffer
	if err := Capture(e, program.NewMemory(p)).EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	if _, err := DecodeBinary(bytes.NewReader([]byte("NOTACKPT________"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncations at every structural boundary.
	for _, cut := range []int{4, len(ckptMagic) + 3, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := DecodeBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Absurd delta count: encode an empty-delta checkpoint (the count
	// is then the final 8 bytes) and patch it to a huge value.
	empty := &Checkpoint{Program: p.Name, PC: p.Entry}
	var eb bytes.Buffer
	if err := empty.EncodeBinary(&eb); err != nil {
		t.Fatal(err)
	}
	bad := eb.Bytes()
	for i := len(bad) - 8; i < len(bad); i++ {
		bad[i] = 0xff
	}
	if _, err := DecodeBinary(bytes.NewReader(bad)); err == nil {
		t.Error("absurd delta count accepted")
	}
}
