package sample

import (
	"recyclesim/internal/bpred"
	"recyclesim/internal/cache"
	"recyclesim/internal/confidence"
	"recyclesim/internal/config"
	"recyclesim/internal/core"
	"recyclesim/internal/emu"
)

// warmupLine is the I-side granularity of functional warmup: one
// I-cache touch per 64-byte line change, matching the fetch stage's
// one-AccessI-per-block behaviour closely enough to warm the same
// lines.
const warmupLine = 64

// Warmup functionally warms the long-lived microarchitectural models —
// branch predictor, confidence estimator, and cache hierarchy — from
// the emulator's instruction stream during fast-forward, so a detailed
// measurement interval starts with the state those structures would
// have accumulated over the whole run.  One Warmup instance observes
// the entire instruction stream (warming is continuous from program
// start, as in SMARTS functional warming); Clone snapshots it at each
// measurement point.  The models are built with the same default
// configurations core.New uses and are meant to be handed to
// Core.SeedMicroarch afterwards.
//
// The warmup mirrors the core's primary-path training exactly: Lookup,
// speculative history update, history repair on a mispredict, and
// commit-time PHT/BTB/confidence training — driven by the
// architectural stream, which is precisely the primary path's commit
// stream.  Wrong-path pollution and the recycle/reuse tables (written
// bits, MDB, active-list traces) are not modelled; those stay cold at
// interval entry, which is the documented bias of sampled mode.
type Warmup struct {
	Pred *bpred.Predictor
	Conf *confidence.Estimator
	Mem  *cache.Hierarchy

	progIdx  int
	now      uint64 // pseudo-cycle driving cache timing/LRU state
	lastLine uint64
	haveLine bool
}

// NewWarmup builds fresh default models for the machine, matching what
// core.New constructs.
func NewWarmup(mach config.Machine) *Warmup {
	return &Warmup{
		Pred: bpred.New(bpred.Default(mach.Contexts)),
		Conf: confidence.New(confidence.Default()),
		Mem:  cache.NewHierarchy(cache.DefaultHierarchy(mach.CacheScale)),
	}
}

// Clone deep-copies the warmup state — models and line-tracking — so a
// measurement interval can hand a private snapshot of the continuously
// warmed models to its detailed core while the master warmup keeps
// advancing.
func (w *Warmup) Clone() *Warmup {
	q := *w
	q.Pred = w.Pred.Clone()
	q.Conf = w.Conf.Clone()
	q.Mem = w.Mem.Clone()
	return &q
}

// Observe feeds one architecturally executed instruction into the
// models.  Context 0 is warmed (the seeded core's primary context);
// addresses are tagged exactly as the core tags them so the shared
// structures see the same index/tag streams.
//
//recycle:hotpath
func (w *Warmup) Observe(si *emu.StepInfo) {
	w.now++
	line := si.PC / warmupLine
	if !w.haveLine || line != w.lastLine {
		w.Mem.AccessI(w.now, core.TagAddr(w.progIdx, si.PC))
		w.lastLine = line
		w.haveLine = true
	}

	in := si.Inst
	if in.IsBranch() {
		pr := w.Pred.Lookup(0, si.PC, in)
		w.Pred.SpecUpdate(0, in, si.PC, pr)
		correct := pr.Taken == si.Taken && (!si.Taken || pr.Target == si.Next)
		if !correct {
			w.Pred.Restore(0, in, pr, si.Taken)
		}
		w.Pred.Commit(si.PC, in, pr, si.Taken, si.Next)
		if in.IsCondBranch() {
			w.Conf.Update(core.TagAddr(w.progIdx, si.PC), pr.GHist, pr.Taken == si.Taken)
		}
	}

	if in.IsMem() {
		w.Mem.AccessD(w.now, core.TagAddr(w.progIdx, si.Addr))
	}
}
