// Package sample implements SMARTS-style sampled simulation: the
// golden emulator fast-forwards the program between short detailed
// measurement intervals, microarchitectural state is functionally
// warmed during the fast-forward, and whole-program IPC is estimated
// as a mean over the per-interval samples with a Student-t confidence
// interval.  See DESIGN.md "Sampled simulation" for the schedule, the
// warmup policy, and the known biases.
package sample

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"recyclesim/internal/emu"
	"recyclesim/internal/isa"
	"recyclesim/internal/program"
)

// Checkpoint is a serializable architectural snapshot of an emulator:
// everything needed to resume execution at an arbitrary point.  Memory
// is stored as a delta against the program's initial image, sorted by
// address, so checkpoints stay small and their encodings are
// deterministic.
type Checkpoint struct {
	Program string // program name, validated on Restore
	PC      uint64
	Retired uint64
	Halted  bool
	Regs    [isa.NumRegs]uint64
	Mem     []program.Word // memory delta vs. the initial image, address-sorted
}

// Capture snapshots the emulator's architectural state.  base must be
// the program's initial memory image (program.NewMemory of the same
// program); the checkpoint's memory is the delta against it.
func Capture(e *emu.Emulator, base *program.Memory) *Checkpoint {
	return &Checkpoint{
		Program: e.Prog.Name,
		PC:      e.PC,
		Retired: e.Retired,
		Halted:  e.Halted,
		Regs:    e.Regs,
		Mem:     e.Mem.Delta(base),
	}
}

// Restore builds an emulator resuming at the checkpoint.  The program
// must be the image the checkpoint was captured from (matched by name
// and by the PC landing inside its text).
func (cp *Checkpoint) Restore(p *program.Program) (*emu.Emulator, error) {
	if p.Name != cp.Program {
		return nil, fmt.Errorf("sample: checkpoint of %q restored against %q", cp.Program, p.Name)
	}
	if _, ok := p.PCToIndex(cp.PC); !ok && !cp.Halted {
		return nil, fmt.Errorf("sample: checkpoint pc 0x%x outside %s text", cp.PC, p.Name)
	}
	if cp.Regs[isa.RegZero] != 0 {
		return nil, fmt.Errorf("sample: checkpoint has nonzero zero register")
	}
	mem := program.NewMemory(p)
	mem.Apply(cp.Mem)
	return &emu.Emulator{
		Prog:    p,
		Mem:     mem,
		PC:      cp.PC,
		Regs:    cp.Regs,
		Halted:  cp.Halted,
		Retired: cp.Retired,
	}, nil
}

// ckptMagic versions the binary encoding.
const ckptMagic = "RSCKPT1\n"

// maxCkptWords bounds decoded delta sizes so a corrupt or hostile
// length field cannot drive a giant allocation.
const maxCkptWords = 1 << 28

// EncodeBinary writes the checkpoint in the deterministic binary
// format: magic, name (length-prefixed), fixed-width little-endian
// scalars, register file, and the address-sorted memory delta.  Two
// equal checkpoints always produce identical bytes.
func (cp *Checkpoint) EncodeBinary(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	var u [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(u[:], v)
		buf.Write(u[:])
	}
	put(uint64(len(cp.Program)))
	buf.WriteString(cp.Program)
	put(cp.PC)
	put(cp.Retired)
	if cp.Halted {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	put(uint64(len(cp.Regs)))
	for _, r := range cp.Regs {
		put(r)
	}
	put(uint64(len(cp.Mem)))
	for _, mw := range cp.Mem {
		put(mw.Addr)
		put(mw.Val)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// DecodeBinary reads a checkpoint written by EncodeBinary.
func DecodeBinary(r io.Reader) (*Checkpoint, error) {
	var magic [len(ckptMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("sample: checkpoint magic: %w", err)
	}
	if string(magic[:]) != ckptMagic {
		return nil, fmt.Errorf("sample: bad checkpoint magic %q", magic[:])
	}
	var u [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(r, u[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u[:]), nil
	}
	nameLen, err := get()
	if err != nil {
		return nil, fmt.Errorf("sample: checkpoint name length: %w", err)
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("sample: checkpoint name length %d too large", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("sample: checkpoint name: %w", err)
	}
	cp := &Checkpoint{Program: string(name)}
	if cp.PC, err = get(); err != nil {
		return nil, fmt.Errorf("sample: checkpoint pc: %w", err)
	}
	if cp.Retired, err = get(); err != nil {
		return nil, fmt.Errorf("sample: checkpoint retired: %w", err)
	}
	var h [1]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, fmt.Errorf("sample: checkpoint halted: %w", err)
	}
	cp.Halted = h[0] != 0
	nRegs, err := get()
	if err != nil {
		return nil, fmt.Errorf("sample: checkpoint register count: %w", err)
	}
	if nRegs != uint64(len(cp.Regs)) {
		return nil, fmt.Errorf("sample: checkpoint has %d registers, want %d", nRegs, len(cp.Regs))
	}
	for i := range cp.Regs {
		if cp.Regs[i], err = get(); err != nil {
			return nil, fmt.Errorf("sample: checkpoint register %d: %w", i, err)
		}
	}
	nMem, err := get()
	if err != nil {
		return nil, fmt.Errorf("sample: checkpoint delta count: %w", err)
	}
	if nMem > maxCkptWords {
		return nil, fmt.Errorf("sample: checkpoint delta count %d too large", nMem)
	}
	if nMem > 0 {
		cp.Mem = make([]program.Word, nMem)
		for i := range cp.Mem {
			if cp.Mem[i].Addr, err = get(); err != nil {
				return nil, fmt.Errorf("sample: checkpoint word %d: %w", i, err)
			}
			if cp.Mem[i].Val, err = get(); err != nil {
				return nil, fmt.Errorf("sample: checkpoint word %d: %w", i, err)
			}
		}
	}
	return cp, nil
}

// EncodeJSON writes the checkpoint as JSON.  Field order follows the
// struct and the memory delta is address-sorted, so the encoding is
// deterministic.
func (cp *Checkpoint) EncodeJSON(w io.Writer) error {
	b, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// DecodeJSON reads a checkpoint written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := json.NewDecoder(r).Decode(cp); err != nil {
		return nil, fmt.Errorf("sample: checkpoint json: %w", err)
	}
	return cp, nil
}
