//go:build !race

package sample

// raceEnabled reports whether the race detector is compiled in; the
// accuracy suite trims its matrix under race, where each cell is an
// order of magnitude slower.
const raceEnabled = false
