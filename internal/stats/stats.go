// Package stats collects the simulator's performance counters and
// derives every metric the paper reports: IPC for the figures and the
// recycling statistics of Table 1.
package stats

import "fmt"

// Sim accumulates counters over one simulation run.
type Sim struct {
	Cycles uint64

	// Instruction flow.
	Fetched   uint64 // instructions fetched from the I-cache path
	Renamed   uint64 // instructions inserted into the rename stage (incl. squashed)
	Recycled  uint64 // renamed via the recycle datapath
	Reused    uint64 // recycled instructions that also reused their old result
	Committed uint64 // architecturally retired
	Squashed  uint64 // removed by mispredict or context reclaim

	// Branch behaviour (primary-path resolved conditional branches).
	CondBranches  uint64
	Mispredicts   uint64
	CoveredMiss   uint64 // mispredicts whose alternate path had been forked
	BTBMisses     uint64
	ReturnPredOK  uint64
	ReturnPredBad uint64

	// TME forking.
	Forks          uint64 // alternate paths spawned (incl. respawns)
	Respawns       uint64 // spawns satisfied by re-activating an inactive trace
	ForksUsedTME   uint64 // forked paths promoted to primary (covered a mispredict)
	ForksRecycled  uint64 // forked paths recycled from at least once
	ForksRespawned uint64 // forked paths re-spawned at least once
	ForksDeleted   uint64 // forked paths reclaimed (denominator for Merges/AltPath)

	// Merges.
	Merges        uint64 // recycle streams started
	BackMerges    uint64 // of which backward-branch (loop) merges
	AltMergeTotal uint64 // non-back merges from deleted alternate paths

	// Fork failures by cause.
	ForkFailNoCtx uint64 // no idle or reclaimable context
	ForkFailReuse uint64 // inactive contexts pinned by outstanding reuse

	// Resource pressure.
	RenameStallRegs uint64 // rename stalls on an empty free list
	RenameStallAL   uint64 // rename stalls on a full active list
	IQFullStalls    uint64
	Reclaims        uint64 // inactive contexts reclaimed for spawning

	// Per-program commit counts (multiprogram runs).
	PerProgram []uint64
}

// IPC returns committed instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// PctRecycled returns the percentage of instructions inserted into the
// rename stage that came through the recycle datapath (Table 1 col 1).
func (s *Sim) PctRecycled() float64 { return pct(s.Recycled, s.Renamed) }

// PctReused returns the percentage of renamed instructions whose old
// results were reused (Table 1 col 2).
func (s *Sim) PctReused() float64 { return pct(s.Reused, s.Renamed) }

// BranchMissCoverage returns the percentage of mispredicted branches
// that were covered by a forked alternate path (Table 1 col 3).
func (s *Sim) BranchMissCoverage() float64 { return pct(s.CoveredMiss, s.Mispredicts) }

// PctForksUsedTME returns forked paths promoted to primary as a
// percentage of all forks (Table 1 col 4).
func (s *Sim) PctForksUsedTME() float64 { return pct(s.ForksUsedTME, s.Forks) }

// PctForksRecycled returns forked paths recycled at least once as a
// percentage of all forks (Table 1 col 5).
func (s *Sim) PctForksRecycled() float64 { return pct(s.ForksRecycled, s.Forks) }

// PctForksRespawned returns forked paths re-spawned at least once as a
// percentage of all forks (Table 1 col 6).
func (s *Sim) PctForksRespawned() float64 { return pct(s.ForksRespawned, s.Forks) }

// MergesPerAltPath returns the average number of (non-backward) merges
// a recycled alternate path supplied before deletion (Table 1 col 7).
func (s *Sim) MergesPerAltPath() float64 {
	recycledDeleted := s.ForksDeleted
	if recycledDeleted == 0 {
		return 0
	}
	// The paper averages over recycled alternate paths; paths never
	// recycled contribute zero merges and are excluded.
	if s.ForksRecycled == 0 {
		return 0
	}
	return float64(s.AltMergeTotal) / float64(s.ForksRecycled)
}

// PctBackMerges returns backward-branch merges as a percentage of all
// merges (Table 1 col 8).
func (s *Sim) PctBackMerges() float64 { return pct(s.BackMerges, s.Merges) }

// MispredictRate returns mispredicted conditional branches as a
// fraction of resolved conditional branches.
func (s *Sim) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// Table1Row renders the paper's Table 1 columns for this run.
func (s *Sim) Table1Row(name string) string {
	return fmt.Sprintf("%-10s %8.1f %8.1f %10.1f %7.1f %7.1f %9.1f %11.2f %9.1f",
		name,
		s.PctRecycled(), s.PctReused(), s.BranchMissCoverage(),
		s.PctForksUsedTME(), s.PctForksRecycled(), s.PctForksRespawned(),
		s.MergesPerAltPath(), s.PctBackMerges())
}

// Table1Header returns the column header matching Table1Row.
func Table1Header() string {
	return fmt.Sprintf("%-10s %8s %8s %10s %7s %7s %9s %11s %9s",
		"Program", "%Recyc", "%Reuse", "%MissCov", "%TME", "%Recyc", "%Respawn",
		"Merges/Alt", "%BackMrg")
}

// Add accumulates other into s (averaging across workload permutations
// is done on the summed counters, weighting each benchmark evenly when
// run lengths are equal).
func (s *Sim) Add(other *Sim) {
	s.Cycles += other.Cycles
	s.Fetched += other.Fetched
	s.Renamed += other.Renamed
	s.Recycled += other.Recycled
	s.Reused += other.Reused
	s.Committed += other.Committed
	s.Squashed += other.Squashed
	s.CondBranches += other.CondBranches
	s.Mispredicts += other.Mispredicts
	s.CoveredMiss += other.CoveredMiss
	s.BTBMisses += other.BTBMisses
	s.ReturnPredOK += other.ReturnPredOK
	s.ReturnPredBad += other.ReturnPredBad
	s.Forks += other.Forks
	s.Respawns += other.Respawns
	s.ForksUsedTME += other.ForksUsedTME
	s.ForksRecycled += other.ForksRecycled
	s.ForksRespawned += other.ForksRespawned
	s.ForksDeleted += other.ForksDeleted
	s.Merges += other.Merges
	s.BackMerges += other.BackMerges
	s.AltMergeTotal += other.AltMergeTotal
	s.RenameStallRegs += other.RenameStallRegs
	s.RenameStallAL += other.RenameStallAL
	s.IQFullStalls += other.IQFullStalls
	s.Reclaims += other.Reclaims
	s.ForkFailNoCtx += other.ForkFailNoCtx
	s.ForkFailReuse += other.ForkFailReuse
	for len(s.PerProgram) < len(other.PerProgram) {
		s.PerProgram = append(s.PerProgram, 0)
	}
	for i, v := range other.PerProgram {
		s.PerProgram[i] += v
	}
}

// Sub subtracts other from s counter-wise.  Sampled simulation uses it
// to isolate a measurement interval's contribution: snapshot the
// counters when the detached warmup ends, run the interval, and
// subtract.  Every counter in s must be >= its counterpart in other
// (the snapshot was taken earlier in the same run), so the unsigned
// subtraction cannot wrap.
func (s *Sim) Sub(other *Sim) {
	s.Cycles -= other.Cycles
	s.Fetched -= other.Fetched
	s.Renamed -= other.Renamed
	s.Recycled -= other.Recycled
	s.Reused -= other.Reused
	s.Committed -= other.Committed
	s.Squashed -= other.Squashed
	s.CondBranches -= other.CondBranches
	s.Mispredicts -= other.Mispredicts
	s.CoveredMiss -= other.CoveredMiss
	s.BTBMisses -= other.BTBMisses
	s.ReturnPredOK -= other.ReturnPredOK
	s.ReturnPredBad -= other.ReturnPredBad
	s.Forks -= other.Forks
	s.Respawns -= other.Respawns
	s.ForksUsedTME -= other.ForksUsedTME
	s.ForksRecycled -= other.ForksRecycled
	s.ForksRespawned -= other.ForksRespawned
	s.ForksDeleted -= other.ForksDeleted
	s.Merges -= other.Merges
	s.BackMerges -= other.BackMerges
	s.AltMergeTotal -= other.AltMergeTotal
	s.RenameStallRegs -= other.RenameStallRegs
	s.RenameStallAL -= other.RenameStallAL
	s.IQFullStalls -= other.IQFullStalls
	s.Reclaims -= other.Reclaims
	s.ForkFailNoCtx -= other.ForkFailNoCtx
	s.ForkFailReuse -= other.ForkFailReuse
	for i, v := range other.PerProgram {
		if i < len(s.PerProgram) {
			s.PerProgram[i] -= v
		}
	}
}
