package stats

import (
	"math"
	"testing"
)

func close(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestTCriticalKnownValues(t *testing.T) {
	cases := []struct {
		df   int
		conf float64
		want float64
	}{
		{1, 0.95, 12.706},
		{4, 0.95, 2.776},
		{30, 0.95, 2.042},
		{35, 0.95, 2.042},  // rounds down to df=30, not df=40
		{45, 0.95, 2.021},  // rounds down to df=40
		{200, 0.95, 1.980}, // rounds down to df=120
		{1_000_000, 0.95, 1.960},
		{9, 0.90, 1.833},
		{9, 0.99, 3.250},
		{0, 0.95, 12.706}, // df < 1 clamps to df = 1
		{10, 0.50, 2.228}, // unsupported level selects 0.95
	}
	for _, c := range cases {
		if got := TCritical(c.df, c.conf); !close(got, c.want, 1e-9) {
			t.Errorf("TCritical(%d, %.2f) = %v, want %v", c.df, c.conf, got, c.want)
		}
	}
}

// TestTCriticalMonotone is the regression test for the df 31..39
// bucket: critical values must be monotone non-increasing in df at
// every level, across every boundary of the table (30/40/60/120/inf).
// The old `df < 60: df40` bucket returned 2.021 for df=31 at 95% —
// *below* the exact df=30 value of 2.042, an anti-conservative
// interval narrower than the true one.
func TestTCriticalMonotone(t *testing.T) {
	for _, conf := range []float64{0.90, 0.95, 0.99} {
		prev := TCritical(1, conf)
		for df := 2; df <= 20_000; df++ {
			cur := TCritical(df, conf)
			if cur > prev {
				t.Fatalf("TCritical(%d, %.2f) = %v > TCritical(%d, %.2f) = %v: "+
					"critical values must not increase with df", df, conf, cur, df-1, conf, prev)
			}
			prev = cur
		}
	}
}

// The 31..39 bucket must be at least as wide as the exact df=30 value
// (the doc comment's "next-lower tabulated df" promise).
func TestTCriticalDF31To39Conservative(t *testing.T) {
	for _, conf := range []float64{0.90, 0.95, 0.99} {
		df30 := TCritical(30, conf)
		for df := 31; df < 40; df++ {
			if got := TCritical(df, conf); got != df30 {
				t.Errorf("TCritical(%d, %.2f) = %v, want the df=30 value %v", df, conf, got, df30)
			}
		}
	}
}

// Known-value check: {1,2,3,4,5} has mean 3, sample sd sqrt(2.5), and a
// 95% half-width of t(4)=2.776 * sd/sqrt(5) = 1.96320...
func TestMeanCIKnownValues(t *testing.T) {
	mean, half := MeanCI([]float64{1, 2, 3, 4, 5}, 0.95)
	if !close(mean, 3, 1e-12) {
		t.Errorf("mean = %v, want 3", mean)
	}
	if want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5); !close(half, want, 1e-9) {
		t.Errorf("half = %v, want %v", half, want)
	}

	// Wider confidence widens the interval; narrower narrows it.
	_, h90 := MeanCI([]float64{1, 2, 3, 4, 5}, 0.90)
	_, h99 := MeanCI([]float64{1, 2, 3, 4, 5}, 0.99)
	if !(h90 < half && half < h99) {
		t.Errorf("ordering violated: h90=%v h95=%v h99=%v", h90, half, h99)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	if m, h := MeanCI(nil, 0.95); m != 0 || h != 0 {
		t.Errorf("empty: (%v, %v), want (0, 0)", m, h)
	}
	if m, h := MeanCI([]float64{7.5}, 0.95); !close(m, 7.5, 0) || h != 0 {
		t.Errorf("single: (%v, %v), want (7.5, 0)", m, h)
	}
	// Identical samples: zero-width interval.
	if m, h := MeanCI([]float64{2, 2, 2, 2}, 0.95); !close(m, 2, 1e-12) || h != 0 {
		t.Errorf("constant: (%v, %v), want (2, 0)", m, h)
	}
}

// Non-finite samples are excluded rather than poisoning the estimate,
// matching the package's zero-on-empty ratio convention.
func TestMeanCINonFinite(t *testing.T) {
	m, h := MeanCI([]float64{1, math.NaN(), 2, math.Inf(1), 3, 4, 5, math.Inf(-1)}, 0.95)
	wantM, wantH := MeanCI([]float64{1, 2, 3, 4, 5}, 0.95)
	if !close(m, wantM, 1e-12) || !close(h, wantH, 1e-12) {
		t.Errorf("filtered: (%v, %v), want (%v, %v)", m, h, wantM, wantH)
	}
	if m, h := MeanCI([]float64{math.NaN(), math.Inf(1)}, 0.95); m != 0 || h != 0 {
		t.Errorf("all non-finite: (%v, %v), want (0, 0)", m, h)
	}
}
