package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestIPC(t *testing.T) {
	s := &Sim{}
	if s.IPC() != 0 {
		t.Error("empty stats IPC should be 0")
	}
	s.Cycles, s.Committed = 100, 250
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %f", s.IPC())
	}
}

func TestPercentages(t *testing.T) {
	s := &Sim{
		Renamed: 1000, Recycled: 250, Reused: 50,
		Mispredicts: 40, CoveredMiss: 30, CondBranches: 400,
		Forks: 100, ForksUsedTME: 15, ForksRecycled: 40, ForksRespawned: 10,
		ForksDeleted: 80, AltMergeTotal: 68,
		Merges: 200, BackMerges: 88,
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"PctRecycled", s.PctRecycled(), 25},
		{"PctReused", s.PctReused(), 5},
		{"BranchMissCoverage", s.BranchMissCoverage(), 75},
		{"PctForksUsedTME", s.PctForksUsedTME(), 15},
		{"PctForksRecycled", s.PctForksRecycled(), 40},
		{"PctForksRespawned", s.PctForksRespawned(), 10},
		{"MergesPerAltPath", s.MergesPerAltPath(), 1.7},
		{"PctBackMerges", s.PctBackMerges(), 44},
		{"MispredictRate", s.MispredictRate(), 0.1},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestZeroDenominators(t *testing.T) {
	s := &Sim{}
	for name, f := range map[string]func() float64{
		"recycled": s.PctRecycled, "reused": s.PctReused,
		"cov": s.BranchMissCoverage, "tme": s.PctForksUsedTME,
		"merges": s.MergesPerAltPath, "back": s.PctBackMerges,
		"mis": s.MispredictRate,
	} {
		if f() != 0 {
			t.Errorf("%s should be 0 on empty stats", name)
		}
	}
}

func TestAdd(t *testing.T) {
	a := &Sim{Cycles: 10, Committed: 20, Merges: 3, Forks: 2, Recycled: 5}
	b := &Sim{Cycles: 5, Committed: 10, Merges: 1, Forks: 1, Recycled: 2}
	a.Add(b)
	if a.Cycles != 15 || a.Committed != 30 || a.Merges != 4 || a.Forks != 3 || a.Recycled != 7 {
		t.Errorf("Add: %+v", a)
	}
}

// TestAddCoversAllFields fills every field of a Sim with a distinct
// nonzero value via reflection and checks that Add propagates each one.
// It fails when a newly added counter is forgotten in Add.
func TestAddCoversAllFields(t *testing.T) {
	other := &Sim{}
	ov := reflect.ValueOf(other).Elem()
	st := ov.Type()
	for i := 0; i < st.NumField(); i++ {
		f := ov.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(i + 1))
		case reflect.Slice:
			if st.Field(i).Type != reflect.TypeOf([]uint64(nil)) {
				t.Fatalf("field %s: unhandled slice type %v — extend this test and Add",
					st.Field(i).Name, st.Field(i).Type)
			}
			f.Set(reflect.ValueOf([]uint64{uint64(i + 1), uint64(i + 2)}))
		default:
			t.Fatalf("field %s: unhandled kind %v — extend this test and Add",
				st.Field(i).Name, f.Kind())
		}
	}

	sum := &Sim{}
	sum.Add(other)
	sum.Add(other)
	sv := reflect.ValueOf(sum).Elem()
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		f := sv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			if want := 2 * uint64(i+1); f.Uint() != want {
				t.Errorf("Add does not aggregate %s: got %d, want %d", name, f.Uint(), want)
			}
		case reflect.Slice:
			want := []uint64{2 * uint64(i+1), 2 * uint64(i+2)}
			if !reflect.DeepEqual(f.Interface(), want) {
				t.Errorf("Add does not aggregate %s: got %v, want %v", name, f.Interface(), want)
			}
		}
	}
}

// TestAddGrowsPerProgram checks element-wise aggregation when the
// destination has fewer (or no) per-program slots than the source.
func TestAddGrowsPerProgram(t *testing.T) {
	s := &Sim{PerProgram: []uint64{5}}
	s.Add(&Sim{PerProgram: []uint64{1, 2, 3}})
	if want := []uint64{6, 2, 3}; !reflect.DeepEqual(s.PerProgram, want) {
		t.Errorf("PerProgram = %v, want %v", s.PerProgram, want)
	}
}

// TestDerivedFiniteOnZero calls every niladic float64 method on a
// zero-valued Sim and requires a finite zero result: a derived ratio
// must never leak NaN or Inf from a zero denominator.
func TestDerivedFiniteOnZero(t *testing.T) {
	s := &Sim{}
	v := reflect.ValueOf(s)
	mt := v.Type()
	n := 0
	for i := 0; i < mt.NumMethod(); i++ {
		m := mt.Method(i)
		ft := m.Func.Type()
		if ft.NumIn() != 1 || ft.NumOut() != 1 || ft.Out(0).Kind() != reflect.Float64 {
			continue
		}
		n++
		got := v.Method(i).Call(nil)[0].Float()
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s on zero Sim = %v, want finite 0", m.Name, got)
		}
		if got != 0 {
			t.Errorf("%s on zero Sim = %v, want 0", m.Name, got)
		}
	}
	if n < 9 {
		t.Fatalf("found only %d derived metrics; reflection scan broken?", n)
	}
}

func TestTableFormat(t *testing.T) {
	header := Table1Header()
	s := &Sim{Renamed: 100, Recycled: 50}
	row := s.Table1Row("compress")
	if !strings.Contains(row, "compress") || !strings.Contains(row, "50.0") {
		t.Errorf("row = %q", row)
	}
	if len(strings.Fields(header)) != len(strings.Fields(row)) {
		t.Errorf("header/row field mismatch:\n%s\n%s", header, row)
	}
}

// TestSubInvertsAdd fills every field of a Sim via reflection, adds it
// to a distinct base, subtracts it back, and requires the base to
// reappear exactly.  It fails when a newly added counter is forgotten
// in Sub.
func TestSubInvertsAdd(t *testing.T) {
	other := &Sim{}
	ov := reflect.ValueOf(other).Elem()
	st := ov.Type()
	for i := 0; i < st.NumField(); i++ {
		f := ov.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(i + 1))
		case reflect.Slice:
			if st.Field(i).Type != reflect.TypeOf([]uint64(nil)) {
				t.Fatalf("field %s: unhandled slice type %v — extend this test and Sub",
					st.Field(i).Name, st.Field(i).Type)
			}
			f.Set(reflect.ValueOf([]uint64{uint64(i + 1), uint64(i + 2)}))
		default:
			t.Fatalf("field %s: unhandled kind %v — extend this test and Sub",
				st.Field(i).Name, f.Kind())
		}
	}

	got := &Sim{}
	got.Add(other)
	got.Add(other)
	got.Sub(other)
	gv := reflect.ValueOf(got).Elem()
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		f := gv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			if want := uint64(i + 1); f.Uint() != want {
				t.Errorf("Sub does not invert Add for %s: got %d, want %d", name, f.Uint(), want)
			}
		case reflect.Slice:
			want := []uint64{uint64(i + 1), uint64(i + 2)}
			if !reflect.DeepEqual(f.Interface(), want) {
				t.Errorf("Sub does not invert Add for %s: got %v, want %v", name, f.Interface(), want)
			}
		}
	}
}
