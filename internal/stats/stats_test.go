package stats

import (
	"strings"
	"testing"
)

func TestIPC(t *testing.T) {
	s := &Sim{}
	if s.IPC() != 0 {
		t.Error("empty stats IPC should be 0")
	}
	s.Cycles, s.Committed = 100, 250
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %f", s.IPC())
	}
}

func TestPercentages(t *testing.T) {
	s := &Sim{
		Renamed: 1000, Recycled: 250, Reused: 50,
		Mispredicts: 40, CoveredMiss: 30, CondBranches: 400,
		Forks: 100, ForksUsedTME: 15, ForksRecycled: 40, ForksRespawned: 10,
		ForksDeleted: 80, AltMergeTotal: 68,
		Merges: 200, BackMerges: 88,
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"PctRecycled", s.PctRecycled(), 25},
		{"PctReused", s.PctReused(), 5},
		{"BranchMissCoverage", s.BranchMissCoverage(), 75},
		{"PctForksUsedTME", s.PctForksUsedTME(), 15},
		{"PctForksRecycled", s.PctForksRecycled(), 40},
		{"PctForksRespawned", s.PctForksRespawned(), 10},
		{"MergesPerAltPath", s.MergesPerAltPath(), 1.7},
		{"PctBackMerges", s.PctBackMerges(), 44},
		{"MispredictRate", s.MispredictRate(), 0.1},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestZeroDenominators(t *testing.T) {
	s := &Sim{}
	for name, f := range map[string]func() float64{
		"recycled": s.PctRecycled, "reused": s.PctReused,
		"cov": s.BranchMissCoverage, "tme": s.PctForksUsedTME,
		"merges": s.MergesPerAltPath, "back": s.PctBackMerges,
		"mis": s.MispredictRate,
	} {
		if f() != 0 {
			t.Errorf("%s should be 0 on empty stats", name)
		}
	}
}

func TestAdd(t *testing.T) {
	a := &Sim{Cycles: 10, Committed: 20, Merges: 3, Forks: 2, Recycled: 5}
	b := &Sim{Cycles: 5, Committed: 10, Merges: 1, Forks: 1, Recycled: 2}
	a.Add(b)
	if a.Cycles != 15 || a.Committed != 30 || a.Merges != 4 || a.Forks != 3 || a.Recycled != 7 {
		t.Errorf("Add: %+v", a)
	}
}

func TestTableFormat(t *testing.T) {
	header := Table1Header()
	s := &Sim{Renamed: 100, Recycled: 50}
	row := s.Table1Row("compress")
	if !strings.Contains(row, "compress") || !strings.Contains(row, "50.0") {
		t.Errorf("row = %q", row)
	}
	if len(strings.Fields(header)) != len(strings.Fields(row)) {
		t.Errorf("header/row field mismatch:\n%s\n%s", header, row)
	}
}
