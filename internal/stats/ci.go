// Student-t confidence intervals for sampled simulation.  The sampling
// driver (internal/sample) estimates whole-program CPI as the mean of
// per-interval CPI samples; MeanCI supplies the mean and the half-width
// of the two-sided confidence interval around it.
package stats

import "math"

// tRow is the two-sided Student-t critical values for one confidence
// level: exact for 1..30 degrees of freedom, then the standard coarse
// grid (40, 60, 120, infinity) interpolated conservatively by taking
// the next-lower tabulated df.
type tRow struct {
	exact [30]float64 // df 1..30
	df40  float64
	df60  float64
	df120 float64
	inf   float64
}

var t90 = tRow{
	exact: [30]float64{
		6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
	},
	df40: 1.684, df60: 1.671, df120: 1.658, inf: 1.645,
}

var t95 = tRow{
	exact: [30]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	},
	df40: 2.021, df60: 2.000, df120: 1.980, inf: 1.960,
}

var t99 = tRow{
	exact: [30]float64{
		63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
	},
	df40: 2.704, df60: 2.660, df120: 2.617, inf: 2.576,
}

// TCritical returns the two-sided Student-t critical value for the
// given degrees of freedom at the given confidence level.  Supported
// levels are 0.90, 0.95, and 0.99 (matched to the nearest percent so
// parsed flag values work); any other value selects 0.95.  Between
// tabulated rows the next-lower df's (larger) value is used, so the
// interval is conservative.  df < 1 returns the df=1 value.
func TCritical(df int, confidence float64) float64 {
	var row tRow
	switch int(confidence*100 + 0.5) {
	case 90:
		row = t90
	case 99:
		row = t99
	default:
		row = t95
	}
	switch {
	case df < 1:
		return row.exact[0]
	case df <= 30:
		return row.exact[df-1]
	case df < 40:
		// The next-lower tabulated df is 30, whose exact value
		// dominates df40 — rounding 31..39 down to the df=40 row would
		// be anti-conservative (a narrower interval than the true one).
		return row.exact[29]
	case df < 60:
		return row.df40
	case df < 120:
		return row.df60
	case df < 10_000:
		return row.df120
	}
	return row.inf
}

// MeanCI returns the sample mean and the half-width of the two-sided
// Student-t confidence interval (mean ± half) at the given confidence
// level (0.90/0.95/0.99; other values select 0.95).  Degenerate inputs
// follow the package's zero-on-empty ratio convention: no samples
// yields (0, 0) and a single sample yields (sample, 0), and non-finite
// samples are excluded so one corrupt interval cannot poison the
// estimate.
func MeanCI(samples []float64, confidence float64) (mean, half float64) {
	n := 0
	sum := 0.0
	for _, v := range samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	if n == 1 {
		return mean, 0
	}
	var ss float64
	for _, v := range samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	half = TCritical(n-1, confidence) * sd / math.Sqrt(float64(n))
	return mean, half
}
