package recyclesim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// batchOptions builds a mixed bag of configurations exercising every
// feature preset, so the batch runner is compared against the serial
// path on more than one machine shape.
func batchOptions(hooks []func(CommitInfo)) []Options {
	var opts []Options
	cases := []struct {
		mach   string
		preset string
		loads  []string
	}{
		{"big.2.16", "SMT", []string{"compress"}},
		{"big.2.16", "TME", []string{"li"}},
		{"big.2.16", "REC", []string{"go"}},
		{"big.2.16", "REC/RU", []string{"compress", "tomcatv"}},
		{"big.1.8", "REC/RS", []string{"gcc"}},
		{"small.2.8", "REC/RS/RU", []string{"perl", "vortex"}},
	}
	for i, c := range cases {
		o := Options{
			Machine:   MachineByName(c.mach),
			Features:  PresetByName(c.preset),
			Workloads: c.loads,
			MaxInsts:  30_000,
		}
		if hooks != nil {
			o.CommitHook = hooks[i]
		}
		opts = append(opts, o)
	}
	return opts
}

// commitRecorder captures a run's commit stream as one big string, the
// strictest practical witness that two runs executed identically.
func commitRecorder(sink *[]string) func(CommitInfo) {
	return func(ci CommitInfo) {
		*sink = append(*sink, fmt.Sprintf("%d %d %x %v %x %x %v %v",
			ci.Program, ci.Ctx, ci.PC, ci.Inst, ci.Result, ci.Addr, ci.Taken, ci.Reused))
	}
}

// TestRunBatchMatchesSerial is the parallelism-boundary witness: a
// worker-pool batch must produce byte-identical statistics AND commit
// streams to a serial loop over Run.  Running this test under -race
// (make check does) also checks the pool for data races.
func TestRunBatchMatchesSerial(t *testing.T) {
	n := len(batchOptions(nil))

	serialStreams := make([][]string, n)
	serialHooks := make([]func(CommitInfo), n)
	for i := range serialHooks {
		serialHooks[i] = commitRecorder(&serialStreams[i])
	}
	serialOpts := batchOptions(serialHooks)
	serial := make([]*Result, n)
	for i, o := range serialOpts {
		res, err := Run(o)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		serial[i] = res
	}

	batchStreams := make([][]string, n)
	batchHooks := make([]func(CommitInfo), n)
	for i := range batchHooks {
		batchHooks[i] = commitRecorder(&batchStreams[i])
	}
	batch, err := RunBatch(batchOptions(batchHooks), 4)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}

	for i := range serial {
		if got, want := fmt.Sprintf("%+v", batch[i]), fmt.Sprintf("%+v", serial[i]); got != want {
			t.Errorf("run %d: batch stats differ from serial\n got: %s\nwant: %s", i, got, want)
		}
		if len(batchStreams[i]) != len(serialStreams[i]) {
			t.Errorf("run %d: commit stream length %d (batch) vs %d (serial)",
				i, len(batchStreams[i]), len(serialStreams[i]))
			continue
		}
		for j := range serialStreams[i] {
			if batchStreams[i][j] != serialStreams[i][j] {
				t.Errorf("run %d: commit %d differs\n batch: %s\nserial: %s",
					i, j, batchStreams[i][j], serialStreams[i][j])
				break
			}
		}
	}
}

// TestRunBatchErrorReporting checks that a bad option surfaces its
// error while the rest of the batch still runs.
func TestRunBatchErrorReporting(t *testing.T) {
	opts := []Options{
		{Machine: MachineByName("big.2.16"), Features: SMT, Workloads: []string{"compress"}, MaxInsts: 5_000},
		{Machine: MachineByName("big.2.16"), Features: SMT}, // no workloads: error
	}
	results, err := RunBatch(opts, 2)
	if err == nil {
		t.Fatal("RunBatch accepted an option with no workloads")
	}
	if results[0] == nil {
		t.Error("good option's result missing after a sibling error")
	}
	if results[1] != nil {
		t.Error("failed option produced a result")
	}
}

// TestRunBatchJoinsAllFailures: every failed job is reported, not just
// the first — the joined error names each failing input index with its
// configuration fingerprint, and each sub-error keeps its own cause.
func TestRunBatchJoinsAllFailures(t *testing.T) {
	opts := []Options{
		{Machine: MachineByName("big.2.16"), Features: SMT, Workloads: []string{"compress"}, MaxInsts: 5_000},
		{Machine: MachineByName("big.2.16"), Features: SMT},                                 // no workloads
		{Machine: MachineByName("big.1.8"), Features: TME, Workloads: []string{"nonesuch"}}, // unknown workload
		{Machine: MachineByName("big.2.16"), Features: SMT, Workloads: []string{"li"}, MaxInsts: 5_000},
	}
	results, err := RunBatch(opts, 2)
	if err == nil {
		t.Fatal("batch with two bad jobs reported no error")
	}
	for _, i := range []int{0, 3} {
		if results[i] == nil {
			t.Errorf("good job %d lost its result", i)
		}
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("batch error %T does not unwrap to a list", err)
	}
	if n := len(joined.Unwrap()); n != 2 {
		t.Fatalf("%d joined errors, want 2: %v", n, err)
	}
	for _, want := range []string{"batch job 1 (big.2.16/SMT//max", "batch job 2 (big.1.8/TME/nonesuch/max"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
}
