package recyclesim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"recyclesim/internal/config"
	"recyclesim/internal/core"
	"recyclesim/internal/obs"
)

// slotTotal sums a run's stall attribution; non-zero iff telemetry
// was accumulated.
func slotTotal(tel *Telemetry) uint64 {
	var n uint64
	for _, v := range tel.SlotCycles {
		n += v
	}
	return n
}

func healthyOption(insts uint64) Options {
	return Options{
		Machine:  MachineByName("big.2.16"),
		Features: RECRSRU,
		Workloads: []string{
			"compress",
		},
		MaxInsts: insts,
	}
}

// TestBatchContainsPoisonedCells is the containment acceptance test: a
// batch with one panicking cell, one livelocked cell, and one canceled
// cell must still complete every healthy cell, report one typed error
// per poisoned cell (mapped back to its input index), and persist a
// crash bundle carrying the flight-recorder dump for the panic.
func TestBatchContainsPoisonedCells(t *testing.T) {
	crashDir := t.TempDir()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	livelocked := RECRSRU
	livelocked.WatchdogCycles = 1 // fires on the front-end fill gap

	commits := 0
	panicCell := healthyOption(20_000)
	panicCell.CommitHook = func(CommitInfo) {
		commits++
		if commits == 500 {
			panic("injected fault: poisoned commit hook")
		}
	}
	panicCell.CrashDir = crashDir
	panicCell.FlightRecorder = NewFlightRecorder(128)

	livelockCell := healthyOption(20_000)
	livelockCell.Features = livelocked
	livelockCell.CrashDir = crashDir

	cancelCell := healthyOption(20_000)
	cancelCell.Context = canceled
	cancelCell.PollEveryCycles = 64

	opts := []Options{
		healthyOption(20_000), // 0
		panicCell,             // 1
		healthyOption(20_000), // 2
		livelockCell,          // 3
		cancelCell,            // 4
		healthyOption(20_000), // 5
	}
	results, err := RunBatch(opts, 3)
	if err == nil {
		t.Fatal("poisoned batch reported no error")
	}

	// Healthy cells: complete results, untouched by their siblings.
	for _, i := range []int{0, 2, 5} {
		if results[i] == nil {
			t.Fatalf("healthy cell %d lost its result", i)
		}
		if results[i].Committed < 20_000 {
			t.Errorf("healthy cell %d committed %d, want >= 20000", i, results[i].Committed)
		}
	}

	// Poisoned cells: typed errors, mapped to their indices.
	wantKinds := map[int]error{1: ErrPanic, 3: ErrLivelock, 4: ErrCanceled}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("batch error %T does not unwrap to a list", err)
	}
	subs := joined.Unwrap()
	if len(subs) != len(wantKinds) {
		t.Fatalf("%d joined errors, want %d: %v", len(subs), len(wantKinds), err)
	}
	for idx, kind := range wantKinds {
		found := false
		for _, sub := range subs {
			if strings.Contains(sub.Error(), fmt.Sprintf("batch job %d (", idx)) {
				found = true
				if !errors.Is(sub, kind) {
					t.Errorf("job %d error %v, want kind %v", idx, sub, kind)
				}
				var se *SimError
				if !errors.As(sub, &se) {
					t.Errorf("job %d error is not a *SimError: %v", idx, sub)
				}
			}
		}
		if !found {
			t.Errorf("no joined error names batch job %d: %v", idx, err)
		}
	}

	// The panic cell wrote a crash bundle with the flight-recorder dump.
	var se *SimError
	for _, sub := range subs {
		var cand *SimError
		if errors.As(sub, &cand) && errors.Is(cand.Kind, ErrPanic) {
			se = cand
		}
	}
	if se == nil {
		t.Fatal("panic cell produced no *SimError")
	}
	if se.FlightDump == "" {
		t.Error("panic SimError has no flight-recorder dump")
	}
	if se.BundlePath == "" {
		t.Fatal("panic cell wrote no crash bundle")
	}
	bundle, rerr := os.ReadFile(se.BundlePath)
	if rerr != nil {
		t.Fatalf("crash bundle unreadable: %v", rerr)
	}
	for _, want := range []string{"injected fault", "flight recorder", "machine:", "stack:"} {
		if !strings.Contains(string(bundle), want) {
			t.Errorf("crash bundle missing %q", want)
		}
	}
}

// TestRunPanicContained: a panic in a user hook surfaces as a typed
// *SimError (kind ErrPanic) with the panic value and stack captured,
// and the Result is withheld because mid-cycle state is unreliable.
func TestRunPanicContained(t *testing.T) {
	o := healthyOption(20_000)
	o.FlightRecorder = NewFlightRecorder(64)
	n := 0
	o.CommitHook = func(CommitInfo) {
		n++
		if n == 100 {
			panic("hook exploded")
		}
	}
	tel := &Telemetry{}
	o.Telemetry = tel
	res, err := Run(o)
	if res != nil {
		t.Error("panicked run returned a result")
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("err %T is not *SimError", err)
	}
	if se.PanicValue == nil || !strings.Contains(fmt.Sprint(se.PanicValue), "hook exploded") {
		t.Errorf("panic value %v", se.PanicValue)
	}
	if se.Stack == "" || !strings.Contains(se.Stack, "goroutine") {
		t.Error("panic stack missing")
	}
	if se.Cycle == 0 || se.Committed == 0 {
		t.Errorf("failure not located: cycle %d committed %d", se.Cycle, se.Committed)
	}
	if se.FlightDump == "" {
		t.Error("flight-recorder dump missing")
	}
	if !strings.Contains(se.Fingerprint, "big.2.16") {
		t.Errorf("fingerprint %q", se.Fingerprint)
	}
	if slotTotal(tel) != 0 {
		t.Error("telemetry accumulated from a mid-cycle panic")
	}
}

// TestLivelockSurfacesThroughFacade: the core watchdog's diagnosis
// arrives as ErrLivelock with the machine dump, the partial result
// survives, and a crash bundle is written.
func TestLivelockSurfacesThroughFacade(t *testing.T) {
	o := healthyOption(20_000)
	o.Features.WatchdogCycles = 1
	o.CrashDir = t.TempDir()
	res, err := Run(o)
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("err = %v, want ErrLivelock", err)
	}
	if res == nil {
		t.Error("livelocked run withheld its partial result")
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatal("not a *SimError")
	}
	var ll *core.LivelockError
	if !errors.As(err, &ll) {
		t.Fatal("core.LivelockError not reachable through the facade error")
	}
	if se.Dump == "" || !strings.Contains(se.Dump, "machine state at cycle") {
		t.Errorf("livelock dump missing: %q", se.Dump)
	}
	if se.Detail == "" || !strings.Contains(se.Detail, "dominant stall cause") {
		t.Errorf("livelock detail missing: %q", se.Detail)
	}
	if se.BundlePath == "" {
		t.Fatal("no crash bundle for livelock")
	}
	if _, err := os.Stat(se.BundlePath); err != nil {
		t.Fatalf("crash bundle missing on disk: %v", err)
	}
}

// TestCancelReturnsPartialResult: canceling mid-run stops at the next
// poll with the statistics so far and both the package sentinel and
// the stdlib context error matchable.
func TestCancelReturnsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := healthyOption(100_000)
	o.PollEveryCycles = 256
	n := uint64(0)
	o.CommitHook = func(CommitInfo) {
		n++
		if n == 1_000 {
			cancel()
		}
	}
	tel := &Telemetry{}
	o.Telemetry = tel
	res, err := RunContext(ctx, o)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("context.Canceled not reachable through the facade error")
	}
	if res == nil {
		t.Fatal("canceled run returned no partial result")
	}
	if res.Committed < 1_000 || res.Committed >= 100_000 {
		t.Errorf("partial result committed %d", res.Committed)
	}
	if slotTotal(tel) == 0 {
		t.Error("telemetry not accumulated from a clean cancel")
	}
}

// TestDeadlineClassified: an expired deadline maps to ErrDeadline, not
// ErrCanceled.
func TestDeadlineClassified(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, err := RunContext(ctx, healthyOption(50_000))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("context.DeadlineExceeded not reachable through the facade error")
	}
}

// TestWatchdogByteIdentity is the determinism witness for the fault
// layer: the commit stream, statistics, and telemetry of a healthy run
// must be byte-identical with the watchdog at its default, with an
// explicit window, with the watchdog disabled, and with an uncancelled
// context attached at an aggressive poll cadence.
func TestWatchdogByteIdentity(t *testing.T) {
	witness := func(mutate func(*Options)) (string, string, string) {
		var commits strings.Builder
		tel := &Telemetry{}
		o := healthyOption(20_000)
		o.CommitHook = func(ci CommitInfo) {
			fmt.Fprintf(&commits, "p%d c%d pc=%x %v res=%x addr=%x taken=%t reused=%t\n",
				ci.Program, ci.Ctx, ci.PC, ci.Inst, ci.Result, ci.Addr, ci.Taken, ci.Reused)
		}
		o.Telemetry = tel
		mutate(&o)
		res, err := Run(o)
		if err != nil {
			t.Fatalf("healthy run failed: %v", err)
		}
		return commits.String(), fmt.Sprintf("%+v", *res), fmt.Sprintf("%+v", *tel)
	}

	baseC, baseS, baseT := witness(func(o *Options) {})
	if baseC == "" {
		t.Fatal("no commits recorded")
	}
	variants := map[string]func(*Options){
		"explicit window": func(o *Options) { o.Features.WatchdogCycles = 10_000 },
		"watchdog off":    func(o *Options) { o.Features.WatchdogCycles = config.WatchdogOff },
		"uncancelled context": func(o *Options) {
			o.Context = context.Background()
			ctx, cancel := context.WithCancel(context.Background())
			t.Cleanup(cancel)
			o.Context = ctx
			o.PollEveryCycles = 64
		},
	}
	for name, mutate := range variants {
		c, s, tel := witness(mutate)
		if c != baseC {
			t.Errorf("%s: commit stream diverged", name)
		}
		if s != baseS {
			t.Errorf("%s: stats diverged:\n base: %s\n  got: %s", name, baseS, s)
		}
		if tel != baseT {
			t.Errorf("%s: telemetry diverged", name)
		}
	}
}

// TestInvariantPanicSurfacesAsSimError: a runtime invariant fire —
// injected by corrupting the telemetry conservation identity through
// the test-only core hook — must surface as a contained *SimError of
// kind ErrPanic whose panic value carries the invariant report and
// whose flight-recorder dump is populated.
func TestInvariantPanicSurfacesAsSimError(t *testing.T) {
	o := healthyOption(20_000)
	o.Features.InvariantEvery = 64
	o.FlightRecorder = NewFlightRecorder(128)
	o.CrashDir = t.TempDir()
	o.hookCore = func(c *core.Core) {
		// Break the slot-cycle conservation identity; the checker's
		// telemetry sweep must catch it at the next period.
		c.Obs.SlotCycles[obs.CauseIdle] += 999
	}
	res, err := Run(o)
	if res != nil {
		t.Error("corrupted run returned a result")
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatal("not a *SimError")
	}
	msg := fmt.Sprint(se.PanicValue)
	if !strings.Contains(msg, "invariant check failed") {
		t.Errorf("panic value %q does not carry the invariant report", msg)
	}
	if se.FlightDump == "" {
		t.Error("invariant fire captured no flight-recorder dump")
	}
	if se.BundlePath == "" {
		t.Error("invariant fire wrote no crash bundle")
	}
}

// TestBatchRetryRecoversFlakyHook: with Retries set, a job whose hook
// fails only on the first attempt succeeds on the retry; without
// retries the same job fails the batch.
func TestBatchRetryRecoversFlakyHook(t *testing.T) {
	flaky := func() Options {
		attempt := 0
		o := healthyOption(10_000)
		o.hookCore = func(*core.Core) { attempt++ }
		n := 0
		o.CommitHook = func(CommitInfo) {
			n++
			if attempt == 1 && n == 50 {
				panic("transient hook failure")
			}
		}
		return o
	}

	results, err := RunBatchContext(context.Background(), []Options{flaky()}, BatchConfig{Workers: 1, Retries: 1})
	if err != nil {
		t.Fatalf("retry did not recover the flaky job: %v", err)
	}
	if results[0] == nil || results[0].Committed < 10_000 {
		t.Fatal("retried job result missing or short")
	}

	if _, err := RunBatchContext(context.Background(), []Options{flaky()}, BatchConfig{Workers: 1}); !errors.Is(err, ErrPanic) {
		t.Fatalf("without retries: err = %v, want ErrPanic", err)
	}
}

// TestBatchContextCancelPreventsStart: a batch handed an already
// canceled context runs nothing and reports ErrCanceled per job.
func TestBatchContextCancelPreventsStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	o := healthyOption(10_000)
	o.hookCore = func(*core.Core) { ran = true }
	results, err := RunBatchContext(ctx, []Options{o, o}, BatchConfig{Workers: 2})
	if ran {
		t.Error("canceled batch still constructed a core")
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("job %d produced a result under a dead context", i)
		}
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) || len(joined.Unwrap()) != 2 {
		t.Fatalf("want 2 joined cancellation errors, got %v", err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

// TestBatchRetryBackoff: with RetryDelay set, every retry is preceded
// by a sleep following the capped exponential policy; the clock and
// jitter are injected, so the asserted delays are exact.
func TestBatchRetryBackoff(t *testing.T) {
	alwaysPanics := func() Options {
		o := healthyOption(10_000)
		n := 0
		o.CommitHook = func(CommitInfo) {
			n++
			if n%50 == 0 {
				panic("persistent hook failure")
			}
		}
		return o
	}

	var slept []time.Duration
	cfg := BatchConfig{
		Workers:       1,
		Retries:       3,
		RetryDelay:    100 * time.Millisecond,
		RetryDelayMax: 250 * time.Millisecond,
		retrySleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
		retryRand: func() float64 { return 0 }, // jitter floor: exactly half of each delay
	}
	if _, err := RunBatchContext(context.Background(), []Options{alwaysPanics()}, cfg); !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	// Retries happen after attempts 0, 1, 2; the raw delay doubles
	// from RetryDelay and caps at RetryDelayMax, and the injected
	// zero-rand pins the equal jitter to its lower bound (half).
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 125 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(slept), slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}

	// Zero RetryDelay preserves the historical immediate retry.
	slept = nil
	cfg.RetryDelay, cfg.RetryDelayMax = 0, 0
	if _, err := RunBatchContext(context.Background(), []Options{alwaysPanics()}, cfg); !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	for _, d := range slept {
		if d != 0 {
			t.Errorf("RetryDelay=0 slept %v, want 0", d)
		}
	}
}

// TestBatchBackoffCancelMidWait: a cancellation landing during a
// backoff wait fails the job as canceled instead of retrying.
func TestBatchBackoffCancelMidWait(t *testing.T) {
	alwaysPanics := healthyOption(10_000)
	n := 0
	alwaysPanics.CommitHook = func(CommitInfo) {
		n++
		if n%50 == 0 {
			panic("persistent hook failure")
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := BatchConfig{
		Workers:    1,
		Retries:    5,
		RetryDelay: time.Hour,
		retrySleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the cancellation arrives mid-wait
			return ctx.Err()
		},
	}
	_, err := RunBatchContext(ctx, []Options{alwaysPanics}, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled (no further retries after cancel)", err)
	}
}
