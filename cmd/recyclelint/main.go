// Command recyclelint runs the simulator-specific static-analysis
// suite (internal/lint) over the module and exits non-zero on findings.
// It is part of the pre-PR gate (`make check`).
//
// Usage:
//
//	recyclelint [-rules determinism,deadstat,...] [-list] [-json]
//	            [-baseline file [-write-baseline]] [dir]
//
// dir defaults to the current directory; the whole enclosing module is
// always loaded (the analyzers reason across packages).  Findings can
// be suppressed with `//simlint:ignore <rule> [<rule>...] [-- reason]`
// on or above the offending line, or — for landing a new analyzer
// strict without blocking unrelated work — collectively via a
// committed baseline file: `-baseline lint.baseline -write-baseline`
// records today's findings, and later runs with `-baseline
// lint.baseline` fail only on findings not in the file.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"recyclesim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("recyclelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics on stdout")
	baseline := fs.String("baseline", "", "suppress findings recorded in this file")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file with the current findings and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *writeBaseline && *baseline == "" {
		fmt.Fprintln(stderr, "recyclelint: -write-baseline requires -baseline <file>")
		return 2
	}

	if *list {
		// Listing needs only names and docs, not a loaded module.
		for _, a := range lint.Default(&lint.Program{}) {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		// Accept `./...`-style patterns for familiarity; the module is
		// always loaded whole.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	default:
		fmt.Fprintln(stderr, "usage: recyclelint [-rules r1,r2] [-list] [-json] [-baseline file] [dir]")
		return 2
	}

	prog, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	analyzers := lint.Default(prog)
	if *rules != "" {
		byName := map[string]lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name()] = a
		}
		var sel []lint.Analyzer
		for _, r := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(r)]
			if !ok {
				fmt.Fprintf(stderr, "recyclelint: unknown rule %q\n", strings.TrimSpace(r))
				return 2
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}

	diags := lint.Run(prog, analyzers)

	if *writeBaseline {
		if err := writeBaselineFile(*baseline, prog, diags); err != nil {
			fmt.Fprintln(stderr, "recyclelint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "recyclelint: wrote %d finding(s) to %s\n", len(diags), *baseline)
		return 0
	}
	if *baseline != "" {
		known, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "recyclelint:", err)
			return 2
		}
		var fresh []lint.Diagnostic
		for _, d := range diags {
			if !known[baselineKey(prog, d)] {
				fresh = append(fresh, d)
			}
		}
		diags = fresh
	}

	if *jsonOut {
		if err := emitJSON(stdout, prog, diags); err != nil {
			fmt.Fprintln(stderr, "recyclelint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "recyclelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiag is the machine-readable diagnostic shape.
type jsonDiag struct {
	File string `json:"file"` // module-root-relative path
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func emitJSON(w io.Writer, prog *lint.Program, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: relPath(prog, d.Pos.Filename),
			Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Msg: d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// baselineKey identifies a finding without its line number, so
// unrelated edits that shift code do not invalidate the baseline: a
// suppressed finding stays suppressed until its file, rule, or message
// changes.
func baselineKey(prog *lint.Program, d lint.Diagnostic) string {
	return relPath(prog, d.Pos.Filename) + "\t" + d.Rule + "\t" + d.Msg
}

func relPath(prog *lint.Program, filename string) string {
	if prog.ModRoot != "" {
		if rel, err := filepath.Rel(prog.ModRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

func writeBaselineFile(path string, prog *lint.Program, diags []lint.Diagnostic) error {
	keys := make([]string, 0, len(diags))
	seen := map[string]bool{}
	for _, d := range diags {
		k := baselineKey(prog, d)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# recyclelint baseline: findings accepted as pre-existing.\n")
	b.WriteString("# One finding per line: file<TAB>rule<TAB>message.  Regenerate with\n")
	b.WriteString("#   recyclelint -baseline <this file> -write-baseline\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func readBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[sc.Text()] = true
	}
	return out, sc.Err()
}
