// Command recyclelint runs the simulator-specific static-analysis
// suite (internal/lint) over the module and exits non-zero on findings.
// It is part of the pre-PR gate (`make check`).
//
// Usage:
//
//	recyclelint [-rules determinism,deadstat,...] [-list] [dir]
//
// dir defaults to the current directory; the whole enclosing module is
// always loaded (the analyzers reason across packages).  Findings can
// be suppressed with `//simlint:ignore <rule> [-- reason]` on or above
// the offending line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"recyclesim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("recyclelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		// Accept `./...`-style patterns for familiarity; the module is
		// always loaded whole.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	default:
		fmt.Fprintln(stderr, "usage: recyclelint [-rules r1,r2] [-list] [dir]")
		return 2
	}

	prog, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	analyzers := lint.Default(prog.ModPath)
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *rules != "" {
		byName := map[string]lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name()] = a
		}
		var sel []lint.Analyzer
		for _, r := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(r)]
			if !ok {
				fmt.Fprintf(stderr, "recyclelint: unknown rule %q\n", strings.TrimSpace(r))
				return 2
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}

	diags := lint.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "recyclelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
