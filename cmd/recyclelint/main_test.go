package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var fixtureDir = filepath.Join("..", "..", "internal", "lint", "testdata", "fixture")

// TestRunExitCodes is the table-driven contract for the CLI: exit 0 on
// a clean tree, 1 on findings, 2 on usage or load errors.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		want      int
		wantOut   string // substring required on stdout
		wantErr   string // substring required on stderr
		absentOut string // substring forbidden on stdout
	}{
		{
			name:    "fixture has findings",
			args:    []string{fixtureDir},
			want:    1,
			wantOut: "[determinism]",
			wantErr: "finding(s)",
		},
		{
			name:      "repo is clean via pattern",
			args:      []string{filepath.Join("..", "..") + string(filepath.Separator) + "..."},
			want:      0,
			absentOut: "[",
		},
		{
			name:    "rule subset",
			args:    []string{"-rules", "floatcmp", fixtureDir},
			want:    1,
			wantOut: "[floatcmp]",
			// subsetting must drop the other analyzers' findings
			absentOut: "[determinism]",
		},
		{
			name:    "unknown rule",
			args:    []string{"-rules", "nosuch", fixtureDir},
			want:    2,
			wantErr: "unknown rule",
		},
		{
			name:    "list rules",
			args:    []string{"-list", fixtureDir},
			want:    0,
			wantOut: "deadknob",
		},
		{
			name:    "too many args",
			args:    []string{fixtureDir, fixtureDir},
			want:    2,
			wantErr: "usage:",
		},
		{
			name: "bad flag",
			args: []string{"-definitely-not-a-flag"},
			want: 2,
		},
		{
			// a directory outside any module: findModule walks to the
			// filesystem root without seeing a go.mod
			name:    "no enclosing module",
			args:    []string{filepath.Join(os.TempDir(), "recyclelint-no-module")},
			want:    2,
			wantErr: "no go.mod",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%q) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			if tc.absentOut != "" && strings.Contains(stdout.String(), tc.absentOut) {
				t.Errorf("stdout unexpectedly contains %q:\n%s", tc.absentOut, stdout.String())
			}
		})
	}
}
