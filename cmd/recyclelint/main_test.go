package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var fixtureDir = filepath.Join("..", "..", "internal", "lint", "testdata", "fixture")

// TestRunExitCodes is the table-driven contract for the CLI: exit 0 on
// a clean tree, 1 on findings, 2 on usage or load errors.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		want      int
		wantOut   string // substring required on stdout
		wantErr   string // substring required on stderr
		absentOut string // substring forbidden on stdout
	}{
		{
			name:    "fixture has findings",
			args:    []string{fixtureDir},
			want:    1,
			wantOut: "[determinism]",
			wantErr: "finding(s)",
		},
		{
			name:      "repo is clean via pattern",
			args:      []string{filepath.Join("..", "..") + string(filepath.Separator) + "..."},
			want:      0,
			absentOut: "[",
		},
		{
			name:    "rule subset",
			args:    []string{"-rules", "floatcmp", fixtureDir},
			want:    1,
			wantOut: "[floatcmp]",
			// subsetting must drop the other analyzers' findings
			absentOut: "[determinism]",
		},
		{
			name:    "unknown rule",
			args:    []string{"-rules", "nosuch", fixtureDir},
			want:    2,
			wantErr: "unknown rule",
		},
		{
			name:    "list rules",
			args:    []string{"-list", fixtureDir},
			want:    0,
			wantOut: "deadknob",
		},
		{
			name:    "too many args",
			args:    []string{fixtureDir, fixtureDir},
			want:    2,
			wantErr: "usage:",
		},
		{
			name: "bad flag",
			args: []string{"-definitely-not-a-flag"},
			want: 2,
		},
		{
			// a directory outside any module: findModule walks to the
			// filesystem root without seeing a go.mod
			name:    "no enclosing module",
			args:    []string{filepath.Join(os.TempDir(), "recyclelint-no-module")},
			want:    2,
			wantErr: "no go.mod",
		},
		{
			name:    "json findings",
			args:    []string{"-json", "-rules", "floatcmp", fixtureDir},
			want:    1,
			wantOut: `"rule": "floatcmp"`,
			wantErr: "finding(s)",
		},
		{
			name:    "write-baseline requires baseline",
			args:    []string{"-write-baseline", fixtureDir},
			want:    2,
			wantErr: "-write-baseline requires -baseline",
		},
		{
			name:    "missing baseline file",
			args:    []string{"-baseline", filepath.Join(os.TempDir(), "recyclelint-no-such-baseline"), fixtureDir},
			want:    2,
			wantErr: "no such file",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%q) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			if tc.absentOut != "" && strings.Contains(stdout.String(), tc.absentOut) {
				t.Errorf("stdout unexpectedly contains %q:\n%s", tc.absentOut, stdout.String())
			}
		})
	}
}

// TestBaselineRoundTrip drives the landing-strict workflow end to end:
// record the fixture's findings into a baseline, verify the same run
// then exits clean, and verify the baseline only covers what it
// recorded — a run producing findings outside it still fails.
func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.baseline")

	var out, errw strings.Builder
	if got := run([]string{"-baseline", base, "-write-baseline", fixtureDir}, &out, &errw); got != 0 {
		t.Fatalf("write-baseline exited %d\nstderr:\n%s", got, errw.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if !strings.Contains(string(data), "determinism") {
		t.Fatalf("baseline lacks recorded findings:\n%s", data)
	}

	out.Reset()
	errw.Reset()
	if got := run([]string{"-baseline", base, fixtureDir}, &out, &errw); got != 0 {
		t.Errorf("baselined run exited %d, want 0\nstdout:\n%s\nstderr:\n%s", got, out.String(), errw.String())
	}
	if strings.Contains(out.String(), "[") {
		t.Errorf("baselined run still printed findings:\n%s", out.String())
	}

	// A baseline recorded for one rule must not swallow the others.
	narrow := filepath.Join(t.TempDir(), "narrow.baseline")
	out.Reset()
	errw.Reset()
	if got := run([]string{"-baseline", narrow, "-write-baseline", "-rules", "floatcmp", fixtureDir}, &out, &errw); got != 0 {
		t.Fatalf("narrow write-baseline exited %d", got)
	}
	out.Reset()
	errw.Reset()
	if got := run([]string{"-baseline", narrow, fixtureDir}, &out, &errw); got != 1 {
		t.Errorf("run with narrow baseline exited %d, want 1", got)
	}
	if strings.Contains(out.String(), "[floatcmp]") {
		t.Errorf("narrow baseline failed to suppress its own findings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "[determinism]") {
		t.Errorf("narrow baseline unexpectedly suppressed other rules:\n%s", out.String())
	}
}
