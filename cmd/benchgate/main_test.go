package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(results map[string]map[string]float64) *Doc {
	return &Doc{Benchtime: "1x", Results: results}
}

// TestGateSkipsMissingBaseline: a benchmark present in the current run
// but absent from the committed baseline (or vice versa) must be
// skipped with a warning, not fail the gate.
func TestGateSkipsMissingBaseline(t *testing.T) {
	base := doc(map[string]map[string]float64{
		"SimulatorThroughput": {"simInsts/s": 1_000_000},
		"RemovedBench":        {"simInsts/s": 500_000},
	})
	fresh := doc(map[string]map[string]float64{
		"SimulatorThroughput": {"simInsts/s": 990_000},
		"BrandNewBench":       {"simInsts/s": 100_000},
	})
	if got := gate(base, fresh, 0.10); got != 0 {
		t.Errorf("gate = %d, want 0: missing baselines must skip, not fail", got)
	}
}

// TestGateZeroBaselineSkips: a corrupt zero/negative baseline value is
// skipped rather than dividing by zero into a spurious verdict.
func TestGateZeroBaselineSkips(t *testing.T) {
	base := doc(map[string]map[string]float64{"B": {"simInsts/s": 0}})
	fresh := doc(map[string]map[string]float64{"B": {"simInsts/s": 100}})
	if got := gate(base, fresh, 0.10); got != 0 {
		t.Errorf("gate = %d, want 0", got)
	}
}

// TestGateStillCatchesRegressions: the skip paths must not swallow a
// genuine regression on a benchmark both documents carry.
func TestGateStillCatchesRegressions(t *testing.T) {
	base := doc(map[string]map[string]float64{
		"SimulatorThroughput": {"simInsts/s": 1_000_000},
		"NewBench":            {"simInsts/s": 1},
	})
	fresh := doc(map[string]map[string]float64{
		"SimulatorThroughput": {"simInsts/s": 800_000},
	})
	if got := gate(base, fresh, 0.10); got != 1 {
		t.Errorf("gate = %d, want 1: 20%% regression must fail a 10%% gate", got)
	}
}

func TestWriteMetricsText(t *testing.T) {
	d := doc(map[string]map[string]float64{
		"B/two": {"simInsts/s": 2, "ns/op": 7.5},
		"A/one": {"simInsts/s": 1},
	})
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := writeMetricsText(path, d); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`bench_result{benchmark="A/one",metric="simInsts/s"} 1`,
		`bench_result{benchmark="B/two",metric="ns/op"} 7.5`,
		`bench_result{benchmark="B/two",metric="simInsts/s"} 2`,
	}, "\n") + "\n"
	if string(raw) != want {
		t.Errorf("metrics text:\n%s\nwant:\n%s", raw, want)
	}
}

func TestParseBenchStripsGOMAXPROCS(t *testing.T) {
	out := "BenchmarkSimulatorThroughput-8   2   44586794 ns/op   1346016 simInsts/s\n"
	r := parseBench(out)
	m, ok := r["SimulatorThroughput"]
	if !ok {
		t.Fatalf("parsed names: %v", r)
	}
	if m["simInsts/s"] != 1346016 {
		t.Errorf("simInsts/s = %v", m["simInsts/s"])
	}
}
