// Command benchgate runs the simulator benchmark suite and gates
// performance regressions.
//
// It executes the root-package benchmarks (the throughput benchmark
// plus the figure/table regenerators) via `go test -bench`, parses the
// standard benchmark output into a JSON document, compares the
// simInsts/s metrics against the committed baseline, and then rewrites
// the baseline file with the fresh numbers:
//
//	benchgate                 # gate against BENCH_simulator.json, then refresh it
//	benchgate -tolerance 0.2  # allow up to 20% slowdown
//	benchgate -update         # refresh the baseline without gating
//
// Exit status is 0 on success, 1 when any simInsts/s metric regressed
// more than the tolerance below the baseline, and 2 on harness errors.
// `make bench` is the canonical invocation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Doc is the schema of BENCH_simulator.json: benchmark name to metric
// name to value (ns/op, simInsts/s, B/op, allocs/op, IPC, ...).
type Doc struct {
	Benchtime string                        `json:"benchtime"`
	Results   map[string]map[string]float64 `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	bench := fs.String("bench", "SimulatorThroughput|PipetraceOverhead|Figure[3-6]|Table1|Sampled", "benchmark regexp passed to go test")
	benchtime := fs.String("benchtime", "1x", "benchtime passed to go test")
	out := fs.String("out", "BENCH_simulator.json", "baseline file to gate against and rewrite")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional simInsts/s regression before failing")
	update := fs.Bool("update", false, "rewrite the baseline without gating")
	metricsText := fs.String("metrics-text", "", "also write the fresh results as Prometheus-style text to this file (\"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-benchmem", ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: go test -bench failed: %v\n", err)
		return 2
	}
	fresh := &Doc{Benchtime: *benchtime, Results: parseBench(string(raw))}
	if len(fresh.Results) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark results parsed from go test output\n")
		return 2
	}

	status := 0
	if !*update {
		if base, err := load(*out); err == nil {
			status = gate(base, fresh, *tolerance)
		} else if os.IsNotExist(err) {
			fmt.Printf("benchgate: no baseline at %s; recording fresh numbers\n", *out)
		} else {
			fmt.Fprintf(os.Stderr, "benchgate: reading baseline: %v\n", err)
			return 2
		}
	}

	if err := save(*out, fresh); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: writing %s: %v\n", *out, err)
		return 2
	}
	if *metricsText != "" {
		if err := writeMetricsText(*metricsText, fresh); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: writing metrics text: %v\n", err)
			return 2
		}
	}
	fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *out, len(fresh.Results))
	return status
}

// writeMetricsText renders the fresh results as sorted Prometheus-style
// lines, one per (benchmark, metric) pair.
func writeMetricsText(path string, d *Doc) error {
	var sb strings.Builder
	names := make([]string, 0, len(d.Results))
	for name := range d.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metrics := d.Results[name]
		keys := make([]string, 0, len(metrics))
		for k := range metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "bench_result{benchmark=%q,metric=%q} %s\n",
				name, k, strconv.FormatFloat(metrics[k], 'g', -1, 64))
		}
	}
	if path == "-" {
		_, err := os.Stdout.WriteString(sb.String())
		return err
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// parseBench extracts metric values from standard `go test -bench`
// output lines of the form:
//
//	BenchmarkName/sub-8   2   44586794 ns/op   1346016 simInsts/s   ...
//
// The trailing "-8" GOMAXPROCS suffix is stripped so baselines compare
// across machines with different core counts.
func parseBench(out string) map[string]map[string]float64 {
	results := make(map[string]map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			results[name] = metrics
		}
	}
	return results
}

// gate compares every simInsts/s metric present in both documents and
// reports (to stdout) and counts regressions beyond the tolerance.
// Benchmarks present on only one side — a benchmark added since the
// baseline was recorded, or one that has since been removed — are
// skipped with a warning rather than failing the gate, so renaming or
// extending the suite does not require hand-editing the baseline.
func gate(base, fresh *Doc, tolerance float64) int {
	names := make([]string, 0, len(fresh.Results))
	for name := range fresh.Results {
		names = append(names, name)
	}
	for name := range base.Results {
		if _, ok := fresh.Results[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		want, okb := base.Results[name]["simInsts/s"]
		got, okf := fresh.Results[name]["simInsts/s"]
		switch {
		case !okb && !okf:
			continue // neither side carries simInsts/s (e.g. a pure ns/op benchmark)
		case !okb:
			fmt.Printf("benchgate: warning: %s not in baseline; skipping (will be recorded)\n", name)
			continue
		case !okf:
			fmt.Printf("benchgate: warning: %s in baseline but not in this run; skipping\n", name)
			continue
		case want <= 0:
			fmt.Printf("benchgate: warning: %s baseline simInsts/s is %g; skipping\n", name, want)
			continue
		}
		change := got/want - 1
		mark := "ok"
		if change < -tolerance {
			mark = "REGRESSION"
			failed++
		}
		fmt.Printf("benchgate: %-40s %12.0f -> %12.0f simInsts/s (%+.1f%%) %s\n",
			name, want, got, 100*change, mark)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%% below baseline\n",
			failed, 100*tolerance)
		return 1
	}
	return 0
}

func load(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

func save(path string, d *Doc) error {
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
