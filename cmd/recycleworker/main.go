// Command recycleworker is a fleet worker process: it registers with a
// recycled daemon, long-polls simulation cells under time-bounded
// leases, computes each one with the same canonical executor the
// daemon uses in-process (so results are byte-identical no matter
// where a cell runs), and reports records back.  Heartbeats keep its
// leases renewed while computes run; on SIGINT/SIGTERM it releases the
// cells it still holds and deregisters, so they requeue immediately.
//
// Stdout carries exactly one machine-readable handshake line
// ("recycleworker: attached to <url> ..."); diagnostics are structured
// JSON records (log/slog) on stderr.
//
// Exit status is 0 on clean shutdown and 2 on bad flags or a daemon
// that never admits the worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"recyclesim/internal/fleet"
	"recyclesim/internal/jobs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("recycleworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	daemon := fs.String("daemon", "http://127.0.0.1:8347", "base URL of the recycled daemon to attach to")
	name := fs.String("name", "", "worker name in the daemon's listings (default: hostname)")
	token := fs.String("token", "", "bearer token for the daemon's fleet API (required when recycled runs with -worker-token)")
	parallel := fs.Int("parallel", 0, "cells to compute concurrently (0 = GOMAXPROCS)")
	pollWait := fs.Duration("poll-wait", 5*time.Second, "long-poll window per lease request")
	waitHealthy := fs.Duration("wait-healthy", 10*time.Second, "how long to wait for the daemon's /healthz before registering")
	logLevel := fs.String("log-level", "info", "minimum level for the JSON logs on stderr (debug, info, warn, error)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "recycleworker: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(stderr, "recycleworker: -log-level: %v\n", err)
		return 2
	}
	log := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level}))

	if *name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "recycleworker"
		}
		*name = host
	}
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	base := strings.TrimRight(*daemon, "/")
	if err := jobs.WaitHealthy(ctx, base, *waitHealthy); err != nil {
		fmt.Fprintf(stderr, "recycleworker: -daemon: %v\n", err)
		return 2
	}

	w := fleet.NewWorker(fleet.WorkerConfig{
		BaseURL:  base,
		Name:     *name,
		Token:    *token,
		Parallel: *parallel,
		PollWait: *pollWait,
		Log:      log,
	})

	// The handshake line: scripts parse it to know the worker is live.
	fmt.Fprintf(stdout, "recycleworker: attached to %s (name %s, parallel %d)\n", base, *name, *parallel)
	log.Info("recycleworker attached", "daemon", base, "name", *name, "parallel", *parallel)

	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintf(stderr, "recycleworker: %v\n", err)
		return 2
	}
	log.Info("recycleworker shutting down", "computes", w.Computes())
	return 0
}
