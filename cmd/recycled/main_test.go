package main

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"recyclesim/internal/config"
	"recyclesim/internal/jobs"
)

// syncBuffer is a bytes.Buffer safe for the concurrent writes the
// server goroutine and the test make.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestBadFlags(t *testing.T) {
	var out, errb syncBuffer
	for _, args := range [][]string{
		{},                                    // -store required
		{"-store"},                            // missing value
		{"-store", "x", "extra"},              // positional argument
		{"-nonesuch"},                         // unknown flag
		{"-store", "x", "-log-level", "loud"}, // unknown log level
	} {
		if got := runCtx(context.Background(), args, &out, &errb); got != 2 {
			t.Errorf("runCtx(%q) = %d, want 2", args, got)
		}
	}
}

var servingLine = regexp.MustCompile(`recycled: serving on (http://[^ ]+) \(store `)

// TestServeLifecycle boots the daemon on an ephemeral port, runs one
// tiny sweep through it end to end with the jobs client, and shuts it
// down with context cancellation.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- runCtx(ctx, []string{"-listen", "127.0.0.1:0", "-store", t.TempDir(),
			"-log-level", "debug"}, &out, &errb)
	}()

	// Parse the announced address from stdout.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := servingLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no serving line on stdout:\n%s\n%s", out.String(), errb.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := jobs.WaitHealthy(ctx, base, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	client := jobs.NewClient(base)
	var res []jobs.CellResult
	st, err := client.Run(ctx, jobs.JobRequest{Cells: []jobs.CellSpec{{
		Machine:   config.Big216(),
		Features:  config.SMT,
		Workloads: []string{"compress"},
		Insts:     1_000,
	}}}, func(r jobs.CellResult) error { res = append(res, r); return nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.State != "done" || st.Computes != 1 {
		t.Errorf("status %+v, want done with 1 compute", st)
	}
	if len(res) != 1 || res[0].Error != "" || res[0].Stats == nil || res[0].Stats.Committed == 0 {
		t.Errorf("results %+v", res)
	}

	// The daemon mounts the trace endpoint: the job's Chrome trace is
	// valid JSON carrying its cell span.
	raw, err := client.FetchTrace(ctx, st.ID)
	if err != nil {
		t.Fatalf("FetchTrace: %v", err)
	}
	var traceDoc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &traceDoc); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	var sawCell bool
	for _, ev := range traceDoc.TraceEvents {
		sawCell = sawCell || ev.Name == "cell"
	}
	if !sawCell {
		t.Errorf("trace export has no cell span:\n%s", raw)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit %d on clean shutdown, want 0\nstderr: %s", code, errb.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(errb.String(), "shutting down") {
		t.Errorf("no shutdown line on stderr: %s", errb.String())
	}

	// Stdout stays a single handshake line; every stderr diagnostic is
	// one structured JSON record carrying the IDs it is about.
	if lines := strings.Count(strings.TrimSpace(out.String()), "\n"); lines != 0 {
		t.Errorf("stdout has %d extra lines beyond the handshake:\n%s", lines, out.String())
	}
	var sawSubmit, sawDone bool
	for _, line := range strings.Split(strings.TrimSpace(errb.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("stderr line is not JSON: %q", line)
			continue
		}
		switch rec["msg"] {
		case "job submitted":
			sawSubmit = rec["job"] == st.ID && rec["trace"] == st.Trace
		case "job done":
			sawDone = rec["job"] == st.ID
		}
	}
	if !sawSubmit || !sawDone {
		t.Errorf("missing job lifecycle records (submitted=%v done=%v):\n%s",
			sawSubmit, sawDone, errb.String())
	}
}
