// Command recycled is the simulation-as-a-service daemon: it serves
// the HTTP/JSON job API (internal/jobs) over a durable
// content-addressed result store (internal/store), alongside the
// observability endpoints, all on one listener:
//
//	POST /jobs               submit a sweep (JSON cell list)
//	GET  /jobs/{id}          job status document
//	GET  /jobs/{id}/results  NDJSON per-cell result stream
//	GET  /jobs/{id}/trace    request trace (Chrome trace_event JSON)
//	GET  /storestats         store hit/compute/corruption counters
//	POST /fleet/...          worker protocol (register/lease/heartbeat/
//	                         complete/deregister; cmd/recycleworker)
//	GET  /fleet/workers      registered worker listing
//	GET  /metrics /progress /healthz /buildinfo /debug/pprof/...
//
// With -token the job API requires a client bearer token (with
// optional per-client in-flight cell quotas and request rate limits;
// violations get typed 401/429 JSON errors), and with -worker-token
// the fleet API requires a worker bearer token.  Worker processes
// (cmd/recycleworker) pull cells under time-bounded leases; a worker
// that dies or stalls has its cells requeued automatically, and with
// no workers attached every cell computes in-process — same results
// either way, byte for byte.
//
// Every result is keyed by the cell's full content (machine, features,
// workloads, budget, sampling schedule and confidence), written to the
// store durably, and deduplicated in flight, so overlapping sweeps from
// any number of clients simulate each distinct cell exactly once —
// including across restarts.  Results are byte-identical to a direct
// library run of the same cell.
//
// Stdout carries exactly one machine-readable handshake line; all
// diagnostics are structured JSON records (log/slog) on stderr, each
// carrying the job/trace/cell IDs involved, filtered by -log-level.
//
// Exit status is 0 on clean shutdown (SIGINT/SIGTERM) and 2 on bad
// flags or a listener/store that cannot be opened.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"time"

	"recyclesim/internal/fleet"
	"recyclesim/internal/jobs"
	"recyclesim/internal/obs/server"
	"recyclesim/internal/store"
	"recyclesim/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("recycled", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":8347", "address to serve the job and observability API on (\":0\" for an ephemeral port)")
	storeDir := fs.String("store", "", "directory for the durable result store (required; created if missing)")
	workers := fs.Int("workers", 0, "per-job cell parallelism (0 = GOMAXPROCS)")
	retries := fs.Int("retries", 0, "extra attempts a failed cell gets before its error is recorded")
	retryDelay := fs.Duration("retry-delay", 250*time.Millisecond, "base delay of the capped exponential backoff between cell retries (0 = retry immediately)")
	retryDelayMax := fs.Duration("retry-delay-max", 10*time.Second, "backoff delay cap")
	token := fs.String("token", "", "bearer token(s) clients must present on the job API, comma-separated (empty = open)")
	workerToken := fs.String("worker-token", "", "bearer token workers must present on the fleet API (empty = open)")
	maxInflight := fs.Int("max-inflight-cells", 0, "per-client in-flight cell quota (0 = unlimited)")
	rateLimit := fs.Float64("rate-limit", 0, "per-client job-API requests per second (0 = unlimited)")
	rateBurst := fs.Int("rate-burst", 0, "rate-limit burst size (0 = ceil of -rate-limit)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "worker lease TTL (heartbeats renew it; an expired lease requeues its cell)")
	logLevel := fs.String("log-level", "info", "minimum level for the JSON logs on stderr (debug, info, warn, error)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "recycled: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(stderr, "recycled: -store is required")
		fs.Usage()
		return 2
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(stderr, "recycled: -log-level: %v\n", err)
		return 2
	}
	log := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level}))

	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(stderr, "recycled: -store: %v\n", err)
		return 2
	}

	prog := &sweep.Progress{}
	obsSrv := server.New(prog)

	// The fleet dispatcher always runs: with no workers attached it
	// degrades to in-process compute through the same canonical
	// executor, so attaching workers later changes throughput, never
	// results.
	disp := fleet.NewDispatcher(fleet.Config{
		LeaseTTL:      *leaseTTL,
		Retries:       *retries,
		RetryDelay:    *retryDelay,
		RetryDelayMax: *retryDelayMax,
		Log:           log,
	})
	disp.StartReaper(ctx, 0)

	var auth *jobs.AuthConfig
	if *token != "" || *maxInflight > 0 || *rateLimit > 0 {
		auth = &jobs.AuthConfig{
			MaxInFlightCells: *maxInflight,
			RatePerSec:       *rateLimit,
			Burst:            *rateBurst,
		}
		if *token != "" {
			for _, tok := range strings.Split(*token, ",") {
				if tok = strings.TrimSpace(tok); tok != "" {
					auth.Tokens = append(auth.Tokens, tok)
				}
			}
		}
	}

	js := jobs.NewServer(ctx, st, jobs.Config{
		Workers:       *workers,
		Retries:       *retries,
		RetryDelay:    *retryDelay,
		RetryDelayMax: *retryDelayMax,
		Fleet:         disp,
		Auth:          auth,
		Progress:      prog,
		Publish:       obsSrv.Publish,
		Log:           log,
	})
	js.Register(obsSrv)
	disp.Register(obsSrv, *workerToken)
	obsSrv.AppendMetrics(js.WriteServiceMetrics)
	obsSrv.AppendMetrics(disp.WriteMetrics)
	if err := obsSrv.Start(*listen); err != nil {
		fmt.Fprintf(stderr, "recycled: -listen: %v\n", err)
		return 2
	}
	defer obsSrv.Close()

	// The serving line is the machine-readable handshake: tests and
	// scripts parse the address out of it (required with -listen :0).
	fmt.Fprintf(stdout, "recycled: serving on http://%s (store %s)\n", obsSrv.Addr(), *storeDir)
	log.Info("recycled serving", "addr", obsSrv.Addr(), "store", *storeDir,
		"workers", *workers, "retries", *retries,
		"auth", auth != nil, "worker_auth", *workerToken != "", "lease_ttl", leaseTTL.String())

	<-ctx.Done()
	log.Info("recycled shutting down")
	return 0
}
