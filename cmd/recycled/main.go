// Command recycled is the simulation-as-a-service daemon: it serves
// the HTTP/JSON job API (internal/jobs) over a durable
// content-addressed result store (internal/store), alongside the
// observability endpoints, all on one listener:
//
//	POST /jobs               submit a sweep (JSON cell list)
//	GET  /jobs/{id}          job status document
//	GET  /jobs/{id}/results  NDJSON per-cell result stream
//	GET  /jobs/{id}/trace    request trace (Chrome trace_event JSON)
//	GET  /storestats         store hit/compute/corruption counters
//	GET  /metrics /progress /healthz /buildinfo /debug/pprof/...
//
// Every result is keyed by the cell's full content (machine, features,
// workloads, budget, sampling schedule and confidence), written to the
// store durably, and deduplicated in flight, so overlapping sweeps from
// any number of clients simulate each distinct cell exactly once —
// including across restarts.  Results are byte-identical to a direct
// library run of the same cell.
//
// Stdout carries exactly one machine-readable handshake line; all
// diagnostics are structured JSON records (log/slog) on stderr, each
// carrying the job/trace/cell IDs involved, filtered by -log-level.
//
// Exit status is 0 on clean shutdown (SIGINT/SIGTERM) and 2 on bad
// flags or a listener/store that cannot be opened.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"recyclesim/internal/jobs"
	"recyclesim/internal/obs/server"
	"recyclesim/internal/store"
	"recyclesim/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("recycled", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":8347", "address to serve the job and observability API on (\":0\" for an ephemeral port)")
	storeDir := fs.String("store", "", "directory for the durable result store (required; created if missing)")
	workers := fs.Int("workers", 0, "per-job cell parallelism (0 = GOMAXPROCS)")
	retries := fs.Int("retries", 0, "extra attempts a failed cell gets before its error is recorded")
	logLevel := fs.String("log-level", "info", "minimum level for the JSON logs on stderr (debug, info, warn, error)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "recycled: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *storeDir == "" {
		fmt.Fprintln(stderr, "recycled: -store is required")
		fs.Usage()
		return 2
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(stderr, "recycled: -log-level: %v\n", err)
		return 2
	}
	log := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level}))

	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(stderr, "recycled: -store: %v\n", err)
		return 2
	}

	prog := &sweep.Progress{}
	obsSrv := server.New(prog)
	js := jobs.NewServer(ctx, st, jobs.Config{
		Workers:  *workers,
		Retries:  *retries,
		Progress: prog,
		Publish:  obsSrv.Publish,
		Log:      log,
	})
	js.Register(obsSrv)
	obsSrv.AppendMetrics(js.WriteServiceMetrics)
	if err := obsSrv.Start(*listen); err != nil {
		fmt.Fprintf(stderr, "recycled: -listen: %v\n", err)
		return 2
	}
	defer obsSrv.Close()

	// The serving line is the machine-readable handshake: tests and
	// scripts parse the address out of it (required with -listen :0).
	fmt.Fprintf(stdout, "recycled: serving on http://%s (store %s)\n", obsSrv.Addr(), *storeDir)
	log.Info("recycled serving", "addr", obsSrv.Addr(), "store", *storeDir,
		"workers", *workers, "retries", *retries)

	<-ctx.Done()
	log.Info("recycled shutting down")
	return 0
}
