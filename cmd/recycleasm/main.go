// Command recycleasm assembles a .ras source file and prints a listing
// (PC, encoded form, disassembly) plus the data segment, or runs the
// program on the golden emulator with -run.
//
//	recycleasm prog.ras
//	recycleasm -run -steps 10000 prog.ras
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"recyclesim/internal/asm"
	"recyclesim/internal/emu"
	"recyclesim/internal/isa"
)

func main() {
	run := flag.Bool("run", false, "execute on the functional emulator after assembling")
	steps := flag.Uint64("steps", 100_000, "emulator step budget with -run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: recycleasm [-run] [-steps n] file.ras")
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Invert the label table for the listing.
	byAddr := map[uint64][]string{}
	for name, addr := range prog.Labels {
		byAddr[addr] = append(byAddr[addr], name)
	}
	for _, names := range byAddr {
		sort.Strings(names)
	}

	fmt.Printf("; %s — %d instructions, %d data words\n",
		prog.Name, len(prog.Code), len(prog.Data))
	for i, in := range prog.Code {
		pc := prog.Entry + uint64(i*isa.InstBytes)
		for _, l := range byAddr[pc] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("  0x%04x  %v\n", pc, in)
	}

	if len(prog.Data) > 0 {
		fmt.Println("\n; data")
		addrs := make([]uint64, 0, len(prog.Data))
		for a := range prog.Data {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		shown := 0
		for _, a := range addrs {
			for _, l := range byAddr[a] {
				fmt.Printf("%s:\n", l)
			}
			fmt.Printf("  0x%06x  %d\n", a, prog.Data[a])
			if shown++; shown >= 32 {
				fmt.Printf("  ... (%d more words)\n", len(addrs)-shown)
				break
			}
		}
	}

	if *run {
		e := emu.New(prog)
		n := e.Run(*steps)
		fmt.Printf("\n; ran %d instructions, halted=%v, pc=0x%x\n", n, e.Halted, e.PC)
		for r := 1; r < 16; r++ {
			if e.Regs[r] != 0 {
				fmt.Printf(";   r%-2d = %d\n", r, int64(e.Regs[r]))
			}
		}
	}
}
