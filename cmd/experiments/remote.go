package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"recyclesim"
	"recyclesim/internal/config"
	"recyclesim/internal/jobs"
	"recyclesim/internal/obs"
	"recyclesim/internal/stats"
)

// computeRemote is computeAll for -remote mode: every collected cell is
// submitted as one sweep to a recycled job server, and the streamed
// results land in the same memoized slots the replay pass reads, so
// stdout is byte-identical to a local run.  The server computes with
// the same budgets and policies as runSim (40x cycle budget, sampled
// cells at Workers 1), keys every cell by content, and serves repeats
// from its durable store — so a rerun of the same figure costs zero
// simulation.  Fault containment is per cell, like -keep-going: a
// failed cell comes back as an error record and prints as zeros while
// the rest of the sweep completes.
// traceOut, when non-empty, saves the job's Chrome trace_event JSON
// there after the sweep; the trace URL prints on stderr either way.
// token, when non-empty, authenticates against a server running with
// -token.
func computeRemote(ctx context.Context, r *runner, baseURL, token, traceOut string, stderr io.Writer) error {
	r.results = make([]*stats.Sim, len(r.jobs))
	r.metrics = make([]*obs.Metrics, len(r.jobs))
	r.errs = make([]error, len(r.jobs))
	r.resultsSamp = make([]*recyclesim.SampledResult, len(r.jobsSamp))
	r.errsSamp = make([]error, len(r.jobsSamp))

	specs := make([]jobs.CellSpec, 0, len(r.jobs)+len(r.jobsSamp))
	for _, j := range r.jobs {
		specs = append(specs, jobs.CellSpec{
			Machine:   j.mach,
			Features:  j.feat,
			Workloads: j.names,
			Insts:     j.insts,
		})
	}
	// The sampling schedule travels raw (zeros meaning defaults), exactly
	// as the local path hands it to RunSampledContext.
	var samp *jobs.SamplingSpec
	if len(r.jobsSamp) > 0 {
		samp = &jobs.SamplingSpec{
			Period:      r.sampling.Period,
			IntervalLen: r.sampling.IntervalLen,
			WarmupLen:   r.sampling.WarmupLen,
			Confidence:  r.sampling.Confidence,
		}
	}
	for _, j := range r.jobsSamp {
		specs = append(specs, jobs.CellSpec{
			Machine:   j.mach,
			Features:  j.feat,
			Workloads: j.names,
			Insts:     j.insts,
			Sampling:  samp,
		})
	}
	if r.prog != nil {
		r.prog.SetTotal(len(specs))
	}

	n := len(r.jobs)
	client := jobs.NewClient(baseURL)
	client.Token = token
	st, err := client.Run(ctx, jobs.JobRequest{Cells: specs}, func(res jobs.CellResult) error {
		i := res.Index
		switch {
		case i < 0 || i >= len(specs):
			return fmt.Errorf("server sent cell index %d of %d", i, len(specs))
		case i < n:
			j := r.jobs[i]
			if res.Error != "" {
				r.errs[i] = errors.New(res.Error)
				r.results[i], r.metrics[i] = &stats.Sim{}, &obs.Metrics{}
			} else {
				r.results[i], r.metrics[i] = res.Stats, res.Metrics
				if r.results[i] == nil {
					r.results[i] = &stats.Sim{}
				}
				if r.metrics[i] == nil {
					r.metrics[i] = &obs.Metrics{}
				}
				if r.publish != nil {
					r.publish(r.results[i], r.metrics[i])
				}
			}
			if r.prog != nil {
				r.prog.StartCell(j.mach.Name + "/" + config.FeatureName(j.feat) + "/" + strings.Join(j.names, "+"))
				r.prog.FinishCell(r.results[i].Committed)
			}
		default:
			j := r.jobsSamp[i-n]
			if res.Error != "" {
				r.errsSamp[i-n] = errors.New(res.Error)
				r.resultsSamp[i-n] = &recyclesim.SampledResult{}
			} else {
				r.resultsSamp[i-n] = res.Sampled
				if r.resultsSamp[i-n] == nil {
					r.resultsSamp[i-n] = &recyclesim.SampledResult{}
				}
			}
			if r.prog != nil {
				r.prog.StartCell("sampled/" + j.mach.Name + "/" + config.FeatureName(j.feat) + "/" + strings.Join(j.names, "+"))
				r.prog.FinishCell(r.resultsSamp[i-n].MeasuredInsts)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	r.nComputed.Store(int64(st.Computes))
	r.nRestored.Store(int64(st.Hits))
	// One accounting line on stderr (stdout must stay byte-identical to
	// a local run); a rerun of an unchanged sweep shows computes=0.
	fmt.Fprintf(stderr, "experiments: remote: job=%s cells=%d hits=%d computes=%d failed=%d\n",
		st.ID, st.Cells, st.Hits, st.Computes, st.Failed)
	fmt.Fprintf(stderr, "experiments: remote: trace %s/jobs/%s/trace\n", baseURL, st.ID)
	if traceOut != "" {
		raw, err := client.FetchTrace(ctx, st.ID)
		if err != nil {
			return fmt.Errorf("fetch trace: %w", err)
		}
		if err := os.WriteFile(traceOut, raw, 0o644); err != nil {
			return fmt.Errorf("save trace: %w", err)
		}
		fmt.Fprintf(stderr, "experiments: remote: trace saved to %s\n", traceOut)
	}
	r.collect = false
	return nil
}
