package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"recyclesim"
	"recyclesim/internal/obs"
	"recyclesim/internal/stats"
)

// cellRecord is one completed simulation cell as persisted in the
// checkpoint file: the cell's identity key plus its full statistics
// and (when telemetry was collected) metrics.  Sampled cells persist
// the whole estimate instead (Go's JSON encoder emits the shortest
// float64 representation that round-trips exactly), and their keys
// carry the sampling schedule, so sampled and full cells of the same
// configuration never collide in the journal.  A resumed sweep's
// output stays byte-identical to an uninterrupted one.
type cellRecord struct {
	Key     string                    `json:"key"`
	Stats   *stats.Sim                `json:"stats,omitempty"`
	Metrics *obs.Metrics              `json:"metrics,omitempty"`
	Sampled *recyclesim.SampledResult `json:"sampled,omitempty"`
}

// checkpoint is an append-only JSONL journal of completed cells.  Load
// reads whatever a previous (possibly interrupted) sweep finished;
// record appends one line per fresh completion under a mutex, so the
// worker pool can write concurrently and a kill at any byte boundary
// loses at most the final partial line, which load skips.
type checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]cellRecord
}

// loadCheckpoint opens (creating if needed) the journal at path and
// indexes its completed cells.  Unparseable lines other than a
// truncated final line are reported as errors: a corrupt journal
// silently treated as empty would rerun cells and then append
// duplicates.
func loadCheckpoint(path string) (*checkpoint, error) {
	cp := &checkpoint{done: make(map[string]cellRecord)}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return nil, err
	default:
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var rec cellRecord
			if jerr := json.Unmarshal([]byte(line), &rec); jerr != nil {
				if i == len(lines)-1 {
					// Torn final line from an interrupted append.
					break
				}
				return nil, fmt.Errorf("%s:%d: %v", path, i+1, jerr)
			}
			if rec.Key == "" || (rec.Stats == nil && rec.Sampled == nil) {
				return nil, fmt.Errorf("%s:%d: record missing key or payload", path, i+1)
			}
			cp.done[rec.Key] = rec
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cp.f = f
	return cp, nil
}

// lookup returns the persisted record for a cell key, if any.
func (cp *checkpoint) lookup(key string) (cellRecord, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	rec, ok := cp.done[key]
	return rec, ok
}

// resumed reports how many cells the journal already held at load.
func (cp *checkpoint) resumed() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.done)
}

// record journals one freshly completed cell.  Append errors are
// returned, not fatal: the sweep's in-memory results are unaffected,
// only resumability of this cell is lost.
func (cp *checkpoint) record(key string, s *stats.Sim, m *obs.Metrics) error {
	rec := cellRecord{Key: key, Stats: s, Metrics: m}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.done[key] = rec
	_, err = cp.f.Write(append(line, '\n'))
	return err
}

// recordSampled journals one freshly completed sampled cell.
func (cp *checkpoint) recordSampled(key string, res *recyclesim.SampledResult) error {
	rec := cellRecord{Key: key, Sampled: res}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.done[key] = rec
	_, err = cp.f.Write(append(line, '\n'))
	return err
}

func (cp *checkpoint) Close() error { return cp.f.Close() }
