package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recyclesim/internal/jobs"
	"recyclesim/internal/store"
)

// startService boots an in-process recycled job service for -remote
// tests and returns its base URL.
func startService(t *testing.T, dir string) string {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := jobs.NewServer(context.Background(), st, jobs.Config{})
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRemoteMatchesLocalStdout is the -remote acceptance witness: the
// same figure run locally and through a recycled server produces
// byte-identical stdout, the first remote run computes every cell, and
// a rerun is served entirely from the store.
func TestRemoteMatchesLocalStdout(t *testing.T) {
	base := startService(t, t.TempDir())
	args := []string{"-fig", "3", "-insts", "1000"}

	var local, localErr bytes.Buffer
	if code := run(args, &local, &localErr); code != 0 {
		t.Fatalf("local run exit %d: %s", code, localErr.String())
	}

	var rem1, rem1Err bytes.Buffer
	if code := run(append(args, "-remote", base), &rem1, &rem1Err); code != 0 {
		t.Fatalf("first remote run exit %d: %s", code, rem1Err.String())
	}
	if !bytes.Equal(local.Bytes(), rem1.Bytes()) {
		t.Errorf("remote stdout differs from local:\nlocal:\n%s\nremote:\n%s", local.String(), rem1.String())
	}
	if s := rem1Err.String(); !strings.Contains(s, "hits=0 ") {
		t.Errorf("first remote run should have zero hits, stderr: %s", s)
	}
	if s := rem1Err.String(); !strings.Contains(s, "remote: job=") {
		t.Errorf("accounting line should carry the job id, stderr: %s", s)
	}
	if s := rem1Err.String(); !strings.Contains(s, "remote: trace "+base+"/jobs/") {
		t.Errorf("stderr should print the trace URL, stderr: %s", s)
	}

	var rem2, rem2Err bytes.Buffer
	if code := run(append(args, "-remote", base), &rem2, &rem2Err); code != 0 {
		t.Fatalf("second remote run exit %d: %s", code, rem2Err.String())
	}
	if !bytes.Equal(local.Bytes(), rem2.Bytes()) {
		t.Error("second remote run stdout differs from local")
	}
	if s := rem2Err.String(); !strings.Contains(s, "computes=0 ") {
		t.Errorf("second remote run should be all store hits, stderr: %s", s)
	}
}

// TestRemoteMatchesLocalSampled covers the sampled path end to end: a
// non-default schedule and confidence survive the trip through the
// service (the bounds depend on both) and replay byte-identically.
func TestRemoteMatchesLocalSampled(t *testing.T) {
	base := startService(t, t.TempDir())
	args := []string{"-sampled", "-insts", "4000",
		"-sample-period", "2000", "-sample-interval", "200", "-sample-warmup", "200",
		"-confidence", "0.99"}

	var local, localErr bytes.Buffer
	if code := run(args, &local, &localErr); code != 0 {
		t.Fatalf("local run exit %d: %s", code, localErr.String())
	}
	var rem, remErr bytes.Buffer
	if code := run(append(args, "-remote", base), &rem, &remErr); code != 0 {
		t.Fatalf("remote run exit %d: %s", code, remErr.String())
	}
	if !bytes.Equal(local.Bytes(), rem.Bytes()) {
		t.Errorf("sampled remote stdout differs from local:\nlocal:\n%s\nremote:\n%s", local.String(), rem.String())
	}
}

// TestRemoteTraceOut: -trace-out saves the job's request trace as
// Chrome trace_event JSON that a trace viewer would accept — complete
// spans ("X" events) including one per cell.
func TestRemoteTraceOut(t *testing.T) {
	base := startService(t, t.TempDir())
	out := filepath.Join(t.TempDir(), "sweep.trace.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-fig", "3", "-insts", "1000", "-remote", base, "-trace-out", out}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "trace saved to "+out) {
		t.Errorf("stderr missing save confirmation: %s", stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("saved trace is not JSON: %v", err)
	}
	var cells int
	for _, ev := range doc.TraceEvents {
		if ev.Name == "cell" && ev.Phase == "X" {
			cells++
		}
	}
	if cells == 0 {
		t.Errorf("saved trace has no completed cell spans:\n%s", raw)
	}
}

// TestRemoteFlagConflicts: the client-side journal and crash capture
// stay local-only concerns, and -trace-out is meaningless without a
// service to trace.
func TestRemoteFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	for _, extra := range [][]string{
		{"-checkpoint", filepath.Join(dir, "cells.journal")},
		{"-crash-dir", dir},
	} {
		var out, errb bytes.Buffer
		args := append([]string{"-fig", "3", "-remote", "http://127.0.0.1:1"}, extra...)
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%q) exit %d, want 2; stderr: %s", args, code, errb.String())
		}
		if !strings.Contains(errb.String(), "mutually exclusive") {
			t.Errorf("run(%q) stderr %q, want mutual-exclusion message", args, errb.String())
		}
	}

	var out, errb bytes.Buffer
	args := []string{"-fig", "3", "-trace-out", filepath.Join(dir, "t.json")}
	if code := run(args, &out, &errb); code != 2 {
		t.Errorf("run(%q) exit %d, want 2; stderr: %s", args, code, errb.String())
	}
	if !strings.Contains(errb.String(), "-trace-out requires -remote") {
		t.Errorf("run(%q) stderr %q, want -trace-out conflict message", args, errb.String())
	}
}

// TestRemoteUnreachableServer fails fast with exit 2 and a diagnostic.
func TestRemoteUnreachableServer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fig", "3", "-insts", "1000", "-remote", "http://127.0.0.1:1"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-remote:") {
		t.Errorf("stderr %q, want -remote diagnostic", errb.String())
	}
}
