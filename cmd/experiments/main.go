// Command experiments regenerates every table and figure of the
// paper's evaluation section on the simulator:
//
//	experiments -fig 3     per-benchmark IPC, six architectures
//	experiments -fig 4     average IPC for 1/2/4 programs
//	experiments -table 1   recycling statistics
//	experiments -fig 5     recycling fetch limits (stop/fetch/nostop x 8/16/32)
//	experiments -fig 6     machine sweep (small/big x 1.8/2.8/2.16)
//	experiments -all       everything
//
// Exit status is 0 on success and 2 on bad flags or figure/table
// numbers the paper does not have.
//
// The independent simulation cells behind the figures run concurrently
// on a worker pool (-workers, default GOMAXPROCS); each cell is the
// same single-threaded deterministic run a serial loop would perform,
// results are assembled in input order, and duplicate cells shared
// between figures are computed once, so the output is byte-identical
// to the old serial harness.
//
// Absolute IPC differs from the paper (synthetic workloads, not Alpha
// SPEC95 binaries); the comparisons between configurations are the
// reproduced result.  See EXPERIMENTS.md for the side-by-side reading.
package main

import (
	"cmp"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recyclesim"
	"recyclesim/internal/config"
	"recyclesim/internal/obs"
	"recyclesim/internal/obs/server"
	"recyclesim/internal/stats"
	"recyclesim/internal/sweep"
	"recyclesim/internal/workload"
)

func main() {
	// SIGINT cancels the sweep cooperatively: in-flight cells stop at
	// their next poll, completed cells stay journaled in -checkpoint,
	// and the harness flushes whatever finished before exiting nonzero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	return runCtx(context.Background(), args, stdout, stderr)
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure number to regenerate (3, 4, 5, 6)")
	table := fs.Int("table", 0, "table number to regenerate (1)")
	all := fs.Bool("all", false, "regenerate everything")
	insts := fs.Uint64("insts", 300_000, "committed-instruction budget per run")
	workers := fs.Int("workers", 0, "simulations to run concurrently (0 = GOMAXPROCS)")
	sampled := fs.Bool("sampled", false, "also regenerate the per-benchmark IPC sweep in sampled mode, with confidence-interval columns")
	samplePeriod := fs.Uint64("sample-period", 0, "sampled mode: period P in instructions (0 = default 20000)")
	sampleInterval := fs.Uint64("sample-interval", 0, "sampled mode: measured instructions per interval L (0 = default 1000)")
	sampleWarmup := fs.Uint64("sample-warmup", 0, "sampled mode: detached-warmup length W per interval (0 = default 1000)")
	confidence := fs.Float64("confidence", 0, "sampled mode: Student-t confidence level for the IPC interval (0.90/0.95/0.99; 0 = default 0.95)")
	metrics := fs.String("metrics", "", "write an aggregate JSON telemetry snapshot over all cells to this file (\"-\" for stdout)")
	progress := fs.Bool("progress", false, "print a single-line in-place progress meter to stderr")
	obsListen := fs.String("obs-listen", "", "serve /metrics, /progress, /healthz and pprof on this address during the sweep (e.g. \":0\")")
	keepGoing := fs.Bool("keep-going", false, "keep computing remaining cells after a cell fails (failed cells print as zeros; exit stays nonzero)")
	checkpointPath := fs.String("checkpoint", "", "journal completed cells to this file and resume from it, skipping cells it already holds")
	remote := fs.String("remote", "", "run the sweep on a recycled job server at this base URL instead of simulating locally (failed cells print as zeros, like -keep-going)")
	remoteToken := fs.String("remote-token", "", "bearer token for the job server (required when recycled runs with -token)")
	traceOut := fs.String("trace-out", "", "save the remote job's request trace (Chrome trace_event JSON, for Perfetto) to this file (requires -remote)")
	crashDir := fs.String("crash-dir", "", "persist a crash bundle here for any cell that panics or livelocks")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "experiments: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	switch *fig {
	case 0, 3, 4, 5, 6:
	default:
		fmt.Fprintf(stderr, "experiments: no figure %d in the paper (have 3, 4, 5, 6)\n", *fig)
		return 2
	}
	switch *table {
	case 0, 1:
	default:
		fmt.Fprintf(stderr, "experiments: no table %d in the paper (have 1)\n", *table)
		return 2
	}
	if !*all && *fig == 0 && *table == 0 && !*sampled {
		fs.Usage()
		return 2
	}
	if *remote != "" && *checkpointPath != "" {
		fmt.Fprintln(stderr, "experiments: -remote and -checkpoint are mutually exclusive (the server's durable store already journals every cell)")
		return 2
	}
	if *remote != "" && *crashDir != "" {
		fmt.Fprintln(stderr, "experiments: -remote and -crash-dir are mutually exclusive (cells run on the server, so crash bundles would land there)")
		return 2
	}
	if *traceOut != "" && *remote == "" {
		fmt.Fprintln(stderr, "experiments: -trace-out requires -remote (only service sweeps are traced)")
		return 2
	}
	if *remoteToken != "" && *remote == "" {
		fmt.Fprintln(stderr, "experiments: -remote-token requires -remote")
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	sections := []struct {
		want  bool
		print func(w io.Writer, r *runner)
	}{
		{*all || *fig == 3, func(w io.Writer, r *runner) { figure3(w, r, *insts) }},
		{*all || *fig == 4, func(w io.Writer, r *runner) { figure4(w, r, *insts) }},
		{*all || *table == 1, func(w io.Writer, r *runner) { table1(w, r, *insts) }},
		{*all || *fig == 5, func(w io.Writer, r *runner) { figure5(w, r, *insts) }},
		{*all || *fig == 6, func(w io.Writer, r *runner) { figure6(w, r, *insts) }},
		// Sampled sweeps are opt-in even under -all: the detailed figures
		// are the paper's evaluation; the sampled sweep is the estimator's
		// own report.
		{*sampled, func(w io.Writer, r *runner) { figure3Sampled(w, r, *insts) }},
	}

	// Pass 1: dry-run the print functions against io.Discard to collect
	// the distinct simulation cells they need.
	r := newRunner()
	r.withMetrics = *metrics != ""
	r.keepGoing = *keepGoing
	r.crashDir = *crashDir
	r.sampling = recyclesim.Sampling{
		Period:      *samplePeriod,
		IntervalLen: *sampleInterval,
		WarmupLen:   *sampleWarmup,
		Confidence:  *confidence,
	}
	for _, s := range sections {
		if s.want {
			s.print(io.Discard, r)
		}
	}
	if *checkpointPath != "" {
		cp, err := loadCheckpoint(*checkpointPath)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: -checkpoint: %v\n", err)
			return 2
		}
		defer cp.Close()
		r.cp = cp
		if n := cp.resumed(); n > 0 {
			fmt.Fprintf(stderr, "experiments: resuming from %s (%d completed cell(s) on file)\n",
				*checkpointPath, n)
		}
	}

	// Live observation (all writes go to stderr or the HTTP listener,
	// so stdout stays byte-identical with or without it).
	if *progress || *obsListen != "" {
		r.prog = &sweep.Progress{}
	}
	if *obsListen != "" {
		srv := server.New(r.prog)
		if err := srv.Start(*obsListen); err != nil {
			fmt.Fprintf(stderr, "experiments: -obs-listen: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "experiments: observability server on http://%s\n", srv.Addr())
		agg := &aggregator{}
		r.publish = func(s *stats.Sim, m *obs.Metrics) { srv.Publish(agg.add(s, m)) }
	}

	// Pass 2: compute every cell once — on the local worker pool, or on
	// a recycled job server when -remote is set.
	var remoteErr error
	compute := func() { r.computeAll(ctx, *workers) }
	if *remote != "" {
		compute = func() { remoteErr = computeRemote(ctx, r, *remote, *remoteToken, *traceOut, stderr) }
	}
	if *progress {
		runWithMeter(stderr, r, compute)
	} else {
		compute()
	}
	if remoteErr != nil {
		fmt.Fprintf(stderr, "experiments: -remote: %v\n", remoteErr)
		return 2
	}

	// Pass 3: re-run the print functions for real, replaying memoized
	// results, so the output is exactly what the serial harness printed.
	for _, s := range sections {
		if s.want {
			s.print(stdout, r)
		}
	}

	if *metrics != "" {
		if err := writeMetrics(*metrics, stdout, r); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 2
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 2
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 2
		}
	}

	// Fault summary goes to stderr so stdout stays byte-identical to a
	// clean sweep (failed cells printed as zeros above).
	exit := 0
	if failed := r.failedCells(); len(failed) > 0 {
		exit = 1
		fmt.Fprintf(stderr, "experiments: %d of %d cell(s) failed:\n", len(failed), len(r.jobs)+len(r.jobsSamp))
		for _, line := range failed {
			fmt.Fprintf(stderr, "  %s\n", line)
		}
	}
	if ctx.Err() != nil {
		exit = 1
		fmt.Fprintln(stderr, "experiments: interrupted; results above cover completed cells only")
		if r.cp != nil {
			fmt.Fprintln(stderr, "experiments: completed cells are journaled; rerun with the same -checkpoint to resume")
		}
	}
	return exit
}

// simKey identifies one simulation cell.  config.Features is a flat
// comparable struct, so the key can embed it directly.
type simKey struct {
	mach  string
	feat  config.Features
	names string
	insts uint64
}

// simJob carries the inputs needed to execute a cell.
type simJob struct {
	mach  config.Machine
	feat  config.Features
	names []string
	insts uint64
}

// runner memoizes simulation cells across a collect pass and a replay
// pass.  In collect mode sim() records the cell and returns a zero
// result (the caller is printing to io.Discard); after computeAll,
// sim() replays the memoized result.
type runner struct {
	collect     bool
	withMetrics bool
	keepGoing   bool
	crashDir    string
	cp          *checkpoint
	seen        map[simKey]int
	jobs        []simJob
	results     []*stats.Sim
	metrics     []*obs.Metrics
	errs        []error

	// Sampled cells are memoized separately: same identity space plus
	// the sampling schedule (fixed per invocation, carried in sampling).
	sampling    recyclesim.Sampling
	seenSamp    map[simKey]int
	jobsSamp    []simJob
	resultsSamp []*recyclesim.SampledResult
	errsSamp    []error

	// nComputed/nRestored split the completed cells for the meter's
	// final accounting line: simulated here versus served from the
	// checkpoint journal (local) or the server's store (remote).
	nComputed atomic.Int64
	nRestored atomic.Int64

	// prog, when non-nil, receives per-cell progress from the workers
	// (feeding both the -progress meter and the /progress endpoint).
	prog *sweep.Progress
	// publish, when non-nil, is called by each worker with its finished
	// cell (feeding the /metrics endpoint).  Must be safe for
	// concurrent use.
	publish func(*stats.Sim, *obs.Metrics)
}

func newRunner() *runner {
	return &runner{collect: true, seen: make(map[simKey]int), seenSamp: make(map[simKey]int)}
}

func (r *runner) sim(mach config.Machine, feat config.Features, names []string, insts uint64) *stats.Sim {
	k := simKey{mach: mach.Name, feat: feat, names: strings.Join(names, "+"), insts: insts}
	i, ok := r.seen[k]
	if r.collect {
		if !ok {
			r.seen[k] = len(r.jobs)
			r.jobs = append(r.jobs, simJob{mach: mach, feat: feat, names: names, insts: insts})
		}
		return &stats.Sim{}
	}
	if !ok {
		panic(fmt.Sprintf("experiments: cell %+v not collected", k))
	}
	return r.results[i]
}

// simSampled is sim() for sampled cells: collect mode records the cell
// and returns a zero estimate, replay mode returns the memoized result.
func (r *runner) simSampled(mach config.Machine, feat config.Features, names []string, insts uint64) *recyclesim.SampledResult {
	k := simKey{mach: mach.Name, feat: feat, names: strings.Join(names, "+"), insts: insts}
	i, ok := r.seenSamp[k]
	if r.collect {
		if !ok {
			r.seenSamp[k] = len(r.jobsSamp)
			r.jobsSamp = append(r.jobsSamp, simJob{mach: mach, feat: feat, names: names, insts: insts})
		}
		return &recyclesim.SampledResult{}
	}
	if !ok {
		panic(fmt.Sprintf("experiments: sampled cell %+v not collected", k))
	}
	return r.resultsSamp[i]
}

// cellKey renders a cell's full identity (the %+v of the flat Features
// struct covers custom knob combinations that share a figure-legend
// name) for the checkpoint journal.
func cellKey(j simJob) string {
	return fmt.Sprintf("%s|%+v|%s|%d", j.mach.Name, j.feat, strings.Join(j.names, "+"), j.insts)
}

// sampledCellKey is cellKey for sampled cells: the sampling schedule
// *and confidence level* join the identity so a sampled cell never
// collides with the full detailed cell of the same configuration, with
// a sampled cell run under a different schedule, or with one whose
// bounds were computed at a different confidence.  (Confidence was
// missing from the key until journal schema v2; see EXPERIMENTS.md —
// without it, resuming after changing -confidence replayed stale
// IPCLo/IPCHi/CPIHalf bounds under the new label.)
func (r *runner) sampledCellKey(j simJob) string {
	return fmt.Sprintf("sampled|%d-%d-%d|c%g|%s",
		r.sampling.Period, r.sampling.IntervalLen, r.sampling.WarmupLen,
		r.sampling.Confidence, cellKey(j))
}

// computeAll executes every collected cell across the worker pool with
// per-cell fault containment: a failed cell records its error and a
// zero result (so the replay pass still prints), and unless keepGoing
// is set the first failure cancels the cells still queued or running.
// Cells found in the checkpoint journal are restored instead of
// simulated; fresh completions are journaled as they land.
func (r *runner) computeAll(ctx context.Context, workers int) {
	r.results = make([]*stats.Sim, len(r.jobs))
	r.metrics = make([]*obs.Metrics, len(r.jobs))
	r.errs = make([]error, len(r.jobs))
	r.resultsSamp = make([]*recyclesim.SampledResult, len(r.jobsSamp))
	r.errsSamp = make([]error, len(r.jobsSamp))
	if r.prog != nil {
		r.prog.SetTotal(len(r.jobs) + len(r.jobsSamp))
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sweep.Run(len(r.jobs), workers, func(i int) {
		j := r.jobs[i]
		if r.cp != nil {
			if rec, ok := r.cp.lookup(cellKey(j)); ok {
				r.results[i], r.metrics[i] = rec.Stats, rec.Metrics
				if r.metrics[i] == nil {
					r.metrics[i] = &obs.Metrics{}
				}
				if r.prog != nil {
					r.prog.StartCell(j.mach.Name + "/" + config.FeatureName(j.feat) + "/" + strings.Join(j.names, "+"))
					r.prog.FinishCell(rec.Stats.Committed)
				}
				if r.publish != nil {
					r.publish(r.results[i], r.metrics[i])
				}
				r.nRestored.Add(1)
				return
			}
		}
		if r.prog != nil {
			r.prog.StartCell(j.mach.Name + "/" + config.FeatureName(j.feat) + "/" + strings.Join(j.names, "+"))
		}
		s, m, err := runSim(ctx, j, r.withMetrics, r.crashDir)
		if err != nil {
			r.errs[i] = err
			r.results[i], r.metrics[i] = &stats.Sim{}, &obs.Metrics{}
			if !r.keepGoing {
				cancel()
			}
			if r.prog != nil {
				r.prog.FinishCell(0)
			}
			return
		}
		r.results[i], r.metrics[i] = s, m
		r.nComputed.Add(1)
		if r.cp != nil {
			if werr := r.cp.record(cellKey(j), s, m); werr != nil {
				// The in-memory result is intact; only resumability of
				// this one cell is lost.
				r.errs[i] = fmt.Errorf("checkpoint append: %w", werr)
			}
		}
		if r.prog != nil {
			r.prog.FinishCell(s.Committed)
		}
		if r.publish != nil {
			r.publish(s, m)
		}
	})
	// Sampled cells run on the same pool; each cell's interval fan-out
	// stays single-threaded (Workers: 1) so parallelism lives at the
	// cell level and the pool is never oversubscribed.  Results are
	// worker-count invariant either way.
	sweep.Run(len(r.jobsSamp), workers, func(i int) {
		j := r.jobsSamp[i]
		key := r.sampledCellKey(j)
		if r.cp != nil {
			if rec, ok := r.cp.lookup(key); ok && rec.Sampled != nil {
				r.resultsSamp[i] = rec.Sampled
				if r.prog != nil {
					r.prog.StartCell("sampled/" + j.mach.Name + "/" + config.FeatureName(j.feat) + "/" + strings.Join(j.names, "+"))
					r.prog.FinishCell(rec.Sampled.MeasuredInsts)
				}
				r.nRestored.Add(1)
				return
			}
		}
		if r.prog != nil {
			r.prog.StartCell("sampled/" + j.mach.Name + "/" + config.FeatureName(j.feat) + "/" + strings.Join(j.names, "+"))
		}
		samp := r.sampling
		samp.Workers = 1
		res, err := recyclesim.RunSampledContext(ctx, recyclesim.Options{
			Machine:   j.mach,
			Features:  j.feat,
			Workloads: j.names,
			MaxInsts:  j.insts,
			Sampling:  &samp,
		})
		if err != nil {
			r.errsSamp[i] = err
			r.resultsSamp[i] = &recyclesim.SampledResult{}
			if !r.keepGoing {
				cancel()
			}
			if r.prog != nil {
				r.prog.FinishCell(0)
			}
			return
		}
		r.resultsSamp[i] = res
		r.nComputed.Add(1)
		if r.cp != nil {
			if werr := r.cp.recordSampled(key, res); werr != nil {
				r.errsSamp[i] = fmt.Errorf("checkpoint append: %w", werr)
			}
		}
		if r.prog != nil {
			r.prog.FinishCell(res.MeasuredInsts)
		}
	})
	r.collect = false
}

// failedCells renders one line per failed cell for the stderr summary.
func (r *runner) failedCells() []string {
	var out []string
	for i, err := range r.errs {
		if err != nil {
			out = append(out, fmt.Sprintf("cell %s: %v", cellKey(r.jobs[i]), firstLine(err.Error())))
		}
	}
	for i, err := range r.errsSamp {
		if err != nil {
			out = append(out, fmt.Sprintf("cell %s: %v", r.sampledCellKey(r.jobsSamp[i]), firstLine(err.Error())))
		}
	}
	return out
}

// firstLine truncates multi-line error text (livelock dumps and the
// like) for the one-line-per-cell summary.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " [...]"
	}
	return s
}

// aggregator accumulates finished cells under a lock and builds the
// immutable running-total snapshots the observability server publishes.
type aggregator struct {
	mu  sync.Mutex
	agg stats.Sim
	tel obs.Metrics
	n   int
}

func (a *aggregator) add(s *stats.Sim, m *obs.Metrics) *obs.Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.agg.Add(s)
	a.tel.Add(m)
	a.n++
	st := a.agg
	st.PerProgram = append([]uint64(nil), a.agg.PerProgram...)
	tel := a.tel
	return &obs.Snapshot{
		Name:    fmt.Sprintf("experiments running aggregate (%d cells)", a.n),
		Stats:   &st,
		Metrics: &tel,
	}
}

// runWithMeter wraps one compute pass (local or remote) with a stderr
// progress meter redrawn in place a few times a second and finished
// with a newline.
func runWithMeter(stderr io.Writer, r *runner, compute func()) {
	start := time.Now()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				done, total, _, cur := r.prog.Snapshot()
				fmt.Fprintf(stderr, "\r%-100s", formatProgress(done, total, cur, time.Since(start)))
			}
		}
	}()
	compute()
	close(stop)
	wg.Wait()
	done, total, _, _ := r.prog.Snapshot()
	fmt.Fprintf(stderr, "\r%-100s\n", formatProgressDone(done, total, time.Since(start),
		r.nComputed.Load(), r.nRestored.Load()))
}

// formatProgress renders one progress-meter line: cells done/total with
// percentage, elapsed wall time, and an ETA extrapolated from the mean
// cell rate so far ("?" until the first cell lands).
func formatProgress(done, total int64, current string, elapsed time.Duration) string {
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	eta := "?"
	switch {
	case total > 0 && done >= total:
		eta = "0s"
	case done > 0:
		rem := time.Duration(float64(elapsed) * float64(total-done) / float64(done))
		eta = rem.Round(time.Second).String()
	}
	s := fmt.Sprintf("cells %d/%d (%.0f%%)  elapsed %s  eta %s",
		done, total, pct, elapsed.Round(time.Second), eta)
	if current != "" {
		s += "  " + current
	}
	return s
}

// formatProgressDone renders the meter's final line: the completed
// state (100% when nothing failed or was interrupted), total cells and
// elapsed time, and the computes/hits split — instead of leaving
// whatever the last 200ms sample happened to show.
func formatProgressDone(done, total int64, elapsed time.Duration, computes, hits int64) string {
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	state := "done"
	if done < total {
		state = "stopped"
	}
	return fmt.Sprintf("cells %d/%d (%.0f%%)  elapsed %s  computes %d  hits %d  %s",
		done, total, pct, elapsed.Round(time.Second), computes, hits, state)
}

// runSim executes one cell through the library facade, inheriting its
// fault containment: panics, livelocks, and cancellation come back as
// typed errors instead of killing the worker pool.  MaxCycles is set
// explicitly to the harness's historical 40x budget (the facade's own
// default is 4x), so results are byte-identical to the pre-facade
// harness.
func runSim(ctx context.Context, j simJob, hists bool, crashDir string) (*stats.Sim, *obs.Metrics, error) {
	tel := &obs.Metrics{Hists: hists}
	res, err := recyclesim.RunContext(ctx, recyclesim.Options{
		Machine:   j.mach,
		Features:  j.feat,
		Workloads: j.names,
		MaxInsts:  j.insts,
		MaxCycles: 40 * j.insts,
		Telemetry: tel,
		CrashDir:  crashDir,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, tel, nil
}

// writeMetrics exports one aggregate snapshot over every computed cell:
// summed counters, summed stall attribution, merged histograms.  Cells
// are visited in collection order, so the document is deterministic.
func writeMetrics(path string, stdout io.Writer, r *runner) error {
	agg := &stats.Sim{}
	tel := &obs.Metrics{Hists: true}
	for i := range r.results {
		agg.Add(r.results[i])
		tel.Add(r.metrics[i])
	}
	snap := &obs.Snapshot{
		Name:    fmt.Sprintf("experiments aggregate (%d cells)", len(r.results)),
		Stats:   agg,
		Metrics: tel,
	}
	if path == "-" {
		return snap.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

var presets = []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"}

func featByName(name string) config.Features {
	f, ok := config.PresetByName(name)
	if !ok {
		panic("unknown preset " + name)
	}
	return f
}

// figure3 regenerates Figure 3: per-benchmark IPC for the six
// architectures, one program on the baseline big.2.16 machine.
func figure3(w io.Writer, r *runner, insts uint64) {
	fmt.Fprintln(w, "Figure 3: per-benchmark IPC, 1 program, big.2.16")
	fmt.Fprintf(w, "%-10s", "program")
	for _, p := range presets {
		fmt.Fprintf(w, " %9s", p)
	}
	fmt.Fprintln(w)
	for _, bench := range workload.Names {
		fmt.Fprintf(w, "%-10s", bench)
		for _, p := range presets {
			s := r.sim(config.Big216(), featByName(p), []string{bench}, insts)
			fmt.Fprintf(w, " %9.3f", s.IPC())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// sampledPresets are the architectures the sampled sweep reports: the
// acceptance set the estimator's accuracy is validated against.
var sampledPresets = []string{"SMT", "TME", "REC", "REC/RS", "REC/RS/RU"}

// figure3Sampled regenerates the Figure 3 sweep in sampled mode:
// per-benchmark estimated IPC with its Student-t confidence interval,
// one program on the baseline big.2.16 machine.
func figure3Sampled(w io.Writer, r *runner, insts uint64) {
	s := r.sampling
	fmt.Fprintf(w, "Figure 3 (sampled): per-benchmark IPC with %.0f%% CI, 1 program, big.2.16\n",
		100*cmp.Or(s.Confidence, 0.95))
	fmt.Fprintf(w, "schedule: period=%d interval=%d warmup=%d\n",
		cmp.Or(s.Period, 20_000), cmp.Or(s.IntervalLen, 1_000), cmp.Or(s.WarmupLen, 1_000))
	fmt.Fprintf(w, "%-10s", "program")
	for _, p := range sampledPresets {
		fmt.Fprintf(w, " %22s", p)
	}
	fmt.Fprintln(w)
	for _, bench := range workload.Names {
		fmt.Fprintf(w, "%-10s", bench)
		for _, p := range sampledPresets {
			res := r.simSampled(config.Big216(), featByName(p), []string{bench}, insts)
			fmt.Fprintf(w, " %7.3f [%5.3f,%5.3f]", res.IPC, res.IPCLo, res.IPCHi)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// avgIPC averages IPC over the eight permutation mixes of n programs
// (n=1 averages the eight benchmarks, as the paper does).
func avgIPC(r *runner, mach config.Machine, feat config.Features, n int, insts uint64) float64 {
	total := 0.0
	runs := 0
	if n == 1 {
		for _, bench := range workload.Names {
			s := r.sim(mach, feat, []string{bench}, insts)
			total += s.IPC()
			runs++
		}
	} else {
		for _, mix := range workload.Mixes(n) {
			s := r.sim(mach, feat, mix, insts)
			total += s.IPC()
			runs++
		}
	}
	return total / float64(runs)
}

// figure4 regenerates Figure 4: average IPC for 1, 2 and 4 programs
// across the six architectures.
func figure4(w io.Writer, r *runner, insts uint64) {
	fmt.Fprintln(w, "Figure 4: average IPC, 1/2/4 programs, big.2.16")
	fmt.Fprintf(w, "%-10s", "programs")
	for _, p := range presets {
		fmt.Fprintf(w, " %9s", p)
	}
	fmt.Fprintln(w)
	for _, n := range []int{1, 2, 4} {
		fmt.Fprintf(w, "%-10d", n)
		for _, p := range presets {
			fmt.Fprintf(w, " %9.3f", avgIPC(r, config.Big216(), featByName(p), n, insts))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// table1 regenerates Table 1: recycling statistics under REC/RS/RU.
func table1(w io.Writer, r *runner, insts uint64) {
	fmt.Fprintln(w, "Table 1: recycling statistics (REC/RS/RU, big.2.16)")
	fmt.Fprintln(w, stats.Table1Header())
	feat := featByName("REC/RS/RU")
	for _, bench := range workload.Names {
		s := r.sim(config.Big216(), feat, []string{bench}, insts)
		fmt.Fprintln(w, s.Table1Row(bench))
	}
	for _, n := range []int{1, 2, 4} {
		agg := &stats.Sim{}
		if n == 1 {
			for _, bench := range workload.Names {
				agg.Add(r.sim(config.Big216(), feat, []string{bench}, insts))
			}
		} else {
			for _, mix := range workload.Mixes(n) {
				agg.Add(r.sim(config.Big216(), feat, mix, insts))
			}
		}
		fmt.Fprintln(w, agg.Table1Row(fmt.Sprintf("%d prog avg", n)))
	}
	fmt.Fprintln(w)
}

// figure5 regenerates Figure 5: the §5.2 alternate-path fetch policies.
func figure5(w io.Writer, r *runner, insts uint64) {
	fmt.Fprintln(w, "Figure 5: recycling fetch limits (REC/RS/RU, big.2.16), average IPC")
	fmt.Fprintf(w, "%-10s", "programs")
	type pol struct {
		p config.AltPolicy
		n int
	}
	var pols []pol
	for _, p := range []config.AltPolicy{config.AltNoStop, config.AltStop, config.AltFetch} {
		for _, n := range []int{8, 16, 32} {
			pols = append(pols, pol{p, n})
		}
	}
	for _, pl := range pols {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("%s-%d", pl.p, pl.n))
	}
	fmt.Fprintln(w)
	for _, n := range []int{1, 2, 4} {
		fmt.Fprintf(w, "%-10d", n)
		for _, pl := range pols {
			feat := featByName("REC/RS/RU")
			feat.AltPolicy = pl.p
			feat.AltLimit = pl.n
			fmt.Fprintf(w, " %10.3f", avgIPC(r, config.Big216(), feat, n, insts))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// figure6 regenerates Figure 6: SMT vs TME vs REC/RS/RU across the
// four machine design points.
func figure6(w io.Writer, r *runner, insts uint64) {
	fmt.Fprintln(w, "Figure 6: machine sweep, average IPC")
	machines := []config.Machine{
		config.Small18(), config.Small28(), config.Big18(), config.Big216(),
	}
	fmt.Fprintf(w, "%-10s", "programs")
	for _, m := range machines {
		for _, p := range []string{"SMT", "TME", "REC/RS/RU"} {
			fmt.Fprintf(w, " %16s", m.Name+"/"+p)
		}
	}
	fmt.Fprintln(w)
	for _, n := range []int{1, 2, 4} {
		fmt.Fprintf(w, "%-10d", n)
		for _, m := range machines {
			for _, p := range []string{"SMT", "TME", "REC/RS/RU"} {
				fmt.Fprintf(w, " %16.3f", avgIPC(r, m, featByName(p), n, insts))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
