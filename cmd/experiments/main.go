// Command experiments regenerates every table and figure of the
// paper's evaluation section on the simulator:
//
//	experiments -fig 3     per-benchmark IPC, six architectures
//	experiments -fig 4     average IPC for 1/2/4 programs
//	experiments -table 1   recycling statistics
//	experiments -fig 5     recycling fetch limits (stop/fetch/nostop x 8/16/32)
//	experiments -fig 6     machine sweep (small/big x 1.8/2.8/2.16)
//	experiments -all       everything
//
// Absolute IPC differs from the paper (synthetic workloads, not Alpha
// SPEC95 binaries); the comparisons between configurations are the
// reproduced result.  See EXPERIMENTS.md for the side-by-side reading.
package main

import (
	"flag"
	"fmt"
	"os"

	"recyclesim/internal/config"
	"recyclesim/internal/core"
	"recyclesim/internal/stats"
	"recyclesim/internal/workload"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (3, 4, 5, 6)")
	table := flag.Int("table", 0, "table number to regenerate (1)")
	all := flag.Bool("all", false, "regenerate everything")
	insts := flag.Uint64("insts", 300_000, "committed-instruction budget per run")
	flag.Parse()

	ran := false
	if *all || *fig == 3 {
		figure3(*insts)
		ran = true
	}
	if *all || *fig == 4 {
		figure4(*insts)
		ran = true
	}
	if *all || *table == 1 {
		table1(*insts)
		ran = true
	}
	if *all || *fig == 5 {
		figure5(*insts)
		ran = true
	}
	if *all || *fig == 6 {
		figure6(*insts)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func run(mach config.Machine, feat config.Features, names []string, insts uint64) *stats.Sim {
	progs, err := workload.MixPrograms(names)
	if err != nil {
		panic(err)
	}
	c, err := core.New(mach, feat, progs)
	if err != nil {
		panic(err)
	}
	return c.Run(insts, 40*insts)
}

var presets = []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"}

func featByName(name string) config.Features {
	f, ok := config.PresetByName(name)
	if !ok {
		panic("unknown preset " + name)
	}
	return f
}

// figure3 regenerates Figure 3: per-benchmark IPC for the six
// architectures, one program on the baseline big.2.16 machine.
func figure3(insts uint64) {
	fmt.Println("Figure 3: per-benchmark IPC, 1 program, big.2.16")
	fmt.Printf("%-10s", "program")
	for _, p := range presets {
		fmt.Printf(" %9s", p)
	}
	fmt.Println()
	for _, bench := range workload.Names {
		fmt.Printf("%-10s", bench)
		for _, p := range presets {
			s := run(config.Big216(), featByName(p), []string{bench}, insts)
			fmt.Printf(" %9.3f", s.IPC())
		}
		fmt.Println()
	}
	fmt.Println()
}

// avgIPC averages IPC over the eight permutation mixes of n programs
// (n=1 averages the eight benchmarks, as the paper does).
func avgIPC(mach config.Machine, feat config.Features, n int, insts uint64) float64 {
	total := 0.0
	runs := 0
	if n == 1 {
		for _, bench := range workload.Names {
			s := run(mach, feat, []string{bench}, insts)
			total += s.IPC()
			runs++
		}
	} else {
		for _, mix := range workload.Mixes(n) {
			s := run(mach, feat, mix, insts)
			total += s.IPC()
			runs++
		}
	}
	return total / float64(runs)
}

// figure4 regenerates Figure 4: average IPC for 1, 2 and 4 programs
// across the six architectures.
func figure4(insts uint64) {
	fmt.Println("Figure 4: average IPC, 1/2/4 programs, big.2.16")
	fmt.Printf("%-10s", "programs")
	for _, p := range presets {
		fmt.Printf(" %9s", p)
	}
	fmt.Println()
	for _, n := range []int{1, 2, 4} {
		fmt.Printf("%-10d", n)
		for _, p := range presets {
			fmt.Printf(" %9.3f", avgIPC(config.Big216(), featByName(p), n, insts))
		}
		fmt.Println()
	}
	fmt.Println()
}

// table1 regenerates Table 1: recycling statistics under REC/RS/RU.
func table1(insts uint64) {
	fmt.Println("Table 1: recycling statistics (REC/RS/RU, big.2.16)")
	fmt.Println(stats.Table1Header())
	feat := featByName("REC/RS/RU")
	for _, bench := range workload.Names {
		s := run(config.Big216(), feat, []string{bench}, insts)
		fmt.Println(s.Table1Row(bench))
	}
	for _, n := range []int{1, 2, 4} {
		agg := &stats.Sim{}
		if n == 1 {
			for _, bench := range workload.Names {
				agg.Add(run(config.Big216(), feat, []string{bench}, insts))
			}
		} else {
			for _, mix := range workload.Mixes(n) {
				agg.Add(run(config.Big216(), feat, mix, insts))
			}
		}
		fmt.Println(agg.Table1Row(fmt.Sprintf("%d prog avg", n)))
	}
	fmt.Println()
}

// figure5 regenerates Figure 5: the §5.2 alternate-path fetch policies.
func figure5(insts uint64) {
	fmt.Println("Figure 5: recycling fetch limits (REC/RS/RU, big.2.16), average IPC")
	fmt.Printf("%-10s", "programs")
	type pol struct {
		p config.AltPolicy
		n int
	}
	var pols []pol
	for _, p := range []config.AltPolicy{config.AltNoStop, config.AltStop, config.AltFetch} {
		for _, n := range []int{8, 16, 32} {
			pols = append(pols, pol{p, n})
		}
	}
	for _, pl := range pols {
		fmt.Printf(" %10s", fmt.Sprintf("%s-%d", pl.p, pl.n))
	}
	fmt.Println()
	for _, n := range []int{1, 2, 4} {
		fmt.Printf("%-10d", n)
		for _, pl := range pols {
			feat := featByName("REC/RS/RU")
			feat.AltPolicy = pl.p
			feat.AltLimit = pl.n
			fmt.Printf(" %10.3f", avgIPC(config.Big216(), feat, n, insts))
		}
		fmt.Println()
	}
	fmt.Println()
}

// figure6 regenerates Figure 6: SMT vs TME vs REC/RS/RU across the
// four machine design points.
func figure6(insts uint64) {
	fmt.Println("Figure 6: machine sweep, average IPC")
	machines := []config.Machine{
		config.Small18(), config.Small28(), config.Big18(), config.Big216(),
	}
	fmt.Printf("%-10s", "programs")
	for _, m := range machines {
		for _, p := range []string{"SMT", "TME", "REC/RS/RU"} {
			fmt.Printf(" %16s", m.Name+"/"+p)
		}
	}
	fmt.Println()
	for _, n := range []int{1, 2, 4} {
		fmt.Printf("%-10d", n)
		for _, m := range machines {
			for _, p := range []string{"SMT", "TME", "REC/RS/RU"} {
				fmt.Printf(" %16.3f", avgIPC(m, featByName(p), n, insts))
			}
		}
		fmt.Println()
	}
	fmt.Println()
}
