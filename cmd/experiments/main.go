// Command experiments regenerates every table and figure of the
// paper's evaluation section on the simulator:
//
//	experiments -fig 3     per-benchmark IPC, six architectures
//	experiments -fig 4     average IPC for 1/2/4 programs
//	experiments -table 1   recycling statistics
//	experiments -fig 5     recycling fetch limits (stop/fetch/nostop x 8/16/32)
//	experiments -fig 6     machine sweep (small/big x 1.8/2.8/2.16)
//	experiments -all       everything
//
// Exit status is 0 on success and 2 on bad flags or figure/table
// numbers the paper does not have.
//
// Absolute IPC differs from the paper (synthetic workloads, not Alpha
// SPEC95 binaries); the comparisons between configurations are the
// reproduced result.  See EXPERIMENTS.md for the side-by-side reading.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"recyclesim/internal/config"
	"recyclesim/internal/core"
	"recyclesim/internal/stats"
	"recyclesim/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure number to regenerate (3, 4, 5, 6)")
	table := fs.Int("table", 0, "table number to regenerate (1)")
	all := fs.Bool("all", false, "regenerate everything")
	insts := fs.Uint64("insts", 300_000, "committed-instruction budget per run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "experiments: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	switch *fig {
	case 0, 3, 4, 5, 6:
	default:
		fmt.Fprintf(stderr, "experiments: no figure %d in the paper (have 3, 4, 5, 6)\n", *fig)
		return 2
	}
	switch *table {
	case 0, 1:
	default:
		fmt.Fprintf(stderr, "experiments: no table %d in the paper (have 1)\n", *table)
		return 2
	}
	if !*all && *fig == 0 && *table == 0 {
		fs.Usage()
		return 2
	}

	if *all || *fig == 3 {
		figure3(stdout, *insts)
	}
	if *all || *fig == 4 {
		figure4(stdout, *insts)
	}
	if *all || *table == 1 {
		table1(stdout, *insts)
	}
	if *all || *fig == 5 {
		figure5(stdout, *insts)
	}
	if *all || *fig == 6 {
		figure6(stdout, *insts)
	}
	return 0
}

func runSim(mach config.Machine, feat config.Features, names []string, insts uint64) *stats.Sim {
	progs, err := workload.MixPrograms(names)
	if err != nil {
		panic(err)
	}
	c, err := core.New(mach, feat, progs)
	if err != nil {
		panic(err)
	}
	return c.Run(insts, 40*insts)
}

var presets = []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"}

func featByName(name string) config.Features {
	f, ok := config.PresetByName(name)
	if !ok {
		panic("unknown preset " + name)
	}
	return f
}

// figure3 regenerates Figure 3: per-benchmark IPC for the six
// architectures, one program on the baseline big.2.16 machine.
func figure3(w io.Writer, insts uint64) {
	fmt.Fprintln(w, "Figure 3: per-benchmark IPC, 1 program, big.2.16")
	fmt.Fprintf(w, "%-10s", "program")
	for _, p := range presets {
		fmt.Fprintf(w, " %9s", p)
	}
	fmt.Fprintln(w)
	for _, bench := range workload.Names {
		fmt.Fprintf(w, "%-10s", bench)
		for _, p := range presets {
			s := runSim(config.Big216(), featByName(p), []string{bench}, insts)
			fmt.Fprintf(w, " %9.3f", s.IPC())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// avgIPC averages IPC over the eight permutation mixes of n programs
// (n=1 averages the eight benchmarks, as the paper does).
func avgIPC(mach config.Machine, feat config.Features, n int, insts uint64) float64 {
	total := 0.0
	runs := 0
	if n == 1 {
		for _, bench := range workload.Names {
			s := runSim(mach, feat, []string{bench}, insts)
			total += s.IPC()
			runs++
		}
	} else {
		for _, mix := range workload.Mixes(n) {
			s := runSim(mach, feat, mix, insts)
			total += s.IPC()
			runs++
		}
	}
	return total / float64(runs)
}

// figure4 regenerates Figure 4: average IPC for 1, 2 and 4 programs
// across the six architectures.
func figure4(w io.Writer, insts uint64) {
	fmt.Fprintln(w, "Figure 4: average IPC, 1/2/4 programs, big.2.16")
	fmt.Fprintf(w, "%-10s", "programs")
	for _, p := range presets {
		fmt.Fprintf(w, " %9s", p)
	}
	fmt.Fprintln(w)
	for _, n := range []int{1, 2, 4} {
		fmt.Fprintf(w, "%-10d", n)
		for _, p := range presets {
			fmt.Fprintf(w, " %9.3f", avgIPC(config.Big216(), featByName(p), n, insts))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// table1 regenerates Table 1: recycling statistics under REC/RS/RU.
func table1(w io.Writer, insts uint64) {
	fmt.Fprintln(w, "Table 1: recycling statistics (REC/RS/RU, big.2.16)")
	fmt.Fprintln(w, stats.Table1Header())
	feat := featByName("REC/RS/RU")
	for _, bench := range workload.Names {
		s := runSim(config.Big216(), feat, []string{bench}, insts)
		fmt.Fprintln(w, s.Table1Row(bench))
	}
	for _, n := range []int{1, 2, 4} {
		agg := &stats.Sim{}
		if n == 1 {
			for _, bench := range workload.Names {
				agg.Add(runSim(config.Big216(), feat, []string{bench}, insts))
			}
		} else {
			for _, mix := range workload.Mixes(n) {
				agg.Add(runSim(config.Big216(), feat, mix, insts))
			}
		}
		fmt.Fprintln(w, agg.Table1Row(fmt.Sprintf("%d prog avg", n)))
	}
	fmt.Fprintln(w)
}

// figure5 regenerates Figure 5: the §5.2 alternate-path fetch policies.
func figure5(w io.Writer, insts uint64) {
	fmt.Fprintln(w, "Figure 5: recycling fetch limits (REC/RS/RU, big.2.16), average IPC")
	fmt.Fprintf(w, "%-10s", "programs")
	type pol struct {
		p config.AltPolicy
		n int
	}
	var pols []pol
	for _, p := range []config.AltPolicy{config.AltNoStop, config.AltStop, config.AltFetch} {
		for _, n := range []int{8, 16, 32} {
			pols = append(pols, pol{p, n})
		}
	}
	for _, pl := range pols {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("%s-%d", pl.p, pl.n))
	}
	fmt.Fprintln(w)
	for _, n := range []int{1, 2, 4} {
		fmt.Fprintf(w, "%-10d", n)
		for _, pl := range pols {
			feat := featByName("REC/RS/RU")
			feat.AltPolicy = pl.p
			feat.AltLimit = pl.n
			fmt.Fprintf(w, " %10.3f", avgIPC(config.Big216(), feat, n, insts))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// figure6 regenerates Figure 6: SMT vs TME vs REC/RS/RU across the
// four machine design points.
func figure6(w io.Writer, insts uint64) {
	fmt.Fprintln(w, "Figure 6: machine sweep, average IPC")
	machines := []config.Machine{
		config.Small18(), config.Small28(), config.Big18(), config.Big216(),
	}
	fmt.Fprintf(w, "%-10s", "programs")
	for _, m := range machines {
		for _, p := range []string{"SMT", "TME", "REC/RS/RU"} {
			fmt.Fprintf(w, " %16s", m.Name+"/"+p)
		}
	}
	fmt.Fprintln(w)
	for _, n := range []int{1, 2, 4} {
		fmt.Fprintf(w, "%-10d", n)
		for _, m := range machines {
			for _, p := range []string{"SMT", "TME", "REC/RS/RU"} {
				fmt.Fprintf(w, " %16.3f", avgIPC(m, featByName(p), n, insts))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
