package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunArgs is the table-driven contract for the harness front-end:
// figure/table numbers the paper does not have, bad flags, and empty
// invocations all exit 2; a real (tiny) regeneration exits 0.
func TestRunArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    int
		wantOut string // substring required on stdout
		wantErr string // substring required on stderr
	}{
		{
			name:    "tiny figure 3 run",
			args:    []string{"-fig", "3", "-insts", "300"},
			want:    0,
			wantOut: "Figure 3",
		},
		{
			name:    "unknown figure",
			args:    []string{"-fig", "7"},
			want:    2,
			wantErr: "no figure 7",
		},
		{
			name:    "unknown table",
			args:    []string{"-table", "2"},
			want:    2,
			wantErr: "no table 2",
		},
		{
			name:    "nothing selected prints usage",
			args:    nil,
			want:    2,
			wantErr: "Usage",
		},
		{
			name: "bad flag",
			args: []string{"-definitely-not-a-flag"},
			want: 2,
		},
		{
			name: "bad flag value",
			args: []string{"-fig", "three"},
			want: 2,
		},
		{
			name:    "stray positional argument",
			args:    []string{"everything"},
			want:    2,
			wantErr: "unexpected argument",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%q) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}

// TestFormatProgress is the table-driven contract for the meter line:
// percentage math, the "?" ETA before any cell lands, the zero ETA at
// completion, and the current-cell suffix.
func TestFormatProgress(t *testing.T) {
	cases := []struct {
		done, total int64
		current     string
		elapsed     time.Duration
		want        string
	}{
		{0, 0, "", 0, "cells 0/0 (0%)  elapsed 0s  eta ?"},
		{0, 8, "", 2 * time.Second, "cells 0/8 (0%)  elapsed 2s  eta ?"},
		{2, 8, "", 10 * time.Second, "cells 2/8 (25%)  elapsed 10s  eta 30s"},
		{2, 8, "big.2.16/REC/gcc", 10 * time.Second,
			"cells 2/8 (25%)  elapsed 10s  eta 30s  big.2.16/REC/gcc"},
		{8, 8, "", time.Minute, "cells 8/8 (100%)  elapsed 1m0s  eta 0s"},
	}
	for _, tc := range cases {
		if got := formatProgress(tc.done, tc.total, tc.current, tc.elapsed); got != tc.want {
			t.Errorf("formatProgress(%d, %d, %q, %v) = %q, want %q",
				tc.done, tc.total, tc.current, tc.elapsed, got, tc.want)
		}
	}
}

// TestFormatProgressDone is the contract for the meter's final line:
// it replaces the ETA with the sweep's compute/hit split and closes
// with "done" (or "stopped" when the run was cut short).
func TestFormatProgressDone(t *testing.T) {
	cases := []struct {
		done, total    int64
		elapsed        time.Duration
		computes, hits int64
		want           string
	}{
		{8, 8, time.Minute, 8, 0, "cells 8/8 (100%)  elapsed 1m0s  computes 8  hits 0  done"},
		{8, 8, 2 * time.Second, 0, 8, "cells 8/8 (100%)  elapsed 2s  computes 0  hits 8  done"},
		{3, 8, 10 * time.Second, 2, 1, "cells 3/8 (38%)  elapsed 10s  computes 2  hits 1  stopped"},
		{0, 0, 0, 0, 0, "cells 0/0 (0%)  elapsed 0s  computes 0  hits 0  done"},
	}
	for _, tc := range cases {
		if got := formatProgressDone(tc.done, tc.total, tc.elapsed, tc.computes, tc.hits); got != tc.want {
			t.Errorf("formatProgressDone(%d, %d, %v, %d, %d) = %q, want %q",
				tc.done, tc.total, tc.elapsed, tc.computes, tc.hits, got, tc.want)
		}
	}
}

// TestObservabilityDoesNotPerturbOutput runs the same tiny regeneration
// with and without the observability server and progress meter: stdout
// must be byte-identical, because the server and meter write only to
// their listener and stderr.
func TestObservabilityDoesNotPerturbOutput(t *testing.T) {
	var plainOut, plainErr strings.Builder
	if got := run([]string{"-fig", "3", "-insts", "300"}, &plainOut, &plainErr); got != 0 {
		t.Fatalf("plain run exited %d\n%s", got, plainErr.String())
	}
	var obsOut, obsErr strings.Builder
	args := []string{"-fig", "3", "-insts", "300", "-obs-listen", "127.0.0.1:0", "-progress"}
	if got := run(args, &obsOut, &obsErr); got != 0 {
		t.Fatalf("observed run exited %d\n%s", got, obsErr.String())
	}
	if plainOut.String() != obsOut.String() {
		t.Errorf("stdout differs with observability enabled:\nplain:\n%s\nobserved:\n%s",
			plainOut.String(), obsOut.String())
	}
	if !strings.Contains(obsErr.String(), "observability server on http://") {
		t.Errorf("stderr missing server announcement:\n%s", obsErr.String())
	}
	if s := obsErr.String(); !strings.Contains(s, "(100%)") || !strings.Contains(s, "  done") {
		t.Errorf("stderr missing the meter's final completed line:\n%s", s)
	}
}

// TestCheckpointResumeCLI: the same invocation run twice against one
// checkpoint file must print byte-identical output, report the resume
// on stderr, and leave the journal unchanged (nothing resimulated,
// nothing re-appended).
func TestCheckpointResumeCLI(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "cells.jsonl")
	args := []string{"-fig", "3", "-insts", "300", "-checkpoint", cp}

	var out1, err1 strings.Builder
	if got := run(args, &out1, &err1); got != 0 {
		t.Fatalf("first run exited %d:\n%s", got, err1.String())
	}
	data1, err := os.ReadFile(cp)
	if err != nil || len(data1) == 0 {
		t.Fatalf("no journal written: %v", err)
	}

	var out2, err2 strings.Builder
	if got := run(args, &out2, &err2); got != 0 {
		t.Fatalf("resumed run exited %d:\n%s", got, err2.String())
	}
	if out1.String() != out2.String() {
		t.Error("resumed run's stdout differs from the original")
	}
	if !strings.Contains(err2.String(), "resuming from") {
		t.Errorf("resume not announced on stderr: %q", err2.String())
	}
	data2, _ := os.ReadFile(cp)
	if string(data1) != string(data2) {
		t.Error("resumed run modified a complete journal")
	}
}

// TestSampledSweepCLI: the opt-in sampled sweep prints the CI report,
// journals its cells under schedule-qualified keys that never collide
// with full-detail cells, and resumes byte-identically.
func TestSampledSweepCLI(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "cells.jsonl")
	args := []string{"-sampled", "-insts", "20000", "-sample-period", "4000",
		"-sample-interval", "400", "-sample-warmup", "400", "-checkpoint", cp}

	var out1, err1 strings.Builder
	if got := run(args, &out1, &err1); got != 0 {
		t.Fatalf("first run exited %d:\n%s", got, err1.String())
	}
	if !strings.Contains(out1.String(), "Figure 3 (sampled)") {
		t.Errorf("sampled report missing:\n%s", out1.String())
	}
	if !strings.Contains(out1.String(), "schedule: period=4000 interval=400 warmup=400") {
		t.Errorf("schedule line missing:\n%s", out1.String())
	}
	data1, err := os.ReadFile(cp)
	if err != nil || len(data1) == 0 {
		t.Fatalf("no journal written: %v", err)
	}
	if !strings.Contains(string(data1), `"key":"sampled|4000-400-400|`) {
		t.Errorf("journal keys not schedule-qualified:\n%.200s", data1)
	}

	var out2, err2 strings.Builder
	if got := run(args, &out2, &err2); got != 0 {
		t.Fatalf("resumed run exited %d:\n%s", got, err2.String())
	}
	if out1.String() != out2.String() {
		t.Error("resumed sampled run's stdout differs from the original")
	}
	data2, _ := os.ReadFile(cp)
	if string(data1) != string(data2) {
		t.Error("resumed run modified a complete journal")
	}
}

// TestCheckpointCorruptCLI: a corrupt journal is a flag-level error
// (exit 2), before any simulation runs.
func TestCheckpointCorruptCLI(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "cells.jsonl")
	os.WriteFile(cp, []byte("garbage\n{\"key\":\"k\",\"stats\":{}}\n"), 0o644)
	var out, errb strings.Builder
	if got := run([]string{"-fig", "3", "-insts", "300", "-checkpoint", cp}, &out, &errb); got != 2 {
		t.Fatalf("exit %d, want 2", got)
	}
	if !strings.Contains(errb.String(), "-checkpoint") {
		t.Errorf("stderr %q", errb.String())
	}
}

// TestInterruptedSweep: a canceled context (the SIGINT path) exits
// nonzero, reports the interruption, and still prints the report
// skeleton with completed cells only.
func TestInterruptedSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	got := runCtx(ctx, []string{"-fig", "3", "-insts", "100000"}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", got, errb.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Errorf("stderr missing interruption notice: %q", errb.String())
	}
	if !strings.Contains(out.String(), "Figure 3") {
		t.Error("report skeleton not flushed")
	}
	if !strings.Contains(errb.String(), "cell(s) failed") {
		t.Errorf("canceled cells not summarized: %q", errb.String())
	}
}
