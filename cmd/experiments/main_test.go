package main

import (
	"strings"
	"testing"
)

// TestRunArgs is the table-driven contract for the harness front-end:
// figure/table numbers the paper does not have, bad flags, and empty
// invocations all exit 2; a real (tiny) regeneration exits 0.
func TestRunArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    int
		wantOut string // substring required on stdout
		wantErr string // substring required on stderr
	}{
		{
			name:    "tiny figure 3 run",
			args:    []string{"-fig", "3", "-insts", "300"},
			want:    0,
			wantOut: "Figure 3",
		},
		{
			name:    "unknown figure",
			args:    []string{"-fig", "7"},
			want:    2,
			wantErr: "no figure 7",
		},
		{
			name:    "unknown table",
			args:    []string{"-table", "2"},
			want:    2,
			wantErr: "no table 2",
		},
		{
			name:    "nothing selected prints usage",
			args:    nil,
			want:    2,
			wantErr: "Usage",
		},
		{
			name: "bad flag",
			args: []string{"-definitely-not-a-flag"},
			want: 2,
		},
		{
			name: "bad flag value",
			args: []string{"-fig", "three"},
			want: 2,
		},
		{
			name:    "stray positional argument",
			args:    []string{"everything"},
			want:    2,
			wantErr: "unexpected argument",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%q) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}
